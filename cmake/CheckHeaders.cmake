# check_headers: compile every src/**/*.hpp standalone, proving each
# header is self-contained (includes what it uses) -- the compiler-backed
# half of zh-lint's pragma-once/self-containment hygiene rule. The target
# is EXCLUDE_FROM_ALL: it builds only via `cmake --build <dir> --target
# check_headers`, which tools/check.sh's lint stage and the CI lint job
# invoke.
#
# Each header gets a generated one-line TU `#include "<header>"`; the
# wrapper is only (re)written when its content changes so incremental
# builds stay incremental.
file(GLOB_RECURSE _zh_check_headers CONFIGURE_DEPENDS
  ${CMAKE_SOURCE_DIR}/src/*.hpp)

set(_zh_check_header_tus "")
foreach(_zh_hdr IN LISTS _zh_check_headers)
  file(RELATIVE_PATH _zh_rel ${CMAKE_SOURCE_DIR}/src ${_zh_hdr})
  string(REPLACE "/" "__" _zh_stem ${_zh_rel})
  string(REPLACE ".hpp" ".cpp" _zh_stem ${_zh_stem})
  set(_zh_tu ${CMAKE_BINARY_DIR}/check_headers/${_zh_stem})
  set(_zh_content "#include \"${_zh_rel}\"  // IWYU pragma: keep\n")
  if(EXISTS ${_zh_tu})
    file(READ ${_zh_tu} _zh_existing)
  else()
    set(_zh_existing "")
  endif()
  if(NOT _zh_existing STREQUAL _zh_content)
    file(WRITE ${_zh_tu} ${_zh_content})
  endif()
  list(APPEND _zh_check_header_tus ${_zh_tu})
endforeach()

add_library(check_headers OBJECT EXCLUDE_FROM_ALL ${_zh_check_header_tus})
target_include_directories(check_headers PRIVATE ${CMAKE_SOURCE_DIR}/src)
target_link_libraries(check_headers PRIVATE Threads::Threads)
