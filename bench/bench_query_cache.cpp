// Query-cache speedup gate (the QueryEngine tentpole).
//
// Serves the same zonal query twice against one engine -- a cold pass
// that fills the Step-1 tile-histogram cache, then a warm pass that
// must be served entirely from it -- plus a different-zone-layer pass
// showing cross-query sharing. Prints best-of-N machine-readable lines:
//
//   ZH_QUERY_CACHE_COLD_STEP1_SECONDS=<seconds>
//   ZH_QUERY_CACHE_WARM_STEP1_SECONDS=<seconds>
//   ZH_QUERY_CACHE_SPEEDUP_X=<cold/warm>
//
// Exits nonzero when
//  * any cached result differs from a fresh ZonalPipeline::run (the
//    cache must be bit-exact, never approximate), or
//  * the warm pass issued any cache miss, or
//  * warm Step-1 is not at least ZH_QUERY_CACHE_MIN_SPEEDUP times
//    faster than cold Step-1 (default 2; the repeated-zone serving
//    claim this bench pins).
//
// Knobs: ZH_SCALE (default 60), ZH_ZONES (128), ZH_BINS (256),
// ZH_TILE (32), ZH_REPS (5), ZH_QUERY_CACHE_MIN_SPEEDUP (2).
//
// Tile size defaults to 32 rather than the paper's per-scale setting:
// the cache amortizes the per-tile cell scan, so the win scales with
// cells-per-tile; 6x6 tiles leave warm passes dominated by the same
// per-tile walk the cold pass pays.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/query_engine.hpp"

int main() {
  using namespace zh;
  const int scale = bench::env_int("ZH_SCALE", 60);
  const int zones = bench::env_int("ZH_ZONES", 128);
  const BinIndex bins =
      static_cast<BinIndex>(bench::env_int("ZH_BINS", 256));
  const int reps = std::max(1, bench::env_int("ZH_REPS", 5));
  const double min_speedup = static_cast<double>(
      bench::env_int("ZH_QUERY_CACHE_MIN_SPEEDUP", 2));

  const conus::RasterSpec spec = conus::table1()[0];
  const DemRaster raster = conus::generate_raster(spec, scale);
  const PolygonSet counties = conus::generate_county_layer(zones, 7);
  const PolygonSet other_counties = conus::generate_county_layer(zones, 8);
  const std::int64_t tile = bench::env_int("ZH_TILE", 32);

  bench::print_header("query-cache speedup: " + spec.name + " at scale " +
                      std::to_string(scale));
  std::printf("raster %lldx%lld, %d zones x2 layers, %u bins, tile %lld, "
              "%d reps\n",
              static_cast<long long>(raster.rows()),
              static_cast<long long>(raster.cols()), zones, bins,
              static_cast<long long>(tile), reps);

  Device device;
  QueryEngineConfig cfg;
  cfg.tile_size = tile;

  // Reference result: the cache is only correct if it reproduces the
  // uncached pipeline bit for bit.
  const ZonalPipeline pipe(device, {.tile_size = tile, .bins = bins});
  const ZonalResult reference = pipe.run(raster, counties);
  const ZonalResult reference_other = pipe.run(raster, other_counties);

  double cold_s = 1e300;
  double warm_s = 1e300;
  double cold_step1_s = 1e300;
  double warm_step1_s = 1e300;
  double shared_step1_s = 1e300;
  StepTimes cold_times;
  WorkCounters cold_work;
  int failures = 0;
  for (int rep = 0; rep < reps; ++rep) {
    // Fresh engine per rep: each rep measures one cold->warm transition.
    QueryEngine engine(device, cfg);
    const RasterHandle h = engine.add_raster(raster);
    const ZonalQuery q{.raster = h, .zones = &counties, .bins = bins};

    Timer timer;
    const QueryResult cold = engine.run(q);
    const double cs = timer.seconds();
    timer.reset();
    const QueryResult warm = engine.run(q);
    const double ws = timer.seconds();
    const QueryResult shared = engine.run(
        {.raster = h, .zones = &other_counties, .bins = bins});

    if (cold.per_polygon != reference.per_polygon ||
        warm.per_polygon != reference.per_polygon) {
      std::printf("FAIL rep %d: cached result differs from pipeline\n", rep);
      ++failures;
    }
    if (shared.per_polygon != reference_other.per_polygon) {
      std::printf("FAIL rep %d: cross-zone result differs from pipeline\n",
                  rep);
      ++failures;
    }
    if (warm.cache_misses != 0) {
      std::printf("FAIL rep %d: warm pass missed %llu times\n", rep,
                  static_cast<unsigned long long>(warm.cache_misses));
      ++failures;
    }
    if (cs < cold_s) {
      cold_s = cs;
      cold_times = cold.times;
      cold_work = cold.work;
    }
    warm_s = std::min(warm_s, ws);
    cold_step1_s = std::min(cold_step1_s, cold.times.seconds[1]);
    warm_step1_s = std::min(warm_step1_s, warm.times.seconds[1]);
    shared_step1_s = std::min(shared_step1_s, shared.times.seconds[1]);
  }

  const double speedup =
      warm_step1_s > 0.0 ? cold_step1_s / warm_step1_s : 1e9;
  std::printf("\n%-28s %10s\n", "", "best-of-N");
  std::printf("%-28s %9.4f s\n", "cold end-to-end", cold_s);
  std::printf("%-28s %9.4f s\n", "warm end-to-end", warm_s);
  std::printf("%-28s %9.4f s\n", "cold Step 1 (fill)", cold_step1_s);
  std::printf("%-28s %9.4f s\n", "warm Step 1 (cache)", warm_step1_s);
  std::printf("%-28s %9.4f s\n", "other-zones Step 1 (shared)",
              shared_step1_s);
  std::printf("%-28s %9.1fx (gate: >= %.0fx)\n", "Step-1 speedup", speedup,
              min_speedup);

  std::printf("ZH_QUERY_CACHE_COLD_STEP1_SECONDS=%.6f\n", cold_step1_s);
  std::printf("ZH_QUERY_CACHE_WARM_STEP1_SECONDS=%.6f\n", warm_step1_s);
  std::printf("ZH_QUERY_CACHE_SPEEDUP_X=%.2f\n", speedup);

  bench::write_bench_report(
      "BENCH_query_cache.json", "bench_query_cache",
      spec.name + " repeated-zone queries",
      {{"scale", std::to_string(scale)},
       {"zones", std::to_string(zones)},
       {"bins", std::to_string(bins)},
       {"tile", std::to_string(tile)},
       {"reps", std::to_string(reps)}},
      &cold_times, &cold_work,
      {{"cold_s", cold_s},
       {"warm_s", warm_s},
       {"cold_step1_s", cold_step1_s},
       {"warm_step1_s", warm_step1_s},
       {"shared_step1_s", shared_step1_s},
       {"speedup_x", speedup}});

  if (failures > 0) return 1;
  if (speedup < min_speedup) {
    std::printf("FAIL: warm Step 1 only %.2fx faster (need %.0fx)\n",
                speedup, min_speedup);
    return 1;
  }
  std::printf("OK: warm queries serve Step 1 from cache %.1fx faster\n",
              speedup);
  return 0;
}
