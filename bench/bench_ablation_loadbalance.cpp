// Partition-assignment ablation (Sec. IV.C discussion + future work):
// round-robin assignment leaves cluster nodes unevenly loaded because
// edge-of-coverage partitions do much less Step-4 work; cost-model LPT
// assignment flattens the Fig.-6 tail. Reports estimated-load imbalance
// and projected 16-node runtimes for both strategies.
#include <cstdio>

#include "bench_util.hpp"
#include "core/cluster_driver.hpp"
#include "core/load_balance.hpp"
#include "core/perf_model.hpp"

int main() {
  using namespace zh;
  const int scale = bench::env_int("ZH_SCALE", 60);
  const int zones = bench::env_int("ZH_ZONES", 1500);
  const BinIndex bins =
      static_cast<BinIndex>(bench::env_int("ZH_BINS", 500));
  const std::int64_t tile = conus::tile_size_cells(scale);

  std::printf("building CONUS workload: S=%d, %d zones...\n", scale,
              zones);
  const bench::ConusWorkload w = bench::build_conus(scale, zones);

  // Partition list + exact cost estimates (resolution-independent).
  std::vector<RasterPartition> parts;
  std::vector<GeoTransform> transforms;
  for (std::size_t i = 0; i < w.rasters.size(); ++i) {
    transforms.push_back(w.rasters[i].transform());
    for (const CellWindow& win :
         grid_partition(w.rasters[i].rows(), w.rasters[i].cols(),
                        w.schemas[i].first, w.schemas[i].second, tile)) {
      parts.push_back({static_cast<std::uint32_t>(i), win, 0});
    }
  }
  const std::vector<double> costs =
      estimate_partition_costs(parts, transforms, tile, w.counties);

  double cmin = costs[0];
  double cmax = costs[0];
  for (const double c : costs) {
    cmin = std::min(cmin, c);
    cmax = std::max(cmax, c);
  }
  std::printf("36 partitions; estimated cost spread %.1fx "
              "(min %.2e, max %.2e)\n",
              cmax / cmin, cmin, cmax);

  bench::print_header(
      "Estimated-load imbalance (max rank load / mean rank load)");
  std::printf("%7s %14s %14s\n", "nodes", "round-robin", "LPT");
  bench::print_rule();
  for (const std::size_t ranks : {2u, 4u, 8u, 16u}) {
    auto rr = parts;
    assign_round_robin(rr, ranks);
    auto lpt = parts;
    assign_least_loaded(lpt, ranks, costs);
    std::printf("%7zu %14.3f %14.3f\n", ranks,
                assignment_imbalance(rr, ranks, costs),
                assignment_imbalance(lpt, ranks, costs));
  }

  // End-to-end check: run both assignments through the real cluster
  // driver at 16 ranks and project per-rank K20 times from measured work.
  bench::print_header("Projected 16-node runtime (K20 model)");
  const auto s2 = static_cast<std::uint64_t>(scale) * scale;
  const PerfModel model;
  for (const PartitionAssignment assignment :
       {PartitionAssignment::kRoundRobin,
        PartitionAssignment::kCostBalanced}) {
    ClusterRunConfig cfg;
    cfg.ranks = 16;
    cfg.zonal = {.tile_size = tile, .bins = bins};
    cfg.assignment = assignment;
    const ClusterRunResult r =
        run_cluster_zonal(w.rasters, w.schemas, w.counties, cfg);
    double slowest = 0.0;
    for (const WorkCounters& rank_work : r.per_rank_work) {
      WorkCounters full = rank_work;
      full.cells_total *= s2;
      full.pip_cell_tests *= s2;
      full.pip_edge_tests *= s2;
      full.raw_bytes *= s2;
      const StepTimes t = model.project(full, DeviceProfile::k20());
      slowest = std::max(slowest, t.end_to_end());
    }
    std::printf("  %-14s %8.1f s\n",
                assignment == PartitionAssignment::kRoundRobin
                    ? "round-robin"
                    : "LPT",
                slowest);
  }
  std::printf("\nLPT flattens the Fig.-6 tail: with 36 partitions on 16\n"
              "nodes, round-robin strands heavy interior partitions "
              "together.\n");
  return 0;
}
