// Micro-benchmarks of the Thrust-analog primitives that implement the
// Fig. 4 post-processing (Step 2 -> Step 3 hand-off).
#include <benchmark/benchmark.h>

#include <random>
#include <vector>

#include "primitives/primitives.hpp"

namespace {

std::vector<std::uint32_t> random_keys(std::size_t n,
                                       std::uint32_t distinct) {
  std::mt19937 rng(42);
  std::uniform_int_distribution<std::uint32_t> dist(0, distinct - 1);
  std::vector<std::uint32_t> v(n);
  for (auto& x : v) x = dist(rng);
  return v;
}

void BM_StableSortByKey(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto base_keys = random_keys(n, 1u << 16);
  std::vector<std::uint32_t> base_vals(n);
  std::iota(base_vals.begin(), base_vals.end(), 0u);
  for (auto _ : state) {
    auto keys = base_keys;
    auto vals = base_vals;
    zh::prim::stable_sort_by_key(keys, vals);
    benchmark::DoNotOptimize(keys.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) *
                          state.iterations());
}
BENCHMARK(BM_StableSortByKey)->Range(1 << 10, 1 << 20);

void BM_ReduceByKey(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto keys = random_keys(n, 256);
  std::sort(keys.begin(), keys.end());  // reduce_by_key expects groups
  const std::vector<std::uint32_t> vals(n, 1);
  for (auto _ : state) {
    auto [k, v] = zh::prim::reduce_by_key<std::uint32_t, std::uint32_t>(
        keys, vals);
    benchmark::DoNotOptimize(k.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) *
                          state.iterations());
}
BENCHMARK(BM_ReduceByKey)->Range(1 << 10, 1 << 20);

void BM_ExclusiveScan(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::vector<std::uint32_t> in(n, 3);
  std::vector<std::uint32_t> out(n);
  for (auto _ : state) {
    zh::prim::exclusive_scan<std::uint32_t>(in, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) *
                          state.iterations());
}
BENCHMARK(BM_ExclusiveScan)->Range(1 << 10, 1 << 22);

void BM_Reduce(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::vector<std::uint64_t> in(n, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zh::prim::reduce<std::uint64_t>(in));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) *
                          state.iterations());
}
BENCHMARK(BM_Reduce)->Range(1 << 10, 1 << 22);

void BM_CopyIf(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto in = random_keys(n, 1000);
  for (auto _ : state) {
    auto out = zh::prim::copy_if<std::uint32_t>(
        in, [](std::uint32_t v) { return v % 3 == 0; });
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) *
                          state.iterations());
}
BENCHMARK(BM_CopyIf)->Range(1 << 10, 1 << 20);

}  // namespace

BENCHMARK_MAIN();
