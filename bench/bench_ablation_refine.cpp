// Step-4 scheduling ablations:
//  (a) block granularity -- the paper's one-block-per-polygon kernel
//      (Fig. 5) vs one block per (polygon, tile) pair with atomics.
//      Coarse blocks serialize big polygons; fine blocks self-balance.
//  (b) hybrid two-device refinement (the ref-[20] CPU+GPU scheme):
//      Step-4 groups split by modeled device speed, run concurrently.
// Both must (and do) produce bit-identical histograms.
#include <cstdio>

#include "bench_util.hpp"
#include "common/timer.hpp"
#include "core/hybrid.hpp"
#include "core/pipeline.hpp"
#include "data/county_synth.hpp"
#include "data/dem_synth.hpp"

int main() {
  using namespace zh;
  const int edge = bench::env_int("ZH_EDGE", 2400);
  const int zones = bench::env_int("ZH_ZONES", 24);
  const BinIndex bins =
      static_cast<BinIndex>(bench::env_int("ZH_BINS", 500));

  const GeoTransform t(-100.0, 40.0, 1.0 / 240.0, 1.0 / 240.0);
  const DemRaster dem = generate_dem(edge, edge, t);
  CountyParams cp;
  cp.grid_x = 6;
  cp.grid_y = zones / 6;
  const GeoBox ext = t.extent(edge, edge);
  const PolygonSet counties = generate_counties(
      GeoBox{ext.min_x - 0.1, ext.min_y - 0.1, ext.max_x + 0.1,
             ext.max_y + 0.1},
      cp);
  std::printf("workload: %dx%d DEM, %zu zones (few, large: the "
              "coarse-granularity worst case)\n",
              edge, edge, counties.size());

  Device device(DeviceProfile::host());

  bench::print_header("(a) Step-4 block granularity");
  HistogramSet reference;
  for (const auto& [granularity, label] :
       {std::pair{RefineGranularity::kPolygonGroup,
                  "block per polygon (Fig. 5)"},
        std::pair{RefineGranularity::kPolygonTile,
                  "block per (polygon, tile) + atomics"}}) {
    const ZonalPipeline pipe(device,
                             {.tile_size = 60, .bins = bins,
                              .refine_granularity = granularity});
    const ZonalResult r = pipe.run(dem, counties);
    std::printf("  %-40s step4 %6.2f s   blocks %llu\n", label,
                r.times.seconds[4],
                static_cast<unsigned long long>(
                    granularity == RefineGranularity::kPolygonGroup
                        ? counties.size()
                        : r.work.pairs_intersect));
    if (reference.empty()) {
      reference = r.per_polygon;
    } else if (!(reference == r.per_polygon)) {
      std::printf("  ERROR: granularities disagree!\n");
      return 1;
    }
  }
  std::printf("  identical histograms. With %zu polygons vs %zu workers,\n"
              "  coarse blocks limit parallelism to the polygon count;\n"
              "  fine blocks expose pair-level parallelism (the GPU win).\n",
              counties.size(), ThreadPool::global().size());

  bench::print_header("(b) Hybrid two-device Step 4 (ref [20])");
  Device titan(DeviceProfile::gtx_titan());
  Device host2(DeviceProfile::host());
  for (const double fraction : {1.0, 0.7, -1.0}) {
    const HybridResult h = run_hybrid(
        titan, host2, dem, counties,
        {.zonal = {.tile_size = 60, .bins = bins},
         .primary_fraction = fraction});
    std::printf("  primary share %.2f: primary %6.2f s / secondary "
                "%6.2f s  identical: %s\n",
                h.primary_fraction, h.primary_seconds,
                h.secondary_seconds,
                h.per_polygon == reference ? "yes" : "NO");
  }
  std::printf("  (shares chosen by modeled Step-4 speed when fraction "
              "< 0)\n");
  return 0;
}
