// Filter-first decode ablation: when the zone layer covers only part of
// the raster (the paper's southern-Florida / coverage-edge observation),
// pairing first lets Step 0 skip every tile outside all zones and
// Step 1 skip everything but inside tiles. Sweeps zone-coverage fraction
// and reports decode/histogram work vs the eager pipeline.
#include <cstdio>

#include "bench_util.hpp"
#include "common/timer.hpp"
#include "core/lazy_pipeline.hpp"
#include "data/county_synth.hpp"
#include "data/dem_synth.hpp"

int main() {
  using namespace zh;
  const int edge = bench::env_int("ZH_EDGE", 2400);
  const BinIndex bins =
      static_cast<BinIndex>(bench::env_int("ZH_BINS", 500));
  const std::int64_t tile = bench::env_int("ZH_TILE", 60);

  const GeoTransform t(-100.0, 40.0, 1.0 / 240.0, 1.0 / 240.0);
  std::printf("workload: %dx%d DEM, tile=%lld, %u bins\n", edge, edge,
              static_cast<long long>(tile), bins);
  const DemRaster dem = generate_dem(edge, edge, t);
  Timer enc;
  const BqCompressedRaster compressed =
      BqCompressedRaster::encode(dem, tile);
  std::printf("compressed to %.1f%% in %.1fs\n\n",
              100.0 * compressed.compression_ratio(), enc.seconds());

  Device device(DeviceProfile::host());
  const ZonalConfig cfg{.tile_size = tile, .bins = bins};
  const ZonalPipeline pipe(device, cfg);
  const GeoBox ext = t.extent(edge, edge);

  bench::print_header("Zone-coverage sweep: eager vs filter-first decode");
  std::printf("%10s %12s %12s %12s %10s %10s %8s\n", "coverage",
              "tiles", "decoded", "hist'd", "eager(s)", "lazy(s)",
              "equal");
  bench::print_rule();

  for (const double coverage : {1.0, 0.5, 0.25, 0.1}) {
    CountyParams cp;
    cp.grid_x = 5;
    cp.grid_y = 4;
    const double w = ext.width() * coverage;
    const PolygonSet zones = generate_counties(
        GeoBox{ext.min_x + 0.01, ext.min_y + 0.01, ext.min_x + w,
               ext.max_y - 0.01},
        cp);

    Timer te;
    const ZonalResult eager = pipe.run(compressed, zones);
    const double eager_s = te.seconds();

    Timer tl;
    LazyCounters counters;
    const ZonalResult lazy =
        run_lazy(device, compressed, zones, cfg, &counters);
    const double lazy_s = tl.seconds();

    std::printf("%9.0f%% %12llu %12llu %12llu %10.2f %10.2f %8s\n",
                100.0 * coverage,
                static_cast<unsigned long long>(counters.tiles_total),
                static_cast<unsigned long long>(counters.tiles_decoded),
                static_cast<unsigned long long>(
                    counters.tiles_histogrammed),
                eager_s, lazy_s,
                lazy.per_polygon == eager.per_polygon ? "yes" : "NO");
  }
  std::printf(
      "\ndecode and per-tile-histogram work scale with zone coverage in\n"
      "the lazy path; the eager path always pays for the whole raster.\n");
  return 0;
}
