// Zonal point summation (refs [19]/[20] companion operation): grid-file
// filtering routes most points through bucket aggregation, leaving only
// boundary-tile points for ray-crossing tests. Compares against the
// PIP-everything reference and reports the filtering ratio.
#include <cstdio>

#include "bench_util.hpp"
#include "common/timer.hpp"
#include "core/point_zonal.hpp"
#include "data/county_synth.hpp"
#include "data/points_synth.hpp"

int main() {
  using namespace zh;
  const int points_n = bench::env_int("ZH_POINTS", 2'000'000);
  const int zones = bench::env_int("ZH_ZONES", 100);
  const int clusters = bench::env_int("ZH_CLUSTERS", 12);

  const GeoTransform t(-100.0, 45.0, 0.01, 0.01);
  const TilingScheme tiling(1000, 1600, 20);  // 10x16-degree grid
  const GeoBox extent = t.extent(1000, 1600);

  std::printf("workload: %d points (%d hotspots), %d zones, %zu tiles\n",
              points_n, clusters, zones, tiling.tile_count());
  PointParams pp;
  pp.count = static_cast<std::size_t>(points_n);
  pp.clusters = clusters;
  const PointSet points = generate_points(extent, pp);
  CountyParams cp;
  cp.grid_x = 10;
  cp.grid_y = zones / 10;
  const PolygonSet counties = generate_counties(
      GeoBox{extent.min_x - 0.1, extent.min_y - 0.1, extent.max_x + 0.1,
             extent.max_y + 0.1},
      cp);

  Device device(DeviceProfile::host());

  bench::print_header("Zonal point summation");
  Timer tg;
  PointZonalCounters counters;
  const auto grid = zonal_point_summation(device, points, counties,
                                          tiling, t, &counters);
  const double grid_s = tg.seconds();
  std::printf("  grid-filtered: %8.3f s\n", grid_s);

  Timer tr;
  const auto reference = zonal_point_summation_reference(points, counties);
  const double ref_s = tr.seconds();
  std::printf("  reference PIP: %8.3f s  (%.1fx slower)\n", ref_s,
              ref_s / grid_s);

  bool equal = true;
  std::uint64_t total = 0;
  for (std::size_t z = 0; z < grid.size(); ++z) {
    equal &= grid[z].count == reference[z].count;
    total += grid[z].count;
  }
  std::printf("  results identical: %s; %s points attributed to zones\n",
              equal ? "yes" : "NO",
              bench::with_commas(total).c_str());
  std::printf("  bucket-aggregated points: %s (no PIP test needed)\n",
              bench::with_commas(counters.points_in_inside_tiles).c_str());
  std::printf("  boundary PIP tests:       %s\n",
              bench::with_commas(counters.pip_point_tests).c_str());
  const double filtered =
      100.0 * static_cast<double>(counters.points_in_inside_tiles) /
      static_cast<double>(counters.points_in_inside_tiles +
                          counters.pip_point_tests + 1);
  std::printf("  -> %.1f%% of point-zone work skipped PIP entirely\n",
              filtered);
  return equal ? 0 : 1;
}
