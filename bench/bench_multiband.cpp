// Multi-band amortization bench (the intro's GOES-R/WRF motivation):
// zonal histogramming a 16-band stack with one shared Step-2 pairing vs
// 16 independent pipeline runs. The geometric filter is band-invariant,
// so the series path removes (bands-1) pairing passes.
#include <cstdio>

#include "bench_util.hpp"
#include "common/timer.hpp"
#include "core/multiband.hpp"
#include "data/county_synth.hpp"
#include "data/dem_synth.hpp"

int main() {
  using namespace zh;
  const int edge = bench::env_int("ZH_EDGE", 1200);
  const int bands_n = bench::env_int("ZH_BANDS", 16);
  const int zones = bench::env_int("ZH_ZONES", 48);
  const BinIndex bins =
      static_cast<BinIndex>(bench::env_int("ZH_BINS", 1000));

  std::printf("workload: %d bands of %dx%d cells, %d zones, %u bins\n",
              bands_n, edge, edge, zones, bins);
  const GeoTransform t(-100.0, 40.0, 1.0 / 240.0, 1.0 / 240.0);
  std::vector<DemRaster> bands;
  bands.reserve(static_cast<std::size_t>(bands_n));
  for (int b = 0; b < bands_n; ++b) {
    bands.push_back(generate_dem(
        edge, edge, t,
        {.seed = 1000 + static_cast<std::uint64_t>(b),
         .max_value = static_cast<CellValue>(bins - 1)}));
  }
  CountyParams cp;
  cp.grid_x = 8;
  cp.grid_y = zones / 8;
  const GeoBox ext = t.extent(edge, edge);
  const PolygonSet counties = generate_counties(
      GeoBox{ext.min_x - 0.1, ext.min_y - 0.1, ext.max_x + 0.1,
             ext.max_y + 0.1},
      cp);

  Device device(DeviceProfile::host());
  const ZonalConfig cfg{.tile_size = 60, .bins = bins};

  bench::print_header("Band series vs independent runs");
  Timer ts;
  ZonalWorkspace ws;
  const SeriesResult series =
      run_series(device, bands, counties, cfg, &ws);
  const double series_s = ts.seconds();
  std::printf("  %-38s %8.2f s  (step 2: %.2f s, once)\n",
              "run_series (shared pairing)", series_s,
              series.times.seconds[2]);

  Timer ti;
  const ZonalPipeline pipe(device, cfg);
  double step2_total = 0.0;
  bool equal = true;
  for (int b = 0; b < bands_n; ++b) {
    const ZonalResult r =
        pipe.run(bands[static_cast<std::size_t>(b)], counties, &ws);
    step2_total += r.times.seconds[2];
    equal &= r.per_polygon == series.per_band[static_cast<std::size_t>(b)];
  }
  const double indep_s = ti.seconds();
  std::printf("  %-38s %8.2f s  (step 2: %.2f s, %dx)\n",
              "independent runs", indep_s, step2_total, bands_n);
  std::printf("  results identical across paths: %s\n",
              equal ? "yes" : "NO");
  std::printf("  spatial-filter work removed by sharing: %.2f s "
              "(%d passes -> 1). Step 2 is deliberately cheap in this\n"
              "  design, so the saving scales with polygon complexity, "
              "not with raster size.\n",
              step2_total - series.times.seconds[2], bands_n);
  return equal ? 0 : 1;
}
