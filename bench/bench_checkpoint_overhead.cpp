// Checkpoint journal overhead gate.
//
// Runs the fault-tolerant cluster driver on a Table-1 CONUS raster twice
// -- without a checkpoint sink, then journaling every accepted partition
// (fsync per record, the strictest durability setting) -- and prints
// best-of-N wall times as machine-readable lines:
//
//   ZH_CHECKPOINT_BENCH_BASE_SECONDS=<seconds>
//   ZH_CHECKPOINT_BENCH_JOURNAL_SECONDS=<seconds>
//   ZH_CHECKPOINT_BENCH_OVERHEAD_PCT=<percent>
//
// Exits nonzero when the journaled run is more than ZH_CHECKPOINT_TOL_PCT
// percent slower (default 3) AND the absolute gap exceeds
// ZH_CHECKPOINT_TOL_ABS_MS milliseconds (default 5; min-of-reps on a
// small workload still jitters by a few ms, and a sub-noise "regression"
// on a tiny base time is not a regression).
//
// Knobs: ZH_SCALE (default 60), ZH_ZONES (128), ZH_BINS (256),
// ZH_RANKS (3), ZH_REPS (5).
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <string>

#include "bench_util.hpp"
#include "core/cluster_driver.hpp"
#include "io/journal.hpp"

int main() {
  using namespace zh;
  const int scale = bench::env_int("ZH_SCALE", 60);
  const int zones = bench::env_int("ZH_ZONES", 128);
  const BinIndex bins =
      static_cast<BinIndex>(bench::env_int("ZH_BINS", 256));
  const std::size_t ranks =
      static_cast<std::size_t>(std::max(1, bench::env_int("ZH_RANKS", 3)));
  const int reps = std::max(1, bench::env_int("ZH_REPS", 5));
  const double tol_pct =
      static_cast<double>(bench::env_int("ZH_CHECKPOINT_TOL_PCT", 3));
  const double tol_abs_ms =
      static_cast<double>(bench::env_int("ZH_CHECKPOINT_TOL_ABS_MS", 5));

  const conus::RasterSpec spec = conus::table1()[0];
  std::vector<DemRaster> rasters;
  rasters.push_back(conus::generate_raster(spec, scale));
  const std::vector<std::pair<int, int>> schemas = {
      {spec.part_rows, spec.part_cols}};
  const PolygonSet counties = conus::generate_county_layer(zones, 7);

  ClusterRunConfig cfg;
  cfg.ranks = ranks;
  cfg.zonal = {.tile_size = conus::tile_size_cells(scale), .bins = bins};
  cfg.fault_tolerance.enabled = true;
  cfg.fault_tolerance.worker_timeout_ms = 10000;

  const RunManifest manifest =
      make_manifest(rasters, schemas, counties, cfg);
  std::printf("checkpoint-overhead workload: %lldx%lld raster, %d zones, "
              "%u bins, %zu ranks, %u partitions, %d reps\n",
              static_cast<long long>(rasters[0].rows()),
              static_cast<long long>(rasters[0].cols()), zones, bins, ranks,
              manifest.partition_count, reps);

  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "zh_bench_checkpoint";
  std::filesystem::create_directories(dir);
  const std::string jpath = (dir / "run.journal").string();

  // Interleave base/journal reps so drift (thermal, cache warmup) hits
  // both arms equally instead of biasing whichever runs second.
  double base_s = 0.0;
  double journal_s = 0.0;
  WorkCounters journal_work;
  for (int i = 0; i < reps; ++i) {
    {
      Timer timer;
      ClusterRunConfig run_cfg = cfg;
      const ClusterRunResult r =
          run_cluster_zonal(rasters, schemas, counties, run_cfg);
      const double s = timer.seconds();
      if (i == 0 || s < base_s) base_s = s;
      std::printf("  rep %d base:    %.3f s (%llu cells)\n", i, s,
                  static_cast<unsigned long long>(r.work.cells_total));
    }
    {
      Timer timer;
      ClusterRunConfig run_cfg = cfg;
      JournalWriter journal = JournalWriter::create(jpath, manifest);
      run_cfg.checkpoint.sink = &journal;
      const ClusterRunResult r =
          run_cluster_zonal(rasters, schemas, counties, run_cfg);
      journal.flush();
      const double s = timer.seconds();
      if (i == 0 || s < journal_s) {
        journal_s = s;
        journal_work = r.work;
      }
      std::printf("  rep %d journal: %.3f s (%llu records)\n", i, s,
                  static_cast<unsigned long long>(journal.records_written()));
    }
  }
  std::filesystem::remove_all(dir);

  const double pct = (journal_s - base_s) / base_s * 100.0;
  const double abs_ms = (journal_s - base_s) * 1e3;
  std::printf("ZH_CHECKPOINT_BENCH_BASE_SECONDS=%.6f\n", base_s);
  std::printf("ZH_CHECKPOINT_BENCH_JOURNAL_SECONDS=%.6f\n", journal_s);
  std::printf("ZH_CHECKPOINT_BENCH_OVERHEAD_PCT=%.2f\n", pct);

  bench::write_bench_report(
      "BENCH_checkpoint_overhead.json", "bench_checkpoint_overhead",
      "conus table-1 raster 0 + journal-per-partition",
      {{"scale", std::to_string(scale)},
       {"zones", std::to_string(zones)},
       {"bins", std::to_string(bins)},
       {"ranks", std::to_string(ranks)},
       {"partitions", std::to_string(manifest.partition_count)},
       {"reps", std::to_string(reps)},
       {"base_seconds", std::to_string(base_s)},
       {"journal_seconds", std::to_string(journal_s)},
       {"overhead_pct", std::to_string(pct)},
       {"tolerance_pct", std::to_string(tol_pct)}},
      nullptr, &journal_work,
      {{"checkpoint_base", base_s}, {"checkpoint_journal", journal_s}});

  if (pct > tol_pct && abs_ms > tol_abs_ms) {
    std::printf("FAIL: journaling overhead %.2f%% (%.1f ms) exceeds "
                "%.0f%% tolerance\n",
                pct, abs_ms, tol_pct);
    return 1;
  }
  std::printf("OK: journaling overhead %.2f%% (%.1f ms) within %.0f%% "
              "tolerance (or under %.0f ms absolute slack)\n",
              pct, abs_ms, tol_pct, tol_abs_ms);
  return 0;
}
