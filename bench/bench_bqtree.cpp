// BQ-Tree compression study (Sec. IV.A-IV.B claims): terrain rasters
// compress to a small fraction of raw size (the paper: 40 GB -> 7.3 GB,
// ~18%), decode throughput supports per-tile decompression as a pipeline
// step, and the compressed upload beats the raw upload at PCIe rates
// even after paying the decode cost.
#include <cstdio>

#include "bench_util.hpp"
#include "bqtree/compressed_raster.hpp"
#include "common/timer.hpp"
#include "data/dem_synth.hpp"
#include "device/device.hpp"

int main() {
  using namespace zh;
  const int edge = bench::env_int("ZH_EDGE", 3600);  // cells per side
  const std::int64_t tile = bench::env_int("ZH_TILE", 360);

  std::printf("generating %dx%d fBm DEM...\n", edge, edge);
  const DemRaster dem = generate_dem(
      edge, edge, GeoTransform(-100.0, 40.0, 1.0 / 3600.0, 1.0 / 3600.0));

  bench::print_header("BQ-Tree compression on synthetic SRTM-like DEM");
  Timer enc;
  const BqCompressedRaster comp = BqCompressedRaster::encode(dem, tile);
  const double enc_s = enc.seconds();
  const double raw_mb = static_cast<double>(comp.raw_bytes()) / 1e6;
  const double comp_mb = static_cast<double>(comp.compressed_bytes()) / 1e6;
  std::printf("  raw size:        %10.1f MB\n", raw_mb);
  std::printf("  compressed:      %10.1f MB  (%.1f%% of raw; paper: "
              "~18%% on real SRTM)\n",
              comp_mb, 100.0 * comp.compression_ratio());
  std::printf("  encode:          %10.2f s   (%.0f Mcells/s)\n", enc_s,
              static_cast<double>(dem.cell_count()) / enc_s / 1e6);

  Timer dec;
  const DemRaster back = comp.decode_all();
  const double dec_s = dec.seconds();
  std::printf("  decode:          %10.2f s   (%.0f Mcells/s)\n", dec_s,
              static_cast<double>(dem.cell_count()) / dec_s / 1e6);
  std::printf("  roundtrip exact: %s\n",
              std::equal(back.cells().begin(), back.cells().end(),
                         dem.cells().begin())
                  ? "yes"
                  : "NO -- BUG");

  bench::print_header("Transfer tradeoff at PCIe 2.5 GB/s (paper's "
                      "Sec. IV.B arithmetic)");
  const Device dev(DeviceProfile::gtx_titan());
  const double t_raw = dev.modeled_h2d_seconds(comp.raw_bytes());
  const double t_comp = dev.modeled_h2d_seconds(comp.compressed_bytes());
  std::printf("  upload raw:                 %8.3f s\n", t_raw);
  std::printf("  upload compressed:          %8.3f s\n", t_comp);
  std::printf("  upload saving:              %8.3f s\n", t_raw - t_comp);
  std::printf(
      "  -> compression pays off whenever device-side decode costs less\n"
      "     than the saving (the paper's GPU decodes the full 20.1 G-cell\n"
      "     raster in ~9 s vs a ~13 s transfer saving at full scale).\n");

  // Random noise control: incompressible input must not shrink.
  bench::print_header("Control: incompressible input");
  DemRaster noise(512, 512);
  std::uint32_t state = 1;
  for (CellValue& v : noise.cells()) {
    state = state * 1664525u + 1013904223u;
    v = static_cast<CellValue>(state >> 16);
  }
  const BqCompressedRaster ncomp = BqCompressedRaster::encode(noise, 128);
  std::printf("  white-noise ratio: %.2f (expected ~1 or above)\n",
              ncomp.compression_ratio());
  return 0;
}
