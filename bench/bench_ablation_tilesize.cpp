// Tile-size ablation (Sec. III.A design discussion): larger tiles shrink
// the per-tile histogram table but put more cells into boundary tiles,
// inflating Step-4 point-in-polygon work; smaller tiles do the reverse.
// The paper picks 0.1 degree (360 cells) empirically -- this bench maps
// the tradeoff curve.
#include <cstdio>

#include "bench_util.hpp"
#include "core/pipeline.hpp"
#include "data/county_synth.hpp"
#include "data/dem_synth.hpp"

int main() {
  using namespace zh;
  const int edge = bench::env_int("ZH_EDGE", 2400);
  const int zones = bench::env_int("ZH_ZONES", 64);
  const BinIndex bins =
      static_cast<BinIndex>(bench::env_int("ZH_BINS", 1000));

  std::printf("workload: %dx%d DEM, %d space-filling zones, %u bins\n",
              edge, edge, zones, bins);
  const GeoTransform t(-100.0, 40.0, 1.0 / 240.0, 1.0 / 240.0);
  const DemRaster dem = generate_dem(edge, edge, t);
  CountyParams cp;
  cp.grid_x = 8;
  cp.grid_y = zones / 8;
  const GeoBox ext = t.extent(edge, edge);
  const PolygonSet counties = generate_counties(
      GeoBox{ext.min_x - 0.1, ext.min_y - 0.1, ext.max_x + 0.1,
             ext.max_y + 0.1},
      cp);

  Device device(DeviceProfile::host());

  bench::print_header("Tile-size ablation (fixed raster and zones)");
  std::printf("%6s %8s %9s %9s %10s %9s %9s %9s\n", "tile", "tiles",
              "inside", "boundary", "bnd-cell%", "step1(s)", "step4(s)",
              "total(s)");
  bench::print_rule();

  HistogramSet reference;
  for (const std::int64_t tile : {30, 60, 120, 240, 480, 800}) {
    const ZonalPipeline pipe(device, {.tile_size = tile, .bins = bins});
    const ZonalResult r = pipe.run(dem, counties);
    const double boundary_cell_pct =
        100.0 * static_cast<double>(r.work.pip_cell_tests) /
        static_cast<double>(r.work.cells_total);
    std::printf("%6lld %8llu %9llu %9llu %9.1f%% %9.2f %9.2f %9.2f\n",
                static_cast<long long>(tile),
                static_cast<unsigned long long>(r.work.tiles_total),
                static_cast<unsigned long long>(r.work.pairs_inside),
                static_cast<unsigned long long>(r.work.pairs_intersect),
                boundary_cell_pct, r.times.seconds[1], r.times.seconds[4],
                r.times.step_total());
    if (reference.empty()) {
      reference = r.per_polygon;
    } else if (!(reference == r.per_polygon)) {
      std::printf("  ERROR: result differs from the first tile size!\n");
      return 1;
    }
  }
  std::printf(
      "\nall tile sizes produce identical histograms (exactness holds);\n"
      "boundary-cell share (Step-4 work) grows with tile size while the\n"
      "per-tile histogram table shrinks -- the Sec. III.A tradeoff.\n");
  return 0;
}
