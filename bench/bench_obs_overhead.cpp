// Observability kill-switch overhead check.
//
// Runs the Table-2 pipeline workload (one CONUS raster) with all
// instrumentation *disabled at runtime* -- the state every production
// run is in unless --trace/--metrics is passed -- and prints the
// best-of-N wall time as a machine-readable line:
//
//   ZH_OBS_BENCH_SECONDS=<seconds>
//
// tools/check.sh runs this binary from both the regular (ZH_OBS=ON)
// build and the obs-off preset (ZH_OBS=OFF, macros compiled to no-ops)
// and asserts the ON/OFF ratio stays within a small tolerance: the cost
// of a dormant span/counter site must stay in the noise.
//
// A second section times the *active* latency-record path through the
// registry (obs::latency_record called directly, so both build flavors
// measure the same code): this is the per-sample cost a serving run
// pays when /metrics is live, and it feeds the committed
// BENCH_obs_overhead.json baseline that the zh_perf gate self-compares.
//
// Knobs: ZH_SCALE (default 60), ZH_ZONES (256), ZH_BINS (256),
// ZH_REPS (3), ZH_LAT_SAMPLES (1000000).
#include <algorithm>
#include <cstdio>

#include "bench_util.hpp"
#include "core/pipeline.hpp"
#include "obs/metrics.hpp"

namespace {

/// Best-of-reps seconds for `samples` latency_record calls against one
/// interned metric. The sample values sweep the octave range so bucket
/// indexing is not branch-predicted into a single sub-bucket.
double time_latency_records(int reps, int samples) {
  using namespace zh;
  const obs::MetricId id =
      obs::metric_id("latency.bench_record", obs::MetricKind::kLatency);
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    Timer timer;
    double v = 1e-7;
    for (int i = 0; i < samples; ++i) {
      obs::latency_record(id, v);
      v = v < 1.0 ? v * 1.000001 : 1e-7;
    }
    const double s = timer.seconds();
    if (r == 0 || s < best) best = s;
  }
  return best;
}

}  // namespace

int main() {
  using namespace zh;
  const int scale = bench::env_int("ZH_SCALE", 60);
  const int zones = bench::env_int("ZH_ZONES", 256);
  const BinIndex bins =
      static_cast<BinIndex>(bench::env_int("ZH_BINS", 256));
  const int reps = std::max(1, bench::env_int("ZH_REPS", 3));
  const int lat_samples =
      std::max(1, bench::env_int("ZH_LAT_SAMPLES", 1000000));
  const std::int64_t tile = conus::tile_size_cells(scale);

  const conus::RasterSpec spec = conus::table1()[0];
  const DemRaster raster = conus::generate_raster(spec, scale);
  const PolygonSet counties = conus::generate_county_layer(zones, 7);
  std::printf("obs-overhead workload: %lldx%lld raster, %d zones, %u "
              "bins, %d reps\n",
              static_cast<long long>(raster.rows()),
              static_cast<long long>(raster.cols()), zones, bins, reps);

  Device device(DeviceProfile::host());
  const ZonalPipeline pipeline(device, {.tile_size = tile, .bins = bins});
  const PolygonSoA soa = PolygonSoA::build(counties);

  double best = 0.0;
  for (int i = 0; i < reps; ++i) {
    Timer timer;
    const ZonalResult r = pipeline.run(raster, counties, soa);
    const double s = timer.seconds();
    if (i == 0 || s < best) best = s;
    std::printf("  rep %d: %.3f s (steps %.3f s)\n", i, s,
                r.times.step_total());
  }
  std::printf("ZH_OBS_BENCH_SECONDS=%.6f\n", best);

  // Active record path: enable the registry for the microbench only so
  // the dormant measurement above stays representative of idle runs.
  obs::set_metrics_enabled(true);
  const double lat_best = time_latency_records(reps, lat_samples);
  obs::set_metrics_enabled(false);
  obs::metrics_reset();
  const double ns_per = lat_best / lat_samples * 1e9;
  std::printf("latency_record: %d samples best of %d reps: %.4f s "
              "(%.1f ns/sample)\n",
              lat_samples, reps, lat_best, ns_per);

  bench::write_bench_report(
      "BENCH_obs_overhead.json", "bench_obs_overhead",
      "conus table-1 raster 0, dormant pipeline + active latency_record",
      {{"scale", std::to_string(scale)},
       {"zones", std::to_string(zones)},
       {"bins", std::to_string(bins)},
       {"reps", std::to_string(reps)},
       {"lat_samples", std::to_string(lat_samples)}},
      nullptr, nullptr,
      {{"obs_dormant_wall", best}, {"obs_latency_record", lat_best}});
  return 0;
}
