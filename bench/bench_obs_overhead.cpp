// Observability kill-switch overhead check.
//
// Runs the Table-2 pipeline workload (one CONUS raster) with all
// instrumentation *disabled at runtime* -- the state every production
// run is in unless --trace/--metrics is passed -- and prints the
// best-of-N wall time as a machine-readable line:
//
//   ZH_OBS_BENCH_SECONDS=<seconds>
//
// tools/check.sh runs this binary from both the regular (ZH_OBS=ON)
// build and the obs-off preset (ZH_OBS=OFF, macros compiled to no-ops)
// and asserts the ON/OFF ratio stays within a small tolerance: the cost
// of a dormant span/counter site must stay in the noise.
//
// Knobs: ZH_SCALE (default 60), ZH_ZONES (256), ZH_BINS (256),
// ZH_REPS (3).
#include <algorithm>
#include <cstdio>

#include "bench_util.hpp"
#include "core/pipeline.hpp"

int main() {
  using namespace zh;
  const int scale = bench::env_int("ZH_SCALE", 60);
  const int zones = bench::env_int("ZH_ZONES", 256);
  const BinIndex bins =
      static_cast<BinIndex>(bench::env_int("ZH_BINS", 256));
  const int reps = std::max(1, bench::env_int("ZH_REPS", 3));
  const std::int64_t tile = conus::tile_size_cells(scale);

  const conus::RasterSpec spec = conus::table1()[0];
  const DemRaster raster = conus::generate_raster(spec, scale);
  const PolygonSet counties = conus::generate_county_layer(zones, 7);
  std::printf("obs-overhead workload: %lldx%lld raster, %d zones, %u "
              "bins, %d reps\n",
              static_cast<long long>(raster.rows()),
              static_cast<long long>(raster.cols()), zones, bins, reps);

  Device device(DeviceProfile::host());
  const ZonalPipeline pipeline(device, {.tile_size = tile, .bins = bins});
  const PolygonSoA soa = PolygonSoA::build(counties);

  double best = 0.0;
  for (int i = 0; i < reps; ++i) {
    Timer timer;
    const ZonalResult r = pipeline.run(raster, counties, soa);
    const double s = timer.seconds();
    if (i == 0 || s < best) best = s;
    std::printf("  rep %d: %.3f s (steps %.3f s)\n", i, s,
                r.times.step_total());
  }
  std::printf("ZH_OBS_BENCH_SECONDS=%.6f\n", best);
  return 0;
}
