// Cell-visitation-order ablation (Sec. III.A future work: "pre-sorting
// tile cells using a better ordering (e.g., Morton Code) to preserve
// spatial proximity"). Compares Step-1 throughput with row-major vs
// Z-order traversal across tile sizes, and verifies order-independence
// of the histograms.
#include <cstdio>

#include "bench_util.hpp"
#include "common/timer.hpp"
#include "core/step1_tile_hist.hpp"
#include "data/dem_synth.hpp"

int main() {
  using namespace zh;
  const int edge = bench::env_int("ZH_EDGE", 2880);
  const BinIndex bins =
      static_cast<BinIndex>(bench::env_int("ZH_BINS", 5000));

  std::printf("workload: %dx%d DEM, %u bins\n", edge, edge, bins);
  const DemRaster dem = generate_dem(
      edge, edge, GeoTransform(-100.0, 40.0, 1.0 / 3600.0, 1.0 / 3600.0));
  Device device(DeviceProfile::host());

  bench::print_header("Step-1 cell-order ablation (seconds, best of 3)");
  std::printf("%6s %10s %10s %10s %8s\n", "tile", "row-major", "morton",
              "ratio", "equal");
  bench::print_rule();

  for (const std::int64_t tile : {32, 90, 360, 720}) {
    const TilingScheme tiling(dem.rows(), dem.cols(), tile);
    auto best = [&](CellOrder order) {
      double best_s = 1e30;
      HistogramSet h;
      for (int rep = 0; rep < 3; ++rep) {
        Timer t;
        tile_histograms_into(device, dem, tiling, bins,
                             CountMode::kAtomic, h, order);
        best_s = std::min(best_s, t.seconds());
      }
      return std::pair{best_s, std::move(h)};
    };
    auto [rm_s, rm_h] = best(CellOrder::kRowMajor);
    auto [mo_s, mo_h] = best(CellOrder::kMorton);
    std::printf("%6lld %10.3f %10.3f %9.2fx %8s\n",
                static_cast<long long>(tile), rm_s, mo_s, mo_s / rm_s,
                rm_h == mo_h ? "yes" : "NO");
  }
  std::printf(
      "\nhistograms are identical under both orders. On the host CPU the\n"
      "row-major order already streams linearly, so Z-order mostly pays\n"
      "decode overhead; on a GPU the target benefit is intra-warp access\n"
      "locality when blockDim does not divide the tile width.\n");
  return 0;
}
