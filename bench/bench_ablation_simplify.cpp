// Boundary-simplification ablation: Step-4 cost is boundary-tile cells
// x polygon vertices, so Douglas-Peucker generalization of the zone
// layer trades histogram exactness for refinement work -- the knob real
// county datasets ship as multiple generalization levels. Reports, per
// tolerance: vertex reduction, Step-4 edge tests, measured time, and
// the relative L1 error of the resulting histograms.
#include <cstdio>

#include "bench_util.hpp"
#include "core/pipeline.hpp"
#include "data/county_synth.hpp"
#include "data/dem_synth.hpp"
#include "geom/simplify.hpp"

int main() {
  using namespace zh;
  const int edge = bench::env_int("ZH_EDGE", 2400);
  const int zones = bench::env_int("ZH_ZONES", 48);
  const BinIndex bins =
      static_cast<BinIndex>(bench::env_int("ZH_BINS", 500));

  const GeoTransform t(-100.0, 40.0, 1.0 / 240.0, 1.0 / 240.0);
  const DemRaster dem = generate_dem(edge, edge, t);
  CountyParams cp;
  cp.grid_x = 8;
  cp.grid_y = zones / 8;
  cp.displace_depth = 5;  // extra-detailed boundaries to generalize
  const GeoBox ext = t.extent(edge, edge);
  const PolygonSet counties = generate_counties(
      GeoBox{ext.min_x - 0.1, ext.min_y - 0.1, ext.max_x + 0.1,
             ext.max_y + 0.1},
      cp);
  std::printf("workload: %dx%d DEM, %zu zones with %s vertices\n", edge,
              edge, counties.size(),
              bench::with_commas(counties.vertex_count()).c_str());

  Device device(DeviceProfile::host());
  const ZonalPipeline pipe(device, {.tile_size = 60, .bins = bins});
  const ZonalResult exact = pipe.run(dem, counties);
  const double cell_size = t.cell_w();

  bench::print_header("Simplification tolerance sweep");
  std::printf("%12s %10s %14s %10s %12s\n", "eps (cells)", "vertices",
              "edge tests", "step4 (s)", "L1 err (%)");
  bench::print_rule();
  std::printf("%12s %10s %14s %10.2f %12.3f\n", "exact",
              bench::with_commas(counties.vertex_count()).c_str(),
              bench::with_commas(exact.work.pip_edge_tests).c_str(),
              exact.times.seconds[4], 0.0);

  for (const double eps_cells : {0.5, 1.0, 2.0, 5.0, 15.0}) {
    const PolygonSet simp =
        simplify_set(counties, eps_cells * cell_size);
    const ZonalResult r = pipe.run(dem, simp);
    std::uint64_t err = 0;
    for (PolygonId z = 0; z < counties.size(); ++z) {
      err += histogram_l1_distance(exact.per_polygon.of(z),
                                   r.per_polygon.of(z));
    }
    std::printf("%12.1f %10s %14s %10.2f %12.3f\n", eps_cells,
                bench::with_commas(simp.vertex_count()).c_str(),
                bench::with_commas(r.work.pip_edge_tests).c_str(),
                r.times.seconds[4],
                100.0 * static_cast<double>(err) /
                    static_cast<double>(exact.per_polygon.total()));
  }
  std::printf(
      "\nsub-cell tolerances cut vertices (and Step-4 edge tests) with\n"
      "zero-to-negligible histogram error: the boundary moves less than\n"
      "a cell, so almost no cell center changes sides.\n");
  return 0;
}
