// Table 1 reproduction: the SRTM CONUS raster inventory and its cluster
// partition schema.
//
// Prints the six rasters, their (reconstructed) dimensions at full scale
// and at the bench scale, the partition grid per raster, and verifies the
// published totals: 6 rasters, 36 partitions, 20,165,760,000 cells.
#include <cstdio>

#include "bench_util.hpp"
#include "cluster/partition.hpp"
#include "common/error.hpp"
#include "data/conus.hpp"

int main() {
  using namespace zh;
  const int scale = bench::env_int("ZH_SCALE", 30);

  bench::print_header(
      "Table 1 -- List of SRTM Rasters and Partition Schemas");
  std::printf("%-14s %13s %13s %10s %12s\n", "raster", "rows (S=1)",
              "cols (S=1)", "partition", "cells (S=1)");
  bench::print_rule();

  std::int64_t total_cells = 0;
  int total_parts = 0;
  for (const conus::RasterSpec& spec : conus::table1()) {
    std::printf("%-14s %13lld %13lld %7dx%-2d %12s\n", spec.name.c_str(),
                static_cast<long long>(spec.rows_at(1)),
                static_cast<long long>(spec.cols_at(1)), spec.part_rows,
                spec.part_cols,
                bench::with_commas(
                    static_cast<unsigned long long>(spec.cells_at(1)))
                    .c_str());
    total_cells += spec.cells_at(1);
    total_parts += spec.partitions();
  }
  bench::print_rule();
  std::printf("%-14s %38d %12s\n", "Total", total_parts,
              bench::with_commas(
                  static_cast<unsigned long long>(total_cells))
                  .c_str());

  std::printf("\npaper totals:  6 rasters, 36 partitions, "
              "20,165,760,000 cells\n");
  std::printf("reproduced:    %zu rasters, %d partitions, %s cells  [%s]\n",
              conus::table1().size(), total_parts,
              bench::with_commas(
                  static_cast<unsigned long long>(total_cells))
                  .c_str(),
              (conus::table1().size() == 6 && total_parts == 36 &&
               total_cells == 20'165'760'000LL)
                  ? "MATCH"
                  : "MISMATCH");

  // Partition-construction check at the bench scale: windows must be
  // tile-aligned, disjoint and covering for every schema.
  const std::int64_t tile = conus::tile_size_cells(scale);
  bench::print_header("Partition construction at bench scale (S=" +
                      std::to_string(scale) + ", tile=" +
                      std::to_string(tile) + " cells)");
  std::printf("%-14s %10s %10s %10s %14s\n", "raster", "rows", "cols",
              "windows", "cells covered");
  bench::print_rule();
  for (const conus::RasterSpec& spec : conus::table1()) {
    const auto windows =
        grid_partition(spec.rows_at(scale), spec.cols_at(scale),
                       spec.part_rows, spec.part_cols, tile);
    std::int64_t covered = 0;
    for (const CellWindow& w : windows) {
      ZH_REQUIRE(w.row0 % tile == 0 && w.col0 % tile == 0,
                 "partition not tile-aligned");
      covered += w.cell_count();
    }
    ZH_REQUIRE(covered == spec.cells_at(scale),
               "partition does not cover the raster");
    std::printf("%-14s %10lld %10lld %10zu %14s\n", spec.name.c_str(),
                static_cast<long long>(spec.rows_at(scale)),
                static_cast<long long>(spec.cols_at(scale)),
                windows.size(),
                bench::with_commas(
                    static_cast<unsigned long long>(covered))
                    .c_str());
  }
  std::printf("\nall partitions tile-aligned, disjoint and covering.\n");
  return 0;
}
