// Step-4 refinement-strategy bench: the brute-force Fig.-5 oracle vs the
// scanline + y-banded-edge-index path on a dense-edge county fixture
// (deep midpoint displacement -> hundreds of vertices per zone, the
// regime where per-cell edge loops dominate Step 4).
//
// This bench is a gate, not just a report: it exits nonzero if the two
// strategies' histograms differ, if scanline evaluates fewer than 3x
// fewer crossing predicates than brute, or if scanline is slower than
// brute on this fixture. tools/check.sh runs it in the dev stage.
#include <algorithm>
#include <cstdio>
#include <string>

#include "bench_util.hpp"
#include "common/timer.hpp"
#include "core/step2_pairing.hpp"
#include "core/step4_refine.hpp"
#include "data/county_synth.hpp"
#include "data/dem_synth.hpp"
#include "geom/soa.hpp"

int main() {
  using namespace zh;
  const int edge = bench::env_int("ZH_EDGE", 1500);
  const int reps = bench::env_int("ZH_REPS", 3);
  const BinIndex bins =
      static_cast<BinIndex>(bench::env_int("ZH_BINS", 500));

  const GeoTransform t(-100.0, 40.0, 1.0 / 240.0, 1.0 / 240.0);
  const DemRaster dem = generate_dem(edge, edge, t);
  CountyParams cp;
  cp.grid_x = 4;
  cp.grid_y = 3;
  cp.displace_depth = 6;  // ~2^6 segments per seed edge: dense boundaries
  cp.hole_every = 4;
  const GeoBox ext = t.extent(edge, edge);
  const PolygonSet counties = generate_counties(
      GeoBox{ext.min_x - 0.1, ext.min_y - 0.1, ext.max_x + 0.1,
             ext.max_y + 0.1},
      cp);

  const TilingScheme tiling(edge, edge, 60);
  const PolygonSoA soa = PolygonSoA::build(counties);
  const PairingResult pairs = pair_and_group(counties, tiling, t);
  std::printf("workload: %dx%d DEM, %zu zones, %s flattened vertices, "
              "%zu intersect pairs\n",
              edge, edge, counties.size(),
              bench::with_commas(soa.flattened_vertex_count()).c_str(),
              pairs.intersect.pair_count());

  Device device(DeviceProfile::host());
  bench::print_header("Step-4 refinement: brute vs scanline (best of "
                      + std::to_string(reps) + ")");

  struct Run {
    double seconds = 0.0;
    RefineCounters rc;
    HistogramSet hist;
  };
  auto run = [&](RefineStrategy s) {
    Run out;
    out.seconds = 1e30;
    for (int rep = 0; rep < reps; ++rep) {
      HistogramSet hist(counties.size(), bins);
      Timer timer;
      const RefineCounters rc = refine_boundary_tiles(
          device, pairs.intersect, soa, dem, tiling, hist,
          RefineGranularity::kPolygonGroup, s);
      const double sec = timer.seconds();
      if (sec < out.seconds) {
        out.seconds = sec;
        out.rc = rc;
      }
      out.hist = std::move(hist);
    }
    return out;
  };

  const Run brute = run(RefineStrategy::kBrute);
  const Run scan = run(RefineStrategy::kScanline);
  for (const auto& [label, r] :
       {std::pair<const char*, const Run&>{"brute (Fig. 5)", brute},
        std::pair<const char*, const Run&>{"scanline + edge index",
                                           scan}}) {
    std::printf("  %-24s %7.3f s   edge tests %16s   rows %12s\n", label,
                r.seconds, bench::with_commas(r.rc.edge_tests).c_str(),
                bench::with_commas(r.rc.rows_scanned).c_str());
  }

  const bool identical = brute.hist == scan.hist;
  const double edge_ratio =
      scan.rc.edge_tests > 0
          ? static_cast<double>(brute.rc.edge_tests) /
                static_cast<double>(scan.rc.edge_tests)
          : 0.0;
  const double speedup =
      scan.seconds > 0.0 ? brute.seconds / scan.seconds : 0.0;
  std::printf("  identical histograms: %s   edge-test ratio %.1fx   "
              "speedup %.2fx\n",
              identical ? "yes" : "NO", edge_ratio, speedup);

  bench::write_bench_report(
      "BENCH_step4_refine.json", "bench_step4_refine",
      std::to_string(edge) + "x" + std::to_string(edge) + " dem, " +
          std::to_string(counties.size()) + " dense-edge zones",
      {{"tile_size", "60"},
       {"bins", std::to_string(bins)},
       {"brute_seconds", std::to_string(brute.seconds)},
       {"scanline_seconds", std::to_string(scan.seconds)},
       {"brute_edge_tests", std::to_string(brute.rc.edge_tests)},
       {"scanline_edge_tests", std::to_string(scan.rc.edge_tests)},
       {"edge_test_ratio", std::to_string(edge_ratio)},
       {"speedup", std::to_string(speedup)},
       {"identical", identical ? "true" : "false"}},
      nullptr, nullptr,
      {{"refine_brute", brute.seconds}, {"refine_scanline", scan.seconds}});

  if (!identical) {
    std::printf("  ERROR: strategies disagree!\n");
    return 1;
  }
  if (edge_ratio < 3.0) {
    std::printf("  ERROR: edge-test ratio %.2fx below the 3x gate\n",
                edge_ratio);
    return 1;
  }
  if (scan.seconds > brute.seconds) {
    std::printf("  ERROR: scanline slower than brute on the dense-edge "
                "fixture\n");
    return 1;
  }
  return 0;
}
