// Micro-benchmarks of the ray-crossing point-in-polygon kernel (Fig. 5's
// inner loop): throughput vs polygon vertex count, object layout vs the
// flattened SoA layout the device kernels consume, and the per-tile
// histogramming kernel of Fig. 2.
#include <benchmark/benchmark.h>

#include <random>

#include "core/step1_tile_hist.hpp"
#include "geom/pip.hpp"
#include "geom/soa.hpp"
#include "test_util_bench.hpp"

namespace {

using namespace zh;

void BM_PipObjectForm(benchmark::State& state) {
  std::mt19937 rng(1);
  const Polygon poly = benchdata::star_polygon(
      rng, 5.0, 5.0, 4.0, static_cast<int>(state.range(0)));
  std::uniform_real_distribution<double> coord(0.0, 10.0);
  std::vector<GeoPoint> pts(4096);
  for (auto& p : pts) p = {coord(rng), coord(rng)};
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(point_in_polygon(poly, pts[i++ & 4095]));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PipObjectForm)->Arg(8)->Arg(32)->Arg(128)->Arg(512);

void BM_PipSoaForm(benchmark::State& state) {
  std::mt19937 rng(1);
  PolygonSet set;
  set.add(benchdata::star_polygon(rng, 5.0, 5.0, 4.0,
                                  static_cast<int>(state.range(0))));
  const PolygonSoA soa = PolygonSoA::build(set);
  std::uniform_real_distribution<double> coord(0.0, 10.0);
  std::vector<GeoPoint> pts(4096);
  for (auto& p : pts) p = {coord(rng), coord(rng)};
  std::size_t i = 0;
  for (auto _ : state) {
    const GeoPoint& p = pts[i++ & 4095];
    benchmark::DoNotOptimize(point_in_polygon_soa(soa, 0, p.x, p.y));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PipSoaForm)->Arg(8)->Arg(32)->Arg(128)->Arg(512);

void BM_PipMultiRing(benchmark::State& state) {
  std::mt19937 rng(2);
  PolygonSet set;
  set.add(benchdata::star_polygon(rng, 5.0, 5.0, 4.0,
                                  static_cast<int>(state.range(0)),
                                  /*with_hole=*/true));
  const PolygonSoA soa = PolygonSoA::build(set);
  std::uniform_real_distribution<double> coord(0.0, 10.0);
  std::size_t i = 0;
  std::vector<GeoPoint> pts(4096);
  for (auto& p : pts) p = {coord(rng), coord(rng)};
  for (auto _ : state) {
    const GeoPoint& p = pts[i++ & 4095];
    benchmark::DoNotOptimize(point_in_polygon_soa(soa, 0, p.x, p.y));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PipMultiRing)->Arg(16)->Arg(64)->Arg(256);

void BM_TileHistogram(benchmark::State& state) {
  const std::int64_t tile = state.range(0);
  Device dev(DeviceProfile::host());
  DemRaster raster(tile * 4, tile * 4);
  std::mt19937 rng(3);
  std::uniform_int_distribution<std::uint32_t> dist(0, 4999);
  for (CellValue& v : raster.cells()) v = static_cast<CellValue>(dist(rng));
  const TilingScheme tiling(raster.rows(), raster.cols(), tile);
  for (auto _ : state) {
    const HistogramSet h = tile_histograms(dev, raster, tiling, 5000);
    benchmark::DoNotOptimize(h.flat().data());
  }
  state.SetItemsProcessed(state.iterations() * raster.cell_count());
}
BENCHMARK(BM_TileHistogram)->Arg(60)->Arg(120)->Arg(360);

}  // namespace

BENCHMARK_MAIN();
