// Table 2 reproduction: per-step and end-to-end runtimes on the Fermi
// (Quadro 6000) and Kepler (GTX Titan) devices.
//
// Method (see DESIGN.md / EXPERIMENTS.md): the emulation runs the full
// Steps 0-4 pipeline over the six Table-1 CONUS rasters at scale S and
// measures exact work counters. Counters that scale with cell count are
// multiplied by S^2 to recover the paper's full-scale workload; the
// analytic PerfModel then projects per-step seconds onto the paper's
// GPUs. Expected shape: Step 4 dominant, Step 1 second, Steps 2-3
// negligible, GTX Titan ~2x faster end-to-end (Step 4 2.6x, Step 1 1.6x,
// Step 0 ~2x).
#include <cstdio>

#include "bench_util.hpp"
#include "bqtree/compressed_raster.hpp"
#include "core/perf_model.hpp"
#include "core/pipeline.hpp"

int main() {
  using namespace zh;
  const int scale = bench::env_int("ZH_SCALE", 30);
  const int zones = bench::env_int("ZH_ZONES", 3109);  // US county count
  // The measured emulation runs at 1000 bins to keep the per-tile
  // histogram tables modest on the host; the full-scale projection below
  // always charges Step 3 at the paper's 5000 bins.
  const BinIndex bins =
      static_cast<BinIndex>(bench::env_int("ZH_BINS", 1000));
  const std::int64_t tile = conus::tile_size_cells(scale);

  std::printf("building CONUS workload: S=%d (%d cells/deg), %d zones, "
              "%u bins, %lld-cell tiles...\n",
              scale, 3600 / scale, zones, bins,
              static_cast<long long>(tile));
  Timer setup;
  bench::ConusWorkload w = bench::build_conus(scale, zones);
  std::printf("  %zu rasters, %s cells, %zu zones, %s polygon vertices "
              "(%.1fs)\n",
              w.rasters.size(),
              bench::with_commas(static_cast<unsigned long long>(
                  conus::total_cells(scale))).c_str(),
              w.counties.size(),
              bench::with_commas(w.counties.vertex_count()).c_str(),
              setup.seconds());

  Device device(DeviceProfile::host());
  const ZonalPipeline pipeline(device, {.tile_size = tile, .bins = bins});
  const PolygonSoA soa = PolygonSoA::build(w.counties);

  // Run Steps 0-4 per raster (as the paper does per file), summing times
  // and work. Step 0 comes from BQ-Tree-compressed inputs.
  StepTimes measured;
  WorkCounters work;
  HistogramSet per_polygon(w.counties.size(), bins);
  ZonalWorkspace workspace;  // reuse the per-tile table across rasters
  for (std::size_t i = 0; i < w.rasters.size(); ++i) {
    Timer enc;
    const BqCompressedRaster compressed =
        BqCompressedRaster::encode(w.rasters[i], tile);
    std::printf("  raster %zu: encoded %5.1f%% of raw in %.1fs, ",
                i + 1, 100.0 * compressed.compression_ratio(),
                enc.seconds());
    const ZonalResult r = pipeline.run(compressed, w.counties, &workspace);
    std::printf("pipeline %.1fs\n", r.times.step_total());
    measured += r.times;
    work += r.work;
    per_polygon.add(r.per_polygon);
  }

  bench::print_header("Measured emulation times at scale S=" +
                      std::to_string(scale) + " (host CPU)");
  for (std::size_t s = 0; s < StepTimes::kSteps; ++s) {
    std::printf("  %-52s %8.2f s\n", StepTimes::step_name(s).c_str(),
                measured.seconds[s]);
  }
  std::printf("  %-52s %8.2f s\n", "Runtimes of steps",
              measured.step_total());
  std::printf("  cells in polygons: %s of %s\n",
              bench::with_commas(work.cells_in_polygons).c_str(),
              bench::with_commas(work.cells_total).c_str());

  // Scale work counters to the paper's full-resolution dataset. Pair
  // counts and bin-adds are scale-invariant (tile *boxes* are identical
  // at every S); per-cell quantities scale with S^2.
  const auto s2 = static_cast<std::uint64_t>(scale) * scale;
  WorkCounters full = work;
  full.cells_total *= s2;
  full.pip_cell_tests *= s2;
  full.pip_edge_tests *= s2;
  full.cells_in_polygons *= s2;
  full.raw_bytes *= s2;
  full.compressed_bytes *= s2;  // ratio approximately scale-free
  // Step 3 is charged at the paper's 5000 bins regardless of ZH_BINS.
  full.aggregate_bin_adds = full.pairs_inside * 5000;

  bench::print_header("Full-scale work counters (exact)");
  std::printf("  cells:            %s\n",
              bench::with_commas(full.cells_total).c_str());
  std::printf("  candidate pairs:  %s\n",
              bench::with_commas(full.candidate_pairs).c_str());
  std::printf("  inside pairs:     %s\n",
              bench::with_commas(full.pairs_inside).c_str());
  std::printf("  intersect pairs:  %s\n",
              bench::with_commas(full.pairs_intersect).c_str());
  std::printf("  PIP cell tests:   %s\n",
              bench::with_commas(full.pip_cell_tests).c_str());
  std::printf("  PIP edge tests:   %s\n",
              bench::with_commas(full.pip_edge_tests).c_str());

  const PerfModel model;
  const StepTimes quadro =
      model.project(full, DeviceProfile::quadro6000());
  const StepTimes titan = model.project(full, DeviceProfile::gtx_titan());

  // Table-2 reference values, reconstructed from the legible constraints
  // of the paper's text: end-to-end 46 s on GTX Titan, ~2x on Quadro,
  // Step-4/1/0 speedups 2.6x/1.6x/2.0x, Step 0 ~20% of end-to-end,
  // Steps 2-3 "insignificant".
  const double paper_quadro[5] = {18.0, 12.8, 0.7, 0.6, 59.8};
  const double paper_titan[5] = {9.0, 8.0, 0.7, 0.3, 23.0};

  bench::print_header(
      "Table 2 -- projected full-scale per-step runtimes (seconds)");
  std::printf("%-52s %9s %9s | %7s %7s\n", "", "Quadro", "GTXTitan",
              "paper-Q", "paper-T");
  for (std::size_t s = 0; s < StepTimes::kSteps; ++s) {
    std::printf("%-52s %9.1f %9.1f | %7.1f %7.1f\n",
                StepTimes::step_name(s).c_str(), quadro.seconds[s],
                titan.seconds[s], paper_quadro[s], paper_titan[s]);
  }
  double pq = 0;
  double pt = 0;
  for (int s = 0; s < 5; ++s) {
    pq += paper_quadro[s];
    pt += paper_titan[s];
  }
  std::printf("%-52s %9.1f %9.1f | %7.1f %7.1f\n", "Runtimes of steps",
              quadro.step_total(), titan.step_total(), pq, pt);
  std::printf("%-52s %9.1f %9.1f | %7.1f %7.1f\n",
              "Wall-clock end-to-end runtimes", quadro.end_to_end(),
              titan.end_to_end(), 90.0, 46.0);

  bench::print_header("Shape checks");
  auto check = [](const char* what, bool ok) {
    std::printf("  [%s] %s\n", ok ? "ok" : "FAIL", what);
  };
  check("Step 4 dominates on both devices",
        quadro.seconds[4] > quadro.seconds[1] &&
            titan.seconds[4] > titan.seconds[1]);
  check("Step 1 is second on both devices",
        quadro.seconds[1] > quadro.seconds[2] &&
            quadro.seconds[1] > quadro.seconds[3] &&
            titan.seconds[1] > titan.seconds[2] &&
            titan.seconds[1] > titan.seconds[3]);
  const double e2e_ratio = quadro.end_to_end() / titan.end_to_end();
  std::printf("  end-to-end Quadro/Titan ratio: %.2fx (paper ~2x)\n",
              e2e_ratio);
  check("Kepler roughly halves the Fermi runtime",
        e2e_ratio > 1.5 && e2e_ratio < 2.6);
  std::printf("  step-4 speedup: %.2fx (paper 2.6x), step-1: %.2fx "
              "(paper 1.6x), step-0: %.2fx (paper ~2x)\n",
              quadro.seconds[4] / titan.seconds[4],
              quadro.seconds[1] / titan.seconds[1],
              quadro.seconds[0] / titan.seconds[0]);

  // Machine-readable baseline of this run (measured emulation times +
  // exact full-scale counters), same schema as `zhist --metrics`.
  std::vector<std::pair<std::string, std::string>> config{
      {"scale", std::to_string(scale)},
      {"zones", std::to_string(zones)},
      {"bins", std::to_string(bins)},
      {"tile", std::to_string(tile)},
  };
  bench::write_bench_report(
      "BENCH_table2.json", "bench_table2_steps",
      "six Table-1 CONUS rasters at S=" + std::to_string(scale),
      std::move(config), &measured, &full);
  return 0;
}
