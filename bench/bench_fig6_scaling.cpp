// Fig. 6 reproduction: end-to-end runtime vs. number of cluster nodes.
//
// The paper runs the CONUS workload on 1..16 Titan nodes (K20 GPUs) and
// reports 60.7 s -> 7.6 s with sub-linear tail scaling caused by
// edge-tile load imbalance. Here each rank count runs the real multi-rank
// pipeline over the 36 Table-1 partitions; per-rank *work counters* feed
// the K20 performance model to produce projected node times (a 1-core
// host cannot show wall-clock scaling), and the reported cluster time is
// the max over ranks plus the modeled MPI merge -- the paper's
// measurement convention.
#include <cstdio>

#include "bench_util.hpp"
#include "core/cluster_driver.hpp"
#include "core/perf_model.hpp"

int main() {
  using namespace zh;
  const int scale = bench::env_int("ZH_SCALE", 30);
  const int zones = bench::env_int("ZH_ZONES", 3109);
  const BinIndex bins =
      static_cast<BinIndex>(bench::env_int("ZH_BINS", 1000));
  const std::int64_t tile = conus::tile_size_cells(scale);

  std::printf("building CONUS workload: S=%d, %d zones, %u bins...\n",
              scale, zones, bins);
  const bench::ConusWorkload w = bench::build_conus(scale, zones);
  const auto s2 = static_cast<std::uint64_t>(scale) * scale;
  const PerfModel model;

  bench::print_header("Fig. 6 -- runtime vs number of nodes (K20/Titan "
                      "cluster model)");
  std::printf("%7s %12s %12s %10s %10s | %12s\n", "nodes",
              "projected(s)", "emulated(s)", "speedup", "efficiency",
              "paper(s)");
  bench::print_rule();

  // Paper's Fig. 6 series (1..16 nodes).
  const std::pair<int, double> paper[] = {
      {1, 60.7}, {2, 31.1}, {4, 16.6}, {8, 10.0}, {16, 7.6}};

  double projected_1node = 0.0;
  for (const auto& [ranks, paper_seconds] : paper) {
    ClusterRunConfig cfg;
    cfg.ranks = static_cast<std::size_t>(ranks);
    cfg.zonal = {.tile_size = tile, .bins = bins};
    cfg.device_profile = DeviceProfile::k20();
    const ClusterRunResult r =
        run_cluster_zonal(w.rasters, w.schemas, w.counties, cfg);

    // Project each rank's full-scale work onto a K20 node; the cluster
    // time is the slowest node plus the master merge (histogram gather
    // at a nominal 5 GB/s interconnect).
    double slowest = 0.0;
    for (const WorkCounters& rank_work : r.per_rank_work) {
      WorkCounters full = rank_work;
      full.cells_total *= s2;
      full.pip_cell_tests *= s2;
      full.pip_edge_tests *= s2;
      full.raw_bytes *= s2;
      full.compressed_bytes *= s2;
      const StepTimes t = model.project(full, DeviceProfile::k20());
      slowest = std::max(slowest, t.end_to_end());
    }
    const double merge_bytes = static_cast<double>(ranks) *
                               static_cast<double>(w.counties.size()) *
                               bins * sizeof(BinCount);
    const double projected = slowest + merge_bytes / 5e9;
    if (ranks == 1) projected_1node = projected;

    std::printf("%7d %12.1f %12.1f %9.2fx %9.0f%% | %12.1f\n", ranks,
                projected, r.wall_seconds, projected_1node / projected,
                100.0 * projected_1node / (projected * ranks),
                paper_seconds);
  }

  bench::print_header("Shape checks");
  std::printf(
      "  expected: monotone decrease, near-linear to ~8 nodes, visibly\n"
      "  sub-linear by 16 nodes (edge-partition load imbalance).\n");
  return 0;
}
