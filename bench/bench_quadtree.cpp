// Region-quadtree study (paper ref [11] substrate): construction
// throughput, collapse behaviour vs raster entropy, and the
// quadtree-backed Step-1 speedup on land-cover-class rasters -- the
// "thematic resolution" raster family of the paper's introduction.
#include <cstdio>

#include "bench_util.hpp"
#include "common/timer.hpp"
#include "core/step1_tile_hist.hpp"
#include "data/dem_synth.hpp"
#include "quadtree/qt_step1.hpp"

int main() {
  using namespace zh;
  const int edge = bench::env_int("ZH_EDGE", 2048);
  const std::int64_t tile = bench::env_int("ZH_TILE", 64);
  const GeoTransform t(-100.0, 40.0, 0.01, 0.01);

  bench::print_header("Quadtree collapse vs raster entropy");
  std::printf("%-22s %12s %12s %8s %10s\n", "raster", "cells", "leaves",
              "ratio", "build(s)");
  bench::print_rule();

  struct Case {
    const char* name;
    DemRaster raster;
  };
  std::vector<Case> cases;
  cases.push_back({"land cover, 8 cls",
                   generate_landcover(edge, edge, t, 8)});
  cases.push_back({"land cover, 64 cls",
                   generate_landcover(edge, edge, t, 64)});
  cases.push_back({"DEM, 5000 levels", generate_dem(edge, edge, t)});
  {
    DemRaster noise(edge, edge, t);
    std::uint32_t state = 7;
    for (CellValue& v : noise.cells()) {
      state = state * 1664525u + 1013904223u;
      v = static_cast<CellValue>((state >> 16) % 5000);
    }
    cases.push_back({"white noise", std::move(noise)});
  }

  Device device(DeviceProfile::host());
  const TilingScheme tiling(edge, edge, tile);

  for (const Case& c : cases) {
    Timer tb;
    const RegionQuadtree tree = RegionQuadtree::build(c.raster);
    const double build_s = tb.seconds();
    std::printf("%-22s %12s %12s %7.1fx %10.2f\n", c.name,
                bench::with_commas(static_cast<unsigned long long>(
                    c.raster.cell_count())).c_str(),
                bench::with_commas(tree.leaf_count()).c_str(),
                static_cast<double>(c.raster.cell_count()) /
                    static_cast<double>(tree.leaf_count()),
                build_s);
  }

  bench::print_header(
      "Step 1: dense kernel vs quadtree-backed (identical output)");
  std::printf("%-22s %12s %12s %10s %8s\n", "raster", "dense(s)",
              "quadtree(s)", "speedup", "equal");
  bench::print_rule();
  for (const Case& c : cases) {
    const RegionQuadtree tree = RegionQuadtree::build(c.raster);
    Timer td;
    const HistogramSet dense =
        tile_histograms(device, c.raster, tiling, 5000);
    const double dense_s = td.seconds();
    Timer tq;
    const HistogramSet from_tree =
        tile_histograms_from_quadtree(device, tree, tiling, 5000);
    const double tree_s = tq.seconds();
    std::printf("%-22s %12.3f %12.3f %9.1fx %8s\n", c.name, dense_s,
                tree_s, dense_s / tree_s,
                dense == from_tree ? "yes" : "NO");
  }
  std::printf(
      "\nthe quadtree path wins in proportion to the leaf-collapse "
      "ratio;\nwhite noise (no collapse) degenerates to per-cell work "
      "plus tree\noverhead -- choose per input family.\n");
  return 0;
}
