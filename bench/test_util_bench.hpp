// Random polygon helpers for micro-benchmarks (mirrors tests/test_util.hpp
// without depending on the test tree).
#pragma once

#include <algorithm>
#include <cmath>
#include <numbers>
#include <random>

#include "geom/polygon.hpp"

namespace zh::benchdata {

inline Ring star_ring(std::mt19937& rng, double cx, double cy,
                      double r_min, double r_max, int vertices) {
  std::uniform_real_distribution<double> radius(r_min, r_max);
  std::uniform_real_distribution<double> angle(0.0, 2.0 * std::numbers::pi);
  std::vector<double> angles(static_cast<std::size_t>(vertices));
  for (double& a : angles) a = angle(rng);
  std::sort(angles.begin(), angles.end());
  Ring ring;
  ring.reserve(angles.size());
  for (const double a : angles) {
    const double r = radius(rng);
    ring.push_back({cx + r * std::cos(a), cy + r * std::sin(a)});
  }
  return ring;
}

inline Polygon star_polygon(std::mt19937& rng, double cx, double cy,
                            double r_max, int vertices,
                            bool with_hole = false) {
  Polygon poly({star_ring(rng, cx, cy, 0.5 * r_max, r_max, vertices)});
  if (with_hole) {
    Ring hole = star_ring(rng, cx, cy, 0.1 * r_max, 0.3 * r_max,
                          std::max(3, vertices / 2));
    std::reverse(hole.begin(), hole.end());
    poly.add_ring(std::move(hole));
  }
  return poly;
}

}  // namespace zh::benchdata
