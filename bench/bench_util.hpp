// Shared helpers for the benchmark harness: CONUS workload construction
// at a configurable scale and table-style output formatting.
//
// Every bench runs with sensible defaults under
//   for b in build/bench/*; do $b; done
// and honors environment overrides:
//   ZH_SCALE  -- scale divisor S (cells/degree = 3600/S); default per bench
//   ZH_ZONES  -- zone (county) count; default per bench
//   ZH_BINS   -- histogram bins; default per bench
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "core/pipeline.hpp"
#include "data/conus.hpp"
#include "geom/polygon.hpp"
#include "grid/raster.hpp"
#include "obs/report.hpp"

namespace zh::bench {

inline int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::atoi(v);
}

struct ConusWorkload {
  int scale = 30;
  std::vector<DemRaster> rasters;          // the six Table-1 rasters
  std::vector<std::pair<int, int>> schemas;  // Table-1 partition grids
  PolygonSet counties;
};

/// Build the six Table-1 rasters at scale S plus a county layer.
inline ConusWorkload build_conus(int scale, int zones,
                                 std::uint64_t seed = 7) {
  ConusWorkload w;
  w.scale = scale;
  for (const conus::RasterSpec& spec : conus::table1()) {
    w.rasters.push_back(conus::generate_raster(spec, scale));
    w.schemas.emplace_back(spec.part_rows, spec.part_cols);
  }
  w.counties = conus::generate_county_layer(zones, seed);
  return w;
}

inline void print_rule(int width = 78) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

inline void print_header(const std::string& title) {
  std::printf("\n");
  print_rule();
  std::printf("%s\n", title.c_str());
  print_rule();
}

/// Write a zh-run-report-v1 JSON entry describing this bench run (git
/// sha, config, step times, work counters), so BENCH_*.json files are
/// self-describing and diffable across revisions. The output path is
/// `default_path` unless the ZH_BENCH_JSON env var overrides it; setting
/// ZH_BENCH_JSON=- disables emission.
inline void write_bench_report(
    const std::string& default_path, const std::string& tool,
    const std::string& workload,
    std::vector<std::pair<std::string, std::string>> config,
    const StepTimes* times, const WorkCounters* work,
    std::vector<std::pair<std::string, double>> extra_times = {}) {
  std::string path = default_path;
  if (const char* env = std::getenv("ZH_BENCH_JSON");
      env != nullptr && *env != '\0') {
    path = env;
  }
  if (path.empty() || path == "-") return;
  obs::RunReport report;
  report.tool = tool;
  report.workload = workload;
  report.config = std::move(config);
  if (times != nullptr) {
    report.times = *times;
    report.has_times = true;
  }
  report.extra_times = std::move(extra_times);
  if (work != nullptr) append_work_counters(report, *work);
  obs::write_report_json(path, report);
  std::printf("wrote %s\n", path.c_str());
}

/// "12,345,678" formatting for large counts.
inline std::string with_commas(unsigned long long v) {
  std::string raw = std::to_string(v);
  std::string out;
  int c = 0;
  for (auto it = raw.rbegin(); it != raw.rend(); ++it) {
    if (c != 0 && c % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++c;
  }
  return {out.rbegin(), out.rend()};
}

}  // namespace zh::bench
