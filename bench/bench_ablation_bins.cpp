// Histogram-bin ablation (Sec. III.A): per-tile histogram memory grows
// linearly with the bin count (the paper budgets 50 MB for a 5x5-degree
// raster at 5000 bins), and for large bin counts privatized per-thread
// counting becomes impractical -- atomics into a shared per-tile
// histogram win. This bench sweeps bin counts and compares the two
// counting strategies.
#include <cstdio>

#include "bench_util.hpp"
#include "common/timer.hpp"
#include "core/step1_tile_hist.hpp"
#include "data/dem_synth.hpp"

int main() {
  using namespace zh;
  const int edge = bench::env_int("ZH_EDGE", 1800);
  const std::int64_t tile = bench::env_int("ZH_TILE", 360);

  std::printf("workload: %dx%d DEM, %lld-cell tiles\n", edge, edge,
              static_cast<long long>(tile));
  const DemRaster dem = generate_dem(
      edge, edge, GeoTransform(-100.0, 40.0, 1.0 / 3600.0, 1.0 / 3600.0),
      {.max_value = 65535});
  const TilingScheme tiling(dem.rows(), dem.cols(), tile);
  Device device(DeviceProfile::host());

  bench::print_header("Bin-count sweep: memory and counting strategies");
  std::printf("%8s %14s %12s %14s %10s\n", "bins", "table (MB)",
              "atomic (s)", "privatized (s)", "agree");
  bench::print_rule();

  for (const BinIndex bins : {16u, 64u, 256u, 1024u, 5000u, 16384u}) {
    const double table_mb = static_cast<double>(tiling.tile_count()) *
                            bins * sizeof(BinCount) / 1e6;
    Timer ta;
    const HistogramSet atomic =
        tile_histograms(device, dem, tiling, bins, CountMode::kAtomic);
    const double atomic_s = ta.seconds();

    // Privatized counting allocates bins x block_dim counters per block;
    // the paper rules it out for large bin counts. Cap the sweep there.
    double priv_s = -1.0;
    bool agree = true;
    if (bins <= 1024) {
      Timer tp;
      const HistogramSet priv = tile_histograms(device, dem, tiling, bins,
                                                CountMode::kPrivatized);
      priv_s = tp.seconds();
      agree = priv == atomic;
    }
    if (priv_s >= 0.0) {
      std::printf("%8u %14.1f %12.3f %14.3f %10s\n", bins, table_mb,
                  atomic_s, priv_s, agree ? "yes" : "NO");
    } else {
      std::printf("%8u %14.1f %12.3f %14s %10s\n", bins, table_mb,
                  atomic_s, "(impractical)", "-");
    }
  }
  std::printf(
      "\nper-tile table memory grows linearly with bins; privatized\n"
      "counting additionally multiplies by the block width, which is why\n"
      "the paper uses atomicAdd for its 5000-bin histograms.\n");

  // The paper's Sec. III.A footprint example: a 5x5-degree raster at
  // 0.1-degree tiles (50x50 tiles) with 5000 int bins -> 50 MB.
  const TilingScheme paper_tiles(5 * 3600, 5 * 3600, 360);
  const double paper_mb = static_cast<double>(paper_tiles.tile_count()) *
                          5000 * sizeof(BinCount) / 1e6;
  std::printf("\npaper footprint check: 5x5-degree raster, 0.1-degree "
              "tiles, 5000 bins -> %.0f MB (paper says 50 MB) [%s]\n",
              paper_mb, paper_mb == 50.0 ? "MATCH" : "MISMATCH");
  return 0;
}
