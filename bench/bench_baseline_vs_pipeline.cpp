// Pipeline vs. baselines (Sec. II / Sec. IV.C claims).
//
// Two distinct claims are reproduced here:
//  1. *Exactness*: the 4-step pipeline produces bit-identical histograms
//     to per-cell-PIP and scanline-rasterization references.
//  2. *Performance*: the paper "observed orders of magnitude better
//     performance" than traditional GIS software. That comparison is
//     GPU-parallel pipeline vs serial CPU software. On this host the
//     pipeline runs as a 1-thread-per-core emulation, so its *measured*
//     time shows the algorithm without the parallel hardware; the
//     *projected* GTX Titan time (PerfModel over exact work counters) is
//     what faces the serial baselines, as in the paper. Note that the
//     serial scanline is the better serial algorithm (O(crossings) per
//     row, not O(vertices) per cell) -- the paper's pipeline wins by
//     exposing massive data parallelism, not by lowering op counts.
#include <cstdio>

#include "bench_util.hpp"
#include "common/timer.hpp"
#include "core/baseline.hpp"
#include "core/perf_model.hpp"
#include "core/pipeline.hpp"
#include "data/county_synth.hpp"
#include "data/dem_synth.hpp"

int main() {
  using namespace zh;
  const int edge = bench::env_int("ZH_EDGE", 2400);
  const int zones = bench::env_int("ZH_ZONES", 24);
  const BinIndex bins =
      static_cast<BinIndex>(bench::env_int("ZH_BINS", 1000));
  const std::int64_t tile = bench::env_int("ZH_TILE", 40);

  std::printf("workload: %dx%d DEM (%s cells), %d zones, %u bins, "
              "tile=%lld\n",
              edge, edge,
              bench::with_commas(static_cast<unsigned long long>(edge) *
                                 edge).c_str(),
              zones, bins, static_cast<long long>(tile));
  const GeoTransform t(-100.0, 40.0, 1.0 / 240.0, 1.0 / 240.0);
  const DemRaster dem = generate_dem(edge, edge, t);
  CountyParams cp;
  cp.grid_x = 6;
  cp.grid_y = zones / 6;
  cp.hole_every = 10;
  const GeoBox ext = t.extent(edge, edge);
  const PolygonSet counties = generate_counties(
      GeoBox{ext.min_x - 0.1, ext.min_y - 0.1, ext.max_x + 0.1,
             ext.max_y + 0.1},
      cp);

  Device device(DeviceProfile::host());
  const ZonalPipeline pipe(device, {.tile_size = tile, .bins = bins});

  Timer tp;
  const ZonalResult pr = pipe.run(dem, counties);
  const double pipeline_emulated_s = tp.seconds();
  const PerfModel model;
  const StepTimes titan =
      model.project(pr.work, DeviceProfile::gtx_titan());
  const double pipeline_gpu_s = titan.step_total();

  Timer ts;
  const HistogramSet scan = zonal_scanline(dem, counties, bins);
  const double scan_s = ts.seconds();

  Timer tm;
  const HistogramSet mbb = zonal_mbb_filter(dem, counties, bins);
  const double mbb_s = tm.seconds();

  bench::print_header("Zonal histogramming: pipeline vs serial baselines");
  std::printf("  %-44s %10.3f s\n",
              "pipeline, emulated on host (structure only)",
              pipeline_emulated_s);
  std::printf("  %-44s %10.3f s\n",
              "pipeline, projected on GTX Titan (paper cfg)",
              pipeline_gpu_s);
  std::printf("  %-44s %10.3f s   (%5.1fx vs GPU)\n",
              "scanline rasterization, serial (GIS-style)", scan_s,
              scan_s / pipeline_gpu_s);
  std::printf("  %-44s %10.3f s   (%5.1fx vs GPU)\n",
              "per-cell PIP with MBB filter, serial", mbb_s,
              mbb_s / pipeline_gpu_s);

  bench::print_header("Work accounting (why the filter matters)");
  std::printf("  tiles inside polygons (histograms reused): %llu\n",
              static_cast<unsigned long long>(pr.work.pairs_inside));
  std::printf("  tiles on boundaries (need per-cell PIP):   %llu\n",
              static_cast<unsigned long long>(pr.work.pairs_intersect));
  std::printf("  PIP cell tests / raster cells:             %.2f\n",
              static_cast<double>(pr.work.pip_cell_tests) /
                  static_cast<double>(pr.work.cells_total));
  std::printf("  (a pipeline without Step-2/3 filtering would PIP-test\n"
              "   every cell against every overlapping zone)\n");

  bench::print_header("Result validation");
  const bool ok_mbb = pr.per_polygon == mbb;
  const bool ok_scan = pr.per_polygon == scan;
  std::printf("  pipeline == MBB-filter baseline: %s\n",
              ok_mbb ? "identical" : "MISMATCH");
  std::printf("  pipeline == scanline baseline:   %s\n",
              ok_scan ? "identical" : "MISMATCH");
  return (ok_mbb && ok_scan) ? 0 : 1;
}
