// Prometheus text-exposition (v0.0.4) rendering of the metrics
// registry, plus the format linter that validate_obs and the tests
// share.
//
// Name mapping (dots become underscores, everything gets a zh_ prefix):
//   counter  cache.hits      -> zh_cache_hits_total        TYPE counter
//   gauge    cache.bytes     -> zh_cache_bytes             TYPE gauge
//   stat     foo.bar         -> zh_foo_bar                 TYPE summary
//   latency  latency.query   -> zh_query_latency_seconds   TYPE summary
// Latency series render as summaries with quantile labels (0.5, 0.9,
// 0.95, 0.99) plus _sum/_count. A `latency.` prefix is dropped and the
// remainder gets a `_latency_seconds` suffix, so `latency.query`
// becomes the conventional `zh_query_latency_seconds`.
//
// Derived series: zh_cache_hit_rate (hits / (hits + misses)) whenever
// both counters exist, so scrapers get the cache hit-rate without
// recomputing it. With a RollingWindow attached, each counter
// additionally gets `<name>_rate{window="Ns"}` (per-second rate over
// the trailing window) and each latency family gets
// `<family>_window{window="Ns",quantile="q"}` windowed quantiles.
#pragma once

#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/rolling_window.hpp"

namespace zh::obs {

struct ExpositionOptions {
  /// Optional rolling window; adds *_rate and *_window series.
  const RollingWindow* window = nullptr;
  /// Trailing window the *_rate / *_window series cover.
  double window_seconds = 60.0;
  /// Monotone "now" matching the clock used for RollingWindow::push.
  double now_seconds = 0.0;
};

/// Map a registry metric name to its Prometheus family name.
[[nodiscard]] std::string prometheus_family_name(const std::string& name,
                                                 MetricKind kind);

/// Render a snapshot as Prometheus text exposition v0.0.4.
[[nodiscard]] std::string prometheus_exposition(
    const std::vector<MetricRecord>& snapshot,
    const ExpositionOptions& options = {});

/// Lint exposition text: HELP/TYPE lines present for every sampled
/// family (TYPE before the first sample), metric names match
/// [a-zA-Z_:][a-zA-Z0-9_:]*, label syntax parses, sample values parse,
/// and no series (name + label set) appears twice. Returns one message
/// per problem; empty means the text passes.
[[nodiscard]] std::vector<std::string> lint_exposition(
    const std::string& text);

}  // namespace zh::obs
