#include "obs/exposition.hpp"

#include <charconv>
#include <cstdint>
#include <map>
#include <set>
#include <string>

#include "common/contracts.hpp"

namespace zh::obs {

namespace {

constexpr double kQuantiles[] = {0.5, 0.9, 0.95, 0.99};

// to_chars, not snprintf: %g honors LC_NUMERIC and a comma decimal
// point would break the exposition format.
void append_double(std::string& out, double v) {
  char buf[32];
  const auto [end, ec] =
      std::to_chars(buf, buf + sizeof(buf), v, std::chars_format::general, 9);
  ZH_ASSERT(ec == std::errc(), "double did not fit a 32-byte buffer");
  out.append(buf, end);
}

bool name_start_char(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
         c == ':';
}

bool name_char(char c) { return name_start_char(c) || (c >= '0' && c <= '9'); }

bool valid_metric_name(const std::string& name) {
  if (name.empty() || !name_start_char(name[0])) return false;
  for (std::size_t i = 1; i < name.size(); ++i) {
    if (!name_char(name[i])) return false;
  }
  return true;
}

// Registry names are dotted lowercase; anything outside the Prometheus
// alphabet maps to '_'.
std::string sanitize(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) out += name_char(c) ? c : '_';
  return out;
}

std::string escape_help(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

void append_header(std::string& out, const std::string& family,
                   const std::string& help, const char* type) {
  out += "# HELP ";
  out += family;
  out += " ";
  out += escape_help(help);
  out += "\n# TYPE ";
  out += family;
  out += " ";
  out += type;
  out += "\n";
}

std::string window_label(double window_seconds) {
  std::string out = "window=\"";
  out += std::to_string(static_cast<long long>(window_seconds));
  out += "s\"";
  return out;
}

void append_quantile_line(std::string& out, const std::string& family,
                          const std::string& extra_label, double q,
                          double value) {
  out += family;
  out += "{";
  if (!extra_label.empty()) {
    out += extra_label;
    out += ",";
  }
  out += "quantile=\"";
  append_double(out, q);
  out += "\"} ";
  append_double(out, value);
  out += "\n";
}

}  // namespace

std::string prometheus_family_name(const std::string& name,
                                   MetricKind kind) {
  std::string base = name;
  if (kind == MetricKind::kLatency && base.rfind("latency.", 0) == 0) {
    base = base.substr(sizeof("latency.") - 1);
  }
  std::string out = "zh_" + sanitize(base);
  switch (kind) {
    case MetricKind::kCounter:
      out += "_total";
      break;
    case MetricKind::kGauge:
    case MetricKind::kGaugeSet:
    case MetricKind::kStat:
      break;
    case MetricKind::kLatency:
      out += "_latency_seconds";
      break;
  }
  return out;
}

std::string prometheus_exposition(const std::vector<MetricRecord>& snapshot,
                                  const ExpositionOptions& options) {
  std::string out;
  out.reserve(4096);
  const MetricRecord* cache_hits = nullptr;
  const MetricRecord* cache_misses = nullptr;
  for (const MetricRecord& m : snapshot) {
    const std::string family = prometheus_family_name(m.name, m.kind);
    const std::string help = "zh registry metric " + m.name;
    switch (m.kind) {
      case MetricKind::kCounter:
        append_header(out, family, help, "counter");
        out += family;
        out += " ";
        out += std::to_string(m.value);
        out += "\n";
        break;
      case MetricKind::kGauge:
      case MetricKind::kGaugeSet:
        append_header(out, family, help, "gauge");
        out += family;
        out += " ";
        out += std::to_string(m.value);
        out += "\n";
        break;
      case MetricKind::kStat:
        append_header(out, family, help, "summary");
        out += family;
        out += "_sum ";
        append_double(out, m.sum);
        out += "\n";
        out += family;
        out += "_count ";
        out += std::to_string(m.count);
        out += "\n";
        break;
      case MetricKind::kLatency: {
        append_header(out, family, help, "summary");
        for (double q : kQuantiles) {
          append_quantile_line(out, family, "", q, m.latency.quantile(q));
        }
        out += family;
        out += "_sum ";
        append_double(out, m.sum);
        out += "\n";
        out += family;
        out += "_count ";
        out += std::to_string(m.count);
        out += "\n";
        break;
      }
    }
    if (m.kind == MetricKind::kCounter) {
      if (m.name == "cache.hits") cache_hits = &m;
      if (m.name == "cache.misses") cache_misses = &m;
    }
  }

  // Derived tile-cache hit-rate: scraped dashboards want the ratio, not
  // two counters to divide themselves.
  if (cache_hits != nullptr && cache_misses != nullptr) {
    const double denom =
        static_cast<double>(cache_hits->value + cache_misses->value);
    const double rate =
        denom > 0.0 ? static_cast<double>(cache_hits->value) / denom : 0.0;
    append_header(out, "zh_cache_hit_rate",
                  "tile-cache hit fraction: cache.hits / (hits + misses)",
                  "gauge");
    out += "zh_cache_hit_rate ";
    append_double(out, rate);
    out += "\n";
  }

  if (options.window != nullptr) {
    const std::string wlabel = window_label(options.window_seconds);
    for (const MetricRecord& m : snapshot) {
      if (m.kind == MetricKind::kCounter) {
        const WindowRate r = options.window->rate(
            m.name, options.window_seconds, options.now_seconds);
        if (!r.valid) continue;
        const std::string family = "zh_" + sanitize(m.name) + "_rate";
        append_header(out, family,
                      "per-second rate of " + m.name + " over the window",
                      "gauge");
        out += family;
        out += "{";
        out += wlabel;
        out += "} ";
        append_double(out, r.per_second);
        out += "\n";
      } else if (m.kind == MetricKind::kLatency) {
        const LatencyHistogram delta = options.window->latency_delta(
            m.name, options.window_seconds, options.now_seconds);
        if (delta.empty()) continue;
        const std::string family =
            prometheus_family_name(m.name, m.kind) + "_window";
        append_header(out, family,
                      "windowed quantiles of " + m.name, "gauge");
        for (double q : kQuantiles) {
          append_quantile_line(out, family, wlabel, q, delta.quantile(q));
        }
      }
    }
  }
  return out;
}

namespace {

// One parsed sample line: metric name, raw label block, the rest.
struct SampleLine {
  std::string name;
  std::string labels;  // raw text between {} (empty when no labels)
  std::string value;
  bool ok = false;
  std::string why;
};

SampleLine parse_sample(const std::string& line) {
  SampleLine s;
  std::size_t i = 0;
  while (i < line.size() && name_char(line[i])) ++i;
  s.name = line.substr(0, i);
  if (s.name.empty()) {
    s.why = "missing metric name";
    return s;
  }
  if (i < line.size() && line[i] == '{') {
    const std::size_t open = i;
    ++i;
    bool closed = false;
    while (i < line.size()) {
      // Label values may contain escaped quotes; skip string bodies.
      if (line[i] == '"') {
        ++i;
        while (i < line.size() && line[i] != '"') {
          if (line[i] == '\\') ++i;
          ++i;
        }
        if (i >= line.size()) break;
      } else if (line[i] == '}') {
        closed = true;
        break;
      }
      ++i;
    }
    if (!closed) {
      s.why = "unterminated label block";
      return s;
    }
    s.labels = line.substr(open + 1, i - open - 1);
    ++i;
  }
  if (i >= line.size() || line[i] != ' ') {
    s.why = "missing value";
    return s;
  }
  ++i;
  const std::size_t vstart = i;
  while (i < line.size() && line[i] != ' ') ++i;
  s.value = line.substr(vstart, i - vstart);
  // Anything after the value must be an integer timestamp.
  if (i < line.size()) {
    ++i;
    const std::string ts = line.substr(i);
    if (ts.empty() ||
        ts.find_first_not_of("-0123456789") != std::string::npos) {
      s.why = "trailing garbage after value";
      return s;
    }
  }
  s.ok = true;
  return s;
}

bool parse_value(const std::string& v) {
  if (v == "+Inf" || v == "-Inf" || v == "NaN" || v == "Inf") return true;
  if (v.empty()) return false;
  double parsed = 0.0;
  const char* begin = v.data();
  const char* end = v.data() + v.size();
  const auto [ptr, ec] = std::from_chars(begin, end, parsed);
  return ec == std::errc() && ptr == end;
}

bool well_formed_labels(const std::string& labels) {
  // name="value"(,name="value")*  with \" \\ \n escapes inside values.
  std::size_t i = 0;
  while (i < labels.size()) {
    const std::size_t start = i;
    while (i < labels.size() && name_char(labels[i])) ++i;
    if (i == start || i >= labels.size() || labels[i] != '=') return false;
    ++i;
    if (i >= labels.size() || labels[i] != '"') return false;
    ++i;
    while (i < labels.size() && labels[i] != '"') {
      if (labels[i] == '\\') ++i;
      ++i;
    }
    if (i >= labels.size()) return false;
    ++i;  // closing quote
    if (i < labels.size()) {
      if (labels[i] != ',') return false;
      ++i;
      if (i >= labels.size()) return false;  // trailing comma
    }
  }
  return true;
}

}  // namespace

std::vector<std::string> lint_exposition(const std::string& text) {
  std::vector<std::string> problems;
  std::map<std::string, std::string> family_type;
  std::set<std::string> family_help;
  std::set<std::string> families_sampled;
  std::set<std::string> series_seen;
  static const char* const kTypes[] = {"counter", "gauge", "histogram",
                                       "summary", "untyped"};

  std::size_t lineno = 0;
  std::size_t pos = 0;
  std::size_t sample_count = 0;
  while (pos <= text.size()) {
    const std::size_t nl = text.find('\n', pos);
    const std::string line = text.substr(
        pos, nl == std::string::npos ? std::string::npos : nl - pos);
    pos = nl == std::string::npos ? text.size() + 1 : nl + 1;
    ++lineno;
    const std::string at = "line " + std::to_string(lineno) + ": ";
    if (line.empty()) continue;
    if (line[0] == '#') {
      // "# HELP name text" / "# TYPE name type" / free-form comment.
      if (line.rfind("# HELP ", 0) == 0) {
        const std::string rest = line.substr(7);
        const std::size_t sp = rest.find(' ');
        const std::string name =
            sp == std::string::npos ? rest : rest.substr(0, sp);
        if (!valid_metric_name(name)) {
          problems.push_back(at + "HELP for invalid name \"" + name + "\"");
        } else if (!family_help.insert(name).second) {
          problems.push_back(at + "duplicate HELP for " + name);
        }
      } else if (line.rfind("# TYPE ", 0) == 0) {
        const std::string rest = line.substr(7);
        const std::size_t sp = rest.find(' ');
        if (sp == std::string::npos) {
          problems.push_back(at + "TYPE line without a type");
          continue;
        }
        const std::string name = rest.substr(0, sp);
        const std::string type = rest.substr(sp + 1);
        bool known = false;
        for (const char* t : kTypes) {
          if (type == t) known = true;
        }
        if (!valid_metric_name(name)) {
          problems.push_back(at + "TYPE for invalid name \"" + name + "\"");
        } else if (!known) {
          problems.push_back(at + "unknown TYPE \"" + type + "\"");
        } else if (family_type.count(name) != 0) {
          problems.push_back(at + "duplicate TYPE for " + name);
        } else if (families_sampled.count(name) != 0) {
          problems.push_back(at + "TYPE for " + name +
                             " appears after its samples");
        } else {
          family_type[name] = type;
        }
      }
      continue;
    }

    const SampleLine s = parse_sample(line);
    if (!s.ok) {
      problems.push_back(at + s.why);
      continue;
    }
    ++sample_count;
    if (!valid_metric_name(s.name)) {
      problems.push_back(at + "invalid metric name \"" + s.name + "\"");
      continue;
    }
    if (!s.labels.empty() && !well_formed_labels(s.labels)) {
      problems.push_back(at + "malformed labels {" + s.labels + "}");
    }
    if (!parse_value(s.value)) {
      problems.push_back(at + "unparsable value \"" + s.value + "\"");
    }

    // Resolve the sample to its family: exact name, or the base name
    // for the _sum/_count/_bucket children of summaries/histograms.
    std::string family;
    if (family_type.count(s.name) != 0) {
      family = s.name;
    } else {
      for (const char* suffix : {"_sum", "_count", "_bucket"}) {
        const std::string sfx = suffix;
        if (s.name.size() > sfx.size() &&
            s.name.compare(s.name.size() - sfx.size(), sfx.size(), sfx) ==
                0) {
          const std::string base =
              s.name.substr(0, s.name.size() - sfx.size());
          const auto it = family_type.find(base);
          if (it != family_type.end() &&
              (it->second == "summary" || it->second == "histogram")) {
            family = base;
            break;
          }
        }
      }
    }
    if (family.empty()) {
      problems.push_back(at + "sample \"" + s.name +
                         "\" has no preceding TYPE line");
    } else {
      families_sampled.insert(family);
      if (family_help.count(family) == 0) {
        problems.push_back(at + "family " + family + " has no HELP line");
        family_help.insert(family);  // report once
      }
    }

    const std::string key = s.name + "{" + s.labels + "}";
    if (!series_seen.insert(key).second) {
      problems.push_back(at + "duplicate series " + key);
    }
  }
  if (sample_count == 0) {
    problems.push_back("no samples in exposition");
  }
  return problems;
}

}  // namespace zh::obs
