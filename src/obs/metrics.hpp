// Named counters / gauges / histogram-stats with a thread-local sharded
// implementation.
//
// Hot-path cost model: an instrumentation site (ZH_COUNTER_ADD etc.)
// pays one relaxed load of the enabled flag; when metrics are on it
// adds one interned-id lookup (a function-local static, resolved once
// per call site) plus a relaxed atomic RMW on a slot private to the
// calling thread. No lock is ever taken on the update path; shard
// growth and snapshot/reset take the shard's mutex, which updates never
// touch because a shard only grows when a *new* metric id first appears
// on that thread.
//
// Shards retire into a global accumulator on thread exit so counts from
// short-lived pool workers and cluster rank threads survive until
// report time.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace zh::obs {

namespace detail {
extern std::atomic<bool> g_metrics_enabled;
}  // namespace detail

/// Whether metric updates are recorded. Off by default.
inline bool metrics_enabled() {
  return detail::g_metrics_enabled.load(std::memory_order_relaxed);
}

/// Turn metric recording on/off (process-wide).
void set_metrics_enabled(bool on);

enum class MetricKind : std::uint8_t {
  kCounter,  ///< monotonically increasing u64 (merge: sum)
  kGauge,    ///< u64 level; merge keeps the max (e.g. peak bytes)
  kStat,     ///< double samples; merge: count/sum/min/max
};

/// Dense id of an interned metric name. Call sites cache it in a
/// function-local static so interning happens once per site.
using MetricId = std::uint32_t;

/// Intern `name` with `kind`. Re-interning an existing name returns the
/// same id; re-interning with a different kind throws InvalidArgument
/// (one name, one meaning).
MetricId metric_id(const char* name, MetricKind kind);

/// Add `delta` to counter `id` (calling thread's shard).
void counter_add(MetricId id, std::uint64_t delta);

/// Raise gauge `id` to at least `value`.
void gauge_max(MetricId id, std::uint64_t value);

/// Record one sample into stat `id`.
void stat_record(MetricId id, double sample);

/// Merged view of one metric across all shards (live + retired).
struct MetricRecord {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  std::uint64_t value = 0;  ///< counter sum or gauge max
  // Stat fields (kStat only; count doubles as the sample count).
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  ///< 0 when count == 0
  double max = 0.0;
};

/// Merge every shard and return all registered metrics in registration
/// order. Metrics never updated report zeros.
[[nodiscard]] std::vector<MetricRecord> metrics_snapshot();

/// Zero all recorded values (live shards and retired accumulators).
/// Registered names/ids survive.
void metrics_reset();

}  // namespace zh::obs

#include "obs/trace.hpp"

namespace zh::obs {
/// Either subsystem active -- instrumentation that wraps work (e.g. the
/// ThreadPool task shim) checks this so idle runs skip the wrapper.
inline bool profiling_enabled() { return metrics_enabled() || trace_enabled(); }
}  // namespace zh::obs

// Instrumentation macros; no-ops when the ZH_OBS CMake option is OFF.
// `name` must be a string literal (it is interned once per call site).
#if defined(ZH_ENABLE_OBS)
#define ZH_COUNTER_ADD(name, delta)                                          \
  do {                                                                       \
    if (::zh::obs::metrics_enabled()) {                                      \
      static const ::zh::obs::MetricId zh_obs_id_ =                          \
          ::zh::obs::metric_id(name, ::zh::obs::MetricKind::kCounter);       \
      ::zh::obs::counter_add(zh_obs_id_,                                     \
                             static_cast<std::uint64_t>(delta));             \
    }                                                                        \
  } while (false)
#define ZH_GAUGE_MAX(name, value)                                            \
  do {                                                                       \
    if (::zh::obs::metrics_enabled()) {                                      \
      static const ::zh::obs::MetricId zh_obs_id_ =                          \
          ::zh::obs::metric_id(name, ::zh::obs::MetricKind::kGauge);         \
      ::zh::obs::gauge_max(zh_obs_id_, static_cast<std::uint64_t>(value));   \
    }                                                                        \
  } while (false)
#define ZH_STAT_RECORD(name, sample)                                         \
  do {                                                                       \
    if (::zh::obs::metrics_enabled()) {                                      \
      static const ::zh::obs::MetricId zh_obs_id_ =                          \
          ::zh::obs::metric_id(name, ::zh::obs::MetricKind::kStat);          \
      ::zh::obs::stat_record(zh_obs_id_, static_cast<double>(sample));       \
    }                                                                        \
  } while (false)
#else
#define ZH_COUNTER_ADD(name, delta) \
  do {                              \
  } while (false)
#define ZH_GAUGE_MAX(name, value) \
  do {                            \
  } while (false)
#define ZH_STAT_RECORD(name, sample) \
  do {                               \
  } while (false)
#endif
