// Named counters / gauges / histogram-stats with a thread-local sharded
// implementation.
//
// Hot-path cost model: an instrumentation site (ZH_COUNTER_ADD etc.)
// pays one relaxed load of the enabled flag; when metrics are on it
// adds one interned-id lookup (a function-local static, resolved once
// per call site) plus a relaxed atomic RMW on a slot private to the
// calling thread. No lock is ever taken on the update path; shard
// growth and snapshot/reset take the shard's mutex, which updates never
// touch because a shard only grows when a *new* metric id first appears
// on that thread.
//
// Shards retire into a global accumulator on thread exit so counts from
// short-lived pool workers and cluster rank threads survive until
// report time.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/latency_histogram.hpp"

namespace zh::obs {

namespace detail {
extern std::atomic<bool> g_metrics_enabled;
}  // namespace detail

/// Whether metric updates are recorded. Off by default.
inline bool metrics_enabled() {
  return detail::g_metrics_enabled.load(std::memory_order_relaxed);
}

/// Turn metric recording on/off (process-wide).
void set_metrics_enabled(bool on);

// Merge semantics per kind (how per-thread shards combine at snapshot):
//   kCounter  -- sum across shards; monotone by construction.
//   kGauge    -- max across shards: a high-water mark (peak bytes). It
//                can never go down, even across metrics_reset-free runs.
//   kGaugeSet -- last value wins: every gauge_set() draws a ticket from
//                a process-global sequence, and the merge keeps the
//                value with the highest ticket. This is the level-style
//                gauge (current cache bytes, open connections) that can
//                go DOWN, which kGauge structurally cannot.
//   kStat     -- count/sum/min/max of double samples.
//   kLatency  -- log-linear histogram (latency_histogram.hpp): buckets
//                add element-wise, so merges are exact, associative and
//                commutative, and quantiles survive aggregation.
enum class MetricKind : std::uint8_t {
  kCounter,   ///< monotonically increasing u64 (merge: sum)
  kGauge,     ///< u64 high-water mark; merge keeps the max
  kGaugeSet,  ///< u64 level; merge keeps the most recent set (can go down)
  kStat,      ///< double samples; merge: count/sum/min/max
  kLatency,   ///< log-linear latency histogram; merge: per-bucket sum
};

/// Dense id of an interned metric name. Call sites cache it in a
/// function-local static so interning happens once per site.
using MetricId = std::uint32_t;

/// Intern `name` with `kind`. Re-interning an existing name returns the
/// same id; re-interning with a different kind throws InvalidArgument
/// (one name, one meaning).
MetricId metric_id(const char* name, MetricKind kind);

/// Add `delta` to counter `id` (calling thread's shard).
void counter_add(MetricId id, std::uint64_t delta);

/// Raise gauge `id` to at least `value` (kGauge).
void gauge_max(MetricId id, std::uint64_t value);

/// Overwrite gauge `id` with `value` (kGaugeSet). Last set wins
/// process-wide, ordered by a global set-sequence ticket, so a later
/// set on any thread beats an earlier set on any other.
void gauge_set(MetricId id, std::uint64_t value);

/// Record one sample into stat `id`.
void stat_record(MetricId id, double sample);

/// Record one latency sample in seconds into histogram `id` (kLatency).
/// Lock-free after the calling thread's first sample for this id (the
/// first sample allocates the thread's bucket array under the shard
/// mutex; every later one is a relaxed fetch_add on a private bucket).
void latency_record(MetricId id, double seconds);

/// Merged view of one metric across all shards (live + retired).
struct MetricRecord {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  std::uint64_t value = 0;  ///< counter sum, gauge max, or gauge_set last
  // Stat fields (kStat/kLatency; count doubles as the sample count).
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  ///< 0 when count == 0
  double max = 0.0;
  // Merged histogram (kLatency only; empty otherwise).
  LatencyHistogram latency;
};

/// Merge every shard and return all registered metrics in registration
/// order. Metrics never updated report zeros.
[[nodiscard]] std::vector<MetricRecord> metrics_snapshot();

/// Zero all recorded values (live shards and retired accumulators).
/// Registered names/ids survive.
void metrics_reset();

}  // namespace zh::obs

#include "obs/trace.hpp"

namespace zh::obs {
/// Either subsystem active -- instrumentation that wraps work (e.g. the
/// ThreadPool task shim) checks this so idle runs skip the wrapper.
inline bool profiling_enabled() { return metrics_enabled() || trace_enabled(); }
}  // namespace zh::obs

// Instrumentation macros; no-ops when the ZH_OBS CMake option is OFF.
// `name` must be a string literal (it is interned once per call site).
#if defined(ZH_ENABLE_OBS)
#define ZH_COUNTER_ADD(name, delta)                                          \
  do {                                                                       \
    if (::zh::obs::metrics_enabled()) {                                      \
      static const ::zh::obs::MetricId zh_obs_id_ =                          \
          ::zh::obs::metric_id(name, ::zh::obs::MetricKind::kCounter);       \
      ::zh::obs::counter_add(zh_obs_id_,                                     \
                             static_cast<std::uint64_t>(delta));             \
    }                                                                        \
  } while (false)
#define ZH_GAUGE_MAX(name, value)                                            \
  do {                                                                       \
    if (::zh::obs::metrics_enabled()) {                                      \
      static const ::zh::obs::MetricId zh_obs_id_ =                          \
          ::zh::obs::metric_id(name, ::zh::obs::MetricKind::kGauge);         \
      ::zh::obs::gauge_max(zh_obs_id_, static_cast<std::uint64_t>(value));   \
    }                                                                        \
  } while (false)
#define ZH_GAUGE_SET(name, value)                                            \
  do {                                                                       \
    if (::zh::obs::metrics_enabled()) {                                      \
      static const ::zh::obs::MetricId zh_obs_id_ =                          \
          ::zh::obs::metric_id(name, ::zh::obs::MetricKind::kGaugeSet);      \
      ::zh::obs::gauge_set(zh_obs_id_, static_cast<std::uint64_t>(value));   \
    }                                                                        \
  } while (false)
#define ZH_STAT_RECORD(name, sample)                                         \
  do {                                                                       \
    if (::zh::obs::metrics_enabled()) {                                      \
      static const ::zh::obs::MetricId zh_obs_id_ =                          \
          ::zh::obs::metric_id(name, ::zh::obs::MetricKind::kStat);          \
      ::zh::obs::stat_record(zh_obs_id_, static_cast<double>(sample));       \
    }                                                                        \
  } while (false)
#define ZH_LATENCY_RECORD(name, seconds)                                     \
  do {                                                                       \
    if (::zh::obs::metrics_enabled()) {                                      \
      static const ::zh::obs::MetricId zh_obs_id_ =                          \
          ::zh::obs::metric_id(name, ::zh::obs::MetricKind::kLatency);       \
      ::zh::obs::latency_record(zh_obs_id_, static_cast<double>(seconds));   \
    }                                                                        \
  } while (false)
#else
#define ZH_COUNTER_ADD(name, delta) \
  do {                              \
  } while (false)
#define ZH_GAUGE_MAX(name, value) \
  do {                            \
  } while (false)
#define ZH_GAUGE_SET(name, value) \
  do {                            \
  } while (false)
#define ZH_STAT_RECORD(name, sample) \
  do {                               \
  } while (false)
#define ZH_LATENCY_RECORD(name, seconds) \
  do {                                   \
  } while (false)
#endif
