#include "obs/metrics_server.hpp"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "common/error.hpp"
#include "obs/exposition.hpp"
#include "obs/metrics.hpp"

namespace zh::obs {

namespace {

double mono_now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void send_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) return;  // peer went away; a scrape retry is cheap
    sent += static_cast<std::size_t>(n);
  }
}

std::string http_response(const char* status, const char* content_type,
                          const std::string& body) {
  std::string out = "HTTP/1.0 ";
  out += status;
  out += "\r\nContent-Type: ";
  out += content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(body.size());
  out += "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

}  // namespace

MetricsServer::MetricsServer(const MetricsServerOptions& options)
    : options_(options),
      window_(std::max(options.window_seconds * 2.0,
                       options.tick_seconds * 4.0),
              options.window_samples) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  ZH_REQUIRE_IO(listen_fd_ >= 0,
                "metrics server: socket() failed: ", std::strerror(errno));
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 16) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    ZH_REQUIRE_IO(false, "metrics server: cannot listen on 127.0.0.1:",
                  options_.port, ": ", std::strerror(err));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  ZH_REQUIRE_IO(::getsockname(listen_fd_,
                              reinterpret_cast<sockaddr*>(&bound),
                              &len) == 0,
                "metrics server: getsockname() failed");
  port_ = ntohs(bound.sin_port);
  thread_ = std::thread([this] { serve_loop(); });
}

MetricsServer::~MetricsServer() { stop(); }

void MetricsServer::stop() {
  if (!stop_.exchange(true)) {
    if (thread_.joinable()) thread_.join();
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
  }
}

void MetricsServer::maybe_tick() {
  std::lock_guard<std::mutex> lock(tick_mu_);
  const double now = mono_now();
  if (last_tick_ >= 0.0 && now - last_tick_ < options_.tick_seconds) return;
  last_tick_ = now;
  window_.push(now, metrics_snapshot());
}

std::string MetricsServer::render() {
  maybe_tick();
  ExpositionOptions opts;
  opts.window = &window_;
  opts.window_seconds = options_.window_seconds;
  opts.now_seconds = mono_now();
  return prometheus_exposition(metrics_snapshot(), opts);
}

void MetricsServer::serve_loop() {
  while (!stop_.load(std::memory_order_relaxed)) {
    maybe_tick();
    pollfd pfd{};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    const int rc = ::poll(&pfd, 1, 200);  // ms; bounds stop() latency
    if (rc <= 0 || (pfd.revents & POLLIN) == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    ZH_GAUGE_SET("serve.open_connections", 1);
    handle_connection(fd);
    ::close(fd);
    ZH_GAUGE_SET("serve.open_connections", 0);
  }
}

void MetricsServer::handle_connection(int fd) {
  timeval timeout{};
  timeout.tv_sec = 2;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  std::string request;
  char buf[1024];
  while (request.size() < 8192 &&
         request.find("\r\n\r\n") == std::string::npos) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    request.append(buf, static_cast<std::size_t>(n));
  }
  ZH_COUNTER_ADD("serve.http_requests", 1);
  // "GET <path> HTTP/1.x"
  std::string path;
  if (request.rfind("GET ", 0) == 0) {
    const std::size_t end = request.find(' ', 4);
    if (end != std::string::npos) path = request.substr(4, end - 4);
  }
  if (path == "/metrics") {
    ZH_COUNTER_ADD("serve.scrapes", 1);
    send_all(fd, http_response(
                     "200 OK", "text/plain; version=0.0.4; charset=utf-8",
                     render()));
  } else if (path == "/healthz") {
    send_all(fd, http_response("200 OK", "text/plain; charset=utf-8",
                               "ok\n"));
  } else {
    ZH_COUNTER_ADD("serve.http_errors", 1);
    send_all(fd, http_response("404 Not Found",
                               "text/plain; charset=utf-8",
                               "not found\n"));
  }
}

}  // namespace zh::obs
