#include "obs/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace zh::obs {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  for (const auto& [k, v] : obj) {
    if (k == key) return &v;
  }
  return nullptr;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value(0);
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const char* why) const {
    throw IoError(detail::format_parts("JSON parse error at byte ", pos_, ": ",
                                       why));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail("unexpected character");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value(std::size_t depth) {
    if (depth > kJsonMaxDepth) fail("nesting exceeds depth limit");
    skip_ws();
    const char c = peek();
    JsonValue v;
    switch (c) {
      case '{':
        return parse_object(depth);
      case '[':
        return parse_array(depth);
      case '"':
        v.type = JsonValue::Type::kString;
        v.str = parse_string();
        return v;
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        v.type = JsonValue::Type::kBool;
        v.boolean = true;
        return v;
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        v.type = JsonValue::Type::kBool;
        v.boolean = false;
        return v;
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        v.type = JsonValue::Type::kNull;
        return v;
      default:
        return parse_number();
    }
  }

  JsonValue parse_object(std::size_t depth) {
    expect('{');
    JsonValue v;
    v.type = JsonValue::Type::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.obj.emplace_back(std::move(key), parse_value(depth + 1));
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return v;
      }
      fail("expected ',' or '}' in object");
    }
  }

  JsonValue parse_array(std::size_t depth) {
    expect('[');
    JsonValue v;
    v.type = JsonValue::Type::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.arr.push_back(parse_value(depth + 1));
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return v;
      }
      fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad hex digit in \\u escape");
            }
          }
          // UTF-8 encode the BMP code point (surrogate pairs are not
          // needed for our machine-written reports; reject them).
          if (code >= 0xD800 && code <= 0xDFFF) fail("surrogate in \\u escape");
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          fail("bad escape character");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    auto digits = [&] {
      std::size_t n = 0;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
        ++n;
      }
      return n;
    };
    if (digits() == 0) fail("expected a number");
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (digits() == 0) fail("digits required after decimal point");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (digits() == 0) fail("digits required in exponent");
    }
    // from_chars, not strtod: strtod honors LC_NUMERIC, so a
    // comma-decimal locale would reject valid JSON like "1.5" (it would
    // stop at the '.' and leave trailing characters).
    const std::string_view token = text_.substr(start, pos_ - start);
    double value = 0.0;
    const auto [end, ec] =
        std::from_chars(token.data(), token.data() + token.size(), value);
    if (ec != std::errc() || end != token.data() + token.size()) {
      fail("number out of range");
    }
    if (!std::isfinite(value)) fail("number out of range");
    JsonValue v;
    v.type = JsonValue::Type::kNumber;
    v.number = value;
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue parse_json(std::string_view text) {
  return Parser(text).parse_document();
}

JsonValue parse_json_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  ZH_REQUIRE_IO(in.good(), "cannot open JSON file: ", path);
  std::ostringstream buf;
  buf << in.rdbuf();
  ZH_REQUIRE_IO(!in.bad(), "failed reading JSON file: ", path);
  return parse_json(buf.str());
}

}  // namespace zh::obs
