// Log-linear (HDR-style) latency histogram: the value type behind
// MetricKind::kLatency and the rolling-window quantile views.
//
// Bucket layout. The positive seconds axis is split into octaves
// [2^e, 2^(e+1)) for e in [kLatencyMinExp2, kLatencyMaxExp2), and each
// octave into kLatencySubBuckets equal-width linear sub-buckets. Two
// sentinel buckets bracket the range: bucket 0 catches underflow
// (v < 2^kLatencyMinExp2, zero, negative, NaN) and the last bucket
// catches overflow (v >= 2^kLatencyMaxExp2). With the defaults the
// range spans ~0.93 ns .. 4096 s -- more than 12 orders of magnitude --
// in 2 + 42*32 = 1346 buckets of 8 bytes each.
//
// Error bound. Inside an octave the sub-bucket width is
// 2^e / kLatencySubBuckets, and every value in the octave is >= 2^e, so
// reporting a bucket midpoint is off by at most
// 1 / (2 * kLatencySubBuckets) relative (~1.6% at 32 sub-buckets).
// Quantiles report the midpoint of the bucket holding the requested
// rank, clamped to the observed min/max, so the same bound applies.
//
// Mergeability. A histogram is a vector of counts plus count/sum/
// min/max; merge is element-wise addition, which is exact, associative,
// and commutative by construction (the double `sum` is associative up
// to float rounding). `since()` subtracts an older cumulative snapshot
// element-wise, which is what the rolling window uses for "quantiles
// over the last N seconds".
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace zh::obs {

/// Smallest bucketed magnitude: 2^-30 s (~0.93 ns).
inline constexpr int kLatencyMinExp2 = -30;
/// Overflow above 2^12 s (4096 s).
inline constexpr int kLatencyMaxExp2 = 12;
/// Linear sub-buckets per octave; relative error <= 1/(2*this).
inline constexpr std::size_t kLatencySubBuckets = 32;
inline constexpr std::size_t kLatencyOctaves =
    static_cast<std::size_t>(kLatencyMaxExp2 - kLatencyMinExp2);
/// Underflow + log-linear body + overflow.
inline constexpr std::size_t kLatencyBucketCount =
    2 + kLatencyOctaves * kLatencySubBuckets;

/// Bucket index for a sample in seconds. Total order: NaN/negative/
/// zero/underflow -> 0, overflow -> kLatencyBucketCount - 1.
[[nodiscard]] std::size_t latency_bucket_index(double seconds);

/// Inclusive lower bound of a bucket (0 for the underflow bucket).
[[nodiscard]] double latency_bucket_lower(std::size_t index);

/// Exclusive upper bound of a bucket (+inf for the overflow bucket).
[[nodiscard]] double latency_bucket_upper(std::size_t index);

/// Representative value of a bucket: the midpoint, except the overflow
/// bucket which reports its (finite) lower bound.
[[nodiscard]] double latency_bucket_mid(std::size_t index);

/// Plain (non-atomic) histogram value: what metrics_snapshot() hands
/// out and what the rolling window stores. The bucket vector stays
/// empty until the first sample so a MetricRecord for a non-latency
/// metric costs nothing.
class LatencyHistogram {
 public:
  /// Record one sample in seconds (NaN counts as underflow).
  void record(double seconds);

  /// Element-wise merge: exact, associative, commutative.
  void merge(const LatencyHistogram& other);

  /// Delta vs an older cumulative snapshot of the same series: counts
  /// are subtracted per bucket (clamped at zero, so a metrics_reset in
  /// between degrades to "no delta" instead of wrapping). min/max of
  /// the delta are re-derived from the outermost non-empty buckets and
  /// therefore bucket-resolution approximations.
  [[nodiscard]] LatencyHistogram since(const LatencyHistogram& older) const;

  /// Value at quantile q in [0, 1] (q clamped): midpoint of the bucket
  /// holding rank ceil(q * count), clamped to [min(), max()]. Returns
  /// 0 when empty.
  [[nodiscard]] double quantile(double q) const;

  [[nodiscard]] bool empty() const { return count_ == 0; }
  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  /// Empty until the first sample, kLatencyBucketCount entries after.
  [[nodiscard]] const std::vector<std::uint64_t>& buckets() const {
    return buckets_;
  }

  /// Bulk-assembly from pre-bucketed counts (registry snapshot path):
  /// adds n samples to one bucket, bumping count() accordingly.
  void add_bucket(std::size_t index, std::uint64_t n);
  /// Companion of add_bucket: install the merged sum/min/max scalars.
  void set_stats(double sum, double min, double max);

 private:
  void ensure_buckets();

  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;  ///< valid only when count_ > 0
  double max_ = 0.0;
};

}  // namespace zh::obs
