// Minimal embedded HTTP server for live scrapes: /metrics (Prometheus
// text exposition v0.0.4) and /healthz, served from one background
// thread over loopback.
//
// The server owns a RollingWindow: the poll loop snapshots the registry
// every tick_seconds and pushes the result, so scrapes carry both the
// cumulative series and *_rate / *_window views over the trailing
// window. Connections are handled serially (scrapes are rare and the
// exposition is small); the listener binds 127.0.0.1 only -- this is an
// operator port, not a public one. stop() (and the destructor) joins
// the thread, so the object can live on the stack of a zhist command.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>

#include "obs/rolling_window.hpp"

namespace zh::obs {

struct MetricsServerOptions {
  /// TCP port to bind on 127.0.0.1; 0 picks an ephemeral port
  /// (read it back with port()).
  std::uint16_t port = 0;
  /// Window push cadence of the background thread.
  double tick_seconds = 1.0;
  /// Trailing window the *_rate / *_window series cover.
  double window_seconds = 60.0;
  /// Ring capacity handed to the RollingWindow.
  std::size_t window_samples = 128;
};

class MetricsServer {
 public:
  /// Binds and starts the serving thread; throws IoError when the
  /// socket cannot be bound.
  explicit MetricsServer(const MetricsServerOptions& options);
  ~MetricsServer();

  MetricsServer(const MetricsServer&) = delete;
  MetricsServer& operator=(const MetricsServer&) = delete;

  /// Actual bound port (resolves port 0 to the kernel's pick).
  [[nodiscard]] std::uint16_t port() const { return port_; }

  /// One rendered exposition, exactly what /metrics would serve now.
  [[nodiscard]] std::string render();

  /// Stop serving and join the thread; idempotent.
  void stop();

 private:
  void serve_loop();
  void maybe_tick();
  void handle_connection(int fd);

  MetricsServerOptions options_;
  RollingWindow window_;
  std::atomic<bool> stop_{false};
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  double last_tick_ = -1.0;
  std::mutex tick_mu_;  ///< serializes ticker vs render()
  std::thread thread_;
};

}  // namespace zh::obs
