#include "obs/metrics.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <deque>
#include <limits>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "common/error.hpp"

namespace zh::obs {

namespace detail {
std::atomic<bool> g_metrics_enabled{false};
}  // namespace detail

namespace {

// One thread's storage for one metric. deque growth in the owning
// shard never moves existing Slots, so concurrent snapshot readers can
// hold references across a grow (they take the shard mutex anyway; the
// stability matters for the *updating* thread racing a snapshot).
// Per-thread latency buckets, allocated lazily on the first sample for
// that (thread, metric) pair so slots for the other kinds stay small.
// C++20 value-initialized atomics start at zero.
struct LatencyBuckets {
  std::array<std::atomic<std::uint64_t>, kLatencyBucketCount> counts{};
};

struct Slot {
  std::atomic<std::uint64_t> count{0};  ///< counter/gauge value; stat count
  std::atomic<double> sum{0.0};
  std::atomic<double> min{std::numeric_limits<double>::infinity()};
  std::atomic<double> max{-std::numeric_limits<double>::infinity()};
  /// kGaugeSet: global set-sequence ticket of the last set on this
  /// thread; 0 means never set. The merge keeps the highest ticket.
  std::atomic<std::uint64_t> seq{0};
  /// kLatency only. Written by the owning thread under the shard mutex
  /// (once), read by snapshot/reset under the same mutex; the owner's
  /// later unlocked reads race nothing (same thread wrote it).
  std::unique_ptr<LatencyBuckets> latency;
};

// Plain merged totals (retired-shard accumulator and snapshot rows).
struct Totals {
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
  std::uint64_t seq = 0;                ///< kGaugeSet merge ticket
  std::vector<std::uint64_t> latency;   ///< kLatency bucket sums
};

// Ticket dispenser for gauge_set ordering across threads.
std::atomic<std::uint64_t> g_gauge_set_seq{0};

struct Shard;

struct Meta {
  std::string name;
  MetricKind kind;
};

// Leaked on purpose: rank/pool threads may exit (and retire their
// shards) during static destruction.
struct MetricsRegistry {
  std::mutex mu;  // guards ids/metas/shards/retired
  std::unordered_map<std::string, MetricId> ids;
  std::vector<Meta> metas;
  std::vector<Shard*> shards;
  std::vector<Totals> retired;
};

MetricsRegistry& registry() {
  // zh-lint-ignore(naked-new): leaky singleton; must survive detached threads at exit
  static MetricsRegistry* r = new MetricsRegistry();
  return *r;
}

void merge_slot(const Meta& meta, const Slot& slot, Totals& into) {
  const std::uint64_t c = slot.count.load(std::memory_order_relaxed);
  switch (meta.kind) {
    case MetricKind::kCounter:
      into.count += c;
      break;
    case MetricKind::kGauge:
      if (c > into.count) into.count = c;
      break;
    case MetricKind::kGaugeSet: {
      // Acquire pairs with the release in gauge_set(): observing the
      // ticket implies observing the value stored just before it.
      const std::uint64_t sq = slot.seq.load(std::memory_order_acquire);
      if (sq > into.seq) {
        into.seq = sq;
        into.count = slot.count.load(std::memory_order_relaxed);
      }
      break;
    }
    case MetricKind::kStat: {
      into.count += c;
      into.sum += slot.sum.load(std::memory_order_relaxed);
      const double mn = slot.min.load(std::memory_order_relaxed);
      const double mx = slot.max.load(std::memory_order_relaxed);
      if (mn < into.min) into.min = mn;
      if (mx > into.max) into.max = mx;
      break;
    }
    case MetricKind::kLatency: {
      into.count += c;
      into.sum += slot.sum.load(std::memory_order_relaxed);
      const double mn = slot.min.load(std::memory_order_relaxed);
      const double mx = slot.max.load(std::memory_order_relaxed);
      if (mn < into.min) into.min = mn;
      if (mx > into.max) into.max = mx;
      if (slot.latency != nullptr) {
        if (into.latency.empty()) into.latency.assign(kLatencyBucketCount, 0);
        for (std::size_t i = 0; i < kLatencyBucketCount; ++i) {
          into.latency[i] +=
              slot.latency->counts[i].load(std::memory_order_relaxed);
        }
      }
      break;
    }
  }
}

struct Shard {
  std::mutex mu;  // grow / snapshot / reset; never taken by updates
  std::deque<Slot> slots;

  Shard() {
    MetricsRegistry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    r.shards.push_back(this);
  }

  ~Shard() {
    MetricsRegistry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    if (r.retired.size() < slots.size()) r.retired.resize(slots.size());
    for (std::size_t id = 0; id < slots.size(); ++id) {
      merge_slot(r.metas[id], slots[id], r.retired[id]);
    }
    std::erase(r.shards, this);
  }

  Slot& slot(MetricId id) {
    if (id >= slots.size()) {
      std::lock_guard<std::mutex> lock(mu);
      while (slots.size() <= id) slots.emplace_back();
    }
    return slots[id];
  }
};

Shard& local_shard() {
  thread_local Shard shard;
  return shard;
}

void atomic_add_double(std::atomic<double>& a, double delta) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + delta,
                                  std::memory_order_relaxed)) {
  }
}

void atomic_min_double(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v < cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_max_double(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v > cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

void set_metrics_enabled(bool on) {
  detail::g_metrics_enabled.store(on, std::memory_order_relaxed);
}

MetricId metric_id(const char* name, MetricKind kind) {
  MetricsRegistry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto [it, inserted] = r.ids.emplace(name, 0);
  if (inserted) {
    it->second = static_cast<MetricId>(r.metas.size());
    r.metas.push_back(Meta{name, kind});
    return it->second;
  }
  ZH_REQUIRE(r.metas[it->second].kind == kind,
             "metric '", name, "' re-registered with a different kind");
  return it->second;
}

void counter_add(MetricId id, std::uint64_t delta) {
  local_shard().slot(id).count.fetch_add(delta, std::memory_order_relaxed);
}

void gauge_max(MetricId id, std::uint64_t value) {
  std::atomic<std::uint64_t>& a = local_shard().slot(id).count;
  std::uint64_t cur = a.load(std::memory_order_relaxed);
  while (value > cur &&
         !a.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

void gauge_set(MetricId id, std::uint64_t value) {
  Slot& s = local_shard().slot(id);
  const std::uint64_t ticket =
      g_gauge_set_seq.fetch_add(1, std::memory_order_relaxed) + 1;
  s.count.store(value, std::memory_order_relaxed);
  // Release after the value: a merge that sees this ticket sees the
  // value that came with it.
  s.seq.store(ticket, std::memory_order_release);
}

void stat_record(MetricId id, double sample) {
  Slot& s = local_shard().slot(id);
  s.count.fetch_add(1, std::memory_order_relaxed);
  atomic_add_double(s.sum, sample);
  atomic_min_double(s.min, sample);
  atomic_max_double(s.max, sample);
}

void latency_record(MetricId id, double seconds) {
  Shard& sh = local_shard();
  Slot& s = sh.slot(id);
  if (s.latency == nullptr) {
    // First sample for this (thread, metric): allocate the bucket array
    // under the shard mutex so a concurrent snapshot never races the
    // pointer install. Later samples skip this entirely.
    std::lock_guard<std::mutex> lock(sh.mu);
    s.latency = std::make_unique<LatencyBuckets>();
  }
  const double v = std::isnan(seconds) ? 0.0 : seconds;
  s.latency->counts[latency_bucket_index(seconds)].fetch_add(
      1, std::memory_order_relaxed);
  s.count.fetch_add(1, std::memory_order_relaxed);
  atomic_add_double(s.sum, v);
  atomic_min_double(s.min, v);
  atomic_max_double(s.max, v);
}

std::vector<MetricRecord> metrics_snapshot() {
  MetricsRegistry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  std::vector<Totals> totals(r.metas.size());
  for (std::size_t id = 0; id < r.retired.size(); ++id) {
    totals[id] = r.retired[id];
  }
  for (Shard* shard : r.shards) {
    std::lock_guard<std::mutex> slock(shard->mu);
    const std::size_t n = std::min(shard->slots.size(), totals.size());
    for (std::size_t id = 0; id < n; ++id) {
      merge_slot(r.metas[id], shard->slots[id], totals[id]);
    }
  }
  std::vector<MetricRecord> out(r.metas.size());
  for (std::size_t id = 0; id < r.metas.size(); ++id) {
    MetricRecord& rec = out[id];
    rec.name = r.metas[id].name;
    rec.kind = r.metas[id].kind;
    switch (rec.kind) {
      case MetricKind::kCounter:
      case MetricKind::kGauge:
      case MetricKind::kGaugeSet:
        rec.value = totals[id].count;
        break;
      case MetricKind::kStat:
        rec.count = totals[id].count;
        rec.sum = totals[id].sum;
        rec.min = totals[id].count ? totals[id].min : 0.0;
        rec.max = totals[id].count ? totals[id].max : 0.0;
        rec.value = totals[id].count;
        break;
      case MetricKind::kLatency: {
        rec.count = totals[id].count;
        rec.sum = totals[id].sum;
        rec.min = totals[id].count ? totals[id].min : 0.0;
        rec.max = totals[id].count ? totals[id].max : 0.0;
        rec.value = totals[id].count;
        for (std::size_t i = 0; i < totals[id].latency.size(); ++i) {
          rec.latency.add_bucket(i, totals[id].latency[i]);
        }
        if (!rec.latency.empty()) {
          rec.latency.set_stats(rec.sum, rec.min, rec.max);
        }
        break;
      }
    }
  }
  return out;
}

void metrics_reset() {
  MetricsRegistry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.retired.assign(r.retired.size(), Totals{});
  for (Shard* shard : r.shards) {
    std::lock_guard<std::mutex> slock(shard->mu);
    for (Slot& s : shard->slots) {
      s.count.store(0, std::memory_order_relaxed);
      s.sum.store(0.0, std::memory_order_relaxed);
      s.min.store(std::numeric_limits<double>::infinity(),
                  std::memory_order_relaxed);
      s.max.store(-std::numeric_limits<double>::infinity(),
                  std::memory_order_relaxed);
      s.seq.store(0, std::memory_order_relaxed);
      if (s.latency != nullptr) {
        for (std::atomic<std::uint64_t>& b : s.latency->counts) {
          b.store(0, std::memory_order_relaxed);
        }
      }
    }
  }
}

}  // namespace zh::obs
