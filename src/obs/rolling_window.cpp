#include "obs/rolling_window.hpp"

#include <utility>

#include "common/error.hpp"

namespace zh::obs {

RollingWindow::RollingWindow(double max_window_seconds,
                             std::size_t max_samples)
    : max_window_seconds_(max_window_seconds), max_samples_(max_samples) {
  ZH_REQUIRE(max_window_seconds > 0.0, "rolling window span must be > 0");
  ZH_REQUIRE(max_samples >= 2, "rolling window needs >= 2 samples");
}

void RollingWindow::push(double now_seconds,
                         std::vector<MetricRecord> snapshot) {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.push_back(Sample{now_seconds, std::move(snapshot)});
  while (ring_.size() > max_samples_ ||
         (!ring_.empty() &&
          ring_.front().t < now_seconds - max_window_seconds_)) {
    ring_.pop_front();
  }
}

std::size_t RollingWindow::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

const RollingWindow::Sample* RollingWindow::baseline_locked(
    double window_seconds, double now) const {
  if (ring_.size() < 2) return nullptr;
  const double cutoff = now - window_seconds;
  // Newest sample at or before the cutoff; the oldest one while history
  // is still shorter than the window.
  const Sample* best = &ring_.front();
  for (const Sample& s : ring_) {
    if (s.t <= cutoff) best = &s;
  }
  // The baseline must be strictly older than the newest sample.
  if (best == &ring_.back()) best = &ring_.front();
  return best != &ring_.back() ? best : nullptr;
}

const MetricRecord* RollingWindow::find(
    const std::vector<MetricRecord>& records, const std::string& name) {
  for (const MetricRecord& r : records) {
    if (r.name == name) return &r;
  }
  return nullptr;
}

WindowRate RollingWindow::rate(const std::string& name,
                               double window_seconds, double now) const {
  std::lock_guard<std::mutex> lock(mu_);
  WindowRate out;
  const Sample* base = baseline_locked(window_seconds, now);
  if (base == nullptr) return out;
  const Sample& newest = ring_.back();
  const MetricRecord* a = find(base->records, name);
  const MetricRecord* b = find(newest.records, name);
  if (b == nullptr) return out;
  const std::uint64_t before = a != nullptr ? a->value : 0;
  out.delta = b->value > before ? b->value - before : 0;
  out.span_seconds = newest.t - base->t;
  if (out.span_seconds > 0.0) {
    out.per_second = static_cast<double>(out.delta) / out.span_seconds;
    out.valid = true;
  }
  return out;
}

LatencyHistogram RollingWindow::latency_delta(const std::string& name,
                                              double window_seconds,
                                              double now) const {
  std::lock_guard<std::mutex> lock(mu_);
  const Sample* base = baseline_locked(window_seconds, now);
  if (base == nullptr) return LatencyHistogram{};
  const MetricRecord* b = find(ring_.back().records, name);
  if (b == nullptr || b->kind != MetricKind::kLatency) {
    return LatencyHistogram{};
  }
  const MetricRecord* a = find(base->records, name);
  if (a == nullptr || a->kind != MetricKind::kLatency) return b->latency;
  return b->latency.since(a->latency);
}

}  // namespace zh::obs
