#include "obs/report.hpp"

#include <charconv>
#include <cinttypes>
#include <fstream>

#include "common/contracts.hpp"
#include "common/error.hpp"
#include "common/memory.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace zh::obs {

namespace {

#if defined(ZH_GIT_SHA)
constexpr const char* kGitSha = ZH_GIT_SHA;
#else
constexpr const char* kGitSha = "unknown";
#endif

void append_number(std::string& out, double v) {
  // to_chars, not snprintf: %g honors LC_NUMERIC, and a comma decimal
  // point would make the emitted report invalid JSON. to_chars formats
  // as %.9g does in the C locale, regardless of the global locale.
  char buf[32];
  const auto [end, ec] =
      std::to_chars(buf, buf + sizeof(buf), v, std::chars_format::general, 9);
  ZH_ASSERT(ec == std::errc(), "double did not fit a 32-byte buffer");
  out.append(buf, end);
}

void append_kv(std::string& out, const char* key, double v, bool& first) {
  if (!first) out += ",";
  first = false;
  out += "\"";
  out += key;
  out += "\":";
  append_number(out, v);
}

const char* kind_name(MetricKind k) {
  switch (k) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kGaugeSet:
      return "gauge_set";
    case MetricKind::kStat:
      return "stat";
    case MetricKind::kLatency:
      return "latency";
  }
  return "unknown";
}

}  // namespace

const char* build_git_sha() { return kGitSha; }

std::string report_json(const RunReport& report) {
  std::string out;
  out.reserve(4096);
  out += "{\"schema\":\"zh-run-report-v1\",\"tool\":\"";
  out += json_escape(report.tool);
  out += "\",\"workload\":\"";
  out += json_escape(report.workload);
  out += "\",\"git_sha\":\"";
  out += json_escape(build_git_sha());
  out += "\",\"peak_rss_bytes\":";
  out += std::to_string(peak_rss_bytes());

  out += ",\"config\":{";
  bool first = true;
  for (const auto& [k, v] : report.config) {
    if (!first) out += ",";
    first = false;
    out += "\"";
    out += json_escape(k);
    out += "\":\"";
    out += json_escape(v);
    out += "\"";
  }
  out += "}";

  if (report.has_times || !report.extra_times.empty()) {
    out += ",\"times_s\":{";
    first = true;
    if (report.has_times) {
      for (std::size_t i = 0; i < StepTimes::kSteps; ++i) {
        char key[8];
        std::snprintf(key, sizeof(key), "step%zu", i);
        append_kv(out, key, report.times.seconds[i], first);
      }
      append_kv(out, "overhead_transfer", report.times.overhead.transfer,
                first);
      append_kv(out, "overhead_merge", report.times.overhead.merge, first);
      append_kv(out, "overhead_output", report.times.overhead.output, first);
      append_kv(out, "overhead_total", report.times.overhead.total(), first);
      append_kv(out, "step_total", report.times.step_total(), first);
      append_kv(out, "end_to_end", report.times.end_to_end(), first);
    }
    for (const auto& [k, v] : report.extra_times) {
      append_kv(out, json_escape(k).c_str(), v, first);
    }
    out += "}";
  }

  if (!report.counters.empty()) {
    out += ",\"counters\":{";
    first = true;
    for (const auto& [k, v] : report.counters) {
      if (!first) out += ",";
      first = false;
      out += "\"";
      out += json_escape(k);
      out += "\":";
      out += std::to_string(v);
    }
    out += "}";
  }

  if (report.include_metrics) {
    out += ",\"metrics\":{";
    first = true;
    for (const MetricRecord& m : metrics_snapshot()) {
      if (!first) out += ",";
      first = false;
      out += "\"";
      out += json_escape(m.name);
      out += "\":{\"kind\":\"";
      out += kind_name(m.kind);
      out += "\"";
      if (m.kind == MetricKind::kStat) {
        out += ",\"count\":";
        out += std::to_string(m.count);
        bool f2 = false;  // append_kv supplies the separating comma
        append_kv(out, "sum", m.sum, f2);
        append_kv(out, "min", m.min, f2);
        append_kv(out, "max", m.max, f2);
      } else if (m.kind == MetricKind::kLatency) {
        out += ",\"count\":";
        out += std::to_string(m.count);
        bool f2 = false;
        append_kv(out, "sum", m.sum, f2);
        append_kv(out, "min", m.min, f2);
        append_kv(out, "max", m.max, f2);
        append_kv(out, "p50", m.latency.quantile(0.50), f2);
        append_kv(out, "p95", m.latency.quantile(0.95), f2);
        append_kv(out, "p99", m.latency.quantile(0.99), f2);
      } else {
        out += ",\"value\":";
        out += std::to_string(m.value);
      }
      out += "}";
    }
    out += "}";
  }

  if (!report.rank_columns.empty() && !report.rank_rows.empty()) {
    out += ",\"ranks\":{\"columns\":[";
    first = true;
    for (const std::string& c : report.rank_columns) {
      if (!first) out += ",";
      first = false;
      out += "\"";
      out += json_escape(c);
      out += "\"";
    }
    out += "],\"rows\":[";
    first = true;
    for (const std::vector<std::uint64_t>& row : report.rank_rows) {
      if (!first) out += ",";
      first = false;
      out += "[";
      bool f2 = true;
      for (std::uint64_t v : row) {
        if (!f2) out += ",";
        f2 = false;
        out += std::to_string(v);
      }
      out += "]";
    }
    out += "]";
    if (!report.rank_states.empty()) {
      out += ",\"states\":[";
      first = true;
      for (const std::string& s : report.rank_states) {
        if (!first) out += ",";
        first = false;
        out += "\"";
        out += json_escape(s);
        out += "\"";
      }
      out += "]";
    }
    out += "}";
  }

  out += "}";
  return out;
}

void write_report_json(const std::string& path, const RunReport& report) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ZH_REQUIRE_IO(out.good(), "cannot open report file for writing: ", path);
  const std::string json = report_json(report);
  out.write(json.data(), static_cast<std::streamsize>(json.size()));
  out.flush();
  ZH_REQUIRE_IO(out.good(), "failed writing report file: ", path);
}

void print_report(std::FILE* out, const RunReport& report) {
  std::fprintf(out, "=== run report: %s (git %s) ===\n", report.tool.c_str(),
               build_git_sha());
  if (!report.workload.empty()) {
    std::fprintf(out, "workload: %s\n", report.workload.c_str());
  }
  for (const auto& [k, v] : report.config) {
    std::fprintf(out, "  config %-24s %s\n", k.c_str(), v.c_str());
  }
  if (report.has_times) {
    for (std::size_t i = 0; i < StepTimes::kSteps; ++i) {
      std::fprintf(out, "  %-52s %9.4f s\n", StepTimes::step_name(i).c_str(),
                   report.times.seconds[i]);
    }
    std::fprintf(out, "  %-52s %9.4f s\n", "Overhead: transfer",
                 report.times.overhead.transfer);
    std::fprintf(out, "  %-52s %9.4f s\n", "Overhead: merge",
                 report.times.overhead.merge);
    std::fprintf(out, "  %-52s %9.4f s\n", "Overhead: output",
                 report.times.overhead.output);
    std::fprintf(out, "  %-52s %9.4f s\n", "Runtimes of steps (total)",
                 report.times.step_total());
    std::fprintf(out, "  %-52s %9.4f s\n", "End-to-end runtime",
                 report.times.end_to_end());
  }
  for (const auto& [k, v] : report.extra_times) {
    std::fprintf(out, "  %-52s %9.4f s\n", k.c_str(), v);
  }
  if (!report.counters.empty()) {
    std::fprintf(out, "counters:\n");
    for (const auto& [k, v] : report.counters) {
      std::fprintf(out, "  %-40s %20" PRIu64 "\n", k.c_str(), v);
    }
  }
  if (report.include_metrics) {
    const std::vector<MetricRecord> metrics = metrics_snapshot();
    if (!metrics.empty()) std::fprintf(out, "metrics:\n");
    for (const MetricRecord& m : metrics) {
      if (m.kind == MetricKind::kStat) {
        std::fprintf(out,
                     "  %-40s n=%" PRIu64 " sum=%.6g min=%.6g max=%.6g\n",
                     m.name.c_str(), m.count, m.sum, m.min, m.max);
      } else if (m.kind == MetricKind::kLatency) {
        std::fprintf(out,
                     "  %-40s n=%" PRIu64
                     " p50=%.6g p95=%.6g p99=%.6g max=%.6g\n",
                     m.name.c_str(), m.count, m.latency.quantile(0.50),
                     m.latency.quantile(0.95), m.latency.quantile(0.99),
                     m.max);
      } else {
        std::fprintf(out, "  %-40s %20" PRIu64 " (%s)\n", m.name.c_str(),
                     m.value, kind_name(m.kind));
      }
    }
  }
  if (!report.rank_columns.empty() && !report.rank_rows.empty()) {
    std::fprintf(out, "per-rank metrics:\n  %-6s", "rank");
    for (const std::string& c : report.rank_columns) {
      std::fprintf(out, " %14s", c.c_str());
    }
    if (!report.rank_states.empty()) std::fprintf(out, "  state");
    std::fprintf(out, "\n");
    for (std::size_t r = 0; r < report.rank_rows.size(); ++r) {
      std::fprintf(out, "  %-6zu", r);
      for (std::uint64_t v : report.rank_rows[r]) {
        std::fprintf(out, " %14" PRIu64, v);
      }
      if (r < report.rank_states.size()) {
        std::fprintf(out, "  %s", report.rank_states[r].c_str());
      }
      std::fprintf(out, "\n");
    }
  }
  std::fprintf(out, "peak RSS: %.1f MiB\n",
               static_cast<double>(peak_rss_bytes()) / (1024.0 * 1024.0));
}

}  // namespace zh::obs
