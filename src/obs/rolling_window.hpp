// Rolling-window aggregator: a ring of timestamped cumulative metric
// snapshots, queried by subtracting an old snapshot from the newest.
//
// Window model. Every tick (the /metrics server's background thread, or
// anything else that calls push()) appends `{t, metrics_snapshot()}`.
// Entries older than `max_window_seconds` -- and beyond `max_samples` --
// fall off the front. A windowed query picks the newest entry no
// younger than `window` seconds as the baseline (falling back to the
// oldest entry while history is still shorter than the window, so early
// scrapes degrade to "since start" instead of reporting nothing):
//   rate(counter)     = (newest - baseline) / (t_newest - t_baseline)
//   window quantiles  = newest.latency.since(baseline.latency)
// Both lean on cumulative series being subtractable: counters are
// monotone u64s and latency histograms subtract per bucket exactly.
// Deltas are clamped at zero so a metrics_reset mid-run degrades to an
// empty window rather than wrapping.
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "obs/latency_histogram.hpp"
#include "obs/metrics.hpp"

namespace zh::obs {

/// Per-second rate of a cumulative counter over a window.
struct WindowRate {
  bool valid = false;        ///< false: no baseline yet (or zero span)
  double per_second = 0.0;
  std::uint64_t delta = 0;   ///< raw increase over the window
  double span_seconds = 0.0; ///< actual baseline..newest span used
};

class RollingWindow {
 public:
  explicit RollingWindow(double max_window_seconds = 120.0,
                         std::size_t max_samples = 128);

  /// Append a cumulative snapshot taken at `now_seconds` (any monotone
  /// clock; callers use Timer/steady_clock) and expire old entries.
  void push(double now_seconds, std::vector<MetricRecord> snapshot);

  /// Number of retained samples (after expiry).
  [[nodiscard]] std::size_t size() const;

  /// Counter/gauge rate of `name` over the trailing `window_seconds`.
  [[nodiscard]] WindowRate rate(const std::string& name,
                                double window_seconds, double now) const;

  /// Windowed latency delta of `name`: newest minus baseline histogram.
  /// Empty when the series is unknown or no samples landed in-window.
  [[nodiscard]] LatencyHistogram latency_delta(const std::string& name,
                                               double window_seconds,
                                               double now) const;

 private:
  struct Sample {
    double t = 0.0;
    std::vector<MetricRecord> records;
  };

  [[nodiscard]] const Sample* baseline_locked(double window_seconds,
                                              double now) const;
  [[nodiscard]] static const MetricRecord* find(
      const std::vector<MetricRecord>& records, const std::string& name);

  mutable std::mutex mu_;
  double max_window_seconds_;
  std::size_t max_samples_;
  std::deque<Sample> ring_;
};

}  // namespace zh::obs
