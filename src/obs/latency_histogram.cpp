#include "obs/latency_histogram.hpp"

#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace zh::obs {

namespace {

const double kLatencyMinValue = std::ldexp(1.0, kLatencyMinExp2);
const double kLatencyMaxValue = std::ldexp(1.0, kLatencyMaxExp2);

}  // namespace

std::size_t latency_bucket_index(double seconds) {
  // The negated comparison also routes NaN into the underflow bucket.
  if (!(seconds >= kLatencyMinValue)) return 0;
  if (seconds >= kLatencyMaxValue) return kLatencyBucketCount - 1;
  int exp = 0;
  const double mantissa = std::frexp(seconds, &exp);  // in [0.5, 1)
  // seconds lives in the octave [2^(exp-1), 2^exp).
  const std::size_t octave =
      static_cast<std::size_t>(exp - 1 - kLatencyMinExp2);
  std::size_t sub = static_cast<std::size_t>(
      (mantissa * 2.0 - 1.0) * static_cast<double>(kLatencySubBuckets));
  if (sub >= kLatencySubBuckets) sub = kLatencySubBuckets - 1;
  return 1 + octave * kLatencySubBuckets + sub;
}

double latency_bucket_lower(std::size_t index) {
  ZH_REQUIRE(index < kLatencyBucketCount, "latency bucket index ", index,
             " out of range");
  if (index == 0) return 0.0;
  if (index == kLatencyBucketCount - 1) return kLatencyMaxValue;
  const std::size_t body = index - 1;
  const std::size_t octave = body / kLatencySubBuckets;
  const std::size_t sub = body % kLatencySubBuckets;
  return std::ldexp(
      1.0 + static_cast<double>(sub) / static_cast<double>(kLatencySubBuckets),
      kLatencyMinExp2 + static_cast<int>(octave));
}

double latency_bucket_upper(std::size_t index) {
  ZH_REQUIRE(index < kLatencyBucketCount, "latency bucket index ", index,
             " out of range");
  if (index == kLatencyBucketCount - 1) {
    return std::numeric_limits<double>::infinity();
  }
  if (index == 0) return kLatencyMinValue;
  return latency_bucket_lower(index + 1);
}

double latency_bucket_mid(std::size_t index) {
  if (index == kLatencyBucketCount - 1) return latency_bucket_lower(index);
  return 0.5 * (latency_bucket_lower(index) + latency_bucket_upper(index));
}

void LatencyHistogram::ensure_buckets() {
  if (buckets_.empty()) buckets_.assign(kLatencyBucketCount, 0);
}

void LatencyHistogram::record(double seconds) {
  ensure_buckets();
  const double v = std::isnan(seconds) ? 0.0 : seconds;
  ++buckets_[latency_bucket_index(seconds)];
  if (count_ == 0) {
    min_ = v;
    max_ = v;
  } else {
    if (v < min_) min_ = v;
    if (v > max_) max_ = v;
  }
  ++count_;
  sum_ += v;
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  if (other.count_ == 0) return;
  ensure_buckets();
  for (std::size_t i = 0; i < kLatencyBucketCount; ++i) {
    buckets_[i] += other.buckets_[i];
  }
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    if (other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

LatencyHistogram LatencyHistogram::since(const LatencyHistogram& older) const {
  LatencyHistogram out;
  if (buckets_.empty()) return out;
  out.ensure_buckets();
  std::size_t first = kLatencyBucketCount;
  std::size_t last = 0;
  for (std::size_t i = 0; i < kLatencyBucketCount; ++i) {
    const std::uint64_t before =
        older.buckets_.empty() ? 0 : older.buckets_[i];
    const std::uint64_t d = buckets_[i] > before ? buckets_[i] - before : 0;
    out.buckets_[i] = d;
    out.count_ += d;
    if (d > 0) {
      if (first == kLatencyBucketCount) first = i;
      last = i;
    }
  }
  if (out.count_ > 0) {
    const double dsum = sum_ - older.sum_;
    out.sum_ = dsum > 0.0 ? dsum : 0.0;
    out.min_ = latency_bucket_lower(first);
    const double upper = latency_bucket_upper(last);
    out.max_ = upper < max_ ? upper : max_;  // overflow upper is +inf
  }
  return out;
}

double LatencyHistogram::quantile(double q) const {
  if (count_ == 0) return 0.0;
  if (!(q > 0.0)) q = 0.0;
  if (q > 1.0) q = 1.0;
  std::uint64_t rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(count_)));
  if (rank == 0) rank = 1;
  if (rank > count_) rank = count_;
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    cumulative += buckets_[i];
    if (cumulative >= rank) {
      double v = latency_bucket_mid(i);
      if (v < min_) v = min_;
      if (v > max_) v = max_;
      return v;
    }
  }
  return max();
}

double LatencyHistogram::min() const { return count_ > 0 ? min_ : 0.0; }

double LatencyHistogram::max() const { return count_ > 0 ? max_ : 0.0; }

void LatencyHistogram::add_bucket(std::size_t index, std::uint64_t n) {
  ZH_REQUIRE(index < kLatencyBucketCount, "latency bucket index ", index,
             " out of range");
  if (n == 0) return;
  ensure_buckets();
  buckets_[index] += n;
  count_ += n;
}

void LatencyHistogram::set_stats(double sum, double min, double max) {
  sum_ = sum;
  min_ = min;
  max_ = max;
}

}  // namespace zh::obs
