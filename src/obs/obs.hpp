// Umbrella header for instrumentation sites: spans (ZH_TRACE_SPAN),
// metrics (ZH_COUNTER_ADD / ZH_GAUGE_MAX / ZH_STAT_RECORD), and run
// reports. All macros compile to no-ops when the ZH_OBS CMake option is
// OFF; with it ON they cost one relaxed atomic load until a run enables
// tracing/metrics at runtime.
#pragma once

#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
