// Umbrella header for instrumentation sites: spans (ZH_TRACE_SPAN),
// metrics (ZH_COUNTER_ADD / ZH_GAUGE_MAX / ZH_GAUGE_SET /
// ZH_STAT_RECORD / ZH_LATENCY_RECORD), run reports, and the live
// serving surface (Prometheus exposition + /metrics HTTP server). All
// macros compile to no-ops when the ZH_OBS CMake option is OFF; with it
// ON they cost one relaxed atomic load until a run enables
// tracing/metrics at runtime.
#pragma once

#include "obs/exposition.hpp"
#include "obs/latency_histogram.hpp"
#include "obs/metrics.hpp"
#include "obs/metrics_server.hpp"
#include "obs/report.hpp"
#include "obs/rolling_window.hpp"
#include "obs/trace.hpp"
