#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <set>

#include "common/error.hpp"
#include "obs/json.hpp"

namespace zh::obs {

namespace detail {
std::atomic<bool> g_trace_enabled{false};
}  // namespace detail

namespace {

using Clock = std::chrono::steady_clock;

// A thread drops events past this point instead of growing without
// bound (a runaway trace of a long run must not OOM the process).
constexpr std::size_t kMaxEventsPerThread = 1u << 20;

struct ThreadTraceBuffer;

// Process-global view of all per-thread buffers. Leaked on purpose so
// threads exiting during static destruction can still retire safely.
struct TraceRegistry {
  std::mutex mu;
  std::vector<ThreadTraceBuffer*> live;
  std::vector<TraceEvent> retired;
  std::uint32_t next_tid = 1;
  std::atomic<std::uint64_t> dropped{0};
  Clock::time_point epoch = Clock::now();
};

TraceRegistry& registry() {
  // zh-lint-ignore(naked-new): leaky singleton; must survive detached threads at exit
  static TraceRegistry* r = new TraceRegistry();
  return *r;
}

struct ThreadTraceBuffer {
  std::mutex mu;  // serializes this thread's appends vs snapshot/clear
  std::vector<TraceEvent> events;
  std::uint32_t tid = 0;

  ThreadTraceBuffer() {
    TraceRegistry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    tid = r.next_tid++;
    r.live.push_back(this);
  }

  ~ThreadTraceBuffer() {
    TraceRegistry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    r.retired.insert(r.retired.end(), events.begin(), events.end());
    std::erase(r.live, this);
  }
};

ThreadTraceBuffer& local_buffer() {
  thread_local ThreadTraceBuffer buffer;
  return buffer;
}

thread_local std::int32_t t_rank = -1;

}  // namespace

void set_trace_enabled(bool on) {
  detail::g_trace_enabled.store(on, std::memory_order_relaxed);
}

void set_thread_rank(std::int32_t r) { t_rank = r; }

std::int32_t thread_rank() { return t_rank; }

std::int64_t now_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                               registry().epoch)
      .count();
}

void record_span(const char* name, const char* cat, std::int64_t ts_us,
                 std::int64_t dur_us) {
  ThreadTraceBuffer& b = local_buffer();
  std::lock_guard<std::mutex> lock(b.mu);
  if (b.events.size() >= kMaxEventsPerThread) {
    registry().dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  b.events.push_back(TraceEvent{name, cat, ts_us, dur_us, b.tid, t_rank});
}

std::vector<TraceEvent> trace_snapshot() {
  TraceRegistry& r = registry();
  std::vector<TraceEvent> out;
  {
    std::lock_guard<std::mutex> lock(r.mu);
    out = r.retired;
    for (ThreadTraceBuffer* b : r.live) {
      std::lock_guard<std::mutex> blk(b->mu);
      out.insert(out.end(), b->events.begin(), b->events.end());
    }
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.ts_us < b.ts_us;
            });
  return out;
}

void trace_clear() {
  TraceRegistry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.retired.clear();
  for (ThreadTraceBuffer* b : r.live) {
    std::lock_guard<std::mutex> blk(b->mu);
    b->events.clear();
  }
  r.dropped.store(0, std::memory_order_relaxed);
}

std::uint64_t trace_dropped() {
  return registry().dropped.load(std::memory_order_relaxed);
}

std::string chrome_trace_json() {
  const std::vector<TraceEvent> events = trace_snapshot();
  std::string out;
  out.reserve(events.size() * 96 + 256);
  out += "{\"traceEvents\":[";
  // Name trace "processes": pid 0 is the host process, pid r+1 is
  // cluster rank r (pid 0 is reserved so rank 0 gets its own lane).
  std::set<std::int32_t> pids;
  for (const TraceEvent& e : events) pids.insert(e.rank < 0 ? 0 : e.rank + 1);
  bool first = true;
  for (std::int32_t pid : pids) {
    if (!first) out += ",";
    first = false;
    char buf[128];
    if (pid == 0) {
      std::snprintf(buf, sizeof(buf),
                    "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,"
                    "\"args\":{\"name\":\"host\"}}");
    } else {
      std::snprintf(buf, sizeof(buf),
                    "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,"
                    "\"args\":{\"name\":\"rank %d\"}}",
                    pid, pid - 1);
    }
    out += buf;
  }
  for (const TraceEvent& e : events) {
    if (!first) out += ",";
    first = false;
    const std::int32_t pid = e.rank < 0 ? 0 : e.rank + 1;
    out += "{\"name\":\"";
    out += json_escape(e.name);
    out += "\",\"cat\":\"";
    out += json_escape(e.cat);
    out += "\",\"ph\":\"X\",\"ts\":";
    out += std::to_string(e.ts_us);
    out += ",\"dur\":";
    out += std::to_string(e.dur_us);
    out += ",\"pid\":";
    out += std::to_string(pid);
    out += ",\"tid\":";
    out += std::to_string(e.tid);
    out += "}";
  }
  out += "],\"displayTimeUnit\":\"ms\",\"otherData\":{\"tool\":\"zonalhist\","
         "\"dropped_events\":";
  out += std::to_string(trace_dropped());
  out += "}}";
  return out;
}

void write_chrome_trace(const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ZH_REQUIRE_IO(out.good(), "cannot open trace file for writing: ", path);
  const std::string json = chrome_trace_json();
  out.write(json.data(), static_cast<std::streamsize>(json.size()));
  out.flush();
  ZH_REQUIRE_IO(out.good(), "failed writing trace file: ", path);
}

}  // namespace zh::obs
