#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <mutex>
#include <set>
#include <unordered_set>

#include "common/error.hpp"
#include "obs/json.hpp"

namespace zh::obs {

namespace detail {
std::atomic<bool> g_trace_enabled{false};
}  // namespace detail

namespace {

using Clock = std::chrono::steady_clock;

// A thread drops events past this point instead of growing without
// bound (a runaway trace of a long run must not OOM the process).
constexpr std::size_t kMaxEventsPerThread = 1u << 20;

struct ThreadTraceBuffer;

// Process-global view of all per-thread buffers. Leaked on purpose so
// threads exiting during static destruction can still retire safely.
struct TraceRegistry {
  std::mutex mu;
  std::vector<ThreadTraceBuffer*> live;
  std::vector<TraceEvent> retired;
  std::uint32_t next_tid = 1;
  std::atomic<std::uint64_t> dropped{0};
  std::atomic<std::uint64_t> next_span_id{1};
  std::atomic<std::uint64_t> next_flow_id{1};
  Clock::time_point epoch = Clock::now();
  // Names/categories of ingested events have no static storage; they
  // are interned here (set nodes are pointer-stable).
  std::set<std::string> name_arena;
  // FNV-1a hashes of frames already ingested; duplicate deliveries of
  // the same flush frame (dup fault plans, retransmits) are dropped so
  // spans are never double-counted.
  std::unordered_set<std::uint64_t> ingested_frames;
  // rank -> how far that rank's clock reads ahead of the master's.
  std::map<std::int32_t, std::int64_t> clock_offset_us;
};

TraceRegistry& registry() {
  // zh-lint-ignore(naked-new): leaky singleton; must survive detached threads at exit
  static TraceRegistry* r = new TraceRegistry();
  return *r;
}

struct ThreadTraceBuffer {
  std::mutex mu;  // serializes this thread's appends vs snapshot/clear
  std::vector<TraceEvent> events;
  std::uint32_t tid = 0;

  ThreadTraceBuffer() {
    TraceRegistry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    tid = r.next_tid++;
    r.live.push_back(this);
  }

  ~ThreadTraceBuffer() {
    TraceRegistry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    r.retired.insert(r.retired.end(), events.begin(), events.end());
    std::erase(r.live, this);
  }
};

ThreadTraceBuffer& local_buffer() {
  thread_local ThreadTraceBuffer buffer;
  return buffer;
}

thread_local std::int32_t t_rank = -1;

// The calling thread's stack of open Span ids; top is the parent of
// whatever is recorded next on this thread.
thread_local std::vector<std::uint64_t> t_span_stack;

void append_event(ThreadTraceBuffer& b, const TraceEvent& e) {
  std::lock_guard<std::mutex> lock(b.mu);
  if (b.events.size() >= kMaxEventsPerThread) {
    registry().dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  b.events.push_back(e);
}

// ---- zh-trace-frame v1 binary helpers -------------------------------------

constexpr std::uint32_t kFrameMagic = 0x5A485452u;  // "ZHTR"
constexpr std::uint32_t kFrameVersion = 1;

template <typename T>
void put(std::vector<std::byte>& out, T v) {
  static_assert(std::is_trivially_copyable_v<T>);
  const std::size_t at = out.size();
  out.resize(at + sizeof(T));
  std::memcpy(out.data() + at, &v, sizeof(T));
}

void put_str(std::vector<std::byte>& out, const char* s) {
  const std::size_t n = std::strlen(s);
  ZH_REQUIRE_IO(n <= 0xFFFF, "trace event name too long to encode");
  put<std::uint16_t>(out, static_cast<std::uint16_t>(n));
  const std::size_t at = out.size();
  out.resize(at + n);
  std::memcpy(out.data() + at, s, n);
}

struct FrameReader {
  std::span<const std::byte> bytes;
  std::size_t pos = 0;

  template <typename T>
  T get() {
    ZH_REQUIRE_IO(pos + sizeof(T) <= bytes.size(),
                  "truncated trace frame at offset ", pos);
    T v;
    std::memcpy(&v, bytes.data() + pos, sizeof(T));
    pos += sizeof(T);
    return v;
  }

  std::string get_str() {
    const std::uint16_t n = get<std::uint16_t>();
    ZH_REQUIRE_IO(pos + n <= bytes.size(),
                  "truncated trace frame string at offset ", pos);
    std::string s(reinterpret_cast<const char*>(bytes.data() + pos), n);
    pos += n;
    return s;
  }
};

std::uint64_t fnv1a64(std::span<const std::byte> bytes) {
  std::uint64_t h = 1469598103934665603ull;
  for (std::byte b : bytes) {
    h ^= static_cast<std::uint64_t>(b);
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

namespace detail {

std::uint64_t push_span() {
  const std::uint64_t id =
      registry().next_span_id.fetch_add(1, std::memory_order_relaxed);
  t_span_stack.push_back(id);
  return id;
}

void pop_span(const char* name, const char* cat, std::int64_t ts_us,
              std::uint64_t id) {
  // Spans are strictly LIFO per thread (RAII), so the matching id is on
  // top; tolerate a mismatch anyway rather than corrupt the stack.
  if (!t_span_stack.empty() && t_span_stack.back() == id) {
    t_span_stack.pop_back();
  }
  TraceEvent e;
  e.name = name;
  e.cat = cat;
  e.ts_us = ts_us;
  e.dur_us = now_us() - ts_us;
  e.rank = t_rank;
  e.id = id;
  e.parent = t_span_stack.empty() ? 0 : t_span_stack.back();
  ThreadTraceBuffer& b = local_buffer();
  e.tid = b.tid;
  append_event(b, e);
}

}  // namespace detail

void set_trace_enabled(bool on) {
  detail::g_trace_enabled.store(on, std::memory_order_relaxed);
}

void set_thread_rank(std::int32_t r) { t_rank = r; }

std::int32_t thread_rank() { return t_rank; }

std::int64_t now_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                               registry().epoch)
      .count();
}

void record_span(const char* name, const char* cat, std::int64_t ts_us,
                 std::int64_t dur_us) {
  TraceEvent e;
  e.name = name;
  e.cat = cat;
  e.ts_us = ts_us;
  e.dur_us = dur_us;
  e.rank = t_rank;
  e.id = registry().next_span_id.fetch_add(1, std::memory_order_relaxed);
  e.parent = t_span_stack.empty() ? 0 : t_span_stack.back();
  ThreadTraceBuffer& b = local_buffer();
  e.tid = b.tid;
  append_event(b, e);
}

void record_flow(char phase, const char* name, const char* cat,
                 std::uint64_t flow_id, std::int64_t ts_us) {
  TraceEvent e;
  e.name = name;
  e.cat = cat;
  e.ts_us = ts_us;
  e.rank = t_rank;
  e.parent = t_span_stack.empty() ? 0 : t_span_stack.back();
  e.flow_id = flow_id;
  e.phase = phase;
  ThreadTraceBuffer& b = local_buffer();
  e.tid = b.tid;
  append_event(b, e);
}

std::uint64_t next_flow_id() {
  return registry().next_flow_id.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t current_span_id() {
  return t_span_stack.empty() ? 0 : t_span_stack.back();
}

std::vector<TraceEvent> trace_snapshot() {
  TraceRegistry& r = registry();
  std::vector<TraceEvent> out;
  {
    std::lock_guard<std::mutex> lock(r.mu);
    out = r.retired;
    for (ThreadTraceBuffer* b : r.live) {
      std::lock_guard<std::mutex> blk(b->mu);
      out.insert(out.end(), b->events.begin(), b->events.end());
    }
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.ts_us < b.ts_us;
            });
  return out;
}

void trace_clear() {
  TraceRegistry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.retired.clear();
  for (ThreadTraceBuffer* b : r.live) {
    std::lock_guard<std::mutex> blk(b->mu);
    b->events.clear();
  }
  r.dropped.store(0, std::memory_order_relaxed);
  r.ingested_frames.clear();
  r.clock_offset_us.clear();
}

std::uint64_t trace_dropped() {
  return registry().dropped.load(std::memory_order_relaxed);
}

void set_rank_clock_offset_us(std::int32_t rank, std::int64_t offset_us) {
  TraceRegistry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.clock_offset_us[rank] = offset_us;
}

std::int64_t rank_clock_offset_us(std::int32_t rank) {
  TraceRegistry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  const auto it = r.clock_offset_us.find(rank);
  return it == r.clock_offset_us.end() ? 0 : it->second;
}

std::int64_t clock_offset_from_handshake(std::int64_t t0,
                                         std::int64_t t_remote,
                                         std::int64_t t3) {
  // Standard NTP estimate with a symmetric-delay assumption: the remote
  // stamped t_remote midway through a round trip the local clock saw as
  // [t0, t3], so offset = t_remote - (t0 + t3) / 2. Error is bounded by
  // half the round-trip time, which is why callers keep the minimum-RTT
  // sample out of several probes.
  return t_remote - (t0 + t3) / 2;
}

std::vector<TraceEvent> take_thread_events(std::int32_t pin_rank) {
  ThreadTraceBuffer& b = local_buffer();
  std::vector<TraceEvent> out;
  {
    std::lock_guard<std::mutex> lock(b.mu);
    out.swap(b.events);
  }
  // Pin attribution now, while we still know which rank this buffer
  // belonged to: events recorded before set_thread_rank() ran (thread
  // startup, comm plumbing) carry rank -1 and would otherwise be
  // misattributed to whoever ingests the frame later -- after a master
  // takeover that is a different rank entirely.
  for (TraceEvent& e : out) {
    if (e.rank < 0) e.rank = pin_rank;
  }
  return out;
}

std::vector<std::byte> encode_trace_events(std::span<const TraceEvent> events) {
  std::vector<std::byte> out;
  out.reserve(64 + events.size() * 64);
  put<std::uint32_t>(out, kFrameMagic);
  put<std::uint32_t>(out, kFrameVersion);
  put<std::uint64_t>(out, events.size());
  for (const TraceEvent& e : events) {
    put_str(out, e.name);
    put_str(out, e.cat);
    put<std::int64_t>(out, e.ts_us);
    put<std::int64_t>(out, e.dur_us);
    put<std::uint32_t>(out, e.tid);
    put<std::int32_t>(out, e.rank);
    put<std::uint64_t>(out, e.id);
    put<std::uint64_t>(out, e.parent);
    put<std::uint64_t>(out, e.flow_id);
    put<std::uint8_t>(out, static_cast<std::uint8_t>(e.phase));
  }
  return out;
}

void ingest_trace_events(std::span<const std::byte> bytes) {
  FrameReader in{bytes};
  const std::uint32_t magic = in.get<std::uint32_t>();
  ZH_REQUIRE_IO(magic == kFrameMagic, "bad trace frame magic: ", magic);
  const std::uint32_t version = in.get<std::uint32_t>();
  ZH_REQUIRE_IO(version == kFrameVersion,
                "unsupported trace frame version: ", version);
  const std::uint64_t count = in.get<std::uint64_t>();
  if (count == 0) return;

  // Decode fully before touching the registry so a malformed frame
  // never leaves a partial ingest behind.
  std::vector<TraceEvent> decoded;
  decoded.reserve(count);
  std::vector<std::string> names;
  names.reserve(count * 2);
  for (std::uint64_t i = 0; i < count; ++i) {
    names.push_back(in.get_str());
    names.push_back(in.get_str());
    TraceEvent e;  // name/cat repointed at interned storage below
    e.ts_us = in.get<std::int64_t>();
    e.dur_us = in.get<std::int64_t>();
    e.tid = in.get<std::uint32_t>();
    e.rank = in.get<std::int32_t>();
    e.id = in.get<std::uint64_t>();
    e.parent = in.get<std::uint64_t>();
    e.flow_id = in.get<std::uint64_t>();
    e.phase = static_cast<char>(in.get<std::uint8_t>());
    decoded.push_back(e);
  }
  ZH_REQUIRE_IO(in.pos == bytes.size(),
                "trailing bytes after trace frame: ", bytes.size() - in.pos);

  const std::uint64_t frame_hash = fnv1a64(bytes);
  TraceRegistry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  // Timestamps make two distinct non-empty flushes byte-identical only
  // in theory; a repeated hash means a duplicate delivery of the same
  // frame (dup fault, retransmit after a lost ack) and is skipped so
  // spans are not double-counted.
  if (!r.ingested_frames.insert(frame_hash).second) return;
  for (std::size_t i = 0; i < decoded.size(); ++i) {
    TraceEvent e = decoded[i];
    e.name = r.name_arena.insert(names[2 * i]).first->c_str();
    e.cat = r.name_arena.insert(names[2 * i + 1]).first->c_str();
    r.retired.push_back(e);
  }
}

std::string chrome_trace_json() {
  const std::vector<TraceEvent> events = trace_snapshot();
  // Snapshot the offset table once; events stay in rank-local time and
  // are shifted into the master clock domain here at export.
  std::map<std::int32_t, std::int64_t> offsets;
  {
    TraceRegistry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    offsets = r.clock_offset_us;
  }
  const auto adjusted_ts = [&offsets](const TraceEvent& e) {
    std::int64_t ts = e.ts_us;
    const auto it = offsets.find(e.rank);
    if (it != offsets.end()) ts -= it->second;
    // An offset slightly larger than a startup timestamp can push the
    // adjusted value below zero; clamp, since trace consumers (and our
    // validate_obs) treat negative timestamps as corruption.
    return ts < 0 ? 0 : ts;
  };
  std::string out;
  out.reserve(events.size() * 128 + 256);
  out += "{\"traceEvents\":[";
  // Name trace "processes": pid 0 is the host process, pid r+1 is
  // cluster rank r (pid 0 is reserved so rank 0 gets its own lane).
  std::set<std::int32_t> pids;
  for (const TraceEvent& e : events) pids.insert(e.rank < 0 ? 0 : e.rank + 1);
  bool first = true;
  for (std::int32_t pid : pids) {
    if (!first) out += ",";
    first = false;
    char buf[128];
    if (pid == 0) {
      std::snprintf(buf, sizeof(buf),
                    "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,"
                    "\"args\":{\"name\":\"host\"}}");
    } else {
      std::snprintf(buf, sizeof(buf),
                    "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,"
                    "\"args\":{\"name\":\"rank %d\"}}",
                    pid, pid - 1);
    }
    out += buf;
  }
  for (const TraceEvent& e : events) {
    if (!first) out += ",";
    first = false;
    const std::int32_t pid = e.rank < 0 ? 0 : e.rank + 1;
    out += "{\"name\":\"";
    out += json_escape(e.name);
    out += "\",\"cat\":\"";
    out += json_escape(e.cat);
    if (e.phase == 's' || e.phase == 'f') {
      out += "\",\"ph\":\"";
      out += e.phase;
      out += "\",\"id\":";
      out += std::to_string(e.flow_id);
      out += ",\"ts\":";
      out += std::to_string(adjusted_ts(e));
      if (e.phase == 'f') out += ",\"bp\":\"e\"";
    } else {
      out += "\",\"ph\":\"X\",\"ts\":";
      out += std::to_string(adjusted_ts(e));
      out += ",\"dur\":";
      out += std::to_string(e.dur_us);
    }
    out += ",\"pid\":";
    out += std::to_string(pid);
    out += ",\"tid\":";
    out += std::to_string(e.tid);
    if (e.phase == 'X' && e.id != 0) {
      out += ",\"args\":{\"id\":";
      out += std::to_string(e.id);
      out += ",\"parent\":";
      out += std::to_string(e.parent);
      out += "}";
    }
    out += "}";
  }
  out += "],\"displayTimeUnit\":\"ms\",\"otherData\":{\"tool\":\"zonalhist\","
         "\"dropped_events\":";
  out += std::to_string(trace_dropped());
  out += "}}";
  return out;
}

void write_chrome_trace(const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ZH_REQUIRE_IO(out.good(), "cannot open trace file for writing: ", path);
  const std::string json = chrome_trace_json();
  out.write(json.data(), static_cast<std::streamsize>(json.size()));
  out.flush();
  ZH_REQUIRE_IO(out.good(), "failed writing trace file: ", path);
}

}  // namespace zh::obs
