// Scoped trace spans with thread/rank attribution, exported as Chrome
// trace_event JSON (chrome://tracing / Perfetto loadable).
//
// Design goals, in order:
//  1. near-zero cost when disabled: Span's constructor is one relaxed
//     atomic load; the ZH_TRACE_SPAN macro compiles away entirely when
//     the ZH_OBS CMake option is OFF;
//  2. no cross-thread contention when enabled: each thread appends to
//     its own buffer; the only lock taken on the hot path is that
//     thread's private mutex, contended only by a snapshot/clear in
//     flight (rare);
//  3. events survive thread exit: per-thread buffers retire into a
//     process-global list so spans recorded by short-lived cluster rank
//     threads and pool workers still appear in the export.
//
// Timestamps are microseconds on the steady clock relative to a
// process-wide epoch, which is what the trace_event "ts" field wants.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace zh::obs {

namespace detail {
// Storage lives in trace.cpp; exposed so the enabled-check inlines to
// one relaxed load at every instrumentation site.
extern std::atomic<bool> g_trace_enabled;
}  // namespace detail

/// Whether span recording is on. Off by default; flipping it on is what
/// `zhist --trace` and the tests do.
inline bool trace_enabled() {
  return detail::g_trace_enabled.load(std::memory_order_relaxed);
}

/// Turn span recording on/off (process-wide).
void set_trace_enabled(bool on);

/// Attribute spans recorded by the calling thread to cluster rank `r`
/// (-1 = not a rank thread; exported with pid 0). run_cluster tags each
/// rank thread so a trace of a cluster run groups by rank in the viewer.
void set_thread_rank(std::int32_t r);

/// The calling thread's rank attribution (-1 when unset).
[[nodiscard]] std::int32_t thread_rank();

/// Microseconds since the process trace epoch (steady clock).
[[nodiscard]] std::int64_t now_us();

/// One completed span ("X" event in trace_event terms).
struct TraceEvent {
  const char* name = "";  ///< static-storage string (macro call sites)
  const char* cat = "";   ///< taxonomy bucket, e.g. "pipeline", "comm"
  std::int64_t ts_us = 0;
  std::int64_t dur_us = 0;
  std::uint32_t tid = 0;     ///< stable per-thread id (registration order)
  std::int32_t rank = -1;    ///< cluster rank, -1 for the host process
};

/// Record a completed span for the calling thread. Instrumentation
/// normally goes through the Span RAII type / ZH_TRACE_SPAN macro; this
/// is the primitive they bottom out in (and what tests call directly).
void record_span(const char* name, const char* cat, std::int64_t ts_us,
                 std::int64_t dur_us);

/// RAII span: times construction-to-destruction and records it if
/// tracing was enabled at construction. `name` and `cat` must outlive
/// the program (string literals).
class Span {
 public:
  Span(const char* name, const char* cat) : name_(name), cat_(cat) {
    start_us_ = trace_enabled() ? now_us() : kDisabled;
  }
  ~Span() {
    if (start_us_ != kDisabled) {
      record_span(name_, cat_, start_us_, now_us() - start_us_);
    }
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  static constexpr std::int64_t kDisabled = -1;
  const char* name_;
  const char* cat_;
  std::int64_t start_us_;
};

/// Copy out every recorded event (live buffers + retired threads),
/// sorted by start time.
[[nodiscard]] std::vector<TraceEvent> trace_snapshot();

/// Drop all recorded events (live and retired). Does not change the
/// enabled flag.
void trace_clear();

/// Events dropped because a thread hit its buffer cap (export notes
/// this so a truncated trace is never mistaken for a complete one).
[[nodiscard]] std::uint64_t trace_dropped();

/// Serialize the current snapshot as Chrome trace_event JSON.
[[nodiscard]] std::string chrome_trace_json();

/// Write chrome_trace_json() to `path`. Throws IoError when the path is
/// not writable or the write fails.
void write_chrome_trace(const std::string& path);

}  // namespace zh::obs

// Instrumentation macros. When the ZH_OBS CMake option is OFF these
// compile to nothing, so hot loops carry no trace code at all; when ON
// they cost one relaxed load while tracing is disabled at runtime.
#if defined(ZH_ENABLE_OBS)
#define ZH_OBS_CAT2_(a, b) a##b
#define ZH_OBS_CAT_(a, b) ZH_OBS_CAT2_(a, b)
/// Open a scoped span named `name` in category `cat` covering the rest
/// of the enclosing block.
#define ZH_TRACE_SPAN(name, cat) \
  ::zh::obs::Span ZH_OBS_CAT_(zh_obs_span_, __LINE__)(name, cat)
#else
#define ZH_TRACE_SPAN(name, cat) \
  do {                           \
  } while (false)
#endif
