// Scoped trace spans with thread/rank attribution, exported as Chrome
// trace_event JSON (chrome://tracing / Perfetto loadable).
//
// Design goals, in order:
//  1. near-zero cost when disabled: Span's constructor is one relaxed
//     atomic load; the ZH_TRACE_SPAN macro compiles away entirely when
//     the ZH_OBS CMake option is OFF;
//  2. no cross-thread contention when enabled: each thread appends to
//     its own buffer; the only lock taken on the hot path is that
//     thread's private mutex, contended only by a snapshot/clear in
//     flight (rare);
//  3. events survive thread exit: per-thread buffers retire into a
//     process-global list so spans recorded by short-lived cluster rank
//     threads and pool workers still appear in the export.
//
// Causal model (cross-rank tracing): every RAII span gets a process-
// unique id and records the id of the span enclosing it on the same
// thread, so the export carries the call tree, not just intervals. A
// message send records an "s" flow event and stamps a TraceContext into
// the comm frame header; the matching receive records an "f" event with
// the same flow id, so send->recv pairs become edges of a causal graph
// that tools/zh_trace walks for critical-path analysis. Per-rank clock
// offsets (estimated by a startup handshake in run_cluster) are applied
// at export time to map every rank's timestamps into the master's clock
// domain.
//
// Timestamps are microseconds on the steady clock relative to a
// process-wide epoch, which is what the trace_event "ts" field wants.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace zh::obs {

namespace detail {
// Storage lives in trace.cpp; exposed so the enabled-check inlines to
// one relaxed load at every instrumentation site.
extern std::atomic<bool> g_trace_enabled;

/// Open a span on the calling thread: allocates a process-unique id and
/// pushes it on the thread's open-span stack. Returns the id.
[[nodiscard]] std::uint64_t push_span();

/// Close the span opened by the matching push_span: pops the stack and
/// records the completed event (parent = the id now on top).
void pop_span(const char* name, const char* cat, std::int64_t ts_us,
              std::uint64_t id);
}  // namespace detail

/// Whether span recording is on. Off by default; flipping it on is what
/// `zhist --trace` and the tests do.
inline bool trace_enabled() {
  return detail::g_trace_enabled.load(std::memory_order_relaxed);
}

/// Turn span recording on/off (process-wide).
void set_trace_enabled(bool on);

/// Attribute spans recorded by the calling thread to cluster rank `r`
/// (-1 = not a rank thread; exported with pid 0). run_cluster tags each
/// rank thread so a trace of a cluster run groups by rank in the viewer.
void set_thread_rank(std::int32_t r);

/// The calling thread's rank attribution (-1 when unset).
[[nodiscard]] std::int32_t thread_rank();

/// Microseconds since the process trace epoch (steady clock).
[[nodiscard]] std::int64_t now_us();

/// One recorded event. phase 'X' is a completed span; phases 's'/'f'
/// are the send/finish ends of a flow edge (flow_id pairs them up).
struct TraceEvent {
  const char* name = "";  ///< static-storage string (macro call sites)
  const char* cat = "";   ///< taxonomy bucket, e.g. "pipeline", "comm"
  std::int64_t ts_us = 0;
  std::int64_t dur_us = 0;
  std::uint32_t tid = 0;     ///< stable per-thread id (registration order)
  std::int32_t rank = -1;    ///< cluster rank, -1 for the host process
  std::uint64_t id = 0;      ///< span id ('X'); 0 for manual/flow events
  std::uint64_t parent = 0;  ///< enclosing span id on the same thread, or 0
  std::uint64_t flow_id = 0;  ///< flow-edge id ('s'/'f'); 0 otherwise
  char phase = 'X';          ///< 'X' span, 's' flow send, 'f' flow finish
};

/// Compact causal context propagated inside comm message frame headers
/// (cluster/comm.hpp). Trivially copyable and fixed-size so the frame
/// layout is versionable; kTraceContextVersion names the current layout.
/// flow_id == 0 means "no context attached" (tracing was off at send).
struct TraceContext {
  std::uint64_t flow_id = 0;      ///< pairs the "s" event with its "f"
  std::uint64_t parent_span = 0;  ///< sender's innermost open span id
  std::int64_t send_ts_us = 0;    ///< logical send timestamp, sender clock
};
static_assert(sizeof(TraceContext) == 24,
              "TraceContext is a versioned wire layout; bump "
              "kTraceContextVersion when it changes");
inline constexpr std::uint32_t kTraceContextVersion = 1;

/// Record a completed span for the calling thread. Instrumentation
/// normally goes through the Span RAII type / ZH_TRACE_SPAN macro; this
/// is the primitive they bottom out in (and what tests call directly).
/// Manually recorded spans get a fresh id and the calling thread's
/// current open span as parent.
void record_span(const char* name, const char* cat, std::int64_t ts_us,
                 std::int64_t dur_us);

/// Record one end of a flow edge ('s' = send, 'f' = finish/receive) for
/// the calling thread. `name`/`cat` must be string literals.
void record_flow(char phase, const char* name, const char* cat,
                 std::uint64_t flow_id, std::int64_t ts_us);

/// Allocate a process-unique flow id (never 0).
[[nodiscard]] std::uint64_t next_flow_id();

/// The calling thread's innermost open span id (0 when none).
[[nodiscard]] std::uint64_t current_span_id();

/// RAII span: times construction-to-destruction and records it if
/// tracing was enabled at construction. `name` and `cat` must outlive
/// the program (string literals).
class Span {
 public:
  Span(const char* name, const char* cat) : name_(name), cat_(cat) {
    if (trace_enabled()) {
      start_us_ = now_us();
      id_ = detail::push_span();
    } else {
      start_us_ = kDisabled;
    }
  }
  ~Span() {
    if (start_us_ != kDisabled) {
      detail::pop_span(name_, cat_, start_us_, id_);
    }
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  static constexpr std::int64_t kDisabled = -1;
  const char* name_;
  const char* cat_;
  std::int64_t start_us_;
  std::uint64_t id_ = 0;
};

/// Copy out every recorded event (live buffers + retired threads),
/// sorted by start time.
[[nodiscard]] std::vector<TraceEvent> trace_snapshot();

/// Drop all recorded events (live and retired), the rank clock-offset
/// table, and the ingested-frame ledger. Does not change the enabled
/// flag.
void trace_clear();

/// Events dropped because a thread hit its buffer cap (export notes
/// this so a truncated trace is never mistaken for a complete one).
[[nodiscard]] std::uint64_t trace_dropped();

// ---- Per-rank clock model ------------------------------------------------
//
// On a real cluster every rank has its own clock; merging rank-local
// trace buffers into one timeline needs per-rank offsets. run_cluster
// estimates them with an NTP-style handshake at rank startup and stores
// them here; chrome_trace_json() subtracts the rank's offset from every
// event of that rank at export time (the stored events stay in
// rank-local time).

/// Record that rank `r`'s clock reads `offset_us` ahead of the master's
/// (export subtracts it to normalize into the master clock domain).
void set_rank_clock_offset_us(std::int32_t rank, std::int64_t offset_us);

/// The recorded offset for `rank` (0 when never estimated).
[[nodiscard]] std::int64_t rank_clock_offset_us(std::int32_t rank);

/// Pure NTP-style offset estimator: given the requester's local send
/// time `t0`, the responder's reply timestamp `t_remote`, and the
/// requester's local receive time `t3`, returns how far the remote clock
/// reads ahead of the local one (remote ~= local + offset). Exposed so
/// tests can pin the math with synthetic timestamps.
[[nodiscard]] std::int64_t clock_offset_from_handshake(std::int64_t t0,
                                                       std::int64_t t_remote,
                                                       std::int64_t t3);

// ---- Rank-buffer flush / gather -------------------------------------------
//
// Cluster ranks ship their trace buffers to the master inside comm
// messages (one flush per completed partition plus a final one), so the
// master holds a merged timeline even for ranks that die mid-run: a
// dead rank contributes exactly what it flushed. The encode/decode pair
// is a versioned frame ("zh-trace-frame v1") independent of process
// layout.

/// Snapshot AND REMOVE the calling thread's recorded events (its live
/// buffer only; other threads are untouched). Events recorded before
/// the thread had a rank attribution (rank == -1) are pinned to
/// `pin_rank` at flush time, so attribution never depends on who later
/// serializes or ingests the buffer (e.g. the master after takeover).
[[nodiscard]] std::vector<TraceEvent> take_thread_events(
    std::int32_t pin_rank);

/// Serialize events as a self-contained versioned frame (names and
/// categories are embedded; no process-lifetime pointers survive).
[[nodiscard]] std::vector<std::byte> encode_trace_events(
    std::span<const TraceEvent> events);

/// Decode a frame produced by encode_trace_events and append its events
/// to the process registry (they appear in trace_snapshot()/exports).
/// Per-event rank attribution is preserved verbatim -- never re-stamped
/// with the ingesting thread's rank. Throws IoError on a malformed or
/// version-mismatched frame.
void ingest_trace_events(std::span<const std::byte> bytes);

/// Serialize the current snapshot as Chrome trace_event JSON. Span ids
/// ride in each "X" event's args; flow edges export as "s"/"f" events;
/// per-rank clock offsets are applied to timestamps.
[[nodiscard]] std::string chrome_trace_json();

/// Write chrome_trace_json() to `path`. Throws IoError when the path is
/// not writable or the write fails.
void write_chrome_trace(const std::string& path);

}  // namespace zh::obs

// Instrumentation macros. When the ZH_OBS CMake option is OFF these
// compile to nothing, so hot loops carry no trace code at all; when ON
// they cost one relaxed load while tracing is disabled at runtime.
#if defined(ZH_ENABLE_OBS)
#define ZH_OBS_CAT2_(a, b) a##b
#define ZH_OBS_CAT_(a, b) ZH_OBS_CAT2_(a, b)
/// Open a scoped span named `name` in category `cat` covering the rest
/// of the enclosing block.
#define ZH_TRACE_SPAN(name, cat) \
  ::zh::obs::Span ZH_OBS_CAT_(zh_obs_span_, __LINE__)(name, cat)
#else
#define ZH_TRACE_SPAN(name, cat) \
  do {                           \
  } while (false)
#endif
