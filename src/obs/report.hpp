// Machine-readable run reports (schema "zh-run-report-v1").
//
// One JSON schema serves three producers: `zhist --metrics`, the
// cluster master's per-rank table, and bench/bench_util.hpp's
// BENCH_*.json entries -- so every recorded run is self-describing
// (git sha, config, step times, work counters, metrics registry).
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "common/timer.hpp"

namespace zh::obs {

/// Everything one run wants to record. Field groups are optional: an
/// empty rank table or counter list is simply omitted from the JSON.
struct RunReport {
  std::string tool;      ///< e.g. "zhist hist", "bench_table2_steps"
  std::string workload;  ///< free-form description of the input

  /// Ordered configuration key/values (tile size, zones, ranks, ...).
  std::vector<std::pair<std::string, std::string>> config;

  /// Step 0-4 + overhead breakdown; set has_times when populated.
  StepTimes times;
  bool has_times = false;

  /// Additional named timings emitted into "times_s" alongside (or
  /// instead of) the step breakdown -- for benches whose wall times do
  /// not map onto Steps 0-4 (e.g. checkpoint base vs journaled walls).
  /// Keys share the times_s namespace, so zh_perf diffs them like any
  /// step timing; avoid colliding with step0..4/overhead_*/step_total/
  /// end_to_end.
  std::vector<std::pair<std::string, double>> extra_times;

  /// Exact work counters (WorkCounters flattened by the caller, plus
  /// anything run-specific).
  std::vector<std::pair<std::string, std::uint64_t>> counters;

  /// Embed the live metrics registry snapshot (obs/metrics.hpp).
  bool include_metrics = true;

  /// Per-rank table (cluster runs): one row per rank, one entry per
  /// column name; `rank_states` optionally labels each rank's outcome.
  std::vector<std::string> rank_columns;
  std::vector<std::vector<std::uint64_t>> rank_rows;
  std::vector<std::string> rank_states;
};

/// Short git revision the binary was configured from ("unknown" when
/// the build was not in a git checkout).
[[nodiscard]] const char* build_git_sha();

/// Serialize as zh-run-report-v1 JSON.
[[nodiscard]] std::string report_json(const RunReport& report);

/// Write report_json() to `path`; throws IoError when the path is not
/// writable or the write fails.
void write_report_json(const std::string& path, const RunReport& report);

/// Human-readable summary (the `zhist --report` output): Table-2 style
/// step breakdown plus counters, metrics, and the per-rank table.
void print_report(std::FILE* out, const RunReport& report);

}  // namespace zh::obs
