// Minimal JSON support for the observability layer: string escaping for
// the writers and a small validating parser used by the round-trip
// tests and tools/validate_obs. The parser is strict (RFC 8259 subset:
// no comments, no trailing commas), depth-limited like the GeoJSON
// reader, and throws IoError on malformed input.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace zh::obs {

/// Escape `s` for inclusion inside a JSON string literal (quotes not
/// included). Control characters become \u00XX.
[[nodiscard]] std::string json_escape(std::string_view s);

/// Parsed JSON value. Object member order is preserved (handy for
/// stable test assertions); duplicate keys keep the first occurrence on
/// lookup, matching common reader behavior.
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> arr;
  std::vector<std::pair<std::string, JsonValue>> obj;

  [[nodiscard]] bool is_null() const { return type == Type::kNull; }
  [[nodiscard]] bool is_bool() const { return type == Type::kBool; }
  [[nodiscard]] bool is_number() const { return type == Type::kNumber; }
  [[nodiscard]] bool is_string() const { return type == Type::kString; }
  [[nodiscard]] bool is_array() const { return type == Type::kArray; }
  [[nodiscard]] bool is_object() const { return type == Type::kObject; }

  /// First member named `key`, or nullptr (objects only).
  [[nodiscard]] const JsonValue* find(std::string_view key) const;
};

/// Maximum nesting depth accepted by parse_json (same bound as the
/// GeoJSON reader; deeper input is rejected, not recursed into).
inline constexpr std::size_t kJsonMaxDepth = 64;

/// Parse a complete JSON document. Trailing non-whitespace, depth over
/// kJsonMaxDepth, or any syntax error throws IoError.
[[nodiscard]] JsonValue parse_json(std::string_view text);

/// Slurp `path` and parse it. Throws IoError on read failure.
[[nodiscard]] JsonValue parse_json_file(const std::string& path);

}  // namespace zh::obs
