#include "core/zonal_stats_op.hpp"

#include <algorithm>

#include "core/step2_pairing.hpp"
#include "device/thread_pool.hpp"
#include "geom/pip.hpp"
#include "geom/soa.hpp"

namespace zh {

std::vector<ZonalStats> zonal_statistics(Device& device,
                                         const DemRaster& raster,
                                         const PolygonSet& polygons,
                                         std::int64_t tile_size) {
  ZH_REQUIRE(tile_size >= 1, "tile size must be positive");
  const TilingScheme tiling(raster.rows(), raster.cols(), tile_size);
  const std::optional<CellValue> nodata = raster.nodata();
  const std::span<const CellValue> cells = raster.cells();
  const std::int64_t cols = raster.cols();

  // Step 1': per-tile accumulators (tiles x 40 B -- no bins dimension).
  std::vector<StatsAccumulator> tile_stats(tiling.tile_count());
  device.launch(static_cast<std::uint32_t>(tiling.tile_count()),
                [&](const BlockContext& ctx) {
                  const TileId tile = ctx.block_id();
                  const CellWindow w = tiling.tile_window(tile);
                  StatsAccumulator acc;
                  ctx.strided(static_cast<std::size_t>(w.cell_count()),
                              [&](std::size_t p) {
                                const std::int64_t r =
                                    w.row0 +
                                    static_cast<std::int64_t>(p) / w.cols;
                                const std::int64_t c =
                                    w.col0 +
                                    static_cast<std::int64_t>(p) % w.cols;
                                const CellValue v = cells
                                    [static_cast<std::size_t>(r * cols + c)];
                                if (nodata && v == *nodata) return;
                                acc.add(v);
                              });
                  tile_stats[tile] = acc;
                });

  // Step 2: identical spatial filter.
  const PairingResult pairing =
      pair_and_group(polygons, tiling, raster.transform());

  std::vector<StatsAccumulator> zone_stats(polygons.size());

  // Step 3': merge inside-tile accumulators per zone.
  device.launch(
      static_cast<std::uint32_t>(pairing.inside.group_count()),
      [&](const BlockContext& ctx) {
        const std::size_t idx = ctx.block_id();
        const PolygonId pid = pairing.inside.pid_v[idx];
        StatsAccumulator acc;
        const std::uint64_t pos = pairing.inside.pos_v[idx];
        for (std::uint64_t i = 0; i < pairing.inside.num_v[idx]; ++i) {
          acc.merge(tile_stats[pairing.inside.tid_v[pos + i]]);
        }
        zone_stats[pid].merge(acc);
      });

  // Step 4': boundary cells through PIP into per-zone accumulators.
  const PolygonSoA soa = PolygonSoA::build(polygons);
  device.launch(
      static_cast<std::uint32_t>(pairing.intersect.group_count()),
      [&](const BlockContext& ctx) {
        const std::size_t idx = ctx.block_id();
        const PolygonId pid = pairing.intersect.pid_v[idx];
        const auto [p_f, p_t] = soa.vertex_range(pid);
        StatsAccumulator acc;
        const std::uint64_t pos = pairing.intersect.pos_v[idx];
        for (std::uint64_t k = 0; k < pairing.intersect.num_v[idx]; ++k) {
          const CellWindow w =
              tiling.tile_window(pairing.intersect.tid_v[pos + k]);
          ctx.strided(
              static_cast<std::size_t>(w.cell_count()),
              [&](std::size_t p) {
                const std::int64_t r =
                    w.row0 + static_cast<std::int64_t>(p) / w.cols;
                const std::int64_t c =
                    w.col0 + static_cast<std::int64_t>(p) % w.cols;
                const GeoPoint center =
                    raster.transform().cell_center(r, c);
                if (!point_in_polygon_soa_raw(soa.x_v().data(),
                                              soa.y_v().data(), p_f, p_t,
                                              center.x, center.y)) {
                  return;
                }
                const CellValue v =
                    cells[static_cast<std::size_t>(r * cols + c)];
                if (nodata && v == *nodata) return;
                acc.add(v);
              });
        }
        zone_stats[pid].merge(acc);
      });

  std::vector<ZonalStats> out(polygons.size());
  for (std::size_t i = 0; i < polygons.size(); ++i) {
    out[i] = zone_stats[i].finalize();
  }
  return out;
}

std::vector<ZonalStats> zonal_statistics_reference(
    const DemRaster& raster, const PolygonSet& polygons) {
  std::vector<ZonalStats> out(polygons.size());
  if (raster.cell_count() == 0) return out;
  const GeoTransform& t = raster.transform();
  const GeoBox raster_ext = raster.extent();
  const std::optional<CellValue> nodata = raster.nodata();

  ThreadPool::global().parallel_for(
      polygons.size(), [&](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) {
          const Polygon& poly = polygons[static_cast<PolygonId>(i)];
          const GeoBox mbr = poly.mbr();
          if (!raster_ext.intersects(mbr)) continue;
          StatsAccumulator acc;
          const std::int64_t r0 =
              std::clamp<std::int64_t>(t.y_to_row(mbr.max_y), 0,
                                       raster.rows() - 1);
          const std::int64_t r1 =
              std::clamp<std::int64_t>(t.y_to_row(mbr.min_y), 0,
                                       raster.rows() - 1);
          const std::int64_t c0 =
              std::clamp<std::int64_t>(t.x_to_col(mbr.min_x), 0,
                                       raster.cols() - 1);
          const std::int64_t c1 =
              std::clamp<std::int64_t>(t.x_to_col(mbr.max_x), 0,
                                       raster.cols() - 1);
          for (std::int64_t r = r0; r <= r1; ++r) {
            for (std::int64_t c = c0; c <= c1; ++c) {
              if (!point_in_polygon(poly, t.cell_center(r, c))) continue;
              const CellValue v = raster.at(r, c);
              if (nodata && v == *nodata) continue;
              acc.add(v);
            }
          }
          out[i] = acc.finalize();
        }
      });
  return out;
}

}  // namespace zh
