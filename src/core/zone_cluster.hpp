// Clustering zones by histogram similarity.
//
// The paper's introduction motivates zonal histograms as "feature
// vectors for more sophisticated analysis, such as computing various
// distance measurements which can be used for subsequent clustering".
// This module closes that loop: normalized-L1 distance between zone
// histograms and a deterministic k-medoids clustering (farthest-first
// initialization + alternating assignment/medoid-update), which works
// directly on the distance metric without needing a histogram "mean".
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/histogram.hpp"

namespace zh {

/// Distance between two zone histograms: L1 between the
/// count-distributions. With `normalize` (default) each histogram is
/// scaled to sum 1 first, so zone *size* does not dominate zone *shape*;
/// the result then lies in [0, 2]. Empty histograms are at distance 0
/// from each other and 1 (normalized mass) from any non-empty one.
[[nodiscard]] double histogram_distance(std::span<const BinCount> a,
                                        std::span<const BinCount> b,
                                        bool normalize = true);

struct ZoneClusterConfig {
  std::uint32_t k = 4;
  int max_iterations = 25;
  bool normalize = true;
};

struct ZoneClustering {
  std::vector<std::uint32_t> assignment;  ///< zone -> cluster index
  std::vector<std::uint32_t> medoids;     ///< cluster -> medoid zone id
  double total_cost = 0.0;  ///< sum of distances to assigned medoids
  int iterations = 0;
};

/// Deterministic k-medoids over the zone histograms. Throws if k is 0 or
/// exceeds the zone count.
[[nodiscard]] ZoneClustering cluster_zones(const HistogramSet& histograms,
                                           const ZoneClusterConfig& config);

}  // namespace zh
