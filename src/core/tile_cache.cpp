#include "core/tile_cache.hpp"

#include <bit>
#include <condition_variable>
#include <list>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "cluster/fault.hpp"
#include "common/contracts.hpp"
#include "common/crc32.hpp"
#include "common/error.hpp"
#include "obs/obs.hpp"

namespace zh {

namespace {

std::uint64_t mix_u64(std::uint64_t h, std::uint64_t v) {
  return splitmix64(h ^ v);
}

std::uint64_t mix_double(std::uint64_t h, double v) {
  return mix_u64(h, std::bit_cast<std::uint64_t>(v));
}

std::uint64_t hash_key(const TileHistKey& k) {
  std::uint64_t h = mix_u64(0x54494C4543414348ull, k.raster_fp);
  h = mix_u64(h, (static_cast<std::uint64_t>(k.band) << 32) | k.tile);
  return mix_u64(h, k.binning_fp);
}

struct KeyHash {
  std::size_t operator()(const TileHistKey& k) const {
    return static_cast<std::size_t>(hash_key(k));
  }
};

}  // namespace

std::uint64_t fingerprint_raster(const DemRaster& raster) {
  // Same recipe as the journal manifest's raster fingerprint (io/journal):
  // structural fields mixed with a CRC-32 of the payload. Kept here as an
  // independent implementation because core must not include io.
  std::uint64_t h = mix_u64(0x5A4E414C9E3779B9ull, 1);
  h = mix_u64(h, static_cast<std::uint64_t>(raster.rows()));
  h = mix_u64(h, static_cast<std::uint64_t>(raster.cols()));
  h = mix_double(h, raster.transform().origin_x());
  h = mix_double(h, raster.transform().origin_y());
  h = mix_double(h, raster.transform().cell_w());
  h = mix_double(h, raster.transform().cell_h());
  h = mix_u64(h, raster.nodata().has_value()
                     ? 1ull + static_cast<std::uint64_t>(*raster.nodata())
                     : 0ull);
  const auto cells = raster.cells();
  h = mix_u64(h, crc32(cells.data(), cells.size_bytes()));
  return h;
}

std::uint64_t fingerprint_binning(std::int64_t tile_size, BinIndex bins) {
  std::uint64_t h = mix_u64(0x42494E4E494E4746ull,
                            static_cast<std::uint64_t>(tile_size));
  return mix_u64(h, bins);
}

// ---------------------------------------------------------------------------

struct TileCache::Shard {
  struct Entry {
    TileHistPtr hist;           ///< null while the fill is in flight
    std::size_t bytes = 0;      ///< accounted once ready
    bool filling = false;
    /// Position in `lru` (valid only when ready; front = most recent).
    std::list<TileHistKey>::iterator lru_pos;
  };

  mutable std::mutex mutex;
  std::condition_variable ready_cv;  ///< signaled when any fill publishes
  std::unordered_map<TileHistKey, Entry, KeyHash> entries;
  std::list<TileHistKey> lru;  ///< ready keys, most-recently-used first
  std::size_t bytes = 0;       ///< sum of ready entry bytes

  // Stats (guarded by `mutex`).
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t fills = 0;
  std::uint64_t evictions = 0;

  /// Evict ready LRU entries until `bytes <= budget`. Entries still
  /// filling are not in `lru` and therefore never evicted. The evicted
  /// histograms stay alive through any TileHistPtr already handed out.
  void evict_to_budget(std::size_t budget,
                       std::atomic<std::uint64_t>& total_bytes) {
    while (bytes > budget && !lru.empty()) {
      const TileHistKey victim = lru.back();
      lru.pop_back();
      auto it = entries.find(victim);
      ZH_ASSERT(it != entries.end(), "LRU key without a cache entry");
      bytes -= it->second.bytes;
      total_bytes.fetch_sub(it->second.bytes, std::memory_order_relaxed);
      entries.erase(it);
      ++evictions;
      ZH_COUNTER_ADD("cache.evictions", 1);
    }
  }
};

TileCache::TileCache(TileCacheConfig config)
    : budget_bytes_(config.budget_bytes) {
  std::size_t n = std::bit_ceil(std::max<std::size_t>(config.shards, 1));
  shards_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  shard_mask_ = n - 1;
  shard_budget_ = budget_bytes_ / n;
}

TileCache::~TileCache() = default;

std::size_t TileCache::shard_count() const { return shards_.size(); }

TileCache::Shard& TileCache::shard_for(const TileHistKey& key) const {
  return *shards_[static_cast<std::size_t>(hash_key(key)) & shard_mask_];
}

TileHistPtr TileCache::get_or_fill(
    const TileHistKey& key,
    const std::function<std::vector<BinCount>()>& fill) {
  ZH_REQUIRE(fill != nullptr, "tile cache fill function required");
  Shard& shard = shard_for(key);
  {
    std::unique_lock lock(shard.mutex);
    for (;;) {
      auto it = shard.entries.find(key);
      if (it == shard.entries.end()) break;  // miss: this thread fills
      Shard::Entry& e = it->second;
      if (!e.filling) {
        // Hit: refresh recency and share the published histogram.
        shard.lru.splice(shard.lru.begin(), shard.lru, e.lru_pos);
        ++shard.hits;
        ZH_COUNTER_ADD("cache.hits", 1);
        return e.hist;
      }
      // In-flight fill for the same key: block-and-share. Wake on any
      // publish/abort in this shard and re-check; if the filler failed
      // and erased the entry, the find() above misses and we take over.
      shard.ready_cv.wait(lock);
    }
    // Miss: claim the key with an in-flight guard; the fill itself runs
    // outside the lock.
    shard.entries.emplace(key, Shard::Entry{.hist = nullptr,
                                            .bytes = 0,
                                            .filling = true,
                                            .lru_pos = shard.lru.end()});
    ++shard.misses;
    ZH_COUNTER_ADD("cache.misses", 1);
  }

  TileHistPtr hist;
  try {
    ZH_TRACE_SPAN("cache.fill", "query");
    hist = std::make_shared<const std::vector<BinCount>>(fill());
  } catch (...) {
    // Abort the claim so a blocked waiter (or a later caller) retries.
    {
      std::lock_guard lock(shard.mutex);
      shard.entries.erase(key);
    }
    shard.ready_cv.notify_all();
    throw;
  }

  const std::size_t entry_bytes =
      hist->size() * sizeof(BinCount) + sizeof(Shard::Entry);
  {
    std::lock_guard lock(shard.mutex);
    auto it = shard.entries.find(key);
    ZH_ASSERT(it != shard.entries.end() && it->second.filling,
              "in-flight cache entry vanished during fill");
    Shard::Entry& e = it->second;
    e.hist = hist;
    e.bytes = entry_bytes;
    e.filling = false;
    shard.lru.push_front(key);
    e.lru_pos = shard.lru.begin();
    shard.bytes += entry_bytes;
    total_bytes_.fetch_add(entry_bytes, std::memory_order_relaxed);
    ++shard.fills;
    ZH_COUNTER_ADD("cache.fills", 1);
    shard.evict_to_budget(shard_budget_, total_bytes_);
    // Level gauge, not high-water mark: evictions shrink the cache and
    // the exposed series must follow it down.
    ZH_GAUGE_SET("cache.bytes",
                 total_bytes_.load(std::memory_order_relaxed));
  }
  shard.ready_cv.notify_all();
  return hist;
}

TileCacheStats TileCache::stats() const {
  TileCacheStats s;
  for (const auto& shard : shards_) {
    std::lock_guard lock(shard->mutex);
    s.hits += shard->hits;
    s.misses += shard->misses;
    s.fills += shard->fills;
    s.evictions += shard->evictions;
    s.bytes += shard->bytes;
  }
  return s;
}

void TileCache::clear() {
  for (const auto& shard : shards_) {
    std::lock_guard lock(shard->mutex);
    // Ready entries drop; in-flight fills keep their claimed entry so
    // the single-fill invariant holds across a clear().
    for (auto it = shard->entries.begin(); it != shard->entries.end();) {
      if (it->second.filling) {
        ++it;
      } else {
        shard->bytes -= it->second.bytes;
        total_bytes_.fetch_sub(it->second.bytes, std::memory_order_relaxed);
        shard->lru.erase(it->second.lru_pos);
        it = shard->entries.erase(it);
      }
    }
    ZH_ASSERT(shard->lru.empty() && shard->bytes == 0,
              "LRU/bytes accounting out of sync after clear");
  }
}

}  // namespace zh
