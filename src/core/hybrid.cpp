#include "core/hybrid.hpp"

#include <algorithm>
#include <thread>

#include "core/perf_model.hpp"
#include "core/step1_tile_hist.hpp"
#include "obs/obs.hpp"
#include "core/step2_pairing.hpp"
#include "core/step3_aggregate.hpp"
#include "core/step4_refine.hpp"

namespace zh {

namespace {

/// Split the intersect groups at a cumulative-cost point: groups
/// [0, split) go to the primary device, the rest to the secondary.
/// Group-granular (a polygon's row is owned by exactly one device, so
/// the non-atomic Fig.-5 kernel stays valid on both sides).
std::size_t split_point(const PolygonTileGroups& groups,
                        const PolygonSoA& soa, const TilingScheme& tiling,
                        double fraction) {
  std::vector<double> cost(groups.group_count(), 0.0);
  double total = 0.0;
  for (std::size_t g = 0; g < groups.group_count(); ++g) {
    const auto [p_f, p_t] = soa.vertex_range(groups.pid_v[g]);
    double cells = 0.0;
    for (std::uint64_t k = 0; k < groups.num_v[g]; ++k) {
      cells += static_cast<double>(
          tiling.tile_window(groups.tid_v[groups.pos_v[g] + k])
              .cell_count());
    }
    cost[g] = cells * static_cast<double>(p_t - p_f);
    total += cost[g];
  }
  const double target = total * std::clamp(fraction, 0.0, 1.0);
  double acc = 0.0;
  std::size_t split = 0;
  while (split < cost.size() && acc + cost[split] <= target) {
    acc += cost[split];
    ++split;
  }
  return split;
}

/// The dispatch arrays for a contiguous subrange of groups (offsets
/// rebased so tid_v stays shared-shaped).
PolygonTileGroups slice_groups(const PolygonTileGroups& g,
                               std::size_t begin, std::size_t end) {
  PolygonTileGroups out;
  if (begin >= end) return out;
  const std::uint64_t base = g.pos_v[begin];
  out.pid_v.assign(g.pid_v.begin() + begin, g.pid_v.begin() + end);
  out.num_v.assign(g.num_v.begin() + begin, g.num_v.begin() + end);
  out.pos_v.resize(end - begin);
  for (std::size_t i = 0; i < out.pos_v.size(); ++i) {
    out.pos_v[i] = g.pos_v[begin + i] - base;
  }
  const std::uint32_t tid_end =
      end < g.group_count() ? g.pos_v[end]
                            : static_cast<std::uint32_t>(g.tid_v.size());
  out.tid_v.assign(g.tid_v.begin() + base, g.tid_v.begin() + tid_end);
  return out;
}

}  // namespace

HybridResult run_hybrid(Device& primary, Device& secondary,
                        const DemRaster& raster,
                        const PolygonSet& polygons,
                        const HybridConfig& config) {
  const ZonalConfig& zc = config.zonal;
  ZH_REQUIRE(zc.tile_size >= 1, "tile size must be positive");
  ZH_REQUIRE(zc.bins >= 1, "bin count must be positive");
  ZH_TRACE_SPAN("hybrid.run", "pipeline");

  HybridResult result;
  result.per_polygon = HistogramSet(polygons.size(), zc.bins);
  result.work.cells_total = static_cast<std::uint64_t>(raster.cell_count());
  result.work.polygon_vertices = polygons.vertex_count();

  const TilingScheme tiling(raster.rows(), raster.cols(), zc.tile_size);
  result.work.tiles_total = tiling.tile_count();
  const PolygonSoA soa = PolygonSoA::build(polygons);
  Timer timer;

  // Steps 1-3 on the primary device, exactly as in ZonalPipeline.
  ZonalWorkspace ws;
  timer.reset();
  tile_histograms_into(primary, raster, tiling, zc.bins, zc.count_mode,
                       ws.tile_hist, zc.cell_order);
  result.times.seconds[1] = timer.seconds();

  timer.reset();
  const PairingResult pairing =
      pair_and_group(polygons, tiling, raster.transform());
  result.times.seconds[2] = timer.seconds();
  result.work.candidate_pairs = pairing.candidate_pairs;
  result.work.pairs_inside = pairing.inside.pair_count();
  result.work.pairs_intersect = pairing.intersect.pair_count();

  timer.reset();
  aggregate_inside_tiles(primary, pairing.inside, ws.tile_hist,
                         result.per_polygon);
  result.times.seconds[3] = timer.seconds();
  result.work.aggregate_bin_adds =
      static_cast<std::uint64_t>(pairing.inside.pair_count()) * zc.bins;

  // Step 4: split by modeled device speeds unless a fraction is forced.
  double fraction = config.primary_fraction;
  if (fraction < 0.0) {
    const double sp =
        PerfModel::device_step_scale(primary.profile(), 4);
    const double ss =
        PerfModel::device_step_scale(secondary.profile(), 4);
    fraction = sp / (sp + ss);
  }
  result.primary_fraction = std::clamp(fraction, 0.0, 1.0);
  const std::size_t split =
      split_point(pairing.intersect, soa, tiling, result.primary_fraction);
  const PolygonTileGroups head = slice_groups(pairing.intersect, 0, split);
  const PolygonTileGroups tail = slice_groups(
      pairing.intersect, split, pairing.intersect.group_count());

  // Each device refines into its own histogram set; a polygon's groups
  // live entirely on one side, so no cross-device row races exist and
  // the merge is a plain add.
  HistogramSet primary_hist(polygons.size(), zc.bins);
  HistogramSet secondary_hist(polygons.size(), zc.bins);
  RefineCounters rc_primary;
  RefineCounters rc_secondary;
  timer.reset();
  {
    // The secondary device runs on its own thread, concurrently with
    // the primary (CP.25: joined before use of the results).
    Timer secondary_timer;
    double secondary_s = 0.0;
    std::thread secondary_thread([&] {
      ZH_TRACE_SPAN("hybrid.refine_secondary", "pipeline");
      rc_secondary = refine_boundary_tiles(
          secondary, tail, soa, raster, tiling, secondary_hist,
          zc.refine_granularity, zc.refine_strategy);
      secondary_s = secondary_timer.seconds();
    });
    Timer primary_timer;
    {
      ZH_TRACE_SPAN("hybrid.refine_primary", "pipeline");
      rc_primary = refine_boundary_tiles(
          primary, head, soa, raster, tiling, primary_hist,
          zc.refine_granularity, zc.refine_strategy);
    }
    result.primary_seconds = primary_timer.seconds();
    secondary_thread.join();
    result.secondary_seconds = secondary_s;
  }
  result.times.seconds[4] = timer.seconds();

  Timer merge_timer;
  result.per_polygon.add(primary_hist);
  result.per_polygon.add(secondary_hist);
  result.times.overhead.merge = merge_timer.seconds();
  result.work.pip_cell_tests =
      rc_primary.cell_tests + rc_secondary.cell_tests;
  result.work.pip_edge_tests =
      rc_primary.edge_tests + rc_secondary.edge_tests;
  result.work.pip_rows_scanned =
      rc_primary.rows_scanned + rc_secondary.rows_scanned;
  result.work.pip_run_cells =
      rc_primary.run_cells + rc_secondary.run_cells;
  result.work.cells_in_polygons = result.per_polygon.total();
  return result;
}

}  // namespace zh
