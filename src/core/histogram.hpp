// Histogram containers and derived zonal statistics.
//
// Both per-tile histograms (Step 1 output) and per-polygon histograms
// (the final product) are dense group x bins count matrices, exactly the
// his_d_raster / his_d_polygon arrays of the paper's kernels. 5000 bins
// (elevations < 5000 m) is the paper's CONUS setting.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/contracts.hpp"
#include "common/error.hpp"
#include "common/memory.hpp"
#include "common/types.hpp"

namespace zh {

/// Map a cell value to its histogram bin: values >= bins fold into the
/// top bin (the paper's "elevations < 5000 m" convention keeps the fold
/// rare but it must stay well-defined). Single source of truth for every
/// binning site -- Step 1, Step 4, baselines, lazy and quadtree paths.
[[nodiscard]] constexpr BinIndex bin_index(CellValue v, BinIndex bins) {
  return v < bins ? static_cast<BinIndex>(v) : bins - 1;
}

/// bin_index that also counts folded (out-of-range) values into
/// `clamped`, weighted by `weight` cells (quadtree leaves bin uniform
/// blocks at once). Callers flush the tally via note_values_clamped so
/// silent folding becomes the histogram.values_clamped metric.
[[nodiscard]] inline BinIndex bin_index(CellValue v, BinIndex bins,
                                        std::uint64_t& clamped,
                                        std::uint64_t weight = 1) {
  if (v >= bins) clamped += weight;
  return bin_index(v, bins);
}

/// Report `n` clamped values to the histogram.values_clamped obs
/// counter (no-op when n == 0 or metrics are disabled).
void note_values_clamped(std::uint64_t n);

class HistogramSet {
 public:
  HistogramSet() = default;
  HistogramSet(std::size_t groups, BinIndex bins)
      : groups_(groups), bins_(bins) {
    ZH_REQUIRE(bins > 0, "histograms need at least one bin");
    const std::size_t n = groups * static_cast<std::size_t>(bins);
    // Reserve first and hint huge pages before the zero-fill touches the
    // pages: CONUS-scale per-tile tables run to gigabytes and 4 KiB
    // faulting them is slow on virtualized hosts.
    counts_.reserve(n);
    if (n * sizeof(BinCount) >= kHugePageHintBytes) {
      hint_huge_pages(counts_.data(), n * sizeof(BinCount));
    }
    counts_.assign(n, 0);
  }

  /// Reshape to groups x bins and zero all counts, reusing the existing
  /// allocation when capacity allows. Reusing one HistogramSet across
  /// pipeline runs avoids re-faulting multi-GB tables (see the
  /// ZonalWorkspace note in core/pipeline.hpp).
  void reset(std::size_t groups, BinIndex bins) {
    ZH_REQUIRE(bins > 0, "histograms need at least one bin");
    groups_ = groups;
    bins_ = bins;
    const std::size_t n = groups * static_cast<std::size_t>(bins);
    ZH_ASSERT(groups == 0 || n / groups == bins,
              "histogram table size overflows size_t: ", groups,
              " groups x ", bins, " bins");
    if (counts_.capacity() < n) {
      counts_.reserve(n);
      if (n * sizeof(BinCount) >= kHugePageHintBytes) {
        hint_huge_pages(counts_.data(), n * sizeof(BinCount));
      }
    }
    counts_.assign(n, 0);
  }

  [[nodiscard]] std::size_t groups() const { return groups_; }
  [[nodiscard]] BinIndex bins() const { return bins_; }
  [[nodiscard]] bool empty() const { return counts_.empty(); }

  /// One group's bins as a contiguous span (group*bins layout, matching
  /// the his_d_*[group*hist_size + bin] indexing of the kernels).
  [[nodiscard]] std::span<BinCount> of(std::size_t group) {
    ZH_REQUIRE(group < groups_, "histogram group out of range");
    return {counts_.data() + group * bins_, bins_};
  }
  [[nodiscard]] std::span<const BinCount> of(std::size_t group) const {
    ZH_REQUIRE(group < groups_, "histogram group out of range");
    return {counts_.data() + group * bins_, bins_};
  }

  [[nodiscard]] std::span<BinCount> flat() { return counts_; }
  [[nodiscard]] std::span<const BinCount> flat() const { return counts_; }

  /// Count sum of one group (== cells attributed to that zone/tile).
  [[nodiscard]] BinCount64 group_total(std::size_t group) const {
    BinCount64 t = 0;
    for (const BinCount c : of(group)) t += c;
    return t;
  }

  /// Count sum over all groups.
  [[nodiscard]] BinCount64 total() const {
    BinCount64 t = 0;
    for (const BinCount c : counts_) t += c;
    return t;
  }

  /// Element-wise accumulate (the master-side cluster merge).
  void add(const HistogramSet& other) {
    ZH_REQUIRE(other.groups_ == groups_ && other.bins_ == bins_,
               "histogram shape mismatch in add");
    for (std::size_t i = 0; i < counts_.size(); ++i) {
      counts_[i] += other.counts_[i];
    }
  }

  bool operator==(const HistogramSet&) const = default;

 private:
  std::size_t groups_ = 0;
  BinIndex bins_ = 0;
  std::vector<BinCount> counts_;
};

/// The classic zonal-statistics row (min/max/mean/std/count), derivable
/// from a zone histogram -- the paper frames Zonal Histogramming as the
/// generalization of this traditional GIS table.
struct ZonalStats {
  BinCount64 count = 0;
  BinIndex min = 0;       ///< lowest non-empty bin (0 if count == 0)
  BinIndex max = 0;       ///< highest non-empty bin
  double mean = 0.0;
  double stddev = 0.0;    ///< population standard deviation
};

/// Compute ZonalStats from one histogram, interpreting bin index as the
/// cell value.
[[nodiscard]] ZonalStats stats_from_histogram(std::span<const BinCount> h);

/// L1 distance between two zone histograms -- the distance-measure use
/// case the paper's introduction motivates (histograms as feature
/// vectors for clustering).
[[nodiscard]] std::uint64_t histogram_l1_distance(
    std::span<const BinCount> a, std::span<const BinCount> b);

}  // namespace zh
