#include "core/zone_cluster.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "device/thread_pool.hpp"

namespace zh {

double histogram_distance(std::span<const BinCount> a,
                          std::span<const BinCount> b, bool normalize) {
  ZH_REQUIRE(a.size() == b.size(), "histogram length mismatch");
  if (!normalize) {
    return static_cast<double>(histogram_l1_distance(a, b));
  }
  double ta = 0.0;
  double tb = 0.0;
  for (const BinCount v : a) ta += v;
  for (const BinCount v : b) tb += v;
  const double sa = ta > 0.0 ? 1.0 / ta : 0.0;
  const double sb = tb > 0.0 ? 1.0 / tb : 0.0;
  double d = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    d += std::abs(a[i] * sa - b[i] * sb);
  }
  return d;
}

ZoneClustering cluster_zones(const HistogramSet& histograms,
                             const ZoneClusterConfig& config) {
  const std::size_t n = histograms.groups();
  ZH_REQUIRE(config.k >= 1, "need at least one cluster");
  ZH_REQUIRE(config.k <= n, "more clusters than zones");
  const std::uint32_t k = config.k;

  auto dist = [&](std::size_t a, std::size_t b) {
    return histogram_distance(histograms.of(a), histograms.of(b),
                              config.normalize);
  };

  ZoneClustering out;
  out.assignment.assign(n, 0);

  // Farthest-first initialization: medoid 0 is zone 0; each next medoid
  // is the zone farthest from its nearest existing medoid. Deterministic
  // and well-spread.
  out.medoids.push_back(0);
  std::vector<double> nearest(n, std::numeric_limits<double>::infinity());
  std::vector<bool> chosen(n, false);
  chosen[0] = true;
  while (out.medoids.size() < k) {
    const std::uint32_t last = out.medoids.back();
    ThreadPool::global().parallel_for(n, [&](std::size_t b, std::size_t e) {
      for (std::size_t i = b; i < e; ++i) {
        nearest[i] = std::min(nearest[i], dist(i, last));
      }
    });
    // Farthest unchosen zone; ties (e.g. duplicate histograms, where
    // every distance is 0) fall back to the first unchosen zone so the
    // k medoids are always distinct zones.
    std::size_t farthest = n;
    for (std::size_t i = 0; i < n; ++i) {
      if (chosen[i]) continue;
      if (farthest == n || nearest[i] > nearest[farthest]) farthest = i;
    }
    ZH_REQUIRE(farthest < n, "fewer distinct zones than clusters");
    chosen[farthest] = true;
    out.medoids.push_back(static_cast<std::uint32_t>(farthest));
  }

  // Alternate assignment and medoid update until stable.
  for (out.iterations = 0; out.iterations < config.max_iterations;
       ++out.iterations) {
    // Assignment step.
    bool changed = false;
    out.total_cost = 0.0;
    std::vector<double> costs(n, 0.0);
    std::vector<std::uint32_t> next(n, 0);
    ThreadPool::global().parallel_for(n, [&](std::size_t b, std::size_t e) {
      for (std::size_t i = b; i < e; ++i) {
        double best = std::numeric_limits<double>::infinity();
        std::uint32_t best_c = 0;
        for (std::uint32_t c = 0; c < k; ++c) {
          const double d = dist(i, out.medoids[c]);
          if (d < best) {
            best = d;
            best_c = c;
          }
        }
        next[i] = best_c;
        costs[i] = best;
      }
    });
    for (std::size_t i = 0; i < n; ++i) {
      changed |= next[i] != out.assignment[i];
      out.total_cost += costs[i];
    }
    out.assignment = std::move(next);
    if (!changed && out.iterations > 0) break;

    // Medoid update: within each cluster pick the member minimizing the
    // summed distance to the other members.
    bool medoid_moved = false;
    for (std::uint32_t c = 0; c < k; ++c) {
      std::vector<std::size_t> members;
      for (std::size_t i = 0; i < n; ++i) {
        if (out.assignment[i] == c) members.push_back(i);
      }
      if (members.empty()) continue;
      double best_sum = std::numeric_limits<double>::infinity();
      std::size_t best_m = out.medoids[c];
      for (const std::size_t cand : members) {
        double sum = 0.0;
        for (const std::size_t other : members) sum += dist(cand, other);
        if (sum < best_sum) {
          best_sum = sum;
          best_m = cand;
        }
      }
      medoid_moved |= best_m != out.medoids[c];
      out.medoids[c] = static_cast<std::uint32_t>(best_m);
    }
    if (!medoid_moved && !changed) break;
  }
  return out;
}

}  // namespace zh
