// Memory-budgeted, sharded LRU cache of Step-1 per-tile histograms.
//
// Table 2 shows Step 1 -- histogramming raw cells -- dominating the
// end-to-end runtime, yet a tile's histogram depends only on (raster,
// band, tile, binning): it is zone-independent. A serving workload
// (many zonal queries against the same rasters, the Raptor shape) can
// therefore compute each tile histogram once and reuse it across
// queries. TileCache is that reuse layer:
//
//  * Keys are (raster fingerprint, band, tile id, binning fingerprint),
//    so distinct rasters, bands, or binnings never alias.
//  * The key space is hash-sharded; each shard has its own mutex, LRU
//    list and byte account, so concurrent queries contend only when
//    they touch the same shard.
//  * Fills run once under a per-key in-flight guard: the first thread
//    to miss computes the histogram OUTSIDE the shard lock while later
//    arrivals block on the shard's condition variable and share the
//    result (no duplicate Step-1 work, ever).
//  * Eviction is byte-accounted against a configurable budget,
//    strictly LRU within a shard; in-flight fills are never evicted.
//    Entries are handed out as shared_ptr, so an evicted histogram
//    stays alive until the last query using it drops its reference.
//
// Invariants (tested in test_tile_cache.cpp, documented in DESIGN.md §9):
//  I1  At most one fill per key runs at any time.
//  I2  stats().bytes <= budget_bytes after every get_or_fill, unless
//      every resident entry is still filling.
//  I3  hits + misses == get_or_fill calls; fills <= misses (a failed
//      fill is a miss without a fill).
//  I4  A returned histogram is immutable and valid for the caller's
//      lifetime regardless of later evictions.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/types.hpp"
#include "grid/raster.hpp"

namespace zh {

/// Cache key: one Step-1 tile histogram is fully determined by these
/// four coordinates. CountMode and CellOrder are deliberately absent --
/// histograms are order-independent, so both modes produce identical
/// counts and may share entries.
struct TileHistKey {
  std::uint64_t raster_fp = 0;   ///< fingerprint_raster() of the source
  std::uint32_t band = 0;        ///< band index (0 for single-band DEMs)
  TileId tile = 0;               ///< row-major tile id in the tiling
  std::uint64_t binning_fp = 0;  ///< fingerprint_binning(tile_size, bins)

  bool operator==(const TileHistKey&) const = default;
};

/// Content fingerprint of a raster (dims, transform, nodata, CRC-32 of
/// the cells). Mirrors the journal's manifest fingerprint so equal
/// rasters share cache entries across engine instances.
[[nodiscard]] std::uint64_t fingerprint_raster(const DemRaster& raster);

/// Fingerprint of a (tile_size, bins) binning scheme.
[[nodiscard]] std::uint64_t fingerprint_binning(std::int64_t tile_size,
                                                BinIndex bins);

struct TileCacheConfig {
  /// Byte budget across all shards. The per-shard budget is
  /// budget_bytes / shards (shards do not borrow from each other).
  std::size_t budget_bytes = std::size_t{256} << 20;
  /// Shard count; rounded up to a power of two, at least 1.
  std::size_t shards = 8;
};

/// Monotonic cache statistics. `bytes` is the current resident total
/// (ready entries only); the rest are cumulative since construction.
struct TileCacheStats {
  std::uint64_t hits = 0;       ///< served from cache (incl. fill waits)
  std::uint64_t misses = 0;     ///< entry absent; a fill was started
  std::uint64_t fills = 0;      ///< fills completed successfully
  std::uint64_t evictions = 0;  ///< entries evicted for budget
  std::uint64_t bytes = 0;      ///< resident histogram bytes now
};

/// One cached tile histogram: `bins` counts, immutable once published.
using TileHistPtr = std::shared_ptr<const std::vector<BinCount>>;

class TileCache {
 public:
  explicit TileCache(TileCacheConfig config = {});
  ~TileCache();

  TileCache(const TileCache&) = delete;
  TileCache& operator=(const TileCache&) = delete;

  /// Return the histogram for `key`, computing it via `fill` on a miss.
  /// `fill` runs outside the shard lock; concurrent callers for the
  /// same key block until the fill publishes and then share the result.
  /// If `fill` throws, the in-flight entry is removed, one blocked
  /// waiter (if any) retries the fill, and the exception propagates to
  /// the filling caller.
  [[nodiscard]] TileHistPtr get_or_fill(
      const TileHistKey& key,
      const std::function<std::vector<BinCount>()>& fill);

  /// Merged statistics across shards (point-in-time snapshot).
  [[nodiscard]] TileCacheStats stats() const;

  /// Resident bytes right now (ready entries across all shards).
  [[nodiscard]] std::uint64_t bytes() const { return stats().bytes; }

  [[nodiscard]] std::size_t budget_bytes() const { return budget_bytes_; }
  [[nodiscard]] std::size_t shard_count() const;

  /// Drop every ready entry (in-flight fills complete and then publish
  /// into an empty shard; their bytes are accounted normally).
  void clear();

 private:
  struct Shard;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::size_t budget_bytes_;
  std::size_t shard_budget_ = 0;
  std::size_t shard_mask_ = 0;  ///< shards_.size() - 1 (power of two)
  /// Resident bytes across shards, maintained so the cache.bytes gauge
  /// can record the whole-cache peak without locking every shard.
  std::atomic<std::uint64_t> total_bytes_{0};

  Shard& shard_for(const TileHistKey& key) const;
};

}  // namespace zh
