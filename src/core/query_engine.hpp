// Multi-query batch engine over a shared Step-1 tile-histogram cache.
//
// The serving shape (Raptor Zonal Statistics): many zonal queries arrive
// against a small catalog of large rasters. ZonalPipeline pays Step 1 --
// the Table-2 dominant cost -- on every call even though tile histograms
// are zone-independent. QueryEngine registers rasters once (fingerprinted
// for cache keying), then executes each query as:
//
//   Step 2 (pairing) -> Step 1 via TileCache (only tiles demanded by
//   inside pairs; hits skip the cell scan entirely) -> Step 3 on a
//   compact per-demanded-tile table -> Step 4 refinement, unchanged.
//
// Results are bit-identical to ZonalPipeline::run on the same inputs:
// the cache stores exactly the histograms CellAggrKernel would produce
// (same nodata skip, same top-bin clamp), and Steps 3-4 run the same
// kernels on the same pairing.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/pipeline.hpp"
#include "core/tile_cache.hpp"
#include "device/device.hpp"
#include "geom/polygon.hpp"
#include "grid/raster.hpp"

namespace zh {

struct QueryEngineConfig {
  /// Tile edge shared by every query (part of the cache binning key).
  std::int64_t tile_size = 360;
  /// Step-4 defaults applied when a query leaves them unset.
  RefineGranularity refine_granularity = RefineGranularity::kPolygonGroup;
  RefineStrategy refine_strategy = RefineStrategy::kBrute;
  TileCacheConfig cache;
};

/// Index of a registered raster within the engine's catalog.
using RasterHandle = std::size_t;

/// One zonal query: a zone layer joined against a catalog raster under a
/// binning. Queries differing only in zones share every cache entry.
struct ZonalQuery {
  RasterHandle raster = 0;
  const PolygonSet* zones = nullptr;  ///< must outlive run()/run_batch()
  BinIndex bins = 5000;
};

struct QueryResult {
  HistogramSet per_polygon;
  StepTimes times;  ///< seconds[1] = cache fill+assembly wall time
  /// Same accounting as ZonalPipeline, except cells_total counts only
  /// cells actually histogrammed by this query's cache fills -- a fully
  /// warm query reports 0.
  WorkCounters work;
  std::uint64_t cache_hits = 0;    ///< cache hits while running this query
  std::uint64_t cache_misses = 0;  ///< cache misses (fills started)
};

class QueryEngine {
 public:
  QueryEngine(Device& device, QueryEngineConfig config = {});

  /// Register a raster with the catalog. The raster is fingerprinted
  /// once (dims/transform/nodata + payload CRC) so equal content maps
  /// to the same cache entries. The caller keeps ownership; the raster
  /// must outlive the engine.
  RasterHandle add_raster(const DemRaster& raster);

  [[nodiscard]] std::size_t raster_count() const { return rasters_.size(); }

  /// Execute one query through the cached pipeline.
  [[nodiscard]] QueryResult run(const ZonalQuery& query);

  /// Execute a batch in order. Later queries reuse every tile histogram
  /// the earlier ones filled (subject to the cache budget).
  [[nodiscard]] std::vector<QueryResult> run_batch(
      const std::vector<ZonalQuery>& queries);

  [[nodiscard]] TileCacheStats cache_stats() const { return cache_.stats(); }
  [[nodiscard]] const TileCache& cache() const { return cache_; }
  [[nodiscard]] const QueryEngineConfig& config() const { return config_; }

 private:
  struct CatalogEntry {
    const DemRaster* raster = nullptr;
    std::uint64_t fingerprint = 0;
  };

  Device* device_;
  QueryEngineConfig config_;
  TileCache cache_;
  std::vector<CatalogEntry> rasters_;
};

}  // namespace zh
