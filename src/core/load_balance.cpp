#include "core/load_balance.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "core/step2_pairing.hpp"
#include "grid/tiling.hpp"

namespace zh {

namespace {

/// Both LPT and the imbalance diagnostic assume costs behave like work:
/// a NaN cost poisons every load comparison (min_element and
/// max_element are unordered under NaN), and a negative cost can drive
/// a rank's load below zero so it soaks up every remaining partition.
void require_valid_costs(const std::vector<double>& costs) {
  for (std::size_t i = 0; i < costs.size(); ++i) {
    ZH_REQUIRE(std::isfinite(costs[i]) && costs[i] >= 0.0,
               "partition cost ", i, " must be finite and >= 0, got ",
               costs[i]);
  }
}

}  // namespace

std::vector<double> estimate_partition_costs(
    const std::vector<RasterPartition>& parts,
    const std::vector<GeoTransform>& raster_transforms,
    std::int64_t tile_size, const PolygonSet& polygons,
    const PartitionCostModel& model) {
  std::vector<double> costs(parts.size(), 0.0);
  for (std::size_t i = 0; i < parts.size(); ++i) {
    const RasterPartition& part = parts[i];
    ZH_REQUIRE(part.raster_index < raster_transforms.size(),
               "partition refers to unknown raster");
    const GeoTransform transform =
        raster_transforms[part.raster_index].for_window(part.window.row0,
                                                        part.window.col0);
    const TilingScheme tiling(part.window.rows, part.window.cols,
                              tile_size);
    const TilePolygonPairs pairs =
        pair_tiles_with_polygons(polygons, tiling, transform);

    // Step-4 edge tests: every cell of an intersecting tile is tested
    // against every vertex of the paired polygon.
    double edge_tests = 0.0;
    for (std::size_t k = 0; k < pairs.size(); ++k) {
      if (pairs.relations[k] != TileRelation::kIntersect) continue;
      const CellWindow w = tiling.tile_window(pairs.tile_ids[k]);
      edge_tests +=
          static_cast<double>(w.cell_count()) *
          static_cast<double>(polygons[pairs.polygon_ids[k]].vertex_count());
    }
    costs[i] =
        model.cell_weight * static_cast<double>(part.window.cell_count()) +
        model.pip_edge_weight * edge_tests;
  }
  return costs;
}

void assign_least_loaded(std::vector<RasterPartition>& parts,
                         std::size_t ranks,
                         const std::vector<double>& costs) {
  ZH_REQUIRE(ranks >= 1, "need at least one rank");
  ZH_REQUIRE(costs.size() == parts.size(),
             "one cost per partition required");
  require_valid_costs(costs);
  std::vector<std::size_t> order(parts.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return costs[a] > costs[b];
  });
  std::vector<double> load(ranks, 0.0);
  for (const std::size_t i : order) {
    const auto lightest = static_cast<RankId>(std::distance(
        load.begin(), std::min_element(load.begin(), load.end())));
    parts[i].owner = lightest;
    load[lightest] += costs[i];
  }
}

double assignment_imbalance(const std::vector<RasterPartition>& parts,
                            std::size_t ranks,
                            const std::vector<double>& costs) {
  ZH_REQUIRE(ranks >= 1, "need at least one rank");
  ZH_REQUIRE(costs.size() == parts.size(),
             "one cost per partition required");
  require_valid_costs(costs);
  std::vector<double> load(ranks, 0.0);
  double total = 0.0;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    ZH_REQUIRE(parts[i].owner < ranks, "partition ", i, " owned by rank ",
               parts[i].owner, " but only ", ranks, " ranks exist");
    load[parts[i].owner] += costs[i];
    total += costs[i];
  }
  // All-zero costs (empty coverage) are perfectly balanced by
  // definition; without the guard 0/0 would return NaN. With more ranks
  // than partitions the mean still divides by `ranks`, so the minimum
  // achievable ratio is ranks / partitions -- a true statement about
  // idle ranks, not an artifact.
  const double mean = total / static_cast<double>(ranks);
  const double worst = *std::max_element(load.begin(), load.end());
  return mean > 0.0 ? worst / mean : 1.0;
}

}  // namespace zh
