#include "core/lazy_pipeline.hpp"

#include <algorithm>
#include <atomic>

#include "core/step1_tile_hist.hpp"
#include "core/step2_pairing.hpp"
#include "core/step3_aggregate.hpp"
#include "core/step4_refine.hpp"
#include "device/thread_pool.hpp"
#include "obs/obs.hpp"

namespace zh {

ZonalResult run_lazy(Device& device, const BqCompressedRaster& compressed,
                     const PolygonSet& polygons, const ZonalConfig& config,
                     LazyCounters* counters) {
  ZH_REQUIRE(compressed.tiling().tile_size() == config.tile_size,
             "compressed raster tiling does not match config tile size");
  ZH_TRACE_SPAN("lazy.run", "pipeline");
  const TilingScheme& tiling = compressed.tiling();

  ZonalResult result;
  result.per_polygon = HistogramSet(polygons.size(), config.bins);
  result.work.tiles_total = tiling.tile_count();
  result.work.polygon_vertices = polygons.vertex_count();
  result.work.compressed_bytes = compressed.compressed_bytes();
  result.work.raw_bytes = compressed.raw_bytes();
  result.work.cells_total = static_cast<std::uint64_t>(
      tiling.raster_rows() * tiling.raster_cols());

  Timer timer;

  // Step 2 first: tile boxes only, no cell data.
  const PairingResult pairing =
      pair_and_group(polygons, tiling, compressed.transform());
  result.times.seconds[2] = timer.seconds();
  result.work.candidate_pairs = pairing.candidate_pairs;
  result.work.pairs_inside = pairing.inside.pair_count();
  result.work.pairs_intersect = pairing.intersect.pair_count();

  // Tile demand: which tiles need a histogram (inside) and which need
  // decoded cells for PIP (intersect). kInvalidSlot marks untouched.
  constexpr std::uint32_t kNoSlot = 0xFFFFFFFFu;
  std::vector<std::uint32_t> hist_slot(tiling.tile_count(), kNoSlot);
  std::vector<TileId> hist_tiles;
  for (const TileId t : pairing.inside.tid_v) {
    if (hist_slot[t] == kNoSlot) {
      hist_slot[t] = static_cast<std::uint32_t>(hist_tiles.size());
      hist_tiles.push_back(t);
    }
  }
  std::vector<bool> needs_cells(tiling.tile_count(), false);
  for (const TileId t : pairing.intersect.tid_v) needs_cells[t] = true;
  std::vector<bool> needs_decode = needs_cells;
  for (const TileId t : hist_tiles) needs_decode[t] = true;

  // Step 0 (partial): decode only the demanded tiles, in parallel, into
  // a full-extent raster (untouched tiles stay zero and are never read).
  timer.reset();
  DemRaster raster(tiling.raster_rows(), tiling.raster_cols(),
                   compressed.transform());
  std::atomic<std::uint64_t> decoded_tiles{0};
  std::atomic<std::uint64_t> decoded_cells{0};
  {
  ZH_TRACE_SPAN("lazy.decode_demanded", "pipeline");
  ThreadPool::global().parallel_for(
      tiling.tile_count(), [&](std::size_t b, std::size_t e) {
        std::vector<CellValue> cells;
        std::uint64_t tiles = 0;
        std::uint64_t n_cells = 0;
        std::uint64_t n_bytes = 0;
        for (std::size_t i = b; i < e; ++i) {
          const TileId id = static_cast<TileId>(i);
          if (!needs_decode[id]) continue;
          n_bytes += compressed.tile(id).compressed_bytes();
          const CellWindow w = tiling.tile_window(id);
          cells.resize(static_cast<std::size_t>(w.cell_count()));
          compressed.decode_tile(id, cells);
          for (std::int64_t r = 0; r < w.rows; ++r) {
            std::copy(
                cells.begin() + static_cast<std::size_t>(r * w.cols),
                cells.begin() + static_cast<std::size_t>((r + 1) * w.cols),
                &raster.at(w.row0 + r, w.col0));
          }
          ++tiles;
          n_cells += static_cast<std::uint64_t>(w.cell_count());
        }
        decoded_tiles.fetch_add(tiles, std::memory_order_relaxed);
        decoded_cells.fetch_add(n_cells, std::memory_order_relaxed);
        ZH_COUNTER_ADD("bqtree.bytes_decoded", n_bytes);
        ZH_COUNTER_ADD("bqtree.tiles_decoded", tiles);
      });
  }
  result.times.seconds[0] = timer.seconds();
  ZH_COUNTER_ADD("lazy.tiles_decoded", decoded_tiles.load());
  ZH_COUNTER_ADD("lazy.cells_decoded", decoded_cells.load());

  // Step 1 (partial): histograms only for inside tiles, stored compactly
  // (one row per demanded tile, not per tile).
  timer.reset();
  HistogramSet tile_hist(hist_tiles.size(), config.bins);
  {
    const std::span<const CellValue> cells = raster.cells();
    const std::int64_t cols = raster.cols();
    BinCount* out = tile_hist.flat().data();
    const BinIndex bins = config.bins;
    std::atomic<std::uint64_t> clamped_values{0};
    device.launch(
        static_cast<std::uint32_t>(hist_tiles.size()),
        [&](const BlockContext& ctx) {
          const TileId tile = hist_tiles[ctx.block_id()];
          const CellWindow w = tiling.tile_window(tile);
          BinCount* row =
              out + static_cast<std::size_t>(ctx.block_id()) * bins;
          std::uint64_t clamped = 0;
          ctx.strided(static_cast<std::size_t>(w.cell_count()),
                      [&](std::size_t p) {
                        const std::int64_t r =
                            w.row0 + static_cast<std::int64_t>(p) / w.cols;
                        const std::int64_t c =
                            w.col0 + static_cast<std::int64_t>(p) % w.cols;
                        const CellValue v = cells[static_cast<std::size_t>(
                            r * cols + c)];
                        const BinIndex bb = bin_index(v, bins, clamped);
                        atomic_add(&row[bb]);
                      });
          clamped_values.fetch_add(clamped, std::memory_order_relaxed);
        });
    note_values_clamped(clamped_values.load());
  }
  result.times.seconds[1] = timer.seconds();

  // Step 3 on the compact table: remap tile ids to table slots.
  timer.reset();
  PolygonTileGroups inside = pairing.inside;
  for (TileId& t : inside.tid_v) t = hist_slot[t];
  aggregate_inside_tiles(device, inside, tile_hist, result.per_polygon);
  result.times.seconds[3] = timer.seconds();
  result.work.aggregate_bin_adds =
      static_cast<std::uint64_t>(pairing.inside.pair_count()) * config.bins;

  // Step 4 unchanged.
  timer.reset();
  const PolygonSoA soa = PolygonSoA::build(polygons);
  const RefineCounters rc = refine_boundary_tiles(
      device, pairing.intersect, soa, raster, tiling, result.per_polygon,
      config.refine_granularity, config.refine_strategy);
  result.times.seconds[4] = timer.seconds();
  result.work.pip_cell_tests = rc.cell_tests;
  result.work.pip_edge_tests = rc.edge_tests;
  result.work.pip_rows_scanned = rc.rows_scanned;
  result.work.pip_run_cells = rc.run_cells;
  result.work.cells_in_polygons = result.per_polygon.total();

  if (counters != nullptr) {
    counters->tiles_total = tiling.tile_count();
    counters->tiles_decoded = decoded_tiles.load();
    counters->tiles_histogrammed = hist_tiles.size();
    counters->cells_decoded = decoded_cells.load();
  }
  return result;
}

}  // namespace zh
