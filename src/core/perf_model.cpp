#include "core/perf_model.hpp"

#include <algorithm>
#include <string_view>

namespace zh {

namespace {

// Per-step speed relative to GTX Titan for the paper's devices,
// calibrated from the published Table-2 speedups. Index = step 0..4.
constexpr double kQuadroScale[5] = {1.0 / 2.0, 1.0 / 1.6, 1.0, 1.0 / 2.0,
                                    1.0 / 2.6};
constexpr double kK20Scale[5] = {0.8, 0.8, 1.0, 0.8, 0.8};

}  // namespace

double PerfModel::device_step_scale(const DeviceProfile& dev,
                                    std::size_t step) {
  ZH_REQUIRE(step < StepTimes::kSteps, "step out of range");
  const std::string_view name = dev.name;
  if (name == "GTX Titan") return 1.0;
  if (name == "Quadro 6000") return kQuadroScale[step];
  if (name == "Tesla K20") return kK20Scale[step];
  if (step == 2) return 1.0;  // the pairing step runs on the host CPU

  // Unknown device: compute-throughput ratio capped by the bandwidth
  // ratio, both against the GTX Titan reference.
  const DeviceProfile titan = DeviceProfile::gtx_titan();
  const double compute =
      (static_cast<double>(dev.cuda_cores) * dev.core_clock_ghz) /
      (static_cast<double>(titan.cuda_cores) * titan.core_clock_ghz);
  const double bandwidth = dev.mem_bandwidth_gbs / titan.mem_bandwidth_gbs;
  return std::min(compute, bandwidth);
}

StepTimes PerfModel::project(const WorkCounters& work,
                             const DeviceProfile& dev) const {
  StepTimes t;
  auto proj = [&](std::size_t step, double units, double rate) {
    const double scale = device_step_scale(dev, step);
    t.seconds[step] = rate > 0.0 ? units / (rate * scale) : 0.0;
  };
  proj(0, static_cast<double>(work.cells_total) *
              (work.compressed_bytes > 0 ? 1.0 : 0.0),
       rates_.decode_cells_per_s);
  proj(1, static_cast<double>(work.cells_total), rates_.hist_cells_per_s);
  proj(2, static_cast<double>(work.candidate_pairs),
       rates_.pairing_pairs_per_s);
  proj(3, static_cast<double>(work.aggregate_bin_adds),
       rates_.aggregate_adds_per_s);
  // Step 4 is the sum of its two work kinds: ray-crossing edge tests
  // (the only term under brute refinement) plus the scanline run sweep's
  // per-cell cursor work (zero under brute).
  proj(4, static_cast<double>(work.pip_edge_tests),
       rates_.pip_edge_tests_per_s);
  if (work.pip_run_cells > 0) {
    const double scale = device_step_scale(dev, 4);
    t.seconds[4] += static_cast<double>(work.pip_run_cells) /
                    (rates_.pip_run_cells_per_s * scale);
  }

  // End-to-end overhead: host->device copy of the (compressed) raster at
  // PCIe bandwidth, plus a fixed 1 s allowance for result write-back --
  // the paper attributes its end-to-end minus step-sum gap to exactly
  // these ("data transfer times between CPUs and GPUs as well as times to
  // write output to disks").
  const std::uint64_t upload =
      work.compressed_bytes > 0 ? work.compressed_bytes : work.raw_bytes;
  t.overhead.transfer =
      static_cast<double>(upload) / (dev.pcie_bandwidth_gbs * 1e9);
  t.overhead.output = 1.0;
  return t;
}

}  // namespace zh
