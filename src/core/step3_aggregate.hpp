// Step 3: aggregate completely-inside per-tile histograms into
// per-polygon histograms (Sec. III.C, Fig. 4 right).
//
// One device block per polygon group: threads stride over histogram bins
// (outer loop), and for each bin iterate the polygon's inside tiles
// (inner loop), accumulating per-tile counts into the polygon histogram.
// No atomics needed: each polygon appears in exactly one group, so one
// block exclusively owns each output row -- the property the paper's
// UpdateHistKernel relies on.
#pragma once

#include "core/histogram.hpp"
#include "core/step2_pairing.hpp"
#include "device/device.hpp"

namespace zh {

/// Add inside-tile histograms into `polygon_hist` (groups = polygons,
/// pre-sized by the caller; accumulates, does not clear).
void aggregate_inside_tiles(Device& device,
                            const PolygonTileGroups& inside,
                            const HistogramSet& tile_hist,
                            HistogramSet& polygon_hist);

}  // namespace zh
