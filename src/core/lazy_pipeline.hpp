// Filter-first execution from compressed input.
//
// The published pipeline decodes the whole raster (Step 0) before
// histogramming every tile (Step 1), because Step 1 is defined as
// polygon-independent. But the Step-2 spatial filter only needs tile
// *boxes* -- no cell data at all -- so it can run first, after which:
//   * outside tiles  (no polygon)        -> never decoded at all,
//   * inside tiles   (Step-3 consumers)  -> decoded + histogrammed,
//   * intersect tiles (Step-4 consumers) -> decoded, cells kept for PIP.
// For zone layers that cover only part of the raster (the paper's
// southern-Florida observation: whole partitions mostly outside any
// county) this removes the corresponding share of decode + histogram
// work while producing bit-identical results.
#pragma once

#include <cstdint>

#include "bqtree/compressed_raster.hpp"
#include "core/pipeline.hpp"

namespace zh {

struct LazyCounters {
  std::uint64_t tiles_total = 0;
  std::uint64_t tiles_decoded = 0;      ///< inside + intersect tiles
  std::uint64_t tiles_histogrammed = 0; ///< tiles needing per-tile hist
  std::uint64_t cells_decoded = 0;
};

/// Run the zonal pipeline from compressed input, decoding only tiles
/// referenced by the pairing. Identical output to
/// ZonalPipeline::run(compressed, polygons); per-step times attribute
/// the (partial) decode to Step 0. `counters` reports the work skipped.
[[nodiscard]] ZonalResult run_lazy(Device& device,
                                   const BqCompressedRaster& compressed,
                                   const PolygonSet& polygons,
                                   const ZonalConfig& config,
                                   LazyCounters* counters = nullptr);

}  // namespace zh
