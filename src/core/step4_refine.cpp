#include "core/step4_refine.hpp"

#include <atomic>

#include "common/contracts.hpp"
#include "geom/pip.hpp"
#include "obs/obs.hpp"

namespace zh {

namespace {

/// Everything the per-cell test needs, shared by both granularities.
struct RefineCtx {
  const PolygonSoA* soa;
  const DemRaster* raster;
  const TilingScheme* tiling;
  std::span<const CellValue> cells;
  std::int64_t cols;
  BinIndex bins;
  std::optional<CellValue> nodata;
  BinCount* polys;
};

struct LocalCounters {
  std::uint64_t cell_tests = 0;
  std::uint64_t edge_tests = 0;
  std::uint64_t counted = 0;
};

/// Test every cell of tile `w` against polygon [p_f, p_t), updating the
/// polygon's histogram row. `Update` injects plain or atomic adds.
template <typename Update>
void refine_tile(const RefineCtx& ctx, const BlockContext& block,
                 const CellWindow& w, std::uint32_t p_f, std::uint32_t p_t,
                 BinCount* out, LocalCounters& local, Update update) {
  const double* x_v = ctx.soa->x_v().data();
  const double* y_v = ctx.soa->y_v().data();
  const GeoTransform& t = ctx.raster->transform();
  const std::size_t n = static_cast<std::size_t>(w.cell_count());
  block.strided(n, [&](std::size_t p) {
    const std::int64_t r = w.row0 + static_cast<std::int64_t>(p) / w.cols;
    const std::int64_t c = w.col0 + static_cast<std::int64_t>(p) % w.cols;
    const GeoPoint center = t.cell_center(r, c);
    ++local.cell_tests;
    local.edge_tests += p_t - p_f;
    if (point_in_polygon_soa_raw(x_v, y_v, p_f, p_t, center.x, center.y)) {
      const std::size_t cell = static_cast<std::size_t>(r * ctx.cols + c);
      ZH_DCHECK_BOUNDS(cell, ctx.cells.size());
      const CellValue v = ctx.cells[cell];
      if (ctx.nodata && v == *ctx.nodata) return;
      const BinIndex b = v < ctx.bins ? v : ctx.bins - 1;
      ZH_DCHECK_BOUNDS(b, ctx.bins);
      update(&out[b]);
      ++local.counted;
    }
  });
}

}  // namespace

RefineCounters refine_boundary_tiles(Device& device,
                                     const PolygonTileGroups& intersect,
                                     const PolygonSoA& soa,
                                     const DemRaster& raster,
                                     const TilingScheme& tiling,
                                     HistogramSet& polygon_hist,
                                     RefineGranularity granularity) {
  RefineCounters counters;
  if (intersect.pair_count() == 0) return counters;
  ZH_TRACE_SPAN("step4.refine", "pipeline");

  RefineCtx ctx{&soa,
                &raster,
                &tiling,
                raster.cells(),
                raster.cols(),
                polygon_hist.bins(),
                raster.nodata(),
                polygon_hist.flat().data()};

  std::atomic<std::uint64_t> cell_tests{0};
  std::atomic<std::uint64_t> edge_tests{0};
  std::atomic<std::uint64_t> cells_counted{0};
  auto flush = [&](const LocalCounters& local) {
    cell_tests.fetch_add(local.cell_tests, std::memory_order_relaxed);
    edge_tests.fetch_add(local.edge_tests, std::memory_order_relaxed);
    cells_counted.fetch_add(local.counted, std::memory_order_relaxed);
  };

  switch (granularity) {
    case RefineGranularity::kPolygonGroup:
      // pip_test_kernel analog (Fig. 5 right): block idx -> (pid, num,
      // pos); plain adds -- the block owns the polygon's output row.
      device.launch_named(
          "pip_test_kernel",
          static_cast<std::uint32_t>(intersect.group_count()),
          [&](const BlockContext& block) {
            const std::size_t idx = block.block_id();
            ZH_DCHECK_BOUNDS(idx, intersect.group_count());
            const PolygonId pid = intersect.pid_v[idx];
            const std::uint32_t num = intersect.num_v[idx];
            const std::uint32_t pos = intersect.pos_v[idx];
            ZH_DCHECK_BOUNDS(pid, polygon_hist.groups());
            ZH_ASSERT(static_cast<std::size_t>(pos) + num <=
                          intersect.pair_count(),
                      "group tile slice [", pos, ", ", pos + num,
                      ") exceeds pair count ", intersect.pair_count());
            const auto [p_f, p_t] = soa.vertex_range(pid);
            BinCount* out =
                ctx.polys + static_cast<std::size_t>(pid) * ctx.bins;
            LocalCounters local;
            for (std::uint32_t k = 0; k < num; ++k) {
              const CellWindow w =
                  tiling.tile_window(intersect.tid_v[pos + k]);
              refine_tile(ctx, block, w, p_f, p_t, out, local,
                          [](BinCount* slot) { *slot += 1; });
            }
            flush(local);
          });
      break;

    case RefineGranularity::kPolygonTile: {
      // One block per (polygon, tile) pair. Blocks of the same polygon
      // race on its histogram row, so updates are atomic -- the
      // tradeoff for intra-step load balance.
      std::vector<PolygonId> pair_pid(intersect.pair_count());
      for (std::size_t g = 0; g < intersect.group_count(); ++g) {
        for (std::uint32_t k = 0; k < intersect.num_v[g]; ++k) {
          pair_pid[intersect.pos_v[g] + k] = intersect.pid_v[g];
        }
      }
      device.launch_named(
          "pip_test_kernel_pairwise",
          static_cast<std::uint32_t>(intersect.pair_count()),
          [&](const BlockContext& block) {
            const std::size_t idx = block.block_id();
            ZH_DCHECK_BOUNDS(idx, pair_pid.size());
            const PolygonId pid = pair_pid[idx];
            ZH_DCHECK_BOUNDS(pid, polygon_hist.groups());
            const auto [p_f, p_t] = soa.vertex_range(pid);
            BinCount* out =
                ctx.polys + static_cast<std::size_t>(pid) * ctx.bins;
            const CellWindow w =
                tiling.tile_window(intersect.tid_v[idx]);
            LocalCounters local;
            refine_tile(ctx, block, w, p_f, p_t, out, local,
                        [](BinCount* slot) { atomic_add(slot); });
            flush(local);
          });
      break;
    }
  }

  counters.cell_tests = cell_tests.load();
  counters.edge_tests = edge_tests.load();
  counters.cells_counted = cells_counted.load();
  ZH_COUNTER_ADD("step4.pip_cell_tests", counters.cell_tests);
  ZH_COUNTER_ADD("step4.pip_edge_tests", counters.edge_tests);
  ZH_COUNTER_ADD("step4.cells_counted", counters.cells_counted);
  return counters;
}

}  // namespace zh
