#include "core/step4_refine.hpp"

#include <algorithm>
#include <atomic>
#include <vector>

#include "common/contracts.hpp"
#include "geom/edge_index.hpp"
#include "geom/pip.hpp"
#include "obs/obs.hpp"

namespace zh {

namespace {

/// Mean tested-edges per (polygon, tile) pair above which kAuto picks
/// the scanline path. Below it, tiles are edge-sparse enough that the
/// per-row gather/sort plus the index build cost more than brute
/// testing the handful of edges per cell.
constexpr double kAutoEdgeDensity = 8.0;

/// Everything the per-cell test needs, shared by both granularities.
struct RefineCtx {
  const PolygonSoA* soa;
  const DemRaster* raster;
  const TilingScheme* tiling;
  const EdgeIndex* index;  ///< null under kBrute
  std::span<const CellValue> cells;
  std::int64_t cols;
  BinIndex bins;
  std::optional<CellValue> nodata;
  BinCount* polys;
};

struct LocalCounters {
  std::uint64_t cell_tests = 0;
  std::uint64_t edge_tests = 0;
  std::uint64_t counted = 0;
  std::uint64_t rows_scanned = 0;
  std::uint64_t run_cells = 0;
  std::uint64_t clamped = 0;
};

/// Brute force: test every cell of tile `w` against polygon [p_f, p_t),
/// updating the polygon's histogram row. `tested_edges` is the
/// sentinel-free edge count the PiP loop actually evaluates per cell.
/// `Update` injects plain or atomic adds.
template <typename Update>
void refine_tile(const RefineCtx& ctx, const BlockContext& block,
                 const CellWindow& w, std::uint32_t p_f, std::uint32_t p_t,
                 std::uint32_t tested_edges, BinCount* out,
                 LocalCounters& local, Update update) {
  const double* x_v = ctx.soa->x_v().data();
  const double* y_v = ctx.soa->y_v().data();
  const GeoTransform& t = ctx.raster->transform();
  const std::size_t n = static_cast<std::size_t>(w.cell_count());
  block.strided(n, [&](std::size_t p) {
    const std::int64_t r = w.row0 + static_cast<std::int64_t>(p) / w.cols;
    const std::int64_t c = w.col0 + static_cast<std::int64_t>(p) % w.cols;
    const GeoPoint center = t.cell_center(r, c);
    ++local.cell_tests;
    local.edge_tests += tested_edges;
    if (point_in_polygon_soa_raw(x_v, y_v, p_f, p_t, center.x, center.y)) {
      const std::size_t cell = static_cast<std::size_t>(r * ctx.cols + c);
      ZH_DCHECK_BOUNDS(cell, ctx.cells.size());
      const CellValue v = ctx.cells[cell];
      if (ctx.nodata && v == *ctx.nodata) return;
      const BinIndex b = bin_index(v, ctx.bins, local.clamped);
      ZH_DCHECK_BOUNDS(b, ctx.bins);
      update(&out[b]);
      ++local.counted;
    }
  });
}

/// Scanline: classify tile `w` against polygon `pid` row by row. Each
/// row gathers only the banded edges crossing its cell-center y,
/// computes their sorted x-intercepts once, and walks the row as
/// inside/outside runs. Parity matches the brute path bit-for-bit: a
/// cell is inside iff the count of intercepts > px is odd, and both the
/// scanline y, the intercept expression and the `<=` cursor rule are the
/// exact expressions of pip.cpp's edge_crosses.
template <typename Update>
void refine_tile_scanline(const RefineCtx& ctx, const BlockContext& block,
                          const CellWindow& w, PolygonId pid, BinCount* out,
                          LocalCounters& local, std::vector<double>& xints,
                          Update update) {
  const double* x_v = ctx.soa->x_v().data();
  const double* y_v = ctx.soa->y_v().data();
  const GeoTransform& t = ctx.raster->transform();
  block.strided(static_cast<std::size_t>(w.rows), [&](std::size_t p) {
    const std::int64_t r = w.row0 + static_cast<std::int64_t>(p);
    ++local.rows_scanned;
    local.cell_tests += static_cast<std::uint64_t>(w.cols);
    local.run_cells += static_cast<std::uint64_t>(w.cols);
    const std::span<const std::uint32_t> band = ctx.index->row_edges(pid, r);
    local.edge_tests += band.size();
    if (band.empty()) return;  // zero crossings: the whole row is outside

    const double py = t.cell_center(r, w.col0).y;
    xints.clear();
    for (const std::uint32_t j : band) {
      // Identical operand order to edge_crosses' intercept expression.
      xints.push_back((x_v[j + 1] - x_v[j]) * (py - y_v[j]) /
                          (y_v[j + 1] - y_v[j]) +
                      x_v[j]);
    }
    std::sort(xints.begin(), xints.end());
    const std::size_t m = xints.size();

    // Cursor sweep: idx = #intercepts <= px; inside iff (m - idx) odd.
    // Each run extends until the next intercept overtakes a cell center.
    std::size_t idx = 0;
    std::int64_t c = 0;
    while (c < w.cols) {
      const double px = t.cell_center(r, w.col0 + c).x;
      while (idx < m && xints[idx] <= px) ++idx;
      const bool inside = (m - idx) % 2 == 1;
      std::int64_t run_end = w.cols;
      if (idx < m) {
        const double next_x = xints[idx];
        run_end = c + 1;
        while (run_end < w.cols &&
               t.cell_center(r, w.col0 + run_end).x < next_x) {
          ++run_end;
        }
      }
      if (inside) {
        const std::size_t row_base = static_cast<std::size_t>(r * ctx.cols);
        for (std::int64_t cc = c; cc < run_end; ++cc) {
          const std::size_t cell =
              row_base + static_cast<std::size_t>(w.col0 + cc);
          ZH_DCHECK_BOUNDS(cell, ctx.cells.size());
          const CellValue v = ctx.cells[cell];
          if (ctx.nodata && v == *ctx.nodata) continue;
          const BinIndex b = bin_index(v, ctx.bins, local.clamped);
          ZH_DCHECK_BOUNDS(b, ctx.bins);
          update(&out[b]);
          ++local.counted;
        }
      }
      c = run_end;
    }
  });
}

}  // namespace

RefineCounters refine_boundary_tiles(Device& device,
                                     const PolygonTileGroups& intersect,
                                     const PolygonSoA& soa,
                                     const DemRaster& raster,
                                     const TilingScheme& tiling,
                                     HistogramSet& polygon_hist,
                                     RefineGranularity granularity,
                                     RefineStrategy strategy) {
  RefineCounters counters;
  if (strategy != RefineStrategy::kAuto) counters.strategy = strategy;
  if (intersect.pair_count() == 0) return counters;
  ZH_TRACE_SPAN("step4.refine", "pipeline");

  // Sentinel-free edge counts per group: exact pip_edge_tests accounting
  // for the brute path and the density input of the kAuto heuristic.
  const double* x_v = soa.x_v().data();
  const double* y_v = soa.y_v().data();
  std::vector<std::uint32_t> group_edges(intersect.group_count());
  std::uint64_t weighted_edges = 0;
  for (std::size_t g = 0; g < intersect.group_count(); ++g) {
    const auto [p_f, p_t] = soa.vertex_range(intersect.pid_v[g]);
    group_edges[g] = soa_tested_edges(x_v, y_v, p_f, p_t);
    weighted_edges +=
        static_cast<std::uint64_t>(group_edges[g]) * intersect.num_v[g];
  }
  RefineStrategy resolved = strategy;
  if (resolved == RefineStrategy::kAuto) {
    const double density = static_cast<double>(weighted_edges) /
                           static_cast<double>(intersect.pair_count());
    resolved = density >= kAutoEdgeDensity ? RefineStrategy::kScanline
                                           : RefineStrategy::kBrute;
  }
  counters.strategy = resolved;
  const bool scanline = resolved == RefineStrategy::kScanline;

  // The y-banded edge index is only needed (and only paid for) on the
  // scanline path; its build parallelizes over polygons.
  EdgeIndex index;
  if (scanline) {
    index = EdgeIndex::build(soa, raster.transform(), raster.rows());
    ZH_COUNTER_ADD("step4.edge_index_entries",
                   index.stats().bucket_entries);
  }

  RefineCtx ctx{&soa,
                &raster,
                &tiling,
                scanline ? &index : nullptr,
                raster.cells(),
                raster.cols(),
                polygon_hist.bins(),
                raster.nodata(),
                polygon_hist.flat().data()};

  std::atomic<std::uint64_t> cell_tests{0};
  std::atomic<std::uint64_t> edge_tests{0};
  std::atomic<std::uint64_t> cells_counted{0};
  std::atomic<std::uint64_t> rows_scanned{0};
  std::atomic<std::uint64_t> run_cells{0};
  std::atomic<std::uint64_t> clamped{0};
  auto flush = [&](const LocalCounters& local) {
    cell_tests.fetch_add(local.cell_tests, std::memory_order_relaxed);
    edge_tests.fetch_add(local.edge_tests, std::memory_order_relaxed);
    cells_counted.fetch_add(local.counted, std::memory_order_relaxed);
    rows_scanned.fetch_add(local.rows_scanned, std::memory_order_relaxed);
    run_cells.fetch_add(local.run_cells, std::memory_order_relaxed);
    clamped.fetch_add(local.clamped, std::memory_order_relaxed);
  };

  switch (granularity) {
    case RefineGranularity::kPolygonGroup:
      // pip_test_kernel analog (Fig. 5 right): block idx -> (pid, num,
      // pos); plain adds -- the block owns the polygon's output row.
      device.launch_named(
          "pip_test_kernel",
          static_cast<std::uint32_t>(intersect.group_count()),
          [&](const BlockContext& block) {
            const std::size_t idx = block.block_id();
            ZH_DCHECK_BOUNDS(idx, intersect.group_count());
            const PolygonId pid = intersect.pid_v[idx];
            const std::uint64_t num = intersect.num_v[idx];
            const std::uint64_t pos = intersect.pos_v[idx];
            ZH_DCHECK_BOUNDS(pid, polygon_hist.groups());
            ZH_ASSERT(static_cast<std::size_t>(pos) + num <=
                          intersect.pair_count(),
                      "group tile slice [", pos, ", ", pos + num,
                      ") exceeds pair count ", intersect.pair_count());
            const auto [p_f, p_t] = soa.vertex_range(pid);
            BinCount* out =
                ctx.polys + static_cast<std::size_t>(pid) * ctx.bins;
            LocalCounters local;
            std::vector<double> xints;
            for (std::uint32_t k = 0; k < num; ++k) {
              const CellWindow w =
                  tiling.tile_window(intersect.tid_v[pos + k]);
              if (scanline) {
                refine_tile_scanline(ctx, block, w, pid, out, local, xints,
                                     [](BinCount* slot) { *slot += 1; });
              } else {
                refine_tile(ctx, block, w, p_f, p_t, group_edges[idx], out,
                            local, [](BinCount* slot) { *slot += 1; });
              }
            }
            flush(local);
          });
      break;

    case RefineGranularity::kPolygonTile: {
      // One block per (polygon, tile) pair. Blocks of the same polygon
      // race on its histogram row, so updates are atomic -- the
      // tradeoff for intra-step load balance.
      std::vector<PolygonId> pair_pid(intersect.pair_count());
      std::vector<std::uint32_t> pair_edges(intersect.pair_count());
      for (std::size_t g = 0; g < intersect.group_count(); ++g) {
        for (std::uint64_t k = 0; k < intersect.num_v[g]; ++k) {
          pair_pid[intersect.pos_v[g] + k] = intersect.pid_v[g];
          pair_edges[intersect.pos_v[g] + k] = group_edges[g];
        }
      }
      device.launch_named(
          "pip_test_kernel_pairwise",
          static_cast<std::uint32_t>(intersect.pair_count()),
          [&](const BlockContext& block) {
            const std::size_t idx = block.block_id();
            ZH_DCHECK_BOUNDS(idx, pair_pid.size());
            const PolygonId pid = pair_pid[idx];
            ZH_DCHECK_BOUNDS(pid, polygon_hist.groups());
            const auto [p_f, p_t] = soa.vertex_range(pid);
            BinCount* out =
                ctx.polys + static_cast<std::size_t>(pid) * ctx.bins;
            const CellWindow w =
                tiling.tile_window(intersect.tid_v[idx]);
            LocalCounters local;
            if (scanline) {
              std::vector<double> xints;
              refine_tile_scanline(ctx, block, w, pid, out, local, xints,
                                   [](BinCount* slot) { atomic_add(slot); });
            } else {
              refine_tile(ctx, block, w, p_f, p_t, pair_edges[idx], out,
                          local, [](BinCount* slot) { atomic_add(slot); });
            }
            flush(local);
          });
      break;
    }
  }

  counters.cell_tests = cell_tests.load();
  counters.edge_tests = edge_tests.load();
  counters.cells_counted = cells_counted.load();
  counters.rows_scanned = rows_scanned.load();
  counters.run_cells = run_cells.load();
  ZH_COUNTER_ADD("step4.pip_cell_tests", counters.cell_tests);
  ZH_COUNTER_ADD("step4.pip_edge_tests", counters.edge_tests);
  ZH_COUNTER_ADD("step4.cells_counted", counters.cells_counted);
  if (scanline) {
    ZH_COUNTER_ADD("step4.rows_scanned", counters.rows_scanned);
    ZH_COUNTER_ADD("step4.edges_in_band", counters.edge_tests);
    ZH_COUNTER_ADD("step4.run_cells", counters.run_cells);
  }
  note_values_clamped(clamped.load());
  return counters;
}

}  // namespace zh
