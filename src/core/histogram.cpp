#include "core/histogram.hpp"

#include <cmath>
#include <cstdlib>

#include "common/contracts.hpp"
#include "obs/obs.hpp"

namespace zh {

void note_values_clamped(std::uint64_t n) {
  if (n == 0) return;
  ZH_COUNTER_ADD("histogram.values_clamped", n);
}

ZonalStats stats_from_histogram(std::span<const BinCount> h) {
  ZonalStats s;
  double sum = 0.0;
  double sum_sq = 0.0;
  bool seen = false;
  for (BinIndex b = 0; b < h.size(); ++b) {
    ZH_DCHECK_BOUNDS(b, h.size());
    const BinCount c = h[b];
    if (c == 0) continue;
    if (!seen) {
      s.min = b;
      seen = true;
    }
    s.max = b;
    s.count += c;
    const double v = static_cast<double>(b);
    sum += v * c;
    sum_sq += v * v * c;
  }
  if (s.count > 0) {
    const double n = static_cast<double>(s.count);
    s.mean = sum / n;
    const double var = std::max(0.0, sum_sq / n - s.mean * s.mean);
    s.stddev = std::sqrt(var);
  }
  // Non-empty histograms must produce an ordered bin range; both indices
  // were read from h so they are < h.size() by construction.
  ZH_ASSERT(s.count == 0 || s.min <= s.max,
            "stats bin range inverted: min=", s.min, " max=", s.max);
  return s;
}

std::uint64_t histogram_l1_distance(std::span<const BinCount> a,
                                    std::span<const BinCount> b) {
  ZH_REQUIRE(a.size() == b.size(), "histogram length mismatch");
  std::uint64_t d = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    d += a[i] > b[i] ? a[i] - b[i] : b[i] - a[i];
  }
  return d;
}

}  // namespace zh
