// The end-to-end zonal-histogramming pipeline (Fig. 1 of the paper).
//
// Orchestrates Steps 0-4 on a device, with per-step wall times (the
// Table-2 breakdown) and work counters (input to the performance model
// and the ablation benches).
#pragma once

#include <cstdint>
#include <optional>

#include "bqtree/compressed_raster.hpp"
#include "common/timer.hpp"
#include "common/types.hpp"
#include "core/histogram.hpp"
#include "core/step1_tile_hist.hpp"
#include "core/step2_pairing.hpp"
#include "core/step4_refine.hpp"
#include "device/device.hpp"
#include "geom/polygon.hpp"
#include "geom/soa.hpp"
#include "grid/raster.hpp"
#include "grid/tiling.hpp"

namespace zh {

struct ZonalConfig {
  std::int64_t tile_size = 360;  ///< cells per tile edge (paper: 0.1 deg)
  BinIndex bins = 5000;          ///< histogram bins (paper: 5000)
  CountMode count_mode = CountMode::kAtomic;
  CellOrder cell_order = CellOrder::kRowMajor;  ///< Step-1 visitation
  RefineGranularity refine_granularity =
      RefineGranularity::kPolygonGroup;  ///< Step-4 block scheduling
  RefineStrategy refine_strategy =
      RefineStrategy::kBrute;  ///< Step-4 cell classification path
};

/// Work accounting of one pipeline run; all quantities exact.
struct WorkCounters {
  std::uint64_t cells_total = 0;        ///< raster cells histogrammed (Step 1)
  std::uint64_t tiles_total = 0;
  std::uint64_t candidate_pairs = 0;    ///< MBB-rasterized pairs (Step 2)
  std::uint64_t pairs_inside = 0;
  std::uint64_t pairs_intersect = 0;
  std::uint64_t polygon_vertices = 0;
  std::uint64_t aggregate_bin_adds = 0; ///< inside pairs x bins (Step 3)
  std::uint64_t pip_cell_tests = 0;     ///< Step 4 cell tests
  std::uint64_t pip_edge_tests = 0;     ///< Step 4 edge evaluations
  std::uint64_t pip_rows_scanned = 0;   ///< Step 4 scanline rows (0 = brute)
  std::uint64_t pip_run_cells = 0;      ///< Step 4 run-classified cells
  std::uint64_t cells_in_polygons = 0;  ///< final attributed cell count
  std::uint64_t compressed_bytes = 0;   ///< Step 0 input volume (if any)
  std::uint64_t raw_bytes = 0;

  WorkCounters& operator+=(const WorkCounters& o);
};

struct ZonalResult {
  HistogramSet per_polygon;
  StepTimes times;
  WorkCounters work;
};

namespace obs {
struct RunReport;
}  // namespace obs

/// Flatten `work` into `report.counters` under the canonical names used
/// by the zh-run-report-v1 schema (cells_total, pairs_inside, ...).
void append_work_counters(obs::RunReport& report, const WorkCounters& work);

/// Reusable scratch memory across pipeline runs. The per-tile histogram
/// table is tiles x bins x 4 B -- ~1.4 GB for the largest CONUS raster
/// at 5000 bins -- and allocating it fresh per run means re-faulting
/// gigabytes each time (painfully slow on virtualized hosts). Passing
/// one workspace to successive run() calls keeps the table resident, as
/// the paper's implementation keeps it in device memory.
struct ZonalWorkspace {
  HistogramSet tile_hist;
};

class ZonalPipeline {
 public:
  ZonalPipeline(Device& device, ZonalConfig config)
      : device_(&device), config_(config) {
    ZH_REQUIRE(config.tile_size >= 1, "tile size must be positive");
    ZH_REQUIRE(config.bins >= 1, "bin count must be positive");
  }

  [[nodiscard]] const ZonalConfig& config() const { return config_; }

  /// Run Steps 1-4 on an uncompressed raster (Step 0 time = 0).
  [[nodiscard]] ZonalResult run(const DemRaster& raster,
                                const PolygonSet& polygons,
                                ZonalWorkspace* workspace = nullptr) const;

  /// Run Steps 0-4: decode the BQ-Tree raster first (timed as Step 0),
  /// then the zonal steps. The compressed raster's tiling must use this
  /// pipeline's tile size.
  [[nodiscard]] ZonalResult run(const BqCompressedRaster& compressed,
                                const PolygonSet& polygons,
                                ZonalWorkspace* workspace = nullptr) const;

  /// Run Steps 1-4 with a pre-built SoA (lets callers amortize the
  /// flattening across partitions; the SoA must match `polygons`).
  [[nodiscard]] ZonalResult run(const DemRaster& raster,
                                const PolygonSet& polygons,
                                const PolygonSoA& soa,
                                ZonalWorkspace* workspace = nullptr) const;

  /// Bounded-memory run: process the raster through a part_rows x
  /// part_cols grid of tile-aligned windows (the Table-1 partition
  /// pattern), merging per-polygon histograms additively. Caps the
  /// per-tile table at the largest window's tiles x bins, the way the
  /// paper's 6 GB device memory bounds it. Result identical to run().
  [[nodiscard]] ZonalResult run_partitioned(
      const DemRaster& raster, const PolygonSet& polygons, int part_rows,
      int part_cols, ZonalWorkspace* workspace = nullptr) const;

 private:
  Device* device_;
  ZonalConfig config_;
};

}  // namespace zh
