// Direct zonal statistics via the 4-step decomposition.
//
// The paper frames zonal histogramming as the generalization of
// traditional Zonal Statistics (min/max/average/count/stddev tables).
// This module runs the classic operator *directly* with the same tile
// machinery -- per-tile moment accumulators instead of per-tile
// histograms -- which shrinks the Step-1 table from tiles x bins x 4 B
// to tiles x 40 B and needs no bin-count parameter at all. Results are
// exactly the statistics derivable from exact histograms (count/min/max
// identical; mean/stddev agree to floating-point accumulation order).
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "core/histogram.hpp"
#include "device/device.hpp"
#include "geom/polygon.hpp"
#include "grid/raster.hpp"

namespace zh {

/// Streaming accumulator for one zone or tile.
struct StatsAccumulator {
  std::uint64_t count = 0;
  CellValue min = std::numeric_limits<CellValue>::max();
  CellValue max = 0;
  double sum = 0.0;
  double sum_sq = 0.0;

  void add(CellValue v) {
    ++count;
    if (v < min) min = v;
    if (v > max) max = v;
    const double d = static_cast<double>(v);
    sum += d;
    sum_sq += d * d;
  }

  void merge(const StatsAccumulator& o) {
    count += o.count;
    if (o.min < min) min = o.min;
    if (o.max > max) max = o.max;
    sum += o.sum;
    sum_sq += o.sum_sq;
  }

  [[nodiscard]] ZonalStats finalize() const {
    ZonalStats s;
    s.count = count;
    if (count == 0) return s;
    s.min = min;
    s.max = max;
    const double n = static_cast<double>(count);
    s.mean = sum / n;
    s.stddev = std::sqrt(std::max(0.0, sum_sq / n - s.mean * s.mean));
    return s;
  }
};

/// Per-zone statistics via tile decomposition (Steps 1-4 with moment
/// accumulators). `tile_size` as in ZonalConfig.
[[nodiscard]] std::vector<ZonalStats> zonal_statistics(
    Device& device, const DemRaster& raster, const PolygonSet& polygons,
    std::int64_t tile_size);

/// Reference: per-cell PIP over each polygon's MBB window, serial
/// semantics identical to the baselines.
[[nodiscard]] std::vector<ZonalStats> zonal_statistics_reference(
    const DemRaster& raster, const PolygonSet& polygons);

}  // namespace zh
