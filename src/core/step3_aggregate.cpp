#include "core/step3_aggregate.hpp"

#include "common/contracts.hpp"
#include "obs/obs.hpp"

namespace zh {

void aggregate_inside_tiles(Device& device, const PolygonTileGroups& inside,
                            const HistogramSet& tile_hist,
                            HistogramSet& polygon_hist) {
  if (inside.group_count() == 0) return;
  ZH_TRACE_SPAN("step3.aggregate", "pipeline");
  ZH_COUNTER_ADD("step3.bin_adds",
                 static_cast<std::uint64_t>(inside.pair_count()) *
                     tile_hist.bins());
  ZH_REQUIRE(tile_hist.bins() == polygon_hist.bins(),
             "tile/polygon histogram bin counts differ");
  const BinIndex bins = tile_hist.bins();
  const BinCount* tiles = tile_hist.flat().data();
  BinCount* polys = polygon_hist.flat().data();

  // UpdateHistKernel analog (Fig. 4 right): block idx -> (pid, num, pos);
  // outer strided loop over bins, inner loop over the polygon's tiles.
  // Consecutive virtual threads touch consecutive bins of both the tile
  // row and the polygon row -- the coalesced-access pattern the paper
  // engineers for.
  device.launch_named(
      "UpdateHistKernel",
      static_cast<std::uint32_t>(inside.group_count()),
      [&, bins, tiles, polys](const BlockContext& ctx) {
        const std::size_t idx = ctx.block_id();
        ZH_DCHECK_BOUNDS(idx, inside.group_count());
        const PolygonId pid = inside.pid_v[idx];
        const std::uint64_t num = inside.num_v[idx];
        const std::uint64_t pos = inside.pos_v[idx];
        // Dispatch-array invariants from the Fig. 4 post-processing: the
        // group's tile slice lies within tid_v and every id addresses a
        // real histogram row.
        ZH_DCHECK_BOUNDS(pid, polygon_hist.groups());
        ZH_ASSERT(static_cast<std::size_t>(pos) + num <=
                      inside.pair_count(),
                  "group tile slice [", pos, ", ", pos + num,
                  ") exceeds pair count ", inside.pair_count());
        BinCount* out = polys + static_cast<std::size_t>(pid) * bins;
        ctx.strided(bins, [&](std::size_t p) {
          BinCount acc = 0;
          for (std::uint32_t i = 0; i < num; ++i) {
            const TileId w = inside.tid_v[pos + i];
            ZH_DCHECK_BOUNDS(w, tile_hist.groups());
            acc += tiles[static_cast<std::size_t>(w) * bins + p];
          }
          out[p] += acc;
        });
      });
}

}  // namespace zh
