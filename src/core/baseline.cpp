#include "core/baseline.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "device/thread_pool.hpp"
#include "geom/pip.hpp"
#include "obs/obs.hpp"

namespace zh {

namespace {

void bin_cell(std::span<BinCount> hist, CellValue v, BinIndex bins,
              std::optional<CellValue> nodata, std::uint64_t& clamped) {
  if (nodata && v == *nodata) return;
  hist[bin_index(v, bins, clamped)] += 1;
}

// Per-polygon PIP sweep over a cell window (the whole raster for the
// naive baseline, the MBB window for the filtered one).
void sweep_window(const DemRaster& raster, const Polygon& poly,
                  const CellWindow& w, BinIndex bins,
                  std::span<BinCount> hist, std::uint64_t& clamped) {
  const std::optional<CellValue> nodata = raster.nodata();
  for (std::int64_t r = w.row0; r < w.row0 + w.rows; ++r) {
    for (std::int64_t c = w.col0; c < w.col0 + w.cols; ++c) {
      const GeoPoint center = raster.transform().cell_center(r, c);
      if (point_in_polygon(poly, center)) {
        bin_cell(hist, raster.at(r, c), bins, nodata, clamped);
      }
    }
  }
}

// Clamp a polygon MBB to the raster's cell index space.
CellWindow mbb_window(const DemRaster& raster, const GeoBox& mbr) {
  const GeoTransform& t = raster.transform();
  std::int64_t c0 = std::clamp<std::int64_t>(t.x_to_col(mbr.min_x), 0,
                                             raster.cols() - 1);
  std::int64_t c1 = std::clamp<std::int64_t>(t.x_to_col(mbr.max_x), 0,
                                             raster.cols() - 1);
  std::int64_t r0 = std::clamp<std::int64_t>(t.y_to_row(mbr.max_y), 0,
                                             raster.rows() - 1);
  std::int64_t r1 = std::clamp<std::int64_t>(t.y_to_row(mbr.min_y), 0,
                                             raster.rows() - 1);
  return CellWindow{r0, c0, r1 - r0 + 1, c1 - c0 + 1};
}

}  // namespace

HistogramSet zonal_naive(const DemRaster& raster, const PolygonSet& polygons,
                         BinIndex bins) {
  HistogramSet hist(polygons.size(), bins);
  if (raster.cell_count() == 0) return hist;
  ZH_TRACE_SPAN("baseline.naive", "pipeline");
  ThreadPool::global().parallel_for(
      polygons.size(), [&](std::size_t b, std::size_t e) {
        std::uint64_t clamped = 0;
        for (std::size_t i = b; i < e; ++i) {
          const CellWindow whole{0, 0, raster.rows(), raster.cols()};
          sweep_window(raster, polygons[static_cast<PolygonId>(i)], whole,
                       bins, hist.of(i), clamped);
        }
        note_values_clamped(clamped);
      });
  return hist;
}

HistogramSet zonal_mbb_filter(const DemRaster& raster,
                              const PolygonSet& polygons, BinIndex bins) {
  HistogramSet hist(polygons.size(), bins);
  if (raster.cell_count() == 0) return hist;
  ZH_TRACE_SPAN("baseline.mbb_filter", "pipeline");
  const GeoBox raster_ext = raster.extent();
  ThreadPool::global().parallel_for(
      polygons.size(), [&](std::size_t b, std::size_t e) {
        std::uint64_t clamped = 0;
        for (std::size_t i = b; i < e; ++i) {
          const Polygon& poly = polygons[static_cast<PolygonId>(i)];
          const GeoBox mbr = poly.mbr();
          if (!raster_ext.intersects(mbr)) continue;
          sweep_window(raster, poly, mbb_window(raster, mbr), bins,
                       hist.of(i), clamped);
        }
        note_values_clamped(clamped);
      });
  return hist;
}

HistogramSet zonal_scanline(const DemRaster& raster,
                            const PolygonSet& polygons, BinIndex bins) {
  HistogramSet hist(polygons.size(), bins);
  if (raster.cell_count() == 0) return hist;
  ZH_TRACE_SPAN("baseline.scanline", "pipeline");
  const GeoTransform& t = raster.transform();
  const GeoBox raster_ext = raster.extent();
  const std::optional<CellValue> nodata = raster.nodata();

  ThreadPool::global().parallel_for(
      polygons.size(), [&](std::size_t pb, std::size_t pe) {
        std::vector<double> xints;
        std::uint64_t clamped = 0;
        for (std::size_t i = pb; i < pe; ++i) {
          const Polygon& poly = polygons[static_cast<PolygonId>(i)];
          const GeoBox mbr = poly.mbr();
          if (!raster_ext.intersects(mbr)) continue;
          const CellWindow w = mbb_window(raster, mbr);
          auto row_hist = hist.of(i);

          for (std::int64_t r = w.row0; r < w.row0 + w.rows; ++r) {
            const double py = t.cell_center(r, 0).y;

            // Gather the x-intersections of this scanline with every
            // edge, using the same half-open vertical rule as the
            // ray-crossing test so results match PIP exactly.
            xints.clear();
            for (const Ring& ring : poly.rings()) {
              const std::size_t n = ring.size();
              for (std::size_t k = 0; k < n; ++k) {
                const GeoPoint& a = ring[k];
                const GeoPoint& b = ring[(k + 1) % n];
                if (((a.y <= py) && (py < b.y)) ||
                    ((b.y <= py) && (py < a.y))) {
                  xints.push_back((b.x - a.x) * (py - a.y) / (b.y - a.y) +
                                  a.x);
                }
              }
            }
            if (xints.empty()) continue;
            std::sort(xints.begin(), xints.end());

            // A cell center px is interior iff the number of
            // intersections strictly greater than px is odd. Sweep the
            // row once with a cursor into the sorted intersection list.
            std::size_t idx = 0;
            const std::size_t m = xints.size();
            for (std::int64_t c = w.col0; c < w.col0 + w.cols; ++c) {
              const double px = t.cell_center(r, c).x;
              while (idx < m && xints[idx] <= px) ++idx;
              if ((m - idx) % 2 == 1) {
                bin_cell(row_hist, raster.at(r, c), bins, nodata, clamped);
              }
            }
          }
        }
        note_values_clamped(clamped);
      });
  return hist;
}

}  // namespace zh
