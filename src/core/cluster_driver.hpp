// Multi-node zonal histogramming (Sec. IV.C: Titan cluster runs).
//
// Partitions a multi-raster dataset per its Table-1 partition schemas,
// assigns partitions to ranks round-robin, runs the full pipeline per
// partition on each rank, and sum-reduces per-polygon histograms at the
// master rank (polygons can span partitions, so the merge is additive).
// The reported wall time is the maximum across ranks including the MPI
// communication -- the paper's measurement convention.
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/comm.hpp"
#include "cluster/partition.hpp"
#include "core/pipeline.hpp"
#include "device/device.hpp"

namespace zh {

/// How partitions map to ranks. kRoundRobin is the paper's setup (whose
/// edge-tile imbalance it reports); kCostBalanced is the future-work
/// improvement (core/load_balance.hpp).
enum class PartitionAssignment : std::uint8_t {
  kRoundRobin,
  kCostBalanced,
};

struct ClusterRunConfig {
  std::size_t ranks = 1;
  ZonalConfig zonal;
  DeviceProfile device_profile = DeviceProfile::k20();
  bool compress = false;  ///< run Step 0 from BQ-Tree-compressed partitions
  PartitionAssignment assignment = PartitionAssignment::kRoundRobin;
};

struct ClusterRunResult {
  HistogramSet merged;                ///< per-polygon histograms (master)
  std::vector<StepTimes> per_rank;    ///< per-rank step breakdowns
  std::vector<WorkCounters> per_rank_work;  ///< per-rank work (load balance)
  std::vector<double> rank_seconds;   ///< per-rank wall times (incl. comm)
  double wall_seconds = 0.0;          ///< max over ranks
  std::uint64_t comm_bytes = 0;       ///< total bytes sent
  WorkCounters work;                  ///< summed over partitions
};

/// Partition each raster of `rasters` with the matching schema in
/// `schemas` (part_rows x part_cols pairs), then run the cluster job.
/// `rasters[i]` must already carry its georeferencing. All ranks share
/// the polygon layer, as in the paper (the county layer is tiny next to
/// the rasters).
[[nodiscard]] ClusterRunResult run_cluster_zonal(
    const std::vector<DemRaster>& rasters,
    const std::vector<std::pair<int, int>>& schemas,
    const PolygonSet& polygons, const ClusterRunConfig& config);

}  // namespace zh
