// Multi-node zonal histogramming (Sec. IV.C: Titan cluster runs).
//
// Partitions a multi-raster dataset per its Table-1 partition schemas,
// assigns partitions to ranks, runs the full pipeline per partition on
// each rank, and sum-reduces per-polygon histograms at the master rank
// (polygons can span partitions, so the merge is additive). The reported
// wall time is the maximum across ranks including the MPI communication
// -- the paper's measurement convention.
//
// Two execution modes:
//  * static (default): the seed behavior -- fixed assignment, one final
//    reduce, no failure handling;
//  * fault-tolerant: workers stream one result message per partition and
//    the master supervises them (heartbeats + timeouts). A rank that
//    crashes or goes silent has its unfinished partitions reassigned to
//    surviving workers (LPT order) or computed by the master itself, so
//    the merged histograms stay bit-identical to the fault-free run
//    (invariant 6 extended) whenever every partition completes; a
//    `degraded` flag plus coverage list is returned when it does not.
//    The master (rank 0) is the single point of failure, like the
//    paper's MPI master: crash checkpoints never fire on it. Whole-
//    process death (including the master's) is mitigated by the durable
//    checkpoint journal: with ClusterRunConfig::checkpoint wired, every
//    accepted partition is journaled before acknowledgement and a
//    restarted run resumes from the journal, recomputing only the
//    remainder (bit-identical merge; DESIGN.md section 5d).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/comm.hpp"
#include "cluster/partition.hpp"
#include "core/checkpoint.hpp"
#include "core/pipeline.hpp"
#include "device/device.hpp"

namespace zh {

/// How partitions map to ranks. kRoundRobin is the paper's setup (whose
/// edge-tile imbalance it reports); kCostBalanced is the future-work
/// improvement (core/load_balance.hpp).
enum class PartitionAssignment : std::uint8_t {
  kRoundRobin,
  kCostBalanced,
};

/// Fault-tolerant-mode knobs.
struct FaultToleranceConfig {
  bool enabled = false;
  /// A worker silent for longer than this is declared dead and its
  /// unfinished partitions reassigned. Must exceed the worst-case
  /// per-partition compute time (workers heartbeat once per partition).
  std::int64_t worker_timeout_ms = 2000;
  /// The master computes partitions no surviving worker can take. Off,
  /// such partitions are reported as incomplete (degraded result) --
  /// mainly a hook for exercising the degraded path in tests.
  bool master_takeover = true;
  /// Point-to-point retry/backoff for protocol messages.
  RetryPolicy retry;
  /// Scripted failures (message faults + rank crashes) for tests/benches.
  FaultPlan faults;
};

struct ClusterRunConfig {
  std::size_t ranks = 1;
  ZonalConfig zonal;
  DeviceProfile device_profile = DeviceProfile::k20();
  bool compress = false;  ///< run Step 0 from BQ-Tree-compressed partitions
  PartitionAssignment assignment = PartitionAssignment::kRoundRobin;
  FaultToleranceConfig fault_tolerance;
  /// Durable checkpoint/resume wiring (journal-before-acknowledge +
  /// already-completed partitions). Requires fault_tolerance.enabled:
  /// only the supervised master-worker mode accepts partitions one by
  /// one. See src/core/checkpoint.hpp and DESIGN.md section 5d.
  CheckpointConfig checkpoint;
};

/// How a rank ended the run.
enum class RankState : std::uint8_t {
  kCompleted = 0,  ///< finished normally
  kCrashed,        ///< died at a scripted crash checkpoint
  kTimedOut,       ///< declared dead after heartbeat silence (straggler)
};

/// Per-rank accounting of a fault-tolerant run.
struct RankOutcome {
  RankState state = RankState::kCompleted;
  std::uint32_t partitions_completed = 0;  ///< results the master accepted
  std::uint32_t partitions_reassigned = 0;  ///< taken away after death
  std::uint64_t heartbeats = 0;  ///< progress messages the master saw

  bool operator==(const RankOutcome&) const = default;
};

/// Per-rank observability metrics, serialized by each rank at the end of
/// its run and gathered at the master next to the outcome table. All-u64
/// and trivially copyable so it travels over the typed send/recv layer
/// unchanged. A rank that dies before reporting leaves its row defaulted
/// (reported == 0).
struct RankMetricsRow {
  std::uint64_t partitions_processed = 0;
  std::uint64_t heartbeats_sent = 0;
  std::uint64_t results_sent = 0;
  std::uint64_t retries = 0;          ///< recv backoff re-attempts
  std::uint64_t comm_bytes_sent = 0;  ///< excludes this row's own message
  std::uint64_t cells_histogrammed = 0;
  std::uint64_t pip_cell_tests = 0;
  std::uint64_t bytes_decoded = 0;  ///< BQ-tree compressed bytes consumed
  std::uint64_t latency_us_sum = 0;  ///< summed per-partition wall micros
  std::uint64_t latency_us_max = 0;  ///< slowest partition in micros
  std::uint64_t reported = 0;       ///< 1 when the row arrived from the rank

  bool operator==(const RankMetricsRow&) const = default;
};

/// Column labels of RankMetricsRow in field order (report tables).
[[nodiscard]] std::vector<std::string> rank_metrics_columns();

/// Flatten one row into the order of rank_metrics_columns().
[[nodiscard]] std::vector<std::uint64_t> rank_metrics_values(
    const RankMetricsRow& row);

struct ClusterRunResult {
  HistogramSet merged;                ///< per-polygon histograms (master)
  std::vector<StepTimes> per_rank;    ///< per-rank step breakdowns
  std::vector<WorkCounters> per_rank_work;  ///< per-rank work (load balance)
  std::vector<double> rank_seconds;   ///< per-rank wall times (incl. comm)
  double wall_seconds = 0.0;          ///< max over ranks
  std::uint64_t comm_bytes = 0;       ///< total bytes sent
  WorkCounters work;                  ///< summed over partitions
  std::vector<RankOutcome> rank_outcomes;  ///< per-rank fate (all modes)
  std::vector<RankMetricsRow> rank_metrics;  ///< per-rank metrics (all modes)
  /// True when some partitions never completed (their contribution is
  /// missing from `merged`); the indices are listed for coverage reports.
  bool degraded = false;
  std::vector<std::uint32_t> incomplete_partitions;
  /// Partitions marked done from checkpoint.completed_partitions and
  /// never recomputed this run (resume accounting).
  std::uint64_t partitions_skipped = 0;
};

/// Partition each raster of `rasters` with the matching schema in
/// `schemas` (part_rows x part_cols pairs), then run the cluster job.
/// `rasters[i]` must already carry its georeferencing. All ranks share
/// the polygon layer, as in the paper (the county layer is tiny next to
/// the rasters).
[[nodiscard]] ClusterRunResult run_cluster_zonal(
    const std::vector<DemRaster>& rasters,
    const std::vector<std::pair<int, int>>& schemas,
    const PolygonSet& polygons, const ClusterRunConfig& config);

}  // namespace zh
