#include "core/query_engine.hpp"

#include <algorithm>
#include <atomic>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "core/step2_pairing.hpp"
#include "core/step3_aggregate.hpp"
#include "core/step4_refine.hpp"
#include "device/thread_pool.hpp"
#include "geom/soa.hpp"
#include "obs/obs.hpp"

namespace zh {

namespace {

/// Histogram one tile window exactly as CellAggrKernel does: skip
/// nodata, fold out-of-range values into the top bin. Counts are
/// order-independent, so this sequential scan is bit-identical to the
/// strided/Morton device variants.
std::vector<BinCount> fill_tile_histogram(const DemRaster& raster,
                                          const CellWindow& w, BinIndex bins,
                                          std::uint64_t& clamped) {
  std::vector<BinCount> hist(static_cast<std::size_t>(bins), 0);
  const std::optional<CellValue> nodata = raster.nodata();
  for (std::int64_t r = w.row0; r < w.row0 + w.rows; ++r) {
    for (std::int64_t c = w.col0; c < w.col0 + w.cols; ++c) {
      const CellValue v = raster.at(r, c);
      if (nodata && v == *nodata) continue;
      ++hist[bin_index(v, bins, clamped)];
    }
  }
  return hist;
}

}  // namespace

QueryEngine::QueryEngine(Device& device, QueryEngineConfig config)
    : device_(&device), config_(config), cache_(config.cache) {
  ZH_REQUIRE(config.tile_size >= 1, "tile size must be positive");
}

RasterHandle QueryEngine::add_raster(const DemRaster& raster) {
  ZH_TRACE_SPAN("query.add_raster", "query");
  rasters_.push_back(
      CatalogEntry{.raster = &raster, .fingerprint = fingerprint_raster(raster)});
  return rasters_.size() - 1;
}

QueryResult QueryEngine::run(const ZonalQuery& query) {
  ZH_REQUIRE(query.raster < rasters_.size(), "unknown raster handle ",
             query.raster, " (catalog has ", rasters_.size(), ")");
  ZH_REQUIRE(query.zones != nullptr, "query needs a zone layer");
  ZH_REQUIRE(query.bins >= 1, "bin count must be positive");
  ZH_TRACE_SPAN("query.run", "query");

  const CatalogEntry& entry = rasters_[query.raster];
  const DemRaster& raster = *entry.raster;
  const PolygonSet& zones = *query.zones;
  const BinIndex bins = query.bins;
  const TilingScheme tiling(raster.rows(), raster.cols(), config_.tile_size);
  const std::uint64_t binning_fp = fingerprint_binning(config_.tile_size, bins);
  const TileCacheStats before = cache_.stats();

  QueryResult result;
  result.per_polygon = HistogramSet(zones.size(), bins);
  result.work.tiles_total = tiling.tile_count();
  result.work.polygon_vertices = zones.vertex_count();
  result.work.raw_bytes =
      static_cast<std::uint64_t>(raster.cell_count()) * sizeof(CellValue);
  Timer total;
  Timer timer;

  // Step 2 first (zone-dependent, never cached): the pairing tells us
  // which tiles this query actually demands histograms for.
  const PairingResult pairing = [&] {
    ZH_TRACE_SPAN("query.step2_pairing", "query");
    return pair_and_group(zones, tiling, raster.transform());
  }();
  result.times.seconds[2] = timer.seconds();
  ZH_LATENCY_RECORD("latency.step2", result.times.seconds[2]);
  result.work.candidate_pairs = pairing.candidate_pairs;
  result.work.pairs_inside = pairing.inside.pair_count();
  result.work.pairs_intersect = pairing.intersect.pair_count();

  // Demanded tiles, compacted: slot i of the Step-3 table is the i-th
  // distinct tile referenced by an inside pair (lazy-pipeline idiom).
  constexpr std::uint32_t kNoSlot = 0xFFFFFFFFu;
  std::vector<std::uint32_t> hist_slot(tiling.tile_count(), kNoSlot);
  std::vector<TileId> hist_tiles;
  for (const TileId t : pairing.inside.tid_v) {
    if (hist_slot[t] == kNoSlot) {
      hist_slot[t] = static_cast<std::uint32_t>(hist_tiles.size());
      hist_tiles.push_back(t);
    }
  }

  // Step 1 through the cache: fills run once per (raster, tile, binning)
  // across every query this engine has ever served; hits are a pointer
  // copy. The compact table is then assembled from the shared rows.
  timer.reset();
  HistogramSet tile_hist(hist_tiles.size(), bins);
  std::atomic<std::uint64_t> clamped_values{0};
  std::atomic<std::uint64_t> cells_filled{0};
  {
    ZH_TRACE_SPAN("query.step1_cache", "query");
    std::vector<TileHistPtr> rows(hist_tiles.size());
    ThreadPool::global().parallel_for(
        hist_tiles.size(), [&](std::size_t b, std::size_t e) {
          std::uint64_t clamped = 0;
          std::uint64_t filled = 0;
          for (std::size_t i = b; i < e; ++i) {
            const TileId tile = hist_tiles[i];
            const TileHistKey key{.raster_fp = entry.fingerprint,
                                  .band = 0,
                                  .tile = tile,
                                  .binning_fp = binning_fp};
            rows[i] = cache_.get_or_fill(key, [&]() {
              const CellWindow w = tiling.tile_window(tile);
              filled += static_cast<std::uint64_t>(w.cell_count());
              return fill_tile_histogram(raster, w, bins, clamped);
            });
          }
          clamped_values.fetch_add(clamped, std::memory_order_relaxed);
          cells_filled.fetch_add(filled, std::memory_order_relaxed);
        });
    for (std::size_t i = 0; i < rows.size(); ++i) {
      ZH_ASSERT(rows[i] != nullptr && rows[i]->size() ==
                                          static_cast<std::size_t>(bins),
                "cached tile histogram has wrong bin count");
      std::copy(rows[i]->begin(), rows[i]->end(), tile_hist.of(i).begin());
    }
  }
  note_values_clamped(clamped_values.load());
  result.work.cells_total = cells_filled.load();
  result.times.seconds[1] = timer.seconds();
  ZH_LATENCY_RECORD("latency.step1", result.times.seconds[1]);

  // Step 3 on the compact table: remap tile ids to table slots.
  timer.reset();
  {
    ZH_TRACE_SPAN("query.step3_aggregate", "query");
    PolygonTileGroups inside = pairing.inside;
    for (TileId& t : inside.tid_v) t = hist_slot[t];
    aggregate_inside_tiles(*device_, inside, tile_hist, result.per_polygon);
  }
  result.times.seconds[3] = timer.seconds();
  ZH_LATENCY_RECORD("latency.step3", result.times.seconds[3]);
  result.work.aggregate_bin_adds =
      static_cast<std::uint64_t>(pairing.inside.pair_count()) * bins;

  // Step 4 unchanged: boundary refinement against the raw raster.
  timer.reset();
  const RefineCounters rc = [&] {
    ZH_TRACE_SPAN("query.step4_refine", "query");
    const PolygonSoA soa = PolygonSoA::build(zones);
    return refine_boundary_tiles(*device_, pairing.intersect, soa, raster,
                                 tiling, result.per_polygon,
                                 config_.refine_granularity,
                                 config_.refine_strategy);
  }();
  result.times.seconds[4] = timer.seconds();
  ZH_LATENCY_RECORD("latency.step4", result.times.seconds[4]);
  result.work.pip_cell_tests = rc.cell_tests;
  result.work.pip_edge_tests = rc.edge_tests;
  result.work.pip_rows_scanned = rc.rows_scanned;
  result.work.pip_run_cells = rc.run_cells;
  result.work.cells_in_polygons = result.per_polygon.total();

  // Per-query cache deltas. Exact when queries run one at a time (the
  // run_batch contract); under caller-driven concurrency they include
  // whatever overlapping queries did in the window.
  const TileCacheStats after = cache_.stats();
  result.cache_hits = after.hits - before.hits;
  result.cache_misses = after.misses - before.misses;
  ZH_LATENCY_RECORD("latency.query", total.seconds());
  return result;
}

std::vector<QueryResult> QueryEngine::run_batch(
    const std::vector<ZonalQuery>& queries) {
  ZH_TRACE_SPAN("query.run_batch", "query");
  std::vector<QueryResult> results;
  results.reserve(queries.size());
  for (const ZonalQuery& q : queries) results.push_back(run(q));
  return results;
}

}  // namespace zh
