// Step 4: cell-in-polygon refinement for boundary tiles (Sec. III.D,
// Fig. 5).
//
// One device block per intersect polygon group. Threads stride over the
// cell positions of a tile; for each of the group's tiles, each cell's
// center goes through the ray-crossing test against the polygon's
// flattened (SoA) vertex arrays, and hits update the polygon histogram.
// Per-block exclusive ownership of the polygon's output row makes plain
// (non-atomic) updates safe, as in Step 3.
//
// This step dominates end-to-end runtime in the paper (Table 2); its
// cost is proportional to boundary-tile cells x polygon vertices, which
// is what the tile-size ablation trades against Step 1.
#pragma once

#include <cstdint>

#include "core/histogram.hpp"
#include "core/step2_pairing.hpp"
#include "device/device.hpp"
#include "geom/soa.hpp"
#include "grid/raster.hpp"
#include "grid/tiling.hpp"

namespace zh {

/// Work counters from the refinement kernel (feed the performance model
/// and the ablation benches).
struct RefineCounters {
  std::uint64_t cell_tests = 0;   ///< cell-in-polygon tests performed
  std::uint64_t edge_tests = 0;   ///< ray-crossing edge evaluations
  std::uint64_t cells_counted = 0;  ///< cells found inside
};

/// Block-scheduling granularity of the refinement kernel.
///
/// kPolygonGroup is the paper's Fig.-5 kernel: one block per polygon,
/// looping its boundary tiles -- no atomics (each block owns its output
/// row), but a polygon with many boundary tiles serializes inside one
/// block, the intra-step imbalance behind the paper's Sec.-IV.C
/// observations. kPolygonTile launches one block per (polygon, tile)
/// pair: finer, self-balancing, at the cost of atomic histogram updates
/// (several blocks share a polygon's row). Results are identical.
enum class RefineGranularity : std::uint8_t {
  kPolygonGroup,
  kPolygonTile,
};

/// Run cell-in-polygon tests for every (cell, polygon) combination in the
/// intersect groups, accumulating hits into `polygon_hist`.
RefineCounters refine_boundary_tiles(
    Device& device, const PolygonTileGroups& intersect,
    const PolygonSoA& soa, const DemRaster& raster,
    const TilingScheme& tiling, HistogramSet& polygon_hist,
    RefineGranularity granularity = RefineGranularity::kPolygonGroup);

}  // namespace zh
