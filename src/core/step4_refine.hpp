// Step 4: cell-in-polygon refinement for boundary tiles (Sec. III.D,
// Fig. 5).
//
// One device block per intersect polygon group (or per pair, see
// RefineGranularity). Two strategies classify the cells of a boundary
// tile:
//
//  * kBrute -- the paper's kernel verbatim: every cell center goes
//    through the ray-crossing test against the polygon's flattened (SoA)
//    vertex arrays, O(cells x edges) per tile.
//  * kScanline -- row-coherent refinement: a per-polygon y-banded edge
//    index (geom/edge_index) yields the edges crossing each raster row's
//    cell-center scanline; their sorted x-intercepts convert the row
//    into inside/outside cell runs, O(E_row log E_row + cols) per row.
//    Intercepts and the parity rule reuse the exact expressions of
//    pip.cpp's edge_crosses, so histograms are bit-identical to kBrute.
//
// This step dominates end-to-end runtime in the paper (Table 2); its
// brute cost is proportional to boundary-tile cells x polygon vertices,
// which is what the tile-size ablation trades against Step 1 and what
// the scanline path collapses to per-row work.
#pragma once

#include <cstdint>

#include "core/histogram.hpp"
#include "core/step2_pairing.hpp"
#include "device/device.hpp"
#include "geom/soa.hpp"
#include "grid/raster.hpp"
#include "grid/tiling.hpp"

namespace zh {

/// Block-scheduling granularity of the refinement kernel.
///
/// kPolygonGroup is the paper's Fig.-5 kernel: one block per polygon,
/// looping its boundary tiles -- no atomics (each block owns its output
/// row), but a polygon with many boundary tiles serializes inside one
/// block, the intra-step imbalance behind the paper's Sec.-IV.C
/// observations. kPolygonTile launches one block per (polygon, tile)
/// pair: finer, self-balancing, at the cost of atomic histogram updates
/// (several blocks share a polygon's row). Results are identical.
enum class RefineGranularity : std::uint8_t {
  kPolygonGroup,
  kPolygonTile,
};

/// Cell-classification strategy of the refinement kernel. kAuto picks
/// per launch from the measured edges-per-pair density: scanline wins
/// once sorting a row's few intercepts beats testing every edge for
/// every cell (see DESIGN.md, "Refinement strategies").
enum class RefineStrategy : std::uint8_t {
  kBrute,
  kScanline,
  kAuto,
};

/// Work counters from the refinement kernel (feed the performance model
/// and the ablation benches).
struct RefineCounters {
  std::uint64_t cell_tests = 0;   ///< cells classified (strategy-invariant)
  std::uint64_t edge_tests = 0;   ///< crossing predicates actually evaluated
  std::uint64_t cells_counted = 0;  ///< cells found inside
  std::uint64_t rows_scanned = 0;   ///< scanline rows processed (0 = brute)
  std::uint64_t run_cells = 0;      ///< cells classified via runs (0 = brute)
  RefineStrategy strategy = RefineStrategy::kBrute;  ///< strategy executed
};

/// Run cell-in-polygon tests for every (cell, polygon) combination in the
/// intersect groups, accumulating hits into `polygon_hist`. Both
/// granularities support both strategies and produce bit-identical
/// histograms.
RefineCounters refine_boundary_tiles(
    Device& device, const PolygonTileGroups& intersect,
    const PolygonSoA& soa, const DemRaster& raster,
    const TilingScheme& tiling, HistogramSet& polygon_hist,
    RefineGranularity granularity = RefineGranularity::kPolygonGroup,
    RefineStrategy strategy = RefineStrategy::kBrute);

}  // namespace zh
