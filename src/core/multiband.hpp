// Zonal histogramming over multi-band / temporal raster stacks.
//
// The paper's introduction motivates exactly this workload: GOES-R
// produces 88 daily coverages in 16 bands, WRF emits large temporal
// stacks -- and per-zone histograms of each band/time step are the
// feature vectors downstream analysis consumes. The tile-based design
// pays its Step-2 spatial filter ONCE per stack: the pairing depends
// only on geometry (tiling x polygons), so every subsequent band reuses
// the same inside/intersect dispatch arrays and only Steps 1/3/4 run per
// band.
#pragma once

#include <span>
#include <vector>

#include "core/pipeline.hpp"

namespace zh {

struct SeriesResult {
  /// One polygons x bins histogram set per band, in input order.
  std::vector<HistogramSet> per_band;
  StepTimes times;    ///< Step 2 counted once; Steps 1/3/4 summed
  WorkCounters work;  ///< pairing counters once; cell counters summed
};

/// Run the pipeline over co-registered bands (same dims and
/// geotransform; enforced). Equivalent to one run() per band but with
/// the Step-2 pairing amortized across the stack.
[[nodiscard]] SeriesResult run_series(Device& device,
                                      std::span<const DemRaster> bands,
                                      const PolygonSet& polygons,
                                      const ZonalConfig& config,
                                      ZonalWorkspace* workspace = nullptr);

}  // namespace zh
