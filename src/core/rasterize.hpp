// Zone rasterization: burn polygon ids into a grid.
//
// The scanline machinery of the baselines, exposed as a standalone
// operator (the GDAL-rasterize analog). Used by the visualization module
// and handy for exporting zone masks; cell-center semantics identical to
// every other operator in the library.
#pragma once

#include "common/types.hpp"
#include "geom/polygon.hpp"
#include "grid/raster.hpp"

namespace zh {

/// Raster of zone ids under `transform`: each cell holds the id of the
/// polygon containing its center, or kInvalidPolygon if none. Where
/// polygons overlap, the highest id wins (deterministic).
[[nodiscard]] Raster<PolygonId> rasterize_zones(
    const PolygonSet& polygons, std::int64_t rows, std::int64_t cols,
    const GeoTransform& transform);

}  // namespace zh
