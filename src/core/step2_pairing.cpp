#include "core/step2_pairing.hpp"

#include <mutex>

#include "common/contracts.hpp"
#include "device/thread_pool.hpp"
#include "geom/classify.hpp"
#include "obs/obs.hpp"
#include "primitives/primitives.hpp"

namespace zh {

TilePolygonPairs pair_tiles_with_polygons(const PolygonSet& polygons,
                                          const TilingScheme& tiling,
                                          const GeoTransform& transform) {
  const std::size_t n = polygons.size();
  ZH_TRACE_SPAN("step2.pair_tiles", "pipeline");

  // Per-polygon local buffers, concatenated in polygon order afterwards so
  // the output is deterministic regardless of scheduling.
  struct Local {
    std::vector<TileId> tiles;
    std::vector<TileRelation> rels;
  };
  std::vector<Local> locals(n);

  ThreadPool::global().parallel_for(n, [&](std::size_t b, std::size_t e) {
    std::uint64_t outside = 0;
    for (std::size_t i = b; i < e; ++i) {
      const Polygon& poly = polygons[static_cast<PolygonId>(i)];
      const GeoBox mbr = poly.mbr();
      // MBB rasterization: candidate tiles from the grid index.
      const std::vector<TileId> candidates =
          tiling.tiles_covering(mbr, transform);
      Local& loc = locals[i];
      loc.tiles.reserve(candidates.size());
      loc.rels.reserve(candidates.size());
      for (const TileId t : candidates) {
        const TileRelation rel =
            classify_box(poly, mbr, tiling.tile_box(t, transform));
        if (rel == TileRelation::kOutside) {
          ++outside;
          continue;
        }
        loc.tiles.push_back(t);
        loc.rels.push_back(rel);
      }
    }
    ZH_COUNTER_ADD("step2.tiles_outside", outside);
  });

  TilePolygonPairs out;
  std::size_t total = 0;
  for (const Local& loc : locals) total += loc.tiles.size();
  out.tile_ids.reserve(total);
  out.polygon_ids.reserve(total);
  out.relations.reserve(total);
  for (std::size_t i = 0; i < n; ++i) {
    const Local& loc = locals[i];
    for (std::size_t k = 0; k < loc.tiles.size(); ++k) {
      out.tile_ids.push_back(loc.tiles[k]);
      out.polygon_ids.push_back(static_cast<PolygonId>(i));
      out.relations.push_back(loc.rels[k]);
    }
  }
  return out;
}

namespace {

/// Build the (pid_v, num_v, pos_v, tid_v) arrays from pair lists already
/// restricted to one relation class and sorted by polygon id.
PolygonTileGroups make_groups(std::span<const PolygonId> pids,
                              std::span<const TileId> tids) {
  PolygonTileGroups g;
  g.tid_v.assign(tids.begin(), tids.end());

  // reduce_by_key: per-polygon tile counts (Fig. 4 middle). 64-bit so
  // the scan below cannot wrap past 2^32 pairs.
  std::vector<std::uint64_t> ones(pids.size(), 1);
  auto [keys, counts] = prim::reduce_by_key<PolygonId, std::uint64_t>(
      pids, std::span<const std::uint64_t>(ones));
  g.pid_v = std::move(keys);
  g.num_v = std::move(counts);

  // exclusive scan: group start offsets (Fig. 4 bottom).
  g.pos_v.resize(g.num_v.size());
  prim::exclusive_scan<std::uint64_t>(g.num_v, g.pos_v, 0);
  return g;
}

}  // namespace

PairingResult build_pairing_groups(TilePolygonPairs pairs) {
  ZH_TRACE_SPAN("step2.group", "pipeline");
  PairingResult result;
  result.candidate_pairs = pairs.size();
  if (pairs.size() == 0) return result;

  // Composite sort key (relation, polygon): one stable_sort_by_key brings
  // all inside pairs ahead of all intersect pairs AND groups each class
  // by polygon, mirroring the paper's stable_sort_by_key +
  // stable_partition combination.
  std::vector<std::uint64_t> keys(pairs.size());
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    // Sec. III.B: the spatial filter must emit a clean partition -- only
    // inside/intersect survive (outside pairs were dropped upstream).
    ZH_ASSERT(pairs.relations[i] == TileRelation::kInside ||
                  pairs.relations[i] == TileRelation::kIntersect,
              "pair ", i, " carries relation ",
              static_cast<int>(pairs.relations[i]),
              " which is not inside/intersect");
    keys[i] = (static_cast<std::uint64_t>(pairs.relations[i]) << 32) |
              pairs.polygon_ids[i];
  }
  prim::stable_sort_by_key(keys, pairs.polygon_ids, pairs.tile_ids);

  // stable_partition point: first intersect entry.
  std::size_t split = 0;
  while (split < keys.size() &&
         (keys[split] >> 32) ==
             static_cast<std::uint64_t>(TileRelation::kInside)) {
    ++split;
  }

  result.inside = make_groups(
      std::span<const PolygonId>(pairs.polygon_ids).subspan(0, split),
      std::span<const TileId>(pairs.tile_ids).subspan(0, split));
  result.intersect = make_groups(
      std::span<const PolygonId>(pairs.polygon_ids).subspan(split),
      std::span<const TileId>(pairs.tile_ids).subspan(split));
  return result;
}

PairingResult pair_and_group(const PolygonSet& polygons,
                             const TilingScheme& tiling,
                             const GeoTransform& transform) {
  ZH_TRACE_SPAN("step2.pairing", "pipeline");
  PairingResult result = build_pairing_groups(
      pair_tiles_with_polygons(polygons, tiling, transform));
  ZH_COUNTER_ADD("step2.pairs_candidate", result.candidate_pairs);
  ZH_COUNTER_ADD("step2.tiles_inside", result.inside.pair_count());
  ZH_COUNTER_ADD("step2.tiles_intersect", result.intersect.pair_count());
  return result;
}

}  // namespace zh
