#include "core/step1_tile_hist.hpp"

#include <atomic>
#include <vector>

#include "common/contracts.hpp"
#include "obs/obs.hpp"

namespace zh {

HistogramSet tile_histograms(Device& device, const DemRaster& raster,
                             const TilingScheme& tiling, BinIndex bins,
                             CountMode mode, CellOrder order) {
  HistogramSet hist;
  tile_histograms_into(device, raster, tiling, bins, mode, hist, order);
  return hist;
}

void tile_histograms_into(Device& device, const DemRaster& raster,
                          const TilingScheme& tiling, BinIndex bins,
                          CountMode mode, HistogramSet& hist,
                          CellOrder order) {
  ZH_REQUIRE(tiling.raster_rows() == raster.rows() &&
                 tiling.raster_cols() == raster.cols(),
             "tiling scheme does not match raster dims");
  ZH_TRACE_SPAN("step1.tile_hist", "pipeline");
  ZH_COUNTER_ADD("step1.cells_histogrammed", raster.cell_count());
  ZH_COUNTER_ADD("step1.tiles", tiling.tile_count());
  hist.reset(tiling.tile_count(), bins);
  if (tiling.tile_count() == 0) return;

  const std::optional<CellValue> nodata = raster.nodata();
  const std::span<const CellValue> cells = raster.cells();
  const std::int64_t cols = raster.cols();
  BinCount* out = hist.flat().data();

  // CellAggrKernel analog: idx-th block handles the idx-th tile. The bin
  // zeroing phase of Fig. 2 (lines 2-4) is done by HistogramSet's
  // zero-initialization; the cell loop (lines 6-11) is the strided loop
  // below. Atomic adds are kept even though one block owns one tile's
  // histogram -- faithful to the paper's kernel, and required if a future
  // scheduler splits tiles across blocks.
  std::atomic<std::uint64_t> clamped_values{0};
  device.launch_named(
      "CellAggrKernel", static_cast<std::uint32_t>(tiling.tile_count()),
      [&, nodata, cols, out](const BlockContext& ctx) {
    const TileId tile = ctx.block_id();
    ZH_DCHECK_BOUNDS(tile, tiling.tile_count());
    const CellWindow w = tiling.tile_window(tile);
    BinCount* tile_hist = out + static_cast<std::size_t>(tile) * bins;
    const std::size_t n = static_cast<std::size_t>(w.cell_count());
    const std::size_t cell_count = cells.size();
    std::uint64_t clamped = 0;

    switch (mode) {
      case CountMode::kAtomic:
        if (order == CellOrder::kMorton) {
          // Z-order visitation: the Sec. III.A locality improvement.
          // Histograms are order-independent, so the result is identical
          // to row-major; only the access pattern changes.
          for_each_cell(static_cast<std::uint32_t>(w.rows),
                        static_cast<std::uint32_t>(w.cols),
                        CellOrder::kMorton,
                        [&](std::uint32_t lr, std::uint32_t lc) {
                          const std::int64_t r = w.row0 + lr;
                          const std::int64_t c = w.col0 + lc;
                          const std::size_t cell =
                              static_cast<std::size_t>(r * cols + c);
                          ZH_DCHECK_BOUNDS(cell, cell_count);
                          const CellValue v = cells[cell];
                          if (nodata && v == *nodata) return;
                          const BinIndex b = bin_index(v, bins, clamped);
                          ZH_DCHECK_BOUNDS(b, bins);
                          atomic_add(&tile_hist[b]);
                        });
          break;
        }
        ctx.strided(n, [&](std::size_t p) {
          const std::int64_t r = w.row0 + static_cast<std::int64_t>(p) /
                                              w.cols;
          const std::int64_t c = w.col0 + static_cast<std::int64_t>(p) %
                                              w.cols;
          const std::size_t cell = static_cast<std::size_t>(r * cols + c);
          ZH_DCHECK_BOUNDS(cell, cell_count);
          const CellValue v = cells[cell];
          if (nodata && v == *nodata) return;
          const BinIndex b = bin_index(v, bins, clamped);
          ZH_DCHECK_BOUNDS(b, bins);
          atomic_add(&tile_hist[b]);
        });
        break;

      case CountMode::kPrivatized: {
        // One private histogram per virtual thread, merged after the cell
        // phase; memory cost bins * block_dim per block, which is why the
        // paper rejects this for large bin counts.
        const std::uint32_t dim = ctx.block_dim();
        std::vector<BinCount> priv(static_cast<std::size_t>(bins) * dim, 0);
        ctx.strided(n, [&](std::size_t p) {
          const std::int64_t r = w.row0 + static_cast<std::int64_t>(p) /
                                              w.cols;
          const std::int64_t c = w.col0 + static_cast<std::int64_t>(p) %
                                              w.cols;
          const std::size_t cell = static_cast<std::size_t>(r * cols + c);
          ZH_DCHECK_BOUNDS(cell, cell_count);
          const CellValue v = cells[cell];
          if (nodata && v == *nodata) return;
          const BinIndex b = bin_index(v, bins, clamped);
          ZH_DCHECK_BOUNDS(b, bins);
          const std::uint32_t t = static_cast<std::uint32_t>(p % dim);
          ++priv[static_cast<std::size_t>(t) * bins + b];
        });
        ctx.sync();
        ctx.strided(bins, [&](std::size_t b) {
          BinCount acc = 0;
          for (std::uint32_t t = 0; t < dim; ++t) {
            acc += priv[static_cast<std::size_t>(t) * bins + b];
          }
          tile_hist[b] += acc;
        });
        break;
      }
    }
    clamped_values.fetch_add(clamped, std::memory_order_relaxed);
  });
  note_values_clamped(clamped_values.load());
}

}  // namespace zh
