// Step 1: per-tile histogram generation (Sec. III.A, Fig. 2).
//
// One device block per raster tile; the block's virtual threads zero the
// tile's bins, then stride over the tile's cells updating bins with
// atomic adds -- the structure of the paper's CellAggrKernel. Cells equal
// to the raster's nodata value are skipped; values >= bins clamp into the
// top bin (the paper assumes v < B; the clamp makes the API total).
#pragma once

#include "common/types.hpp"
#include "core/histogram.hpp"
#include "device/device.hpp"
#include "grid/morton.hpp"
#include "grid/raster.hpp"
#include "grid/tiling.hpp"

namespace zh {

/// Counting strategy ablation (Sec. III.A discusses the tradeoff: atomics
/// into the shared per-tile histogram vs. privatized per-thread
/// histograms merged afterwards, impractical for large bin counts).
enum class CountMode {
  kAtomic,      ///< atomicAdd into the per-tile histogram (paper default)
  kPrivatized,  ///< per-virtual-thread histograms, merged per block
};

/// Compute per-tile histograms for every tile of `tiling` over `raster`
/// into `out` (reshaped to tile_count x bins, reusing its allocation).
/// `order` selects the within-tile visitation order: kRowMajor is the
/// paper's published kernel; kMorton is its deferred locality
/// optimization (Sec. III.A future work). The result is identical either
/// way -- histograms are order-independent.
void tile_histograms_into(Device& device, const DemRaster& raster,
                          const TilingScheme& tiling, BinIndex bins,
                          CountMode mode, HistogramSet& out,
                          CellOrder order = CellOrder::kRowMajor);

/// Compute per-tile histograms for every tile of `tiling` over `raster`.
/// Result: one histogram group per tile, `bins` bins each.
[[nodiscard]] HistogramSet tile_histograms(
    Device& device, const DemRaster& raster, const TilingScheme& tiling,
    BinIndex bins, CountMode mode = CountMode::kAtomic,
    CellOrder order = CellOrder::kRowMajor);

}  // namespace zh
