// Zonal summation of point data.
//
// The paper's Step-2 spatial filter reuses the authors' GPU grid-file
// technique for *point* data (refs [19]/[20]: point-in-polygon spatial
// joins and "Parallel Zonal Summations of Large-Scale Species Occurrence
// Data"). This module implements that companion operation on the same
// substrates: points are binned to the zonal tile grid (the implicit
// grid-file), polygons pair with tiles exactly as in Step 2, and then
// whole point-buckets of completely-inside tiles aggregate without any
// PIP test while boundary-tile points go through the Fig.-5 ray-crossing
// kernel. Output: per-zone point count and weight sum.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "device/device.hpp"
#include "geom/points.hpp"
#include "geom/polygon.hpp"
#include "grid/geotransform.hpp"
#include "grid/tiling.hpp"

namespace zh {

/// Per-zone aggregate.
struct PointZonalRow {
  std::uint64_t count = 0;
  double weight_sum = 0.0;
};

/// Work accounting: how much PIP the grid filter avoided.
struct PointZonalCounters {
  std::uint64_t points_in_inside_tiles = 0;  ///< aggregated bucket-wise
  std::uint64_t pip_point_tests = 0;         ///< boundary-tile tests
};

/// Grid-filtered zonal point summation over `tiling`/`transform` (the
/// same tile grid a raster run would use; no raster needed). Points
/// outside the tiling's extent never match any zone.
[[nodiscard]] std::vector<PointZonalRow> zonal_point_summation(
    Device& device, const PointSet& points, const PolygonSet& polygons,
    const TilingScheme& tiling, const GeoTransform& transform,
    PointZonalCounters* counters = nullptr);

/// Reference: PIP every point against every polygon (MBB-prefiltered).
[[nodiscard]] std::vector<PointZonalRow> zonal_point_summation_reference(
    const PointSet& points, const PolygonSet& polygons);

}  // namespace zh
