#include "core/point_zonal.hpp"

#include <algorithm>
#include <atomic>

#include "core/step2_pairing.hpp"
#include "device/thread_pool.hpp"
#include "geom/pip.hpp"
#include "geom/soa.hpp"
#include "primitives/primitives.hpp"

namespace zh {

namespace {

/// Points bucketed by tile: a permutation of point indices grouped by
/// tile id, plus per-tile [begin, end) offsets -- the grid-file index of
/// refs [19]/[20] built with the Fig.-4 primitives.
struct PointGridIndex {
  std::vector<std::uint32_t> point_ids;  // grouped by tile
  std::vector<std::uint32_t> tile_begin;  // size tile_count + 1
};

PointGridIndex build_point_index(const PointSet& points,
                                 const TilingScheme& tiling,
                                 const GeoTransform& transform) {
  const std::size_t n = points.size();
  std::vector<TileId> tile_of(n);
  ThreadPool::global().parallel_for(
      n,
      [&](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) {
          const std::int64_t c = transform.x_to_col(points.x[i]);
          const std::int64_t r = transform.y_to_row(points.y[i]);
          if (r < 0 || r >= tiling.raster_rows() || c < 0 ||
              c >= tiling.raster_cols()) {
            tile_of[i] = kInvalidTile;
          } else {
            tile_of[i] = tiling.tile_id(r / tiling.tile_size(),
                                        c / tiling.tile_size());
          }
        }
      },
      1 << 12);

  // stable_sort_by_key(tile, point_id) groups points by tile.
  const auto perm = prim::stable_sort_permutation<TileId>(tile_of);

  PointGridIndex index;
  index.point_ids.resize(n);
  index.tile_begin.assign(tiling.tile_count() + 1, 0);
  // Counting pass (histogram of tiles) + exclusive scan = bucket offsets.
  std::vector<std::uint32_t> counts(tiling.tile_count(), 0);
  std::size_t in_range = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (tile_of[i] == kInvalidTile) continue;
    ++counts[tile_of[i]];
    ++in_range;
  }
  prim::exclusive_scan<std::uint32_t>(
      counts, std::span<std::uint32_t>(index.tile_begin)
                  .subspan(0, tiling.tile_count()));
  index.tile_begin[tiling.tile_count()] =
      static_cast<std::uint32_t>(in_range);
  // The sorted permutation lists out-of-range (kInvalidTile) points last.
  index.point_ids.resize(in_range);
  for (std::size_t i = 0; i < in_range; ++i) {
    index.point_ids[i] = static_cast<std::uint32_t>(perm[i]);
  }
  return index;
}

double weight_of(const PointSet& points, std::size_t i) {
  return points.weight.empty() ? 1.0 : points.weight[i];
}

}  // namespace

std::vector<PointZonalRow> zonal_point_summation(
    Device& device, const PointSet& points, const PolygonSet& polygons,
    const TilingScheme& tiling, const GeoTransform& transform,
    PointZonalCounters* counters) {
  ZH_REQUIRE(points.weight.empty() || points.weight.size() == points.size(),
             "weight array must be empty or match point count");
  std::vector<PointZonalRow> rows(polygons.size());
  if (polygons.empty() || tiling.tile_count() == 0) return rows;

  const PointGridIndex index =
      build_point_index(points, tiling, transform);
  const PairingResult pairing =
      pair_and_group(polygons, tiling, transform);
  const PolygonSoA soa = PolygonSoA::build(polygons);

  std::atomic<std::uint64_t> bucket_points{0};
  std::atomic<std::uint64_t> pip_tests{0};

  // Inside tiles: whole buckets aggregate, no PIP (the Step-3 analog).
  device.launch(
      static_cast<std::uint32_t>(pairing.inside.group_count()),
      [&](const BlockContext& ctx) {
        const std::size_t idx = ctx.block_id();
        const PolygonId pid = pairing.inside.pid_v[idx];
        PointZonalRow acc;
        const std::uint64_t pos = pairing.inside.pos_v[idx];
        for (std::uint64_t k = 0; k < pairing.inside.num_v[idx]; ++k) {
          const TileId tile = pairing.inside.tid_v[pos + k];
          for (std::uint32_t i = index.tile_begin[tile];
               i < index.tile_begin[tile + 1]; ++i) {
            const std::uint32_t pt = index.point_ids[i];
            ++acc.count;
            acc.weight_sum += weight_of(points, pt);
          }
        }
        bucket_points.fetch_add(acc.count, std::memory_order_relaxed);
        rows[pid].count += acc.count;
        rows[pid].weight_sum += acc.weight_sum;
      });

  // Boundary tiles: ray-crossing test per point (the Step-4 analog).
  device.launch(
      static_cast<std::uint32_t>(pairing.intersect.group_count()),
      [&](const BlockContext& ctx) {
        const std::size_t idx = ctx.block_id();
        const PolygonId pid = pairing.intersect.pid_v[idx];
        const auto [p_f, p_t] = soa.vertex_range(pid);
        PointZonalRow acc;
        std::uint64_t tests = 0;
        const std::uint64_t pos = pairing.intersect.pos_v[idx];
        for (std::uint64_t k = 0; k < pairing.intersect.num_v[idx]; ++k) {
          const TileId tile = pairing.intersect.tid_v[pos + k];
          for (std::uint32_t i = index.tile_begin[tile];
               i < index.tile_begin[tile + 1]; ++i) {
            const std::uint32_t pt = index.point_ids[i];
            ++tests;
            if (point_in_polygon_soa_raw(soa.x_v().data(),
                                         soa.y_v().data(), p_f, p_t,
                                         points.x[pt], points.y[pt])) {
              ++acc.count;
              acc.weight_sum += weight_of(points, pt);
            }
          }
        }
        pip_tests.fetch_add(tests, std::memory_order_relaxed);
        rows[pid].count += acc.count;
        rows[pid].weight_sum += acc.weight_sum;
      });

  if (counters != nullptr) {
    counters->points_in_inside_tiles = bucket_points.load();
    counters->pip_point_tests = pip_tests.load();
  }
  return rows;
}

std::vector<PointZonalRow> zonal_point_summation_reference(
    const PointSet& points, const PolygonSet& polygons) {
  ZH_REQUIRE(points.weight.empty() || points.weight.size() == points.size(),
             "weight array must be empty or match point count");
  std::vector<PointZonalRow> rows(polygons.size());
  ThreadPool::global().parallel_for(
      polygons.size(), [&](std::size_t b, std::size_t e) {
        for (std::size_t z = b; z < e; ++z) {
          const Polygon& poly = polygons[static_cast<PolygonId>(z)];
          const GeoBox mbr = poly.mbr();
          PointZonalRow acc;
          for (std::size_t i = 0; i < points.size(); ++i) {
            if (!mbr.contains(GeoPoint{points.x[i], points.y[i]})) {
              continue;
            }
            if (point_in_polygon(poly, {points.x[i], points.y[i]})) {
              ++acc.count;
              acc.weight_sum += weight_of(points, i);
            }
          }
          rows[z] = acc;
        }
      });
  return rows;
}

}  // namespace zh
