#include "core/cluster_driver.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <cstring>
#include <mutex>

#include "core/load_balance.hpp"
#include "obs/obs.hpp"

namespace zh {

namespace {

using Clock = Deadline::Clock;

// Protocol tags of the fault-tolerant mode (worker <-> master).
constexpr int kTagHeartbeat = 100;  ///< worker -> master: u32 partition index
constexpr int kTagResult = 101;  ///< worker -> master: u32 index + histogram
constexpr int kTagMore = 102;    ///< worker -> master: request for more work
constexpr int kTagAssign = 103;  ///< master -> worker: u32 list (empty=done)
constexpr int kTagMetrics = 104;  ///< worker -> master: one RankMetricsRow
constexpr int kTagTrace = 105;  ///< worker -> master: zh-trace-frame v1 blob

std::vector<std::byte> encode_result(std::uint32_t part_index,
                                     std::span<const BinCount> bins) {
  std::vector<std::byte> bytes(sizeof(part_index) + bins.size_bytes());
  std::memcpy(bytes.data(), &part_index, sizeof(part_index));
  std::memcpy(bytes.data() + sizeof(part_index), bins.data(),
              bins.size_bytes());
  return bytes;
}

// Accumulate a completed partition's work into a rank's metrics row.
void tally_work(RankMetricsRow& row, const WorkCounters& work) {
  row.cells_histogrammed += work.cells_total;
  row.pip_cell_tests += work.pip_cell_tests;
  row.bytes_decoded += work.compressed_bytes;
}

// Fold one partition's wall time into a rank's latency columns and the
// live registry histogram the /metrics endpoint serves.
void tally_latency(RankMetricsRow& row, double seconds) {
  ZH_LATENCY_RECORD("latency.partition", seconds);
  const std::uint64_t us = static_cast<std::uint64_t>(seconds * 1e6);
  row.latency_us_sum += us;
  row.latency_us_max = std::max(row.latency_us_max, us);
}

}  // namespace

std::vector<std::string> rank_metrics_columns() {
  return {"partitions",     "heartbeats",    "results",
          "retries",        "comm_bytes",    "cells_histogrammed",
          "pip_cell_tests", "bytes_decoded", "latency_us_sum",
          "latency_us_max", "reported"};
}

std::vector<std::uint64_t> rank_metrics_values(const RankMetricsRow& row) {
  return {row.partitions_processed,
          row.heartbeats_sent,
          row.results_sent,
          row.retries,
          row.comm_bytes_sent,
          row.cells_histogrammed,
          row.pip_cell_tests,
          row.bytes_decoded,
          row.latency_us_sum,
          row.latency_us_max,
          row.reported};
}

ClusterRunResult run_cluster_zonal(
    const std::vector<DemRaster>& rasters,
    const std::vector<std::pair<int, int>>& schemas,
    const PolygonSet& polygons, const ClusterRunConfig& config) {
  ZH_REQUIRE(rasters.size() == schemas.size(),
             "one partition schema per raster required");
  ZH_REQUIRE(config.ranks >= 1, "need at least one rank");
  ZH_TRACE_SPAN("cluster.run_zonal", "cluster");
  const FaultToleranceConfig& ft = config.fault_tolerance;
  const CheckpointConfig& ck = config.checkpoint;
  ZH_REQUIRE(!ck.enabled() || ft.enabled,
             "checkpoint/resume requires fault-tolerant mode (only the "
             "supervised master accepts partitions one by one)");

  // Build the global partition list (tile-aligned) and assign owners.
  std::vector<RasterPartition> parts;
  for (std::size_t i = 0; i < rasters.size(); ++i) {
    const auto windows = grid_partition(
        rasters[i].rows(), rasters[i].cols(), schemas[i].first,
        schemas[i].second, config.zonal.tile_size);
    for (const CellWindow& w : windows) {
      parts.push_back(
          RasterPartition{static_cast<std::uint32_t>(i), w, 0});
    }
  }
  // Partition costs drive both the cost-balanced initial assignment and
  // the LPT ordering of reassigned work in fault-tolerant mode.
  std::vector<double> costs;
  if (config.assignment == PartitionAssignment::kCostBalanced ||
      ft.enabled) {
    std::vector<GeoTransform> transforms;
    transforms.reserve(rasters.size());
    for (const DemRaster& r : rasters) transforms.push_back(r.transform());
    costs = estimate_partition_costs(parts, transforms,
                                     config.zonal.tile_size, polygons);
  }
  if (config.assignment == PartitionAssignment::kCostBalanced) {
    assign_least_loaded(parts, config.ranks, costs);
  } else {
    assign_round_robin(parts, config.ranks);
  }

  const PolygonSoA soa = PolygonSoA::build(polygons);

  ClusterRunResult result;
  result.per_rank.assign(config.ranks, StepTimes{});
  result.per_rank_work.assign(config.ranks, WorkCounters{});
  result.rank_seconds.assign(config.ranks, 0.0);
  result.rank_outcomes.assign(config.ranks, RankOutcome{});
  result.rank_metrics.assign(config.ranks, RankMetricsRow{});
  std::mutex result_mutex;
  std::atomic<std::uint64_t> comm_bytes{0};
  constexpr RankId kRoot = 0;

  const auto compute_partition = [&](ZonalPipeline& pipeline,
                                     ZonalWorkspace& workspace,
                                     std::uint32_t index) {
    ZH_TRACE_SPAN("cluster.partition", "cluster");
    const RasterPartition& part = parts[index];
    const DemRaster& src = rasters[part.raster_index];
    const DemRaster window = src.copy_window(part.window);
    if (config.compress) {
      const BqCompressedRaster compressed =
          BqCompressedRaster::encode(window, config.zonal.tile_size);
      return pipeline.run(compressed, polygons, &workspace);
    }
    return pipeline.run(window, polygons, soa, &workspace);
  };

  if (!ft.enabled) {
    // Static mode: the paper's fixed-assignment run with one final
    // reduce. No failure handling -- any rank error fails the job.
    run_cluster(config.ranks, [&](Communicator& comm) {
      const RankId me = comm.rank();
      Timer wall;

      // Each rank gets its own virtual device (one accelerator per node,
      // as on Titan).
      Device device(config.device_profile);
      ZonalPipeline pipeline(device, config.zonal);

      HistogramSet local(polygons.size(), config.zonal.bins);
      StepTimes times;
      WorkCounters work;
      std::uint32_t done = 0;
      ZonalWorkspace workspace;  // per-tile table reused across partitions
      RankMetricsRow row;  // latency columns tallied as partitions finish

      for (std::uint32_t i = 0; i < parts.size(); ++i) {
        if (parts[i].owner != me) continue;
        Timer part_timer;
        const ZonalResult r = compute_partition(pipeline, workspace, i);
        tally_latency(row, part_timer.seconds());
        local.add(r.per_polygon);
        times += r.times;
        work += r.work;
        ++done;
      }

      // Master-side merge: element-wise sum of per-polygon histograms
      // ("the master node was used to combine per-polygon histograms").
      const std::vector<BinCount> merged =
          comm.reduce_sum<BinCount>(kRoot, local.flat());
      const double rank_wall = wall.seconds();

      // Per-rank metrics row, gathered into the master's table. Filled
      // before its own gather so comm_bytes excludes the row's message.
      row.partitions_processed = done;
      row.retries = comm.retries();
      row.comm_bytes_sent = comm.bytes_sent();
      tally_work(row, work);
      row.reported = 1;
      const std::vector<std::vector<RankMetricsRow>> rows =
          comm.gather<RankMetricsRow>(
              kRoot, std::span<const RankMetricsRow>(&row, 1), kTagMetrics);

      // Gather per-rank trace buffers next to the metrics rows so a
      // traced run exports one merged cluster timeline. Rank
      // attribution is pinned at flush time (take_thread_events), never
      // by the ingesting thread.
      if (obs::trace_enabled()) {
        const std::vector<std::byte> blob = obs::encode_trace_events(
            obs::take_thread_events(static_cast<std::int32_t>(me)));
        const std::vector<std::vector<std::byte>> blobs =
            comm.gather<std::byte>(kRoot, std::span<const std::byte>(blob),
                                   kTagTrace);
        if (me == kRoot) {
          for (const std::vector<std::byte>& b : blobs) {
            obs::ingest_trace_events(b);
          }
        }
      }

      {
        std::lock_guard lock(result_mutex);
        result.per_rank[me] = times;
        result.per_rank_work[me] = work;
        result.rank_seconds[me] = rank_wall;
        result.rank_outcomes[me].partitions_completed = done;
        result.work += work;
        if (me == kRoot) {
          result.merged = HistogramSet(polygons.size(), config.zonal.bins);
          std::copy(merged.begin(), merged.end(),
                    result.merged.flat().begin());
          for (RankId r = 0; r < comm.size(); ++r) {
            if (rows[r].size() == 1) result.rank_metrics[r] = rows[r][0];
          }
        }
      }
      comm_bytes.fetch_add(comm.bytes_sent(), std::memory_order_relaxed);
    });

    result.comm_bytes = comm_bytes.load();
    for (const double s : result.rank_seconds) {
      result.wall_seconds = std::max(result.wall_seconds, s);
    }
    return result;
  }

  // ---- Fault-tolerant mode: supervised master-worker dispatch. ----
  //
  // Workers stream one result message per partition; the master
  // accumulates each partition exactly once (first copy wins), so
  // duplicate deliveries, straggler late results, and recomputation
  // after reassignment all stay exact. Completion is idempotent per
  // partition index -- the whole recovery scheme rests on that.
  result.merged = HistogramSet(polygons.size(), config.zonal.bins);

  // Resume state: partitions a previous generation journaled are marked
  // done up front and their merged contribution preloaded, so this run
  // dispatches only the remainder yet merges bit-identically.
  std::vector<char> resumed(parts.size(), 0);
  for (const std::uint32_t index : ck.completed_partitions) {
    ZH_REQUIRE(index < parts.size(), "resume partition index ", index,
               " out of range for ", parts.size(), " partitions");
    ZH_REQUIRE(resumed[index] == 0, "resume partition index ", index,
               " listed twice");
    resumed[index] = 1;
  }
  result.partitions_skipped = ck.completed_partitions.size();
  if (!ck.completed_partitions.empty()) {
    auto flat = result.merged.flat();
    ZH_REQUIRE(ck.resume_bins.size() == flat.size(),
               "resume histogram size mismatch: got ", ck.resume_bins.size(),
               " bins, expected ", flat.size());
    std::copy(ck.resume_bins.begin(), ck.resume_bins.end(), flat.begin());
    ZH_COUNTER_ADD("journal.partitions_skipped",
                   ck.completed_partitions.size());
  }

  ClusterOptions options;
  options.faults = ft.faults;
  options.tolerate_rank_crash = true;

  // Crash fates are recorded by the dying ranks themselves (one writer
  // per element): the master can finish before it observes a death that
  // happened after the rank's last useful message, so its view alone
  // would make the outcome table timing-dependent.
  std::vector<char> rank_crashed(config.ranks, 0);
  std::vector<RankOutcome> master_outcome(config.ranks);

  run_cluster(config.ranks, options, [&](Communicator& comm) {
    const RankId me = comm.rank();
    Timer wall;
    Device device(config.device_profile);
    ZonalPipeline pipeline(device, config.zonal);
    ZonalWorkspace workspace;

    // Flush accounting after every partition, not at the end: a rank
    // that crashes later keeps what it already contributed.
    const auto flush = [&](const ZonalResult& r) {
      std::lock_guard lock(result_mutex);
      result.per_rank[me] += r.times;
      result.per_rank_work[me] += r.work;
      result.work += r.work;
    };

    if (me != kRoot) {
      RankMetricsRow row;
      // Stream this rank's trace buffer to the master incrementally
      // (after every partition plus once at the end), so a rank that
      // later crashes has already contributed everything it flushed.
      // Rank attribution is pinned here, at flush time -- the ingesting
      // thread (possibly the master after takeover) must never re-stamp.
      const auto flush_trace = [&] {
        if (!obs::trace_enabled()) return;
        const std::vector<obs::TraceEvent> events =
            obs::take_thread_events(static_cast<std::int32_t>(me));
        if (events.empty()) return;
        comm.send_bytes(kRoot, kTagTrace, obs::encode_trace_events(events));
      };
      try {
        comm.checkpoint(CrashPoint::kStartup);
        const auto process = [&](std::uint32_t index) {
          comm.checkpoint(CrashPoint::kPartitionStart);
          comm.send<std::uint32_t>(
              kRoot, kTagHeartbeat,
              std::span<const std::uint32_t>(&index, 1));
          ++row.heartbeats_sent;
          Timer part_timer;
          const ZonalResult r =
              compute_partition(pipeline, workspace, index);
          tally_latency(row, part_timer.seconds());
          comm.checkpoint(CrashPoint::kPartitionDone);
          comm.send_bytes(kRoot, kTagResult,
                          encode_result(index, r.per_polygon.flat()));
          ++row.results_sent;
          comm.checkpoint(CrashPoint::kResultSent);
          ++row.partitions_processed;
          tally_work(row, r.work);
          flush(r);
          flush_trace();
        };
        for (std::uint32_t i = 0; i < parts.size(); ++i) {
          // Journaled partitions need no recomputation -- the master
          // preloaded their contribution from the resume state.
          if (parts[i].owner == me && resumed[i] == 0) process(i);
        }
        // Pull loop: ask for reassigned work until the master says done.
        for (;;) {
          comm.send_bytes(kRoot, kTagMore, {});
          const std::vector<std::uint32_t> assigned =
              comm.recv<std::uint32_t>(kRoot, kTagAssign);
          if (assigned.empty()) break;
          for (const std::uint32_t index : assigned) process(index);
        }
        comm.checkpoint(CrashPoint::kBeforeFinish);
        // The metrics row travels after the last crash checkpoint: a
        // scripted kBeforeFinish crash leaves the row unreported, which
        // is exactly what the master's table should show.
        row.retries = comm.retries();
        row.comm_bytes_sent = comm.bytes_sent();
        row.reported = 1;
        comm.send<RankMetricsRow>(
            kRoot, kTagMetrics, std::span<const RankMetricsRow>(&row, 1));
        // Final trace flush travels after the metrics row; anything
        // recorded past this point retires with the thread and is still
        // visible in the in-process snapshot.
        flush_trace();
      } catch (const RankCrash&) {
        rank_crashed[me] = 1;  // sole writer of this element
        throw;
      }
      {
        std::lock_guard lock(result_mutex);
        result.rank_seconds[me] = wall.seconds();
      }
      comm_bytes.fetch_add(comm.bytes_sent(), std::memory_order_relaxed);
      return;
    }

    // ---- Master: compute own partitions, then supervise workers. ----
    const std::size_t total = parts.size();
    std::vector<char> completed(total, 0);
    std::size_t completed_count = 0;
    for (std::uint32_t i = 0; i < total; ++i) {
      if (resumed[i] != 0) {
        completed[i] = 1;
        ++completed_count;
      }
    }
    std::vector<RankOutcome> outcome(comm.size());

    const auto accumulate = [&](std::uint32_t index,
                                std::span<const BinCount> bins) {
      if (completed[index] != 0) return false;  // first copy wins
      completed[index] = 1;
      ++completed_count;
      auto flat = result.merged.flat();
      ZH_REQUIRE(bins.size() == flat.size(),
                 "partition result size mismatch: got ", bins.size(),
                 " bins, expected ", flat.size());
      for (std::size_t i = 0; i < flat.size(); ++i) flat[i] += bins[i];
      // Journal-before-acknowledge: the acceptance becomes durable
      // before the master acts on it (serving more work, finishing the
      // run), so a process death after this point never forgets an
      // acknowledged partition. Runs on the master thread only.
      if (ck.sink != nullptr) ck.sink->on_partition_complete(index, bins);
      return true;
    };

    RankMetricsRow master_row;  // staging for rows[kRoot] latency columns
    const auto compute_own = [&](std::uint32_t index) {
      Timer part_timer;
      const ZonalResult r = compute_partition(pipeline, workspace, index);
      tally_latency(master_row, part_timer.seconds());
      accumulate(index, r.per_polygon.flat());
      ++outcome[kRoot].partitions_completed;
      flush(r);
    };

    for (std::uint32_t i = 0; i < parts.size(); ++i) {
      if (parts[i].owner == kRoot && resumed[i] == 0) compute_own(i);
    }

    // Worker supervision state.
    enum class WState : std::uint8_t { kActive, kParked, kDead };
    std::vector<WState> wstate(comm.size(), WState::kActive);
    std::vector<Clock::time_point> last_seen(comm.size(), Clock::now());
    std::vector<std::vector<std::uint32_t>> open(comm.size());
    for (std::uint32_t i = 0; i < parts.size(); ++i) {
      if (parts[i].owner != kRoot && resumed[i] == 0) {
        open[parts[i].owner].push_back(i);
      }
    }
    std::vector<std::uint32_t> orphans;  // kept cost-descending (LPT)
    std::vector<char> sent_done(comm.size(), 0);

    const auto send_done = [&](RankId r) {
      if (sent_done[r] != 0) return;
      comm.send<std::uint32_t>(r, kTagAssign, {});
      sent_done[r] = 1;
    };
    const auto declare_dead = [&](RankId r, RankState state) {
      wstate[r] = WState::kDead;
      outcome[r].state = state;
      for (const std::uint32_t index : open[r]) {
        if (completed[index] == 0) {
          orphans.push_back(index);
          ++outcome[r].partitions_reassigned;
        }
      }
      open[r].clear();
      ZH_COUNTER_ADD("cluster.reassigned_partitions",
                     outcome[r].partitions_reassigned);
      if (state == RankState::kTimedOut) {
        ZH_COUNTER_ADD("cluster.heartbeat_misses", 1);
      }
      std::stable_sort(orphans.begin(), orphans.end(),
                       [&](std::uint32_t a, std::uint32_t b) {
                         return costs[a] > costs[b];
                       });
      // A timed-out rank may merely be a straggler: release it so it
      // exits once it surfaces instead of waiting for work forever.
      if (state == RankState::kTimedOut) send_done(r);
    };
    // Hand the largest orphaned partition to `r` (LPT greedy: the
    // requester is by construction the least-loaded survivor).
    const auto serve = [&](RankId r) {
      while (!orphans.empty() && completed[orphans.front()] != 0) {
        orphans.erase(orphans.begin());  // stale entry, already done
      }
      if (orphans.empty()) return false;
      const std::uint32_t index = orphans.front();
      orphans.erase(orphans.begin());
      comm.send<std::uint32_t>(r, kTagAssign,
                               std::span<const std::uint32_t>(&index, 1));
      open[r].push_back(index);
      wstate[r] = WState::kActive;
      last_seen[r] = Clock::now();
      return true;
    };

    constexpr std::array<int, 4> kTags{kTagHeartbeat, kTagResult, kTagMore,
                                       kTagTrace};
    const std::int64_t poll_ms =
        std::clamp<std::int64_t>(ft.worker_timeout_ms / 10, 1, 20);
    const auto handle = [&](const AnyMessage& msg) {
      last_seen[msg.src] = Clock::now();
      if (msg.tag == kTagHeartbeat) {
        ++outcome[msg.src].heartbeats;
      } else if (msg.tag == kTagResult) {
        ZH_REQUIRE(msg.payload.size() >= sizeof(std::uint32_t),
                   "short partition result from rank ", msg.src);
        std::uint32_t index = 0;
        std::memcpy(&index, msg.payload.data(), sizeof(index));
        ZH_REQUIRE(index < total, "partition index ", index,
                   " out of range from rank ", msg.src);
        const std::size_t nbins =
            (msg.payload.size() - sizeof(index)) / sizeof(BinCount);
        std::vector<BinCount> bins(nbins);
        std::memcpy(bins.data(), msg.payload.data() + sizeof(index),
                    nbins * sizeof(BinCount));
        if (accumulate(index, bins)) {
          ++outcome[msg.src].partitions_completed;
        }
        auto& mine = open[msg.src];
        mine.erase(std::remove(mine.begin(), mine.end(), index),
                   mine.end());
      } else if (msg.tag == kTagTrace) {
        // Merge the worker's flushed trace buffer as it arrives;
        // duplicate deliveries of the same frame are deduplicated
        // inside ingest, and rank attribution travels in the frame.
        obs::ingest_trace_events(msg.payload);
      } else {  // kTagMore
        if (!serve(msg.src)) {
          if (completed_count == total) {
            send_done(msg.src);
          } else {
            // Hold the request: reassignable work may still appear if
            // another rank dies. Parked ranks are excluded from the
            // silence check -- they are waiting on us.
            wstate[msg.src] = WState::kParked;
          }
        }
      }
    };
    while (completed_count < total) {
      // Trigger retransmission of protocol messages dropped in transit.
      for (RankId r = 1; r < comm.size(); ++r) {
        if (wstate[r] == WState::kDead) continue;
        for (const int tag : kTags) comm.recover_lost(r, tag);
      }
      AnyMessage msg;
      const Status s =
          comm.recv_any(kTags, Deadline::after_ms(poll_ms), msg);
      const Clock::time_point now = Clock::now();
      if (s.is_ok()) handle(msg);
      // Death detection: crashed ranks are flagged by the runtime; a
      // silent-but-alive rank (straggler) is declared dead after the
      // heartbeat window.
      for (RankId r = 1; r < comm.size(); ++r) {
        if (wstate[r] == WState::kDead) continue;
        if (comm.rank_dead(r)) {
          // Everything the rank sent before dying is already enqueued
          // (in-process sends are synchronous). Drain it first so
          // finished partitions are credited to the rank instead of
          // being orphaned and recomputed.
          for (const int tag : kTags) comm.recover_lost(r, tag);
          AnyMessage pending;
          while (comm.recv_any(kTags, Deadline::after_ms(0), pending)
                     .is_ok()) {
            handle(pending);
          }
          declare_dead(r, RankState::kCrashed);
        } else if (wstate[r] == WState::kActive &&
                   now - last_seen[r] >
                       std::chrono::milliseconds(ft.worker_timeout_ms)) {
          declare_dead(r, RankState::kTimedOut);
        }
      }
      // Reassign orphaned work to parked survivors (LPT order).
      for (RankId r = 1; r < comm.size() && !orphans.empty(); ++r) {
        if (wstate[r] == WState::kParked) serve(r);
      }
      while (!orphans.empty() && completed[orphans.front()] != 0) {
        orphans.erase(orphans.begin());
      }
      bool any_live = false;
      for (RankId r = 1; r < comm.size(); ++r) {
        any_live = any_live || wstate[r] != WState::kDead;
      }
      if (!orphans.empty() && !any_live) {
        if (!ft.master_takeover) break;  // degraded: coverage gap reported
        const std::vector<std::uint32_t> leftover = std::move(orphans);
        orphans.clear();
        for (const std::uint32_t index : leftover) {
          if (completed[index] == 0) compute_own(index);
        }
      }
      if (!any_live && orphans.empty() && completed_count < total) {
        break;  // defensive: nothing can make progress any more
      }
    }

    // Wind down: release every worker we have not released yet. Crashed
    // ranks never read their mailbox again; the send is harmless.
    for (RankId r = 1; r < comm.size(); ++r) send_done(r);

    // Drain the per-rank metrics rows. Released survivors send theirs
    // after their last checkpoint; the recv retry path recovers dropped
    // rows, and a crashed rank fails fast with kRankDead -- its row
    // stays defaulted (reported == 0).
    std::vector<RankMetricsRow> rows(comm.size());
    for (RankId r = 1; r < comm.size(); ++r) {
      std::vector<RankMetricsRow> got;
      const Status s =
          comm.recv<RankMetricsRow>(r, kTagMetrics,
                                    Deadline::after_ms(ft.worker_timeout_ms),
                                    got, ft.retry);
      if (s.is_ok() && got.size() == 1) rows[r] = got[0];
    }

    // Drain trace blobs still in flight (final flushes of released
    // ranks, plus anything a dead rank sent before dying). recover_lost
    // retransmits frames parked by drop faults first, so every "s" flow
    // half that reached the wire makes it into the merged timeline --
    // otherwise the receiver-side "f" events would dangle.
    if (obs::trace_enabled()) {
      constexpr std::array<int, 1> kTraceOnly{kTagTrace};
      for (RankId r = 1; r < comm.size(); ++r) {
        comm.recover_lost(r, kTagTrace);
      }
      const std::int64_t drain_ms =
          std::max<std::int64_t>(poll_ms, ft.faults.delay_ms + 10);
      AnyMessage blob;
      while (comm.recv_any(kTraceOnly, Deadline::after_ms(drain_ms), blob)
                 .is_ok()) {
        obs::ingest_trace_events(blob.payload);
      }
    }

    {
      std::lock_guard lock(result_mutex);
      rows[kRoot].partitions_processed = outcome[kRoot].partitions_completed;
      rows[kRoot].retries = comm.retries();
      rows[kRoot].comm_bytes_sent = comm.bytes_sent();
      tally_work(rows[kRoot], result.per_rank_work[kRoot]);
      rows[kRoot].latency_us_sum = master_row.latency_us_sum;
      rows[kRoot].latency_us_max = master_row.latency_us_max;
      rows[kRoot].reported = 1;
      for (RankId r = 0; r < comm.size(); ++r) {
        result.rank_metrics[r] = rows[r];
      }
      // Fates are merged with the worker-recorded crash flags after the
      // cluster joins; here only the master-side counters are staged.
      for (RankId r = 0; r < comm.size(); ++r) master_outcome[r] = outcome[r];
      result.degraded = completed_count < total;
      for (std::uint32_t i = 0; i < total; ++i) {
        if (completed[i] == 0) result.incomplete_partitions.push_back(i);
      }
      result.rank_seconds[kRoot] = wall.seconds();
    }
    comm_bytes.fetch_add(comm.bytes_sent(), std::memory_order_relaxed);
  });

  // Merge fates now that every rank has joined: a worker's own crash
  // record wins over the master's (possibly unfinished) observation, so
  // the outcome table is deterministic even when the run completes
  // before the master notices a post-result crash.
  for (RankId r = 0; r < config.ranks; ++r) {
    RankOutcome o = master_outcome[r];
    if (rank_crashed[r] != 0) o.state = RankState::kCrashed;
    result.rank_outcomes[r] = o;
  }

  result.comm_bytes = comm_bytes.load();
  for (const double s : result.rank_seconds) {
    result.wall_seconds = std::max(result.wall_seconds, s);
  }
  return result;
}

}  // namespace zh
