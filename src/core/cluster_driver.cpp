#include "core/cluster_driver.hpp"

#include <atomic>
#include <mutex>

#include "core/load_balance.hpp"

namespace zh {

ClusterRunResult run_cluster_zonal(
    const std::vector<DemRaster>& rasters,
    const std::vector<std::pair<int, int>>& schemas,
    const PolygonSet& polygons, const ClusterRunConfig& config) {
  ZH_REQUIRE(rasters.size() == schemas.size(),
             "one partition schema per raster required");
  ZH_REQUIRE(config.ranks >= 1, "need at least one rank");

  // Build the global partition list (tile-aligned) and assign owners.
  std::vector<RasterPartition> parts;
  for (std::size_t i = 0; i < rasters.size(); ++i) {
    const auto windows = grid_partition(
        rasters[i].rows(), rasters[i].cols(), schemas[i].first,
        schemas[i].second, config.zonal.tile_size);
    for (const CellWindow& w : windows) {
      parts.push_back(
          RasterPartition{static_cast<std::uint32_t>(i), w, 0});
    }
  }
  if (config.assignment == PartitionAssignment::kCostBalanced) {
    std::vector<GeoTransform> transforms;
    transforms.reserve(rasters.size());
    for (const DemRaster& r : rasters) transforms.push_back(r.transform());
    const std::vector<double> costs = estimate_partition_costs(
        parts, transforms, config.zonal.tile_size, polygons);
    assign_least_loaded(parts, config.ranks, costs);
  } else {
    assign_round_robin(parts, config.ranks);
  }

  const PolygonSoA soa = PolygonSoA::build(polygons);

  ClusterRunResult result;
  result.per_rank.assign(config.ranks, StepTimes{});
  result.per_rank_work.assign(config.ranks, WorkCounters{});
  result.rank_seconds.assign(config.ranks, 0.0);
  std::mutex result_mutex;
  std::atomic<std::uint64_t> comm_bytes{0};
  constexpr RankId kRoot = 0;

  run_cluster(config.ranks, [&](Communicator& comm) {
    const RankId me = comm.rank();
    Timer wall;

    // Each rank gets its own virtual device (one accelerator per node,
    // as on Titan).
    Device device(config.device_profile);
    ZonalPipeline pipeline(device, config.zonal);

    HistogramSet local(polygons.size(), config.zonal.bins);
    StepTimes times;
    WorkCounters work;
    ZonalWorkspace workspace;  // per-tile table reused across partitions

    for (const RasterPartition& part : parts) {
      if (part.owner != me) continue;
      const DemRaster& src = rasters[part.raster_index];
      const DemRaster window = src.copy_window(part.window);
      ZonalResult r;
      if (config.compress) {
        const BqCompressedRaster compressed =
            BqCompressedRaster::encode(window, config.zonal.tile_size);
        r = pipeline.run(compressed, polygons, &workspace);
      } else {
        r = pipeline.run(window, polygons, soa, &workspace);
      }
      local.add(r.per_polygon);
      times += r.times;
      work += r.work;
    }

    // Master-side merge: element-wise sum of per-polygon histograms
    // ("the master node was used to combine per-polygon histograms").
    const std::vector<BinCount> merged =
        comm.reduce_sum<BinCount>(kRoot, local.flat());
    const double rank_wall = wall.seconds();

    {
      std::lock_guard lock(result_mutex);
      result.per_rank[me] = times;
      result.per_rank_work[me] = work;
      result.rank_seconds[me] = rank_wall;
      result.work += work;
      if (me == kRoot) {
        result.merged = HistogramSet(polygons.size(), config.zonal.bins);
        std::copy(merged.begin(), merged.end(),
                  result.merged.flat().begin());
      }
    }
    comm_bytes.fetch_add(comm.bytes_sent(), std::memory_order_relaxed);
  });

  result.comm_bytes = comm_bytes.load();
  for (const double s : result.rank_seconds) {
    result.wall_seconds = std::max(result.wall_seconds, s);
  }
  return result;
}

}  // namespace zh
