// Hybrid two-device execution of the refinement step.
//
// The authors' companion work (paper ref [20]) runs zonal summations on
// *hybrid CPU-GPU systems*: the dominant per-cell refinement splits
// between the accelerator and the host cores. This module reproduces
// that scheme for Step 4: the intersect groups are partitioned by
// estimated cost (edge tests) into a primary-device share and a
// secondary-device share, the two refinements run concurrently, and the
// partial histograms merge additively. Steps 0-3 stay on the primary
// device (they are cheap or bandwidth-bound). Results are identical to
// single-device execution for any split fraction.
#pragma once

#include "core/pipeline.hpp"

namespace zh {

struct HybridConfig {
  ZonalConfig zonal;
  /// Fraction of Step-4 work routed to the primary device; the rest
  /// goes to the secondary. Negative = derive from the two device
  /// profiles' modeled Step-4 speeds.
  double primary_fraction = -1.0;
};

struct HybridResult {
  HistogramSet per_polygon;
  StepTimes times;          ///< Step 4 = max of the two devices' shares
  WorkCounters work;
  double primary_fraction = 0.0;   ///< the fraction actually used
  double primary_seconds = 0.0;    ///< measured Step-4 share times
  double secondary_seconds = 0.0;
};

/// Run the pipeline with Step 4 split across two devices.
[[nodiscard]] HybridResult run_hybrid(Device& primary, Device& secondary,
                                      const DemRaster& raster,
                                      const PolygonSet& polygons,
                                      const HybridConfig& config);

}  // namespace zh
