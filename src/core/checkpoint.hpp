// Checkpoint/resume contract between the cluster driver and a durable
// journal. The layering DAG forbids core from including io, so the driver
// only sees this abstract sink; the crash-consistent file implementation
// (JournalWriter, src/io/journal.hpp) lives one layer up and is wired in
// by the caller (zhist, tests). DESIGN.md section 5d documents the
// durability semantics.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.hpp"

namespace zh {

/// Durable sink the master notifies as it accepts partition results.
class CheckpointSink {
 public:
  CheckpointSink() = default;
  CheckpointSink(const CheckpointSink&) = delete;
  CheckpointSink& operator=(const CheckpointSink&) = delete;
  CheckpointSink(CheckpointSink&&) = default;
  CheckpointSink& operator=(CheckpointSink&&) = default;
  virtual ~CheckpointSink() = default;

  /// Called on the master thread immediately after the first-copy-wins
  /// acceptance of partition `part_index`, before the master acts on the
  /// completion (journal-before-acknowledge). `bins` is the partition's
  /// flat per-polygon histogram (groups x bins). Implementations must
  /// make the record durable before returning, subject to their fsync
  /// batching policy; a throw fails the run.
  virtual void on_partition_complete(std::uint32_t part_index,
                                     std::span<const BinCount> bins) = 0;
};

/// Checkpoint wiring + resume state for run_cluster_zonal. Requires the
/// fault-tolerant mode (the static mode has no per-partition acceptance
/// to journal).
struct CheckpointConfig {
  /// Not owned; must outlive the run. Null disables journaling (a
  /// resume-only final run that starts with every partition completed
  /// needs no sink).
  CheckpointSink* sink = nullptr;
  /// Partition indices a previous generation already journaled; the
  /// driver marks them complete up front and dispatches only the rest.
  std::vector<std::uint32_t> completed_partitions;
  /// Flat per-polygon histogram (groups x bins) merged over
  /// completed_partitions, preloaded into the final merge so the result
  /// stays bit-identical to an uninterrupted run. Must be empty when
  /// completed_partitions is empty.
  std::vector<BinCount> resume_bins;

  [[nodiscard]] bool enabled() const {
    return sink != nullptr || !completed_partitions.empty();
  }
};

}  // namespace zh
