// Step 2: pairing raster tiles with polygons (Sec. III.B, Figs. 3-4).
//
// Spatial filtering: each polygon's MBB is rasterized onto the tile grid
// (the implicit grid-file index), producing candidate (tile, polygon)
// pairs; exact polygon-vs-tile-box classification then labels each pair
// outside (dropped), inside, or intersect. The Fig. 4 post-processing --
// stable_sort_by_key, stable_partition, reduce_by_key, exclusive scan --
// turns the labeled pair list into the (pid_v, num_v, pos_v, tid_v)
// block-dispatch arrays consumed by Steps 3 and 4.
#pragma once

#include <vector>

#include "common/types.hpp"
#include "geom/polygon.hpp"
#include "grid/tiling.hpp"

namespace zh {

/// Raw labeled candidate pairs (outside pairs already dropped).
struct TilePolygonPairs {
  std::vector<TileId> tile_ids;
  std::vector<PolygonId> polygon_ids;
  std::vector<TileRelation> relations;

  [[nodiscard]] std::size_t size() const { return tile_ids.size(); }
};

/// The dispatch arrays of Fig. 4 for one relation class: entry i says
/// polygon pid_v[i] owns the num_v[i] tiles at tid_v[pos_v[i] ...].
/// num_v/pos_v are 64-bit: pair_count() is a size_t, and on large
/// rasters x dense polygon sets the exclusive scan feeding pos_v can
/// exceed 2^32 -- 32-bit offsets would wrap silently.
struct PolygonTileGroups {
  std::vector<PolygonId> pid_v;
  std::vector<std::uint64_t> num_v;
  std::vector<std::uint64_t> pos_v;
  std::vector<TileId> tid_v;

  [[nodiscard]] std::size_t group_count() const { return pid_v.size(); }
  [[nodiscard]] std::size_t pair_count() const { return tid_v.size(); }
};

/// Step-2 output: inside groups feed Step 3, intersect groups feed
/// Step 4.
struct PairingResult {
  PolygonTileGroups inside;
  PolygonTileGroups intersect;
  std::size_t candidate_pairs = 0;  ///< pairs before classification
};

/// MBB rasterization + exact classification over all polygons (polygons
/// processed in parallel). The classification itself runs on the CPU as
/// in the paper ("we can realize this step on CPUs using well-established
/// computational geometry libraries").
[[nodiscard]] TilePolygonPairs pair_tiles_with_polygons(
    const PolygonSet& polygons, const TilingScheme& tiling,
    const GeoTransform& transform);

/// Fig. 4 primitive pipeline: sort pairs by (relation, polygon), partition
/// into inside/intersect, reduce_by_key for per-polygon tile counts, scan
/// for group offsets.
[[nodiscard]] PairingResult build_pairing_groups(TilePolygonPairs pairs);

/// Convenience: both phases.
[[nodiscard]] PairingResult pair_and_group(const PolygonSet& polygons,
                                           const TilingScheme& tiling,
                                           const GeoTransform& transform);

}  // namespace zh
