#include "core/pipeline.hpp"

#include "cluster/partition.hpp"
#include "core/step3_aggregate.hpp"
#include "obs/obs.hpp"

namespace zh {

void append_work_counters(obs::RunReport& report, const WorkCounters& work) {
  auto add = [&](const char* name, std::uint64_t v) {
    report.counters.emplace_back(name, v);
  };
  add("cells_total", work.cells_total);
  add("tiles_total", work.tiles_total);
  add("candidate_pairs", work.candidate_pairs);
  add("pairs_inside", work.pairs_inside);
  add("pairs_intersect", work.pairs_intersect);
  add("polygon_vertices", work.polygon_vertices);
  add("aggregate_bin_adds", work.aggregate_bin_adds);
  add("pip_cell_tests", work.pip_cell_tests);
  add("pip_edge_tests", work.pip_edge_tests);
  add("pip_rows_scanned", work.pip_rows_scanned);
  add("pip_run_cells", work.pip_run_cells);
  add("cells_in_polygons", work.cells_in_polygons);
  add("compressed_bytes", work.compressed_bytes);
  add("raw_bytes", work.raw_bytes);
}

WorkCounters& WorkCounters::operator+=(const WorkCounters& o) {
  cells_total += o.cells_total;
  tiles_total += o.tiles_total;
  candidate_pairs += o.candidate_pairs;
  pairs_inside += o.pairs_inside;
  pairs_intersect += o.pairs_intersect;
  polygon_vertices = std::max(polygon_vertices, o.polygon_vertices);
  aggregate_bin_adds += o.aggregate_bin_adds;
  pip_cell_tests += o.pip_cell_tests;
  pip_edge_tests += o.pip_edge_tests;
  pip_rows_scanned += o.pip_rows_scanned;
  pip_run_cells += o.pip_run_cells;
  cells_in_polygons += o.cells_in_polygons;
  compressed_bytes += o.compressed_bytes;
  raw_bytes += o.raw_bytes;
  return *this;
}

ZonalResult ZonalPipeline::run(const DemRaster& raster,
                               const PolygonSet& polygons,
                               ZonalWorkspace* workspace) const {
  const PolygonSoA soa = PolygonSoA::build(polygons);
  return run(raster, polygons, soa, workspace);
}

ZonalResult ZonalPipeline::run(const DemRaster& raster,
                               const PolygonSet& polygons,
                               const PolygonSoA& soa,
                               ZonalWorkspace* workspace) const {
  ZH_REQUIRE(soa.polygon_count() == polygons.size(),
             "SoA does not match polygon set");
  ZH_TRACE_SPAN("pipeline.run", "pipeline");
  ZonalResult result;
  result.per_polygon = HistogramSet(polygons.size(), config_.bins);
  result.work.polygon_vertices = polygons.vertex_count();
  result.work.cells_total = static_cast<std::uint64_t>(raster.cell_count());
  result.work.raw_bytes =
      static_cast<std::uint64_t>(raster.cell_count()) * sizeof(CellValue);

  const TilingScheme tiling(raster.rows(), raster.cols(),
                            config_.tile_size);
  result.work.tiles_total = tiling.tile_count();
  Timer timer;

  // Step 1: per-tile histograms (independent of the polygon layer). The
  // table lives in the caller's workspace when one is supplied, so
  // successive runs reuse the (potentially multi-GB) allocation.
  timer.reset();
  ZonalWorkspace local_ws;
  ZonalWorkspace& ws = workspace != nullptr ? *workspace : local_ws;
  tile_histograms_into(*device_, raster, tiling, config_.bins,
                       config_.count_mode, ws.tile_hist,
                       config_.cell_order);
  const HistogramSet& tile_hist = ws.tile_hist;
  result.times.seconds[1] = timer.seconds();
  ZH_LATENCY_RECORD("latency.step1", result.times.seconds[1]);

  // Step 2: MBB rasterization + tile classification + Fig. 4 grouping.
  timer.reset();
  const PairingResult pairing =
      pair_and_group(polygons, tiling, raster.transform());
  result.times.seconds[2] = timer.seconds();
  ZH_LATENCY_RECORD("latency.step2", result.times.seconds[2]);
  result.work.candidate_pairs = pairing.candidate_pairs;
  result.work.pairs_inside = pairing.inside.pair_count();
  result.work.pairs_intersect = pairing.intersect.pair_count();

  // Step 3: aggregate completely-inside tile histograms.
  timer.reset();
  aggregate_inside_tiles(*device_, pairing.inside, tile_hist,
                         result.per_polygon);
  result.times.seconds[3] = timer.seconds();
  ZH_LATENCY_RECORD("latency.step3", result.times.seconds[3]);
  result.work.aggregate_bin_adds =
      static_cast<std::uint64_t>(pairing.inside.pair_count()) *
      config_.bins;

  // Step 4: cell-in-polygon refinement on boundary tiles.
  timer.reset();
  const RefineCounters rc = refine_boundary_tiles(
      *device_, pairing.intersect, soa, raster, tiling, result.per_polygon,
      config_.refine_granularity, config_.refine_strategy);
  result.times.seconds[4] = timer.seconds();
  ZH_LATENCY_RECORD("latency.step4", result.times.seconds[4]);
  result.work.pip_cell_tests = rc.cell_tests;
  result.work.pip_edge_tests = rc.edge_tests;
  result.work.pip_rows_scanned = rc.rows_scanned;
  result.work.pip_run_cells = rc.run_cells;
  result.work.cells_in_polygons = result.per_polygon.total();
  return result;
}

ZonalResult ZonalPipeline::run_partitioned(const DemRaster& raster,
                                           const PolygonSet& polygons,
                                           int part_rows, int part_cols,
                                           ZonalWorkspace* workspace) const {
  ZH_TRACE_SPAN("pipeline.run_partitioned", "pipeline");
  const PolygonSoA soa = PolygonSoA::build(polygons);
  const std::vector<CellWindow> windows = grid_partition(
      raster.rows(), raster.cols(), part_rows, part_cols,
      config_.tile_size);

  ZonalWorkspace local_ws;
  ZonalWorkspace& ws = workspace != nullptr ? *workspace : local_ws;

  ZonalResult merged;
  merged.per_polygon = HistogramSet(polygons.size(), config_.bins);
  for (const CellWindow& win : windows) {
    const DemRaster part = raster.copy_window(win);
    ZonalResult r = run(part, polygons, soa, &ws);
    Timer merge_timer;
    merged.per_polygon.add(r.per_polygon);
    merged.times += r.times;
    merged.work += r.work;
    merged.times.overhead.merge += merge_timer.seconds();
  }
  // Window-level counters that must not sum.
  merged.work.polygon_vertices = polygons.vertex_count();
  merged.work.cells_in_polygons = merged.per_polygon.total();
  return merged;
}

ZonalResult ZonalPipeline::run(const BqCompressedRaster& compressed,
                               const PolygonSet& polygons,
                               ZonalWorkspace* workspace) const {
  ZH_REQUIRE(compressed.tiling().tile_size() == config_.tile_size,
             "compressed raster tiling does not match pipeline tile size");
  ZH_TRACE_SPAN("pipeline.run_compressed", "pipeline");
  Timer timer;
  // Step 0: decode (tiles decoded in parallel; stand-in for the paper's
  // on-device BQ-Tree decoding).
  const DemRaster raster = compressed.decode_all();
  const double decode_seconds = timer.seconds();

  ZonalResult result = run(raster, polygons, workspace);
  result.times.seconds[0] = decode_seconds;
  result.work.compressed_bytes = compressed.compressed_bytes();
  result.work.raw_bytes = compressed.raw_bytes();
  return result;
}

}  // namespace zh
