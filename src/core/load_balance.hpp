// Cost-model-driven partition assignment (the paper's future work).
//
// Sec. IV.C observes that edge-of-coverage partitions (e.g. southern
// Florida) have many tiles outside every polygon, so their Step-4 work is
// far lighter, and round-robin assignment leaves nodes unevenly loaded as
// the node count grows. This module estimates each partition's cost from
// a cheap exact pre-pass -- the Step-2 pairing runs on tile *boxes* and
// is independent of raster resolution -- and assigns partitions to ranks
// with the classic LPT (longest-processing-time-first) greedy, which is a
// 4/3-approximation of the optimal makespan.
#pragma once

#include <vector>

#include "cluster/partition.hpp"
#include "geom/polygon.hpp"
#include "grid/geotransform.hpp"

namespace zh {

/// Relative per-unit weights of the cost terms. The defaults mirror the
/// PerfModel rate ratio between per-cell histogramming (Steps 0+1) and
/// per-cell PIP edge tests (Step 4).
struct PartitionCostModel {
  double cell_weight = 1.0;       ///< per raster cell (Steps 0-1)
  double pip_edge_weight = 0.09;  ///< per PIP edge evaluation (Step 4)
};

/// Estimated cost of each partition: runs the Step-2 pairing over the
/// partition's tile grid (exact, cheap -- no cell data touched) and
/// charges cells + projected PIP edge tests.
[[nodiscard]] std::vector<double> estimate_partition_costs(
    const std::vector<RasterPartition>& parts,
    const std::vector<GeoTransform>& raster_transforms,
    std::int64_t tile_size, const PolygonSet& polygons,
    const PartitionCostModel& model = {});

/// LPT greedy: sort partitions by cost descending, place each on the
/// currently least-loaded rank. Mutates owners. Costs must be finite
/// and non-negative (NaN makes load comparisons unordered; negative
/// work is meaningless) -- violations throw InvalidArgument.
void assign_least_loaded(std::vector<RasterPartition>& parts,
                         std::size_t ranks,
                         const std::vector<double>& costs);

/// Makespan ratio of an assignment: max rank load / mean rank load
/// (1.0 = perfectly balanced). Diagnostic for the Fig.-6 tail.
/// Edge cases are defined: an all-zero cost vector returns exactly 1.0
/// (nothing to balance), and with ranks > partitions the ratio bottoms
/// out at ranks / partitions because the spare ranks sit idle. Costs
/// must be finite and non-negative, and every partition's owner must be
/// < ranks -- violations throw InvalidArgument.
[[nodiscard]] double assignment_imbalance(
    const std::vector<RasterPartition>& parts, std::size_t ranks,
    const std::vector<double>& costs);

}  // namespace zh
