#include "core/rasterize.hpp"

#include <algorithm>
#include <vector>

#include "device/thread_pool.hpp"

namespace zh {

Raster<PolygonId> rasterize_zones(const PolygonSet& polygons,
                                  std::int64_t rows, std::int64_t cols,
                                  const GeoTransform& transform) {
  Raster<PolygonId> out(rows, cols, transform, kInvalidPolygon);
  if (rows == 0 || cols == 0) return out;
  const GeoBox extent = transform.extent(rows, cols);

  // Parallel over rows; polygons applied in id order per row so the
  // highest id deterministically wins overlaps.
  struct PolyRef {
    const Polygon* poly;
    GeoBox mbr;
    PolygonId id;
  };
  std::vector<PolyRef> refs;
  refs.reserve(polygons.size());
  for (PolygonId id = 0; id < polygons.size(); ++id) {
    const GeoBox mbr = polygons[id].mbr();
    if (extent.intersects(mbr)) refs.push_back({&polygons[id], mbr, id});
  }

  ThreadPool::global().parallel_for(
      static_cast<std::size_t>(rows), [&](std::size_t rb, std::size_t re) {
        std::vector<double> xints;
        for (std::size_t r = rb; r < re; ++r) {
          const double py =
              transform.cell_center(static_cast<std::int64_t>(r), 0).y;
          for (const PolyRef& ref : refs) {
            if (py < ref.mbr.min_y || py > ref.mbr.max_y) continue;

            xints.clear();
            for (const Ring& ring : ref.poly->rings()) {
              const std::size_t n = ring.size();
              for (std::size_t k = 0; k < n; ++k) {
                const GeoPoint& a = ring[k];
                const GeoPoint& b = ring[(k + 1) % n];
                if (((a.y <= py) && (py < b.y)) ||
                    ((b.y <= py) && (py < a.y))) {
                  xints.push_back((b.x - a.x) * (py - a.y) /
                                      (b.y - a.y) +
                                  a.x);
                }
              }
            }
            if (xints.empty()) continue;
            std::sort(xints.begin(), xints.end());

            // Interior spans under the same strict rule as PIP: a center
            // px is inside iff the count of intersections > px is odd,
            // i.e. px in [xints[m-2k-2], xints[m-2k-1]).
            const std::size_t m = xints.size();
            for (std::size_t k = m % 2; k + 1 < m; k += 2) {
              const double x0 = xints[k];
              const double x1 = xints[k + 1];
              // Columns whose center is >= x0 and < x1... careful: the
              // parity rule is strictly-greater, so centers equal to x0
              // are *inside* (x0 itself not counted) -- mirror the
              // baseline's cursor logic by scanning candidate columns.
              std::int64_t c0 = transform.x_to_col(x0);
              std::int64_t c1 = transform.x_to_col(x1);
              c0 = std::max<std::int64_t>(c0 - 1, 0);
              c1 = std::min<std::int64_t>(c1 + 1, cols - 1);
              for (std::int64_t c = c0; c <= c1; ++c) {
                const double px =
                    transform.cell_center(static_cast<std::int64_t>(r), c)
                        .x;
                // count of xints > px odd <=> px in [x0, x1) half-open
                // under the strict comparison.
                if (px >= x0 && px < x1) {
                  out.at(static_cast<std::int64_t>(r), c) = ref.id;
                }
              }
            }
          }
        }
      });
  return out;
}

}  // namespace zh
