#include "core/multiband.hpp"

#include "core/step1_tile_hist.hpp"
#include "core/step2_pairing.hpp"
#include "core/step3_aggregate.hpp"
#include "core/step4_refine.hpp"

namespace zh {

SeriesResult run_series(Device& device, std::span<const DemRaster> bands,
                        const PolygonSet& polygons,
                        const ZonalConfig& config,
                        ZonalWorkspace* workspace) {
  ZH_REQUIRE(config.tile_size >= 1, "tile size must be positive");
  ZH_REQUIRE(config.bins >= 1, "bin count must be positive");
  SeriesResult result;
  if (bands.empty()) return result;

  const DemRaster& first = bands.front();
  for (const DemRaster& b : bands) {
    ZH_REQUIRE(b.rows() == first.rows() && b.cols() == first.cols() &&
                   b.transform() == first.transform(),
               "series bands must be co-registered");
  }

  const TilingScheme tiling(first.rows(), first.cols(), config.tile_size);
  const PolygonSoA soa = PolygonSoA::build(polygons);
  Timer timer;

  // Step 2 once for the whole stack: geometry does not change per band.
  const PairingResult pairing =
      pair_and_group(polygons, tiling, first.transform());
  result.times.seconds[2] = timer.seconds();
  result.work.candidate_pairs = pairing.candidate_pairs;
  result.work.pairs_inside = pairing.inside.pair_count();
  result.work.pairs_intersect = pairing.intersect.pair_count();
  result.work.tiles_total = tiling.tile_count();
  result.work.polygon_vertices = polygons.vertex_count();

  ZonalWorkspace local_ws;
  ZonalWorkspace& ws = workspace != nullptr ? *workspace : local_ws;

  result.per_band.reserve(bands.size());
  for (const DemRaster& band : bands) {
    HistogramSet polygon_hist(polygons.size(), config.bins);

    timer.reset();
    tile_histograms_into(device, band, tiling, config.bins,
                         config.count_mode, ws.tile_hist,
                         config.cell_order);
    result.times.seconds[1] += timer.seconds();
    result.work.cells_total += static_cast<std::uint64_t>(band.cell_count());

    timer.reset();
    aggregate_inside_tiles(device, pairing.inside, ws.tile_hist,
                           polygon_hist);
    result.times.seconds[3] += timer.seconds();
    result.work.aggregate_bin_adds +=
        static_cast<std::uint64_t>(pairing.inside.pair_count()) *
        config.bins;

    timer.reset();
    const RefineCounters rc = refine_boundary_tiles(
        device, pairing.intersect, soa, band, tiling, polygon_hist,
        config.refine_granularity, config.refine_strategy);
    result.times.seconds[4] += timer.seconds();
    result.work.pip_cell_tests += rc.cell_tests;
    result.work.pip_edge_tests += rc.edge_tests;
    result.work.pip_rows_scanned += rc.rows_scanned;
    result.work.pip_run_cells += rc.run_cells;
    result.work.cells_in_polygons += polygon_hist.total();

    result.per_band.push_back(std::move(polygon_hist));
  }
  return result;
}

}  // namespace zh
