// Analytic per-step performance model for paper-scale projection.
//
// The emulation measures the *work* of every step exactly (WorkCounters),
// but its wall times are host-CPU times. To reproduce the Table-2 device
// comparison, this model converts work counters into projected seconds on
// the paper's GPUs:
//
//   time(step, device) = work(step) / (rate_titan(step) * scale(device, step))
//
// The reference rates are the GTX Titan throughputs implied by Table 2 at
// the paper's full-scale workload (20.17 G cells, 5000 bins, 0.1-degree
// tiles); the per-device scale factors come from the paper's measured
// per-step speedups (Step 0 ~2.0x, Step 1 1.6x, Step 4 2.6x between
// Quadro 6000 and GTX Titan; K20 ~0.8x of GTX Titan from the
// 60.7 s-vs-46 s single-node comparison). Unknown devices scale by
// compute throughput capped by memory bandwidth relative to GTX Titan.
#pragma once

#include "common/timer.hpp"
#include "core/pipeline.hpp"
#include "device/device.hpp"

namespace zh {

class PerfModel {
 public:
  /// Reference throughputs on GTX Titan, calibrated as
  ///   rate = full-scale work of the default CONUS workload
  ///            / Table-2 GTX Titan seconds
  /// so the default bench_table2_steps run reproduces the Table-2 GTX
  /// Titan column (calibration derivation in EXPERIMENTS.md).
  struct Rates {
    double decode_cells_per_s = 2.24e9;     ///< Step 0: 20.17 G / 9.0 s
    double hist_cells_per_s = 2.52e9;       ///< Step 1: 20.17 G / 8.0 s
    double pairing_pairs_per_s = 2.92e5;    ///< Step 2: 204.5 k / 0.7 s
    double aggregate_adds_per_s = 1.82e9;   ///< Step 3: 546 M / 0.3 s
    double pip_edge_tests_per_s = 2.674e10; ///< Step 4: 615 G / 23.0 s
    /// Step 4 scanline run sweep: one cursor comparison + optional bin
    /// update per cell, the same order of work as the Step-1 cell loop,
    /// so it inherits that calibration. Brute runs report zero run
    /// cells, leaving their projection on the edge-test term alone.
    double pip_run_cells_per_s = 2.52e9;
  };

  PerfModel() = default;
  explicit PerfModel(Rates rates) : rates_(rates) {}

  [[nodiscard]] const Rates& rates() const { return rates_; }

  /// Device-relative speed for a step (GTX Titan == 1.0).
  [[nodiscard]] static double device_step_scale(const DeviceProfile& dev,
                                                std::size_t step);

  /// Projected per-step seconds for `work` on `dev`. `overhead` carries
  /// the modeled host->device transfer of the (compressed) raster at the
  /// device's PCIe bandwidth plus a fixed output-write allowance.
  [[nodiscard]] StepTimes project(const WorkCounters& work,
                                  const DeviceProfile& dev) const;

 private:
  Rates rates_;
};

}  // namespace zh
