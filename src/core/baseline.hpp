// Baseline zonal-histogramming implementations.
//
// Three comparators against the 4-step pipeline:
//  * zonal_naive       -- for every cell, PIP-test against every polygon.
//                         The textbook O(cells x polygons x vertices)
//                         approach; only usable on small inputs, included
//                         as the ground-truth oracle for property tests.
//  * zonal_mbb_filter  -- per polygon, PIP-test only the cells inside its
//                         MBB window: the classic spatial-filter +
//                         refinement spatial join (Sec. II of the paper).
//  * zonal_scanline    -- per polygon, scanline polygon fill: compute the
//                         boundary crossings of each cell-center row and
//                         histogram the interior spans. This is how
//                         traditional GIS rasterization-based zonal tools
//                         (e.g. GDAL) work, i.e. the serial software the
//                         paper reports orders-of-magnitude wins over.
// All three use identical cell-center-in-polygon semantics, so their
// outputs are bit-identical to the pipeline's (tested property).
#pragma once

#include "core/histogram.hpp"
#include "geom/polygon.hpp"
#include "grid/raster.hpp"

namespace zh {

[[nodiscard]] HistogramSet zonal_naive(const DemRaster& raster,
                                       const PolygonSet& polygons,
                                       BinIndex bins);

[[nodiscard]] HistogramSet zonal_mbb_filter(const DemRaster& raster,
                                            const PolygonSet& polygons,
                                            BinIndex bins);

[[nodiscard]] HistogramSet zonal_scanline(const DemRaster& raster,
                                          const PolygonSet& polygons,
                                          BinIndex bins);

}  // namespace zh
