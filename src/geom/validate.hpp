// Polygon validity diagnostics and normalization.
//
// Real boundary datasets arrive with defects -- self-intersecting rings,
// duplicate vertices, inconsistent winding. Ray-crossing parity stays
// *well-defined* on such input (a reason the paper's pipeline tolerates
// it), but downstream consumers (area computation, winding-number
// cross-checks, exporters) want clean geometry. This module provides
// checks and repairs:
//   * validate_*  -- report defects without modifying anything;
//   * dedupe_ring -- drop consecutive duplicate vertices;
//   * normalize_winding -- outer ring counter-clockwise, holes clockwise
//     (the OGC convention), which makes signed_area() the true area.
#pragma once

#include <string>
#include <vector>

#include "geom/polygon.hpp"

namespace zh {

/// Defects found in one polygon.
struct ValidationReport {
  bool has_duplicate_vertices = false;   ///< consecutive duplicates
  bool has_self_intersection = false;    ///< ring crosses itself
  bool has_ring_crossing = false;        ///< two rings cross each other
  bool has_degenerate_ring = false;      ///< < 3 distinct vertices
  std::vector<std::string> notes;

  [[nodiscard]] bool ok() const {
    return !has_duplicate_vertices && !has_self_intersection &&
           !has_ring_crossing && !has_degenerate_ring;
  }
};

/// Exact segment-segment intersection test used by the validators:
/// true if the closed segments share any point, excluding shared
/// endpoints when `ignore_shared_endpoints`.
[[nodiscard]] bool segments_intersect(const GeoPoint& a, const GeoPoint& b,
                                      const GeoPoint& c, const GeoPoint& d,
                                      bool ignore_shared_endpoints);

/// Full validity scan (O(V^2) per polygon -- diagnostics, not hot path).
[[nodiscard]] ValidationReport validate_polygon(const Polygon& poly);

/// Remove consecutive duplicate vertices (incl. a last == first wrap).
[[nodiscard]] Ring dedupe_ring(const Ring& ring);

/// Re-orient rings to the OGC convention: ring 0 counter-clockwise,
/// all subsequent rings clockwise. Parity semantics are unaffected.
[[nodiscard]] Polygon normalize_winding(const Polygon& poly);

/// Hole-aware area under the OGC convention: |outer| minus |holes|
/// (normalizes winding internally; disjoint extra parts would need a
/// multipolygon model and are treated as holes by this formula).
[[nodiscard]] double polygon_area_ogc(const Polygon& poly);

}  // namespace zh
