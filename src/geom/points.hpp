// Structure-of-arrays point collection (e.g. species occurrences with
// abundance weights) -- the point-data analog of PolygonSoA, laid out
// for coalesced device access as in the authors' point-in-polygon
// spatial-join work (paper refs [19]/[20]).
#pragma once

#include <cstddef>
#include <vector>

namespace zh {

struct PointSet {
  std::vector<double> x;
  std::vector<double> y;
  std::vector<double> weight;  ///< empty = all weights 1

  [[nodiscard]] std::size_t size() const { return x.size(); }
  void add(double px, double py, double w = 1.0) {
    x.push_back(px);
    y.push_back(py);
    weight.push_back(w);
  }
};

}  // namespace zh
