#include "geom/soa.hpp"

namespace zh {

PolygonSoA PolygonSoA::build(const PolygonSet& set) {
  PolygonSoA soa;
  soa.ply_v_.reserve(set.size());

  // Worst-case reserve: every ring gains a closing vertex and a sentinel.
  std::size_t total = 0;
  for (const Polygon& p : set.polygons()) {
    total += p.vertex_count();
    total += 2 * p.ring_count();
  }
  soa.x_v_.reserve(total);
  soa.y_v_.reserve(total);

  for (const Polygon& p : set.polygons()) {
    for (const Ring& ring : p.rings()) {
      for (const GeoPoint& v : ring) {
        ZH_REQUIRE(!(v.x == 0.0 && v.y == 0.0),
                   "vertex collides with the (0,0) ring-separator sentinel");
        soa.x_v_.push_back(v.x);
        soa.y_v_.push_back(v.y);
      }
      // Close the ring explicitly, then append the separator.
      soa.x_v_.push_back(ring.front().x);
      soa.y_v_.push_back(ring.front().y);
      soa.x_v_.push_back(0.0);
      soa.y_v_.push_back(0.0);
    }
    soa.ply_v_.push_back(static_cast<std::uint32_t>(soa.x_v_.size()));
  }
  return soa;
}

}  // namespace zh
