#include "geom/edge_index.hpp"

#include <algorithm>
#include <atomic>

#include "device/thread_pool.hpp"

namespace zh {

namespace {

/// Cell-center y of raster row r -- the exact expression the refiner's
/// cell_center(r, c) evaluates (y does not depend on the column), so
/// band membership below matches the query-time crossing predicate
/// bit-for-bit.
inline double scanline_y(const GeoTransform& t, std::int64_t r) {
  return t.origin_y() - (static_cast<double>(r) + 0.5) * t.cell_h();
}

/// An edge crosses row r iff ymin <= scanline_y(r) < ymax (the half-open
/// rule of pip.cpp's edge_crosses with the two orientation branches
/// folded). scanline_y is monotone non-increasing in r, so the member
/// rows form one contiguous range; find it with a floor-based guess
/// corrected by the exact predicate (robust to floating-point drift in
/// the guess).
struct RowRange {
  std::int64_t first = 0;
  std::int64_t last = -1;  ///< inclusive; first > last means empty
};

RowRange edge_row_range(const GeoTransform& t, std::int64_t raster_rows,
                        double ymin, double ymax) {
  RowRange out;
  if (raster_rows == 0) return out;
  // First row with scanline_y < ymax.
  std::int64_t lo =
      std::clamp<std::int64_t>(t.y_to_row(ymax) - 2, 0, raster_rows - 1);
  while (lo > 0 && scanline_y(t, lo - 1) < ymax) --lo;
  while (lo < raster_rows && scanline_y(t, lo) >= ymax) ++lo;
  // Last row with scanline_y >= ymin.
  std::int64_t hi =
      std::clamp<std::int64_t>(t.y_to_row(ymin) + 2, 0, raster_rows - 1);
  while (hi < raster_rows - 1 && scanline_y(t, hi + 1) >= ymin) ++hi;
  while (hi >= 0 && scanline_y(t, hi) < ymin) --hi;
  out.first = lo;
  out.last = hi;
  return out;
}

}  // namespace

EdgeIndex EdgeIndex::build(const PolygonSoA& soa,
                           const GeoTransform& transform,
                           std::int64_t raster_rows) {
  EdgeIndex index;
  index.bands_.resize(soa.polygon_count());
  if (soa.polygon_count() == 0) return index;

  const double* x_v = soa.x_v().data();
  const double* y_v = soa.y_v().data();
  std::atomic<std::uint64_t> indexed{0};
  std::atomic<std::uint64_t> dropped{0};
  std::atomic<std::uint64_t> entries{0};

  ThreadPool::global().parallel_for(
      soa.polygon_count(), [&](std::size_t begin, std::size_t end) {
        // (tail index, row range) of each banded edge; reused across the
        // chunk's polygons.
        std::vector<std::pair<std::uint32_t, RowRange>> spans;
        std::uint64_t local_indexed = 0;
        std::uint64_t local_dropped = 0;
        std::uint64_t local_entries = 0;

        for (std::size_t i = begin; i < end; ++i) {
          const PolygonId pid = static_cast<PolygonId>(i);
          const auto [p_f, p_t] = soa.vertex_range(pid);
          Band& band = index.bands_[pid];
          spans.clear();
          std::int64_t row_min = raster_rows;
          std::int64_t row_max = -1;

          // Same iteration shape as point_in_polygon_soa_raw: skip the
          // edge into a (0,0) ring separator and the edge out of it.
          for (std::uint32_t j = p_f; j + 1 < p_t; ++j) {
            if (x_v[j + 1] == 0.0 && y_v[j + 1] == 0.0) {
              ++j;
              local_dropped += 2;
              continue;
            }
            const double y0 = y_v[j];
            const double y1 = y_v[j + 1];
            if (y0 == y1) {  // horizontal: never crosses (half-open rule)
              ++local_dropped;
              continue;
            }
            const RowRange rr = edge_row_range(
                transform, raster_rows, std::min(y0, y1), std::max(y0, y1));
            if (rr.first > rr.last) {
              ++local_dropped;
              continue;
            }
            spans.emplace_back(j, rr);
            ++local_indexed;
            local_entries +=
                static_cast<std::uint64_t>(rr.last - rr.first + 1);
            row_min = std::min(row_min, rr.first);
            row_max = std::max(row_max, rr.last);
          }

          if (row_max < row_min) continue;  // nothing banded
          band.row0 = row_min;
          band.rows = row_max - row_min + 1;

          // Counting sort: per-row counts -> exclusive offsets -> fill.
          band.offsets.assign(static_cast<std::size_t>(band.rows) + 1, 0);
          for (const auto& [j, rr] : spans) {
            for (std::int64_t r = rr.first; r <= rr.last; ++r) {
              ++band.offsets[static_cast<std::size_t>(r - band.row0) + 1];
            }
          }
          for (std::size_t k = 1; k < band.offsets.size(); ++k) {
            band.offsets[k] += band.offsets[k - 1];
          }
          band.edges.resize(band.offsets.back());
          std::vector<std::uint64_t> cursor(band.offsets.begin(),
                                            band.offsets.end() - 1);
          for (const auto& [j, rr] : spans) {
            for (std::int64_t r = rr.first; r <= rr.last; ++r) {
              band.edges[cursor[static_cast<std::size_t>(r - band.row0)]++] =
                  j;
            }
          }
        }
        indexed.fetch_add(local_indexed, std::memory_order_relaxed);
        dropped.fetch_add(local_dropped, std::memory_order_relaxed);
        entries.fetch_add(local_entries, std::memory_order_relaxed);
      });

  index.stats_.edges_indexed = indexed.load();
  index.stats_.edges_dropped = dropped.load();
  index.stats_.bucket_entries = entries.load();
  return index;
}

}  // namespace zh
