// Polygon-vs-box classification: the tile-in-polygon test of Step 2
// (Sec. III.B). Each (tile, polygon) pair resolves to one of three cases:
// outside (0), inside (1) or intersect (2). The paper performs this phase
// on the CPU with exact computational geometry ("practically, we can
// realize this step on CPUs using well-established computational geometry
// libraries"); this module is that library.
#pragma once

#include "common/types.hpp"
#include "geom/polygon.hpp"
#include "grid/geotransform.hpp"

namespace zh {

/// True if segment ab intersects (or lies inside) the axis-aligned box.
[[nodiscard]] bool segment_intersects_box(const GeoPoint& a,
                                          const GeoPoint& b,
                                          const GeoBox& box);

/// Exact relation between `box` and `poly` under even-odd semantics:
///  * kOutside   -- the box shares no interior with the polygon;
///  * kInside    -- the box is completely inside the polygon;
///  * kIntersect -- the polygon boundary crosses the box.
/// Boundary-touching cases resolve to kIntersect (safe: intersecting
/// tiles fall through to exact per-cell tests in Step 4, so conservative
/// answers never change the final histogram, only the work split).
[[nodiscard]] TileRelation classify_box(const Polygon& poly,
                                        const GeoBox& box);

/// classify_box with the polygon's MBR precomputed (the hot loop of Step 2
/// already has MBRs in hand from the spatial-filter rasterization).
[[nodiscard]] TileRelation classify_box(const Polygon& poly,
                                        const GeoBox& poly_mbr,
                                        const GeoBox& box);

}  // namespace zh
