#include "geom/simplify.hpp"

#include <cmath>
#include <vector>

#include "common/error.hpp"

namespace zh {

namespace {

/// Perpendicular distance from p to segment ab (degenerate segments
/// fall back to point distance).
double seg_distance(const GeoPoint& p, const GeoPoint& a,
                    const GeoPoint& b) {
  const double dx = b.x - a.x;
  const double dy = b.y - a.y;
  const double len2 = dx * dx + dy * dy;
  if (len2 == 0.0) return std::hypot(p.x - a.x, p.y - a.y);
  // Distance to the infinite line: DP uses the chord deviation.
  return std::abs(dy * p.x - dx * p.y + b.x * a.y - b.y * a.x) /
         std::sqrt(len2);
}

/// Mark the vertices of points[first..last] (inclusive) to keep.
void dp_recurse(const std::vector<GeoPoint>& points, std::size_t first,
                std::size_t last, double epsilon,
                std::vector<bool>& keep) {
  if (last <= first + 1) return;
  double worst = -1.0;
  std::size_t worst_i = first;
  for (std::size_t i = first + 1; i < last; ++i) {
    const double d = seg_distance(points[i], points[first], points[last]);
    if (d > worst) {
      worst = d;
      worst_i = i;
    }
  }
  if (worst > epsilon) {
    keep[worst_i] = true;
    dp_recurse(points, first, worst_i, epsilon, keep);
    dp_recurse(points, worst_i, last, epsilon, keep);
  }
}

}  // namespace

Ring simplify_ring(const Ring& ring, double epsilon) {
  ZH_REQUIRE(epsilon >= 0.0, "tolerance must be non-negative");
  const std::size_t n = ring.size();
  if (n <= 3 || epsilon == 0.0) return ring;

  // Close the ring explicitly so DP anchors on the wrap-around edge,
  // then split it at the vertex farthest from the centroid (a stable
  // anchor choice) to avoid collapsing through the seam.
  double cx = 0.0;
  double cy = 0.0;
  for (const GeoPoint& p : ring) {
    cx += p.x;
    cy += p.y;
  }
  cx /= static_cast<double>(n);
  cy /= static_cast<double>(n);
  std::size_t anchor = 0;
  double best = -1.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double d = std::hypot(ring[i].x - cx, ring[i].y - cy);
    if (d > best) {
      best = d;
      anchor = i;
    }
  }

  // Rotate so the anchor is first, close the loop.
  std::vector<GeoPoint> pts;
  pts.reserve(n + 1);
  for (std::size_t i = 0; i <= n; ++i) pts.push_back(ring[(anchor + i) % n]);

  std::vector<bool> keep(pts.size(), false);
  keep.front() = true;
  keep.back() = true;
  // Also pin the approximate antipode so the closed curve cannot
  // degenerate into a single chord.
  keep[pts.size() / 2] = true;
  dp_recurse(pts, 0, pts.size() / 2, epsilon, keep);
  dp_recurse(pts, pts.size() / 2, pts.size() - 1, epsilon, keep);

  Ring out;
  for (std::size_t i = 0; i + 1 < pts.size(); ++i) {
    if (keep[i]) out.push_back(pts[i]);
  }
  if (out.size() < 3) return ring;  // refuse to produce a degenerate ring
  return out;
}

Polygon simplify_polygon(const Polygon& poly, double epsilon) {
  Polygon out;
  for (std::size_t r = 0; r < poly.rings().size(); ++r) {
    Ring s = simplify_ring(poly.rings()[r], epsilon);
    // Secondary rings (holes / extra parts) whose area is below the
    // tolerance's resolving power are generalization noise: drop them.
    // The first ring is always kept so the polygon stays a polygon.
    if (r > 0 && std::abs(ring_signed_area(s)) < epsilon * epsilon) {
      continue;
    }
    out.add_ring(std::move(s));
  }
  return out;
}

PolygonSet simplify_set(const PolygonSet& set, double epsilon) {
  PolygonSet out;
  for (PolygonId id = 0; id < set.size(); ++id) {
    out.add(simplify_polygon(set[id], epsilon), set.name(id));
  }
  return out;
}

}  // namespace zh
