// Minimal Well-Known Text reader/writer for polygon geometries.
//
// Supports POLYGON ((...), (...)) and MULTIPOLYGON (((...)), ((...))).
// A MULTIPOLYGON flattens into one zh::Polygon whose rings carry even-odd
// semantics -- exact for the disjoint-parts / properly-nested-holes
// geometries of administrative boundary datasets (the paper's US-county
// input is exactly such data).
#pragma once

#include <string>
#include <string_view>

#include "geom/polygon.hpp"

namespace zh {

/// Parse one WKT POLYGON or MULTIPOLYGON. Throws IoError on malformed
/// input.
[[nodiscard]] Polygon parse_wkt(std::string_view wkt);

/// Serialize a polygon as WKT POLYGON text (all rings listed).
[[nodiscard]] std::string to_wkt(const Polygon& poly);

}  // namespace zh
