#include "geom/wkt.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <locale>
#include <sstream>

#include "common/error.hpp"

namespace zh {

namespace {

// Tiny recursive-descent scanner over the WKT text.
class Scanner {
 public:
  explicit Scanner(std::string_view s) : s_(s) {}

  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void expect(char c) {
    ZH_REQUIRE_IO(consume(c), "expected '", c, "' at offset ", pos_,
                  " in WKT");
  }

  /// Case-insensitive keyword match.
  bool consume_keyword(std::string_view kw) {
    skip_ws();
    if (s_.size() - pos_ < kw.size()) return false;
    for (std::size_t i = 0; i < kw.size(); ++i) {
      if (std::toupper(static_cast<unsigned char>(s_[pos_ + i])) != kw[i]) {
        return false;
      }
    }
    pos_ += kw.size();
    return true;
  }

  double number() {
    skip_ws();
    // from_chars, not strtod: strtod honors LC_NUMERIC, so a
    // comma-decimal locale would truncate "1.5" to 1.
    const char* begin = s_.data() + pos_;
    const char* last = s_.data() + s_.size();
    double v = 0.0;
    const auto [end, ec] = std::from_chars(begin, last, v);
    ZH_REQUIRE_IO(ec != std::errc::invalid_argument && end != begin,
                  "expected number at offset ", pos_, " in WKT");
    ZH_REQUIRE_IO(ec == std::errc(), "coordinate out of double range at "
                  "offset ", pos_, " in WKT");
    // from_chars happily parses "nan" and "inf"; coordinates must be
    // finite.
    ZH_REQUIRE_IO(std::isfinite(v), "non-finite coordinate at offset ",
                  pos_, " in WKT");
    pos_ += static_cast<std::size_t>(end - begin);
    return v;
  }

  [[nodiscard]] bool at_end() {
    skip_ws();
    return pos_ >= s_.size();
  }

 private:
  std::string_view s_;
  std::size_t pos_ = 0;
};

Ring parse_ring(Scanner& sc) {
  sc.expect('(');
  Ring ring;
  do {
    const double x = sc.number();
    const double y = sc.number();
    ring.push_back({x, y});
  } while (sc.consume(','));
  sc.expect(')');
  // WKT rings repeat the first vertex at the end; our Ring is unclosed.
  if (ring.size() >= 2 && ring.front().x == ring.back().x &&
      ring.front().y == ring.back().y) {
    ring.pop_back();
  }
  ZH_REQUIRE_IO(ring.size() >= 3, "WKT ring has fewer than 3 vertices");
  return ring;
}

void parse_polygon_body(Scanner& sc, Polygon& out) {
  sc.expect('(');
  do {
    out.add_ring(parse_ring(sc));
  } while (sc.consume(','));
  sc.expect(')');
}

}  // namespace

Polygon parse_wkt(std::string_view wkt) {
  Scanner sc(wkt);
  Polygon poly;
  if (sc.consume_keyword("MULTIPOLYGON")) {
    sc.expect('(');
    do {
      parse_polygon_body(sc, poly);
    } while (sc.consume(','));
    sc.expect(')');
  } else if (sc.consume_keyword("POLYGON")) {
    parse_polygon_body(sc, poly);
  } else {
    throw IoError("WKT must start with POLYGON or MULTIPOLYGON");
  }
  ZH_REQUIRE_IO(sc.at_end(), "trailing characters after WKT geometry");
  return poly;
}

std::string to_wkt(const Polygon& poly) {
  std::ostringstream os;
  // Classic locale: coordinates must round-trip through the WKT parser
  // regardless of the global locale's decimal point.
  os.imbue(std::locale::classic());
  os.precision(17);
  os << "POLYGON (";
  for (std::size_t r = 0; r < poly.rings().size(); ++r) {
    if (r != 0) os << ", ";
    os << '(';
    const Ring& ring = poly.rings()[r];
    for (const GeoPoint& p : ring) {
      os << p.x << ' ' << p.y << ", ";
    }
    os << ring.front().x << ' ' << ring.front().y << ')';
  }
  os << ')';
  return os.str();
}

}  // namespace zh
