#include "geom/polygon.hpp"

#include <cmath>
#include <limits>

namespace zh {

double ring_signed_area(const Ring& r) {
  double acc = 0.0;
  const std::size_t n = r.size();
  for (std::size_t i = 0; i < n; ++i) {
    const GeoPoint& a = r[i];
    const GeoPoint& b = r[(i + 1) % n];
    acc += a.x * b.y - b.x * a.y;
  }
  return acc / 2.0;
}

GeoBox Polygon::mbr() const {
  constexpr double inf = std::numeric_limits<double>::infinity();
  GeoBox box{inf, inf, -inf, -inf};
  for (const Ring& r : rings_) {
    for (const GeoPoint& p : r) box.expand(p);
  }
  return box;
}

double Polygon::signed_area() const {
  double acc = 0.0;
  for (const Ring& r : rings_) acc += ring_signed_area(r);
  return acc;
}

GeoBox PolygonSet::extent() const {
  constexpr double inf = std::numeric_limits<double>::infinity();
  GeoBox box{inf, inf, -inf, -inf};
  for (const Polygon& p : polygons_) {
    const GeoBox b = p.mbr();
    box.expand({b.min_x, b.min_y});
    box.expand({b.max_x, b.max_y});
  }
  return box;
}

}  // namespace zh
