// Point-in-polygon tests.
//
// The workhorse is Randolph Franklin's ray-crossing test (the paper's
// Sec. III.D / Fig. 5): a point is inside if a horizontal ray crosses the
// boundary an odd number of times. Two implementations are provided:
//   * object form over Polygon (per-ring, parity across rings) -- the CPU
//     reference used by baselines and tests;
//   * SoA form over PolygonSoA implementing the Fig. 5 kernel inner loop
//     verbatim, including the (0,0) ring-separator skip -- the form the
//     Step-4 device kernel executes.
// A winding-number implementation is included for cross-validation (the
// two agree for points not exactly on a boundary).
#pragma once

#include "common/types.hpp"
#include "geom/polygon.hpp"
#include "geom/soa.hpp"

namespace zh {

/// Ray-crossing test against a single ring (implicitly closed).
[[nodiscard]] bool point_in_ring(const Ring& ring, const GeoPoint& p);

/// Even-odd test against all rings of `poly`: holes subtract, disjoint
/// parts add, matching the paper's multi-ring semantics.
[[nodiscard]] bool point_in_polygon(const Polygon& poly, const GeoPoint& p);

/// Winding number of `poly` around `p` summed over rings (0 = outside for
/// simple polygons). For cross-validation only; prefer the parity tests.
[[nodiscard]] int winding_number(const Polygon& poly, const GeoPoint& p);

/// Fig. 5 inner loop: ray-crossing over the flattened vertex arrays of
/// polygon `pid`, skipping ring-separator sentinel edges.
[[nodiscard]] bool point_in_polygon_soa(const PolygonSoA& soa, PolygonId pid,
                                        double x, double y);

/// Same, over raw arrays (the exact kernel signature shape); `p_f`/`p_t`
/// bound polygon `pid`'s vertices as computed from ply_v.
[[nodiscard]] bool point_in_polygon_soa_raw(const double* x_v,
                                            const double* y_v,
                                            std::uint32_t p_f,
                                            std::uint32_t p_t, double x,
                                            double y);

/// Number of edges point_in_polygon_soa_raw actually evaluates for
/// [p_f, p_t) -- the flattened edge count minus the two skipped per
/// (0,0) ring separator. Feeds exact step4.pip_edge_tests accounting.
[[nodiscard]] std::uint32_t soa_tested_edges(const double* x_v,
                                             const double* y_v,
                                             std::uint32_t p_f,
                                             std::uint32_t p_t);

}  // namespace zh
