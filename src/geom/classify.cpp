#include "geom/classify.hpp"

#include <algorithm>

#include "geom/pip.hpp"

namespace zh {

bool segment_intersects_box(const GeoPoint& a, const GeoPoint& b,
                            const GeoBox& box) {
  // Trivial accept: an endpoint inside the box.
  if (box.contains(a) || box.contains(b)) return true;

  // Liang-Barsky clipping of the parametric segment a + t(b-a), t in
  // [0,1], against the box slabs; non-empty t-interval means overlap.
  const double dx = b.x - a.x;
  const double dy = b.y - a.y;
  double t0 = 0.0;
  double t1 = 1.0;

  auto clip = [&](double p, double q) {
    // Half-plane p*t <= q.
    if (p == 0.0) return q >= 0.0;  // parallel: inside iff q >= 0
    const double r = q / p;
    if (p < 0.0) {
      if (r > t1) return false;
      if (r > t0) t0 = r;
    } else {
      if (r < t0) return false;
      if (r < t1) t1 = r;
    }
    return true;
  };

  return clip(-dx, a.x - box.min_x) && clip(dx, box.max_x - a.x) &&
         clip(-dy, a.y - box.min_y) && clip(dy, box.max_y - a.y);
}

TileRelation classify_box(const Polygon& poly, const GeoBox& box) {
  return classify_box(poly, poly.mbr(), box);
}

TileRelation classify_box(const Polygon& poly, const GeoBox& poly_mbr,
                          const GeoBox& box) {
  if (!poly_mbr.intersects(box)) return TileRelation::kOutside;

  // Any boundary edge touching the box makes the tile a boundary tile.
  for (const Ring& r : poly.rings()) {
    const std::size_t n = r.size();
    for (std::size_t i = 0; i < n; ++i) {
      const GeoPoint& a = r[i];
      const GeoPoint& b = r[(i + 1) % n];
      if (segment_intersects_box(a, b, box)) return TileRelation::kIntersect;
    }
  }

  // No edge crosses the box, so the box lies entirely on one side of the
  // boundary; one interior point decides which.
  const GeoPoint center{(box.min_x + box.max_x) / 2.0,
                        (box.min_y + box.max_y) / 2.0};
  return point_in_polygon(poly, center) ? TileRelation::kInside
                                        : TileRelation::kOutside;
}

}  // namespace zh
