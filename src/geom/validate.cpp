#include "geom/validate.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>
#include <utility>

namespace zh {

namespace {

double cross(const GeoPoint& o, const GeoPoint& a, const GeoPoint& b) {
  return (a.x - o.x) * (b.y - o.y) - (a.y - o.y) * (b.x - o.x);
}

bool on_segment(const GeoPoint& a, const GeoPoint& b, const GeoPoint& p) {
  return std::min(a.x, b.x) <= p.x && p.x <= std::max(a.x, b.x) &&
         std::min(a.y, b.y) <= p.y && p.y <= std::max(a.y, b.y);
}

}  // namespace

bool segments_intersect(const GeoPoint& a, const GeoPoint& b,
                        const GeoPoint& c, const GeoPoint& d,
                        bool ignore_shared_endpoints) {
  if (ignore_shared_endpoints &&
      (a == c || a == d || b == c || b == d)) {
    // Shared endpoints are the normal ring-adjacency case; only a
    // *crossing* beyond the shared point counts, which the general test
    // below would flag. Check whether the non-shared endpoints straddle.
    const GeoPoint& shared = (a == c || a == d) ? a : b;
    const GeoPoint& pa = (shared == a) ? b : a;
    const GeoPoint& pc = (shared == c) ? d : c;
    // Overlapping collinear continuation counts as an intersection.
    return cross(shared, pa, pc) == 0.0 && on_segment(shared, pa, pc) &&
           !(pa == pc);
  }
  const double d1 = cross(c, d, a);
  const double d2 = cross(c, d, b);
  const double d3 = cross(a, b, c);
  const double d4 = cross(a, b, d);
  if (((d1 > 0 && d2 < 0) || (d1 < 0 && d2 > 0)) &&
      ((d3 > 0 && d4 < 0) || (d3 < 0 && d4 > 0))) {
    return true;
  }
  if (d1 == 0 && on_segment(c, d, a)) return true;
  if (d2 == 0 && on_segment(c, d, b)) return true;
  if (d3 == 0 && on_segment(a, b, c)) return true;
  if (d4 == 0 && on_segment(a, b, d)) return true;
  return false;
}

ValidationReport validate_polygon(const Polygon& poly) {
  ValidationReport report;
  const auto& rings = poly.rings();

  for (std::size_t r = 0; r < rings.size(); ++r) {
    const Ring& ring = rings[r];
    const std::size_t n = ring.size();

    // Consecutive duplicates and the distinct-vertex count.
    for (std::size_t i = 0; i < n; ++i) {
      if (ring[i] == ring[(i + 1) % n]) {
        report.has_duplicate_vertices = true;
      }
    }
    std::set<std::pair<double, double>> unique;
    for (const GeoPoint& p : ring) unique.emplace(p.x, p.y);
    if (unique.size() < 3) {
      report.has_degenerate_ring = true;
      std::ostringstream os;
      os << "ring " << r << " has fewer than 3 distinct vertices";
      report.notes.push_back(os.str());
      continue;
    }

    // Self-intersection: any non-adjacent edge pair intersecting.
    for (std::size_t i = 0; i < n; ++i) {
      const GeoPoint& a = ring[i];
      const GeoPoint& b = ring[(i + 1) % n];
      if (a == b) continue;
      for (std::size_t j = i + 1; j < n; ++j) {
        const bool adjacent =
            j == i + 1 || (i == 0 && j == n - 1);
        const GeoPoint& c = ring[j];
        const GeoPoint& d = ring[(j + 1) % n];
        if (c == d) continue;
        if (segments_intersect(a, b, c, d, adjacent)) {
          report.has_self_intersection = true;
          std::ostringstream os;
          os << "ring " << r << ": edges " << i << " and " << j
             << " intersect";
          report.notes.push_back(os.str());
          i = n;  // one note per ring is enough
          break;
        }
      }
    }
  }

  // Cross-ring crossings (holes must not cross the outer boundary).
  for (std::size_t r1 = 0; r1 < rings.size(); ++r1) {
    for (std::size_t r2 = r1 + 1; r2 < rings.size(); ++r2) {
      const Ring& x = rings[r1];
      const Ring& y = rings[r2];
      bool found = false;
      for (std::size_t i = 0; i < x.size() && !found; ++i) {
        for (std::size_t j = 0; j < y.size() && !found; ++j) {
          if (segments_intersect(x[i], x[(i + 1) % x.size()], y[j],
                                 y[(j + 1) % y.size()], false)) {
            report.has_ring_crossing = true;
            std::ostringstream os;
            os << "rings " << r1 << " and " << r2 << " intersect";
            report.notes.push_back(os.str());
            found = true;
          }
        }
      }
    }
  }
  return report;
}

Ring dedupe_ring(const Ring& ring) {
  Ring out;
  out.reserve(ring.size());
  for (const GeoPoint& p : ring) {
    if (out.empty() || !(out.back() == p)) out.push_back(p);
  }
  while (out.size() > 1 && out.front() == out.back()) out.pop_back();
  return out;
}

Polygon normalize_winding(const Polygon& poly) {
  Polygon out;
  for (std::size_t r = 0; r < poly.rings().size(); ++r) {
    Ring ring = poly.rings()[r];
    const double area = ring_signed_area(ring);
    const bool want_ccw = r == 0;
    if ((area > 0) != want_ccw && area != 0) {
      std::reverse(ring.begin(), ring.end());
    }
    out.add_ring(std::move(ring));
  }
  return out;
}

double polygon_area_ogc(const Polygon& poly) {
  if (poly.empty()) return 0.0;
  double area = std::abs(ring_signed_area(poly.rings()[0]));
  for (std::size_t r = 1; r < poly.rings().size(); ++r) {
    area -= std::abs(ring_signed_area(poly.rings()[r]));
  }
  return std::max(0.0, area);
}

}  // namespace zh
