// GPU-friendly structure-of-arrays polygon layout (Fig. 5 of the paper).
//
// The object-based Polygon representation is flattened into three arrays:
//   ply_v : per-polygon *end* offsets into the vertex arrays; polygon k's
//           vertices occupy [k == 0 ? 0 : ply_v[k-1], ply_v[k]).
//   x_v/y_v : vertex coordinates. Each ring is stored *closed* (its first
//           vertex repeated at the end) and followed by the coordinate
//           origin (0,0) as a ring separator -- the trick the paper uses
//           to make Randolph Franklin's single-ring ray-crossing loop
//           handle multi-ring polygons: when the edge's head is the
//           sentinel the kernel skips that edge and the next one.
//
// The sentinel convention requires that no real vertex is exactly (0,0);
// build() enforces this (geographic data in the CONUS region trivially
// satisfies it, as does our synthetic generator).
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"
#include "geom/polygon.hpp"

namespace zh {

class PolygonSoA {
 public:
  /// Flatten a PolygonSet. Throws InvalidArgument if any vertex collides
  /// with the (0,0) ring-separator sentinel.
  static PolygonSoA build(const PolygonSet& set);

  [[nodiscard]] std::size_t polygon_count() const { return ply_v_.size(); }

  /// Half-open vertex range [begin, end) of polygon `pid` in x_v/y_v,
  /// exactly the p_f/p_t computation of Fig. 5.
  [[nodiscard]] std::pair<std::uint32_t, std::uint32_t> vertex_range(
      PolygonId pid) const {
    ZH_REQUIRE(pid < ply_v_.size(), "polygon id out of range");
    const std::uint32_t p_f = pid == 0 ? 0u : ply_v_[pid - 1];
    const std::uint32_t p_t = ply_v_[pid];
    return {p_f, p_t};
  }

  [[nodiscard]] std::span<const std::uint32_t> ply_v() const {
    return ply_v_;
  }
  [[nodiscard]] std::span<const double> x_v() const { return x_v_; }
  [[nodiscard]] std::span<const double> y_v() const { return y_v_; }

  /// Total flattened vertex count including closing vertices and ring
  /// sentinels (drives Step-4 memory traffic).
  [[nodiscard]] std::size_t flattened_vertex_count() const {
    return x_v_.size();
  }

 private:
  std::vector<std::uint32_t> ply_v_;
  std::vector<double> x_v_;
  std::vector<double> y_v_;
};

}  // namespace zh
