// Polygon data model.
//
// A Polygon is a list of rings under even-odd (parity) semantics: a point
// is inside if a ray from it crosses the union of all ring boundaries an
// odd number of times. This matches the paper's multi-ring handling
// (Sec. III.D): one ray-crossing pass over all rings, with holes and
// multiple outer parts (e.g. multi-part US counties) handled uniformly.
#pragma once

#include <cmath>
#include <cstddef>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"
#include "grid/geotransform.hpp"

namespace zh {

/// One closed ring: an ordered vertex list. The closing edge from back()
/// to front() is implicit (vertices are stored unclosed).
using Ring = std::vector<GeoPoint>;

/// Multi-ring polygon with even-odd interior semantics.
class Polygon {
 public:
  Polygon() = default;
  explicit Polygon(std::vector<Ring> rings) : rings_(std::move(rings)) {
    for (const Ring& r : rings_) {
      ZH_REQUIRE(r.size() >= 3, "a ring needs at least 3 vertices");
    }
  }

  [[nodiscard]] const std::vector<Ring>& rings() const { return rings_; }
  [[nodiscard]] bool empty() const { return rings_.empty(); }
  [[nodiscard]] std::size_t ring_count() const { return rings_.size(); }

  void add_ring(Ring r) {
    ZH_REQUIRE(r.size() >= 3, "a ring needs at least 3 vertices");
    rings_.push_back(std::move(r));
  }

  /// Total vertex count over all rings (the US-county dataset in the
  /// paper has 87,097 of these).
  [[nodiscard]] std::size_t vertex_count() const {
    std::size_t n = 0;
    for (const Ring& r : rings_) n += r.size();
    return n;
  }

  /// Minimum bounding box over all rings (the MBB of Sec. III.B).
  [[nodiscard]] GeoBox mbr() const;

  /// Area under even-odd semantics: sum of |signed ring areas| for outer
  /// rings minus holes is not derivable without orientation, so we report
  /// the absolute shoelace sum per ring with sign from orientation --
  /// callers that need exact area should orient holes clockwise.
  [[nodiscard]] double signed_area() const;
  [[nodiscard]] double area() const { return std::abs(signed_area()); }

 private:
  std::vector<Ring> rings_;
};

/// Signed shoelace area of one ring (positive = counter-clockwise).
[[nodiscard]] double ring_signed_area(const Ring& r);

/// A collection of polygons with stable ids 0..size-1 and optional names
/// (e.g. county FIPS codes).
class PolygonSet {
 public:
  PolygonSet() = default;

  PolygonId add(Polygon p, std::string name = {}) {
    polygons_.push_back(std::move(p));
    names_.push_back(std::move(name));
    return static_cast<PolygonId>(polygons_.size() - 1);
  }

  [[nodiscard]] std::size_t size() const { return polygons_.size(); }
  [[nodiscard]] bool empty() const { return polygons_.empty(); }

  [[nodiscard]] const Polygon& operator[](PolygonId id) const {
    ZH_REQUIRE(id < polygons_.size(), "polygon id out of range");
    return polygons_[id];
  }
  [[nodiscard]] const std::string& name(PolygonId id) const {
    ZH_REQUIRE(id < names_.size(), "polygon id out of range");
    return names_[id];
  }

  [[nodiscard]] const std::vector<Polygon>& polygons() const {
    return polygons_;
  }

  /// Total vertex count over the whole set.
  [[nodiscard]] std::size_t vertex_count() const {
    std::size_t n = 0;
    for (const Polygon& p : polygons_) n += p.vertex_count();
    return n;
  }

  /// Union of all member MBRs.
  [[nodiscard]] GeoBox extent() const;

 private:
  std::vector<Polygon> polygons_;
  std::vector<std::string> names_;
};

}  // namespace zh
