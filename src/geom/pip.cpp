#include "geom/pip.hpp"

namespace zh {

namespace {

// One ray-crossing edge update, shared by both implementations so the
// object form and the SoA form agree bit-for-bit on every input. Edge
// runs from (x0,y0) to (x1,y1); point is (px,py). Returns true if the
// horizontal ray from the point crosses this edge (half-open vertex rule
// prevents double-counting shared endpoints).
inline bool edge_crosses(double x0, double y0, double x1, double y1,
                         double px, double py) {
  return (((y0 <= py) && (py < y1)) || ((y1 <= py) && (py < y0))) &&
         (px < (x1 - x0) * (py - y0) / (y1 - y0) + x0);
}

}  // namespace

bool point_in_ring(const Ring& ring, const GeoPoint& p) {
  bool in = false;
  const std::size_t n = ring.size();
  for (std::size_t i = 0; i < n; ++i) {
    const GeoPoint& a = ring[i];
    const GeoPoint& b = ring[(i + 1) % n];
    if (edge_crosses(a.x, a.y, b.x, b.y, p.x, p.y)) in = !in;
  }
  return in;
}

bool point_in_polygon(const Polygon& poly, const GeoPoint& p) {
  bool in = false;
  for (const Ring& r : poly.rings()) {
    if (point_in_ring(r, p)) in = !in;
  }
  return in;
}

int winding_number(const Polygon& poly, const GeoPoint& p) {
  int wn = 0;
  for (const Ring& r : poly.rings()) {
    const std::size_t n = r.size();
    for (std::size_t i = 0; i < n; ++i) {
      const GeoPoint& a = r[i];
      const GeoPoint& b = r[(i + 1) % n];
      // is_left > 0: p is left of the directed edge a->b.
      const double is_left =
          (b.x - a.x) * (p.y - a.y) - (p.x - a.x) * (b.y - a.y);
      if (a.y <= p.y) {
        if (b.y > p.y && is_left > 0) ++wn;   // upward crossing
      } else {
        if (b.y <= p.y && is_left < 0) --wn;  // downward crossing
      }
    }
  }
  return wn;
}

bool point_in_polygon_soa_raw(const double* x_v, const double* y_v,
                              std::uint32_t p_f, std::uint32_t p_t, double x,
                              double y) {
  // Fig. 5 of the paper, verbatim: iterate edges (j, j+1); when the head
  // vertex is the (0,0) ring separator, skip this edge and the next.
  bool in_polygon = false;
  for (std::uint32_t j = p_f; j + 1 < p_t; ++j) {
    const double x0 = x_v[j];
    const double y0 = y_v[j];
    const double x1 = x_v[j + 1];
    const double y1 = y_v[j + 1];
    if (x1 == 0.0 && y1 == 0.0) {
      ++j;  // also skip the edge that would start at the separator
      continue;
    }
    if (edge_crosses(x0, y0, x1, y1, x, y)) in_polygon = !in_polygon;
  }
  return in_polygon;
}

std::uint32_t soa_tested_edges(const double* x_v, const double* y_v,
                               std::uint32_t p_f, std::uint32_t p_t) {
  // Mirrors the skip structure of point_in_polygon_soa_raw exactly, so
  // the count is per-evaluation exact for any separator placement.
  std::uint32_t n = 0;
  for (std::uint32_t j = p_f; j + 1 < p_t; ++j) {
    if (x_v[j + 1] == 0.0 && y_v[j + 1] == 0.0) {
      ++j;
      continue;
    }
    ++n;
  }
  return n;
}

bool point_in_polygon_soa(const PolygonSoA& soa, PolygonId pid, double x,
                          double y) {
  const auto [p_f, p_t] = soa.vertex_range(pid);
  return point_in_polygon_soa_raw(soa.x_v().data(), soa.y_v().data(), p_f,
                                  p_t, x, y);
}

}  // namespace zh
