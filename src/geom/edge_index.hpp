// Per-polygon y-banded edge index for row-coherent (scanline) Step-4
// refinement.
//
// For each polygon the builder buckets every real boundary edge by the
// raster rows whose cell-center y the edge's y-span crosses, using the
// *same* half-open rule as the ray-crossing test in geom/pip.cpp:
// edge (j, j+1) crosses scanline y=py iff py in [min(y0,y1), max(y0,y1)).
// Horizontal edges (y0 == y1) never cross under that rule and the (0,0)
// ring-separator sentinel edges are skipped by the PiP loop, so both are
// excluded at build time. The scanline refiner can therefore gather
// row_edges(pid, r), compute each edge's x-intercept with the exact
// expression edge_crosses() uses, and reproduce per-cell ray-crossing
// parity bit-for-bit.
//
// Storage is CSR per polygon: a contiguous row range [row0, row0+rows)
// with offsets into a flat bucket of edge tail indices. Building is a
// two-pass counting sort per polygon, polygons distributed over the
// ThreadPool (cf. "Building An Efficient Grid On GPU": cell counting +
// prefix sums + scatter).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "geom/soa.hpp"
#include "grid/geotransform.hpp"

namespace zh {

/// Build-time accounting (surfaced as step4.* counters by the refiner;
/// geom stays independent of the obs layer).
struct EdgeIndexStats {
  std::uint64_t edges_indexed = 0;  ///< edges with at least one row bucket
  std::uint64_t edges_dropped = 0;  ///< horizontal + sentinel edges
  std::uint64_t bucket_entries = 0; ///< total (edge, row) memberships
};

class EdgeIndex {
 public:
  EdgeIndex() = default;

  /// Index every polygon of `soa` against the raster rows [0, rows) of
  /// `transform`. Row r's scanline is the cell-center y of row r (the y
  /// is column-independent). Polygons are processed in parallel on the
  /// global ThreadPool.
  static EdgeIndex build(const PolygonSoA& soa, const GeoTransform& transform,
                         std::int64_t raster_rows);

  /// Tail vertex indices j (edges run (j, j+1) in the SoA arrays) of the
  /// edges of polygon `pid` crossing row `row`'s cell-center scanline.
  /// Empty for rows outside the polygon's banded range.
  [[nodiscard]] std::span<const std::uint32_t> row_edges(
      PolygonId pid, std::int64_t row) const {
    const Band& b = bands_[pid];
    if (row < b.row0 || row >= b.row0 + b.rows) return {};
    const std::size_t k = static_cast<std::size_t>(row - b.row0);
    return {b.edges.data() + b.offsets[k],
            static_cast<std::size_t>(b.offsets[k + 1] - b.offsets[k])};
  }

  [[nodiscard]] std::size_t polygon_count() const { return bands_.size(); }
  [[nodiscard]] const EdgeIndexStats& stats() const { return stats_; }

 private:
  /// Per-polygon CSR band: rows [row0, row0+rows); offsets has rows+1
  /// entries delimiting each row's slice of `edges`.
  struct Band {
    std::int64_t row0 = 0;
    std::int64_t rows = 0;
    std::vector<std::uint64_t> offsets;  ///< 64-bit: scan output (zh-lint
                                         ///< index-width pass 3)
    std::vector<std::uint32_t> edges;
  };

  std::vector<Band> bands_;
  EdgeIndexStats stats_;
};

}  // namespace zh
