// Polygon boundary simplification (Douglas-Peucker).
//
// Step-4 cost is proportional to boundary-tile cells x polygon
// *vertices* (the paper's dominant term), so simplifying zone
// boundaries trades histogram exactness for runtime -- a knob real
// deployments use (county datasets ship in multiple generalization
// levels). The implementation is the classic recursive Douglas-Peucker
// with a geographic tolerance; rings keep at least 3 vertices.
#pragma once

#include "geom/polygon.hpp"

namespace zh {

/// Simplify one ring with tolerance `epsilon` (max perpendicular
/// deviation, in coordinate units). The ring stays closed and keeps at
/// least 3 vertices.
[[nodiscard]] Ring simplify_ring(const Ring& ring, double epsilon);

/// Simplify every ring of a polygon. Secondary rings (holes, extra
/// parts) whose simplified area falls below epsilon^2 -- generalization
/// noise at that tolerance -- are dropped; the first ring is always
/// kept.
[[nodiscard]] Polygon simplify_polygon(const Polygon& poly, double epsilon);

/// Simplify every polygon of a set (names preserved).
[[nodiscard]] PolygonSet simplify_set(const PolygonSet& set,
                                      double epsilon);

}  // namespace zh
