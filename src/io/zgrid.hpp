// .zgrid: the project's simple binary raster container (version 2).
//
// Layout (little-endian):
//   magic   "ZGRD"            4 bytes
//   version u32               currently 2
//   header blob:
//     rows    i64, cols i64
//     geotransform            4 doubles: origin_x, origin_y, cell_w, cell_h
//     nodata  u8 flag + u16 value
//   header CRC32              u32 over the header blob
//   cells   rows*cols u16, row-major
//   payload CRC32             u32 over the cell bytes
// Stands in for the GeoTIFF inputs of the paper; benches and examples use
// it to persist synthetic DEMs. The CRCs make any truncation or bit-flip
// an IoError instead of silently decoded garbage; version-1 files (no
// checksums) are rejected with a re-encode hint.
#pragma once

#include <string>

#include "grid/raster.hpp"

namespace zh {

/// Write `raster` to `path`. Throws IoError on failure.
void write_zgrid(const std::string& path, const DemRaster& raster);

/// Read a .zgrid file. Throws IoError on malformed, truncated, corrupted
/// (CRC mismatch), or unsupported-version input.
[[nodiscard]] DemRaster read_zgrid(const std::string& path);

}  // namespace zh
