// .zgrid: the project's simple binary raster container.
//
// Layout (little-endian):
//   magic   "ZGRD"            4 bytes
//   version u32               currently 1
//   rows    i64, cols i64
//   geotransform              4 doubles: origin_x, origin_y, cell_w, cell_h
//   nodata  u8 flag + u16 value
//   cells   rows*cols u16, row-major
// Stands in for the GeoTIFF inputs of the paper; benches and examples use
// it to persist synthetic DEMs.
#pragma once

#include <string>

#include "grid/raster.hpp"

namespace zh {

/// Write `raster` to `path`. Throws IoError on failure.
void write_zgrid(const std::string& path, const DemRaster& raster);

/// Read a .zgrid file. Throws IoError on malformed input.
[[nodiscard]] DemRaster read_zgrid(const std::string& path);

}  // namespace zh
