#include "io/vector_io.hpp"

#include <fstream>
#include <locale>
#include <sstream>

#include "common/error.hpp"
#include "geom/wkt.hpp"

namespace zh {

void write_polygon_tsv(const std::string& path, const PolygonSet& set) {
  std::ofstream os(path);
  ZH_REQUIRE_IO(os.is_open(), "cannot open for write: ", path);
  for (PolygonId id = 0; id < set.size(); ++id) {
    os << set.name(id) << '\t' << to_wkt(set[id]) << '\n';
  }
  ZH_REQUIRE_IO(os.good(), "write failed: ", path);
}

void write_points_csv(const std::string& path, const PointSet& points) {
  ZH_REQUIRE(points.weight.empty() ||
                 points.weight.size() == points.size(),
             "weight array must be empty or match point count");
  std::ofstream os(path);
  ZH_REQUIRE_IO(os.is_open(), "cannot open for write: ", path);
  // Classic locale: number round-trips must not depend on the global
  // locale (a comma decimal point or digit grouping corrupts the file).
  os.imbue(std::locale::classic());
  os.precision(17);
  os << "x,y,weight\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    os << points.x[i] << ',' << points.y[i] << ','
       << (points.weight.empty() ? 1.0 : points.weight[i]) << '\n';
  }
  ZH_REQUIRE_IO(os.good(), "write failed: ", path);
}

PointSet read_points_csv(const std::string& path) {
  std::ifstream is(path);
  ZH_REQUIRE_IO(is.is_open(), "cannot open for read: ", path);
  std::string line;
  ZH_REQUIRE_IO(static_cast<bool>(std::getline(is, line)),
                "empty points CSV: ", path);
  const bool weighted = line == "x,y,weight";
  ZH_REQUIRE_IO(weighted || line == "x,y",
                "unexpected points CSV header in ", path);
  PointSet points;
  std::size_t lineno = 1;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty()) continue;
    std::istringstream ls(line);
    ls.imbue(std::locale::classic());
    double x = 0;
    double y = 0;
    double w = 1.0;
    char c1 = 0;
    char c2 = 0;
    if (weighted) {
      ZH_REQUIRE_IO(static_cast<bool>(ls >> x >> c1 >> y >> c2 >> w) &&
                        c1 == ',' && c2 == ',',
                    "malformed point at line ", lineno, " of ", path);
    } else {
      ZH_REQUIRE_IO(static_cast<bool>(ls >> x >> c1 >> y) && c1 == ',',
                    "malformed point at line ", lineno, " of ", path);
    }
    points.add(x, y, w);
  }
  return points;
}

PolygonSet read_polygon_tsv(const std::string& path) {
  std::ifstream is(path);
  ZH_REQUIRE_IO(is.is_open(), "cannot open for read: ", path);
  PolygonSet set;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty()) continue;
    const auto tab = line.find('\t');
    ZH_REQUIRE_IO(tab != std::string::npos, "missing TAB on line ", lineno,
                  " of ", path);
    set.add(parse_wkt(std::string_view(line).substr(tab + 1)),
            line.substr(0, tab));
  }
  return set;
}

}  // namespace zh
