// Dataset catalogs: a directory of compressed rasters plus one zone
// layer, processed out-of-core.
//
// The paper's CONUS dataset is exactly this shape -- six BQ-Tree-
// compressed raster files sharing one county layer -- and its pipelines
// stream raster-by-raster because no single device holds 40 GB. A
// catalog directory contains:
//   catalog.txt     manifest (format below)
//   zones.tsv       WKT TSV zone layer
//   <name>.bq       one compressed raster per entry
// Manifest format (line-oriented):
//   zhcatalog 1
//   zones <file>
//   raster <file>
//   raster <file> ...
#pragma once

#include <string>
#include <vector>

#include "bqtree/compressed_raster.hpp"
#include "common/timer.hpp"
#include "core/histogram.hpp"
#include "core/pipeline.hpp"
#include "geom/polygon.hpp"

namespace zh {

struct Catalog {
  std::string directory;
  std::string zones_file;                 ///< relative to directory
  std::vector<std::string> raster_files;  ///< relative to directory

  [[nodiscard]] std::string zones_path() const;
  [[nodiscard]] std::string raster_path(std::size_t i) const;
};

/// Write a catalog: each raster serialized as <name>.bq, the zone layer
/// as zones.tsv, plus the manifest. The directory is created if needed.
void write_catalog(const std::string& directory,
                   const std::vector<std::pair<std::string,
                                               const BqCompressedRaster*>>&
                       rasters,
                   const PolygonSet& zones);

/// Parse a catalog directory's manifest. Throws IoError when malformed
/// or when referenced files are missing.
[[nodiscard]] Catalog open_catalog(const std::string& directory);

struct CatalogRunResult {
  HistogramSet per_polygon;
  StepTimes times;
  WorkCounters work;
  std::uint64_t bytes_read = 0;   ///< compressed bytes streamed from disk
  std::size_t rasters_processed = 0;
};

/// Stream every raster of the catalog through the pipeline (filter-first
/// lazy execution when `lazy`), merging per-zone histograms. Rasters are
/// loaded one at a time: peak memory is one raster, not the dataset.
[[nodiscard]] CatalogRunResult run_catalog(Device& device,
                                           const Catalog& catalog,
                                           const ZonalConfig& config,
                                           bool lazy = true);

}  // namespace zh
