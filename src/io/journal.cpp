#include "io/journal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <bit>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>

#include "common/crc32.hpp"
#include "common/timer.hpp"
#include "geom/soa.hpp"
#include "obs/obs.hpp"

namespace zh {

namespace {

constexpr std::array<char, 4> kMagic = {'Z', 'J', 'R', 'N'};
constexpr std::uint32_t kVersion = 1;
/// raster_fp + zones_fp + config_fp + partition_count + groups + bins.
constexpr std::size_t kManifestBytes = 8 + 8 + 8 + 4 + 8 + 4;
/// magic + version + manifest + manifest CRC.
constexpr std::size_t kHeaderBytes = 4 + 4 + kManifestBytes + 4;
/// generation + part_index + nnz; the smallest legal record payload.
constexpr std::uint64_t kMinPayload = 4 + 4 + 8;
/// One sparse histogram entry: flat bin index (u64) + count (u32).
constexpr std::uint64_t kEntryBytes = 8 + 4;

static_assert(std::endian::native == std::endian::little,
              "journal I/O assumes a little-endian host");

template <typename T>
void put_pod(std::vector<char>& buf, const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  const auto* p = reinterpret_cast<const char*>(&v);
  buf.insert(buf.end(), p, p + sizeof(T));
}

template <typename T>
T get_pod(std::span<const char> buf, std::size_t& pos) {
  static_assert(std::is_trivially_copyable_v<T>);
  ZH_REQUIRE_IO(pos + sizeof(T) <= buf.size(), "journal blob too short");
  T v{};
  std::memcpy(&v, buf.data() + pos, sizeof(T));
  pos += sizeof(T);
  return v;
}

/// Histogram flat length, overflow-guarded so frame-length bounds derived
/// from it cannot wrap (the manifest is CRC-verified, but a hostile file
/// must still fail cleanly, not allocate absurdly).
std::uint64_t flat_size(const RunManifest& m, const std::string& path) {
  constexpr std::uint64_t kMaxFlat =
      std::numeric_limits<std::uint64_t>::max() / (2 * kEntryBytes);
  ZH_REQUIRE_IO(m.bins == 0 || m.groups <= kMaxFlat / m.bins,
                "journal manifest histogram shape overflows (", m.groups,
                " groups x ", m.bins, " bins) in ", path);
  return m.groups * m.bins;
}

void write_all(int fd, const char* data, std::size_t size,
               const std::string& path) {
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n = ::write(fd, data + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      ZH_REQUIRE_IO(false, "journal write failed for ", path, ": ",
                    std::strerror(errno));
    }
    done += static_cast<std::size_t>(n);
  }
}

void sync_fd(int fd, const std::string& path) {
  Timer timer;
  ZH_REQUIRE_IO(::fsync(fd) == 0, "journal fsync failed for ", path, ": ",
                std::strerror(errno));
  ZH_LATENCY_RECORD("latency.journal_fsync", timer.seconds());
}

std::vector<char> manifest_blob(const RunManifest& m) {
  std::vector<char> blob;
  blob.reserve(kManifestBytes);
  put_pod(blob, m.raster_fingerprint);
  put_pod(blob, m.zones_fingerprint);
  put_pod(blob, m.config_fingerprint);
  put_pod(blob, m.partition_count);
  put_pod(blob, m.groups);
  put_pod(blob, m.bins);
  return blob;
}

std::uint64_t mix_u64(std::uint64_t h, std::uint64_t v) {
  return splitmix64(h ^ v);
}

std::uint64_t mix_double(std::uint64_t h, double v) {
  return mix_u64(h, std::bit_cast<std::uint64_t>(v));
}

}  // namespace

JournalLoad load_journal(const std::string& path) {
  ZH_TRACE_SPAN("io.load_journal", "io");
  const auto start = std::chrono::steady_clock::now();
  std::ifstream is(path, std::ios::binary);
  ZH_REQUIRE_IO(is.is_open(), "cannot open journal for read: ", path);
  std::error_code ec;
  const std::uintmax_t file_size = std::filesystem::file_size(path, ec);
  ZH_REQUIRE_IO(!ec, "cannot stat journal ", path);
  ZH_REQUIRE_IO(file_size >= kHeaderBytes, "journal header truncated in ",
                path, " (", file_size, " bytes, need ", kHeaderBytes, ")");
  std::vector<char> bytes(static_cast<std::size_t>(file_size));
  is.read(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ZH_REQUIRE_IO(is.good(), "cannot read journal ", path);

  std::size_t pos = 0;
  std::array<char, 4> magic{};
  std::memcpy(magic.data(), bytes.data(), magic.size());
  pos += magic.size();
  ZH_REQUIRE_IO(magic == kMagic, "bad journal magic in ", path);
  const auto version = get_pod<std::uint32_t>(bytes, pos);
  ZH_REQUIRE_IO(version == kVersion, "unsupported journal version ", version,
                " in ", path, " (this build reads version ", kVersion, ")");
  const std::size_t manifest_off = pos;
  JournalLoad load;
  load.manifest.raster_fingerprint = get_pod<std::uint64_t>(bytes, pos);
  load.manifest.zones_fingerprint = get_pod<std::uint64_t>(bytes, pos);
  load.manifest.config_fingerprint = get_pod<std::uint64_t>(bytes, pos);
  load.manifest.partition_count = get_pod<std::uint32_t>(bytes, pos);
  load.manifest.groups = get_pod<std::uint64_t>(bytes, pos);
  load.manifest.bins = get_pod<std::uint32_t>(bytes, pos);
  const auto manifest_crc = get_pod<std::uint32_t>(bytes, pos);
  ZH_REQUIRE_IO(crc32(bytes.data() + manifest_off, kManifestBytes) ==
                    manifest_crc,
                "journal manifest CRC mismatch in ", path,
                " (corrupted or truncated header)");

  const std::uint64_t flat = flat_size(load.manifest, path);
  const std::uint64_t max_payload = kMinPayload + flat * kEntryBytes;
  load.merged_bins.assign(static_cast<std::size_t>(flat), BinCount{0});
  std::vector<char> seen_global(load.manifest.partition_count, 0);
  std::vector<char> seen_this_gen(load.manifest.partition_count, 0);

  // Frame walk with the torn-tail rule: the first frame that is short,
  // absurdly sized, or CRC-broken ends the trusted prefix -- a kill mid
  // write leaves exactly such a tail. Violations *inside* a CRC-valid
  // frame, by contrast, mean the writer (or a tamperer) broke the format
  // and are hard IoErrors: truncating would silently drop good records.
  std::size_t off = kHeaderBytes;
  while (true) {
    if (off + 4 + kMinPayload + 4 > bytes.size()) break;  // torn/end
    std::size_t cur = off;
    const auto len = get_pod<std::uint32_t>(bytes, cur);
    if (len < kMinPayload || len > max_payload ||
        cur + len + 4 > bytes.size()) {
      break;  // torn length field or truncated payload
    }
    const std::span<const char> payload(bytes.data() + cur, len);
    cur += len;
    const auto frame_crc = get_pod<std::uint32_t>(bytes, cur);
    if (crc32(payload.data(), payload.size()) != frame_crc) break;  // torn

    std::size_t p = 0;
    JournalRecordInfo rec;
    rec.generation = get_pod<std::uint32_t>(payload, p);
    rec.part_index = get_pod<std::uint32_t>(payload, p);
    const auto nnz = get_pod<std::uint64_t>(payload, p);
    ZH_REQUIRE_IO(nnz <= flat, "journal record nnz ", nnz, " exceeds ", flat,
                  " histogram slots in ", path);
    ZH_REQUIRE_IO(len == kMinPayload + nnz * kEntryBytes,
                  "journal record length ", len, " disagrees with nnz ", nnz,
                  " in ", path);
    ZH_REQUIRE_IO(rec.part_index < load.manifest.partition_count,
                  "journal partition index ", rec.part_index,
                  " out of range (", load.manifest.partition_count,
                  " partitions) in ", path);
    if (!load.records.empty()) {
      ZH_REQUIRE_IO(rec.generation >= load.last_generation,
                    "journal generations must be non-decreasing: record at "
                    "byte ", off, " has generation ", rec.generation,
                    " after ", load.last_generation, " in ", path);
      if (rec.generation > load.last_generation) {
        std::fill(seen_this_gen.begin(), seen_this_gen.end(), 0);
      }
    }
    ZH_REQUIRE_IO(seen_this_gen[rec.part_index] == 0,
                  "journal partition ", rec.part_index,
                  " appears twice in generation ", rec.generation, " in ",
                  path);
    seen_this_gen[rec.part_index] = 1;
    load.last_generation = rec.generation;

    // First copy wins across generations, mirroring the master's
    // idempotent acceptance; later duplicates are valid but inert.
    const bool fresh = seen_global[rec.part_index] == 0;
    for (std::uint64_t i = 0; i < nnz; ++i) {
      const auto index = get_pod<std::uint64_t>(payload, p);
      const auto count = get_pod<BinCount>(payload, p);
      ZH_REQUIRE_IO(index < flat, "journal bin index ", index,
                    " out of range (", flat, " slots) in ", path);
      if (fresh) {
        load.merged_bins[static_cast<std::size_t>(index)] += count;
      }
    }
    if (fresh) {
      seen_global[rec.part_index] = 1;
      load.completed.push_back(rec.part_index);
    }
    load.records.push_back(rec);
    off = cur;
  }
  load.valid_bytes = off;
  load.torn_bytes = bytes.size() - off;

  load.resume_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  ZH_COUNTER_ADD("journal.resume_ms",
                 static_cast<std::uint64_t>(load.resume_seconds * 1e3));
  ZH_COUNTER_ADD("journal.torn_bytes", load.torn_bytes);
  return load;
}

JournalWriter::JournalWriter(int fd, std::string path,
                             const RunManifest& manifest,
                             std::uint32_t generation,
                             JournalWriterOptions options)
    : fd_(fd),
      path_(std::move(path)),
      manifest_(manifest),
      generation_(generation),
      options_(options),
      written_(manifest.partition_count, 0) {
  ZH_REQUIRE(options_.fsync_interval >= 1,
             "journal fsync interval must be at least 1");
}

JournalWriter JournalWriter::create(const std::string& path,
                                    const RunManifest& manifest,
                                    JournalWriterOptions options) {
  // O_TRUNC: a fresh generation-0 journal supersedes whatever was there
  // (callers resume via append()).
  const int fd =
      ::open(path.c_str(), O_CREAT | O_TRUNC | O_WRONLY | O_CLOEXEC, 0644);
  ZH_REQUIRE_IO(fd >= 0, "cannot open journal for write: ", path, ": ",
                std::strerror(errno));
  JournalWriter writer(fd, path, manifest, /*generation=*/0, options);
  std::vector<char> header;
  header.reserve(kHeaderBytes);
  header.insert(header.end(), kMagic.begin(), kMagic.end());
  put_pod(header, kVersion);
  const std::vector<char> blob = manifest_blob(manifest);
  header.insert(header.end(), blob.begin(), blob.end());
  put_pod(header, crc32(blob.data(), blob.size()));
  write_all(fd, header.data(), header.size(), path);
  // The manifest must be durable before any record refers to it.
  sync_fd(fd, path);
  return writer;
}

JournalWriter JournalWriter::append(const std::string& path,
                                    const JournalLoad& load,
                                    JournalWriterOptions options) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CLOEXEC);
  ZH_REQUIRE_IO(fd >= 0, "cannot open journal for append: ", path, ": ",
                std::strerror(errno));
  // Cut the torn tail off on disk before appending, so the new
  // generation's first frame starts at a frame boundary.
  ZH_REQUIRE_IO(
      ::ftruncate(fd, static_cast<off_t>(load.valid_bytes)) == 0,
      "cannot truncate journal torn tail in ", path, ": ",
      std::strerror(errno));
  ZH_REQUIRE_IO(::lseek(fd, static_cast<off_t>(load.valid_bytes), SEEK_SET) >=
                    0,
                "cannot seek journal ", path, ": ", std::strerror(errno));
  const std::uint32_t generation =
      load.records.empty() ? 0 : load.last_generation + 1;
  JournalWriter writer(fd, path, load.manifest, generation, options);
  // Partitions prior generations completed must never be re-journaled:
  // the driver skips them, so a second record is a resume-wiring bug.
  for (const std::uint32_t index : load.completed) {
    writer.written_[index] = 1;
  }
  if (load.torn_bytes > 0) sync_fd(fd, path);
  return writer;
}

JournalWriter::JournalWriter(JournalWriter&& other) noexcept
    : fd_(other.fd_),
      path_(std::move(other.path_)),
      manifest_(other.manifest_),
      generation_(other.generation_),
      options_(other.options_),
      records_written_(other.records_written_),
      pending_since_sync_(other.pending_since_sync_),
      written_(std::move(other.written_)) {
  other.fd_ = -1;
}

JournalWriter& JournalWriter::operator=(JournalWriter&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) {
      static_cast<void>(::fsync(fd_));
      static_cast<void>(::close(fd_));
    }
    fd_ = other.fd_;
    path_ = std::move(other.path_);
    manifest_ = other.manifest_;
    generation_ = other.generation_;
    options_ = other.options_;
    records_written_ = other.records_written_;
    pending_since_sync_ = other.pending_since_sync_;
    written_ = std::move(other.written_);
    other.fd_ = -1;
  }
  return *this;
}

JournalWriter::~JournalWriter() {
  if (fd_ < 0) return;
  // Best-effort durability on close; destructors cannot throw. Callers
  // needing a hard guarantee call flush() themselves.
  static_cast<void>(::fsync(fd_));
  static_cast<void>(::close(fd_));
}

void JournalWriter::on_partition_complete(std::uint32_t part_index,
                                          std::span<const BinCount> bins) {
  ZH_REQUIRE(fd_ >= 0, "journal writer is closed (moved from?)");
  ZH_REQUIRE(part_index < manifest_.partition_count,
             "journal partition index ", part_index, " out of range (",
             manifest_.partition_count, " partitions)");
  ZH_REQUIRE(written_[part_index] == 0, "partition ", part_index,
             " journaled twice in generation ", generation_,
             " -- the driver's first-copy-wins acceptance must gate the "
             "sink");
  const std::uint64_t flat = flat_size(manifest_, path_);
  ZH_REQUIRE(bins.size() == flat, "journal record histogram size mismatch: ",
             bins.size(), " bins, manifest says ", flat);

  // Sparse encoding: zonal histograms over fine bins are mostly zero, so
  // (flat index, count) pairs beat a dense dump by orders of magnitude.
  std::uint64_t nnz = 0;
  for (const BinCount c : bins) {
    if (c != 0) ++nnz;
  }
  std::vector<char> frame;
  frame.reserve(4 + kMinPayload + nnz * kEntryBytes + 4);
  put_pod(frame,
          static_cast<std::uint32_t>(kMinPayload + nnz * kEntryBytes));
  const std::size_t payload_off = frame.size();
  put_pod(frame, generation_);
  put_pod(frame, part_index);
  put_pod(frame, nnz);
  for (std::uint64_t i = 0; i < bins.size(); ++i) {
    if (bins[static_cast<std::size_t>(i)] == 0) continue;
    put_pod(frame, i);
    put_pod(frame, bins[static_cast<std::size_t>(i)]);
  }
  put_pod(frame,
          crc32(frame.data() + payload_off, frame.size() - payload_off));

  // Scripted torn write: persist only half the frame, then die as a
  // SIGKILL would -- the reader's torn-tail rule must recover cleanly.
  if (options_.abort.point == CrashPoint::kJournalRecord &&
      records_written_ == options_.abort.occurrence) {
    write_all(fd_, frame.data(), frame.size() / 2, path_);
    sync_fd(fd_, path_);
    hard_exit(CrashPoint::kJournalRecord,
              static_cast<std::uint32_t>(records_written_));
  }

  write_all(fd_, frame.data(), frame.size(), path_);
  written_[part_index] = 1;
  ++records_written_;
  ZH_COUNTER_ADD("journal.records_written", 1);
  if (++pending_since_sync_ >= options_.fsync_interval) flush();
}

void JournalWriter::flush() {
  ZH_REQUIRE(fd_ >= 0, "journal writer is closed (moved from?)");
  if (pending_since_sync_ == 0) return;
  sync_fd(fd_, path_);
  pending_since_sync_ = 0;
}

std::uint64_t fingerprint_rasters(const std::vector<DemRaster>& rasters) {
  std::uint64_t h = mix_u64(0x5A4E414C9E3779B9ull, rasters.size());
  for (const DemRaster& r : rasters) {
    h = mix_u64(h, static_cast<std::uint64_t>(r.rows()));
    h = mix_u64(h, static_cast<std::uint64_t>(r.cols()));
    h = mix_double(h, r.transform().origin_x());
    h = mix_double(h, r.transform().origin_y());
    h = mix_double(h, r.transform().cell_w());
    h = mix_double(h, r.transform().cell_h());
    h = mix_u64(h, r.nodata().has_value()
                       ? 1ull + static_cast<std::uint64_t>(*r.nodata())
                       : 0ull);
    const auto cells = r.cells();
    h = mix_u64(h, crc32(cells.data(), cells.size_bytes()));
  }
  return h;
}

std::uint64_t fingerprint_zones(const PolygonSet& polygons) {
  const PolygonSoA soa = PolygonSoA::build(polygons);
  std::uint64_t h = mix_u64(0x7A4F4E45535F4650ull, polygons.size());
  h = mix_u64(h, crc32(soa.ply_v().data(), soa.ply_v().size_bytes()));
  h = mix_u64(h, crc32(soa.x_v().data(), soa.x_v().size_bytes()));
  h = mix_u64(h, crc32(soa.y_v().data(), soa.y_v().size_bytes()));
  return h;
}

std::uint64_t fingerprint_config(
    const std::vector<std::pair<int, int>>& schemas, const ZonalConfig& zonal,
    bool compress) {
  std::uint64_t h = mix_u64(0x434F4E4649475F46ull, schemas.size());
  for (const auto& [rows, cols] : schemas) {
    h = mix_u64(h, static_cast<std::uint64_t>(static_cast<std::int64_t>(rows)));
    h = mix_u64(h, static_cast<std::uint64_t>(static_cast<std::int64_t>(cols)));
  }
  h = mix_u64(h, static_cast<std::uint64_t>(zonal.tile_size));
  h = mix_u64(h, zonal.bins);
  h = mix_u64(h, static_cast<std::uint64_t>(zonal.count_mode));
  h = mix_u64(h, compress ? 1 : 0);
  return h;
}

RunManifest make_manifest(const std::vector<DemRaster>& rasters,
                          const std::vector<std::pair<int, int>>& schemas,
                          const PolygonSet& polygons,
                          const ClusterRunConfig& config) {
  ZH_REQUIRE(rasters.size() == schemas.size(),
             "one partition schema per raster required");
  RunManifest m;
  m.raster_fingerprint = fingerprint_rasters(rasters);
  m.zones_fingerprint = fingerprint_zones(polygons);
  m.config_fingerprint =
      fingerprint_config(schemas, config.zonal, config.compress);
  // The driver's own partitioning, so journal indices and the driver's
  // partition list can never drift apart.
  std::uint64_t count = 0;
  for (std::size_t i = 0; i < rasters.size(); ++i) {
    count += grid_partition(rasters[i].rows(), rasters[i].cols(),
                            schemas[i].first, schemas[i].second,
                            config.zonal.tile_size)
                 .size();
  }
  ZH_REQUIRE(count <= std::numeric_limits<std::uint32_t>::max(),
             "partition count overflows the journal manifest");
  m.partition_count = static_cast<std::uint32_t>(count);
  m.groups = polygons.size();
  m.bins = config.zonal.bins;
  return m;
}

void require_manifest_match(const RunManifest& on_disk,
                            const RunManifest& expected,
                            const std::string& path) {
  const auto field = [&]() -> const char* {
    if (on_disk.raster_fingerprint != expected.raster_fingerprint) {
      return "raster fingerprint";
    }
    if (on_disk.zones_fingerprint != expected.zones_fingerprint) {
      return "zone-layer fingerprint";
    }
    if (on_disk.config_fingerprint != expected.config_fingerprint) {
      return "config fingerprint";
    }
    if (on_disk.partition_count != expected.partition_count) {
      return "partition count";
    }
    if (on_disk.groups != expected.groups) return "polygon count";
    if (on_disk.bins != expected.bins) return "bin count";
    return nullptr;
  }();
  ZH_REQUIRE_IO(field == nullptr, "journal ", path,
                " belongs to a different run: ", field,
                " mismatch -- resuming would merge incompatible histograms "
                "(delete the checkpoint directory to start over)");
}

}  // namespace zh
