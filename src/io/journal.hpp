// Crash-consistent run journal for checkpoint/resume (DESIGN.md 5d).
//
// An append-only record log in the v2 container discipline (.zgrid/.bq):
// a fixed header -- magic, version, run manifest, manifest CRC-32 --
// followed by CRC-32-framed records, one per partition the cluster
// master accepted. The manifest fingerprints the inputs (rasters, zone
// layer, result-affecting config) plus the partition schema, so a resume
// against different inputs is refused instead of silently merging
// incompatible histograms.
//
// Durability contract:
//  * the writer appends whole frames and fsyncs every
//    JournalWriterOptions::fsync_interval records (and on flush());
//  * a process death at ANY byte offset leaves a loadable journal: the
//    reader walks frames front to back and truncates at the first torn
//    frame (short, absurd length, or CRC mismatch) -- everything before
//    it is trusted, everything after is discarded (torn-tail rule);
//  * records carry a generation number (0 = first run, +1 per resume);
//    within one generation each partition appears at most once, across
//    generations the first copy wins -- matching the master's
//    first-copy-wins acceptance, so resume merges stay bit-identical.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "cluster/fault.hpp"
#include "core/checkpoint.hpp"
#include "core/cluster_driver.hpp"
#include "grid/raster.hpp"

namespace zh {

/// Identity of one run, stored in the journal header. Two runs may share
/// a journal only when every field matches.
struct RunManifest {
  std::uint64_t raster_fingerprint = 0;
  std::uint64_t zones_fingerprint = 0;
  std::uint64_t config_fingerprint = 0;
  std::uint32_t partition_count = 0;  ///< global partition list length
  std::uint64_t groups = 0;           ///< polygons per histogram set
  std::uint32_t bins = 0;             ///< bins per polygon

  bool operator==(const RunManifest&) const = default;
};

/// Provenance of one journaled record (file order).
struct JournalRecordInfo {
  std::uint32_t generation = 0;
  std::uint32_t part_index = 0;

  bool operator==(const JournalRecordInfo&) const = default;
};

/// Everything load_journal() recovers from a (possibly torn) journal.
struct JournalLoad {
  RunManifest manifest;
  std::vector<JournalRecordInfo> records;  ///< valid records, file order
  /// Unique completed partition indices, first-copy-wins order; feeds
  /// CheckpointConfig::completed_partitions.
  std::vector<std::uint32_t> completed;
  /// Flat per-polygon histogram (groups x bins) merged over `completed`;
  /// feeds CheckpointConfig::resume_bins.
  std::vector<BinCount> merged_bins;
  std::uint32_t last_generation = 0;  ///< 0 when `records` is empty
  std::uint64_t valid_bytes = 0;      ///< file prefix the frames occupy
  std::uint64_t torn_bytes = 0;       ///< tail discarded by the torn rule
  double resume_seconds = 0.0;        ///< wall time of this load
};

/// Read and verify a journal, truncating (in memory) at the first torn
/// frame. Throws IoError when the header itself is unreadable or a
/// CRC-valid record is semantically corrupt (index out of range,
/// duplicate within a generation, non-monotone generation).
[[nodiscard]] JournalLoad load_journal(const std::string& path);

struct JournalWriterOptions {
  /// fsync after every N appended records; 1 = every record durable
  /// before the master proceeds, larger batches trade a bounded replay
  /// window for fewer fsyncs.
  std::uint32_t fsync_interval = 1;
  /// Scripted process abort (fault injection): at the `occurrence`-th
  /// appended record a CrashPoint::kJournalRecord abort writes only half
  /// the frame and hard-exits, leaving a torn tail for the reader.
  AbortSpec abort;
};

/// Append-only journal writer; the CheckpointSink the cluster driver
/// journals through. Move-only value type owning the file descriptor.
class JournalWriter final : public CheckpointSink {
 public:
  /// Start a fresh journal (generation 0): truncate, write the header,
  /// fsync. The manifest is durable before this returns.
  [[nodiscard]] static JournalWriter create(const std::string& path,
                                            const RunManifest& manifest,
                                            JournalWriterOptions options = {});

  /// Continue a journal a previous generation wrote: drop `load`'s torn
  /// tail from the file (ftruncate to valid_bytes) and append at
  /// generation last_generation + 1 (0 if no records yet). `load` must
  /// come from load_journal() on the same path.
  [[nodiscard]] static JournalWriter append(const std::string& path,
                                            const JournalLoad& load,
                                            JournalWriterOptions options = {});

  JournalWriter(JournalWriter&& other) noexcept;
  JournalWriter& operator=(JournalWriter&& other) noexcept;
  ~JournalWriter() override;

  /// Append one partition record (master thread). Throws InvalidArgument
  /// on a duplicate partition within this generation -- the driver's
  /// first-copy-wins acceptance makes that a logic error -- and IoError
  /// when the write fails.
  void on_partition_complete(std::uint32_t part_index,
                             std::span<const BinCount> bins) override;

  /// fsync any records appended since the last sync.
  void flush();

  [[nodiscard]] std::uint64_t records_written() const {
    return records_written_;
  }
  [[nodiscard]] std::uint32_t generation() const { return generation_; }

 private:
  JournalWriter(int fd, std::string path, const RunManifest& manifest,
                std::uint32_t generation, JournalWriterOptions options);

  int fd_ = -1;
  std::string path_;
  RunManifest manifest_;
  std::uint32_t generation_ = 0;
  JournalWriterOptions options_;
  std::uint64_t records_written_ = 0;
  std::uint32_t pending_since_sync_ = 0;
  std::vector<char> written_;  ///< per-partition dedup guard (this gen)
};

/// Order-sensitive fingerprints of the run inputs, chained through
/// splitmix64 over dimensions, georeferencing, nodata, and payload
/// CRC-32s. Any bit difference in the inputs changes the fingerprint
/// with overwhelming probability.
[[nodiscard]] std::uint64_t fingerprint_rasters(
    const std::vector<DemRaster>& rasters);
[[nodiscard]] std::uint64_t fingerprint_zones(const PolygonSet& polygons);
/// Result-affecting configuration only: partition schemas, tile size,
/// bins, count mode, compression. Rank count and refine strategy are
/// excluded -- the pipeline's bit-identity invariants make them
/// resume-safe.
[[nodiscard]] std::uint64_t fingerprint_config(
    const std::vector<std::pair<int, int>>& schemas, const ZonalConfig& zonal,
    bool compress);

/// Manifest for a run_cluster_zonal invocation; partition_count is
/// derived with the driver's own partitioning, so indices in the journal
/// and the driver's partition list always agree.
[[nodiscard]] RunManifest make_manifest(
    const std::vector<DemRaster>& rasters,
    const std::vector<std::pair<int, int>>& schemas,
    const PolygonSet& polygons, const ClusterRunConfig& config);

/// Refuse a resume against changed inputs: throws IoError naming the
/// first mismatching manifest field.
void require_manifest_match(const RunManifest& on_disk,
                            const RunManifest& expected,
                            const std::string& path);

}  // namespace zh
