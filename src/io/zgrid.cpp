#include "io/zgrid.hpp"

#include <array>
#include <bit>
#include <cstring>
#include <fstream>

#include "common/error.hpp"

namespace zh {

namespace {

constexpr std::array<char, 4> kMagic = {'Z', 'G', 'R', 'D'};
constexpr std::uint32_t kVersion = 1;

static_assert(std::endian::native == std::endian::little,
              "zgrid I/O assumes a little-endian host");

template <typename T>
void write_pod(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T read_pod(std::istream& is) {
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  ZH_REQUIRE_IO(is.good(), "unexpected end of zgrid stream");
  return v;
}

}  // namespace

void write_zgrid(const std::string& path, const DemRaster& raster) {
  std::ofstream os(path, std::ios::binary);
  ZH_REQUIRE_IO(os.is_open(), "cannot open for write: ", path);
  os.write(kMagic.data(), kMagic.size());
  write_pod(os, kVersion);
  write_pod(os, raster.rows());
  write_pod(os, raster.cols());
  write_pod(os, raster.transform().origin_x());
  write_pod(os, raster.transform().origin_y());
  write_pod(os, raster.transform().cell_w());
  write_pod(os, raster.transform().cell_h());
  const std::uint8_t has_nodata = raster.nodata().has_value() ? 1 : 0;
  write_pod(os, has_nodata);
  write_pod(os, raster.nodata().value_or(CellValue{0}));
  const auto cells = raster.cells();
  os.write(reinterpret_cast<const char*>(cells.data()),
           static_cast<std::streamsize>(cells.size_bytes()));
  ZH_REQUIRE_IO(os.good(), "write failed: ", path);
}

DemRaster read_zgrid(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  ZH_REQUIRE_IO(is.is_open(), "cannot open for read: ", path);
  std::array<char, 4> magic{};
  is.read(magic.data(), magic.size());
  ZH_REQUIRE_IO(is.good() && magic == kMagic, "bad zgrid magic in ", path);
  const auto version = read_pod<std::uint32_t>(is);
  ZH_REQUIRE_IO(version == kVersion, "unsupported zgrid version ", version);
  const auto rows = read_pod<std::int64_t>(is);
  const auto cols = read_pod<std::int64_t>(is);
  ZH_REQUIRE_IO(rows >= 0 && cols >= 0, "negative zgrid dims");
  const auto ox = read_pod<double>(is);
  const auto oy = read_pod<double>(is);
  const auto cw = read_pod<double>(is);
  const auto ch = read_pod<double>(is);
  const auto has_nodata = read_pod<std::uint8_t>(is);
  const auto nodata = read_pod<CellValue>(is);

  DemRaster raster(rows, cols, GeoTransform(ox, oy, cw, ch));
  if (has_nodata) raster.set_nodata(nodata);
  auto cells = raster.cells();
  is.read(reinterpret_cast<char*>(cells.data()),
          static_cast<std::streamsize>(cells.size_bytes()));
  ZH_REQUIRE_IO(is.good(), "truncated zgrid cell data in ", path);
  return raster;
}

}  // namespace zh
