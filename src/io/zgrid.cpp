#include "io/zgrid.hpp"

#include <array>
#include <bit>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <vector>

#include "common/crc32.hpp"
#include "common/error.hpp"
#include "obs/obs.hpp"

namespace zh {

namespace {

constexpr std::array<char, 4> kMagic = {'Z', 'G', 'R', 'D'};
constexpr std::uint32_t kVersion = 2;
/// rows + cols + 4 doubles + nodata flag + nodata value.
constexpr std::size_t kHeaderBytes = 8 + 8 + 4 * 8 + 1 + 2;

static_assert(std::endian::native == std::endian::little,
              "zgrid I/O assumes a little-endian host");

template <typename T>
void write_pod(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

/// Serializes the header into a flat blob so one CRC covers it whole.
class BlobWriter {
 public:
  explicit BlobWriter(std::size_t capacity) { buf_.reserve(capacity); }

  template <typename T>
  void put(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto* p = reinterpret_cast<const char*>(&v);
    buf_.insert(buf_.end(), p, p + sizeof(T));
  }

  [[nodiscard]] const std::vector<char>& bytes() const { return buf_; }

 private:
  std::vector<char> buf_;
};

class BlobReader {
 public:
  explicit BlobReader(const std::vector<char>& buf) : buf_(buf) {}

  template <typename T>
  T get() {
    static_assert(std::is_trivially_copyable_v<T>);
    ZH_REQUIRE_IO(pos_ + sizeof(T) <= buf_.size(),
                  "zgrid header blob too short");
    T v{};
    std::memcpy(&v, buf_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

 private:
  const std::vector<char>& buf_;
  std::size_t pos_ = 0;
};

template <typename T>
T read_pod(std::istream& is, const std::string& path) {
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  ZH_REQUIRE_IO(is.good(), "unexpected end of zgrid stream in ", path);
  return v;
}

}  // namespace

void write_zgrid(const std::string& path, const DemRaster& raster) {
  ZH_TRACE_SPAN("io.write_zgrid", "io");
  std::ofstream os(path, std::ios::binary);
  ZH_REQUIRE_IO(os.is_open(), "cannot open for write: ", path);
  os.write(kMagic.data(), kMagic.size());
  write_pod(os, kVersion);

  BlobWriter header(kHeaderBytes);
  header.put(raster.rows());
  header.put(raster.cols());
  header.put(raster.transform().origin_x());
  header.put(raster.transform().origin_y());
  header.put(raster.transform().cell_w());
  header.put(raster.transform().cell_h());
  header.put<std::uint8_t>(raster.nodata().has_value() ? 1 : 0);
  header.put(raster.nodata().value_or(CellValue{0}));
  os.write(header.bytes().data(),
           static_cast<std::streamsize>(header.bytes().size()));
  write_pod(os, crc32(header.bytes().data(), header.bytes().size()));

  const auto cells = raster.cells();
  os.write(reinterpret_cast<const char*>(cells.data()),
           static_cast<std::streamsize>(cells.size_bytes()));
  write_pod(os, crc32(cells.data(), cells.size_bytes()));
  ZH_REQUIRE_IO(os.good(), "write failed: ", path);
}

DemRaster read_zgrid(const std::string& path) {
  ZH_TRACE_SPAN("io.read_zgrid", "io");
  std::ifstream is(path, std::ios::binary);
  ZH_REQUIRE_IO(is.is_open(), "cannot open for read: ", path);
  std::error_code ec;
  const std::uintmax_t file_size = std::filesystem::file_size(path, ec);
  ZH_REQUIRE_IO(!ec, "cannot stat ", path);

  std::array<char, 4> magic{};
  is.read(magic.data(), magic.size());
  ZH_REQUIRE_IO(is.good() && magic == kMagic, "bad zgrid magic in ", path);
  const auto version = read_pod<std::uint32_t>(is, path);
  ZH_REQUIRE_IO(version == kVersion, "unsupported zgrid version ", version,
                " in ", path, " (this build reads version ", kVersion,
                "; re-encode with `zhist` to upgrade)");

  std::vector<char> header(kHeaderBytes);
  is.read(header.data(), static_cast<std::streamsize>(header.size()));
  ZH_REQUIRE_IO(is.good(), "truncated zgrid header in ", path);
  const auto header_crc = read_pod<std::uint32_t>(is, path);
  ZH_REQUIRE_IO(crc32(header.data(), header.size()) == header_crc,
                "zgrid header CRC mismatch in ", path,
                " (corrupted or truncated file)");

  BlobReader blob(header);
  const auto rows = blob.get<std::int64_t>();
  const auto cols = blob.get<std::int64_t>();
  const auto ox = blob.get<double>();
  const auto oy = blob.get<double>();
  const auto cw = blob.get<double>();
  const auto ch = blob.get<double>();
  const auto has_nodata = blob.get<std::uint8_t>();
  const auto nodata = blob.get<CellValue>();
  ZH_REQUIRE_IO(rows >= 0 && cols >= 0, "negative zgrid dims in ", path);
  // Size sanity *before* allocating: the cell payload must account for
  // exactly the rest of the file, so absurd header counts cannot trigger
  // a huge allocation and truncation is caught up front.
  constexpr std::uintmax_t kOverhead =
      4 + 4 + kHeaderBytes + 4 + 4;  // magic+version+header+2 CRCs
  ZH_REQUIRE_IO(
      cols == 0 ||
          static_cast<std::uintmax_t>(rows) <=
              std::numeric_limits<std::uintmax_t>::max() /
                  static_cast<std::uintmax_t>(cols == 0 ? 1 : cols),
      "zgrid dims overflow in ", path);
  const std::uintmax_t cell_bytes = static_cast<std::uintmax_t>(rows) *
                                    static_cast<std::uintmax_t>(cols) *
                                    sizeof(CellValue);
  ZH_REQUIRE_IO(file_size == kOverhead + cell_bytes,
                "zgrid size mismatch in ", path, ": header says ", rows,
                "x", cols, " cells (", cell_bytes, " bytes) but file has ",
                file_size, " bytes");

  DemRaster raster(rows, cols, GeoTransform(ox, oy, cw, ch));
  if (has_nodata != 0) raster.set_nodata(nodata);
  auto cells = raster.cells();
  is.read(reinterpret_cast<char*>(cells.data()),
          static_cast<std::streamsize>(cells.size_bytes()));
  ZH_REQUIRE_IO(is.good(), "truncated zgrid cell data in ", path);
  const auto payload_crc = read_pod<std::uint32_t>(is, path);
  ZH_REQUIRE_IO(crc32(cells.data(), cells.size_bytes()) == payload_crc,
                "zgrid payload CRC mismatch in ", path,
                " (corrupted cell data)");
  return raster;
}

}  // namespace zh
