#include "io/bq_file.hpp"

#include <array>
#include <bit>
#include <fstream>

#include "common/error.hpp"

namespace zh {

namespace {

constexpr std::array<char, 4> kMagic = {'Z', 'B', 'Q', '1'};

static_assert(std::endian::native == std::endian::little,
              "bq I/O assumes a little-endian host");

template <typename T>
void write_pod(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T read_pod(std::istream& is) {
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  ZH_REQUIRE_IO(is.good(), "unexpected end of bq stream");
  return v;
}

}  // namespace

void write_bq(const std::string& path, const BqCompressedRaster& raster) {
  std::ofstream os(path, std::ios::binary);
  ZH_REQUIRE_IO(os.is_open(), "cannot open for write: ", path);
  os.write(kMagic.data(), kMagic.size());
  const TilingScheme& tiling = raster.tiling();
  write_pod(os, tiling.raster_rows());
  write_pod(os, tiling.raster_cols());
  write_pod(os, tiling.tile_size());
  write_pod(os, raster.transform().origin_x());
  write_pod(os, raster.transform().origin_y());
  write_pod(os, raster.transform().cell_w());
  write_pod(os, raster.transform().cell_h());
  write_pod(os, static_cast<std::uint64_t>(tiling.tile_count()));
  for (TileId id = 0; id < tiling.tile_count(); ++id) {
    const BqEncodedTile& t = raster.tile(id);
    write_pod(os, t.rows);
    write_pod(os, t.cols);
    write_pod(os, t.plane_mask);
    write_pod(os, static_cast<std::uint32_t>(t.payload.size()));
    os.write(reinterpret_cast<const char*>(t.payload.data()),
             static_cast<std::streamsize>(t.payload.size()));
  }
  ZH_REQUIRE_IO(os.good(), "write failed: ", path);
}

BqCompressedRaster read_bq(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  ZH_REQUIRE_IO(is.is_open(), "cannot open for read: ", path);
  std::array<char, 4> magic{};
  is.read(magic.data(), magic.size());
  ZH_REQUIRE_IO(is.good() && magic == kMagic, "bad bq magic in ", path);
  const auto rows = read_pod<std::int64_t>(is);
  const auto cols = read_pod<std::int64_t>(is);
  const auto tile_size = read_pod<std::int64_t>(is);
  ZH_REQUIRE_IO(rows >= 0 && cols >= 0 && tile_size > 0,
                "bad bq header dims in ", path);
  const auto ox = read_pod<double>(is);
  const auto oy = read_pod<double>(is);
  const auto cw = read_pod<double>(is);
  const auto ch = read_pod<double>(is);
  ZH_REQUIRE_IO(cw > 0 && ch > 0, "bad bq geotransform in ", path);
  const TilingScheme tiling(rows, cols, tile_size);
  const auto count = read_pod<std::uint64_t>(is);
  ZH_REQUIRE_IO(count == tiling.tile_count(),
                "bq tile count mismatch in ", path);
  std::vector<BqEncodedTile> tiles(count);
  for (auto& t : tiles) {
    t.rows = read_pod<std::uint32_t>(is);
    t.cols = read_pod<std::uint32_t>(is);
    t.plane_mask = read_pod<std::uint16_t>(is);
    const auto payload = read_pod<std::uint32_t>(is);
    t.payload.resize(payload);
    is.read(reinterpret_cast<char*>(t.payload.data()), payload);
    ZH_REQUIRE_IO(is.good(), "truncated bq tile payload in ", path);
  }
  return BqCompressedRaster::from_tiles(tiling,
                                        GeoTransform(ox, oy, cw, ch),
                                        std::move(tiles));
}

}  // namespace zh
