#include "io/bq_file.hpp"

#include <array>
#include <bit>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <vector>

#include "common/crc32.hpp"
#include "common/error.hpp"
#include "obs/obs.hpp"

namespace zh {

namespace {

constexpr std::array<char, 4> kMagic = {'Z', 'B', 'Q', 'F'};
constexpr std::array<char, 4> kLegacyMagic = {'Z', 'B', 'Q', '1'};
constexpr std::uint32_t kVersion = 2;
/// rows + cols + tile_size + 4 doubles + tile count.
constexpr std::size_t kHeaderBytes = 3 * 8 + 4 * 8 + 8;
/// Fixed bytes per tile record before the variable payload.
constexpr std::uintmax_t kTileRecordBytes = 4 + 4 + 2 + 4;

static_assert(std::endian::native == std::endian::little,
              "bq I/O assumes a little-endian host");

template <typename T>
void write_pod(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

/// Writes raw bytes while folding them into a running CRC, so the
/// trailing checksum covers exactly what hit the stream.
class CrcWriter {
 public:
  explicit CrcWriter(std::ostream& os) : os_(os) {}

  template <typename T>
  void pod(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    bytes(&v, sizeof(T));
  }

  void bytes(const void* data, std::size_t n) {
    os_.write(static_cast<const char*>(data),
              static_cast<std::streamsize>(n));
    crc_.update(data, n);
  }

  [[nodiscard]] std::uint32_t crc() const { return crc_.value(); }

 private:
  std::ostream& os_;
  Crc32 crc_;
};

/// Mirror of CrcWriter for reads; the caller compares crc() against the
/// stored checksum after consuming the covered region.
class CrcReader {
 public:
  CrcReader(std::istream& is, const std::string& path)
      : is_(is), path_(path) {}

  template <typename T>
  T pod() {
    static_assert(std::is_trivially_copyable_v<T>);
    T v{};
    bytes(&v, sizeof(T));
    return v;
  }

  void bytes(void* data, std::size_t n) {
    is_.read(static_cast<char*>(data), static_cast<std::streamsize>(n));
    ZH_REQUIRE_IO(is_.good(), "unexpected end of bq stream in ", path_);
    crc_.update(data, n);
  }

  [[nodiscard]] std::uint32_t crc() const { return crc_.value(); }

 private:
  std::istream& is_;
  const std::string& path_;
  Crc32 crc_;
};

}  // namespace

void write_bq(const std::string& path, const BqCompressedRaster& raster) {
  ZH_TRACE_SPAN("io.write_bq", "io");
  std::ofstream os(path, std::ios::binary);
  ZH_REQUIRE_IO(os.is_open(), "cannot open for write: ", path);
  os.write(kMagic.data(), kMagic.size());
  write_pod(os, kVersion);

  const TilingScheme& tiling = raster.tiling();
  CrcWriter header(os);
  header.pod(tiling.raster_rows());
  header.pod(tiling.raster_cols());
  header.pod(tiling.tile_size());
  header.pod(raster.transform().origin_x());
  header.pod(raster.transform().origin_y());
  header.pod(raster.transform().cell_w());
  header.pod(raster.transform().cell_h());
  header.pod(static_cast<std::uint64_t>(tiling.tile_count()));
  write_pod(os, header.crc());

  CrcWriter body(os);
  for (TileId id = 0; id < tiling.tile_count(); ++id) {
    const BqEncodedTile& t = raster.tile(id);
    body.pod(t.rows);
    body.pod(t.cols);
    body.pod(t.plane_mask);
    body.pod(static_cast<std::uint32_t>(t.payload.size()));
    body.bytes(t.payload.data(), t.payload.size());
  }
  write_pod(os, body.crc());
  ZH_REQUIRE_IO(os.good(), "write failed: ", path);
}

BqCompressedRaster read_bq(const std::string& path) {
  ZH_TRACE_SPAN("io.read_bq", "io");
  std::ifstream is(path, std::ios::binary);
  ZH_REQUIRE_IO(is.is_open(), "cannot open for read: ", path);
  std::error_code ec;
  const std::uintmax_t file_size = std::filesystem::file_size(path, ec);
  ZH_REQUIRE_IO(!ec, "cannot stat ", path);

  std::array<char, 4> magic{};
  is.read(magic.data(), magic.size());
  ZH_REQUIRE_IO(is.good(), "unexpected end of bq stream in ", path);
  ZH_REQUIRE_IO(magic != kLegacyMagic, "legacy checksum-free ZBQ1 file: ",
                path, " (re-encode with `zhist encode` to upgrade)");
  ZH_REQUIRE_IO(magic == kMagic, "bad bq magic in ", path);
  std::uint32_t version{};
  is.read(reinterpret_cast<char*>(&version), sizeof(version));
  ZH_REQUIRE_IO(is.good(), "unexpected end of bq stream in ", path);
  ZH_REQUIRE_IO(version == kVersion, "unsupported bq version ", version,
                " in ", path, " (this build reads version ", kVersion, ")");

  CrcReader header(is, path);
  const auto rows = header.pod<std::int64_t>();
  const auto cols = header.pod<std::int64_t>();
  const auto tile_size = header.pod<std::int64_t>();
  const auto ox = header.pod<double>();
  const auto oy = header.pod<double>();
  const auto cw = header.pod<double>();
  const auto ch = header.pod<double>();
  const auto count = header.pod<std::uint64_t>();
  const auto header_crc = [&] {
    std::uint32_t v{};
    is.read(reinterpret_cast<char*>(&v), sizeof(v));
    ZH_REQUIRE_IO(is.good(), "unexpected end of bq stream in ", path);
    return v;
  }();
  ZH_REQUIRE_IO(header.crc() == header_crc, "bq header CRC mismatch in ",
                path, " (corrupted or truncated file)");
  ZH_REQUIRE_IO(rows >= 0 && cols >= 0 && tile_size > 0,
                "bad bq header dims in ", path);
  ZH_REQUIRE_IO(cw > 0 && ch > 0, "bad bq geotransform in ", path);
  const TilingScheme tiling(rows, cols, tile_size);
  ZH_REQUIRE_IO(count == tiling.tile_count(),
                "bq tile count mismatch in ", path);
  // Every tile record needs at least its fixed fields; reject absurd
  // counts before the read loop so truncated files fail fast.
  ZH_REQUIRE_IO(count <= file_size / kTileRecordBytes,
                "bq tile count ", count, " impossible for ", file_size,
                "-byte file ", path);

  CrcReader body(is, path);
  std::vector<BqEncodedTile> tiles(count);
  for (auto& t : tiles) {
    t.rows = body.pod<std::uint32_t>();
    t.cols = body.pod<std::uint32_t>();
    t.plane_mask = body.pod<std::uint16_t>();
    const auto payload = body.pod<std::uint32_t>();
    // A payload cannot be larger than the file that holds it.
    ZH_REQUIRE_IO(payload <= file_size, "bq tile payload size ", payload,
                  " exceeds file size in ", path);
    t.payload.resize(payload);
    body.bytes(t.payload.data(), payload);
  }
  const auto payload_crc = [&] {
    std::uint32_t v{};
    is.read(reinterpret_cast<char*>(&v), sizeof(v));
    ZH_REQUIRE_IO(is.good(), "unexpected end of bq stream in ", path);
    return v;
  }();
  ZH_REQUIRE_IO(body.crc() == payload_crc, "bq payload CRC mismatch in ",
                path, " (corrupted tile data)");
  return BqCompressedRaster::from_tiles(tiling,
                                        GeoTransform(ox, oy, cw, ch),
                                        std::move(tiles));
}

}  // namespace zh
