#include "io/render.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>

#include "common/error.hpp"

namespace zh {

namespace {

std::int64_t stride_for(std::int64_t rows, std::int64_t cols,
                        std::int64_t max_edge) {
  const std::int64_t longest = std::max(rows, cols);
  return std::max<std::int64_t>(1, (longest + max_edge - 1) / max_edge);
}

struct Rgb {
  std::uint8_t r, g, b;
};

Rgb lerp(const Rgb& a, const Rgb& b, double t) {
  auto mix = [&](std::uint8_t x, std::uint8_t y) {
    return static_cast<std::uint8_t>(x + (y - x) * t);
  };
  return {mix(a.r, b.r), mix(a.g, b.g), mix(a.b, b.b)};
}

/// Piecewise hypsometric ramp over t in [0, 1].
Rgb hypsometric(double t) {
  constexpr Rgb kStops[] = {{70, 120, 50},    // lowland green
                            {160, 160, 80},   // foothill tan
                            {140, 100, 60},   // mountain brown
                            {230, 230, 230}}; // snow
  t = std::clamp(t, 0.0, 1.0) * 3.0;
  const int seg = std::min(2, static_cast<int>(t));
  return lerp(kStops[seg], kStops[seg + 1], t - seg);
}

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

void write_ppm(const std::string& path, const RgbImage& image) {
  std::ofstream os(path, std::ios::binary);
  ZH_REQUIRE_IO(os.is_open(), "cannot open for write: ", path);
  os << "P6\n" << image.width << ' ' << image.height << "\n255\n";
  os.write(reinterpret_cast<const char*>(image.pixels.data()),
           static_cast<std::streamsize>(image.pixels.size()));
  ZH_REQUIRE_IO(os.good(), "write failed: ", path);
}

RgbImage render_elevation(const DemRaster& dem, std::int64_t max_edge) {
  ZH_REQUIRE(max_edge >= 1, "max_edge must be positive");
  if (dem.rows() == 0 || dem.cols() == 0) return RgbImage{};
  const std::int64_t stride = stride_for(dem.rows(), dem.cols(), max_edge);
  const std::int64_t h = (dem.rows() + stride - 1) / stride;
  const std::int64_t w = (dem.cols() + stride - 1) / stride;

  CellValue lo = std::numeric_limits<CellValue>::max();
  CellValue hi = 0;
  for (const CellValue v : dem.cells()) {
    if (dem.nodata() && v == *dem.nodata()) continue;
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  const double span = hi > lo ? static_cast<double>(hi - lo) : 1.0;

  RgbImage img(w, h);
  for (std::int64_t y = 0; y < h; ++y) {
    for (std::int64_t x = 0; x < w; ++x) {
      const CellValue v = dem.at(y * stride, x * stride);
      if (dem.nodata() && v == *dem.nodata()) {
        img.set(x, y, 40, 70, 150);  // nodata: water blue
        continue;
      }
      const Rgb c = hypsometric((v - lo) / span);
      img.set(x, y, c.r, c.g, c.b);
    }
  }
  return img;
}

RgbImage render_zone_ids(const Raster<PolygonId>& zones,
                         std::int64_t max_edge) {
  ZH_REQUIRE(max_edge >= 1, "max_edge must be positive");
  if (zones.rows() == 0 || zones.cols() == 0) return RgbImage{};
  const std::int64_t stride =
      stride_for(zones.rows(), zones.cols(), max_edge);
  const std::int64_t h = (zones.rows() + stride - 1) / stride;
  const std::int64_t w = (zones.cols() + stride - 1) / stride;
  RgbImage img(w, h);
  for (std::int64_t y = 0; y < h; ++y) {
    for (std::int64_t x = 0; x < w; ++x) {
      const PolygonId id = zones.at(y * stride, x * stride);
      if (id == kInvalidPolygon) {
        img.set(x, y, 25, 25, 30);
        continue;
      }
      const std::uint64_t hsh = mix64(id);
      // Bright-ish categorical colors: keep each channel above 64.
      img.set(x, y, static_cast<std::uint8_t>(64 + (hsh & 0xBF)),
              static_cast<std::uint8_t>(64 + ((hsh >> 8) & 0xBF)),
              static_cast<std::uint8_t>(64 + ((hsh >> 16) & 0xBF)));
    }
  }
  return img;
}

RgbImage render_choropleth(const Raster<PolygonId>& zones,
                           const std::vector<double>& values,
                           std::int64_t max_edge) {
  ZH_REQUIRE(max_edge >= 1, "max_edge must be positive");
  if (zones.rows() == 0 || zones.cols() == 0) return RgbImage{};
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (const double v : values) {
    if (!std::isfinite(v)) continue;
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  const double span = hi > lo ? hi - lo : 1.0;

  const std::int64_t stride =
      stride_for(zones.rows(), zones.cols(), max_edge);
  const std::int64_t h = (zones.rows() + stride - 1) / stride;
  const std::int64_t w = (zones.cols() + stride - 1) / stride;
  RgbImage img(w, h);
  constexpr Rgb kCold{50, 80, 200};
  constexpr Rgb kHot{210, 60, 40};
  for (std::int64_t y = 0; y < h; ++y) {
    for (std::int64_t x = 0; x < w; ++x) {
      const PolygonId id = zones.at(y * stride, x * stride);
      if (id == kInvalidPolygon || id >= values.size() ||
          !std::isfinite(values[id])) {
        img.set(x, y, 25, 25, 30);
        continue;
      }
      const Rgb c = lerp(kCold, kHot, (values[id] - lo) / span);
      img.set(x, y, c.r, c.g, c.b);
    }
  }
  return img;
}

}  // namespace zh
