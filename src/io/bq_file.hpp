// .bq: on-disk container for BQ-Tree-compressed rasters (version 2).
//
// The paper ships the CONUS SRTM data as BQ-Tree streams precisely so the
// (much smaller) compressed form is what moves across disk and PCIe;
// this format persists a BqCompressedRaster so pipelines can start from
// compressed input without re-encoding.
//
// Layout (little-endian):
//   magic   "ZBQF"
//   version u32                currently 2
//   header blob:
//     rows i64, cols i64, tile_size i64
//     geotransform             4 doubles
//     tile count u64
//   header CRC32               u32 over the header blob
//   per tile:
//     rows u32, cols u32, plane_mask u16, payload size u32, payload bytes
//   payload CRC32              u32 over all tile-record bytes
// The CRCs turn truncation and bit-flips into IoError instead of silently
// decoded garbage; legacy checksum-free "ZBQ1" files are rejected with a
// re-encode hint.
#pragma once

#include <string>

#include "bqtree/compressed_raster.hpp"

namespace zh {

/// Write `raster` to `path`. Throws IoError on failure.
void write_bq(const std::string& path, const BqCompressedRaster& raster);

/// Read a .bq file. Throws IoError on malformed, truncated, corrupted
/// (CRC mismatch), or legacy/unsupported-version input.
[[nodiscard]] BqCompressedRaster read_bq(const std::string& path);

}  // namespace zh
