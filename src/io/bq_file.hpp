// .bq: on-disk container for BQ-Tree-compressed rasters.
//
// The paper ships the CONUS SRTM data as BQ-Tree streams precisely so the
// (much smaller) compressed form is what moves across disk and PCIe;
// this format persists a BqCompressedRaster so pipelines can start from
// compressed input without re-encoding.
//
// Layout (little-endian):
//   magic "ZBQ1"
//   rows i64, cols i64, tile_size i64
//   geotransform: 4 doubles
//   tile count u64, then per tile:
//     rows u32, cols u32, plane_mask u16, payload size u32, payload bytes
#pragma once

#include <string>

#include "bqtree/compressed_raster.hpp"

namespace zh {

void write_bq(const std::string& path, const BqCompressedRaster& raster);

[[nodiscard]] BqCompressedRaster read_bq(const std::string& path);

}  // namespace zh
