#include "io/ascii_grid.hpp"

#include <cmath>
#include <filesystem>
#include <fstream>
#include <limits>
#include <locale>
#include <sstream>

#include "common/error.hpp"

namespace zh {

void write_ascii_grid(const std::string& path, const DemRaster& raster) {
  const GeoTransform& t = raster.transform();
  ZH_REQUIRE(std::abs(t.cell_w() - t.cell_h()) <
                 1e-12 * std::max(t.cell_w(), t.cell_h()),
             "ESRI ASCII grids require square cells");
  std::ofstream os(path);
  ZH_REQUIRE_IO(os.is_open(), "cannot open for write: ", path);
  // Classic locale: number round-trips must not depend on the global
  // locale (a comma decimal point or digit grouping corrupts the file).
  os.imbue(std::locale::classic());
  const GeoBox ext = raster.extent();
  os << "ncols " << raster.cols() << '\n';
  os << "nrows " << raster.rows() << '\n';
  os.precision(17);
  os << "xllcorner " << ext.min_x << '\n';
  os << "yllcorner " << ext.min_y << '\n';
  os << "cellsize " << t.cell_w() << '\n';
  if (raster.nodata()) {
    os << "NODATA_value " << *raster.nodata() << '\n';
  }
  for (std::int64_t r = 0; r < raster.rows(); ++r) {
    const auto row = raster.row(r);
    for (std::int64_t c = 0; c < raster.cols(); ++c) {
      if (c != 0) os << ' ';
      os << row[static_cast<std::size_t>(c)];
    }
    os << '\n';
  }
  ZH_REQUIRE_IO(os.good(), "write failed: ", path);
}

DemRaster read_ascii_grid(const std::string& path) {
  std::ifstream is(path);
  ZH_REQUIRE_IO(is.is_open(), "cannot open for read: ", path);
  // Classic locale: number round-trips must not depend on the global
  // locale (a comma decimal point or digit grouping corrupts the file).
  is.imbue(std::locale::classic());

  std::int64_t ncols = -1;
  std::int64_t nrows = -1;
  double xll = 0.0;
  double yll = 0.0;
  double cellsize = 0.0;
  long nodata = -1;
  bool has_nodata = false;

  // Header: keyword value lines until the first purely numeric row.
  std::string key;
  while (true) {
    const auto pos = is.tellg();
    if (!(is >> key)) throw IoError("truncated ASCII grid header: " + path);
    if (key == "ncols") {
      is >> ncols;
    } else if (key == "nrows") {
      is >> nrows;
    } else if (key == "xllcorner") {
      is >> xll;
    } else if (key == "yllcorner") {
      is >> yll;
    } else if (key == "cellsize") {
      is >> cellsize;
    } else if (key == "NODATA_value" || key == "nodata_value") {
      is >> nodata;
      has_nodata = true;
    } else {
      is.seekg(pos);  // first data token: rewind and start reading cells
      break;
    }
    ZH_REQUIRE_IO(is.good(), "malformed ASCII grid header near '", key, "'");
  }
  ZH_REQUIRE_IO(ncols > 0 && nrows > 0 && cellsize > 0,
                "incomplete ASCII grid header in ", path);
  ZH_REQUIRE_IO(std::isfinite(xll) && std::isfinite(yll) &&
                    std::isfinite(cellsize),
                "non-finite ASCII grid header value in ", path);
  // Guard allocation before trusting the header: each declared cell needs
  // at least two bytes in the file (a digit plus a separator), so a header
  // whose cell count cannot fit in the file is lying. Check each dim
  // first so the product cannot overflow.
  constexpr std::int64_t kDimLimit = std::int64_t{1} << 31;
  ZH_REQUIRE_IO(ncols < kDimLimit && nrows < kDimLimit,
                "ASCII grid dims ", nrows, "x", ncols, " too large in ",
                path);
  std::error_code size_ec;
  const std::uintmax_t file_size = std::filesystem::file_size(path, size_ec);
  ZH_REQUIRE_IO(!size_ec, "cannot stat ", path);
  const std::uintmax_t cells = static_cast<std::uintmax_t>(nrows) *
                               static_cast<std::uintmax_t>(ncols);
  ZH_REQUIRE_IO(cells <= file_size,
                "ASCII grid header declares ", cells, " cells but ", path,
                " has only ", file_size, " bytes");

  const double origin_y = yll + cellsize * static_cast<double>(nrows);
  DemRaster raster(nrows, ncols,
                   GeoTransform(xll, origin_y, cellsize, cellsize));
  if (has_nodata) {
    ZH_REQUIRE_IO(nodata >= 0 &&
                      nodata <= std::numeric_limits<CellValue>::max(),
                  "NODATA_value out of uint16 range");
    raster.set_nodata(static_cast<CellValue>(nodata));
  }
  for (std::int64_t r = 0; r < nrows; ++r) {
    for (std::int64_t c = 0; c < ncols; ++c) {
      long v = 0;
      ZH_REQUIRE_IO(static_cast<bool>(is >> v), "truncated ASCII grid data");
      ZH_REQUIRE_IO(v >= 0 && v <= std::numeric_limits<CellValue>::max(),
                    "cell value ", v, " out of uint16 range");
      raster.at(r, c) = static_cast<CellValue>(v);
    }
  }
  return raster;
}

}  // namespace zh
