// Simple raster rendering to PPM images -- the hook for the paper's
// future-work item "integrate the GPU-accelerated geospatial operation
// with visualization modules". Renders elevation rasters with a
// hypsometric ramp, zone-id rasters as categorical maps, and choropleth
// maps of per-zone statistics.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "grid/raster.hpp"

namespace zh {

/// 8-bit RGB image, row-major.
struct RgbImage {
  std::int64_t width = 0;
  std::int64_t height = 0;
  std::vector<std::uint8_t> pixels;  // 3 bytes per pixel

  RgbImage() = default;
  RgbImage(std::int64_t w, std::int64_t h)
      : width(w), height(h),
        pixels(static_cast<std::size_t>(w * h * 3), 0) {}

  void set(std::int64_t x, std::int64_t y, std::uint8_t r, std::uint8_t g,
           std::uint8_t b) {
    const std::size_t i = static_cast<std::size_t>((y * width + x) * 3);
    pixels[i] = r;
    pixels[i + 1] = g;
    pixels[i + 2] = b;
  }
};

/// Binary PPM (P6) writer.
void write_ppm(const std::string& path, const RgbImage& image);

/// Hypsometric elevation rendering (green lowlands -> brown -> white
/// peaks), nodata in blue. `max_edge` caps the output size; larger
/// rasters are decimated by integer striding.
[[nodiscard]] RgbImage render_elevation(const DemRaster& dem,
                                        std::int64_t max_edge = 1024);

/// Categorical zone map from a rasterized zone-id grid (kInvalidPolygon
/// renders dark). Colors are a deterministic hash of the zone id.
[[nodiscard]] RgbImage render_zone_ids(const Raster<PolygonId>& zones,
                                       std::int64_t max_edge = 1024);

/// Choropleth: zone cells shaded by `values[zone]` over a blue->red
/// ramp spanning [min, max] of the finite values.
[[nodiscard]] RgbImage render_choropleth(const Raster<PolygonId>& zones,
                                         const std::vector<double>& values,
                                         std::int64_t max_edge = 1024);

}  // namespace zh
