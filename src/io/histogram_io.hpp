// Histogram persistence: sparse CSV, the interchange shape GIS zonal
// tools emit (one row per non-empty (zone, bin) pair).
//
//   zone,bin,count
//   0,1204,37
//   0,1205,81
//   ...
// Zone names travel separately (vector_io's polygon TSV keeps them); the
// CSV uses stable zone ids so it joins against any zone attribute table.
#pragma once

#include <string>

#include "core/histogram.hpp"

namespace zh {

/// Write non-zero bins as zone,bin,count rows (header included).
void write_histogram_csv(const std::string& path, const HistogramSet& h);

/// Read a zone,bin,count CSV. `groups`/`bins` size the result; rows out
/// of range throw IoError.
[[nodiscard]] HistogramSet read_histogram_csv(const std::string& path,
                                              std::size_t groups,
                                              BinIndex bins);

}  // namespace zh
