// ESRI ASCII grid (.asc) reader/writer -- the interchange format most GIS
// packages (ArcGIS, GDAL, GRASS) accept, provided for interoperability
// with existing zonal-statistics tools.
#pragma once

#include <string>

#include "grid/raster.hpp"

namespace zh {

/// Write `raster` as an ESRI ASCII grid. Requires square cells
/// (cell_w == cell_h), as the format has a single `cellsize` field.
void write_ascii_grid(const std::string& path, const DemRaster& raster);

/// Read an ESRI ASCII grid. Values must fit CellValue (uint16).
[[nodiscard]] DemRaster read_ascii_grid(const std::string& path);

}  // namespace zh
