#include "io/geojson.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <fstream>
#include <locale>
#include <sstream>
#include <variant>

#include "common/error.hpp"

namespace zh {

namespace {

// -------- minimal JSON value model + recursive-descent parser --------

struct JsonValue;
using JsonArray = std::vector<JsonValue>;
using JsonObject = std::vector<std::pair<std::string, JsonValue>>;

struct JsonValue {
  std::variant<std::nullptr_t, bool, double, std::string, JsonArray,
               JsonObject>
      v = nullptr;

  [[nodiscard]] const JsonObject* object() const {
    return std::get_if<JsonObject>(&v);
  }
  [[nodiscard]] const JsonArray* array() const {
    return std::get_if<JsonArray>(&v);
  }
  [[nodiscard]] const std::string* string() const {
    return std::get_if<std::string>(&v);
  }
  [[nodiscard]] const double* number() const {
    return std::get_if<double>(&v);
  }
};

const JsonValue* find(const JsonObject& obj, std::string_view key) {
  for (const auto& [k, val] : obj) {
    if (k == key) return &val;
  }
  return nullptr;
}

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : s_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    ZH_REQUIRE_IO(pos_ >= s_.size(), "trailing JSON content at offset ",
                  pos_);
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    ZH_REQUIRE_IO(pos_ < s_.size(), "unexpected end of JSON");
    return s_[pos_];
  }

  void expect(char c) {
    ZH_REQUIRE_IO(peek() == c, "expected '", c, "' at offset ", pos_);
    ++pos_;
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  JsonValue parse_value() {
    switch (peek()) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return JsonValue{parse_string()};
      case 't':
        expect_literal("true");
        return JsonValue{true};
      case 'f':
        expect_literal("false");
        return JsonValue{false};
      case 'n':
        expect_literal("null");
        return JsonValue{nullptr};
      default:
        return JsonValue{parse_number()};
    }
  }

  void expect_literal(std::string_view lit) {
    skip_ws();
    ZH_REQUIRE_IO(s_.substr(pos_, lit.size()) == lit,
                  "bad JSON literal at offset ", pos_);
    pos_ += lit.size();
  }

  double parse_number() {
    skip_ws();
    // from_chars, not strtod: strtod honors LC_NUMERIC, so a
    // comma-decimal locale would truncate "1.5" to 1. from_chars is
    // locale-independent by definition.
    const char* begin = s_.data() + pos_;
    const char* last = s_.data() + s_.size();
    double v = 0.0;
    const auto [end, ec] = std::from_chars(begin, last, v);
    ZH_REQUIRE_IO(ec != std::errc::invalid_argument && end != begin,
                  "expected number at offset ", pos_);
    ZH_REQUIRE_IO(ec == std::errc(), "JSON number out of double range "
                  "at offset ", pos_);
    // from_chars parses "nan"/"inf", which JSON forbids and downstream
    // geometry code cannot tolerate.
    ZH_REQUIRE_IO(std::isfinite(v), "non-finite JSON number at offset ",
                  pos_);
    pos_ += static_cast<std::size_t>(end - begin);
    return v;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      ZH_REQUIRE_IO(pos_ < s_.size(), "unterminated JSON string");
      const char c = s_[pos_++];
      if (c == '"') break;
      if (c == '\\') {
        ZH_REQUIRE_IO(pos_ < s_.size(), "dangling escape in string");
        const char e = s_[pos_++];
        switch (e) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'n': out.push_back('\n'); break;
          case 't': out.push_back('\t'); break;
          case 'r': out.push_back('\r'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'u': {
            // Basic BMP escape; emitted as '?' outside ASCII for
            // simplicity (names only; geometry carries no strings).
            ZH_REQUIRE_IO(pos_ + 4 <= s_.size(), "bad \\u escape");
            const std::string hex(s_.substr(pos_, 4));
            pos_ += 4;
            const long code = std::strtol(hex.c_str(), nullptr, 16);
            out.push_back(code < 128 ? static_cast<char>(code) : '?');
            break;
          }
          default:
            throw IoError("unsupported JSON escape");
        }
      } else {
        out.push_back(c);
      }
    }
    return out;
  }

  JsonValue parse_array() {
    const DepthGuard guard(*this);
    expect('[');
    JsonArray arr;
    if (consume(']')) return JsonValue{std::move(arr)};
    do {
      arr.push_back(parse_value());
    } while (consume(','));
    expect(']');
    return JsonValue{std::move(arr)};
  }

  JsonValue parse_object() {
    const DepthGuard guard(*this);
    expect('{');
    JsonObject obj;
    if (consume('}')) return JsonValue{std::move(obj)};
    do {
      std::string key = parse_string();
      expect(':');
      obj.emplace_back(std::move(key), parse_value());
    } while (consume(','));
    expect('}');
    return JsonValue{std::move(obj)};
  }

  /// Bounds recursion so adversarial "[[[[..." input cannot blow the
  /// stack; real GeoJSON nests at most ~6 levels deep.
  static constexpr int kMaxDepth = 64;
  struct DepthGuard {
    explicit DepthGuard(JsonParser& p) : parser(p) {
      ZH_REQUIRE_IO(++parser.depth_ <= kMaxDepth,
                    "JSON nesting exceeds depth limit of ", kMaxDepth);
    }
    ~DepthGuard() { --parser.depth_; }
    DepthGuard(const DepthGuard&) = delete;
    DepthGuard& operator=(const DepthGuard&) = delete;
    JsonParser& parser;
  };

  std::string_view s_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

// ---------------- GeoJSON geometry extraction ----------------

Ring parse_ring(const JsonArray& coords) {
  Ring ring;
  ring.reserve(coords.size());
  for (const JsonValue& pt : coords) {
    const JsonArray* pair = pt.array();
    ZH_REQUIRE_IO(pair != nullptr && pair->size() >= 2,
                  "GeoJSON position must be [x, y]");
    const double* x = (*pair)[0].number();
    const double* y = (*pair)[1].number();
    ZH_REQUIRE_IO(x != nullptr && y != nullptr,
                  "GeoJSON position must be numeric");
    ring.push_back({*x, *y});
  }
  // GeoJSON rings repeat the first position at the end.
  if (ring.size() >= 2 && ring.front() == ring.back()) ring.pop_back();
  ZH_REQUIRE_IO(ring.size() >= 3, "GeoJSON ring has fewer than 3 points");
  return ring;
}

void add_polygon_coords(const JsonArray& rings, Polygon& out) {
  for (const JsonValue& ring : rings) {
    const JsonArray* arr = ring.array();
    ZH_REQUIRE_IO(arr != nullptr, "GeoJSON ring must be an array");
    out.add_ring(parse_ring(*arr));
  }
}

Polygon parse_geometry(const JsonObject& geom) {
  const JsonValue* type = find(geom, "type");
  const JsonValue* coords = find(geom, "coordinates");
  ZH_REQUIRE_IO(type != nullptr && type->string() != nullptr &&
                    coords != nullptr && coords->array() != nullptr,
                "geometry needs type and coordinates");
  Polygon poly;
  if (*type->string() == "Polygon") {
    add_polygon_coords(*coords->array(), poly);
  } else if (*type->string() == "MultiPolygon") {
    for (const JsonValue& part : *coords->array()) {
      ZH_REQUIRE_IO(part.array() != nullptr,
                    "MultiPolygon part must be an array");
      add_polygon_coords(*part.array(), poly);
    }
  } else {
    throw IoError("unsupported GeoJSON geometry type: " + *type->string());
  }
  return poly;
}

std::string feature_name(const JsonObject& feature, std::size_t index) {
  if (const JsonValue* props = find(feature, "properties")) {
    if (const JsonObject* obj = props->object()) {
      if (const JsonValue* name = find(*obj, "name")) {
        if (name->string() != nullptr) return *name->string();
      }
    }
  }
  return "feature" + std::to_string(index);
}

void escape_into(std::ostream& os, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      default: os << c;
    }
  }
}

}  // namespace

PolygonSet parse_geojson(const std::string& text) {
  JsonParser parser(text);
  const JsonValue doc = parser.parse_document();
  const JsonObject* root = doc.object();
  ZH_REQUIRE_IO(root != nullptr, "GeoJSON root must be an object");
  const JsonValue* type = find(*root, "type");
  ZH_REQUIRE_IO(type != nullptr && type->string() != nullptr,
                "GeoJSON root needs a type");

  PolygonSet set;
  if (*type->string() == "FeatureCollection") {
    const JsonValue* features = find(*root, "features");
    ZH_REQUIRE_IO(features != nullptr && features->array() != nullptr,
                  "FeatureCollection needs a features array");
    std::size_t index = 0;
    for (const JsonValue& f : *features->array()) {
      const JsonObject* feature = f.object();
      ZH_REQUIRE_IO(feature != nullptr, "feature must be an object");
      const JsonValue* geom = find(*feature, "geometry");
      ZH_REQUIRE_IO(geom != nullptr && geom->object() != nullptr,
                    "feature needs a geometry");
      set.add(parse_geometry(*geom->object()),
              feature_name(*feature, index));
      ++index;
    }
  } else if (*type->string() == "Feature") {
    const JsonValue* geom = find(*root, "geometry");
    ZH_REQUIRE_IO(geom != nullptr && geom->object() != nullptr,
                  "feature needs a geometry");
    set.add(parse_geometry(*geom->object()), feature_name(*root, 0));
  } else {
    set.add(parse_geometry(*root), "feature0");
  }
  return set;
}

PolygonSet read_geojson(const std::string& path) {
  std::ifstream is(path);
  ZH_REQUIRE_IO(is.is_open(), "cannot open for read: ", path);
  std::ostringstream buf;
  buf << is.rdbuf();
  return parse_geojson(buf.str());
}

std::string to_geojson(const PolygonSet& set) {
  std::ostringstream os;
  // Classic locale: a comma-decimal global locale would emit coordinates
  // that are invalid JSON.
  os.imbue(std::locale::classic());
  os.precision(17);
  os << "{\"type\":\"FeatureCollection\",\"features\":[";
  for (PolygonId id = 0; id < set.size(); ++id) {
    if (id != 0) os << ',';
    os << "{\"type\":\"Feature\",\"properties\":{\"name\":\"";
    escape_into(os, set.name(id));
    os << "\"},\"geometry\":{\"type\":\"Polygon\",\"coordinates\":[";
    const Polygon& poly = set[id];
    for (std::size_t r = 0; r < poly.rings().size(); ++r) {
      if (r != 0) os << ',';
      os << '[';
      const Ring& ring = poly.rings()[r];
      for (const GeoPoint& p : ring) {
        os << '[' << p.x << ',' << p.y << "],";
      }
      os << '[' << ring.front().x << ',' << ring.front().y << "]]";
    }
    os << "]}}";
  }
  os << "]}";
  return os.str();
}

void write_geojson(const std::string& path, const PolygonSet& set) {
  std::ofstream os(path);
  ZH_REQUIRE_IO(os.is_open(), "cannot open for write: ", path);
  os << to_geojson(set) << '\n';
  ZH_REQUIRE_IO(os.good(), "write failed: ", path);
}

}  // namespace zh
