// GeoJSON (RFC 7946) polygon layer I/O -- the subset real zone layers
// use: FeatureCollection of Polygon / MultiPolygon features, with an
// optional "name" property per feature. Parsed with a small built-in
// JSON scanner (no external dependency); numbers, strings with basic
// escapes, nested arrays/objects. Unknown members are skipped.
//
// MultiPolygon features flatten to one zh::Polygon with even-odd ring
// semantics, matching the WKT reader's convention.
#pragma once

#include <string>

#include "geom/polygon.hpp"

namespace zh {

/// Parse a GeoJSON document: a FeatureCollection, a single Feature, or
/// a bare Polygon/MultiPolygon geometry. Throws IoError on malformed
/// input or unsupported geometry types.
[[nodiscard]] PolygonSet parse_geojson(const std::string& text);

/// Read a .geojson file.
[[nodiscard]] PolygonSet read_geojson(const std::string& path);

/// Serialize a polygon set as a FeatureCollection (each feature a
/// Polygon with a "name" property).
[[nodiscard]] std::string to_geojson(const PolygonSet& set);

/// Write a .geojson file.
void write_geojson(const std::string& path, const PolygonSet& set);

}  // namespace zh
