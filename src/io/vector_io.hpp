// Polygon-layer and histogram-output text I/O.
//
// Polygon layers are stored one feature per line as
//   <name> <TAB> <WKT polygon>
// (tab-separated because WKT itself is full of commas). Histograms are
// written as sparse CSV: one row per nonzero bin, mirroring the per-zone
// tables GIS zonal tools emit.
#pragma once

#include <string>

#include "geom/points.hpp"
#include "geom/polygon.hpp"

namespace zh {

class HistogramSet;  // core/histogram.hpp

/// Write `set` as name<TAB>WKT lines.
void write_polygon_tsv(const std::string& path, const PolygonSet& set);

/// Read a name<TAB>WKT polygon layer.
[[nodiscard]] PolygonSet read_polygon_tsv(const std::string& path);

/// Write points as "x,y,weight" CSV (header included; weight column
/// written as 1 when the set is unweighted).
void write_points_csv(const std::string& path, const PointSet& points);

/// Read an "x,y[,weight]" CSV (weight optional per header).
[[nodiscard]] PointSet read_points_csv(const std::string& path);

}  // namespace zh
