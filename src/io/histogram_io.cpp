#include "io/histogram_io.hpp"

#include <fstream>
#include <locale>
#include <sstream>

#include "common/error.hpp"

namespace zh {

void write_histogram_csv(const std::string& path, const HistogramSet& h) {
  std::ofstream os(path);
  ZH_REQUIRE_IO(os.is_open(), "cannot open for write: ", path);
  // Classic locale: a digit-grouping global locale would render counts
  // like "123.456" and break the reader.
  os.imbue(std::locale::classic());
  os << "zone,bin,count\n";
  for (std::size_t g = 0; g < h.groups(); ++g) {
    const auto row = h.of(g);
    for (BinIndex b = 0; b < h.bins(); ++b) {
      if (row[b] != 0) {
        os << g << ',' << b << ',' << row[b] << '\n';
      }
    }
  }
  ZH_REQUIRE_IO(os.good(), "write failed: ", path);
}

HistogramSet read_histogram_csv(const std::string& path,
                                std::size_t groups, BinIndex bins) {
  std::ifstream is(path);
  ZH_REQUIRE_IO(is.is_open(), "cannot open for read: ", path);
  HistogramSet h(groups, bins);
  std::string line;
  ZH_REQUIRE_IO(static_cast<bool>(std::getline(is, line)),
                "empty histogram CSV: ", path);
  ZH_REQUIRE_IO(line == "zone,bin,count",
                "unexpected histogram CSV header in ", path);
  std::size_t lineno = 1;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty()) continue;
    std::istringstream ls(line);
    ls.imbue(std::locale::classic());
    std::uint64_t zone = 0;
    std::uint64_t bin = 0;
    std::uint64_t count = 0;
    char c1 = 0;
    char c2 = 0;
    ZH_REQUIRE_IO(
        static_cast<bool>(ls >> zone >> c1 >> bin >> c2 >> count) &&
            c1 == ',' && c2 == ',',
        "malformed row at line ", lineno, " of ", path);
    ZH_REQUIRE_IO(zone < groups, "zone id out of range at line ", lineno);
    ZH_REQUIRE_IO(bin < bins, "bin out of range at line ", lineno);
    h.of(zone)[bin] = static_cast<BinCount>(count);
  }
  return h;
}

}  // namespace zh
