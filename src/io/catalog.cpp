#include "io/catalog.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "core/lazy_pipeline.hpp"
#include "io/bq_file.hpp"
#include "io/vector_io.hpp"

namespace zh {

namespace fs = std::filesystem;

std::string Catalog::zones_path() const {
  return (fs::path(directory) / zones_file).string();
}

std::string Catalog::raster_path(std::size_t i) const {
  ZH_REQUIRE(i < raster_files.size(), "raster index out of range");
  return (fs::path(directory) / raster_files[i]).string();
}

void write_catalog(
    const std::string& directory,
    const std::vector<std::pair<std::string, const BqCompressedRaster*>>&
        rasters,
    const PolygonSet& zones) {
  ZH_REQUIRE(!rasters.empty(), "a catalog needs at least one raster");
  fs::create_directories(directory);

  write_polygon_tsv((fs::path(directory) / "zones.tsv").string(), zones);
  for (const auto& [name, raster] : rasters) {
    ZH_REQUIRE(raster != nullptr, "null raster in catalog");
    ZH_REQUIRE(name.find('/') == std::string::npos &&
                   name.find("..") == std::string::npos,
               "raster names must be plain file stems");
    write_bq((fs::path(directory) / (name + ".bq")).string(), *raster);
  }

  std::ofstream manifest(fs::path(directory) / "catalog.txt");
  ZH_REQUIRE_IO(manifest.is_open(), "cannot write manifest in ",
                directory);
  manifest << "zhcatalog 1\n";
  manifest << "zones zones.tsv\n";
  for (const auto& [name, raster] : rasters) {
    manifest << "raster " << name << ".bq\n";
  }
  ZH_REQUIRE_IO(manifest.good(), "manifest write failed in ", directory);
}

Catalog open_catalog(const std::string& directory) {
  Catalog catalog;
  catalog.directory = directory;
  std::ifstream manifest(fs::path(directory) / "catalog.txt");
  ZH_REQUIRE_IO(manifest.is_open(), "no catalog.txt in ", directory);

  std::string line;
  ZH_REQUIRE_IO(static_cast<bool>(std::getline(manifest, line)) &&
                    line == "zhcatalog 1",
                "unsupported catalog header in ", directory);
  std::size_t lineno = 1;
  while (std::getline(manifest, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string kind;
    std::string file;
    ZH_REQUIRE_IO(static_cast<bool>(ls >> kind >> file),
                  "malformed manifest line ", lineno, " in ", directory);
    if (kind == "zones") {
      catalog.zones_file = file;
    } else if (kind == "raster") {
      catalog.raster_files.push_back(file);
    } else {
      throw IoError("unknown manifest entry '" + kind + "' in " +
                    directory);
    }
  }
  ZH_REQUIRE_IO(!catalog.zones_file.empty(),
                "catalog has no zone layer: ", directory);
  ZH_REQUIRE_IO(!catalog.raster_files.empty(),
                "catalog has no rasters: ", directory);
  ZH_REQUIRE_IO(fs::exists(catalog.zones_path()),
                "missing zone file: ", catalog.zones_path());
  for (std::size_t i = 0; i < catalog.raster_files.size(); ++i) {
    ZH_REQUIRE_IO(fs::exists(catalog.raster_path(i)),
                  "missing raster file: ", catalog.raster_path(i));
  }
  return catalog;
}

CatalogRunResult run_catalog(Device& device, const Catalog& catalog,
                             const ZonalConfig& config, bool lazy) {
  const PolygonSet zones = read_polygon_tsv(catalog.zones_path());

  CatalogRunResult result;
  result.per_polygon = HistogramSet(zones.size(), config.bins);
  const ZonalPipeline pipeline(device, config);
  ZonalWorkspace workspace;

  for (std::size_t i = 0; i < catalog.raster_files.size(); ++i) {
    const std::string path = catalog.raster_path(i);
    result.bytes_read += fs::file_size(path);
    const BqCompressedRaster compressed = read_bq(path);
    const ZonalResult r =
        lazy ? run_lazy(device, compressed, zones, config)
             : pipeline.run(compressed, zones, &workspace);
    result.per_polygon.add(r.per_polygon);
    result.times += r.times;
    result.work += r.work;
    ++result.rasters_processed;
  }
  return result;
}

}  // namespace zh
