#include "data/conus.hpp"

#include <cmath>

#include "common/error.hpp"

namespace zh::conus {

const std::vector<RasterSpec>& table1() {
  // Tops aligned at 50N, blocks laid west to east; ragged southern edge
  // (the real CONUS coverage is ragged too -- the paper calls out
  // southern-Florida edge tiles as a load-imbalance source).
  static const std::vector<RasterSpec> specs = {
      {"srtm_conus_1", 14, 12, 1, 2, -125.0, 50.0},
      {"srtm_conus_2", 14, 12, 2, 1, -113.0, 50.0},
      {"srtm_conus_3", 12, 12, 2, 2, -101.0, 50.0},
      {"srtm_conus_4", 10, 12, 2, 2, -89.0, 50.0},
      {"srtm_conus_5", 13, 20, 4, 4, -77.0, 50.0},
      {"srtm_conus_6", 24, 29, 2, 4, -57.0, 50.0},
  };
  return specs;
}

std::int64_t total_cells(int scale_divisor) {
  std::int64_t n = 0;
  for (const RasterSpec& s : table1()) n += s.cells_at(scale_divisor);
  return n;
}

int total_partitions() {
  int n = 0;
  for (const RasterSpec& s : table1()) n += s.partitions();
  return n;
}

GeoBox full_extent() {
  GeoBox box = table1().front().extent();
  for (const RasterSpec& s : table1()) {
    const GeoBox b = s.extent();
    box.expand({b.min_x, b.min_y});
    box.expand({b.max_x, b.max_y});
  }
  return box;
}

std::int64_t tile_size_cells(int scale_divisor) {
  ZH_REQUIRE(3600 % scale_divisor == 0,
             "scale divisor must divide 3600 (cells/degree)");
  const std::int64_t t = 360 / scale_divisor;
  ZH_REQUIRE(t >= 1, "scale divisor too large: 0.1-degree tile underflows");
  return t;
}

DemRaster generate_raster(const RasterSpec& spec, int scale_divisor,
                          const DemParams& dem) {
  ZH_REQUIRE(3600 % scale_divisor == 0,
             "scale divisor must divide 3600 (cells/degree)");
  return generate_dem(spec.rows_at(scale_divisor),
                      spec.cols_at(scale_divisor),
                      spec.transform_at(scale_divisor), dem);
}

PolygonSet generate_county_layer(int zones, std::uint64_t seed) {
  ZH_REQUIRE(zones >= 1, "need at least one zone");
  const GeoBox extent = full_extent();
  // Factor `zones` into a grid with roughly the extent's aspect ratio.
  const double aspect = extent.width() / extent.height();
  int gy = std::max(1, static_cast<int>(std::lround(
                           std::sqrt(static_cast<double>(zones) / aspect))));
  int gx = std::max(1, (zones + gy - 1) / gy);
  CountyParams params;
  params.seed = seed;
  params.grid_x = gx;
  params.grid_y = gy;
  params.hole_every = 10;
  return generate_counties(extent, params);
}

}  // namespace zh::conus
