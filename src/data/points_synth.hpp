// Synthetic point-event generation (species-occurrence style).
//
// Stands in for the GBIF species-occurrence data of the paper's
// zonal-summation companion study (ref [20]): point events with abundance
// weights, either uniform over an extent or clustered (hotspots), which
// is the distribution shape biodiversity data actually has.
#pragma once

#include <cstdint>

#include "geom/points.hpp"
#include "grid/geotransform.hpp"

namespace zh {

struct PointParams {
  std::uint64_t seed = 13;
  std::size_t count = 10000;
  int clusters = 0;          ///< 0 = uniform; else Gaussian hotspots
  double cluster_sigma = 0.05;  ///< hotspot radius, fraction of extent
  bool weighted = true;      ///< draw abundance weights in [1, 100)
};

/// Generate points inside `extent` (strictly interior, so grid binning
/// and reference PIP agree on every point).
[[nodiscard]] PointSet generate_points(const GeoBox& extent,
                                       const PointParams& params = {});

}  // namespace zh
