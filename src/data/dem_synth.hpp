// Synthetic DEM generation.
//
// Stands in for the NASA SRTM 30 m CONUS rasters (the paper's input; 20.1
// billion cells, not shippable here). The generator produces fractional-
// Brownian-motion value-noise terrain: spatially correlated elevations in
// [0, max_value], which reproduces the two properties the pipeline is
// sensitive to -- per-tile value locality (drives BQ-Tree compression and
// histogram sparsity) and a realistic elevation distribution (most values
// well below the bin ceiling, as with real SRTM data where almost all
// cells are under 5000 m).
//
// Generation is deterministic in (seed, geotransform): the elevation at a
// cell depends only on its geographic position, so two rasters covering
// adjacent areas agree along their shared border -- required for the
// multi-raster CONUS layout and the cluster partitioning experiments.
#pragma once

#include <cstdint>

#include "common/types.hpp"
#include "grid/raster.hpp"

namespace zh {

struct DemParams {
  std::uint64_t seed = 42;
  int octaves = 5;           ///< fBm octave count
  double base_scale = 2.0;   ///< feature size of the lowest octave, degrees
  double persistence = 0.5;  ///< per-octave amplitude falloff
  CellValue max_value = 4999;  ///< elevations span [0, max_value]
};

/// Generate a rows x cols DEM under `transform` (rows generated in
/// parallel on the global pool).
[[nodiscard]] DemRaster generate_dem(std::int64_t rows, std::int64_t cols,
                                     const GeoTransform& transform,
                                     const DemParams& params = {});

/// Elevation at a geographic position (the pure function the raster
/// samples; exposed for border-consistency tests).
[[nodiscard]] CellValue dem_elevation(double x, double y,
                                      const DemParams& params);

/// Synthetic land-cover layer: fBm terrain quantized into `classes`
/// categories (0..classes-1). Low-entropy thematic data of the kind the
/// paper's introduction motivates -- and the input family where
/// quadtree-backed histogramming shines (large uniform patches).
[[nodiscard]] DemRaster generate_landcover(std::int64_t rows,
                                           std::int64_t cols,
                                           const GeoTransform& transform,
                                           CellValue classes,
                                           std::uint64_t seed = 99);

}  // namespace zh
