#include "data/dem_synth.hpp"

#include <cmath>

#include "device/thread_pool.hpp"

namespace zh {

namespace {

// SplitMix64: statistically solid 64-bit mixer, used as a lattice hash.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// Lattice value in [0, 1) at integer coordinates for one octave.
double lattice(std::int64_t ix, std::int64_t iy, std::uint64_t seed,
               int octave) {
  std::uint64_t h = mix64(static_cast<std::uint64_t>(ix) * 0x8da6b343ull ^
                          static_cast<std::uint64_t>(iy) * 0xd8163841ull ^
                          seed ^ (static_cast<std::uint64_t>(octave) << 56));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

double smoothstep(double t) { return t * t * (3.0 - 2.0 * t); }

// Bilinear value noise at (x, y) for one octave (frequency pre-applied).
double value_noise(double x, double y, std::uint64_t seed, int octave) {
  const double fx = std::floor(x);
  const double fy = std::floor(y);
  const auto ix = static_cast<std::int64_t>(fx);
  const auto iy = static_cast<std::int64_t>(fy);
  const double tx = smoothstep(x - fx);
  const double ty = smoothstep(y - fy);
  const double v00 = lattice(ix, iy, seed, octave);
  const double v10 = lattice(ix + 1, iy, seed, octave);
  const double v01 = lattice(ix, iy + 1, seed, octave);
  const double v11 = lattice(ix + 1, iy + 1, seed, octave);
  const double a = v00 + (v10 - v00) * tx;
  const double b = v01 + (v11 - v01) * tx;
  return a + (b - a) * ty;
}

}  // namespace

CellValue dem_elevation(double x, double y, const DemParams& params) {
  double amp = 1.0;
  double freq = 1.0 / params.base_scale;
  double sum = 0.0;
  double norm = 0.0;
  for (int o = 0; o < params.octaves; ++o) {
    sum += amp * value_noise(x * freq, y * freq, params.seed, o);
    norm += amp;
    amp *= params.persistence;
    freq *= 2.0;
  }
  const double v = sum / norm;  // in [0, 1)
  return static_cast<CellValue>(v * (static_cast<double>(params.max_value) + 1.0));
}

DemRaster generate_landcover(std::int64_t rows, std::int64_t cols,
                             const GeoTransform& transform,
                             CellValue classes, std::uint64_t seed) {
  ZH_REQUIRE(classes >= 1, "need at least one land-cover class");
  // Few octaves and a large base scale give broad uniform patches once
  // quantized.
  DemParams params;
  params.seed = seed;
  params.octaves = 3;
  params.base_scale = 4.0;
  params.max_value = static_cast<CellValue>(classes - 1);
  return generate_dem(rows, cols, transform, params);
}

DemRaster generate_dem(std::int64_t rows, std::int64_t cols,
                       const GeoTransform& transform,
                       const DemParams& params) {
  DemRaster raster(rows, cols, transform);
  ThreadPool::global().parallel_for(
      static_cast<std::size_t>(rows), [&](std::size_t b, std::size_t e) {
        for (std::size_t r = b; r < e; ++r) {
          for (std::int64_t c = 0; c < cols; ++c) {
            const GeoPoint p =
                transform.cell_center(static_cast<std::int64_t>(r), c);
            raster.at(static_cast<std::int64_t>(r), c) =
                dem_elevation(p.x, p.y, params);
          }
        }
      });
  return raster;
}

}  // namespace zh
