#include "data/points_synth.hpp"

#include <algorithm>
#include <random>

#include "common/error.hpp"

namespace zh {

PointSet generate_points(const GeoBox& extent, const PointParams& params) {
  ZH_REQUIRE(extent.width() > 0 && extent.height() > 0,
             "extent must have positive area");
  std::mt19937_64 rng(params.seed);
  // Keep a hair inside the extent so every point bins into a tile.
  const double margin = 1e-9 * std::max(extent.width(), extent.height());
  std::uniform_real_distribution<double> ux(extent.min_x + margin,
                                            extent.max_x - margin);
  std::uniform_real_distribution<double> uy(extent.min_y + margin,
                                            extent.max_y - margin);
  std::uniform_real_distribution<double> uw(1.0, 100.0);

  PointSet points;
  points.x.reserve(params.count);
  points.y.reserve(params.count);
  if (params.weighted) points.weight.reserve(params.count);

  std::vector<GeoPoint> centers;
  if (params.clusters > 0) {
    centers.reserve(static_cast<std::size_t>(params.clusters));
    for (int i = 0; i < params.clusters; ++i) {
      centers.push_back({ux(rng), uy(rng)});
    }
  }
  std::normal_distribution<double> gx(0.0,
                                      params.cluster_sigma * extent.width());
  std::normal_distribution<double> gy(
      0.0, params.cluster_sigma * extent.height());
  std::uniform_int_distribution<std::size_t> pick(
      0, centers.empty() ? 0 : centers.size() - 1);

  for (std::size_t i = 0; i < params.count; ++i) {
    double px;
    double py;
    if (centers.empty()) {
      px = ux(rng);
      py = uy(rng);
    } else {
      // Rejection-free: clamp hotspot samples back into the extent.
      const GeoPoint& c = centers[pick(rng)];
      px = std::clamp(c.x + gx(rng), extent.min_x + margin,
                      extent.max_x - margin);
      py = std::clamp(c.y + gy(rng), extent.min_y + margin,
                      extent.max_y - margin);
    }
    points.x.push_back(px);
    points.y.push_back(py);
    if (params.weighted) points.weight.push_back(uw(rng));
  }
  return points;
}

}  // namespace zh
