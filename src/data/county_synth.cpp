#include "data/county_synth.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <vector>

#include "common/error.hpp"

namespace zh {

namespace {

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Uniform double in [-1, 1) from a hash.
double signed_unit(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-52 - 1.0;
}

double snap(double v, double quantum) {
  return quantum > 0.0 ? std::round(v / quantum) * quantum : v;
}

/// Sutherland-Hodgman clip of a convex polygon by the half-plane of
/// points closer to `a` than to `b` (the perpendicular bisector).
std::vector<GeoPoint> clip_closer_to(const std::vector<GeoPoint>& poly,
                                     const GeoPoint& a, const GeoPoint& b) {
  // Half-plane: n . p <= c with n = b - a, c = n . midpoint.
  const double nx = b.x - a.x;
  const double ny = b.y - a.y;
  const double c = nx * (a.x + b.x) / 2.0 + ny * (a.y + b.y) / 2.0;
  auto side = [&](const GeoPoint& p) { return nx * p.x + ny * p.y - c; };

  std::vector<GeoPoint> out;
  const std::size_t n = poly.size();
  out.reserve(n + 2);
  for (std::size_t i = 0; i < n; ++i) {
    const GeoPoint& p = poly[i];
    const GeoPoint& q = poly[(i + 1) % n];
    const double sp = side(p);
    const double sq = side(q);
    if (sp <= 0.0) out.push_back(p);
    if ((sp < 0.0 && sq > 0.0) || (sp > 0.0 && sq < 0.0)) {
      const double t = sp / (sp - sq);
      out.push_back({p.x + t * (q.x - p.x), p.y + t * (q.y - p.y)});
    }
  }
  return out;
}

/// Deterministic fractal midpoint displacement of edge a->b, writing the
/// interior vertices (exclusive of a and b, which the caller owns) into
/// `out`. Symmetric: displacing b->a yields the reversed vertex list, so
/// two zones sharing the edge stay stitched together.
void displace_edge(const GeoPoint& a, const GeoPoint& b, int depth,
                   double amp, std::uint64_t seed, double quantum,
                   const GeoBox& extent, std::vector<GeoPoint>& out) {
  if (depth == 0) return;
  const double dx = b.x - a.x;
  const double dy = b.y - a.y;
  const double len = std::hypot(dx, dy);
  if (len < 8.0 * quantum) return;  // too short to subdivide stably

  // Canonical orientation: hash and perpendicular both computed on the
  // lexicographically ordered endpoint pair.
  const bool fwd = (a.x < b.x) || (a.x == b.x && a.y < b.y);
  const GeoPoint& lo = fwd ? a : b;
  const GeoPoint& hi = fwd ? b : a;
  const auto qx0 = static_cast<std::int64_t>(std::llround(lo.x / quantum));
  const auto qy0 = static_cast<std::int64_t>(std::llround(lo.y / quantum));
  const auto qx1 = static_cast<std::int64_t>(std::llround(hi.x / quantum));
  const auto qy1 = static_cast<std::int64_t>(std::llround(hi.y / quantum));
  const std::uint64_t h =
      mix64(static_cast<std::uint64_t>(qx0) * 0x9ddfea08eb382d69ull ^
            mix64(static_cast<std::uint64_t>(qy0) ^
                  mix64(static_cast<std::uint64_t>(qx1) ^
                        mix64(static_cast<std::uint64_t>(qy1) ^ seed))));

  // Perpendicular of the canonical direction; same absolute midpoint from
  // both traversal directions.
  const double px = -(hi.y - lo.y) / len;
  const double py = (hi.x - lo.x) / len;
  const double d = signed_unit(h) * amp * len;
  // Clamp into the extent so zones near the boundary cannot bulge out;
  // the clamp is a pure function of the midpoint, so both zones sharing
  // the edge stay stitched.
  GeoPoint mid{
      snap(std::clamp((lo.x + hi.x) / 2.0 + px * d, extent.min_x,
                      extent.max_x),
           quantum),
      snap(std::clamp((lo.y + hi.y) / 2.0 + py * d, extent.min_y,
                      extent.max_y),
           quantum)};

  displace_edge(a, mid, depth - 1, amp, seed, quantum, extent, out);
  out.push_back(mid);
  displace_edge(mid, b, depth - 1, amp, seed, quantum, extent, out);
}

}  // namespace

PolygonSet generate_counties(const GeoBox& extent,
                             const CountyParams& params) {
  ZH_REQUIRE(params.grid_x > 0 && params.grid_y > 0,
             "zone grid must be non-empty");
  ZH_REQUIRE(params.jitter >= 0.0 && params.jitter < 0.5,
             "jitter must be in [0, 0.5) for 2-ring Voronoi correctness");
  const int gx = params.grid_x;
  const int gy = params.grid_y;
  const double sx = extent.width() / gx;
  const double sy = extent.height() / gy;
  ZH_REQUIRE(sx > 0.0 && sy > 0.0, "extent must have positive area");

  // Jittered seed lattice.
  std::vector<GeoPoint> seeds(static_cast<std::size_t>(gx) * gy);
  for (int j = 0; j < gy; ++j) {
    for (int i = 0; i < gx; ++i) {
      const std::uint64_t h =
          mix64((static_cast<std::uint64_t>(i) << 32) ^
                static_cast<std::uint64_t>(j) ^ mix64(params.seed));
      const double jx = signed_unit(h) * params.jitter;
      const double jy = signed_unit(mix64(h)) * params.jitter;
      seeds[static_cast<std::size_t>(j) * gx + i] = {
          extent.min_x + (i + 0.5 + jx) * sx,
          extent.min_y + (j + 0.5 + jy) * sy};
    }
  }

  PolygonSet set;
  for (int j = 0; j < gy; ++j) {
    for (int i = 0; i < gx; ++i) {
      const GeoPoint& seed = seeds[static_cast<std::size_t>(j) * gx + i];

      // Start from the extent rectangle, clip against the bisectors of
      // the 2-ring neighborhood (sufficient for jitter < 0.5).
      std::vector<GeoPoint> cell = {{extent.min_x, extent.min_y},
                                    {extent.max_x, extent.min_y},
                                    {extent.max_x, extent.max_y},
                                    {extent.min_x, extent.max_y}};
      for (int dj = -2; dj <= 2 && !cell.empty(); ++dj) {
        for (int di = -2; di <= 2 && !cell.empty(); ++di) {
          if (di == 0 && dj == 0) continue;
          const int ni = i + di;
          const int nj = j + dj;
          if (ni < 0 || ni >= gx || nj < 0 || nj >= gy) continue;
          cell = clip_closer_to(
              cell, seed, seeds[static_cast<std::size_t>(nj) * gx + ni]);
        }
      }
      ZH_REQUIRE(cell.size() >= 3, "degenerate Voronoi cell at (", i, ",",
                 j, ")");

      // Snap the convex cell's vertices, then displace each edge.
      for (GeoPoint& p : cell) {
        p.x = snap(p.x, params.snap_quantum);
        p.y = snap(p.y, params.snap_quantum);
      }
      // Edges lying on the extent rectangle stay straight: displacing
      // them would push boundary zones outside the extent (and leave
      // uncovered strips along it).
      const double eps = 2.0 * params.snap_quantum;
      auto on_extent_edge = [&](const GeoPoint& a, const GeoPoint& b) {
        return (std::abs(a.x - extent.min_x) < eps &&
                std::abs(b.x - extent.min_x) < eps) ||
               (std::abs(a.x - extent.max_x) < eps &&
                std::abs(b.x - extent.max_x) < eps) ||
               (std::abs(a.y - extent.min_y) < eps &&
                std::abs(b.y - extent.min_y) < eps) ||
               (std::abs(a.y - extent.max_y) < eps &&
                std::abs(b.y - extent.max_y) < eps);
      };

      Ring ring;
      const std::size_t n = cell.size();
      for (std::size_t k = 0; k < n; ++k) {
        const GeoPoint& a = cell[k];
        const GeoPoint& b = cell[(k + 1) % n];
        ring.push_back(a);
        if (!on_extent_edge(a, b)) {
          displace_edge(a, b, params.displace_depth, params.displace_amp,
                        params.seed, params.snap_quantum, extent, ring);
        }
      }

      Polygon poly({ring});

      // Optional hole (diamond around the seed), making the zone
      // multi-ring. Kept small relative to the grid spacing so it stays
      // strictly interior even after edge displacement.
      const int zone_index = j * gx + i;
      if (params.hole_every > 0 &&
          (zone_index % params.hole_every) == params.hole_every - 1) {
        const double r = 0.12 * std::min(sx, sy);
        poly.add_ring(Ring{{seed.x + r, seed.y},
                           {seed.x, seed.y + r},
                           {seed.x - r, seed.y},
                           {seed.x, seed.y - r}});
      }

      std::ostringstream name;
      name << "Z" << zone_index;
      set.add(std::move(poly), name.str());
    }
  }
  return set;
}

}  // namespace zh
