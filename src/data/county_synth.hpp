// Synthetic zone-polygon generation.
//
// Stands in for the US county boundary layer of the paper (3k+ polygons,
// 87,097 vertices, multi-ring). The generator tessellates an extent into
// K space-filling zones: seeds on a jittered grid, zone shapes as Voronoi
// cells obtained by half-plane clipping, then fractal midpoint
// displacement of the edges to give county-like irregular boundaries.
// Shared edges are displaced identically from both sides (the
// displacement is a function of the canonical edge endpoints only), so
// the tessellation remains gap- and overlap-free up to floating-point
// snapping. Optionally every Nth polygon receives a hole (ring 2),
// exercising the paper's multi-ring handling.
#pragma once

#include <cstdint>

#include "geom/polygon.hpp"
#include "grid/geotransform.hpp"

namespace zh {

struct CountyParams {
  std::uint64_t seed = 7;
  int grid_x = 10;            ///< seed columns (zones ~= grid_x * grid_y)
  int grid_y = 8;             ///< seed rows
  double jitter = 0.45;       ///< seed jitter, fraction of grid spacing
  int displace_depth = 3;     ///< midpoint-displacement recursion depth
  double displace_amp = 0.18; ///< displacement, fraction of edge length
  int hole_every = 0;         ///< 0 = no holes; else every Nth zone gets one
  double snap_quantum = 1e-6; ///< vertex snap grid (shared-edge exactness)
};

/// Tessellate `extent` into grid_x*grid_y irregular zone polygons.
[[nodiscard]] PolygonSet generate_counties(const GeoBox& extent,
                                           const CountyParams& params = {});

}  // namespace zh
