// The Table-1 CONUS dataset descriptor.
//
// Table 1 of the paper lists the six SRTM rasters covering the
// Continental United States, their dimensions, and the partition schema
// used to spread them over 36 cluster partitions; totals: 6 rasters,
// 36 partitions, 20,165,760,000 cells. Several dimension digits are
// illegible in the available copy of the paper, so the per-raster
// dimensions below are *reconstructed*: whole-degree SRTM block sizes
// (3600 cells/degree) chosen to match every legible digit group and to
// reproduce the published totals exactly (sum of degree-areas = 1556
// sq deg -> 1556 * 3600^2 = 20,165,760,000 cells; partitions
// 2+2+4+4+16+8 = 36).
//
// A scale divisor S maps the descriptor to experiment-sized data: cell
// resolution becomes 3600/S per degree, preserving the geographic layout
// and partition schema while shrinking cell counts by S^2. S=1 is the
// paper's full-size dataset (bookkeeping only -- 40 GB of cells); the
// benches default to S=30 (~22.4 M cells).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "data/county_synth.hpp"
#include "data/dem_synth.hpp"
#include "grid/geotransform.hpp"
#include "grid/raster.hpp"

namespace zh::conus {

/// One raster of Table 1.
struct RasterSpec {
  std::string name;
  int deg_rows;      ///< north-south extent, degrees
  int deg_cols;      ///< east-west extent, degrees
  int part_rows;     ///< partition grid (Table 1 "partition schema")
  int part_cols;
  double origin_x;   ///< west edge, degrees lon
  double origin_y;   ///< north edge, degrees lat

  [[nodiscard]] int partitions() const { return part_rows * part_cols; }

  /// Cell dimensions at scale divisor S (cells/deg = 3600/S).
  [[nodiscard]] std::int64_t rows_at(int scale_divisor) const {
    return static_cast<std::int64_t>(deg_rows) * (3600 / scale_divisor);
  }
  [[nodiscard]] std::int64_t cols_at(int scale_divisor) const {
    return static_cast<std::int64_t>(deg_cols) * (3600 / scale_divisor);
  }
  [[nodiscard]] std::int64_t cells_at(int scale_divisor) const {
    return rows_at(scale_divisor) * cols_at(scale_divisor);
  }

  [[nodiscard]] GeoTransform transform_at(int scale_divisor) const {
    const double cell = static_cast<double>(scale_divisor) / 3600.0;
    return GeoTransform(origin_x, origin_y, cell, cell);
  }
  [[nodiscard]] GeoBox extent() const {
    return GeoBox{origin_x, origin_y - deg_rows,
                  origin_x + deg_cols, origin_y};
  }
};

/// The six Table-1 rasters (geographic layout synthetic: adjacent
/// non-overlapping blocks in CONUS-range coordinates).
[[nodiscard]] const std::vector<RasterSpec>& table1();

/// Sum of cells over all rasters at scale S (S=1: 20,165,760,000).
[[nodiscard]] std::int64_t total_cells(int scale_divisor = 1);

/// Total partition count (36).
[[nodiscard]] int total_partitions();

/// Union extent of all six rasters.
[[nodiscard]] GeoBox full_extent();

/// Paper-matching analysis parameters: 0.1-degree tiles and 5000 bins.
/// tile_size_cells(S) = 360/S.
[[nodiscard]] std::int64_t tile_size_cells(int scale_divisor);
inline constexpr BinIndex kHistogramBins = 5000;

/// Generate the DEM for one raster spec at scale S. Elevation is a pure
/// function of geography, so adjacent rasters agree along borders.
[[nodiscard]] DemRaster generate_raster(const RasterSpec& spec,
                                        int scale_divisor,
                                        const DemParams& dem = {});

/// Generate a county layer over the full CONUS extent with roughly
/// `zones` polygons (multi-ring every 10th zone).
[[nodiscard]] PolygonSet generate_county_layer(int zones,
                                               std::uint64_t seed = 7);

}  // namespace zh::conus
