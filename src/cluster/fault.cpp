#include "cluster/fault.hpp"

#include <array>
#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <vector>

namespace zh {

namespace {

/// Uniform draw in [0, 1) keyed by (plan seed, message identity, stream).
double draw(const FaultPlan& plan, RankId src, RankId dst, int tag,
            std::uint64_t index, std::uint64_t stream) {
  std::uint64_t h = splitmix64(plan.seed ^ (stream * 0xA24BAED4963EE407ull));
  h = splitmix64(h ^ (static_cast<std::uint64_t>(src) << 32 | dst));
  h = splitmix64(h ^ static_cast<std::uint64_t>(static_cast<std::int64_t>(tag)));
  h = splitmix64(h ^ index);
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

constexpr std::array<std::pair<std::string_view, CrashPoint>, 7> kPointNames{
    {{"none", CrashPoint::kNone},
     {"startup", CrashPoint::kStartup},
     {"partition_start", CrashPoint::kPartitionStart},
     {"partition_done", CrashPoint::kPartitionDone},
     {"result_sent", CrashPoint::kResultSent},
     {"before_finish", CrashPoint::kBeforeFinish},
     {"journal_record", CrashPoint::kJournalRecord}}};

/// All parse failures funnel through here so every message has the same
/// shape -- problem, byte offset, full spec, grammar -- and tests can pin
/// the exact text (no __FILE__:__LINE__ noise).
[[noreturn]] void parse_fail(std::string_view spec, std::size_t offset,
                             std::string_view problem) {
  throw InvalidArgument(detail::format_parts(
      "fault plan: ", problem, " at byte ", offset, " of '", spec, "' (",
      FaultPlan::kGrammar, ")"));
}

double parse_prob(std::string_view spec, std::size_t offset,
                  std::string_view key, std::string_view value) {
  // from_chars, not strtod: strtod honors LC_NUMERIC, so a comma-decimal
  // locale would silently truncate "0.5" to 0.
  double p = 0.0;
  const auto [end, ec] =
      std::from_chars(value.data(), value.data() + value.size(), p);
  if (value.empty() || ec != std::errc() ||
      end != value.data() + value.size() || !(p >= 0.0 && p <= 1.0)) {
    parse_fail(spec, offset,
               detail::format_parts("key '", key, "' needs a probability in "
                                    "[0,1], got '", value, "'"));
  }
  return p;
}

std::uint64_t parse_u64(std::string_view spec, std::size_t offset,
                        std::string_view key, std::string_view value) {
  const std::string v(value);
  char* end = nullptr;
  const unsigned long long n = std::strtoull(v.c_str(), &end, 10);
  if (v.empty() || end != v.c_str() + v.size()) {
    parse_fail(spec, offset,
               detail::format_parts("key '", key, "' needs a non-negative "
                                    "integer, got '", value, "'"));
  }
  return n;
}

CrashPoint parse_point(std::string_view spec, std::size_t offset,
                       std::string_view name) {
  for (const auto& [n, point] : kPointNames) {
    if (name == n) return point;
  }
  parse_fail(spec, offset,
             detail::format_parts("unknown crash point '", name, "'"));
}

CrashSpec parse_crash(std::string_view spec, std::size_t offset,
                      std::string_view value) {
  const auto at = value.find('@');
  if (at == std::string_view::npos) {
    parse_fail(spec, offset,
               detail::format_parts("key 'crash' needs "
                                    "<rank>@<point>[#<occurrence>], got '",
                                    value, "'"));
  }
  CrashSpec out;
  out.rank = static_cast<RankId>(
      parse_u64(spec, offset, "crash", value.substr(0, at)));
  std::string_view rest = value.substr(at + 1);
  const auto hash = rest.find('#');
  if (hash != std::string_view::npos) {
    out.occurrence = static_cast<std::uint32_t>(
        parse_u64(spec, offset + at + 1 + hash + 1, "crash occurrence",
                  rest.substr(hash + 1)));
    rest = rest.substr(0, hash);
  }
  out.point = parse_point(spec, offset + at + 1, rest);
  return out;
}

AbortSpec parse_abort(std::string_view spec, std::size_t offset,
                      std::string_view value) {
  AbortSpec out;
  std::string_view rest = value;
  const auto hash = rest.find('#');
  if (hash != std::string_view::npos) {
    out.occurrence = static_cast<std::uint32_t>(
        parse_u64(spec, offset + hash + 1, "abort occurrence",
                  rest.substr(hash + 1)));
    rest = rest.substr(0, hash);
  }
  out.point = parse_point(spec, offset, rest);
  return out;
}

}  // namespace

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

std::string_view to_string(CrashPoint point) {
  for (const auto& [name, p] : kPointNames) {
    if (p == point) return name;
  }
  return "unknown";
}

void hard_exit(CrashPoint point, std::uint32_t occurrence) {
  const std::string_view name = to_string(point);
  // A simulated node death must not unwind, flush containers, or run
  // atexit handlers -- durable state is exactly the fsync'd bytes. The
  // one-line epitaph lets the kill/resume harness confirm the abort
  // fired (stderr is unbuffered, so it survives _Exit).
  // zh-lint-ignore(stdio-in-lib): abort-fault epitaph; the kill/resume harness reads stderr
  std::fprintf(stderr, "zh: scripted process abort at %.*s #%u\n",
               static_cast<int>(name.size()), name.data(), occurrence);
  std::_Exit(kAbortExitCode);
}

RankCrash::RankCrash(RankId rank, CrashPoint point, std::uint32_t occurrence)
    : Error(detail::format_parts("rank ", rank, " crashed at ",
                                 to_string(point), " #", occurrence,
                                 " (scripted fault)")),
      rank_(rank),
      point_(point) {}

FaultAction FaultPlan::action_for(RankId src, RankId dst, int tag,
                                  std::uint64_t index) const {
  FaultAction action;
  if (drop_prob > 0.0 && draw(*this, src, dst, tag, index, 1) < drop_prob) {
    action.drop = true;
    return action;  // a dropped message has no other fate
  }
  if (duplicate_prob > 0.0 &&
      draw(*this, src, dst, tag, index, 2) < duplicate_prob) {
    action.duplicate = true;
  }
  if (reorder_prob > 0.0 &&
      draw(*this, src, dst, tag, index, 3) < reorder_prob) {
    action.reorder = true;
  }
  if (delay_prob > 0.0 && draw(*this, src, dst, tag, index, 4) < delay_prob) {
    action.delay_ms = delay_ms;
  }
  return action;
}

FaultPlan FaultPlan::parse(std::string_view spec) {
  FaultPlan plan;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    auto comma = spec.find(',', pos);
    if (comma == std::string_view::npos) comma = spec.size();
    const std::string_view item = spec.substr(pos, comma - pos);
    const std::size_t item_off = pos;
    pos = comma + 1;
    if (item.empty()) continue;
    const auto eq = item.find('=');
    if (eq == std::string_view::npos) {
      parse_fail(spec, item_off,
                 detail::format_parts("expected key=value, got '", item, "'"));
    }
    const std::string_view key = item.substr(0, eq);
    const std::string_view value = item.substr(eq + 1);
    const std::size_t value_off = item_off + eq + 1;
    if (key == "seed") {
      plan.seed = parse_u64(spec, value_off, key, value);
    } else if (key == "drop") {
      plan.drop_prob = parse_prob(spec, value_off, key, value);
    } else if (key == "dup") {
      plan.duplicate_prob = parse_prob(spec, value_off, key, value);
    } else if (key == "reorder") {
      plan.reorder_prob = parse_prob(spec, value_off, key, value);
    } else if (key == "delay") {
      plan.delay_prob = parse_prob(spec, value_off, key, value);
    } else if (key == "delay_ms") {
      plan.delay_ms =
          static_cast<std::uint32_t>(parse_u64(spec, value_off, key, value));
    } else if (key == "crash") {
      plan.crash = parse_crash(spec, value_off, value);
    } else if (key == "abort") {
      plan.abort = parse_abort(spec, value_off, value);
    } else {
      parse_fail(spec, item_off,
                 detail::format_parts("unknown key '", key, "'"));
    }
  }
  return plan;
}

}  // namespace zh
