#include "cluster/fault.hpp"

#include <array>
#include <cstdlib>
#include <vector>

namespace zh {

namespace {

/// splitmix64: tiny, high-quality 64-bit mixer. Keyed per decision so
/// drop/dup/reorder/delay draws are independent streams.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// Uniform draw in [0, 1) keyed by (plan seed, message identity, stream).
double draw(const FaultPlan& plan, RankId src, RankId dst, int tag,
            std::uint64_t index, std::uint64_t stream) {
  std::uint64_t h = mix64(plan.seed ^ (stream * 0xA24BAED4963EE407ull));
  h = mix64(h ^ (static_cast<std::uint64_t>(src) << 32 | dst));
  h = mix64(h ^ static_cast<std::uint64_t>(static_cast<std::int64_t>(tag)));
  h = mix64(h ^ index);
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

constexpr std::array<std::pair<std::string_view, CrashPoint>, 6> kPointNames{
    {{"none", CrashPoint::kNone},
     {"startup", CrashPoint::kStartup},
     {"partition_start", CrashPoint::kPartitionStart},
     {"partition_done", CrashPoint::kPartitionDone},
     {"result_sent", CrashPoint::kResultSent},
     {"before_finish", CrashPoint::kBeforeFinish}}};

double parse_prob(std::string_view key, std::string_view value) {
  const std::string v(value);
  char* end = nullptr;
  const double p = std::strtod(v.c_str(), &end);
  ZH_REQUIRE(end == v.c_str() + v.size() && p >= 0.0 && p <= 1.0,
             "fault plan: '", key, "' must be a probability in [0,1], got '",
             value, "'");
  return p;
}

std::uint64_t parse_u64(std::string_view key, std::string_view value) {
  const std::string v(value);
  char* end = nullptr;
  const unsigned long long n = std::strtoull(v.c_str(), &end, 10);
  ZH_REQUIRE(end == v.c_str() + v.size() && !v.empty(), "fault plan: '", key,
             "' must be a non-negative integer, got '", value, "'");
  return n;
}

CrashSpec parse_crash(std::string_view value) {
  const auto at = value.find('@');
  ZH_REQUIRE(at != std::string_view::npos,
             "fault plan: crash spec must be <rank>@<point>[#occurrence], "
             "got '", value, "'");
  CrashSpec spec;
  spec.rank = static_cast<RankId>(parse_u64("crash", value.substr(0, at)));
  std::string_view rest = value.substr(at + 1);
  const auto hash = rest.find('#');
  if (hash != std::string_view::npos) {
    spec.occurrence = static_cast<std::uint32_t>(
        parse_u64("crash occurrence", rest.substr(hash + 1)));
    rest = rest.substr(0, hash);
  }
  for (const auto& [name, point] : kPointNames) {
    if (rest == name) {
      spec.point = point;
      return spec;
    }
  }
  throw InvalidArgument(detail::format_parts(
      "fault plan: unknown crash point '", rest,
      "' (expected startup, partition_start, partition_done, result_sent, "
      "or before_finish)"));
}

}  // namespace

std::string_view to_string(CrashPoint point) {
  for (const auto& [name, p] : kPointNames) {
    if (p == point) return name;
  }
  return "unknown";
}

RankCrash::RankCrash(RankId rank, CrashPoint point, std::uint32_t occurrence)
    : Error(detail::format_parts("rank ", rank, " crashed at ",
                                 to_string(point), " #", occurrence,
                                 " (scripted fault)")),
      rank_(rank),
      point_(point) {}

FaultAction FaultPlan::action_for(RankId src, RankId dst, int tag,
                                  std::uint64_t index) const {
  FaultAction action;
  if (drop_prob > 0.0 && draw(*this, src, dst, tag, index, 1) < drop_prob) {
    action.drop = true;
    return action;  // a dropped message has no other fate
  }
  if (duplicate_prob > 0.0 &&
      draw(*this, src, dst, tag, index, 2) < duplicate_prob) {
    action.duplicate = true;
  }
  if (reorder_prob > 0.0 &&
      draw(*this, src, dst, tag, index, 3) < reorder_prob) {
    action.reorder = true;
  }
  if (delay_prob > 0.0 && draw(*this, src, dst, tag, index, 4) < delay_prob) {
    action.delay_ms = delay_ms;
  }
  return action;
}

FaultPlan FaultPlan::parse(std::string_view spec) {
  FaultPlan plan;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    auto comma = spec.find(',', pos);
    if (comma == std::string_view::npos) comma = spec.size();
    const std::string_view item = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (item.empty()) continue;
    const auto eq = item.find('=');
    ZH_REQUIRE(eq != std::string_view::npos,
               "fault plan: expected key=value, got '", item, "'");
    const std::string_view key = item.substr(0, eq);
    const std::string_view value = item.substr(eq + 1);
    if (key == "seed") {
      plan.seed = parse_u64(key, value);
    } else if (key == "drop") {
      plan.drop_prob = parse_prob(key, value);
    } else if (key == "dup") {
      plan.duplicate_prob = parse_prob(key, value);
    } else if (key == "reorder") {
      plan.reorder_prob = parse_prob(key, value);
    } else if (key == "delay") {
      plan.delay_prob = parse_prob(key, value);
    } else if (key == "delay_ms") {
      plan.delay_ms = static_cast<std::uint32_t>(parse_u64(key, value));
    } else if (key == "crash") {
      plan.crash = parse_crash(value);
    } else {
      throw InvalidArgument(detail::format_parts(
          "fault plan: unknown key '", key,
          "' (expected seed, drop, dup, reorder, delay, delay_ms, crash)"));
    }
  }
  return plan;
}

}  // namespace zh
