// In-process MPI-like communicator.
//
// The paper's cluster runs use MPI across Titan nodes: each node executes
// the four zonal steps on its raster partitions, then the master combines
// per-polygon histograms. This module reproduces that programming model
// in one process: run_cluster() launches one thread per rank; ranks talk
// through mailboxes with (source, tag) matching; gather/reduce/barrier
// are built on the same point-to-point layer, so the communication
// pattern (and its serialization volume, which we account) matches the
// MPI implementation structurally.
//
// Fault model (service-grade additions):
//  * every blocking call is deadline-bounded -- the legacy throwing
//    overloads use ClusterOptions::default_timeout_ms and throw
//    TimeoutError instead of hanging; Status-returning overloads take an
//    explicit Deadline;
//  * the point-to-point layer retries with exponential backoff: a
//    message "dropped in transit" by a FaultPlan is recovered on retry,
//    modelling sender retransmission;
//  * a rank that exits (crash or exception) is marked dead; peers
//    blocked on it get StatusCode::kRankDead instead of deadlocking;
//  * a FaultPlan in ClusterOptions injects drop/duplicate/reorder/delay
//    per message and scripted crashes at checkpoints, deterministically
//    per seed.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <deque>
#include <functional>
#include <mutex>
#include <span>
#include <vector>

#include "cluster/fault.hpp"
#include "common/error.hpp"
#include "common/types.hpp"
#include "obs/trace.hpp"

namespace zh {

class Cluster;

/// Bounded retry with exponential backoff for point-to-point receives.
/// Each attempt waits up to the attempt budget, then asks the transport
/// to recover in-flight ("dropped") messages -- the in-process analog of
/// a sender retransmitting after an ack timeout.
struct RetryPolicy {
  std::uint32_t max_attempts = 4;
  std::int64_t initial_timeout_ms = 50;
  double backoff = 2.0;  ///< attempt budget multiplier (jitter off)
  /// Decorrelate retry slices across receivers: each re-attempt budget is
  /// a deterministic draw in [initial, 3 * previous] keyed by the fault
  /// seed and the (receiver, sender, tag, attempt) identity, so a mass
  /// timeout does not re-synchronize every waiter onto the same schedule
  /// (retry storms) yet replays stay bit-reproducible per seed. Off, the
  /// slices follow the plain `previous * backoff` ladder.
  bool jitter = true;
};

/// The decorrelated-jitter backoff draw used by Communicator::recv_bytes:
/// uniform in [base_ms, max(base_ms, 3 * prev_ms)], a pure splitmix64
/// function of its arguments (same seed => same schedule). Exposed for
/// tests pinning determinism and bounds.
[[nodiscard]] std::int64_t decorrelated_backoff_ms(std::uint64_t seed,
                                                   RankId receiver, RankId src,
                                                   int tag,
                                                   std::uint32_t attempt,
                                                   std::int64_t base_ms,
                                                   std::int64_t prev_ms);

/// Knobs of one run_cluster invocation.
struct ClusterOptions {
  FaultPlan faults;  ///< message/crash injection (empty = no faults)
  /// RankCrash thrown in a rank body kills only that rank (it goes
  /// silent; survivors keep running). Off: it propagates like any error.
  bool tolerate_rank_crash = false;
  /// Deadline applied by the legacy (non-Status) blocking overloads so
  /// no public call can block unboundedly.
  std::int64_t default_timeout_ms = 30000;
};

/// A message received by recv_any: payload plus provenance.
struct AnyMessage {
  RankId src = 0;
  int tag = 0;
  std::vector<std::byte> payload;
  /// Causal context stamped by the sender (flow_id == 0 when tracing
  /// was off at send time). The matching "f" flow event is recorded by
  /// recv_any itself; the context is surfaced for callers that want the
  /// sender's logical send timestamp or parent span.
  obs::TraceContext trace;
};

/// Per-rank handle used inside run_cluster bodies.
class Communicator {
 public:
  [[nodiscard]] RankId rank() const { return rank_; }
  [[nodiscard]] std::size_t size() const;

  /// Point-to-point send of raw bytes with a user tag (non-blocking:
  /// enqueues into the destination mailbox; never waits). When tracing
  /// is enabled, stamps a TraceContext into the message envelope (the
  /// in-process analog of a header field in the CRC'd wire frame;
  /// layout versioned by obs::kTraceContextVersion) and records the "s"
  /// half of the send->recv flow edge.
  void send_bytes(RankId dst, int tag, std::vector<std::byte> payload);

  /// Blocking receive of the next message from `src` with `tag`.
  /// Bounded by the cluster default timeout; throws TimeoutError on
  /// expiry and Error if `src` died with no matching message in flight.
  [[nodiscard]] std::vector<std::byte> recv_bytes(RankId src, int tag);

  /// Deadline-bounded receive with retransmission recovery. Returns
  /// kTimeout when the deadline (or retry budget) expires and kRankDead
  /// when `src` is dead with nothing recoverable in flight.
  [[nodiscard]] Status recv_bytes(RankId src, int tag, Deadline deadline,
                                  std::vector<std::byte>& out,
                                  const RetryPolicy& retry = {});

  /// Receive the next visible message from any source whose tag is in
  /// `tags` (master-side supervision loop). No retransmission recovery;
  /// returns kTimeout on deadline expiry.
  [[nodiscard]] Status recv_any(std::span<const int> tags, Deadline deadline,
                                AnyMessage& out);

  /// Trigger retransmission of messages from `src` with `tag` that were
  /// dropped in transit (fault injection). Returns how many were
  /// recovered into the mailbox. Supervision loops using recv_any call
  /// this periodically; recv_bytes' retry path calls it automatically.
  std::size_t recover_lost(RankId src, int tag);

  /// Typed send/recv of trivially copyable element spans.
  template <typename T>
  void send(RankId dst, int tag, std::span<const T> data) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::vector<std::byte> bytes(data.size_bytes());
    // Empty sends are legal protocol messages (e.g. the "done"
    // assignment); memcpy's pointers must be non-null even for n == 0.
    if (!data.empty()) {
      std::memcpy(bytes.data(), data.data(), data.size_bytes());
    }
    send_bytes(dst, tag, std::move(bytes));
  }

  template <typename T>
  [[nodiscard]] Status recv(RankId src, int tag, Deadline deadline,
                            std::vector<T>& out,
                            const RetryPolicy& retry = {}) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::vector<std::byte> bytes;
    if (Status s = recv_bytes(src, tag, deadline, bytes, retry);
        !s.is_ok()) {
      return s;
    }
    if (bytes.size() % sizeof(T) != 0) {
      return Status::error(
          StatusCode::kCorrupt,
          detail::format_parts(
              "rank ", rank_, ": message from rank ", src, " tag ", tag,
              " has ", bytes.size(), " bytes, not a multiple of element size ",
              sizeof(T)));
    }
    out.resize(bytes.size() / sizeof(T));
    if (!bytes.empty()) {
      std::memcpy(out.data(), bytes.data(), bytes.size());
    }
    return Status::ok();
  }

  template <typename T>
  [[nodiscard]] std::vector<T> recv(RankId src, int tag) {
    std::vector<T> out;
    recv(src, tag, default_deadline(), out).throw_if_error();
    return out;
  }

  /// Gather every rank's buffer at `root` (rank order). Non-roots get an
  /// empty result.
  template <typename T>
  [[nodiscard]] Status gather(RankId root, std::span<const T> mine,
                              Deadline deadline,
                              std::vector<std::vector<T>>& out,
                              int tag = kGatherTag,
                              const RetryPolicy& retry = {}) {
    out.clear();
    if (rank_ != root) {
      send<T>(root, tag, mine);
      return Status::ok();
    }
    out.resize(size());
    for (RankId r = 0; r < size(); ++r) {
      if (r == root) {
        out[r].assign(mine.begin(), mine.end());
        continue;
      }
      if (Status s = recv<T>(r, tag, deadline, out[r], retry); !s.is_ok()) {
        return s;
      }
    }
    return Status::ok();
  }

  template <typename T>
  [[nodiscard]] std::vector<std::vector<T>> gather(
      RankId root, std::span<const T> mine, int tag = kGatherTag) {
    std::vector<std::vector<T>> out;
    gather<T>(root, mine, default_deadline(), out, tag).throw_if_error();
    return out;
  }

  /// Element-wise sum-reduce of equal-length buffers at `root` (the
  /// master-side histogram combine). Non-roots get an empty vector.
  template <typename T>
  [[nodiscard]] Status reduce_sum(RankId root, std::span<const T> mine,
                                  Deadline deadline, std::vector<T>& out,
                                  int tag = kReduceTag,
                                  const RetryPolicy& retry = {}) {
    std::vector<std::vector<T>> all;
    if (Status s = gather<T>(root, mine, deadline, all, tag, retry);
        !s.is_ok()) {
      return s;
    }
    out.clear();
    if (rank_ != root) return Status::ok();
    out.assign(mine.size(), T{});
    for (std::size_t r = 0; r < all.size(); ++r) {
      if (all[r].size() != out.size()) {
        return Status::error(
            StatusCode::kCorrupt,
            detail::format_parts("reduce at root ", root, ": rank ", r,
                                 " contributed ", all[r].size(),
                                 " elements, expected ", out.size()));
      }
      for (std::size_t i = 0; i < out.size(); ++i) out[i] += all[r][i];
    }
    return Status::ok();
  }

  template <typename T>
  [[nodiscard]] std::vector<T> reduce_sum(RankId root,
                                          std::span<const T> mine,
                                          int tag = kReduceTag) {
    std::vector<T> out;
    reduce_sum<T>(root, mine, default_deadline(), out, tag).throw_if_error();
    return out;
  }

  /// Synchronize all ranks, bounded by `deadline`. Returns kRankDead if
  /// any rank died (the barrier can then never complete) and kTimeout on
  /// expiry; a timed-out rank withdraws and may retry.
  [[nodiscard]] Status barrier(Deadline deadline);

  /// Synchronize all ranks (cluster default timeout; throws on failure).
  void barrier();

  /// Whether `r` has exited (crash or completion). Dead ranks never send
  /// again; pending in-flight messages remain receivable.
  [[nodiscard]] bool rank_dead(RankId r) const;

  /// Visit a named crash checkpoint: throws RankCrash when the cluster's
  /// FaultPlan scripts this rank to die at this visit. No-op otherwise.
  void checkpoint(CrashPoint point);

  /// Bytes this rank has sent so far (communication-volume accounting).
  [[nodiscard]] std::uint64_t bytes_sent() const { return bytes_sent_; }

  /// Receive retries this rank has performed (backoff re-attempts in the
  /// Status recv path, including retransmission recovery rounds).
  [[nodiscard]] std::uint64_t retries() const { return retries_; }

  static constexpr int kGatherTag = -1;
  static constexpr int kReduceTag = -2;
  /// Reserved for the clock-offset handshake run_cluster performs at
  /// rank startup when tracing is enabled (probe r->0 and reply 0->r
  /// both use it; direction disambiguates).
  static constexpr int kClockTag = -3;

 private:
  friend class Cluster;
  Communicator(Cluster* cluster, RankId rank)
      : cluster_(cluster), rank_(rank) {}

  [[nodiscard]] Deadline default_deadline() const;

  Cluster* cluster_;
  RankId rank_;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t retries_ = 0;
};

/// Launch `ranks` threads, each running body(comm). Returns when all
/// ranks finish; rethrows the first rank exception. A rank that exits is
/// marked dead so peers blocked on it fail fast instead of deadlocking.
/// When tracing is enabled, each worker rank runs a short NTP-style
/// clock handshake against rank 0 before body() starts (min-RTT sample
/// of a few probes on kClockTag) and records its offset via
/// obs::set_rank_clock_offset_us; a failed/timed-out handshake leaves
/// the offset at 0 rather than delaying the run.
void run_cluster(std::size_t ranks,
                 const std::function<void(Communicator&)>& body);

/// As above with explicit options (fault injection, crash tolerance,
/// default timeout).
void run_cluster(std::size_t ranks, const ClusterOptions& options,
                 const std::function<void(Communicator&)>& body);

}  // namespace zh
