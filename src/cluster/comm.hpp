// In-process MPI-like communicator.
//
// The paper's cluster runs use MPI across Titan nodes: each node executes
// the four zonal steps on its raster partitions, then the master combines
// per-polygon histograms. This module reproduces that programming model
// in one process: run_cluster() launches one thread per rank; ranks talk
// through mailboxes with (source, tag) matching; gather/reduce/barrier
// are built on the same point-to-point layer, so the communication
// pattern (and its serialization volume, which we account) matches the
// MPI implementation structurally.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <deque>
#include <functional>
#include <mutex>
#include <span>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"

namespace zh {

class Cluster;

/// Per-rank handle used inside run_cluster bodies.
class Communicator {
 public:
  [[nodiscard]] RankId rank() const { return rank_; }
  [[nodiscard]] std::size_t size() const;

  /// Point-to-point send of raw bytes with a user tag (non-blocking:
  /// enqueues into the destination mailbox).
  void send_bytes(RankId dst, int tag, std::vector<std::byte> payload);

  /// Blocking receive of the next message from `src` with `tag`.
  [[nodiscard]] std::vector<std::byte> recv_bytes(RankId src, int tag);

  /// Typed send/recv of trivially copyable element spans.
  template <typename T>
  void send(RankId dst, int tag, std::span<const T> data) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::vector<std::byte> bytes(data.size_bytes());
    std::memcpy(bytes.data(), data.data(), data.size_bytes());
    send_bytes(dst, tag, std::move(bytes));
  }

  template <typename T>
  [[nodiscard]] std::vector<T> recv(RankId src, int tag) {
    static_assert(std::is_trivially_copyable_v<T>);
    const std::vector<std::byte> bytes = recv_bytes(src, tag);
    ZH_REQUIRE(bytes.size() % sizeof(T) == 0,
               "message size not a multiple of element size");
    std::vector<T> out(bytes.size() / sizeof(T));
    std::memcpy(out.data(), bytes.data(), bytes.size());
    return out;
  }

  /// Gather every rank's buffer at `root` (rank order). Non-roots get an
  /// empty result.
  template <typename T>
  [[nodiscard]] std::vector<std::vector<T>> gather(
      RankId root, std::span<const T> mine, int tag = kGatherTag) {
    if (rank_ != root) {
      send<T>(root, tag, mine);
      return {};
    }
    std::vector<std::vector<T>> all(size());
    for (RankId r = 0; r < size(); ++r) {
      if (r == root) {
        all[r].assign(mine.begin(), mine.end());
      } else {
        all[r] = recv<T>(r, tag);
      }
    }
    return all;
  }

  /// Element-wise sum-reduce of equal-length buffers at `root` (the
  /// master-side histogram combine). Non-roots get an empty vector.
  template <typename T>
  [[nodiscard]] std::vector<T> reduce_sum(RankId root,
                                          std::span<const T> mine,
                                          int tag = kReduceTag) {
    auto all = gather<T>(root, mine, tag);
    if (rank_ != root) return {};
    std::vector<T> acc(mine.size(), T{});
    for (const auto& buf : all) {
      ZH_REQUIRE(buf.size() == acc.size(), "reduce length mismatch");
      for (std::size_t i = 0; i < acc.size(); ++i) acc[i] += buf[i];
    }
    return acc;
  }

  /// Synchronize all ranks.
  void barrier();

  /// Bytes this rank has sent so far (communication-volume accounting).
  [[nodiscard]] std::uint64_t bytes_sent() const { return bytes_sent_; }

  static constexpr int kGatherTag = -1;
  static constexpr int kReduceTag = -2;

 private:
  friend class Cluster;
  Communicator(Cluster* cluster, RankId rank)
      : cluster_(cluster), rank_(rank) {}

  Cluster* cluster_;
  RankId rank_;
  std::uint64_t bytes_sent_ = 0;
};

/// Launch `ranks` threads, each running body(comm). Returns when all
/// ranks finish; rethrows the first rank exception.
void run_cluster(std::size_t ranks,
                 const std::function<void(Communicator&)>& body);

}  // namespace zh
