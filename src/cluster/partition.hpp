// Raster partitioning for cluster runs.
//
// Table 1 of the paper assigns each CONUS raster a partition schema (an
// r x c block grid); the resulting 36 partitions are distributed over the
// Titan nodes. Partition edges are aligned to zonal-tile boundaries so a
// tile never straddles two partitions -- each partition then runs the
// whole 4-step pipeline independently and per-polygon histograms merge
// additively at the master.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "grid/raster.hpp"

namespace zh {

/// One partition: a cell window of one source raster, with an owner rank.
struct RasterPartition {
  std::uint32_t raster_index = 0;  ///< index into the dataset's raster list
  CellWindow window;               ///< cell window within that raster
  RankId owner = 0;
};

/// Split a rows x cols raster into a part_rows x part_cols block grid with
/// block edges aligned to multiples of `tile_size`. Returns the windows in
/// row-major block order; they are disjoint and cover the raster.
[[nodiscard]] std::vector<CellWindow> grid_partition(
    std::int64_t rows, std::int64_t cols, int part_rows, int part_cols,
    std::int64_t tile_size);

/// Round-robin assignment of partitions to `ranks` ranks (the paper's
/// node counts: 1..16). Mutates `parts`' owner fields.
void assign_round_robin(std::vector<RasterPartition>& parts,
                        std::size_t ranks);

}  // namespace zh
