// Deterministic fault injection for the in-process cluster.
//
// The paper's cluster runs executed on Titan, where dropped messages,
// stragglers, and node loss are operational reality. A FaultPlan scripts
// those failures deterministically: message-level faults (drop / delay /
// duplicate / reorder) are decided by a counter-keyed hash of
// (seed, src, dst, tag, message index), so the same seed reproduces the
// same delivery schedule regardless of thread interleaving; rank crashes
// fire at named pipeline checkpoints. Tests and benches feed a plan
// through run_cluster / run_cluster_zonal to rehearse failure scenarios
// that real MPI jobs only hit in production.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/error.hpp"
#include "common/types.hpp"

namespace zh {

/// Pipeline checkpoints at which a scripted crash can fire. The cluster
/// driver visits these in order for every partition it processes.
enum class CrashPoint : std::uint8_t {
  kNone = 0,
  kStartup,         ///< before any partition work on the rank
  kPartitionStart,  ///< before computing a partition
  kPartitionDone,   ///< after computing, before sending the result
  kResultSent,      ///< after the per-partition result left the rank
  kBeforeFinish,    ///< before the final completion handshake
};

/// Human-readable checkpoint name ("partition_done", ...).
[[nodiscard]] std::string_view to_string(CrashPoint point);

/// Thrown inside a rank to simulate node loss. run_cluster treats it as
/// rank death (the rank goes silent; survivors keep running) when
/// ClusterOptions::tolerate_rank_crash is set, and as a test error
/// otherwise.
class RankCrash : public Error {
 public:
  RankCrash(RankId rank, CrashPoint point, std::uint32_t occurrence);

  [[nodiscard]] RankId rank() const { return rank_; }
  [[nodiscard]] CrashPoint point() const { return point_; }

 private:
  RankId rank_;
  CrashPoint point_;
};

/// Per-message fault decision produced by a FaultPlan.
struct FaultAction {
  bool drop = false;     ///< message is lost in transit (recoverable by retry)
  bool duplicate = false;  ///< message is delivered twice
  bool reorder = false;  ///< message jumps the mailbox queue
  std::uint32_t delay_ms = 0;  ///< message becomes visible only after this

  [[nodiscard]] bool any() const {
    return drop || duplicate || reorder || delay_ms > 0;
  }
};

/// Scripted crash: rank `rank` dies at the `occurrence`-th visit (0-based)
/// of checkpoint `point`.
struct CrashSpec {
  RankId rank = 0;
  CrashPoint point = CrashPoint::kNone;
  std::uint32_t occurrence = 0;
};

/// Seedable description of what goes wrong during a cluster run. An empty
/// (default) plan injects nothing and costs one branch per message.
struct FaultPlan {
  std::uint64_t seed = 0;
  double drop_prob = 0.0;
  double duplicate_prob = 0.0;
  double reorder_prob = 0.0;
  double delay_prob = 0.0;
  std::uint32_t delay_ms = 20;  ///< delay applied when the delay fault fires
  CrashSpec crash;              ///< at most one scripted crash

  [[nodiscard]] bool empty() const {
    return drop_prob == 0.0 && duplicate_prob == 0.0 &&
           reorder_prob == 0.0 && delay_prob == 0.0 &&
           crash.point == CrashPoint::kNone;
  }

  /// The deterministic fault decision for the `index`-th message on the
  /// (src, dst, tag) stream. Pure function of the plan and its arguments.
  [[nodiscard]] FaultAction action_for(RankId src, RankId dst, int tag,
                                       std::uint64_t index) const;

  /// Parse a comma-separated spec, e.g.
  ///   "seed=7,drop=0.1,dup=0.05,reorder=0.1,delay=0.2,delay_ms=50,
  ///    crash=2@partition_done#1"
  /// Keys: seed, drop, dup, reorder, delay, delay_ms,
  /// crash=<rank>@<point>[#occurrence] with point one of startup,
  /// partition_start, partition_done, result_sent, before_finish.
  /// Throws InvalidArgument on malformed specs.
  [[nodiscard]] static FaultPlan parse(std::string_view spec);
};

}  // namespace zh
