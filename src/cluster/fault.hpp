// Deterministic fault injection for the in-process cluster.
//
// The paper's cluster runs executed on Titan, where dropped messages,
// stragglers, and node loss are operational reality. A FaultPlan scripts
// those failures deterministically: message-level faults (drop / delay /
// duplicate / reorder) are decided by a counter-keyed hash of
// (seed, src, dst, tag, message index), so the same seed reproduces the
// same delivery schedule regardless of thread interleaving; rank crashes
// fire at named pipeline checkpoints. Tests and benches feed a plan
// through run_cluster / run_cluster_zonal to rehearse failure scenarios
// that real MPI jobs only hit in production.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/error.hpp"
#include "common/types.hpp"

namespace zh {

/// Pipeline checkpoints at which a scripted crash can fire. The cluster
/// driver visits these in order for every partition it processes; the
/// journal writer visits kJournalRecord once per record it appends.
enum class CrashPoint : std::uint8_t {
  kNone = 0,
  kStartup,         ///< before any partition work on the rank
  kPartitionStart,  ///< before computing a partition
  kPartitionDone,   ///< after computing, before sending the result
  kResultSent,      ///< after the per-partition result left the rank
  kBeforeFinish,    ///< before the final completion handshake
  kJournalRecord,   ///< mid-append of a checkpoint journal record
};

/// Human-readable checkpoint name ("partition_done", ...).
[[nodiscard]] std::string_view to_string(CrashPoint point);

/// splitmix64: tiny, high-quality 64-bit mixer. Every deterministic
/// fault/jitter decision in the cluster layer chains through it, so a
/// replay with the same seed reproduces the same schedule.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t x);

/// Exit code of a scripted process abort (`abort=<point>#<occurrence>`),
/// distinct from ordinary failure exits so harnesses can tell a planned
/// kill from a genuine error.
inline constexpr int kAbortExitCode = 43;

/// Terminate the process immediately -- no destructors, no atexit, no
/// stream flushes -- simulating SIGKILL/OOM-kill for the checkpoint
/// kill/resume harness. Durable state is exactly what was fsync'd.
[[noreturn]] void hard_exit(CrashPoint point, std::uint32_t occurrence);

/// Thrown inside a rank to simulate node loss. run_cluster treats it as
/// rank death (the rank goes silent; survivors keep running) when
/// ClusterOptions::tolerate_rank_crash is set, and as a test error
/// otherwise.
class RankCrash : public Error {
 public:
  RankCrash(RankId rank, CrashPoint point, std::uint32_t occurrence);

  [[nodiscard]] RankId rank() const { return rank_; }
  [[nodiscard]] CrashPoint point() const { return point_; }

 private:
  RankId rank_;
  CrashPoint point_;
};

/// Per-message fault decision produced by a FaultPlan.
struct FaultAction {
  bool drop = false;     ///< message is lost in transit (recoverable by retry)
  bool duplicate = false;  ///< message is delivered twice
  bool reorder = false;  ///< message jumps the mailbox queue
  std::uint32_t delay_ms = 0;  ///< message becomes visible only after this

  [[nodiscard]] bool any() const {
    return drop || duplicate || reorder || delay_ms > 0;
  }
};

/// Scripted crash: rank `rank` dies at the `occurrence`-th visit (0-based)
/// of checkpoint `point`.
struct CrashSpec {
  RankId rank = 0;
  CrashPoint point = CrashPoint::kNone;
  std::uint32_t occurrence = 0;
};

/// Scripted whole-process abort: hard_exit() at the `occurrence`-th
/// process-wide visit (0-based, counted across all ranks) of checkpoint
/// `point`. Unlike CrashSpec -- which kills one in-process rank and lets
/// survivors recover -- this models node death: the run can only continue
/// by restarting the process and resuming from the durable journal.
struct AbortSpec {
  CrashPoint point = CrashPoint::kNone;
  std::uint32_t occurrence = 0;
};

/// Seedable description of what goes wrong during a cluster run. An empty
/// (default) plan injects nothing and costs one branch per message.
struct FaultPlan {
  std::uint64_t seed = 0;
  double drop_prob = 0.0;
  double duplicate_prob = 0.0;
  double reorder_prob = 0.0;
  double delay_prob = 0.0;
  std::uint32_t delay_ms = 20;  ///< delay applied when the delay fault fires
  CrashSpec crash;              ///< at most one scripted crash
  AbortSpec abort;              ///< at most one scripted process abort

  [[nodiscard]] bool empty() const {
    return drop_prob == 0.0 && duplicate_prob == 0.0 &&
           reorder_prob == 0.0 && delay_prob == 0.0 &&
           crash.point == CrashPoint::kNone &&
           abort.point == CrashPoint::kNone;
  }

  /// The deterministic fault decision for the `index`-th message on the
  /// (src, dst, tag) stream. Pure function of the plan and its arguments.
  [[nodiscard]] FaultAction action_for(RankId src, RankId dst, int tag,
                                       std::uint64_t index) const;

  /// One-line grammar of the spec strings parse() accepts; embedded in
  /// every parse error so a malformed spec is self-documenting.
  static constexpr std::string_view kGrammar =
      "expected key=value[,key=value...] with keys seed=<u64>, "
      "drop|dup|reorder|delay=<probability in [0,1]>, delay_ms=<u64>, "
      "crash=<rank>@<point>[#<occurrence>], abort=<point>[#<occurrence>]; "
      "points: startup, partition_start, partition_done, result_sent, "
      "before_finish, journal_record";

  /// Parse a comma-separated spec, e.g.
  ///   "seed=7,drop=0.1,dup=0.05,reorder=0.1,delay=0.2,delay_ms=50,
  ///    crash=2@partition_done#1,abort=journal_record#3"
  /// per kGrammar. Throws InvalidArgument on malformed specs; the message
  /// carries the byte offset of the offending token plus the grammar.
  [[nodiscard]] static FaultPlan parse(std::string_view spec);
};

}  // namespace zh
