#include "cluster/comm.hpp"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <exception>
#include <limits>
#include <map>
#include <memory>
#include <thread>
#include <tuple>
#include <utility>

#include "common/contracts.hpp"
#include "obs/obs.hpp"

namespace zh {

namespace {

using Clock = Deadline::Clock;

struct Message {
  RankId src;
  int tag;
  std::uint64_t seq;        ///< mailbox arrival number (framing check)
  std::size_t framed_size;  ///< payload size recorded at send time
  std::vector<std::byte> payload;
  /// Injected-delay release time; min() = visible immediately.
  Clock::time_point visible_at = Clock::time_point::min();
  /// Causal trace context stamped at send time -- the in-process analog
  /// of a fixed header field in the CRC'd wire frame (layout versioned
  /// by obs::kTraceContextVersion). flow_id == 0 when tracing was off.
  obs::TraceContext trace;
};

}  // namespace

/// Shared state of one run_cluster invocation.
class Cluster {
 public:
  Cluster(std::size_t ranks, ClusterOptions options)
      : options_(std::move(options)),
        has_faults_(!options_.faults.empty()),
        ranks_(ranks),
        mailboxes_(ranks),
        dead_(std::make_unique<std::atomic<bool>[]>(ranks)),
        barrier_waiting_(0),
        barrier_generation_(0) {
    for (std::size_t r = 0; r < ranks; ++r) dead_[r].store(false);
  }

  [[nodiscard]] std::size_t size() const { return ranks_; }
  [[nodiscard]] const ClusterOptions& options() const { return options_; }

  void deliver(RankId dst, Message msg) {
    ZH_REQUIRE(dst < ranks_, "destination rank out of range");
    ZH_ASSERT(msg.src < ranks_, "message source rank ", msg.src,
              " out of range [0, ", ranks_, ")");
    ZH_ASSERT(msg.framed_size == msg.payload.size(),
              "message framing corrupted in transit: header says ",
              msg.framed_size, " bytes, payload holds ",
              msg.payload.size());
    FaultAction action;
    if (has_faults_) {
      action = options_.faults.action_for(msg.src, dst, msg.tag,
                                          next_stream_index(msg.src, dst,
                                                            msg.tag));
    }
    Mailbox& box = mailboxes_[dst];
    {
      std::lock_guard lock(box.mutex);
      if (action.drop) {
        // Lost in transit: parked until a retrying receiver triggers
        // "retransmission" via recover_lost(). No notify -- the loss is
        // silent, exactly like a dropped MPI packet.
        msg.seq = box.arrivals++;
        box.lost.push_back(std::move(msg));
        return;
      }
      if (action.delay_ms > 0) {
        msg.visible_at =
            Clock::now() + std::chrono::milliseconds(action.delay_ms);
      }
      Message dup;
      if (action.duplicate) dup = msg;
      msg.seq = box.arrivals++;
      if (action.reorder) {
        box.queue.push_front(std::move(msg));
      } else {
        box.queue.push_back(std::move(msg));
      }
      if (action.duplicate) {
        dup.seq = box.arrivals++;
        box.queue.push_back(std::move(dup));
      }
    }
    box.cv.notify_all();
  }

  /// Deadline-bounded matching receive. kRankDead is only reported when
  /// nothing from `src` is pending or in flight, so messages sent before
  /// a crash remain receivable.
  [[nodiscard]] Status await(RankId dst, RankId src, int tag,
                             Deadline deadline, std::vector<std::byte>& out,
                             obs::TraceContext& trace_out) {
    ZH_ASSERT(src < ranks_, "recv from rank ", src,
              " which is outside the cluster of ", ranks_, " ranks");
    Mailbox& box = mailboxes_[dst];
    std::unique_lock lock(box.mutex);
    for (;;) {
      const Clock::time_point now = Clock::now();
      Clock::time_point earliest = Clock::time_point::max();
      bool future_match = false;
      for (auto it = box.queue.begin(); it != box.queue.end(); ++it) {
        if (it->src != src || it->tag != tag) continue;
        if (it->visible_at > now) {
          future_match = true;
          earliest = std::min(earliest, it->visible_at);
          continue;
        }
        ZH_ASSERT(it->framed_size == it->payload.size(),
                  "message framing corrupted in mailbox");
        if (!has_faults_) check_fifo_order(box, src, tag, it->seq);
        out = std::move(it->payload);
        trace_out = it->trace;
        box.queue.erase(it);
        return Status::ok();
      }
      if (!future_match && dead_[src].load(std::memory_order_acquire)) {
        return Status::error(
            StatusCode::kRankDead,
            detail::format_parts("rank ", dst, ": recv from rank ", src,
                                 " tag ", tag,
                                 ": peer is dead with no message in flight"));
      }
      if (!deadline.is_never() && now >= deadline.when()) {
        return Status::error(
            StatusCode::kTimeout,
            detail::format_parts("rank ", dst, ": recv from rank ", src,
                                 " tag ", tag, " timed out"));
      }
      Clock::time_point wake = deadline.when();
      if (future_match) wake = std::min(wake, earliest);
      if (wake == Clock::time_point::max()) {
        box.cv.wait(lock);
      } else {
        box.cv.wait_until(lock, wake);
      }
    }
  }

  /// First visible message from any source with a tag in `tags`.
  [[nodiscard]] Status await_any(RankId dst, std::span<const int> tags,
                                 Deadline deadline, AnyMessage& out) {
    Mailbox& box = mailboxes_[dst];
    std::unique_lock lock(box.mutex);
    for (;;) {
      const Clock::time_point now = Clock::now();
      Clock::time_point earliest = Clock::time_point::max();
      bool future_match = false;
      for (auto it = box.queue.begin(); it != box.queue.end(); ++it) {
        const bool tag_match =
            std::find(tags.begin(), tags.end(), it->tag) != tags.end();
        if (!tag_match) continue;
        if (it->visible_at > now) {
          future_match = true;
          earliest = std::min(earliest, it->visible_at);
          continue;
        }
        out.src = it->src;
        out.tag = it->tag;
        out.payload = std::move(it->payload);
        out.trace = it->trace;
        box.queue.erase(it);
        return Status::ok();
      }
      if (!deadline.is_never() && now >= deadline.when()) {
        return Status::error(
            StatusCode::kTimeout,
            detail::format_parts("rank ", dst,
                                 ": recv_any timed out with no message"));
      }
      Clock::time_point wake = deadline.when();
      if (future_match) wake = std::min(wake, earliest);
      if (wake == Clock::time_point::max()) {
        box.cv.wait(lock);
      } else {
        box.cv.wait_until(lock, wake);
      }
    }
  }

  /// Re-deliver messages lost in transit for (dst <- src, tag): the
  /// in-process analog of sender retransmission after an ack timeout.
  std::size_t recover_lost(RankId dst, RankId src, int tag) {
    Mailbox& box = mailboxes_[dst];
    std::size_t recovered = 0;
    {
      std::lock_guard lock(box.mutex);
      for (auto it = box.lost.begin(); it != box.lost.end();) {
        if (it->src == src && it->tag == tag) {
          Message msg = std::move(*it);
          it = box.lost.erase(it);
          msg.seq = box.arrivals++;
          msg.visible_at = Clock::time_point::min();
          box.queue.push_back(std::move(msg));
          ++recovered;
        } else {
          ++it;
        }
      }
    }
    if (recovered > 0) box.cv.notify_all();
    return recovered;
  }

  /// Factory for rank handles (Cluster is a friend of Communicator;
  /// the run_cluster lambda is not).
  [[nodiscard]] Communicator make_comm(RankId rank) {
    return Communicator(this, rank);
  }

  [[nodiscard]] Status barrier(Deadline deadline) {
    std::unique_lock lock(barrier_mutex_);
    ZH_ASSERT(barrier_waiting_ < ranks_,
              "barrier over-subscribed: ", barrier_waiting_,
              " already waiting out of ", ranks_, " ranks");
    if (dead_count_ > 0) {
      return Status::error(StatusCode::kRankDead,
                           detail::format_parts("barrier with ", dead_count_,
                                                " dead rank(s) can never "
                                                "complete"));
    }
    const std::uint64_t gen = barrier_generation_;
    if (++barrier_waiting_ == ranks_) {
      barrier_waiting_ = 0;
      ++barrier_generation_;
      barrier_cv_.notify_all();
      return Status::ok();
    }
    const auto released = [&] {
      return barrier_generation_ != gen || dead_count_ > 0;
    };
    for (;;) {
      if (deadline.is_never()) {
        barrier_cv_.wait(lock, released);
      } else if (!barrier_cv_.wait_until(lock, deadline.when(), released)) {
        if (barrier_generation_ != gen) return Status::ok();
        --barrier_waiting_;  // withdraw; the barrier may be retried
        return Status::error(StatusCode::kTimeout, "barrier timed out");
      }
      if (barrier_generation_ != gen) return Status::ok();
      if (dead_count_ > 0) {
        --barrier_waiting_;
        return Status::error(StatusCode::kRankDead,
                             "barrier released by rank death");
      }
    }
  }

  /// Mark a rank as exited (crash, error, or completion) and wake every
  /// waiter so blocked peers observe the death instead of deadlocking.
  void mark_dead(RankId rank) {
    {
      std::lock_guard lock(barrier_mutex_);
      if (!dead_[rank].exchange(true, std::memory_order_acq_rel)) {
        ++dead_count_;
      }
    }
    barrier_cv_.notify_all();
    for (Mailbox& box : mailboxes_) {
      { std::lock_guard lock(box.mutex); }  // pair with waiters' lock
      box.cv.notify_all();
    }
  }

  [[nodiscard]] bool rank_dead(RankId rank) const {
    ZH_REQUIRE(rank < ranks_, "rank out of range");
    return dead_[rank].load(std::memory_order_acquire);
  }

  /// Visit a crash checkpoint; throws RankCrash on the scripted visit.
  /// A scripted process abort (AbortSpec) fires first: its occurrences
  /// count process-wide visits of the point across all ranks, modelling
  /// whole-node death rather than one rank going silent.
  void checkpoint(RankId rank, CrashPoint point) {
    const CrashSpec& crash = options_.faults.crash;
    const AbortSpec& abort = options_.faults.abort;
    if (crash.point == CrashPoint::kNone &&
        abort.point == CrashPoint::kNone) {
      return;
    }
    std::uint32_t occurrence = 0;
    std::uint32_t abort_occurrence = 0;
    {
      std::lock_guard lock(checkpoint_mutex_);
      occurrence = checkpoint_visits_[{rank, point}]++;
      if (abort.point == point) abort_occurrence = abort_visits_[point]++;
    }
    if (abort.point == point && abort.occurrence == abort_occurrence) {
      hard_exit(point, abort_occurrence);
    }
    if (crash.rank == rank && crash.point == point &&
        crash.occurrence == occurrence) {
      throw RankCrash(rank, point, occurrence);
    }
  }

 private:
  struct Mailbox {
    std::mutex mutex;
    std::condition_variable cv;
    std::deque<Message> queue;
    std::deque<Message> lost;  ///< dropped in transit, recoverable by retry
    std::uint64_t arrivals = 0;  ///< next arrival sequence number
#if ZH_ENABLE_CONTRACTS
    /// Highest seq consumed per (src, tag); guards per-sender FIFO order.
    std::map<std::pair<RankId, int>, std::uint64_t> taken;
#endif
  };

  /// The mailbox matches (src, tag) by scanning from the front, and
  /// deliver() appends, so consumed sequence numbers must be strictly
  /// increasing per (src, tag) stream -- the per-sender FIFO guarantee
  /// MPI-style code relies on. Skipped when a FaultPlan injects
  /// reordering/duplication on purpose. Caller holds box.mutex.
  static void check_fifo_order(Mailbox& box, RankId src, int tag,
                               std::uint64_t seq) {
#if ZH_ENABLE_CONTRACTS
    const auto key = std::make_pair(src, tag);
    const auto it = box.taken.find(key);
    if (it != box.taken.end()) {
      ZH_ASSERT(seq > it->second,
                "mailbox FIFO order violated for src=", src, " tag=", tag,
                ": consumed seq ", seq, " after ", it->second);
      it->second = seq;
    } else {
      box.taken.emplace(key, seq);
    }
#else
    (void)box;
    (void)src;
    (void)tag;
    (void)seq;
#endif
  }

  /// Deterministic per-(src, dst, tag) message index for fault decisions.
  std::uint64_t next_stream_index(RankId src, RankId dst, int tag) {
    std::lock_guard lock(stream_mutex_);
    return stream_counters_[std::make_tuple(src, dst, tag)]++;
  }

  ClusterOptions options_;
  bool has_faults_;
  std::size_t ranks_;
  std::vector<Mailbox> mailboxes_;
  std::unique_ptr<std::atomic<bool>[]> dead_;

  std::mutex stream_mutex_;
  std::map<std::tuple<RankId, RankId, int>, std::uint64_t> stream_counters_;

  std::mutex checkpoint_mutex_;
  std::map<std::pair<RankId, CrashPoint>, std::uint32_t> checkpoint_visits_;
  /// Process-wide visit counts per point (AbortSpec occurrences), also
  /// guarded by checkpoint_mutex_.
  std::map<CrashPoint, std::uint32_t> abort_visits_;

  std::mutex barrier_mutex_;
  std::condition_variable barrier_cv_;
  std::size_t barrier_waiting_;
  std::uint64_t barrier_generation_;
  std::size_t dead_count_ = 0;  ///< guarded by barrier_mutex_
};

std::int64_t decorrelated_backoff_ms(std::uint64_t seed, RankId receiver,
                                     RankId src, int tag,
                                     std::uint32_t attempt,
                                     std::int64_t base_ms,
                                     std::int64_t prev_ms) {
  const std::int64_t lo = std::max<std::int64_t>(base_ms, 1);
  const std::int64_t hi = std::max(lo, 3 * std::max(prev_ms, lo));
  std::uint64_t h = splitmix64(seed ^ 0x6A09E667F3BCC909ull);
  h = splitmix64(h ^ (static_cast<std::uint64_t>(receiver) << 32 | src));
  h = splitmix64(h ^
                 static_cast<std::uint64_t>(static_cast<std::int64_t>(tag)));
  h = splitmix64(h ^ attempt);
  return lo + static_cast<std::int64_t>(
                  h % static_cast<std::uint64_t>(hi - lo + 1));
}

std::size_t Communicator::size() const { return cluster_->size(); }

Deadline Communicator::default_deadline() const {
  const std::int64_t ms = cluster_->options().default_timeout_ms;
  return ms <= 0 ? Deadline::never() : Deadline::after_ms(ms);
}

void Communicator::send_bytes(RankId dst, int tag,
                              std::vector<std::byte> payload) {
  bytes_sent_ += payload.size();
  ZH_COUNTER_ADD("comm.msgs_sent", 1);
  ZH_COUNTER_ADD("comm.bytes_sent", payload.size());
  // Stamp the causal context before handing the message to the
  // transport so the "s" event timestamp never postdates delivery.
  obs::TraceContext ctx;
  if (obs::trace_enabled()) {
    ctx.flow_id = obs::next_flow_id();
    ctx.parent_span = obs::current_span_id();
    ctx.send_ts_us = obs::now_us();
    obs::record_flow('s', "comm.send", "comm", ctx.flow_id, ctx.send_ts_us);
  }
  const std::size_t framed = payload.size();
  cluster_->deliver(dst,
                    Message{rank_, tag, /*seq=*/0, framed, std::move(payload),
                            Clock::time_point::min(), ctx});
}

std::vector<std::byte> Communicator::recv_bytes(RankId src, int tag) {
  std::vector<std::byte> out;
  recv_bytes(src, tag, default_deadline(), out).throw_if_error();
  return out;
}

Status Communicator::recv_bytes(RankId src, int tag, Deadline deadline,
                                std::vector<std::byte>& out,
                                const RetryPolicy& retry) {
  // Early attempts use the truncated backoff schedule and recover lost
  // messages between them; the final attempt waits out the caller's full
  // deadline so a slow-but-healthy sender is never failed prematurely.
  ZH_TRACE_SPAN("comm.recv", "comm");
  obs::TraceContext ctx;
  const auto finish_flow = [&ctx](const Status& s) {
    if (s.is_ok() && ctx.flow_id != 0 && obs::trace_enabled()) {
      obs::record_flow('f', "comm.recv", "comm", ctx.flow_id, obs::now_us());
    }
  };
  std::int64_t attempt_ms = retry.initial_timeout_ms;
  const std::uint32_t attempts = std::max(retry.max_attempts, 1u);
  for (std::uint32_t attempt = 0; attempt + 1 < attempts; ++attempt) {
    const Deadline slice = Deadline::after_ms(attempt_ms).min(deadline);
    Status s = cluster_->await(rank_, src, tag, slice, out, ctx);
    if (s.code() != StatusCode::kTimeout &&
        !(s.code() == StatusCode::kRankDead &&
          cluster_->recover_lost(rank_, src, tag) > 0)) {
      finish_flow(s);
      return s;
    }
    if (deadline.expired()) {
      return Status::error(
          StatusCode::kTimeout,
          detail::format_parts("rank ", rank_, ": recv from rank ", src,
                               " tag ", tag, " timed out after ", attempt + 1,
                               " attempt(s)"));
    }
    // Going around again is one retransmission-style retry.
    ++retries_;
    ZH_COUNTER_ADD("comm.retries", 1);
    const std::size_t recovered = cluster_->recover_lost(rank_, src, tag);
    static_cast<void>(recovered);  // counted only when obs is compiled in
    ZH_COUNTER_ADD("comm.msgs_recovered", recovered);
    // Next attempt budget: decorrelated jitter by default so receivers
    // that timed out together spread their re-attempts instead of
    // hammering in lockstep; the plain exponential ladder when disabled.
    if (retry.jitter) {
      attempt_ms = decorrelated_backoff_ms(
          cluster_->options().faults.seed, rank_, src, tag, attempt,
          retry.initial_timeout_ms, attempt_ms);
    } else {
      attempt_ms = static_cast<std::int64_t>(
          static_cast<double>(attempt_ms) * retry.backoff);
    }
  }
  Status s = cluster_->await(rank_, src, tag, deadline, out, ctx);
  finish_flow(s);
  return s;
}

Status Communicator::recv_any(std::span<const int> tags, Deadline deadline,
                              AnyMessage& out) {
  Status s = cluster_->await_any(rank_, tags, deadline, out);
  if (s.is_ok() && out.trace.flow_id != 0 && obs::trace_enabled()) {
    obs::record_flow('f', "comm.recv", "comm", out.trace.flow_id,
                     obs::now_us());
  }
  return s;
}

std::size_t Communicator::recover_lost(RankId src, int tag) {
  return cluster_->recover_lost(rank_, src, tag);
}

Status Communicator::barrier(Deadline deadline) {
  ZH_TRACE_SPAN("comm.barrier", "comm");
  return cluster_->barrier(deadline);
}

void Communicator::barrier() {
  cluster_->barrier(default_deadline()).throw_if_error();
}

bool Communicator::rank_dead(RankId r) const {
  return cluster_->rank_dead(r);
}

void Communicator::checkpoint(CrashPoint point) {
  cluster_->checkpoint(rank_, point);
}

namespace {

/// NTP-style clock-offset estimation at rank startup (tracing only).
/// Each worker rank probes rank 0 a few times on kClockTag; rank 0
/// replies with its own timestamp; the worker keeps the minimum-RTT
/// sample (tightest error bound) and records how far its clock reads
/// ahead of rank 0's. In this in-process model every rank shares one
/// steady clock, so offsets land near zero (bounded by half the RTT) --
/// the point is exercising the protocol a multi-node deployment needs.
/// Every wait is deadline-bounded and failure-tolerant: lost probes are
/// recovered via retransmission, and a rank that cannot complete the
/// handshake keeps offset 0 instead of stalling the run.
void clock_handshake(Communicator& comm, std::size_t ranks) {
  constexpr int kProbesPerRank = 3;
  constexpr std::int64_t kStepMs = 250;
  const int tag = Communicator::kClockTag;
  if (comm.rank() == 0) {
    // Serve probes until every expected one is answered or the line has
    // gone quiet with nothing left to recover.
    const std::size_t expect = (ranks - 1) * kProbesPerRank;
    const int tags[] = {tag};
    std::size_t served = 0;
    int idle_rounds = 0;
    while (served < expect && idle_rounds < 2) {
      AnyMessage probe;
      if (Status s = comm.recv_any(tags, Deadline::after_ms(kStepMs), probe);
          s.is_ok()) {
        ++served;
        idle_rounds = 0;
        const std::int64_t t_here = obs::now_us();
        comm.send<std::int64_t>(probe.src, tag, std::span(&t_here, 1));
      } else {
        std::size_t recovered = 0;
        for (RankId r = 1; r < ranks; ++r) recovered += comm.recover_lost(r, tag);
        if (recovered == 0) ++idle_rounds;
      }
    }
    return;
  }
  std::int64_t best_rtt_us = std::numeric_limits<std::int64_t>::max();
  std::int64_t best_offset_us = 0;
  bool have_sample = false;
  for (int probe = 0; probe < kProbesPerRank; ++probe) {
    const std::int64_t t0 = obs::now_us();
    comm.send<std::byte>(/*dst=*/0, tag, {});
    std::vector<std::int64_t> reply;
    if (Status s = comm.recv<std::int64_t>(0, tag, Deadline::after_ms(kStepMs),
                                           reply);
        !s.is_ok() || reply.size() != 1) {
      continue;  // lost probe/reply or master gave up; try the next one
    }
    const std::int64_t t3 = obs::now_us();
    const std::int64_t rtt = t3 - t0;
    if (rtt < best_rtt_us) {
      best_rtt_us = rtt;
      // clock_offset_from_handshake gives how far rank 0 reads ahead of
      // us; the registry stores the inverse convention (this rank ahead
      // of the master).
      best_offset_us = -obs::clock_offset_from_handshake(t0, reply[0], t3);
      have_sample = true;
    }
  }
  if (have_sample) {
    obs::set_rank_clock_offset_us(static_cast<std::int32_t>(comm.rank()),
                                  best_offset_us);
  }
}

}  // namespace

void run_cluster(std::size_t ranks,
                 const std::function<void(Communicator&)>& body) {
  run_cluster(ranks, ClusterOptions{}, body);
}

void run_cluster(std::size_t ranks, const ClusterOptions& options,
                 const std::function<void(Communicator&)>& body) {
  ZH_REQUIRE(ranks >= 1, "cluster needs at least one rank");
  Cluster cluster(ranks, options);

  std::exception_ptr error;
  std::mutex error_mutex;

  // Dedicated threads (not pool tasks): ranks block on recv/barrier and
  // must not starve each other. CP.25's joining-thread discipline via
  // explicit join below.
  std::vector<std::thread> threads;
  threads.reserve(ranks);
  for (RankId r = 0; r < ranks; ++r) {
    threads.emplace_back([&, r] {
      // Attribute every span/metric this rank thread records to rank r
      // (the trace viewer groups rank lanes by this).
      obs::set_thread_rank(static_cast<std::int32_t>(r));
      Communicator comm = cluster.make_comm(r);
      try {
        // Estimate this rank's clock offset before user work starts so
        // merged traces share one clock domain. Crash points only fire
        // inside body(), so the handshake itself cannot be crashed out.
        if (obs::trace_enabled() && ranks > 1) clock_handshake(comm, ranks);
        body(comm);
      } catch (const RankCrash&) {
        if (!options.tolerate_rank_crash) {
          std::lock_guard lock(error_mutex);
          if (!error) error = std::current_exception();
        }
        // Tolerated: the rank simply goes silent, like a lost node.
      } catch (...) {
        std::lock_guard lock(error_mutex);
        if (!error) error = std::current_exception();
      }
      // Every exit path marks the rank dead so peers blocked on it fail
      // fast (kRankDead) instead of hanging until their deadline.
      cluster.mark_dead(r);
    });
  }
  for (auto& t : threads) t.join();
  if (error) std::rethrow_exception(error);
}

}  // namespace zh
