#include "cluster/comm.hpp"

#include <exception>
#include <thread>

namespace zh {

namespace {

struct Message {
  RankId src;
  int tag;
  std::vector<std::byte> payload;
};

}  // namespace

/// Shared state of one run_cluster invocation.
class Cluster {
 public:
  explicit Cluster(std::size_t ranks)
      : ranks_(ranks), mailboxes_(ranks), barrier_waiting_(0),
        barrier_generation_(0) {}

  [[nodiscard]] std::size_t size() const { return ranks_; }

  void deliver(RankId dst, Message msg) {
    ZH_REQUIRE(dst < ranks_, "destination rank out of range");
    Mailbox& box = mailboxes_[dst];
    {
      std::lock_guard lock(box.mutex);
      box.queue.push_back(std::move(msg));
    }
    box.cv.notify_all();
  }

  [[nodiscard]] std::vector<std::byte> await(RankId dst, RankId src,
                                             int tag) {
    Mailbox& box = mailboxes_[dst];
    std::unique_lock lock(box.mutex);
    for (;;) {
      for (auto it = box.queue.begin(); it != box.queue.end(); ++it) {
        if (it->src == src && it->tag == tag) {
          std::vector<std::byte> payload = std::move(it->payload);
          box.queue.erase(it);
          return payload;
        }
      }
      box.cv.wait(lock);
    }
  }

  /// Factory for rank handles (Cluster is a friend of Communicator;
  /// the run_cluster lambda is not).
  [[nodiscard]] Communicator make_comm(RankId rank) {
    return Communicator(this, rank);
  }

  void barrier() {
    std::unique_lock lock(barrier_mutex_);
    const std::uint64_t gen = barrier_generation_;
    if (++barrier_waiting_ == ranks_) {
      barrier_waiting_ = 0;
      ++barrier_generation_;
      barrier_cv_.notify_all();
    } else {
      barrier_cv_.wait(lock,
                       [&] { return barrier_generation_ != gen; });
    }
  }

 private:
  struct Mailbox {
    std::mutex mutex;
    std::condition_variable cv;
    std::deque<Message> queue;
  };

  std::size_t ranks_;
  std::vector<Mailbox> mailboxes_;

  std::mutex barrier_mutex_;
  std::condition_variable barrier_cv_;
  std::size_t barrier_waiting_;
  std::uint64_t barrier_generation_;
};

std::size_t Communicator::size() const { return cluster_->size(); }

void Communicator::send_bytes(RankId dst, int tag,
                              std::vector<std::byte> payload) {
  bytes_sent_ += payload.size();
  cluster_->deliver(dst, Message{rank_, tag, std::move(payload)});
}

std::vector<std::byte> Communicator::recv_bytes(RankId src, int tag) {
  return cluster_->await(rank_, src, tag);
}

void Communicator::barrier() { cluster_->barrier(); }

void run_cluster(std::size_t ranks,
                 const std::function<void(Communicator&)>& body) {
  ZH_REQUIRE(ranks >= 1, "cluster needs at least one rank");
  Cluster cluster(ranks);

  std::exception_ptr error;
  std::mutex error_mutex;

  // Dedicated threads (not pool tasks): ranks block on recv/barrier and
  // must not starve each other. CP.25's joining-thread discipline via
  // explicit join below.
  std::vector<std::thread> threads;
  threads.reserve(ranks);
  for (RankId r = 0; r < ranks; ++r) {
    threads.emplace_back([&, r] {
      Communicator comm = cluster.make_comm(r);
      try {
        body(comm);
      } catch (...) {
        std::lock_guard lock(error_mutex);
        if (!error) error = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  if (error) std::rethrow_exception(error);
}

}  // namespace zh
