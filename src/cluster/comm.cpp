#include "cluster/comm.hpp"

#include <cstdint>
#include <exception>
#include <map>
#include <thread>
#include <utility>

#include "common/contracts.hpp"

namespace zh {

namespace {

struct Message {
  RankId src;
  int tag;
  std::uint64_t seq;        ///< mailbox arrival number (framing check)
  std::size_t framed_size;  ///< payload size recorded at send time
  std::vector<std::byte> payload;
};

}  // namespace

/// Shared state of one run_cluster invocation.
class Cluster {
 public:
  explicit Cluster(std::size_t ranks)
      : ranks_(ranks), mailboxes_(ranks), barrier_waiting_(0),
        barrier_generation_(0) {}

  [[nodiscard]] std::size_t size() const { return ranks_; }

  void deliver(RankId dst, Message msg) {
    ZH_REQUIRE(dst < ranks_, "destination rank out of range");
    ZH_ASSERT(msg.src < ranks_, "message source rank ", msg.src,
              " out of range [0, ", ranks_, ")");
    ZH_ASSERT(msg.framed_size == msg.payload.size(),
              "message framing corrupted in transit: header says ",
              msg.framed_size, " bytes, payload holds ",
              msg.payload.size());
    Mailbox& box = mailboxes_[dst];
    {
      std::lock_guard lock(box.mutex);
      msg.seq = box.arrivals++;
      box.queue.push_back(std::move(msg));
    }
    box.cv.notify_all();
  }

  [[nodiscard]] std::vector<std::byte> await(RankId dst, RankId src,
                                             int tag) {
    // A receive naming a rank that does not exist can never be satisfied;
    // without the contract this blocks the rank thread forever.
    ZH_ASSERT(src < ranks_, "recv from rank ", src,
              " which is outside the cluster of ", ranks_,
              " ranks (would deadlock)");
    Mailbox& box = mailboxes_[dst];
    std::unique_lock lock(box.mutex);
    for (;;) {
      for (auto it = box.queue.begin(); it != box.queue.end(); ++it) {
        if (it->src == src && it->tag == tag) {
          ZH_ASSERT(it->framed_size == it->payload.size(),
                    "message framing corrupted in mailbox");
          check_fifo_order(box, src, tag, it->seq);
          std::vector<std::byte> payload = std::move(it->payload);
          box.queue.erase(it);
          return payload;
        }
      }
      box.cv.wait(lock);
    }
  }

  /// Factory for rank handles (Cluster is a friend of Communicator;
  /// the run_cluster lambda is not).
  [[nodiscard]] Communicator make_comm(RankId rank) {
    return Communicator(this, rank);
  }

  void barrier() {
    std::unique_lock lock(barrier_mutex_);
    ZH_ASSERT(barrier_waiting_ < ranks_,
              "barrier over-subscribed: ", barrier_waiting_,
              " already waiting out of ", ranks_, " ranks");
    const std::uint64_t gen = barrier_generation_;
    if (++barrier_waiting_ == ranks_) {
      barrier_waiting_ = 0;
      ++barrier_generation_;
      barrier_cv_.notify_all();
    } else {
      barrier_cv_.wait(lock,
                       [&] { return barrier_generation_ != gen; });
    }
  }

 private:
  struct Mailbox {
    std::mutex mutex;
    std::condition_variable cv;
    std::deque<Message> queue;
    std::uint64_t arrivals = 0;  ///< next arrival sequence number
#if ZH_ENABLE_CONTRACTS
    /// Highest seq consumed per (src, tag); guards per-sender FIFO order.
    std::map<std::pair<RankId, int>, std::uint64_t> taken;
#endif
  };

  /// The mailbox matches (src, tag) by scanning from the front, and
  /// deliver() appends, so consumed sequence numbers must be strictly
  /// increasing per (src, tag) stream -- the per-sender FIFO guarantee
  /// MPI-style code relies on. Caller holds box.mutex.
  static void check_fifo_order(Mailbox& box, RankId src, int tag,
                               std::uint64_t seq) {
#if ZH_ENABLE_CONTRACTS
    const auto key = std::make_pair(src, tag);
    const auto it = box.taken.find(key);
    if (it != box.taken.end()) {
      ZH_ASSERT(seq > it->second,
                "mailbox FIFO order violated for src=", src, " tag=", tag,
                ": consumed seq ", seq, " after ", it->second);
      it->second = seq;
    } else {
      box.taken.emplace(key, seq);
    }
#else
    (void)box;
    (void)src;
    (void)tag;
    (void)seq;
#endif
  }

  std::size_t ranks_;
  std::vector<Mailbox> mailboxes_;

  std::mutex barrier_mutex_;
  std::condition_variable barrier_cv_;
  std::size_t barrier_waiting_;
  std::uint64_t barrier_generation_;
};

std::size_t Communicator::size() const { return cluster_->size(); }

void Communicator::send_bytes(RankId dst, int tag,
                              std::vector<std::byte> payload) {
  bytes_sent_ += payload.size();
  const std::size_t framed = payload.size();
  cluster_->deliver(dst,
                    Message{rank_, tag, /*seq=*/0, framed, std::move(payload)});
}

std::vector<std::byte> Communicator::recv_bytes(RankId src, int tag) {
  return cluster_->await(rank_, src, tag);
}

void Communicator::barrier() { cluster_->barrier(); }

void run_cluster(std::size_t ranks,
                 const std::function<void(Communicator&)>& body) {
  ZH_REQUIRE(ranks >= 1, "cluster needs at least one rank");
  Cluster cluster(ranks);

  std::exception_ptr error;
  std::mutex error_mutex;

  // Dedicated threads (not pool tasks): ranks block on recv/barrier and
  // must not starve each other. CP.25's joining-thread discipline via
  // explicit join below.
  std::vector<std::thread> threads;
  threads.reserve(ranks);
  for (RankId r = 0; r < ranks; ++r) {
    threads.emplace_back([&, r] {
      Communicator comm = cluster.make_comm(r);
      try {
        body(comm);
      } catch (...) {
        std::lock_guard lock(error_mutex);
        if (!error) error = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  if (error) std::rethrow_exception(error);
}

}  // namespace zh
