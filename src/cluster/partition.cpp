#include "cluster/partition.hpp"

#include "common/error.hpp"

namespace zh {

std::vector<CellWindow> grid_partition(std::int64_t rows, std::int64_t cols,
                                       int part_rows, int part_cols,
                                       std::int64_t tile_size) {
  ZH_REQUIRE(part_rows >= 1 && part_cols >= 1, "partition grid too small");
  ZH_REQUIRE(tile_size >= 1, "tile size must be positive");
  ZH_REQUIRE(rows >= 0 && cols >= 0, "raster dims must be non-negative");

  // Split in tile units, distributing the remainder over leading blocks,
  // then convert back to cells. Every edge lands on a tile multiple.
  const std::int64_t tiles_y = static_cast<std::int64_t>(
      div_up(static_cast<std::size_t>(rows),
             static_cast<std::size_t>(tile_size)));
  const std::int64_t tiles_x = static_cast<std::int64_t>(
      div_up(static_cast<std::size_t>(cols),
             static_cast<std::size_t>(tile_size)));
  ZH_REQUIRE(tiles_y >= part_rows && tiles_x >= part_cols,
             "fewer tiles than partitions: ", tiles_y, "x", tiles_x,
             " tiles vs ", part_rows, "x", part_cols, " blocks");

  auto cuts = [](std::int64_t tiles, int parts) {
    std::vector<std::int64_t> edges(static_cast<std::size_t>(parts) + 1);
    const std::int64_t base = tiles / parts;
    const std::int64_t extra = tiles % parts;
    edges[0] = 0;
    for (int i = 0; i < parts; ++i) {
      edges[static_cast<std::size_t>(i) + 1] =
          edges[static_cast<std::size_t>(i)] + base + (i < extra ? 1 : 0);
    }
    return edges;
  };
  const auto ey = cuts(tiles_y, part_rows);
  const auto ex = cuts(tiles_x, part_cols);

  std::vector<CellWindow> out;
  out.reserve(static_cast<std::size_t>(part_rows) * part_cols);
  for (int br = 0; br < part_rows; ++br) {
    for (int bc = 0; bc < part_cols; ++bc) {
      CellWindow w;
      w.row0 = ey[static_cast<std::size_t>(br)] * tile_size;
      w.col0 = ex[static_cast<std::size_t>(bc)] * tile_size;
      const std::int64_t row_end =
          std::min(rows, ey[static_cast<std::size_t>(br) + 1] * tile_size);
      const std::int64_t col_end =
          std::min(cols, ex[static_cast<std::size_t>(bc) + 1] * tile_size);
      w.rows = row_end - w.row0;
      w.cols = col_end - w.col0;
      out.push_back(w);
    }
  }
  return out;
}

void assign_round_robin(std::vector<RasterPartition>& parts,
                        std::size_t ranks) {
  ZH_REQUIRE(ranks >= 1, "need at least one rank");
  for (std::size_t i = 0; i < parts.size(); ++i) {
    parts[i].owner = static_cast<RankId>(i % ranks);
  }
}

}  // namespace zh
