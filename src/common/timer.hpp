// Wall-clock timing for per-step runtime reporting (Table 2 of the paper
// breaks the end-to-end runtime into Steps 0-4; StepTimes mirrors that).
#pragma once

#include <array>
#include <chrono>
#include <cstddef>
#include <string>

namespace zh {

/// Monotonic wall-clock stopwatch.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restart the stopwatch.
  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last reset().
  [[nodiscard]] double millis() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Named breakdown of run time not attributed to Steps 0-4. The paper
/// folds all of this into its end-to-end vs step-total gap; we name the
/// three buckets so reports can show where non-step time went.
struct OverheadTimes {
  double transfer = 0.0;  ///< host<->device staging / upload modeling
  double merge = 0.0;     ///< histogram combines (partitions, ranks)
  double output = 0.0;    ///< result serialization and write-back

  [[nodiscard]] double total() const { return transfer + merge + output; }

  OverheadTimes& operator+=(const OverheadTimes& o) {
    transfer += o.transfer;
    merge += o.merge;
    output += o.output;
    return *this;
  }

  /// Element-wise max (cluster wall-clock reduction, like StepTimes).
  [[nodiscard]] OverheadTimes max_with(const OverheadTimes& o) const {
    OverheadTimes r = *this;
    if (o.transfer > r.transfer) r.transfer = o.transfer;
    if (o.merge > r.merge) r.merge = o.merge;
    if (o.output > r.output) r.output = o.output;
    return r;
  }
};

/// Per-step wall times of one zonal-histogramming run, in seconds.
/// Indices match the paper's step numbering:
///   0 raster decompression, 1 per-tile histogramming, 2 tile-polygon
///   pairing, 3 inside-tile aggregation, 4 cell-in-polygon refinement.
struct StepTimes {
  static constexpr std::size_t kSteps = 5;
  std::array<double, kSteps> seconds{};  // zero-initialized

  /// Extra time not attributed to a step, by named bucket.
  OverheadTimes overhead;

  /// Sum of the five step times (the "Runtimes of steps" row of Table 2).
  [[nodiscard]] double step_total() const {
    double t = 0.0;
    for (double s : seconds) t += s;
    return t;
  }

  /// Wall-clock end-to-end runtime (steps + overhead).
  [[nodiscard]] double end_to_end() const {
    return step_total() + overhead.total();
  }

  StepTimes& operator+=(const StepTimes& o) {
    for (std::size_t i = 0; i < kSteps; ++i) seconds[i] += o.seconds[i];
    overhead += o.overhead;
    return *this;
  }

  /// Element-wise max; used to reduce per-rank times to the cluster
  /// wall-clock time ("we report the longest runtime among all the nodes").
  [[nodiscard]] StepTimes max_with(const StepTimes& o) const {
    StepTimes r = *this;
    for (std::size_t i = 0; i < kSteps; ++i)
      if (o.seconds[i] > r.seconds[i]) r.seconds[i] = o.seconds[i];
    r.overhead = r.overhead.max_with(o.overhead);
    return r;
  }

  /// Human-readable name for step `i` (0-4), matching Table 2 row labels.
  static std::string step_name(std::size_t i);
};

}  // namespace zh
