// Memory hints for large allocations.
#pragma once

#include <cstddef>

namespace zh {

/// Advise the kernel to back [p, p+bytes) with transparent huge pages.
/// Per-tile histogram tables reach gigabytes (tiles x bins x 4 B; the
/// paper budgets 50 MB per 5x5-degree raster and CONUS-scale runs hold
/// ~1.4 GB per raster); 4 KiB faulting of such tables is measurably slow
/// on virtualized hosts, and THP cuts the fault count by 512x. Best
/// effort: a no-op where unsupported.
void hint_huge_pages(void* p, std::size_t bytes);

/// Threshold above which containers ask for huge pages (2 MiB pages
/// start paying off well before this, but small tables don't matter).
inline constexpr std::size_t kHugePageHintBytes = 64u << 20;  // 64 MiB

/// Peak resident set size of this process in bytes (Linux VmHWM).
/// Returns 0 where the platform doesn't expose it. The run report
/// records this as the memory high-water mark of a run.
std::size_t peak_rss_bytes();

}  // namespace zh
