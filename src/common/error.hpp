// Error handling: exceptions carrying formatted context, plus precondition
// macros. Following the C++ Core Guidelines (E.2/E.3) we throw to signal
// errors that cannot be handled locally and reserve assertions/checks for
// programming errors.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>

namespace zh {

/// Base class for all zonalhist errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Malformed or unreadable input data (files, streams, encodings).
class IoError : public Error {
 public:
  explicit IoError(const std::string& what) : Error(what) {}
};

/// A caller violated an API precondition (bad sizes, out-of-range ids, ...).
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

namespace detail {
template <typename... Args>
std::string format_parts(Args&&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}
}  // namespace detail

}  // namespace zh

/// Throw InvalidArgument if `cond` is false. The message is only formatted
/// on failure, so checks stay cheap on the hot path.
#define ZH_REQUIRE(cond, ...)                                       \
  do {                                                              \
    if (!(cond)) {                                                  \
      throw ::zh::InvalidArgument(::zh::detail::format_parts(       \
          __FILE__, ":", __LINE__, ": requirement failed: ", #cond, \
          " -- ", __VA_ARGS__));                                    \
    }                                                               \
  } while (false)

/// Throw IoError if `cond` is false.
#define ZH_REQUIRE_IO(cond, ...)                                      \
  do {                                                                \
    if (!(cond)) {                                                    \
      throw ::zh::IoError(::zh::detail::format_parts(                 \
          __FILE__, ":", __LINE__, ": I/O failure: ", __VA_ARGS__));  \
    }                                                                 \
  } while (false)
