// Error handling: exceptions carrying formatted context, plus precondition
// macros. Following the C++ Core Guidelines (E.2/E.3) we throw to signal
// errors that cannot be handled locally and reserve assertions/checks for
// programming errors.
#pragma once

#include <chrono>
#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>

namespace zh {

/// Base class for all zonalhist errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Malformed or unreadable input data (files, streams, encodings).
class IoError : public Error {
 public:
  explicit IoError(const std::string& what) : Error(what) {}
};

/// A caller violated an API precondition (bad sizes, out-of-range ids, ...).
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// A blocking operation exceeded its deadline (cluster comm timeouts).
class TimeoutError : public Error {
 public:
  explicit TimeoutError(const std::string& what) : Error(what) {}
};

/// Point in time a blocking call must give up at. Deadlines compose
/// naturally across retries: each attempt waits until min(deadline,
/// attempt budget), so nesting never extends the caller's bound.
class [[nodiscard]] Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  /// No bound -- for calls that are documented to be externally bounded
  /// (e.g. the caller supervises the peer and marks it dead on failure).
  [[nodiscard]] static Deadline never() { return Deadline(Clock::time_point::max()); }

  [[nodiscard]] static Deadline after_ms(std::int64_t ms) {
    return Deadline(Clock::now() + std::chrono::milliseconds(ms));
  }

  [[nodiscard]] static Deadline at(Clock::time_point when) {
    return Deadline(when);
  }

  [[nodiscard]] bool is_never() const {
    return when_ == Clock::time_point::max();
  }
  [[nodiscard]] bool expired() const {
    return !is_never() && Clock::now() >= when_;
  }
  [[nodiscard]] Clock::time_point when() const { return when_; }

  /// The earlier of this deadline and `other`.
  [[nodiscard]] Deadline min(Deadline other) const {
    return Deadline(when_ < other.when_ ? when_ : other.when_);
  }

 private:
  explicit Deadline(Clock::time_point when) : when_(when) {}
  Clock::time_point when_;
};

/// Outcome category of a Status-returning call.
enum class StatusCode : std::uint8_t {
  kOk = 0,
  kTimeout,   ///< deadline passed before the operation could complete
  kRankDead,  ///< the peer rank crashed or was declared dead
  kCorrupt,   ///< data failed an integrity check
};

/// Error-or-ok result for calls that must not throw on expected runtime
/// failures (timeouts, dead peers). Exception-throwing wrappers call
/// throw_if_error() at the API boundary.
class [[nodiscard]] Status {
 public:
  Status() = default;  ///< ok

  [[nodiscard]] static Status ok() { return {}; }
  [[nodiscard]] static Status error(StatusCode code, std::string message) {
    Status s;
    s.code_ = code;
    s.message_ = std::move(message);
    return s;
  }

  [[nodiscard]] bool is_ok() const { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }

  /// Map to the matching exception type; no-op when ok.
  void throw_if_error() const {
    switch (code_) {
      case StatusCode::kOk:
        return;
      case StatusCode::kTimeout:
        throw TimeoutError(message_);
      case StatusCode::kCorrupt:
        throw IoError(message_);
      case StatusCode::kRankDead:
        break;
    }
    throw Error(message_);
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

namespace detail {
template <typename... Args>
std::string format_parts(Args&&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}
}  // namespace detail

}  // namespace zh

/// Throw InvalidArgument if `cond` is false. The message is only formatted
/// on failure, so checks stay cheap on the hot path.
#define ZH_REQUIRE(cond, ...)                                       \
  do {                                                              \
    if (!(cond)) {                                                  \
      throw ::zh::InvalidArgument(::zh::detail::format_parts(       \
          __FILE__, ":", __LINE__, ": requirement failed: ", #cond, \
          " -- ", __VA_ARGS__));                                    \
    }                                                               \
  } while (false)

/// Throw IoError if `cond` is false.
#define ZH_REQUIRE_IO(cond, ...)                                      \
  do {                                                                \
    if (!(cond)) {                                                    \
      throw ::zh::IoError(::zh::detail::format_parts(                 \
          __FILE__, ":", __LINE__, ": I/O failure: ", __VA_ARGS__));  \
    }                                                                 \
  } while (false)
