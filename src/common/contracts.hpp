// Debug contracts and race-checker annotations.
//
// The paper's pipeline is only correct while a handful of invariants hold:
// histogram bin indices stay < B (Sec. III.A), the Step-2 classification
// partitions tile/polygon pairs cleanly into outside/inside/intersect
// (Sec. III.B), and BQ-Tree bitstream cursors never run past the encoded
// quadrant (Sec. IV.A). The CPU substitution adds shared-memory concurrency
// (ThreadPool + atomics) on top. This header provides the checking macros
// that make those invariants executable:
//
//  * ZH_ASSERT(cond, msg...)        -- internal invariant; aborts on failure.
//  * ZH_DCHECK_BOUNDS(i, n)         -- index-in-range shorthand.
//  * ZH_TSAN_ACQUIRE/RELEASE(addr)  -- happens-before edges for TSan where
//                                      synchronization is hand-rolled.
//
// Contracts are ACTIVE in Debug and sanitizer builds (ZH_ENABLE_CONTRACTS=1,
// set by CMake) and COMPILED OUT in Release/RelWithDebInfo, so the hot
// kernels pay nothing in production. Unlike ZH_REQUIRE (common/error.hpp),
// which validates caller-supplied input and throws, a failed ZH_ASSERT is a
// programming error: it prints the violated condition and aborts so the
// stack is intact for a debugger / death test.
#pragma once

#include <cstddef>
#include <string>

#include "common/error.hpp"

#if !defined(ZH_ENABLE_CONTRACTS)
#define ZH_ENABLE_CONTRACTS 0
#endif

namespace zh {

/// True when ZH_ASSERT / ZH_DCHECK_BOUNDS are compiled in. Tests use this
/// to skip death tests in configurations where contracts are compiled out.
[[nodiscard]] constexpr bool contracts_enabled() {
  return ZH_ENABLE_CONTRACTS != 0;
}

namespace detail {

/// Prints "<file>:<line>: contract violated: <cond> -- <msg>" to stderr and
/// aborts. Never returns; defined out of line so the failure path adds one
/// call instruction to instrumented code.
[[noreturn]] void contract_fail(const char* file, int line, const char* cond,
                                const std::string& msg);

}  // namespace detail
}  // namespace zh

#if ZH_ENABLE_CONTRACTS

/// Check an internal invariant. The message is formatted lazily, only on
/// the failure path.
#define ZH_ASSERT(cond, ...)                                          \
  do {                                                                \
    if (!(cond)) [[unlikely]] {                                       \
      ::zh::detail::contract_fail(                                    \
          __FILE__, __LINE__, #cond,                                  \
          ::zh::detail::format_parts(__VA_ARGS__));                   \
    }                                                                 \
  } while (false)

/// Check that index `i` is in [0, n). Values are printed on failure.
#define ZH_DCHECK_BOUNDS(i, n)                                        \
  do {                                                                \
    const auto zh_dcb_i_ = static_cast<std::size_t>(i);               \
    const auto zh_dcb_n_ = static_cast<std::size_t>(n);               \
    if (zh_dcb_i_ >= zh_dcb_n_) [[unlikely]] {                        \
      ::zh::detail::contract_fail(                                    \
          __FILE__, __LINE__, #i " < " #n,                            \
          ::zh::detail::format_parts("index ", zh_dcb_i_,             \
                                     " out of range [0, ", zh_dcb_n_, \
                                     ")"));                           \
    }                                                                 \
  } while (false)

#else  // contracts compiled out: zero runtime cost, operands stay "used"
       // so Release builds do not sprout -Wunused warnings.

#define ZH_ASSERT(cond, ...) \
  do {                       \
    (void)sizeof(cond);      \
  } while (false)

#define ZH_DCHECK_BOUNDS(i, n) \
  do {                         \
    (void)sizeof(i);           \
    (void)sizeof(n);           \
  } while (false)

#endif  // ZH_ENABLE_CONTRACTS

// ---------------------------------------------------------------------------
// ThreadSanitizer happens-before annotations.
//
// Most synchronization in the codebase is mutex/condition_variable based,
// which TSan models natively. The two places that hand-roll ordering --
// ThreadPool::parallel_for's completion spin-wait and its error-publication
// path -- rely on release-sequence reasoning over atomic RMWs. TSan's
// atomic interception handles those too, but the explicit edges double as
// machine-checked documentation and keep the code safe if a future refactor
// weakens a memory order.
// ---------------------------------------------------------------------------

#if defined(__SANITIZE_THREAD__)
#define ZH_TSAN_ENABLED 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define ZH_TSAN_ENABLED 1
#endif
#endif
#if !defined(ZH_TSAN_ENABLED)
#define ZH_TSAN_ENABLED 0
#endif

#if ZH_TSAN_ENABLED
extern "C" {
void __tsan_acquire(void* addr);
void __tsan_release(void* addr);
}
/// Declare an acquire edge on `addr` (pairs with ZH_TSAN_RELEASE).
#define ZH_TSAN_ACQUIRE(addr) __tsan_acquire(const_cast<void*>( \
    static_cast<const volatile void*>(addr)))
/// Declare a release edge on `addr`.
#define ZH_TSAN_RELEASE(addr) __tsan_release(const_cast<void*>( \
    static_cast<const volatile void*>(addr)))
#else
#define ZH_TSAN_ACQUIRE(addr) \
  do {                        \
    (void)sizeof(addr);       \
  } while (false)
#define ZH_TSAN_RELEASE(addr) \
  do {                        \
    (void)sizeof(addr);       \
  } while (false)
#endif  // ZH_TSAN_ENABLED
