// Core integer/id types shared by every zonalhist subsystem.
//
// The paper's kernels (Figs. 2/4/5) operate on unsigned 16-bit raster cell
// values ("ushort v = raw_d[s]") and 32-bit unsigned counters/indices; we
// keep the same widths so memory-footprint arithmetic (e.g. the 50 MB
// per-tile-histogram budget computed in Sec. III.A) carries over unchanged.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>

namespace zh {

/// Raster cell value type (elevation in meters for SRTM-style DEMs).
using CellValue = std::uint16_t;

/// Histogram bin count / bin index type.
using BinIndex = std::uint32_t;

/// Count accumulated in a single histogram bin (paper uses 4-byte ints).
using BinCount = std::uint32_t;

/// Wide count for cross-polygon/cross-rank aggregates that may exceed 2^32.
using BinCount64 = std::uint64_t;

/// Identifier of a raster tile within a tiling scheme (row-major).
using TileId = std::uint32_t;

/// Identifier of a polygon (zone) within a polygon collection.
using PolygonId = std::uint32_t;

/// Identifier of a cluster rank (simulated compute node).
using RankId = std::uint32_t;

/// Sentinel for "no tile" / "no polygon".
inline constexpr TileId kInvalidTile = std::numeric_limits<TileId>::max();
inline constexpr PolygonId kInvalidPolygon =
    std::numeric_limits<PolygonId>::max();

/// Relationship between a raster tile and a polygon, as produced by the
/// Step-2 spatial filter (Sec. III.B): the only three cases the MBB
/// rasterization can yield.
enum class TileRelation : std::uint8_t {
  kOutside = 0,   ///< tile shares no area with the polygon; skipped entirely
  kInside = 1,    ///< tile completely within: per-tile histogram is reusable
  kIntersect = 2  ///< tile crosses the boundary: needs per-cell PIP (Step 4)
};

/// Integer ceiling division; used for grid/block sizing everywhere.
constexpr std::size_t div_up(std::size_t a, std::size_t b) {
  return (a + b - 1) / b;
}

}  // namespace zh
