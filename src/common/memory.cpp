#include "common/memory.hpp"

#include <cstdint>

#if defined(__linux__)
#include <cstdio>
#include <cstring>
#include <sys/mman.h>
#include <unistd.h>
#endif

namespace zh {

void hint_huge_pages(void* p, std::size_t bytes) {
#if defined(__linux__) && defined(MADV_HUGEPAGE)
  if (p == nullptr || bytes == 0) return;
  // madvise needs page-aligned addresses; shrink the range inward.
  const auto page = static_cast<std::uintptr_t>(::sysconf(_SC_PAGESIZE));
  auto begin = reinterpret_cast<std::uintptr_t>(p);
  const std::uintptr_t end = begin + bytes;
  begin = (begin + page - 1) & ~(page - 1);
  if (end <= begin) return;
  // Best effort: failures (old kernels, disabled THP) are harmless.
  (void)::madvise(reinterpret_cast<void*>(begin), end - begin,
                  MADV_HUGEPAGE);
#else
  (void)p;
  (void)bytes;
#endif
}

std::size_t peak_rss_bytes() {
#if defined(__linux__)
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  std::size_t kib = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, "VmHWM:", 6) == 0) {
      unsigned long long v = 0;
      if (std::sscanf(line + 6, "%llu", &v) == 1) kib = v;
      break;
    }
  }
  std::fclose(f);
  return kib * 1024;
#else
  return 0;
#endif
}

}  // namespace zh
