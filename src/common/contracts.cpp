#include "common/contracts.hpp"

#include <cstdio>
#include <cstdlib>

namespace zh::detail {

[[noreturn]] void contract_fail(const char* file, int line, const char* cond,
                                const std::string& msg) {
  // fprintf, not iostreams: the process is in an arbitrary (possibly
  // lock-holding) state, and stderr must stay unbuffered for death tests.
  // zh-lint-ignore(stdio-in-lib): abort path; the death-test harness reads stderr
  std::fprintf(stderr, "%s:%d: contract violated: %s%s%s\n", file, line,
               cond, msg.empty() ? "" : " -- ", msg.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace zh::detail
