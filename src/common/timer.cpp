#include "common/timer.hpp"

#include <array>

namespace zh {

std::string StepTimes::step_name(std::size_t i) {
  static const std::array<const char*, StepTimes::kSteps> kNames = {
      "(Step 0): Raster decompression",
      "Step 1: Per-tile histogramming",
      "Step 2: Tile-in-polygon test",
      "Step 3: Within-tile histogram aggregation",
      "Step 4: Cell-in-polygon test and histogram update",
  };
  return i < kNames.size() ? kNames[i] : "unknown step";
}

}  // namespace zh
