// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) for container
// integrity checks. The .zgrid/.bq loaders verify header and payload
// checksums so truncation and bit-flips surface as IoError instead of
// decoded garbage -- cheap insurance when rasters travel across job
// schedulers and parallel filesystems.
#pragma once

#include <cstddef>
#include <cstdint>

namespace zh {

/// Incremental CRC-32 accumulator (init 0xFFFFFFFF, final xor-out).
class Crc32 {
 public:
  void update(const void* data, std::size_t size);

  /// Finalized checksum of everything fed so far (does not reset state).
  [[nodiscard]] std::uint32_t value() const { return state_ ^ 0xFFFFFFFFu; }

 private:
  std::uint32_t state_ = 0xFFFFFFFFu;
};

/// One-shot CRC-32 of a buffer.
[[nodiscard]] std::uint32_t crc32(const void* data, std::size_t size);

}  // namespace zh
