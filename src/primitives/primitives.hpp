// Thrust-analog parallel primitives.
//
// Sec. III.C of the paper builds the Step-3 post-processing out of the
// Thrust primitives stable_sort_by_key, stable_partition, reduce_by_key and
// scan (Fig. 4). This header provides the same contracts executed on the
// host ThreadPool, so the pipeline code reads like the paper's primitive
// composition. All primitives match their sequential std:: counterparts
// exactly (tested property); parallelism only changes wall time.
#pragma once

#include <algorithm>
#include <cstddef>
#include <functional>
#include <numeric>
#include <span>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "device/thread_pool.hpp"

namespace zh::prim {

/// Fill `out` with 0, 1, 2, ... (thrust::sequence).
template <typename T>
void sequence(std::span<T> out, T start = T{0}) {
  ThreadPool::global().parallel_for(
      out.size(),
      [&](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i)
          out[i] = start + static_cast<T>(i);
      },
      1 << 12);
}

/// Parallel transform: out[i] = fn(in[i]) (thrust::transform).
template <typename In, typename Out, typename Fn>
void transform(std::span<const In> in, std::span<Out> out, Fn fn) {
  ZH_REQUIRE(in.size() == out.size(), "transform size mismatch");
  ThreadPool::global().parallel_for(
      in.size(),
      [&](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) out[i] = fn(in[i]);
      },
      1 << 12);
}

/// Parallel reduction with a commutative/associative op (thrust::reduce).
template <typename T, typename Op = std::plus<T>>
T reduce(std::span<const T> in, T init = T{}, Op op = Op{}) {
  const std::size_t n = in.size();
  if (n == 0) return init;
  auto& pool = ThreadPool::global();
  const std::size_t chunks =
      std::min<std::size_t>(std::max<std::size_t>(1, pool.size() * 4),
                            (n + ((1 << 14) - 1)) >> 14);
  if (chunks <= 1) {
    T acc = init;
    for (const T& v : in) acc = op(acc, v);
    return acc;
  }
  const std::size_t chunk = (n + chunks - 1) / chunks;
  std::vector<T> partial(chunks, T{});
  pool.parallel_for(
      chunks,
      [&](std::size_t cb, std::size_t ce) {
        for (std::size_t c = cb; c < ce; ++c) {
          const std::size_t lo = c * chunk;
          const std::size_t hi = std::min(n, lo + chunk);
          T acc = in[lo];
          for (std::size_t i = lo + 1; i < hi; ++i) acc = op(acc, in[i]);
          partial[c] = acc;
        }
      });
  T acc = init;
  for (const T& v : partial) acc = op(acc, v);
  return acc;
}

/// Exclusive prefix sum (thrust::exclusive_scan). Two-pass parallel:
/// per-chunk totals, sequential scan of totals, per-chunk rescan.
template <typename T>
void exclusive_scan(std::span<const T> in, std::span<T> out, T init = T{}) {
  ZH_REQUIRE(in.size() == out.size(), "scan size mismatch");
  const std::size_t n = in.size();
  if (n == 0) return;
  auto& pool = ThreadPool::global();
  const std::size_t chunks =
      std::min<std::size_t>(std::max<std::size_t>(1, pool.size() * 4),
                            (n + ((1 << 14) - 1)) >> 14);
  const std::size_t chunk = (n + chunks - 1) / chunks;
  std::vector<T> sums(chunks, T{});
  pool.parallel_for(chunks, [&](std::size_t cb, std::size_t ce) {
    for (std::size_t c = cb; c < ce; ++c) {
      const std::size_t lo = c * chunk;
      const std::size_t hi = std::min(n, lo + chunk);
      T acc = T{};
      for (std::size_t i = lo; i < hi; ++i) acc += in[i];
      sums[c] = acc;
    }
  });
  std::vector<T> offsets(chunks);
  T running = init;
  for (std::size_t c = 0; c < chunks; ++c) {
    offsets[c] = running;
    running += sums[c];
  }
  pool.parallel_for(chunks, [&](std::size_t cb, std::size_t ce) {
    for (std::size_t c = cb; c < ce; ++c) {
      const std::size_t lo = c * chunk;
      const std::size_t hi = std::min(n, lo + chunk);
      T acc = offsets[c];
      for (std::size_t i = lo; i < hi; ++i) {
        const T v = in[i];  // read before write: in may alias out
        out[i] = acc;
        acc += v;
      }
    }
  });
}

/// Inclusive prefix sum (thrust::inclusive_scan).
template <typename T>
void inclusive_scan(std::span<const T> in, std::span<T> out) {
  ZH_REQUIRE(in.size() == out.size(), "scan size mismatch");
  if (in.empty()) return;
  // inclusive[i] = exclusive[i] + in[i]; do it chunk-wise in one pass.
  std::vector<T> tmp(in.begin(), in.end());
  exclusive_scan<T>(std::span<const T>(tmp), out, T{});
  ThreadPool::global().parallel_for(
      in.size(),
      [&](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) out[i] += tmp[i];
      },
      1 << 12);
}

/// out[i] = src[indices[i]] (thrust::gather).
template <typename T, typename Index>
void gather(std::span<const Index> indices, std::span<const T> src,
            std::span<T> out) {
  ZH_REQUIRE(indices.size() == out.size(), "gather size mismatch");
  ThreadPool::global().parallel_for(
      indices.size(),
      [&](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i)
          out[i] = src[static_cast<std::size_t>(indices[i])];
      },
      1 << 12);
}

/// out[indices[i]] = src[i] (thrust::scatter). Indices must be unique.
template <typename T, typename Index>
void scatter(std::span<const T> src, std::span<const Index> indices,
             std::span<T> out) {
  ZH_REQUIRE(indices.size() == src.size(), "scatter size mismatch");
  ThreadPool::global().parallel_for(
      indices.size(),
      [&](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i)
          out[static_cast<std::size_t>(indices[i])] = src[i];
      },
      1 << 12);
}

/// Stable counting of elements satisfying `pred` then compaction
/// (thrust::copy_if). Returns the compacted vector.
template <typename T, typename Pred>
std::vector<T> copy_if(std::span<const T> in, Pred pred) {
  // Two-pass: per-chunk counts -> offsets -> parallel writes.
  const std::size_t n = in.size();
  auto& pool = ThreadPool::global();
  const std::size_t chunks =
      std::min<std::size_t>(std::max<std::size_t>(1, pool.size() * 4),
                            std::max<std::size_t>(1, n >> 14));
  const std::size_t chunk = chunks ? (n + chunks - 1) / chunks : 0;
  if (n == 0) return {};
  std::vector<std::size_t> counts(chunks, 0);
  pool.parallel_for(chunks, [&](std::size_t cb, std::size_t ce) {
    for (std::size_t c = cb; c < ce; ++c) {
      const std::size_t lo = c * chunk;
      const std::size_t hi = std::min(n, lo + chunk);
      std::size_t cnt = 0;
      for (std::size_t i = lo; i < hi; ++i)
        if (pred(in[i])) ++cnt;
      counts[c] = cnt;
    }
  });
  std::vector<std::size_t> offsets(chunks);
  std::size_t total = 0;
  for (std::size_t c = 0; c < chunks; ++c) {
    offsets[c] = total;
    total += counts[c];
  }
  std::vector<T> out(total);
  pool.parallel_for(chunks, [&](std::size_t cb, std::size_t ce) {
    for (std::size_t c = cb; c < ce; ++c) {
      const std::size_t lo = c * chunk;
      const std::size_t hi = std::min(n, lo + chunk);
      std::size_t w = offsets[c];
      for (std::size_t i = lo; i < hi; ++i)
        if (pred(in[i])) out[w++] = in[i];
    }
  });
  return out;
}

/// Permutation that stable-sorts `keys` under `comp` (argsort). The
/// building block for multi-array stable_sort_by_key: sort the permutation
/// once, then gather every value array through it.
template <typename K, typename Comp = std::less<K>>
std::vector<std::size_t> stable_sort_permutation(std::span<const K> keys,
                                                 Comp comp = Comp{}) {
  const std::size_t n = keys.size();
  std::vector<std::size_t> perm(n);
  std::iota(perm.begin(), perm.end(), std::size_t{0});
  auto& pool = ThreadPool::global();

  // Parallel merge sort: stable-sort equal chunks, then pairwise
  // inplace_merge rounds. Index comparison breaks ties by position, which
  // is exactly the stability requirement.
  auto index_comp = [&](std::size_t a, std::size_t b) {
    if (comp(keys[a], keys[b])) return true;
    if (comp(keys[b], keys[a])) return false;
    return a < b;
  };
  const std::size_t workers = std::max<std::size_t>(1, pool.size());
  std::size_t chunk = std::max<std::size_t>(1 << 13, (n + workers - 1) / workers);
  if (chunk >= n) {
    std::stable_sort(perm.begin(), perm.end(), index_comp);
    return perm;
  }
  const std::size_t nchunks = (n + chunk - 1) / chunk;
  pool.parallel_for(nchunks, [&](std::size_t cb, std::size_t ce) {
    for (std::size_t c = cb; c < ce; ++c) {
      auto lo = perm.begin() + static_cast<std::ptrdiff_t>(c * chunk);
      auto hi = perm.begin() +
                static_cast<std::ptrdiff_t>(std::min(n, (c + 1) * chunk));
      std::stable_sort(lo, hi, index_comp);
    }
  });
  for (std::size_t width = chunk; width < n; width *= 2) {
    const std::size_t pairs = (n + 2 * width - 1) / (2 * width);
    pool.parallel_for(pairs, [&](std::size_t pb, std::size_t pe) {
      for (std::size_t p = pb; p < pe; ++p) {
        const std::size_t lo = p * 2 * width;
        const std::size_t mid = std::min(n, lo + width);
        const std::size_t hi = std::min(n, lo + 2 * width);
        if (mid < hi) {
          std::inplace_merge(
              perm.begin() + static_cast<std::ptrdiff_t>(lo),
              perm.begin() + static_cast<std::ptrdiff_t>(mid),
              perm.begin() + static_cast<std::ptrdiff_t>(hi), index_comp);
        }
      }
    });
  }
  return perm;
}

/// Reorder `v` so that v'[i] = v[perm[i]] (gather through a permutation).
template <typename T>
void apply_permutation(std::span<const std::size_t> perm, std::vector<T>& v) {
  ZH_REQUIRE(perm.size() == v.size(), "permutation size mismatch");
  std::vector<T> tmp(v.size());
  // zh-lint-ignore(discarded-status): primitives::gather is the void thrust analog, not comm's Status gather
  gather<T, std::size_t>(perm, std::span<const T>(v), std::span<T>(tmp));
  v = std::move(tmp);
}

/// thrust::stable_sort_by_key over one key and one value array.
template <typename K, typename V, typename Comp = std::less<K>>
void stable_sort_by_key(std::vector<K>& keys, std::vector<V>& values,
                        Comp comp = Comp{}) {
  ZH_REQUIRE(keys.size() == values.size(), "sort_by_key size mismatch");
  auto perm =
      stable_sort_permutation<K, Comp>(std::span<const K>(keys), comp);
  apply_permutation<K>(perm, keys);
  apply_permutation<V>(perm, values);
}

/// stable_sort_by_key with two value arrays (the Step-2 output sorts the
/// tile-id and polygon-id arrays by (relation, polygon) jointly).
template <typename K, typename V1, typename V2,
          typename Comp = std::less<K>>
void stable_sort_by_key(std::vector<K>& keys, std::vector<V1>& values1,
                        std::vector<V2>& values2, Comp comp = Comp{}) {
  ZH_REQUIRE(keys.size() == values1.size() && keys.size() == values2.size(),
             "sort_by_key size mismatch");
  auto perm =
      stable_sort_permutation<K, Comp>(std::span<const K>(keys), comp);
  apply_permutation<K>(perm, keys);
  apply_permutation<V1>(perm, values1);
  apply_permutation<V2>(perm, values2);
}

/// thrust::stable_partition over parallel arrays: move elements whose key
/// satisfies `pred` to the front, preserving relative order on both sides.
/// Returns the number of elements in the true partition.
template <typename K, typename V, typename Pred>
std::size_t stable_partition_by_key(std::vector<K>& keys,
                                    std::vector<V>& values, Pred pred) {
  ZH_REQUIRE(keys.size() == values.size(), "partition size mismatch");
  const std::size_t n = keys.size();
  std::vector<K> k2;
  std::vector<V> v2;
  k2.reserve(n);
  v2.reserve(n);
  std::size_t true_count = 0;
  for (std::size_t i = 0; i < n; ++i)
    if (pred(keys[i])) {
      k2.push_back(keys[i]);
      v2.push_back(values[i]);
      ++true_count;
    }
  for (std::size_t i = 0; i < n; ++i)
    if (!pred(keys[i])) {
      k2.push_back(keys[i]);
      v2.push_back(values[i]);
    }
  keys = std::move(k2);
  values = std::move(v2);
  return true_count;
}

/// thrust::reduce_by_key: collapse runs of equal consecutive keys, summing
/// their values. Returns (unique_keys, reduced_values).
template <typename K, typename V>
std::pair<std::vector<K>, std::vector<V>> reduce_by_key(
    std::span<const K> keys, std::span<const V> values) {
  ZH_REQUIRE(keys.size() == values.size(), "reduce_by_key size mismatch");
  std::vector<K> out_keys;
  std::vector<V> out_vals;
  const std::size_t n = keys.size();
  std::size_t i = 0;
  while (i < n) {
    const K k = keys[i];
    V acc = values[i];
    std::size_t j = i + 1;
    while (j < n && keys[j] == k) {
      acc += values[j];
      ++j;
    }
    out_keys.push_back(k);
    out_vals.push_back(acc);
    i = j;
  }
  return {std::move(out_keys), std::move(out_vals)};
}

/// Run-length segment starts: offsets[r] = first index of run r in `keys`
/// (which must be grouped, e.g. after stable_sort_by_key). Used to derive
/// the pos_v array of Fig. 4 from the sorted pair list.
template <typename K>
std::vector<std::size_t> run_starts(std::span<const K> keys) {
  std::vector<std::size_t> starts;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    if (i == 0 || !(keys[i] == keys[i - 1])) starts.push_back(i);
  }
  return starts;
}

}  // namespace zh::prim
