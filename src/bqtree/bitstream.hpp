// Packed bit streams for the BQ-Tree codec.
//
// Cursor discipline (Sec. IV.A): a decoder must consume exactly the bits
// the encoder produced for a quadrant -- reading past the encoded stream
// is always a codec bug, and the read path carries contract checks for it
// in Debug/sanitizer builds (see common/contracts.hpp).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/contracts.hpp"
#include "common/error.hpp"

namespace zh {

/// Append-only MSB-first bit writer.
class BitWriter {
 public:
  void put(bool bit) {
    if (used_ == 0) bytes_.push_back(0);
    if (bit) {
      bytes_.back() =
          static_cast<std::uint8_t>(bytes_.back() | (0x80u >> used_));
    }
    used_ = (used_ + 1u) & 7u;
  }

  /// Append the low `count` bits of `v`, most-significant first.
  void put_bits(std::uint32_t v, unsigned count) {
    ZH_REQUIRE(count <= 32, "too many bits");
    for (unsigned i = count; i-- > 0;) {
      put(((v >> i) & 1u) != 0);
    }
  }

  [[nodiscard]] std::size_t bit_count() const {
    // All index math in 64-bit: byte count widens before the *8 so streams
    // larger than 2^29 bytes cannot wrap a 32-bit intermediate.
    return static_cast<std::size_t>(bytes_.size()) * 8u -
           ((8u - used_) & 7u);
  }

  [[nodiscard]] std::vector<std::uint8_t> take() {
    used_ = 0;
    return std::move(bytes_);
  }

 private:
  std::vector<std::uint8_t> bytes_;
  unsigned used_ = 0;  // bits used in the last byte (0 == byte full/none)
};

/// MSB-first bit reader over a byte span.
class BitReader {
 public:
  explicit BitReader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  bool get() {
    ZH_REQUIRE(pos_ < bit_size(), "bit stream exhausted");
    const std::size_t byte = pos_ >> 3u;
    const unsigned bit = static_cast<unsigned>(pos_ & 7u);
    ZH_DCHECK_BOUNDS(byte, bytes_.size());
    const bool value = (bytes_[byte] & (0x80u >> bit)) != 0;
    ++pos_;
    return value;
  }

  std::uint32_t get_bits(unsigned count) {
    ZH_ASSERT(count <= 32, "BitReader::get_bits: count=", count,
              " exceeds 32-bit accumulator");
    std::uint32_t v = 0;
    for (unsigned i = 0; i < count; ++i) v = (v << 1u) | (get() ? 1u : 0u);
    return v;
  }

  /// Total bits in the underlying span (64-bit math; see bit_count above).
  [[nodiscard]] std::size_t bit_size() const {
    return static_cast<std::size_t>(bytes_.size()) * 8u;
  }

  /// Bits not yet consumed.
  [[nodiscard]] std::size_t remaining() const { return bit_size() - pos_; }

  [[nodiscard]] std::size_t position() const { return pos_; }

 private:
  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

}  // namespace zh
