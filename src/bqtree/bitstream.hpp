// Packed bit streams for the BQ-Tree codec.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/error.hpp"

namespace zh {

/// Append-only MSB-first bit writer.
class BitWriter {
 public:
  void put(bool bit) {
    if (used_ == 0) bytes_.push_back(0);
    if (bit) bytes_.back() |= static_cast<std::uint8_t>(0x80u >> used_);
    used_ = (used_ + 1) & 7;
  }

  /// Append the low `count` bits of `v`, most-significant first.
  void put_bits(std::uint32_t v, unsigned count) {
    ZH_REQUIRE(count <= 32, "too many bits");
    for (unsigned i = count; i-- > 0;) {
      put(((v >> i) & 1u) != 0);
    }
  }

  [[nodiscard]] std::size_t bit_count() const {
    return bytes_.size() * 8 - ((8 - used_) & 7);
  }

  [[nodiscard]] std::vector<std::uint8_t> take() {
    used_ = 0;
    return std::move(bytes_);
  }

 private:
  std::vector<std::uint8_t> bytes_;
  unsigned used_ = 0;  // bits used in the last byte (0 == byte full/none)
};

/// MSB-first bit reader over a byte span.
class BitReader {
 public:
  explicit BitReader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  bool get() {
    ZH_REQUIRE(pos_ < bytes_.size() * 8, "bit stream exhausted");
    const bool bit =
        (bytes_[pos_ >> 3] & (0x80u >> (pos_ & 7))) != 0;
    ++pos_;
    return bit;
  }

  std::uint32_t get_bits(unsigned count) {
    std::uint32_t v = 0;
    for (unsigned i = 0; i < count; ++i) v = (v << 1) | (get() ? 1u : 0u);
    return v;
  }

  [[nodiscard]] std::size_t position() const { return pos_; }

 private:
  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

}  // namespace zh
