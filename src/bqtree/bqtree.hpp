// Bitplane Bitmap Quadtree (BQ-Tree) codec.
//
// The paper's Step 0 (Sec. IV.A) decodes BQ-Tree-compressed rasters into
// tiles in device memory; the codec itself is from Zhang, You & Gruenwald
// (ACM-GIS 2011, the paper's ref. [21]). The idea: decompose a uint16
// raster into 16 bitplanes; each bitplane, being a binary image with
// strong spatial coherence (elevation high bits are constant over large
// areas), compresses well as a region quadtree whose uniform quadrants
// collapse to single nodes. Node code: 2 bits
//   00 all-zero quadrant     01 all-one quadrant     10 mixed
// A mixed node recurses into 4 children until the quadrant edge reaches
// kLeafEdge, where the in-bounds cells are emitted as literal bits.
// Bitplanes that are entirely zero across the tile are dropped entirely
// (a 16-bit plane mask records which are present) -- the dominant saving
// for DEM data whose values rarely exceed a few thousand meters.
//
// Uniformity checks use a per-plane summed-area table, making encoding
// O(cells * planes) instead of O(cells * planes * depth).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"

namespace zh {

/// One tile's compressed representation.
struct BqEncodedTile {
  std::uint32_t rows = 0;
  std::uint32_t cols = 0;
  std::uint16_t plane_mask = 0;        ///< bit p set => plane p encoded
  std::vector<std::uint8_t> payload;   ///< concatenated plane bit streams

  [[nodiscard]] std::size_t compressed_bytes() const {
    return payload.size() + sizeof(rows) + sizeof(cols) + sizeof(plane_mask);
  }
  [[nodiscard]] std::size_t raw_bytes() const {
    return static_cast<std::size_t>(rows) * cols * sizeof(CellValue);
  }
};

/// Quadrant edge length at which literals are emitted.
inline constexpr std::uint32_t kBqLeafEdge = 4;

/// Encode a row-major rows x cols uint16 grid.
[[nodiscard]] BqEncodedTile bq_encode(std::span<const CellValue> cells,
                                      std::uint32_t rows,
                                      std::uint32_t cols);

/// Decode into `out` (must hold rows*cols values). Exact inverse of
/// bq_encode for every input.
void bq_decode(const BqEncodedTile& tile, std::span<CellValue> out);

}  // namespace zh
