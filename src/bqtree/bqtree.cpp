#include "bqtree/bqtree.hpp"

#include <algorithm>
#include <bit>

#include "bqtree/bitstream.hpp"

namespace zh {

namespace {

constexpr unsigned kPlanes = 16;

// Summed-area table over one bitplane: sat(r, c) = number of set bits in
// the rectangle [0,r) x [0,c). Dimensions (rows+1) x (cols+1).
class PlaneSat {
 public:
  PlaneSat(std::span<const CellValue> cells, std::uint32_t rows,
           std::uint32_t cols, unsigned plane)
      : cols1_(cols + 1), sat_((rows + 1) * (cols + 1), 0) {
    const CellValue mask = static_cast<CellValue>(1u << plane);
    for (std::uint32_t r = 0; r < rows; ++r) {
      std::uint32_t row_sum = 0;
      for (std::uint32_t c = 0; c < cols; ++c) {
        row_sum += (cells[static_cast<std::size_t>(r) * cols + c] & mask)
                       ? 1u
                       : 0u;
        sat_[idx(r + 1, c + 1)] = sat_[idx(r, c + 1)] + row_sum;
      }
    }
  }

  /// Set-bit count in rows [r0, r1) x cols [c0, c1).
  [[nodiscard]] std::uint32_t count(std::uint32_t r0, std::uint32_t c0,
                                    std::uint32_t r1,
                                    std::uint32_t c1) const {
    return sat_[idx(r1, c1)] - sat_[idx(r0, c1)] - sat_[idx(r1, c0)] +
           sat_[idx(r0, c0)];
  }

 private:
  [[nodiscard]] std::size_t idx(std::uint32_t r, std::uint32_t c) const {
    return static_cast<std::size_t>(r) * cols1_ + c;
  }
  std::uint32_t cols1_;
  std::vector<std::uint32_t> sat_;
};

struct EncodeCtx {
  std::span<const CellValue> cells;
  std::uint32_t rows, cols;
  CellValue mask;
  const PlaneSat* sat;
  BitWriter* out;
};

// Encode the quadrant with top-left (r0, c0) and edge `edge`. Quadrants
// partially or fully outside the tile are clipped; fully-outside
// quadrants encode as all-zero so decode can stay shape-agnostic.
void encode_quad(const EncodeCtx& ctx, std::uint32_t r0, std::uint32_t c0,
                 std::uint32_t edge) {
  const std::uint32_t r1 = std::min(r0 + edge, ctx.rows);
  const std::uint32_t c1 = std::min(c0 + edge, ctx.cols);
  if (r0 >= r1 || c0 >= c1) {
    ctx.out->put_bits(0b00, 2);
    return;
  }
  const std::uint32_t ones = ctx.sat->count(r0, c0, r1, c1);
  const std::uint32_t area = (r1 - r0) * (c1 - c0);
  if (ones == 0) {
    ctx.out->put_bits(0b00, 2);
    return;
  }
  if (ones == area) {
    ctx.out->put_bits(0b01, 2);
    return;
  }
  ctx.out->put_bits(0b10, 2);
  if (edge <= kBqLeafEdge) {
    // Literal: in-bounds cells of the quadrant, row-major.
    for (std::uint32_t r = r0; r < r1; ++r) {
      for (std::uint32_t c = c0; c < c1; ++c) {
        ctx.out->put(
            (ctx.cells[static_cast<std::size_t>(r) * ctx.cols + c] &
             ctx.mask) != 0);
      }
    }
    return;
  }
  const std::uint32_t half = edge / 2;
  encode_quad(ctx, r0, c0, half);
  encode_quad(ctx, r0, c0 + half, half);
  encode_quad(ctx, r0 + half, c0, half);
  encode_quad(ctx, r0 + half, c0 + half, half);
}

struct DecodeCtx {
  std::span<CellValue> cells;
  std::uint32_t rows, cols;
  CellValue mask;
  BitReader* in;
};

void decode_quad(const DecodeCtx& ctx, std::uint32_t r0, std::uint32_t c0,
                 std::uint32_t edge) {
  const std::uint32_t code = ctx.in->get_bits(2);
  const std::uint32_t r1 = std::min(r0 + edge, ctx.rows);
  const std::uint32_t c1 = std::min(c0 + edge, ctx.cols);
  switch (code) {
    case 0b00:
      return;  // all zero: output pre-cleared
    case 0b01:
      for (std::uint32_t r = r0; r < r1; ++r) {
        for (std::uint32_t c = c0; c < c1; ++c) {
          ctx.cells[static_cast<std::size_t>(r) * ctx.cols + c] |= ctx.mask;
        }
      }
      return;
    case 0b10:
      if (edge <= kBqLeafEdge) {
        for (std::uint32_t r = r0; r < r1; ++r) {
          for (std::uint32_t c = c0; c < c1; ++c) {
            if (ctx.in->get()) {
              ctx.cells[static_cast<std::size_t>(r) * ctx.cols + c] |=
                  ctx.mask;
            }
          }
        }
      } else {
        const std::uint32_t half = edge / 2;
        decode_quad(ctx, r0, c0, half);
        decode_quad(ctx, r0, c0 + half, half);
        decode_quad(ctx, r0 + half, c0, half);
        decode_quad(ctx, r0 + half, c0 + half, half);
      }
      return;
    default:
      throw IoError("corrupt BQ-Tree stream: reserved node code 11");
  }
}

std::uint32_t root_edge(std::uint32_t rows, std::uint32_t cols) {
  const std::uint32_t m = std::max(rows, cols);
  return std::bit_ceil(std::max<std::uint32_t>(m, kBqLeafEdge));
}

}  // namespace

BqEncodedTile bq_encode(std::span<const CellValue> cells, std::uint32_t rows,
                        std::uint32_t cols) {
  ZH_REQUIRE(cells.size() == static_cast<std::size_t>(rows) * cols,
             "cell span size does not match dims");
  BqEncodedTile tile;
  tile.rows = rows;
  tile.cols = cols;
  if (rows == 0 || cols == 0) return tile;

  // Plane mask: skip planes with no set bits anywhere in the tile.
  CellValue any = 0;
  for (const CellValue v : cells) any |= v;

  BitWriter writer;
  const std::uint32_t edge = root_edge(rows, cols);
  for (unsigned p = 0; p < kPlanes; ++p) {
    const CellValue mask = static_cast<CellValue>(1u << p);
    if ((any & mask) == 0) continue;
    tile.plane_mask |= mask;
    PlaneSat sat(cells, rows, cols, p);
    EncodeCtx ctx{cells, rows, cols, mask, &sat, &writer};
    encode_quad(ctx, 0, 0, edge);
  }
  tile.payload = writer.take();
  return tile;
}

void bq_decode(const BqEncodedTile& tile, std::span<CellValue> out) {
  ZH_REQUIRE(out.size() ==
                 static_cast<std::size_t>(tile.rows) * tile.cols,
             "output span size does not match dims");
  std::fill(out.begin(), out.end(), CellValue{0});
  if (tile.rows == 0 || tile.cols == 0) return;

  BitReader reader(tile.payload);
  const std::uint32_t edge = root_edge(tile.rows, tile.cols);
  for (unsigned p = 0; p < kPlanes; ++p) {
    const CellValue mask = static_cast<CellValue>(1u << p);
    if ((tile.plane_mask & mask) == 0) continue;
    DecodeCtx ctx{out, tile.rows, tile.cols, mask, &reader};
    decode_quad(ctx, 0, 0, edge);
  }
}

}  // namespace zh
