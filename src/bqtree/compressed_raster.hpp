// Tile-granular BQ-Tree-compressed raster.
//
// The paper compresses the 40 GB SRTM CONUS raster to 7.3 GB (~18%) and
// decodes it *per tile* on the device (Step 0), so compression granularity
// must match the zonal tiling. This container encodes each tile of a
// TilingScheme independently; the pipeline decodes exactly the tiles it
// needs, in parallel.
#pragma once

#include <cstdint>
#include <vector>

#include "bqtree/bqtree.hpp"
#include "common/types.hpp"
#include "grid/raster.hpp"
#include "grid/tiling.hpp"

namespace zh {

class BqCompressedRaster {
 public:
  /// Encode `raster` tile by tile (tiles encoded in parallel on the
  /// global pool).
  static BqCompressedRaster encode(const DemRaster& raster,
                                   std::int64_t tile_size);

  /// Assemble from already-encoded tiles (deserialization path). Tile
  /// dims must match the tiling's windows; throws IoError otherwise.
  static BqCompressedRaster from_tiles(const TilingScheme& tiling,
                                       const GeoTransform& transform,
                                       std::vector<BqEncodedTile> tiles);

  [[nodiscard]] const TilingScheme& tiling() const { return tiling_; }
  [[nodiscard]] const GeoTransform& transform() const { return transform_; }

  [[nodiscard]] const BqEncodedTile& tile(TileId id) const {
    ZH_REQUIRE(id < tiles_.size(), "tile id out of range");
    return tiles_[id];
  }

  /// Decode one tile into `out`, sized tile_window(id).cell_count(),
  /// row-major within the tile window.
  void decode_tile(TileId id, std::span<CellValue> out) const {
    bq_decode(tile(id), out);
  }

  /// Decode the full raster (tiles decoded in parallel).
  [[nodiscard]] DemRaster decode_all() const;

  [[nodiscard]] std::size_t compressed_bytes() const;
  [[nodiscard]] std::size_t raw_bytes() const;
  /// compressed / raw, the figure the paper reports as ~18%.
  [[nodiscard]] double compression_ratio() const {
    const std::size_t raw = raw_bytes();
    return raw == 0 ? 0.0
                    : static_cast<double>(compressed_bytes()) /
                          static_cast<double>(raw);
  }

 private:
  BqCompressedRaster(TilingScheme tiling, GeoTransform transform)
      : tiling_(tiling), transform_(transform) {}

  TilingScheme tiling_{0, 0, 1};
  GeoTransform transform_;
  std::vector<BqEncodedTile> tiles_;
};

}  // namespace zh
