#include "bqtree/compressed_raster.hpp"

#include "device/thread_pool.hpp"
#include "obs/obs.hpp"

namespace zh {

BqCompressedRaster BqCompressedRaster::encode(const DemRaster& raster,
                                              std::int64_t tile_size) {
  ZH_TRACE_SPAN("bqtree.encode", "pipeline");
  BqCompressedRaster out(
      TilingScheme(raster.rows(), raster.cols(), tile_size),
      raster.transform());
  const std::size_t n = out.tiling_.tile_count();
  out.tiles_.resize(n);
  ThreadPool::global().parallel_for(n, [&](std::size_t b, std::size_t e) {
    for (std::size_t t = b; t < e; ++t) {
      const TileId id = static_cast<TileId>(t);
      const CellWindow w = out.tiling_.tile_window(id);
      // Gather the tile's cells into a contiguous buffer, then encode.
      std::vector<CellValue> cells(
          static_cast<std::size_t>(w.cell_count()));
      for (std::int64_t r = 0; r < w.rows; ++r) {
        const auto src = raster.row(w.row0 + r).subspan(
            static_cast<std::size_t>(w.col0),
            static_cast<std::size_t>(w.cols));
        std::copy(src.begin(), src.end(),
                  cells.begin() + static_cast<std::size_t>(r * w.cols));
      }
      out.tiles_[t] = bq_encode(cells, static_cast<std::uint32_t>(w.rows),
                                static_cast<std::uint32_t>(w.cols));
    }
  });
  return out;
}

BqCompressedRaster BqCompressedRaster::from_tiles(
    const TilingScheme& tiling, const GeoTransform& transform,
    std::vector<BqEncodedTile> tiles) {
  ZH_REQUIRE_IO(tiles.size() == tiling.tile_count(),
                "tile count does not match tiling: ", tiles.size(), " vs ",
                tiling.tile_count());
  for (TileId id = 0; id < tiles.size(); ++id) {
    const CellWindow w = tiling.tile_window(id);
    ZH_REQUIRE_IO(tiles[id].rows == static_cast<std::uint32_t>(w.rows) &&
                      tiles[id].cols == static_cast<std::uint32_t>(w.cols),
                  "tile ", id, " dims do not match the tiling window");
  }
  BqCompressedRaster out(tiling, transform);
  out.tiles_ = std::move(tiles);
  return out;
}

DemRaster BqCompressedRaster::decode_all() const {
  ZH_TRACE_SPAN("step0.decode_all", "pipeline");
  ZH_COUNTER_ADD("bqtree.bytes_decoded", compressed_bytes());
  ZH_COUNTER_ADD("bqtree.tiles_decoded", tiling_.tile_count());
  DemRaster raster(tiling_.raster_rows(), tiling_.raster_cols(), transform_);
  const std::size_t n = tiling_.tile_count();
  ThreadPool::global().parallel_for(n, [&](std::size_t b, std::size_t e) {
    std::vector<CellValue> cells;
    for (std::size_t t = b; t < e; ++t) {
      const TileId id = static_cast<TileId>(t);
      const CellWindow w = tiling_.tile_window(id);
      cells.resize(static_cast<std::size_t>(w.cell_count()));
      decode_tile(id, cells);
      for (std::int64_t r = 0; r < w.rows; ++r) {
        std::copy(cells.begin() + static_cast<std::size_t>(r * w.cols),
                  cells.begin() + static_cast<std::size_t>((r + 1) * w.cols),
                  &raster.at(w.row0 + r, w.col0));
      }
    }
  });
  return raster;
}

std::size_t BqCompressedRaster::compressed_bytes() const {
  std::size_t n = 0;
  for (const auto& t : tiles_) n += t.compressed_bytes();
  return n;
}

std::size_t BqCompressedRaster::raw_bytes() const {
  std::size_t n = 0;
  for (const auto& t : tiles_) n += t.raw_bytes();
  return n;
}

}  // namespace zh
