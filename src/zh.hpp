// Umbrella header: the zonalhist public API.
//
// Typical usage (see examples/quickstart.cpp):
//
//   zh::Device device;                       // virtual GPU
//   zh::ZonalPipeline pipe(device, {.tile_size = 360, .bins = 5000});
//   zh::ZonalResult r = pipe.run(raster, counties);
//   auto stats = zh::stats_from_histogram(r.per_polygon.of(0));
#pragma once

#include "bqtree/bqtree.hpp"               // IWYU pragma: export
#include "bqtree/compressed_raster.hpp"    // IWYU pragma: export
#include "cluster/comm.hpp"                // IWYU pragma: export
#include "cluster/fault.hpp"               // IWYU pragma: export
#include "cluster/partition.hpp"           // IWYU pragma: export
#include "common/crc32.hpp"                // IWYU pragma: export
#include "common/error.hpp"                // IWYU pragma: export
#include "common/timer.hpp"                // IWYU pragma: export
#include "common/types.hpp"                // IWYU pragma: export
#include "core/baseline.hpp"               // IWYU pragma: export
#include "core/checkpoint.hpp"             // IWYU pragma: export
#include "core/cluster_driver.hpp"         // IWYU pragma: export
#include "core/histogram.hpp"              // IWYU pragma: export
#include "core/hybrid.hpp"                 // IWYU pragma: export
#include "core/lazy_pipeline.hpp"          // IWYU pragma: export
#include "core/load_balance.hpp"           // IWYU pragma: export
#include "core/multiband.hpp"              // IWYU pragma: export
#include "core/perf_model.hpp"             // IWYU pragma: export
#include "core/pipeline.hpp"               // IWYU pragma: export
#include "core/point_zonal.hpp"            // IWYU pragma: export
#include "core/query_engine.hpp"           // IWYU pragma: export
#include "core/rasterize.hpp"              // IWYU pragma: export
#include "core/tile_cache.hpp"             // IWYU pragma: export
#include "core/zonal_stats_op.hpp"         // IWYU pragma: export
#include "core/zone_cluster.hpp"           // IWYU pragma: export
#include "data/conus.hpp"                  // IWYU pragma: export
#include "data/county_synth.hpp"           // IWYU pragma: export
#include "data/dem_synth.hpp"              // IWYU pragma: export
#include "data/points_synth.hpp"           // IWYU pragma: export
#include "device/device.hpp"               // IWYU pragma: export
#include "geom/classify.hpp"               // IWYU pragma: export
#include "geom/pip.hpp"                    // IWYU pragma: export
#include "geom/points.hpp"                 // IWYU pragma: export
#include "geom/polygon.hpp"                // IWYU pragma: export
#include "geom/simplify.hpp"               // IWYU pragma: export
#include "geom/soa.hpp"                    // IWYU pragma: export
#include "geom/validate.hpp"               // IWYU pragma: export
#include "geom/wkt.hpp"                    // IWYU pragma: export
#include "grid/geotransform.hpp"           // IWYU pragma: export
#include "grid/morton.hpp"                 // IWYU pragma: export
#include "grid/pyramid.hpp"                // IWYU pragma: export
#include "grid/raster.hpp"                 // IWYU pragma: export
#include "grid/terrain.hpp"                // IWYU pragma: export
#include "grid/tiling.hpp"                 // IWYU pragma: export
#include "io/ascii_grid.hpp"               // IWYU pragma: export
#include "io/bq_file.hpp"                  // IWYU pragma: export
#include "io/catalog.hpp"                  // IWYU pragma: export
#include "io/geojson.hpp"                  // IWYU pragma: export
#include "io/histogram_io.hpp"             // IWYU pragma: export
#include "io/journal.hpp"                  // IWYU pragma: export
#include "io/render.hpp"                   // IWYU pragma: export
#include "io/vector_io.hpp"                // IWYU pragma: export
#include "io/zgrid.hpp"                    // IWYU pragma: export
#include "obs/obs.hpp"                     // IWYU pragma: export
#include "primitives/primitives.hpp"       // IWYU pragma: export
#include "quadtree/qt_step1.hpp"           // IWYU pragma: export
#include "quadtree/region_quadtree.hpp"    // IWYU pragma: export
