// Quadtree-accelerated Step 1.
//
// Per-tile histograms read directly off a region quadtree: each tile's
// histogram is the sum of (leaf value, clipped leaf area) pairs over the
// leaves overlapping the tile -- O(overlapping leaves) instead of
// O(cells). For low-entropy rasters (land-cover classes, quantized
// thematic layers) the leaf count is orders of magnitude below the cell
// count; for white noise it degenerates to per-cell work. Results are
// identical to the dense Step-1 kernel (tested).
#pragma once

#include "core/histogram.hpp"
#include "device/device.hpp"
#include "grid/tiling.hpp"
#include "quadtree/region_quadtree.hpp"

namespace zh {

/// Per-tile histograms of `tiling` over the quadtree's raster (one
/// device block per tile).
[[nodiscard]] HistogramSet tile_histograms_from_quadtree(
    Device& device, const RegionQuadtree& tree, const TilingScheme& tiling,
    BinIndex bins);

}  // namespace zh
