// Region quadtree over value rasters.
//
// The authors' companion study (paper ref [11]: "High-Performance
// Quadtree Constructions on Large-Scale Geospatial Rasters Using GPGPU
// Parallel Primitives", IJGIS 2013) builds region quadtrees bottom-up
// with data-parallel per-level passes; the BQ-Tree of this repo is its
// bitplane sibling. This module implements the value-domain variant:
// quadrants whose cells all share one value collapse into single leaves.
//
// Construction is the GPGPU-style bottom-up sweep: level l is computed
// from level l+1 by a parallel map over quadrants (4-child uniformity
// merge), then the final node array is emitted top-down. Rasters pad to
// a power-of-two square; padding cells are "outside" wildcards that
// never block a merge, so ragged edges still collapse.
//
// Payoff for zonal histogramming: a histogram over any window can be
// read off the tree in O(leaves overlapping the window) instead of
// O(cells) -- a large win for low-entropy rasters (land-cover classes,
// quantized thematic data), which is exactly the "thematic resolution"
// raster family the paper's introduction targets.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"
#include "grid/raster.hpp"

namespace zh {

class RegionQuadtree {
 public:
  /// Build from a raster (parallel bottom-up level sweep).
  static RegionQuadtree build(const Raster<CellValue>& raster);

  [[nodiscard]] std::int64_t rows() const { return rows_; }
  [[nodiscard]] std::int64_t cols() const { return cols_; }
  /// Padded edge length (power of two).
  [[nodiscard]] std::int64_t extent() const { return extent_; }

  /// Total nodes in the tree (1 for a constant raster).
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  /// Leaves carrying data (excludes all-outside padding leaves).
  [[nodiscard]] std::size_t leaf_count() const { return leaf_count_; }
  /// Tree height: 0 for a single-node tree.
  [[nodiscard]] int height() const { return height_; }

  /// Value of cell (row, col), resolved through the tree.
  [[nodiscard]] CellValue value_at(std::int64_t row,
                                   std::int64_t col) const;

  /// If every cell of `w` holds one value, that value; else nullopt.
  /// The window must lie inside the raster.
  [[nodiscard]] std::optional<CellValue> uniform_value(
      const CellWindow& w) const;

  /// Add the histogram of window `w` into `hist` (values >= hist.size()
  /// clamp to the last bin), visiting O(overlapping leaves) nodes.
  void add_window_histogram(const CellWindow& w,
                            std::span<BinCount> hist) const;

  /// Reconstruct the full raster (for round-trip verification).
  [[nodiscard]] Raster<CellValue> to_raster() const;

 private:
  struct Node {
    CellValue value = 0;       ///< leaf value (meaningless for internal)
    std::uint8_t kind = 0;     ///< 0 internal, 1 uniform leaf, 2 outside
    std::uint32_t child = 0;   ///< index of first of 4 children
  };
  static constexpr std::uint8_t kInternal = 0;
  static constexpr std::uint8_t kLeaf = 1;
  static constexpr std::uint8_t kOutside = 2;

  template <typename Visit>
  void visit_window(std::uint32_t node, std::int64_t r0, std::int64_t c0,
                    std::int64_t edge, const CellWindow& w,
                    Visit&& visit) const;

  std::int64_t rows_ = 0;
  std::int64_t cols_ = 0;
  std::int64_t extent_ = 0;
  int height_ = 0;
  std::size_t leaf_count_ = 0;
  std::vector<Node> nodes_;  // node 0 is the root
};

}  // namespace zh
