#include "quadtree/qt_step1.hpp"

#include "obs/obs.hpp"

namespace zh {

HistogramSet tile_histograms_from_quadtree(Device& device,
                                           const RegionQuadtree& tree,
                                           const TilingScheme& tiling,
                                           BinIndex bins) {
  ZH_REQUIRE(tiling.raster_rows() == tree.rows() &&
                 tiling.raster_cols() == tree.cols(),
             "tiling scheme does not match quadtree dims");
  HistogramSet hist(tiling.tile_count(), bins);
  if (tiling.tile_count() == 0) return hist;
  ZH_TRACE_SPAN("quadtree.step1", "pipeline");
  ZH_COUNTER_ADD("quadtree.step1_tiles", tiling.tile_count());
  BinCount* out = hist.flat().data();

  device.launch_named(
      "qt_hist_kernel", static_cast<std::uint32_t>(tiling.tile_count()),
      [&](const BlockContext& ctx) {
                  const TileId tile = ctx.block_id();
                  const CellWindow w = tiling.tile_window(tile);
                  tree.add_window_histogram(
                      w, {out + static_cast<std::size_t>(tile) * bins,
                          bins});
                });
  return hist;
}

}  // namespace zh
