#include "quadtree/region_quadtree.hpp"

#include <algorithm>
#include <bit>

#include "core/histogram.hpp"
#include "device/thread_pool.hpp"

namespace zh {

namespace {

/// Per-level cell state during the bottom-up sweep.
struct LevelCell {
  CellValue value = 0;
  std::uint8_t kind = 0;  // matches RegionQuadtree::{kInternal,...}
};

constexpr std::uint8_t kInternal = 0;
constexpr std::uint8_t kLeaf = 1;
constexpr std::uint8_t kOutside = 2;

/// Merge four child states into a parent state. Outside children are
/// wildcards: they never block a merge; a parent is uniform if all
/// non-outside children agree on one value.
LevelCell merge4(const LevelCell& a, const LevelCell& b,
                 const LevelCell& c, const LevelCell& d) {
  const LevelCell* kids[4] = {&a, &b, &c, &d};
  bool any_mixed = false;
  bool have_value = false;
  bool conflict = false;
  CellValue value = 0;
  for (const LevelCell* k : kids) {
    if (k->kind == kInternal) {
      any_mixed = true;
    } else if (k->kind == kLeaf) {
      if (!have_value) {
        have_value = true;
        value = k->value;
      } else if (k->value != value) {
        conflict = true;
      }
    }
  }
  if (any_mixed || conflict) return {0, kInternal};
  if (!have_value) return {0, kOutside};
  return {value, kLeaf};
}

}  // namespace

RegionQuadtree RegionQuadtree::build(const Raster<CellValue>& raster) {
  RegionQuadtree tree;
  tree.rows_ = raster.rows();
  tree.cols_ = raster.cols();
  const std::int64_t longest = std::max<std::int64_t>(
      1, std::max(raster.rows(), raster.cols()));
  tree.extent_ = static_cast<std::int64_t>(
      std::bit_ceil(static_cast<std::uint64_t>(longest)));

  // Bottom-up level sweep. levels[0] = finest (cell) level at edge
  // `extent_`; levels[k] has edge extent_ >> k; the last level is 1x1.
  std::vector<std::vector<LevelCell>> levels;
  {
    const std::int64_t s = tree.extent_;
    std::vector<LevelCell> base(static_cast<std::size_t>(s) * s);
    ThreadPool::global().parallel_for(
        static_cast<std::size_t>(s), [&](std::size_t rb, std::size_t re) {
          for (std::size_t r = rb; r < re; ++r) {
            for (std::int64_t c = 0; c < s; ++c) {
              LevelCell& cell = base[r * static_cast<std::size_t>(s) +
                                     static_cast<std::size_t>(c)];
              if (static_cast<std::int64_t>(r) < raster.rows() &&
                  c < raster.cols()) {
                cell = {raster.at(static_cast<std::int64_t>(r), c), kLeaf};
              } else {
                cell = {0, kOutside};
              }
            }
          }
        });
    levels.push_back(std::move(base));
  }
  while ((tree.extent_ >> (levels.size() - 1)) > 1) {
    const std::vector<LevelCell>& prev = levels.back();
    const std::int64_t ps = tree.extent_ >> (levels.size() - 1);
    const std::int64_t s = ps / 2;
    std::vector<LevelCell> next(static_cast<std::size_t>(s) * s);
    ThreadPool::global().parallel_for(
        static_cast<std::size_t>(s), [&](std::size_t rb, std::size_t re) {
          for (std::size_t r = rb; r < re; ++r) {
            for (std::int64_t c = 0; c < s; ++c) {
              const std::size_t pr = 2 * r;
              const std::size_t pc = static_cast<std::size_t>(2 * c);
              const auto at = [&](std::size_t rr, std::size_t cc)
                  -> const LevelCell& {
                return prev[rr * static_cast<std::size_t>(ps) + cc];
              };
              next[r * static_cast<std::size_t>(s) +
                   static_cast<std::size_t>(c)] =
                  merge4(at(pr, pc), at(pr, pc + 1), at(pr + 1, pc),
                         at(pr + 1, pc + 1));
            }
          }
        });
    levels.push_back(std::move(next));
  }

  // Emit the node array top-down (root = coarsest level's single cell).
  // Iterative worklist keeps this O(nodes) without recursion depth
  // concerns.
  struct Pending {
    std::size_t level;   // index into `levels` (0 = finest)
    std::size_t r, c;    // cell within that level
    std::uint32_t node;  // where to write it
  };
  tree.nodes_.clear();
  tree.nodes_.push_back(Node{});
  std::vector<Pending> work;
  work.push_back({levels.size() - 1, 0, 0, 0});
  int max_depth = 0;
  while (!work.empty()) {
    const Pending p = work.back();
    work.pop_back();
    const std::size_t edge_cells =
        static_cast<std::size_t>(tree.extent_ >> p.level);
    const LevelCell& cell =
        levels[p.level][p.r * edge_cells + p.c];
    Node& node = tree.nodes_[p.node];
    node.value = cell.value;
    node.kind = cell.kind;
    max_depth = std::max(
        max_depth, static_cast<int>(levels.size() - 1 - p.level));
    if (cell.kind == kLeaf) ++tree.leaf_count_;
    if (cell.kind != kInternal) continue;
    ZH_REQUIRE(p.level > 0, "finest level cannot be internal");
    const auto child = static_cast<std::uint32_t>(tree.nodes_.size());
    tree.nodes_[p.node].child = child;
    tree.nodes_.resize(tree.nodes_.size() + 4);
    const std::size_t cl = p.level - 1;
    // Child order: NW, NE, SW, SE.
    work.push_back({cl, 2 * p.r, 2 * p.c, child});
    work.push_back({cl, 2 * p.r, 2 * p.c + 1, child + 1});
    work.push_back({cl, 2 * p.r + 1, 2 * p.c, child + 2});
    work.push_back({cl, 2 * p.r + 1, 2 * p.c + 1, child + 3});
  }
  tree.height_ = max_depth;
  return tree;
}

CellValue RegionQuadtree::value_at(std::int64_t row,
                                   std::int64_t col) const {
  ZH_REQUIRE(row >= 0 && row < rows_ && col >= 0 && col < cols_,
             "cell out of range");
  std::uint32_t node = 0;
  std::int64_t edge = extent_;
  std::int64_t r0 = 0;
  std::int64_t c0 = 0;
  while (nodes_[node].kind == kInternal) {
    edge /= 2;
    const bool south = row >= r0 + edge;
    const bool east = col >= c0 + edge;
    node = nodes_[node].child +
           (south ? 2u : 0u) + (east ? 1u : 0u);
    if (south) r0 += edge;
    if (east) c0 += edge;
  }
  ZH_REQUIRE(nodes_[node].kind == kLeaf,
             "in-range cell resolved to padding");
  return nodes_[node].value;
}

template <typename Visit>
void RegionQuadtree::visit_window(std::uint32_t node, std::int64_t r0,
                                  std::int64_t c0, std::int64_t edge,
                                  const CellWindow& w,
                                  Visit&& visit) const {
  // Clip the node's quadrant against the window and the real raster.
  const std::int64_t rr0 = std::max({r0, w.row0, std::int64_t{0}});
  const std::int64_t cc0 = std::max({c0, w.col0, std::int64_t{0}});
  const std::int64_t rr1 = std::min({r0 + edge, w.row0 + w.rows, rows_});
  const std::int64_t cc1 = std::min({c0 + edge, w.col0 + w.cols, cols_});
  if (rr0 >= rr1 || cc0 >= cc1) return;

  const Node& n = nodes_[node];
  if (n.kind == kOutside) return;
  if (n.kind == kLeaf) {
    visit(n.value, (rr1 - rr0) * (cc1 - cc0));
    return;
  }
  const std::int64_t half = edge / 2;
  visit_window(n.child + 0, r0, c0, half, w, visit);
  visit_window(n.child + 1, r0, c0 + half, half, w, visit);
  visit_window(n.child + 2, r0 + half, c0, half, w, visit);
  visit_window(n.child + 3, r0 + half, c0 + half, half, w, visit);
}

std::optional<CellValue> RegionQuadtree::uniform_value(
    const CellWindow& w) const {
  ZH_REQUIRE(w.row0 >= 0 && w.col0 >= 0 && w.row0 + w.rows <= rows_ &&
                 w.col0 + w.cols <= cols_ && w.rows > 0 && w.cols > 0,
             "window out of raster bounds");
  bool have = false;
  bool conflict = false;
  CellValue value = 0;
  visit_window(0, 0, 0, extent_, w,
               [&](CellValue v, std::int64_t) {
                 if (!have) {
                   have = true;
                   value = v;
                 } else if (v != value) {
                   conflict = true;
                 }
               });
  if (!have || conflict) return std::nullopt;
  return value;
}

void RegionQuadtree::add_window_histogram(const CellWindow& w,
                                          std::span<BinCount> hist) const {
  ZH_REQUIRE(!hist.empty(), "histogram needs at least one bin");
  const BinIndex bins = static_cast<BinIndex>(hist.size());
  std::uint64_t clamped = 0;
  visit_window(0, 0, 0, extent_, w, [&](CellValue v, std::int64_t area) {
    // A uniform leaf folds `area` cells at once, so the clamp tally is
    // cell-weighted to stay comparable with the per-cell paths.
    const BinIndex b =
        bin_index(v, bins, clamped, static_cast<std::uint64_t>(area));
    hist[b] += static_cast<BinCount>(area);
  });
  note_values_clamped(clamped);
}

Raster<CellValue> RegionQuadtree::to_raster() const {
  Raster<CellValue> out(rows_, cols_);
  // Walk with explicit rectangles (visit_window only exposes areas).
  std::vector<std::tuple<std::uint32_t, std::int64_t, std::int64_t,
                         std::int64_t>>
      stack;
  stack.emplace_back(0, 0, 0, extent_);
  while (!stack.empty()) {
    auto [node, r0, c0, edge] = stack.back();
    stack.pop_back();
    const Node& n = nodes_[node];
    if (n.kind == kOutside) continue;
    if (n.kind == kLeaf) {
      const std::int64_t r1 = std::min(r0 + edge, rows_);
      const std::int64_t c1 = std::min(c0 + edge, cols_);
      for (std::int64_t r = r0; r < r1; ++r) {
        for (std::int64_t c = c0; c < c1; ++c) out.at(r, c) = n.value;
      }
      continue;
    }
    const std::int64_t half = edge / 2;
    stack.emplace_back(n.child + 0, r0, c0, half);
    stack.emplace_back(n.child + 1, r0, c0 + half, half);
    stack.emplace_back(n.child + 2, r0 + half, c0, half);
    stack.emplace_back(n.child + 3, r0 + half, c0 + half, half);
  }
  return out;
}

}  // namespace zh
