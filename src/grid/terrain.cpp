#include "grid/terrain.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "device/thread_pool.hpp"

namespace zh {

namespace {

/// Horn's 3x3 gradient at (r, c); border cells clamp to the edge.
struct Gradient {
  double dzdx;
  double dzdy;
};

Gradient horn_gradient(const DemRaster& dem, std::int64_t r,
                       std::int64_t c, double cell_distance) {
  auto z = [&](std::int64_t rr, std::int64_t cc) {
    rr = std::clamp<std::int64_t>(rr, 0, dem.rows() - 1);
    cc = std::clamp<std::int64_t>(cc, 0, dem.cols() - 1);
    return static_cast<double>(dem.at(rr, cc));
  };
  const double a = z(r - 1, c - 1);
  const double b = z(r - 1, c);
  const double cc_ = z(r - 1, c + 1);
  const double d = z(r, c - 1);
  const double f = z(r, c + 1);
  const double g = z(r + 1, c - 1);
  const double h = z(r + 1, c);
  const double i = z(r + 1, c + 1);
  return {((cc_ + 2 * f + i) - (a + 2 * d + g)) / (8.0 * cell_distance),
          ((g + 2 * h + i) - (a + 2 * b + cc_)) / (8.0 * cell_distance)};
}

}  // namespace

Raster<CellValue> slope_degrees(const DemRaster& dem,
                                const TerrainParams& params) {
  ZH_REQUIRE(params.cell_distance > 0, "cell distance must be positive");
  Raster<CellValue> out(dem.rows(), dem.cols(), dem.transform());
  ThreadPool::global().parallel_for(
      static_cast<std::size_t>(dem.rows()),
      [&](std::size_t rb, std::size_t re) {
        for (std::size_t r = rb; r < re; ++r) {
          for (std::int64_t c = 0; c < dem.cols(); ++c) {
            const Gradient g = horn_gradient(
                dem, static_cast<std::int64_t>(r), c,
                params.cell_distance);
            const double rise =
                std::sqrt(g.dzdx * g.dzdx + g.dzdy * g.dzdy);
            const double deg =
                std::atan(rise) * 180.0 / std::numbers::pi;
            out.at(static_cast<std::int64_t>(r), c) =
                static_cast<CellValue>(std::lround(deg));
          }
        }
      });
  return out;
}

Raster<CellValue> aspect_sectors(const DemRaster& dem,
                                 const TerrainParams& params) {
  ZH_REQUIRE(params.cell_distance > 0, "cell distance must be positive");
  Raster<CellValue> out(dem.rows(), dem.cols(), dem.transform());
  ThreadPool::global().parallel_for(
      static_cast<std::size_t>(dem.rows()),
      [&](std::size_t rb, std::size_t re) {
        for (std::size_t r = rb; r < re; ++r) {
          for (std::int64_t c = 0; c < dem.cols(); ++c) {
            const Gradient g = horn_gradient(
                dem, static_cast<std::int64_t>(r), c,
                params.cell_distance);
            if (g.dzdx == 0.0 && g.dzdy == 0.0) {
              out.at(static_cast<std::int64_t>(r), c) = 8;  // flat
              continue;
            }
            // Downslope azimuth, degrees clockwise from north. In
            // (east, north) coordinates the gradient is (dzdx, -dzdy)
            // (dzdy is per *southward* step), so downslope is
            // (-dzdx, dzdy).
            double az = std::atan2(-g.dzdx, g.dzdy) * 180.0 /
                        std::numbers::pi;
            if (az < 0) az += 360.0;
            out.at(static_cast<std::int64_t>(r), c) =
                static_cast<CellValue>(
                    static_cast<int>((az + 22.5) / 45.0) % 8);
          }
        }
      });
  return out;
}

}  // namespace zh
