// Morton (Z-order) curve utilities.
//
// Sec. III.A of the paper leaves "pre-sorting tile cells using a better
// ordering (e.g., Morton Code) to preserve spatial proximity and achieve
// better memory accesses" as future work; this module implements it.
// Cells within a tile can be visited in Z-order instead of row-major,
// which keeps consecutive accesses within small 2-D neighbourhoods --
// the locality BQ-Tree quadrants and per-tile histograms both like.
#pragma once

#include <cstdint>

#include "common/contracts.hpp"
#include "common/error.hpp"

namespace zh {

/// Interleave the low 16 bits of x into even bit positions.
[[nodiscard]] constexpr std::uint32_t morton_spread16(std::uint32_t x) {
  x &= 0xFFFFu;
  x = (x | (x << 8)) & 0x00FF00FFu;
  x = (x | (x << 4)) & 0x0F0F0F0Fu;
  x = (x | (x << 2)) & 0x33333333u;
  x = (x | (x << 1)) & 0x55555555u;
  return x;
}

/// Compact even bit positions back into the low 16 bits.
[[nodiscard]] constexpr std::uint32_t morton_compact16(std::uint32_t x) {
  x &= 0x55555555u;
  x = (x | (x >> 1)) & 0x33333333u;
  x = (x | (x >> 2)) & 0x0F0F0F0Fu;
  x = (x | (x >> 4)) & 0x00FF00FFu;
  x = (x | (x >> 8)) & 0x0000FFFFu;
  return x;
}

/// Morton code of (row, col), each < 2^16 (tiles are far smaller).
/// Coordinates with high bits set would alias a smaller cell after the
/// 16-bit spread, so the precondition is contract-checked rather than
/// silently masked in Debug/sanitizer builds.
[[nodiscard]] constexpr std::uint32_t morton_encode(std::uint32_t row,
                                                    std::uint32_t col) {
  ZH_ASSERT(row <= 0xFFFFu && col <= 0xFFFFu,
            "morton_encode: coordinate exceeds 16 bits (row=", row,
            ", col=", col, ")");
  return (morton_spread16(row) << 1u) | morton_spread16(col);
}

/// Inverse of morton_encode.
struct MortonCell {
  std::uint32_t row;
  std::uint32_t col;
};
[[nodiscard]] constexpr MortonCell morton_decode(std::uint32_t code) {
  return {morton_compact16(code >> 1), morton_compact16(code)};
}

/// Visitation order of the cells of a rows x cols window. kRowMajor is
/// the paper's published kernel order; kMorton is its deferred
/// improvement.
enum class CellOrder : std::uint8_t { kRowMajor = 0, kMorton = 1 };

/// Invoke fn(row, col) for every cell of the window in the given order.
/// Morton order enumerates Z-codes over the bounding power-of-two square
/// and skips codes falling outside the window (standard BIGMIN-free
/// traversal: fine for tile-sized windows).
template <typename Fn>
void for_each_cell(std::uint32_t rows, std::uint32_t cols, CellOrder order,
                   Fn&& fn) {
  if (rows == 0 || cols == 0) return;
  if (order == CellOrder::kRowMajor) {
    for (std::uint32_t r = 0; r < rows; ++r) {
      for (std::uint32_t c = 0; c < cols; ++c) fn(r, c);
    }
    return;
  }
  ZH_REQUIRE(rows <= 0x10000 && cols <= 0x10000,
             "window too large for 32-bit Morton codes");
  // The loop bound is widened to 64 bits before the comparison: for a
  // full 65536 x 65536 window max_code is 0xFFFFFFFF and `code <= max_code`
  // over a 32-bit counter would never terminate.
  const std::uint64_t max_code =
      static_cast<std::uint64_t>(morton_encode(rows - 1, cols - 1));
  for (std::uint64_t code = 0; code <= max_code; ++code) {
    const MortonCell cell =
        morton_decode(static_cast<std::uint32_t>(code));
    if (cell.row < rows && cell.col < cols) fn(cell.row, cell.col);
  }
}

}  // namespace zh
