#include "grid/tiling.hpp"

#include <algorithm>

namespace zh {

std::vector<TileId> TilingScheme::tiles_covering(
    const GeoBox& b, const GeoTransform& transform) const {
  std::vector<TileId> out;
  if (tiles_x_ == 0 || tiles_y_ == 0) return out;

  // Convert the box to cell indices, clamp to the raster, then to tile
  // indices. Floor semantics are conservative: a box max edge exactly on
  // a cell boundary pulls in the next cell, and an MBB extending past
  // the raster clamps to the edge tiles -- over-inclusion only, which
  // classify_box later demotes to kOutside, never omission.
  std::int64_t c0 = transform.x_to_col(b.min_x);
  std::int64_t c1 = transform.x_to_col(b.max_x);
  std::int64_t r0 = transform.y_to_row(b.max_y);  // north edge -> min row
  std::int64_t r1 = transform.y_to_row(b.min_y);

  // Boxes entirely off the raster must not clamp onto edge tiles.
  if (c1 < 0 || c0 >= cols_ || r1 < 0 || r0 >= rows_) return out;

  c0 = std::clamp<std::int64_t>(c0, 0, cols_ - 1);
  c1 = std::clamp<std::int64_t>(c1, 0, cols_ - 1);
  r0 = std::clamp<std::int64_t>(r0, 0, rows_ - 1);
  r1 = std::clamp<std::int64_t>(r1, 0, rows_ - 1);
  if (c1 < c0 || r1 < r0) return out;

  const std::int64_t tx0 = c0 / tile_size_;
  const std::int64_t tx1 = c1 / tile_size_;
  const std::int64_t ty0 = r0 / tile_size_;
  const std::int64_t ty1 = r1 / tile_size_;
  out.reserve(static_cast<std::size_t>((tx1 - tx0 + 1) * (ty1 - ty0 + 1)));
  for (std::int64_t ty = ty0; ty <= ty1; ++ty) {
    for (std::int64_t tx = tx0; tx <= tx1; ++tx) {
      out.push_back(tile_id(ty, tx));
    }
  }
  return out;
}

}  // namespace zh
