#include "grid/pyramid.hpp"

#include <algorithm>
#include <array>

#include "device/thread_pool.hpp"

namespace zh {

namespace {

DemRaster reduce_once(const DemRaster& src, Resample resample) {
  const std::int64_t rows = (src.rows() + 1) / 2;
  const std::int64_t cols = (src.cols() + 1) / 2;
  const GeoTransform& t = src.transform();
  DemRaster out(rows, cols,
                GeoTransform(t.origin_x(), t.origin_y(), t.cell_w() * 2,
                             t.cell_h() * 2));
  out.set_nodata(src.nodata());

  ThreadPool::global().parallel_for(
      static_cast<std::size_t>(rows), [&](std::size_t rb, std::size_t re) {
        for (std::size_t r = rb; r < re; ++r) {
          for (std::int64_t c = 0; c < cols; ++c) {
            const std::int64_t sr = static_cast<std::int64_t>(r) * 2;
            const std::int64_t sc = c * 2;
            if (resample == Resample::kNearest) {
              out.at(static_cast<std::int64_t>(r), c) = src.at(sr, sc);
              continue;
            }
            // Mode of the (up to) 2x2 block; ties pick the smallest
            // value so the result is deterministic.
            std::array<CellValue, 4> vals{};
            int n = 0;
            for (std::int64_t dr = 0; dr < 2; ++dr) {
              for (std::int64_t dc = 0; dc < 2; ++dc) {
                if (sr + dr < src.rows() && sc + dc < src.cols()) {
                  vals[static_cast<std::size_t>(n++)] =
                      src.at(sr + dr, sc + dc);
                }
              }
            }
            // Insertion sort: for <= 4 values it beats std::sort, whose
            // inlined introsort also trips GCC's -Warray-bounds here.
            for (int i = 1; i < n; ++i) {
              const CellValue v = vals[static_cast<std::size_t>(i)];
              int j = i;
              while (j > 0 && vals[static_cast<std::size_t>(j - 1)] > v) {
                vals[static_cast<std::size_t>(j)] =
                    vals[static_cast<std::size_t>(j - 1)];
                --j;
              }
              vals[static_cast<std::size_t>(j)] = v;
            }
            CellValue best = vals[0];
            int best_run = 1;
            int run = 1;
            for (int i = 1; i < n; ++i) {
              run = vals[i] == vals[i - 1] ? run + 1 : 1;
              if (run > best_run) {
                best_run = run;
                best = vals[static_cast<std::size_t>(i)];
              }
            }
            out.at(static_cast<std::int64_t>(r), c) = best;
          }
        }
      });
  return out;
}

}  // namespace

RasterPyramid RasterPyramid::build(const DemRaster& base, int levels,
                                   Resample resample) {
  ZH_REQUIRE(levels >= 1, "pyramid needs at least the base level");
  RasterPyramid pyramid;
  pyramid.levels_.push_back(base);
  while (static_cast<int>(pyramid.levels_.size()) < levels) {
    const DemRaster& top = pyramid.levels_.back();
    if (top.rows() <= 1 && top.cols() <= 1) break;
    pyramid.levels_.push_back(reduce_once(top, resample));
  }
  return pyramid;
}

const DemRaster& RasterPyramid::level_for_edge(
    std::int64_t max_edge) const {
  ZH_REQUIRE(max_edge >= 1, "max_edge must be positive");
  for (const DemRaster& r : levels_) {
    if (std::max(r.rows(), r.cols()) <= max_edge) return r;
  }
  return levels_.back();
}

std::int64_t RasterPyramid::total_cells() const {
  std::int64_t n = 0;
  for (const DemRaster& r : levels_) n += r.cell_count();
  return n;
}

}  // namespace zh
