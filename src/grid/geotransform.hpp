// Affine georeferencing of a raster: maps (row, col) cell indices to
// geographic coordinates, in the "north-up" form used by SRTM DEM tiles
// (row 0 at the northern edge, y decreasing with row index).
#pragma once

#include <cmath>
#include <cstdint>

#include "common/error.hpp"

namespace zh {

/// Geographic point (degrees or any planar CRS unit).
struct GeoPoint {
  double x = 0.0;
  double y = 0.0;

  bool operator==(const GeoPoint&) const = default;
};

/// Axis-aligned geographic box; min/max in both axes.
struct GeoBox {
  double min_x = 0.0;
  double min_y = 0.0;
  double max_x = 0.0;
  double max_y = 0.0;

  [[nodiscard]] double width() const { return max_x - min_x; }
  [[nodiscard]] double height() const { return max_y - min_y; }

  [[nodiscard]] bool contains(const GeoPoint& p) const {
    return p.x >= min_x && p.x <= max_x && p.y >= min_y && p.y <= max_y;
  }
  [[nodiscard]] bool contains(const GeoBox& b) const {
    return b.min_x >= min_x && b.max_x <= max_x && b.min_y >= min_y &&
           b.max_y <= max_y;
  }
  [[nodiscard]] bool intersects(const GeoBox& b) const {
    return !(b.min_x > max_x || b.max_x < min_x || b.min_y > max_y ||
             b.max_y < min_y);
  }
  /// Grow to cover `p`.
  void expand(const GeoPoint& p) {
    if (p.x < min_x) min_x = p.x;
    if (p.x > max_x) max_x = p.x;
    if (p.y < min_y) min_y = p.y;
    if (p.y > max_y) max_y = p.y;
  }
};

/// North-up affine transform: cell (row, col)'s top-left corner sits at
/// (origin_x + col*cell_w, origin_y - row*cell_h). For 30 m SRTM,
/// cell_w == cell_h == 1/3600 degree.
class GeoTransform {
 public:
  GeoTransform() = default;
  GeoTransform(double origin_x, double origin_y, double cell_w, double cell_h)
      : origin_x_(origin_x), origin_y_(origin_y), cell_w_(cell_w),
        cell_h_(cell_h) {
    ZH_REQUIRE(cell_w > 0 && cell_h > 0, "cell size must be positive");
  }

  [[nodiscard]] double origin_x() const { return origin_x_; }
  [[nodiscard]] double origin_y() const { return origin_y_; }
  [[nodiscard]] double cell_w() const { return cell_w_; }
  [[nodiscard]] double cell_h() const { return cell_h_; }

  /// Geographic position of the *center* of cell (row, col) -- the point
  /// Step 4 uses for cell-in-polygon tests (Sec. III.D).
  [[nodiscard]] GeoPoint cell_center(std::int64_t row,
                                     std::int64_t col) const {
    return {origin_x_ + (static_cast<double>(col) + 0.5) * cell_w_,
            origin_y_ - (static_cast<double>(row) + 0.5) * cell_h_};
  }

  /// Top-left corner of cell (row, col).
  [[nodiscard]] GeoPoint cell_corner(std::int64_t row,
                                     std::int64_t col) const {
    return {origin_x_ + static_cast<double>(col) * cell_w_,
            origin_y_ - static_cast<double>(row) * cell_h_};
  }

  /// Geographic bounding box of a (rows x cols) raster under this
  /// transform.
  [[nodiscard]] GeoBox extent(std::int64_t rows, std::int64_t cols) const {
    return {origin_x_, origin_y_ - static_cast<double>(rows) * cell_h_,
            origin_x_ + static_cast<double>(cols) * cell_w_, origin_y_};
  }

  /// Column index containing geographic x (floor semantics; may be out of
  /// the raster's range -- callers clamp).
  [[nodiscard]] std::int64_t x_to_col(double x) const {
    return static_cast<std::int64_t>(std::floor((x - origin_x_) / cell_w_));
  }
  /// Row index containing geographic y.
  [[nodiscard]] std::int64_t y_to_row(double y) const {
    return static_cast<std::int64_t>(std::floor((origin_y_ - y) / cell_h_));
  }

  /// Transform for a sub-window whose top-left cell is (row0, col0).
  [[nodiscard]] GeoTransform for_window(std::int64_t row0,
                                        std::int64_t col0) const {
    GeoPoint c = cell_corner(row0, col0);
    return GeoTransform(c.x, c.y, cell_w_, cell_h_);
  }

  bool operator==(const GeoTransform&) const = default;

 private:
  double origin_x_ = 0.0;
  double origin_y_ = 0.0;
  double cell_w_ = 1.0;
  double cell_h_ = 1.0;
};

}  // namespace zh
