// In-memory raster (2-D grid) with georeferencing and optional nodata.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"
#include "grid/geotransform.hpp"

namespace zh {

/// A rectangular cell window within a raster: rows [row0, row0+rows),
/// columns [col0, col0+cols).
struct CellWindow {
  std::int64_t row0 = 0;
  std::int64_t col0 = 0;
  std::int64_t rows = 0;
  std::int64_t cols = 0;

  [[nodiscard]] std::int64_t cell_count() const { return rows * cols; }
  bool operator==(const CellWindow&) const = default;
};

/// Row-major raster of `T` cells with an affine geotransform. SRTM-style
/// DEMs use T = CellValue (uint16 elevation meters).
template <typename T>
class Raster {
 public:
  Raster() = default;
  Raster(std::int64_t rows, std::int64_t cols,
         GeoTransform transform = GeoTransform(), T fill = T{})
      : rows_(rows), cols_(cols), transform_(transform),
        data_(static_cast<std::size_t>(rows * cols), fill) {
    ZH_REQUIRE(rows >= 0 && cols >= 0, "raster dims must be non-negative");
  }

  [[nodiscard]] std::int64_t rows() const { return rows_; }
  [[nodiscard]] std::int64_t cols() const { return cols_; }
  [[nodiscard]] std::int64_t cell_count() const { return rows_ * cols_; }
  [[nodiscard]] const GeoTransform& transform() const { return transform_; }
  void set_transform(const GeoTransform& t) { transform_ = t; }

  [[nodiscard]] std::optional<T> nodata() const { return nodata_; }
  void set_nodata(std::optional<T> v) { nodata_ = v; }

  [[nodiscard]] T& at(std::int64_t row, std::int64_t col) {
    return data_[index(row, col)];
  }
  [[nodiscard]] const T& at(std::int64_t row, std::int64_t col) const {
    return data_[index(row, col)];
  }

  /// Whole-raster storage, row-major.
  [[nodiscard]] std::span<T> cells() { return {data_.data(), data_.size()}; }
  [[nodiscard]] std::span<const T> cells() const {
    return {data_.data(), data_.size()};
  }

  /// One row as a contiguous span.
  [[nodiscard]] std::span<const T> row(std::int64_t r) const {
    return cells().subspan(static_cast<std::size_t>(r * cols_),
                           static_cast<std::size_t>(cols_));
  }

  /// Geographic extent of the full raster.
  [[nodiscard]] GeoBox extent() const {
    return transform_.extent(rows_, cols_);
  }

  /// Copy a window out into a standalone raster (keeps georeferencing).
  /// The window must lie inside the raster.
  [[nodiscard]] Raster<T> copy_window(const CellWindow& w) const {
    ZH_REQUIRE(w.row0 >= 0 && w.col0 >= 0 && w.row0 + w.rows <= rows_ &&
                   w.col0 + w.cols <= cols_,
               "window out of raster bounds");
    Raster<T> out(w.rows, w.cols, transform_.for_window(w.row0, w.col0));
    out.set_nodata(nodata_);
    for (std::int64_t r = 0; r < w.rows; ++r) {
      const T* src = &data_[index(w.row0 + r, w.col0)];
      std::copy(src, src + w.cols,
                out.cells().data() + static_cast<std::size_t>(r * w.cols));
    }
    return out;
  }

  bool operator==(const Raster&) const = default;

 private:
  [[nodiscard]] std::size_t index(std::int64_t row, std::int64_t col) const {
    ZH_REQUIRE(row >= 0 && row < rows_ && col >= 0 && col < cols_,
               "cell index out of range: (", row, ",", col, ") in ", rows_,
               "x", cols_);
    return static_cast<std::size_t>(row * cols_ + col);
  }

  std::int64_t rows_ = 0;
  std::int64_t cols_ = 0;
  GeoTransform transform_;
  std::vector<T> data_;
  std::optional<T> nodata_;
};

using DemRaster = Raster<CellValue>;

}  // namespace zh
