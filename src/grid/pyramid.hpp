// Multi-resolution raster pyramids (overviews).
//
// The paper's future-work goal of "near real-time interactive visual
// explorations" rests on the standard GIS mechanism for it: precomputed
// overview levels, each half the resolution of the previous. Two
// reducers are provided: nearest (cheap, any data) and mode (majority
// of the 2x2 block -- the right choice for categorical land-cover
// layers where averaging would invent classes).
#pragma once

#include <vector>

#include "common/error.hpp"
#include "grid/raster.hpp"

namespace zh {

enum class Resample : std::uint8_t {
  kNearest,  ///< top-left cell of each 2x2 block
  kMode,     ///< majority value of the block (ties -> smallest value)
};

class RasterPyramid {
 public:
  /// Build `levels` overviews above `base` (level 0 == base copy;
  /// level k has ceil(dim / 2^k) cells per axis). Levels are clamped so
  /// the coarsest level keeps at least one cell.
  static RasterPyramid build(const DemRaster& base, int levels,
                             Resample resample = Resample::kNearest);

  /// Number of levels including the base.
  [[nodiscard]] int levels() const {
    return static_cast<int>(levels_.size());
  }

  /// Level k raster (0 == full resolution).
  [[nodiscard]] const DemRaster& level(int k) const {
    ZH_REQUIRE(k >= 0 && k < levels(), "pyramid level out of range");
    return levels_[static_cast<std::size_t>(k)];
  }

  /// Coarsest level whose longest edge is <= max_edge (for quick-look
  /// rendering); falls back to the coarsest available.
  [[nodiscard]] const DemRaster& level_for_edge(
      std::int64_t max_edge) const;

  /// Total cells over all levels (the classic ~4/3 overhead).
  [[nodiscard]] std::int64_t total_cells() const;

 private:
  std::vector<DemRaster> levels_;
};

}  // namespace zh
