// Terrain derivatives from DEMs.
//
// Zonal histograms of *derived* layers (slope classes, aspect sectors)
// are the bread-and-butter use of zonal statistics in GIS; the paper's
// pipeline consumes any integer raster, so these operators turn a DEM
// into such layers. Slope/aspect use Horn's 3x3 method (the ArcGIS/GDAL
// convention); edges replicate the border cell.
#pragma once

#include <cstdint>

#include "common/types.hpp"
#include "grid/raster.hpp"

namespace zh {

struct TerrainParams {
  /// Ground distance of one cell, in the same unit as elevations
  /// (e.g. 30 for 30 m cells with elevations in meters).
  double cell_distance = 30.0;
};

/// Slope in integer degrees [0, 90] per cell (Horn's method).
[[nodiscard]] Raster<CellValue> slope_degrees(const DemRaster& dem,
                                              const TerrainParams& params);

/// Aspect in 8 compass sectors (0=N, 1=NE, ..., 7=NW); flat cells get
/// sector 8. Useful as a 9-class zonal layer.
[[nodiscard]] Raster<CellValue> aspect_sectors(const DemRaster& dem,
                                               const TerrainParams& params);

}  // namespace zh
