// Tiling scheme: decomposes a raster into square tiles which double as an
// implicit grid-file spatial index (Sec. III.B: "tiles in a raster can
// naturally serve as a grid-file for spatial indexing").
//
// The paper sets the tile size to 0.1 x 0.1 degree == 360 x 360 SRTM cells;
// here the tile edge in cells is a parameter. Edge tiles may be partial
// (the raster's dimensions need not divide the tile size).
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"
#include "grid/geotransform.hpp"
#include "grid/raster.hpp"

namespace zh {

/// Square tiling of a rows x cols raster with tile edge `tile_size` cells.
/// Tile ids are row-major over the tile grid.
class TilingScheme {
 public:
  TilingScheme(std::int64_t raster_rows, std::int64_t raster_cols,
               std::int64_t tile_size)
      : rows_(raster_rows), cols_(raster_cols), tile_size_(tile_size) {
    ZH_REQUIRE(tile_size > 0, "tile size must be positive");
    ZH_REQUIRE(raster_rows >= 0 && raster_cols >= 0,
               "raster dims must be non-negative");
    tiles_y_ = static_cast<std::int64_t>(
        div_up(static_cast<std::size_t>(rows_),
               static_cast<std::size_t>(tile_size_)));
    tiles_x_ = static_cast<std::int64_t>(
        div_up(static_cast<std::size_t>(cols_),
               static_cast<std::size_t>(tile_size_)));
  }

  [[nodiscard]] std::int64_t raster_rows() const { return rows_; }
  [[nodiscard]] std::int64_t raster_cols() const { return cols_; }
  [[nodiscard]] std::int64_t tile_size() const { return tile_size_; }
  [[nodiscard]] std::int64_t tiles_x() const { return tiles_x_; }
  [[nodiscard]] std::int64_t tiles_y() const { return tiles_y_; }
  [[nodiscard]] std::size_t tile_count() const {
    return static_cast<std::size_t>(tiles_x_ * tiles_y_);
  }

  /// Row-major tile id of tile-grid coordinates (ty, tx).
  [[nodiscard]] TileId tile_id(std::int64_t ty, std::int64_t tx) const {
    ZH_REQUIRE(ty >= 0 && ty < tiles_y_ && tx >= 0 && tx < tiles_x_,
               "tile coordinate out of range");
    return static_cast<TileId>(ty * tiles_x_ + tx);
  }

  [[nodiscard]] std::int64_t tile_row(TileId id) const {
    return static_cast<std::int64_t>(id) / tiles_x_;
  }
  [[nodiscard]] std::int64_t tile_col(TileId id) const {
    return static_cast<std::int64_t>(id) % tiles_x_;
  }

  /// Cell window covered by a tile (edge tiles clipped to the raster).
  [[nodiscard]] CellWindow tile_window(TileId id) const {
    ZH_REQUIRE(id < tile_count(), "tile id out of range");
    const std::int64_t ty = tile_row(id);
    const std::int64_t tx = tile_col(id);
    CellWindow w;
    w.row0 = ty * tile_size_;
    w.col0 = tx * tile_size_;
    w.rows = std::min(tile_size_, rows_ - w.row0);
    w.cols = std::min(tile_size_, cols_ - w.col0);
    return w;
  }

  /// Geographic box of a tile under `transform`.
  [[nodiscard]] GeoBox tile_box(TileId id,
                                const GeoTransform& transform) const {
    const CellWindow w = tile_window(id);
    const GeoPoint tl = transform.cell_corner(w.row0, w.col0);
    const GeoPoint br = transform.cell_corner(w.row0 + w.rows,
                                              w.col0 + w.cols);
    return GeoBox{tl.x, br.y, br.x, tl.y};
  }

  /// Tile ids whose boxes intersect the geographic box `b` (the MBB
  /// rasterization of Sec. III.B: decompose a polygon's MBB into tiles).
  [[nodiscard]] std::vector<TileId> tiles_covering(
      const GeoBox& b, const GeoTransform& transform) const;

  bool operator==(const TilingScheme&) const = default;

 private:
  std::int64_t rows_;
  std::int64_t cols_;
  std::int64_t tile_size_;
  std::int64_t tiles_x_ = 0;
  std::int64_t tiles_y_ = 0;
};

}  // namespace zh
