#include "device/device.hpp"

#include <thread>

namespace zh {

DeviceProfile DeviceProfile::quadro6000() {
  return DeviceProfile{
      .name = "Quadro 6000",
      .architecture = "Fermi",
      .cuda_cores = 448,
      .core_clock_ghz = 0.574,
      .mem_bandwidth_gbs = 144.0,
      .pcie_bandwidth_gbs = 2.5,
      .device_memory_gb = 6.0,
  };
}

DeviceProfile DeviceProfile::gtx_titan() {
  return DeviceProfile{
      .name = "GTX Titan",
      .architecture = "Kepler",
      .cuda_cores = 2688,
      .core_clock_ghz = 0.837,
      .mem_bandwidth_gbs = 288.4,
      .pcie_bandwidth_gbs = 2.5,
      .device_memory_gb = 6.0,
  };
}

DeviceProfile DeviceProfile::k20() {
  return DeviceProfile{
      .name = "Tesla K20",
      .architecture = "Kepler",
      .cuda_cores = 2496,
      .core_clock_ghz = 0.706,
      .mem_bandwidth_gbs = 208.0,
      .pcie_bandwidth_gbs = 2.5,
      .device_memory_gb = 5.0,
  };
}

DeviceProfile DeviceProfile::host() {
  unsigned n = std::thread::hardware_concurrency();
  if (n == 0) n = 1;
  return DeviceProfile{
      .name = "Host CPU emulation",
      .architecture = "Host",
      .cuda_cores = n,
      .core_clock_ghz = 2.0,
      .mem_bandwidth_gbs = 20.0,
      .pcie_bandwidth_gbs = 20.0,
      .device_memory_gb = 8.0,
  };
}

}  // namespace zh
