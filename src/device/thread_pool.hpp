// Persistent worker-thread pool.
//
// Per the C++ Core Guidelines (CP.41: minimize thread creation/destruction)
// the pool is created once and reused for every kernel launch, parallel
// primitive and cluster rank; tasks are the unit of work (CP.4).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace zh {

class ThreadPool {
 public:
  /// Create a pool with `threads` workers (0 = hardware concurrency).
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Enqueue a fire-and-forget task. The caller must arrange its own
  /// completion signalling (parallel_for does this for callers).
  void post(std::function<void()> task);

  /// Run `body(begin, end)` over [0, n) split into contiguous chunks, one
  /// chunk per task, and block until all chunks finish. Exceptions thrown
  /// by the body are captured and rethrown on the calling thread (first
  /// one wins). `grain` bounds the minimum chunk size.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t, std::size_t)>& body,
                    std::size_t grain = 1);

  /// Process-wide shared pool (lazily constructed, never destroyed before
  /// static teardown).
  static ThreadPool& global();

 private:
  void worker_loop();
  static std::size_t div_up_local(std::size_t a, std::size_t b);

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace zh
