#include "device/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>

#include "common/contracts.hpp"
#include "common/error.hpp"
#include "obs/obs.hpp"

namespace zh {

ThreadPool::ThreadPool(unsigned threads) {
  unsigned n = threads != 0 ? threads : std::thread::hardware_concurrency();
  if (n == 0) n = 1;
  workers_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::post(std::function<void()> task) {
  ZH_ASSERT(task != nullptr, "posted an empty task");
#if defined(ZH_ENABLE_OBS)
  // Only pay the wrapper allocation while someone is watching; the
  // stats separate time a task sat queued from time it ran -- the
  // queue-wait tail is the pool-saturation signal.
  if (obs::profiling_enabled()) {
    task = [inner = std::move(task), enqueued_us = obs::now_us()] {
      ZH_STAT_RECORD("pool.queue_wait_us",
                     static_cast<double>(obs::now_us() - enqueued_us));
      const std::int64_t start_us = obs::now_us();
      {
        ZH_TRACE_SPAN("pool.task", "pool");
        inner();
      }
      ZH_STAT_RECORD("pool.task_run_us",
                     static_cast<double>(obs::now_us() - start_us));
      ZH_COUNTER_ADD("pool.tasks_run", 1);
    };
  }
#endif
  {
    std::lock_guard lock(mutex_);
    // Posting during shutdown is permitted (the destructor may race with
    // in-flight producers); the task runs only if a worker is still alive
    // to drain it. Posting after the destructor returns is caller UB.
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      // Wait predicate guarantees work is available past this point.
      ZH_ASSERT(!queue_.empty(), "worker woke with an empty queue");
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

namespace {

// Shared state of one parallel_for batch. Workers and the calling thread
// cooperatively claim chunks via `next`; the call returns when `active`
// drops to zero. Held by shared_ptr because helper tasks posted to the
// pool may still be scheduled (and immediately find no chunks) after the
// calling thread has returned.
struct ForBatch {
  std::size_t n = 0;
  std::size_t chunk = 1;
  const std::function<void(std::size_t, std::size_t)>* body = nullptr;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> active{0};  // threads currently draining
  std::atomic<bool> failed{false};
  std::exception_ptr error;
  std::mutex error_mutex;

  // Claim and run chunks until none remain. Registration in `active`
  // must precede the first claim: `body` lives on the caller's stack, and
  // the caller frees it once its own drain() returns and active == 0. A
  // claim made by a thread not yet counted in `active` would let the
  // caller leave while the claim still needs `body` (a use-after-return
  // ASan catches).
  void drain() {
    active.fetch_add(1, std::memory_order_acq_rel);
    for (;;) {
      const std::size_t begin = next.fetch_add(chunk, std::memory_order_relaxed);
      if (begin >= n) break;
      const std::size_t end = std::min(n, begin + chunk);
      ZH_ASSERT(end <= n, "chunk end past range");
      try {
        if (!failed.load(std::memory_order_relaxed)) (*body)(begin, end);
      } catch (...) {
        std::lock_guard lock(error_mutex);
        if (!error) error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
        // The caller reads `error` lock-free after observing active == 0;
        // declare the edge explicitly for the race checker (the release
        // fetch_sub below carries it for the hardware).
        ZH_TSAN_RELEASE(&error);
      }
    }
    active.fetch_sub(1, std::memory_order_acq_rel);
  }
};

}  // namespace

void ThreadPool::parallel_for(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& body,
    std::size_t grain) {
  if (n == 0) return;
  if (grain == 0) grain = 1;

  // Chunk so each worker sees several chunks (load balancing for uneven
  // work, e.g. boundary tiles with heavier Step-4 cost), bounded below by
  // the grain.
  const std::size_t target_chunks = std::max<std::size_t>(1, size() * 4);
  std::size_t chunk = std::max(grain, div_up_local(n, target_chunks));
  if (chunk >= n) {
    body(0, n);
    return;
  }

  auto batch = std::make_shared<ForBatch>();
  batch->n = n;
  batch->chunk = chunk;
  batch->body = &body;

  // One helper per worker; each drains chunks then exits. The calling
  // thread participates too, so parallel_for never deadlocks even when
  // invoked from inside a pool task (all workers busy).
  const std::size_t helpers = size();
  for (std::size_t i = 0; i < helpers; ++i) {
    post([batch] { batch->drain(); });
  }
  batch->drain();

  // All chunks are claimed once drain() returns on this thread; spin-wait
  // (with yield) until every registered helper has left its drain loop.
  while (batch->active.load(std::memory_order_acquire) != 0) {
    std::this_thread::yield();
  }
  ZH_TSAN_ACQUIRE(&batch->error);
  if (batch->error) std::rethrow_exception(batch->error);
}

std::size_t ThreadPool::div_up_local(std::size_t a, std::size_t b) {
  return (a + b - 1) / b;
}

ThreadPool& ThreadPool::global() {
  // zh-lint-ignore(naked-new): intentional leak so the pool outlives all statics
  static ThreadPool& pool = *new ThreadPool();
  return pool;
}

}  // namespace zh
