#include "device/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>

#include "common/error.hpp"

namespace zh {

ThreadPool::ThreadPool(unsigned threads) {
  unsigned n = threads != 0 ? threads : std::thread::hardware_concurrency();
  if (n == 0) n = 1;
  workers_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::post(std::function<void()> task) {
  {
    std::lock_guard lock(mutex_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

namespace {

// Shared state of one parallel_for batch. Workers and the calling thread
// cooperatively claim chunks via `next`; the call returns when `active`
// drops to zero. Held by shared_ptr because helper tasks posted to the
// pool may still be scheduled (and immediately find no chunks) after the
// calling thread has returned.
struct ForBatch {
  std::size_t n = 0;
  std::size_t chunk = 1;
  const std::function<void(std::size_t, std::size_t)>* body = nullptr;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> active{0};  // chunks claimed but not finished
  std::atomic<bool> failed{false};
  std::exception_ptr error;
  std::mutex error_mutex;

  // Claim and run chunks until none remain. Returns when this thread can
  // make no further progress on the batch.
  void drain() {
    for (;;) {
      const std::size_t begin = next.fetch_add(chunk, std::memory_order_relaxed);
      if (begin >= n) return;
      const std::size_t end = std::min(n, begin + chunk);
      active.fetch_add(1, std::memory_order_acq_rel);
      try {
        if (!failed.load(std::memory_order_relaxed)) (*body)(begin, end);
      } catch (...) {
        std::lock_guard lock(error_mutex);
        if (!error) error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
      }
      active.fetch_sub(1, std::memory_order_acq_rel);
    }
  }
};

}  // namespace

void ThreadPool::parallel_for(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& body,
    std::size_t grain) {
  if (n == 0) return;
  if (grain == 0) grain = 1;

  // Chunk so each worker sees several chunks (load balancing for uneven
  // work, e.g. boundary tiles with heavier Step-4 cost), bounded below by
  // the grain.
  const std::size_t target_chunks = std::max<std::size_t>(1, size() * 4);
  std::size_t chunk = std::max(grain, div_up_local(n, target_chunks));
  if (chunk >= n) {
    body(0, n);
    return;
  }

  auto batch = std::make_shared<ForBatch>();
  batch->n = n;
  batch->chunk = chunk;
  batch->body = &body;

  // One helper per worker; each drains chunks then exits. The calling
  // thread participates too, so parallel_for never deadlocks even when
  // invoked from inside a pool task (all workers busy).
  const std::size_t helpers = size();
  for (std::size_t i = 0; i < helpers; ++i) {
    post([batch] { batch->drain(); });
  }
  batch->drain();

  // All chunks are claimed once drain() returns on this thread; spin-wait
  // (with yield) for in-flight chunks owned by helpers to complete.
  while (batch->active.load(std::memory_order_acquire) != 0) {
    std::this_thread::yield();
  }
  if (batch->error) std::rethrow_exception(batch->error);
}

std::size_t ThreadPool::div_up_local(std::size_t a, std::size_t b) {
  return (a + b - 1) / b;
}

ThreadPool& ThreadPool::global() {
  static ThreadPool& pool = *new ThreadPool();  // leak: outlive all statics
  return pool;
}

}  // namespace zh
