// Virtual-device execution substrate.
//
// The paper's kernels (Figs. 2, 4, 5) are written in the CUDA
// grid-of-thread-blocks model: one block per raster tile / polygon, threads
// striding over histogram bins and cells, block-wide barriers, atomicAdd
// into per-tile histograms. This header reproduces that model on the host:
//
//  * Device::launch(grid_dim, kernel) runs `kernel(BlockContext&)` once per
//    block, blocks distributed over a persistent ThreadPool.
//  * BlockContext carries blockIdx/blockDim analogs and the strided-loop
//    helper that the CUDA `for (k = threadIdx.x; k < n; k += blockDim.x)`
//    idiom maps to. Within one emulated block, virtual threads execute
//    sequentially, so __syncthreads() is a no-op by construction; *across*
//    blocks the same races exist as on a real GPU and shared outputs must
//    use atomics exactly as in the paper.
//  * DeviceProfile captures the published specs of the three GPUs in the
//    paper's evaluation; Device keeps transfer/launch statistics so an
//    analytic performance model (core/perf_model) can project paper-scale
//    runtimes from measured work counters.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"
#include "device/thread_pool.hpp"

namespace zh {

/// Hardware characteristics of a (virtual) accelerator. Values for the
/// presets are the published specs cited in Sec. IV.B of the paper.
struct DeviceProfile {
  std::string name;
  std::string architecture;    ///< "Fermi", "Kepler", "Host"
  std::uint32_t cuda_cores;    ///< parallel lanes
  double core_clock_ghz;       ///< per-lane clock
  double mem_bandwidth_gbs;    ///< device memory bandwidth, GB/s
  double pcie_bandwidth_gbs;   ///< host<->device transfer rate, GB/s
  double device_memory_gb;     ///< capacity (both paper GPUs have >= 5 GB)

  /// Nvidia Quadro 6000 (Fermi): 448 cores, 144 GB/s.
  static DeviceProfile quadro6000();
  /// Nvidia GTX Titan (Kepler): 2688 cores, 288.4 GB/s.
  static DeviceProfile gtx_titan();
  /// Nvidia Tesla K20 (Kepler, ORNL Titan node): 2496 cores, 208 GB/s.
  static DeviceProfile k20();
  /// The host CPU executing the emulation (throughput proxies only).
  static DeviceProfile host();
};

/// Cumulative execution statistics of a Device (reset per run if desired).
struct DeviceStats {
  std::atomic<std::uint64_t> kernels_launched{0};
  std::atomic<std::uint64_t> blocks_executed{0};
  std::atomic<std::uint64_t> bytes_h2d{0};
  std::atomic<std::uint64_t> bytes_d2h{0};

  void reset() {
    kernels_launched = 0;
    blocks_executed = 0;
    bytes_h2d = 0;
    bytes_d2h = 0;
  }
};

/// Per-block execution context handed to kernels; the analog of
/// (blockIdx, blockDim, threadIdx) plus the strided-loop idiom.
class BlockContext {
 public:
  BlockContext(std::uint32_t block_id, std::uint32_t grid_dim,
               std::uint32_t block_dim)
      : block_id_(block_id), grid_dim_(grid_dim), block_dim_(block_dim) {}

  /// blockIdx.x analog (blocks are 1-D; callers linearize 2-D grids the
  /// same way the paper does: idx = blockIdx.y*gridDim.x + blockIdx.x).
  [[nodiscard]] std::uint32_t block_id() const { return block_id_; }
  [[nodiscard]] std::uint32_t grid_dim() const { return grid_dim_; }
  /// blockDim.x analog. Within the emulation virtual threads run
  /// sequentially; block_dim only affects traversal order.
  [[nodiscard]] std::uint32_t block_dim() const { return block_dim_; }

  /// Execute `fn(i)` for every i in [0, n), visiting indices in the order
  /// the CUDA strided loop would complete them (chunk by chunk). Each call
  /// corresponds to one barrier-delimited phase of the kernel.
  template <typename Fn>
  void strided(std::size_t n, Fn&& fn) const {
    for (std::size_t base = 0; base < n; base += block_dim_) {
      const std::size_t end = std::min<std::size_t>(n, base + block_dim_);
      for (std::size_t i = base; i < end; ++i) fn(i);
    }
  }

  /// __syncthreads() analog. Virtual threads in a block run sequentially,
  /// so this is a semantic marker only; kept so kernels mirror the paper's
  /// listings line by line.
  void sync() const {}

 private:
  std::uint32_t block_id_;
  std::uint32_t grid_dim_;
  std::uint32_t block_dim_;
};

/// Device-resident typed buffer. Allocation and host<->device copies are
/// tracked through the owning Device so transfer volumes can be reported
/// (the paper argues BQ-Tree compression cuts the CPU->GPU copy from ~28 s
/// to ~3 s at 2.5 GB/s; the accounting lets benches reproduce that math).
template <typename T>
class DeviceBuffer {
 public:
  DeviceBuffer() = default;
  explicit DeviceBuffer(std::size_t n) : data_(n) {}

  [[nodiscard]] std::size_t size() const { return data_.size(); }
  [[nodiscard]] bool empty() const { return data_.empty(); }
  [[nodiscard]] std::size_t bytes() const { return size() * sizeof(T); }

  [[nodiscard]] T* data() { return data_.data(); }
  [[nodiscard]] const T* data() const { return data_.data(); }
  [[nodiscard]] std::span<T> span() { return {data_.data(), data_.size()}; }
  [[nodiscard]] std::span<const T> span() const {
    return {data_.data(), data_.size()};
  }

  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }

  void fill(const T& v) { std::fill(data_.begin(), data_.end(), v); }
  void resize(std::size_t n) { data_.resize(n); }

 private:
  std::vector<T> data_;
};

/// Accumulated profile of one named kernel (see Device::launch_named).
struct KernelProfile {
  std::uint64_t launches = 0;
  std::uint64_t blocks = 0;
  double seconds = 0.0;
};

/// A virtual accelerator: a profile + an executor + statistics.
class Device {
 public:
  explicit Device(DeviceProfile profile = DeviceProfile::gtx_titan(),
                  ThreadPool* pool = &ThreadPool::global(),
                  std::uint32_t default_block_dim = 256)
      : profile_(std::move(profile)),
        pool_(pool),
        default_block_dim_(default_block_dim) {
    ZH_REQUIRE(pool_ != nullptr, "device requires an executor pool");
    ZH_REQUIRE(default_block_dim_ > 0, "block_dim must be positive");
  }

  [[nodiscard]] const DeviceProfile& profile() const { return profile_; }
  [[nodiscard]] DeviceStats& stats() { return stats_; }
  [[nodiscard]] std::uint32_t default_block_dim() const {
    return default_block_dim_;
  }

  /// Launch `kernel(BlockContext&)` over a 1-D grid of `grid_dim` blocks.
  /// Blocks run concurrently on the pool; the call returns when the whole
  /// grid has executed (stream-0 synchronous semantics).
  template <typename Kernel>
  void launch(std::uint32_t grid_dim, Kernel&& kernel) {
    launch(grid_dim, default_block_dim_, std::forward<Kernel>(kernel));
  }

  template <typename Kernel>
  void launch(std::uint32_t grid_dim, std::uint32_t block_dim,
              Kernel&& kernel) {
    if (grid_dim == 0) return;
    ZH_REQUIRE(block_dim > 0, "block_dim must be positive");
    stats_.kernels_launched.fetch_add(1, std::memory_order_relaxed);
    stats_.blocks_executed.fetch_add(grid_dim, std::memory_order_relaxed);
    pool_->parallel_for(
        grid_dim,
        [&](std::size_t begin, std::size_t end) {
          for (std::size_t b = begin; b < end; ++b) {
            BlockContext ctx(static_cast<std::uint32_t>(b), grid_dim,
                             block_dim);
            kernel(ctx);
          }
        });
  }

  /// launch() with per-name profiling: wall time, launch and block
  /// counts accumulate under `name` (the nvprof-style kernel table).
  template <typename Kernel>
  void launch_named(std::string_view name, std::uint32_t grid_dim,
                    Kernel&& kernel) {
    const auto start = std::chrono::steady_clock::now();
    launch(grid_dim, default_block_dim_, std::forward<Kernel>(kernel));
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    std::lock_guard lock(profile_mutex_);
    KernelProfile& p = kernel_profiles_[std::string(name)];
    ++p.launches;
    p.blocks += grid_dim;
    p.seconds += seconds;
  }

  /// Snapshot of all named-kernel profiles.
  [[nodiscard]] std::map<std::string, KernelProfile> kernel_profiles()
      const {
    std::lock_guard lock(profile_mutex_);
    return kernel_profiles_;
  }

  /// Copy host data into a new device buffer, accounting the transfer.
  template <typename T>
  DeviceBuffer<T> to_device(std::span<const T> host) {
    DeviceBuffer<T> buf(host.size());
    std::copy(host.begin(), host.end(), buf.data());
    stats_.bytes_h2d.fetch_add(host.size_bytes(), std::memory_order_relaxed);
    return buf;
  }

  /// Copy a device buffer back to host storage, accounting the transfer.
  template <typename T>
  std::vector<T> to_host(const DeviceBuffer<T>& buf) {
    std::vector<T> host(buf.data(), buf.data() + buf.size());
    stats_.bytes_d2h.fetch_add(buf.bytes(), std::memory_order_relaxed);
    return host;
  }

  /// Modeled seconds for a host->device transfer of `bytes` at the
  /// profile's PCIe bandwidth (used by reporting, not by execution).
  [[nodiscard]] double modeled_h2d_seconds(std::uint64_t bytes) const {
    return static_cast<double>(bytes) / (profile_.pcie_bandwidth_gbs * 1e9);
  }

 private:
  DeviceProfile profile_;
  ThreadPool* pool_;
  std::uint32_t default_block_dim_;
  DeviceStats stats_;
  mutable std::mutex profile_mutex_;
  std::map<std::string, KernelProfile> kernel_profiles_;
};

/// atomicAdd analog used by the Step-1 kernel (Fig. 2 line 11). Shared
/// output histograms are written with relaxed atomics: only the final
/// per-bin totals matter, never inter-thread ordering.
inline void atomic_add(std::atomic<BinCount>& slot, BinCount v = 1) {
  slot.fetch_add(v, std::memory_order_relaxed);
}

/// Same on a raw counter reinterpreted atomically. Valid because BinCount
/// is lock-free-atomic-compatible on all supported platforms; lets kernels
/// keep plain uint32 arrays as the paper does.
inline void atomic_add(BinCount* slot, BinCount v = 1) {
  static_assert(sizeof(std::atomic<BinCount>) == sizeof(BinCount));
  reinterpret_cast<std::atomic<BinCount>*>(slot)->fetch_add(
      v, std::memory_order_relaxed);
}

}  // namespace zh
