#!/usr/bin/env bash
# Correctness-check driver: runs the warning-clean build, the sanitizer
# matrix and the clang-tidy pass locally or in CI.
#
#   tools/check.sh              # full matrix: dev, asan-ubsan, tsan, obs, lint, tidy
#   tools/check.sh dev          # RelWithDebInfo + -Werror + full ctest + zh-lint
#   tools/check.sh asan         # Debug + ASan/UBSan + full ctest
#   tools/check.sh tsan         # Debug + TSan + concurrency test suites
#   tools/check.sh faults       # fault-injection suites (dev + asan-ubsan)
#   tools/check.sh resume       # kill/resume soak: abort-point sweep + journal fuzz
#   tools/check.sh query        # batch query engine: cache bit-identity + speedup gate
#   tools/check.sh obs          # trace/metrics end-to-end + ZH_OBS=OFF build
#   tools/check.sh lint         # zh-lint project invariants + header check
#   tools/check.sh tidy         # clang-tidy over src/ (needs clang-tidy)
#
# Each stage configures its own build tree (build-dev, build-asan-ubsan,
# build-tsan, build-tidy) via CMakePresets.json, so stages never poison
# each other's caches. Every stage builds with ZH_WERROR=ON: warnings are
# errors here even when the default developer build keeps them advisory.
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc 2>/dev/null || echo 2)}"
CTEST_PARALLEL="${CTEST_PARALLEL:-${JOBS}}"

# Concurrency suites exercised under TSan: ThreadPool + device emulation,
# thrust-analog primitives, the MPI-like cluster layer (including the
# fault-injection and timeout/heartbeat paths), the Step-4 refinement
# strategies (parallel edge-index build + scanline kernels), and the
# stress mix.
TSAN_FILTER='*ThreadPool*:*Primitive*:*Comm*:*Partition*:*Cluster*:*Stress*:*Device*:*Fault*:*Obs*:*Refine*:*Checkpoint*:*TraceCausal*:*TileCache*:*QueryEngine*'

# Fault-tolerance suites: deterministic fault injection, timeout/retry,
# straggler recovery, corruption-detecting I/O, the parser corpus, and
# the checkpoint-journal torn-write/bit-flip/resume suites.
FAULT_FILTER='*Fault*:*ClusterRecovery*:*ParserRobustness*:*CorruptIo*:*Journal*:*Checkpoint*'

log() { printf '\n\033[1;34m== %s ==\033[0m\n' "$*"; }

# Scrape http://127.0.0.1:$2/metrics into file $1 over bash's /dev/tcp
# (no curl/wget dependency); strips the HTTP headers, keeps the body.
scrape_metrics() {
  local out="$1" port="$2"
  exec 3<>"/dev/tcp/127.0.0.1/${port}" || return 1
  printf 'GET /metrics HTTP/1.0\r\n\r\n' >&3
  sed '1,/^\r$/d' <&3 > "${out}"
  exec 3<&- 3>&-
}

# Poll $1 for the "metrics: serving http://..." announcement zhist
# prints on stderr and echo the ephemeral port; empty when it never
# appears.
wait_for_metrics_port() {
  local err_file="$1" port=""
  for _ in $(seq 1 100); do
    port="$(sed -n \
      's#^metrics: serving http://127.0.0.1:\([0-9]*\)/metrics$#\1#p' \
      "${err_file}" 2>/dev/null)"
    [[ -n "${port}" ]] && break
    sleep 0.1
  done
  echo "${port}"
}

configure_and_build() {
  local preset="$1"
  log "configure (${preset})"
  cmake --preset "${preset}" >/dev/null
  log "build (${preset}, -j${JOBS})"
  cmake --build --preset "${preset}" -j "${JOBS}"
}

run_dev() {
  configure_and_build dev
  log "ctest (dev)"
  ctest --preset dev -j "${CTEST_PARALLEL}"
  # Step-4 strategy gate: scanline must stay bit-identical to brute,
  # >= 3x cheaper in edge tests, and no slower on a dense-edge fixture
  # (the bench exits nonzero otherwise).
  log "step-4 refinement gate (bench_step4_refine)"
  ZH_BENCH_JSON=- ./build-dev/bench/bench_step4_refine
  # Project-invariant gate: the tree must be zh-lint-clean (layering DAG,
  # error discipline, index widths, hygiene; see DESIGN.md §7).
  log "zh-lint (dev flow)"
  ./build-dev/tools/zh_lint/zh-lint .
}

run_lint() {
  # Static project invariants: zh-lint (layering DAG, Status discipline,
  # 64-bit index widths, hygiene, suppression audit) plus the compiler-
  # verified header self-containment target. The JSON report lands next
  # to the build tree for the CI artifact upload.
  configure_and_build dev
  log "zh-lint (full tree, JSON report)"
  ./build-dev/tools/zh_lint/zh-lint . --json build-dev/zh-lint-report.json
  log "header self-containment (check_headers)"
  cmake --build build-dev --target check_headers -j "${JOBS}"
}

run_asan() {
  configure_and_build asan-ubsan
  log "ctest (asan-ubsan)"
  ctest --preset asan-ubsan -j "${CTEST_PARALLEL}"
}

run_tsan() {
  configure_and_build tsan
  log "concurrency suites (tsan)"
  TSAN_OPTIONS="halt_on_error=1:second_deadlock_stack=1" \
    ./build-tsan/tests/zh_tests --gtest_filter="${TSAN_FILTER}" \
    --gtest_brief=1
}

run_faults() {
  # Fault scenarios under both the optimized build (timing-sensitive
  # paths at full speed) and ASan/UBSan (memory safety when recovery,
  # retry, and corrupted-input paths fire).
  configure_and_build dev
  log "fault-injection suites (dev)"
  ./build-dev/tests/zh_tests --gtest_filter="${FAULT_FILTER}" \
    --gtest_brief=1
  configure_and_build asan-ubsan
  log "fault-injection suites (asan-ubsan)"
  ./build-asan-ubsan/tests/zh_tests --gtest_filter="${FAULT_FILTER}" \
    --gtest_brief=1
}

run_resume() {
  # Kill/resume soak harness (DESIGN.md 5d): a scripted process abort
  # (exit 43, a simulated SIGKILL) at every crash point and several
  # occurrences, each followed by `zhist --resume`, must reproduce the
  # uninterrupted single-rank run bit for bit -- including the
  # journal_record abort, which leaves a torn half-frame on disk. The
  # torn-write/bit-flip fuzz suites then run under ASan/UBSan, and the
  # journaling overhead gate closes the stage.
  configure_and_build dev
  local tmp="build-dev/resume-check"
  rm -rf "${tmp}" && mkdir -p "${tmp}"
  local zhist=./build-dev/tools/zhist

  log "golden single-rank run (dev)"
  "${zhist}" synth "${tmp}/dem.zgrid" --rows 300 --cols 300
  "${zhist}" zones "${tmp}/zones.tsv" --zones 20
  "${zhist}" hist "${tmp}/dem.zgrid" "${tmp}/zones.tsv" \
    -o "${tmp}/golden.csv" --bins 128 --tile 64 --partitions 4x4

  # One interrupted run + one resume; verifies exit codes, bit-identity
  # against the golden CSV, and (when the journal held records) that the
  # run report shows journal.partitions_skipped > 0.
  kill_resume_case() {
    local name="$1" plan="$2"
    local ck="${tmp}/ck-${name}"
    rm -rf "${ck}"
    local rc=0
    "${zhist}" hist "${tmp}/dem.zgrid" "${tmp}/zones.tsv" \
      -o "${tmp}/out-${name}.csv" --bins 128 --tile 64 --ranks 3 \
      --partitions 4x4 --checkpoint-dir "${ck}" \
      --fault-plan "${plan}" >/dev/null 2>&1 || rc=$?
    if [[ "${rc}" -ne 0 && "${rc}" -ne 43 ]]; then
      echo "abort run '${name}' exited ${rc} (expected 0 or 43)" >&2
      return 1
    fi
    if [[ "${rc}" -eq 0 ]]; then
      # The abort occurrence was never reached: the run completed; its
      # output must already match the golden run.
      cmp "${tmp}/out-${name}.csv" "${tmp}/golden.csv"
      return 0
    fi
    local resume_rc=0
    "${zhist}" hist "${tmp}/dem.zgrid" "${tmp}/zones.tsv" \
      -o "${tmp}/out-${name}.csv" --bins 128 --tile 64 --ranks 3 \
      --partitions 4x4 --checkpoint-dir "${ck}" --resume --report \
      >"${tmp}/report-${name}.txt" 2>"${tmp}/stderr-${name}.txt" ||
      resume_rc=$?
    if [[ "${resume_rc}" -ne 0 ]]; then
      echo "resume '${name}' exited ${resume_rc}" >&2
      cat "${tmp}/stderr-${name}.txt" >&2
      return 1
    fi
    cmp "${tmp}/out-${name}.csv" "${tmp}/golden.csv"
    # "resume: N of M partitions journaled" -- when N > 0 the run report
    # must account for the skipped partitions.
    local journaled
    journaled="$(sed -n 's/^resume: \([0-9]*\) of .*/\1/p' \
      "${tmp}/stderr-${name}.txt")"
    if [[ -n "${journaled}" && "${journaled}" -gt 0 ]]; then
      local skipped
      skipped="$(sed -n \
        's/^ *journal\.partitions_skipped *\([0-9]*\)$/\1/p' \
        "${tmp}/report-${name}.txt" | head -n1)"
      if [[ -z "${skipped}" || "${skipped}" -eq 0 ]]; then
        echo "resume '${name}': ${journaled} partitions journaled but" \
          "journal.partitions_skipped not positive in the run report" >&2
        return 1
      fi
    fi
  }

  log "kill-at-every-abort-point sweep + resume bit-identity (dev)"
  local point occ
  for point in startup partition_start partition_done result_sent \
    before_finish journal_record; do
    for occ in 0 2 5; do
      echo "  abort=${point}#${occ}"
      kill_resume_case "${point}-${occ}" "abort=${point}#${occ}"
    done
  done

  log "double-interrupted resume (kill, resume+kill, resume)"
  # Kill mid-journal-append, then kill the RESUME mid-append too (torn
  # tail both times); the second resume must still land bit-identical.
  local ck="${tmp}/ck-double" rc
  rm -rf "${ck}"
  rc=0
  "${zhist}" hist "${tmp}/dem.zgrid" "${tmp}/zones.tsv" \
    -o "${tmp}/out-double.csv" --bins 128 --tile 64 --ranks 3 \
    --partitions 4x4 --checkpoint-dir "${ck}" \
    --fault-plan "abort=journal_record#0" >/dev/null 2>&1 || rc=$?
  [[ "${rc}" -eq 43 ]] || {
    echo "first kill exited ${rc} (expected 43)" >&2
    return 1
  }
  rc=0
  "${zhist}" hist "${tmp}/dem.zgrid" "${tmp}/zones.tsv" \
    -o "${tmp}/out-double.csv" --bins 128 --tile 64 --ranks 3 \
    --partitions 4x4 --checkpoint-dir "${ck}" --resume \
    --fault-plan "abort=journal_record#1" >/dev/null 2>&1 || rc=$?
  [[ "${rc}" -eq 43 ]] || {
    echo "killed resume exited ${rc} (expected 43)" >&2
    return 1
  }
  "${zhist}" hist "${tmp}/dem.zgrid" "${tmp}/zones.tsv" \
    -o "${tmp}/out-double.csv" --bins 128 --tile 64 --ranks 3 \
    --partitions 4x4 --checkpoint-dir "${ck}" --resume --report \
    >"${tmp}/report-double.txt" 2>"${tmp}/stderr-double.txt"
  cmp "${tmp}/out-double.csv" "${tmp}/golden.csv"
  grep -q "^resume: [1-9]" "${tmp}/stderr-double.txt"

  log "journal torn-write/bit-flip fuzz suites (asan-ubsan)"
  configure_and_build asan-ubsan
  ./build-asan-ubsan/tests/zh_tests \
    --gtest_filter='*Journal*:*Checkpoint*' --gtest_brief=1

  log "checkpoint journaling overhead gate (dev)"
  ZH_BENCH_JSON=build-dev/BENCH_checkpoint_overhead.json \
    ./build-dev/bench/bench_checkpoint_overhead
}

run_query() {
  # Batch query engine gate (DESIGN.md §9): serving Step 1 from the
  # shared tile-histogram cache must never change answers. Every batch
  # output is compared byte-for-byte against an independent `zhist hist`
  # run, the repeated query must hit the cache, a deliberately starved
  # budget must evict yet still answer bit-identically, and the
  # cold-vs-warm speedup bench closes the stage.
  configure_and_build dev
  local tmp="build-dev/query-check"
  rm -rf "${tmp}" && mkdir -p "${tmp}"
  local zhist=./build-dev/tools/zhist

  log "golden independent runs (zhist hist)"
  "${zhist}" synth "${tmp}/dem.zgrid" --rows 400 --cols 400
  "${zhist}" zones "${tmp}/zones_a.tsv" --zones 24
  "${zhist}" zones "${tmp}/zones_b.tsv" --zones 24 --seed 9
  "${zhist}" hist "${tmp}/dem.zgrid" "${tmp}/zones_a.tsv" \
    -o "${tmp}/golden_a.csv" --bins 128 --tile 32
  "${zhist}" hist "${tmp}/dem.zgrid" "${tmp}/zones_b.tsv" \
    -o "${tmp}/golden_b.csv" --bins 128 --tile 32

  log "batch run: bit-identity + cache hits (zhist query)"
  # Three queries over one raster; the third repeats the first, so the
  # batch must record cache hits and still reproduce the goldens.
  cat > "${tmp}/spec.json" <<EOF
{
  "tile": 32,
  "queries": [
    {"raster": "${tmp}/dem.zgrid", "zones": "${tmp}/zones_a.tsv",
     "bins": 128, "out": "${tmp}/q0.csv"},
    {"raster": "${tmp}/dem.zgrid", "zones": "${tmp}/zones_b.tsv",
     "bins": 128, "out": "${tmp}/q1.csv"},
    {"raster": "${tmp}/dem.zgrid", "zones": "${tmp}/zones_a.tsv",
     "bins": 128, "out": "${tmp}/q2.csv"}
  ]
}
EOF
  "${zhist}" query --batch "${tmp}/spec.json" \
    --metrics "${tmp}/query.metrics.json"
  cmp "${tmp}/q0.csv" "${tmp}/golden_a.csv"
  cmp "${tmp}/q1.csv" "${tmp}/golden_b.csv"
  cmp "${tmp}/q2.csv" "${tmp}/golden_a.csv"
  ./build-dev/tools/validate_obs metrics "${tmp}/query.metrics.json"
  grep -q '"cache\.hits":[1-9]' "${tmp}/query.metrics.json" || {
    echo "repeated query produced no cache hits" >&2
    return 1
  }

  log "eviction under a starved budget stays bit-identical"
  "${zhist}" hist "${tmp}/dem.zgrid" "${tmp}/zones_a.tsv" \
    -o "${tmp}/golden_wide.csv" --bins 4096 --tile 32
  cat > "${tmp}/spec-small.json" <<EOF
{
  "tile": 32,
  "cache_budget_mb": 1,
  "queries": [
    {"raster": "${tmp}/dem.zgrid", "zones": "${tmp}/zones_a.tsv",
     "bins": 4096, "out": "${tmp}/s0.csv"},
    {"raster": "${tmp}/dem.zgrid", "zones": "${tmp}/zones_a.tsv",
     "bins": 4096, "out": "${tmp}/s1.csv"}
  ]
}
EOF
  "${zhist}" query --batch "${tmp}/spec-small.json" \
    --metrics "${tmp}/small.metrics.json"
  cmp "${tmp}/s0.csv" "${tmp}/golden_wide.csv"
  cmp "${tmp}/s1.csv" "${tmp}/golden_wide.csv"
  grep -q '"cache\.evictions":[1-9]' "${tmp}/small.metrics.json" || {
    echo "starved 1 MB budget recorded no evictions" >&2
    return 1
  }

  log "query-cache speedup gate (bench_query_cache)"
  ZH_BENCH_JSON=build-dev/BENCH_query_cache.json \
    ./build-dev/bench/bench_query_cache
}

run_obs() {
  # End-to-end observability gate: a traced+metered run must produce
  # schema-valid outputs whose spans cover the run, the per-rank metrics
  # table must survive fault injection, and the kill-switch build
  # (ZH_OBS=OFF, every span/counter a no-op) must stay warning-clean and
  # within ZH_OBS_TOL_PCT percent of the instrumented build's runtime.
  configure_and_build dev
  local tmp="build-dev/obs-check"
  rm -rf "${tmp}" && mkdir -p "${tmp}"

  log "end-to-end trace + metrics + report (dev)"
  ./build-dev/tools/zhist synth "${tmp}/dem.zgrid" --rows 600 --cols 600
  ./build-dev/tools/zhist zones "${tmp}/zones.tsv" --zones 40
  ./build-dev/tools/zhist hist "${tmp}/dem.zgrid" "${tmp}/zones.tsv" \
    -o "${tmp}/hist.csv" --bins 256 --report \
    --trace "${tmp}/run.trace.json" --metrics "${tmp}/run.metrics.json"
  ./build-dev/tools/validate_obs trace "${tmp}/run.trace.json" \
    --min-coverage "${ZH_OBS_MIN_COVERAGE:-95}"
  ./build-dev/tools/validate_obs metrics "${tmp}/run.metrics.json"

  log "unwritable --trace/--metrics paths fail fast (dev)"
  if ./build-dev/tools/zhist hist "${tmp}/dem.zgrid" "${tmp}/zones.tsv" \
    -o "${tmp}/hist-neg.csv" --trace /nonexistent-zh-dir/x.json \
    2>/dev/null; then
    echo "expected nonzero exit for unwritable --trace path" >&2
    return 1
  fi

  log "per-rank metrics table under fault injection (dev)"
  ./build-dev/tools/zhist hist "${tmp}/dem.zgrid" "${tmp}/zones.tsv" \
    -o "${tmp}/hist-cluster.csv" --bins 256 --tile 64 --ranks 3 \
    --fault-plan "seed=5,drop=0.05,crash=2@partition_done" \
    --metrics "${tmp}/cluster.metrics.json"
  ./build-dev/tools/validate_obs metrics "${tmp}/cluster.metrics.json" \
    --require-ranks 3

  log "merged cluster trace: causal flow graph + critical path (dev)"
  # A fault-injected 4-rank run must still yield ONE merged trace whose
  # flow edges all resolve (zh_trace exits nonzero on a dangling recv)
  # and whose critical path tiles the wall clock. Span coverage gets a
  # lower floor than the single-process gate: the crashed rank's window
  # is a legitimate instrumentation gap.
  ./build-dev/tools/zhist hist "${tmp}/dem.zgrid" "${tmp}/zones.tsv" \
    -o "${tmp}/hist-trace.csv" --bins 256 --tile 64 --ranks 4 \
    --partitions 4x4 \
    --fault-plan "seed=5,drop=0.05,crash=2@partition_done" \
    --trace "${tmp}/cluster.trace.json" \
    --metrics "${tmp}/trace.metrics.json"
  ./build-dev/tools/validate_obs trace "${tmp}/cluster.trace.json" \
    --min-coverage "${ZH_OBS_CLUSTER_MIN_COVERAGE:-80}"
  ./build-dev/tools/zh_trace/zh_trace "${tmp}/cluster.trace.json" \
    --min-coverage 0.95 --report "${tmp}/cluster.critpath.json" \
    --run-report "${tmp}/trace.metrics.json"

  log "live /metrics endpoint during a fault-injected 4-rank run"
  # The run announces its ephemeral port on stderr, serves while the
  # ranks compute, and lingers long enough for the scrape loop below.
  # The scraped exposition (kept under obs-check/ as a CI artifact)
  # must pass the format linter and carry the partition-latency
  # quantile series the cluster driver records.
  ./build-dev/tools/zhist hist "${tmp}/dem.zgrid" "${tmp}/zones.tsv" \
    -o "${tmp}/hist-live.csv" --bins 256 --tile 64 --ranks 4 \
    --partitions 4x4 \
    --fault-plan "seed=5,drop=0.05,crash=2@partition_done" \
    --metrics-port 0 --metrics-linger-ms 15000 \
    2> "${tmp}/serve-hist.err" &
  local live_pid=$!
  local port
  port="$(wait_for_metrics_port "${tmp}/serve-hist.err")"
  [[ -n "${port}" ]] || {
    echo "zhist hist never announced a metrics port" >&2
    cat "${tmp}/serve-hist.err" >&2
    return 1
  }
  local scraped=""
  for _ in $(seq 1 200); do
    if scrape_metrics "${tmp}/cluster.prom" "${port}" 2>/dev/null &&
      grep -q 'zh_partition_latency_seconds{quantile="0.99"' \
        "${tmp}/cluster.prom"; then
      scraped=1
      break
    fi
    sleep 0.1
  done
  wait "${live_pid}"
  [[ -n "${scraped}" ]] || {
    echo "live scrape never showed zh_partition_latency_seconds p99" >&2
    return 1
  }
  ./build-dev/tools/validate_obs prom "${tmp}/cluster.prom" \
    --require-name 'zh_partition_latency_seconds{quantile="0.99"'

  log "live /metrics endpoint during a batch-query run"
  cat > "${tmp}/serve-spec.json" <<EOF
{
  "tile": 64,
  "queries": [
    {"raster": "${tmp}/dem.zgrid", "zones": "${tmp}/zones.tsv",
     "bins": 128, "out": "${tmp}/lq0.csv"},
    {"raster": "${tmp}/dem.zgrid", "zones": "${tmp}/zones.tsv",
     "bins": 128, "out": "${tmp}/lq1.csv"}
  ]
}
EOF
  ./build-dev/tools/zhist query --batch "${tmp}/serve-spec.json" \
    --metrics-port 0 --metrics-linger-ms 15000 \
    2> "${tmp}/serve-query.err" &
  live_pid=$!
  port="$(wait_for_metrics_port "${tmp}/serve-query.err")"
  [[ -n "${port}" ]] || {
    echo "zhist query never announced a metrics port" >&2
    cat "${tmp}/serve-query.err" >&2
    return 1
  }
  scraped=""
  for _ in $(seq 1 200); do
    if scrape_metrics "${tmp}/query.prom" "${port}" 2>/dev/null &&
      grep -q 'zh_query_latency_seconds{quantile="0.99"' \
        "${tmp}/query.prom"; then
      scraped=1
      break
    fi
    sleep 0.1
  done
  wait "${live_pid}"
  [[ -n "${scraped}" ]] || {
    echo "live scrape never showed zh_query_latency_seconds p99" >&2
    return 1
  }
  # The repeated query makes the second run hit the tile cache, so the
  # derived hit-rate gauge must be present alongside the quantiles.
  ./build-dev/tools/validate_obs prom "${tmp}/query.prom" \
    --require-name 'zh_query_latency_seconds{quantile="0.99"' \
    --require-name 'zh_cache_hit_rate'

  log "bench regression differ gates (zh_perf)"
  # Committed baselines compared against themselves must pass ...
  ./build-dev/tools/zh_perf/zh_perf --baseline-dir . --dir .
  # ... and a synthetically regressed copy must fail the gate.
  mkdir -p "${tmp}/perf-regressed"
  sed 's/"step_total":/"step_total":9e9,"zz_synthetic_orig":/' \
    BENCH_table2.json > "${tmp}/perf-regressed/BENCH_table2.json"
  if ./build-dev/tools/zh_perf/zh_perf BENCH_table2.json \
    "${tmp}/perf-regressed/BENCH_table2.json" >/dev/null; then
    echo "zh_perf accepted a synthetically regressed report" >&2
    return 1
  fi

  log "kill-switch build (ZH_OBS=OFF)"
  configure_and_build obs-off
  ./build-obs-off/tests/zh_tests --gtest_filter='*Obs*' --gtest_brief=1

  log "dormant-instrumentation overhead (ON vs OFF build)"
  local on off
  on="$(ZH_BENCH_JSON=build-dev/BENCH_obs_overhead.json \
    ./build-dev/bench/bench_obs_overhead |
    sed -n 's/^ZH_OBS_BENCH_SECONDS=//p')"
  off="$(ZH_BENCH_JSON=- ./build-obs-off/bench/bench_obs_overhead |
    sed -n 's/^ZH_OBS_BENCH_SECONDS=//p')"
  awk -v on="${on}" -v off="${off}" -v tol="${ZH_OBS_TOL_PCT:-2}" 'BEGIN {
    pct = (on - off) / off * 100.0;
    printf "  obs ON %.3fs vs OFF %.3fs: %+.2f%% (tolerance %s%%)\n", \
           on, off, pct, tol;
    exit (pct <= tol + 0.0) ? 0 : 1;
  }'
}

run_tidy() {
  if ! command -v clang-tidy >/dev/null 2>&1; then
    log "clang-tidy not found -- skipping lint stage"
    echo "install clang-tidy (>= 15) to run the lint gate locally" >&2
    return 0
  fi
  configure_and_build tidy
  log "clang-tidy (src/)"
  local sources
  mapfile -t sources < <(find src -name '*.cpp' | sort)
  local runner
  if runner="$(command -v run-clang-tidy)"; then
    "${runner}" -quiet -p build-tidy -j "${JOBS}" "${sources[@]}"
  else
    clang-tidy -p build-tidy --quiet "${sources[@]}"
  fi
}

stages=("$@")
if [[ ${#stages[@]} -eq 0 ]]; then
  stages=(dev asan tsan obs lint tidy)
fi

for stage in "${stages[@]}"; do
  case "${stage}" in
    dev) run_dev ;;
    asan | asan-ubsan) run_asan ;;
    tsan) run_tsan ;;
    faults) run_faults ;;
    resume) run_resume ;;
    query) run_query ;;
    obs) run_obs ;;
    lint) run_lint ;;
    tidy) run_tidy ;;
    *)
      echo "unknown stage '${stage}' (expected: dev asan tsan faults resume query obs lint tidy)" >&2
      exit 2
      ;;
  esac
done

log "all requested stages passed"
