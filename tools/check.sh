#!/usr/bin/env bash
# Correctness-check driver: runs the warning-clean build, the sanitizer
# matrix and the clang-tidy pass locally or in CI.
#
#   tools/check.sh              # full matrix: dev, asan-ubsan, tsan, tidy
#   tools/check.sh dev          # RelWithDebInfo + -Werror + full ctest
#   tools/check.sh asan         # Debug + ASan/UBSan + full ctest
#   tools/check.sh tsan         # Debug + TSan + concurrency test suites
#   tools/check.sh faults       # fault-injection suites (dev + asan-ubsan)
#   tools/check.sh tidy         # clang-tidy over src/ (needs clang-tidy)
#
# Each stage configures its own build tree (build-dev, build-asan-ubsan,
# build-tsan, build-tidy) via CMakePresets.json, so stages never poison
# each other's caches. Every stage builds with ZH_WERROR=ON: warnings are
# errors here even when the default developer build keeps them advisory.
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc 2>/dev/null || echo 2)}"
CTEST_PARALLEL="${CTEST_PARALLEL:-${JOBS}}"

# Concurrency suites exercised under TSan: ThreadPool + device emulation,
# thrust-analog primitives, the MPI-like cluster layer (including the
# fault-injection and timeout/heartbeat paths), and the stress mix.
TSAN_FILTER='*ThreadPool*:*Primitive*:*Comm*:*Partition*:*Cluster*:*Stress*:*Device*:*Fault*'

# Fault-tolerance suites: deterministic fault injection, timeout/retry,
# straggler recovery, corruption-detecting I/O, and the parser corpus.
FAULT_FILTER='*Fault*:*ClusterRecovery*:*ParserRobustness*:*CorruptIo*'

log() { printf '\n\033[1;34m== %s ==\033[0m\n' "$*"; }

configure_and_build() {
  local preset="$1"
  log "configure (${preset})"
  cmake --preset "${preset}" >/dev/null
  log "build (${preset}, -j${JOBS})"
  cmake --build --preset "${preset}" -j "${JOBS}"
}

run_dev() {
  configure_and_build dev
  log "ctest (dev)"
  ctest --preset dev -j "${CTEST_PARALLEL}"
}

run_asan() {
  configure_and_build asan-ubsan
  log "ctest (asan-ubsan)"
  ctest --preset asan-ubsan -j "${CTEST_PARALLEL}"
}

run_tsan() {
  configure_and_build tsan
  log "concurrency suites (tsan)"
  TSAN_OPTIONS="halt_on_error=1:second_deadlock_stack=1" \
    ./build-tsan/tests/zh_tests --gtest_filter="${TSAN_FILTER}" \
    --gtest_brief=1
}

run_faults() {
  # Fault scenarios under both the optimized build (timing-sensitive
  # paths at full speed) and ASan/UBSan (memory safety when recovery,
  # retry, and corrupted-input paths fire).
  configure_and_build dev
  log "fault-injection suites (dev)"
  ./build-dev/tests/zh_tests --gtest_filter="${FAULT_FILTER}" \
    --gtest_brief=1
  configure_and_build asan-ubsan
  log "fault-injection suites (asan-ubsan)"
  ./build-asan-ubsan/tests/zh_tests --gtest_filter="${FAULT_FILTER}" \
    --gtest_brief=1
}

run_tidy() {
  if ! command -v clang-tidy >/dev/null 2>&1; then
    log "clang-tidy not found -- skipping lint stage"
    echo "install clang-tidy (>= 15) to run the lint gate locally" >&2
    return 0
  fi
  configure_and_build tidy
  log "clang-tidy (src/)"
  local sources
  mapfile -t sources < <(find src -name '*.cpp' | sort)
  local runner
  if runner="$(command -v run-clang-tidy)"; then
    "${runner}" -quiet -p build-tidy -j "${JOBS}" "${sources[@]}"
  else
    clang-tidy -p build-tidy --quiet "${sources[@]}"
  fi
}

stages=("$@")
if [[ ${#stages[@]} -eq 0 ]]; then
  stages=(dev asan tsan tidy)
fi

for stage in "${stages[@]}"; do
  case "${stage}" in
    dev) run_dev ;;
    asan | asan-ubsan) run_asan ;;
    tsan) run_tsan ;;
    faults) run_faults ;;
    tidy) run_tidy ;;
    *)
      echo "unknown stage '${stage}' (expected: dev asan tsan faults tidy)" >&2
      exit 2
      ;;
  esac
done

log "all requested stages passed"
