// zhist: command-line zonal histogramming.
//
// Subcommands:
//   zhist hist <raster> <zones.tsv> [-o hist.csv] [--bins N] [--tile N]
//       [--stats] [--partitions RxC] [--ranks N] [--fault-plan SPEC]
//       [--checkpoint-dir DIR] [--resume] [--checkpoint-interval N]
//     Zonal histograms of a raster (.zgrid, .asc or .bq) over a WKT-TSV
//     zone layer; optional classic statistics table; CSV output. With
//     --ranks > 1 the run goes through the fault-tolerant cluster driver;
//     --fault-plan injects scripted message faults / rank crashes (see
//     FaultPlan::parse), e.g. "seed=1,drop=0.05,crash=2@partition_done".
//     --checkpoint-dir journals every accepted partition into
//     DIR/run.journal (fsync every N records); after a process death,
//     rerunning with --resume recomputes only un-journaled partitions
//     and produces bit-identical histograms (DESIGN.md 5d).
//   zhist encode <raster.zgrid|.asc> <out.bq> [--tile N]
//     BQ-Tree-compress a raster.
//   zhist decode <in.bq> <out.zgrid>
//     Decompress a .bq container.
//   zhist render <raster> <out.ppm> [--max-edge N]
//     Hypsometric PPM rendering.
//   zhist synth <out.zgrid> [--rows N] [--cols N] [--seed S]
//     Generate a synthetic fBm DEM.
//   zhist points <points.csv> <zones.tsv> [--tile N]
//     Zonal point summation (x,y[,weight] CSV).
//   zhist simplify <zones.tsv> <out.tsv> --eps E
//     Douglas-Peucker generalization of a zone layer.
//   zhist validate <zones.tsv>
//     Geometry validity report.
//   zhist catalog <dir> [-o hist.csv] [--bins N] [--tile N] [--eager]
//     Out-of-core run over a catalog directory.
//   zhist query --batch spec.json [--tile N] [--cache-budget-mb N]
//     Multi-query batch through the QueryEngine: rasters load once, and
//     Step-1 tile histograms are shared across queries via the tile
//     cache. The JSON spec holds the query list (see cmd_query).
#include <chrono>
#include <cstdio>
#include <cstring>
#include <deque>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.hpp"
#include "zh.hpp"

namespace {

using namespace zh;

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  zhist hist <raster> <zones.tsv> [-o hist.csv] "
               "[--bins N] [--tile N] [--stats] [--partitions RxC] "
               "[--refine brute|scanline|auto] [--ranks N] "
               "[--fault-plan SPEC] [--checkpoint-dir DIR] [--resume] "
               "[--checkpoint-interval N] [--trace FILE] "
               "[--metrics FILE] [--report] [--metrics-port N] "
               "[--metrics-linger-ms N]\n"
               "  zhist encode <raster> <out.bq> [--tile N]\n"
               "  zhist decode <in.bq> <out.zgrid>\n"
               "  zhist render <raster> <out.ppm> [--max-edge N]\n"
               "  zhist synth <out.zgrid> [--rows N] [--cols N] "
               "[--seed S]\n"
               "  zhist zones <out.tsv> [--zones N] [--seed S]\n"
               "  zhist query --batch spec.json [--tile N] "
               "[--cache-budget-mb N] [--metrics FILE] [--trace FILE] "
               "[--report] [--metrics-port N] [--metrics-linger-ms N]\n");
  std::exit(2);
}

struct Args {
  std::vector<std::string> positional;
  std::string out;
  BinIndex bins = 5000;
  std::int64_t tile = 360;
  bool stats = false;
  // The CLI defaults to auto so real runs pick the measured best path;
  // the library default stays brute (the paper's kernel) for fidelity.
  RefineStrategy refine = RefineStrategy::kAuto;
  int part_rows = 1;
  int part_cols = 1;
  std::int64_t rows = 1200;
  std::int64_t cols = 1200;
  std::size_t nzones = 64;
  std::uint64_t seed = 42;
  std::int64_t max_edge = 1024;
  double eps = 0.0;
  bool eager = false;
  std::size_t ranks = 1;
  std::string fault_plan;
  std::string checkpoint_dir;  ///< durable run-journal directory
  bool resume = false;         ///< continue from the journal in the dir
  std::uint32_t checkpoint_interval = 1;  ///< fsync every N records
  std::string trace;    ///< Chrome trace_event JSON output path
  std::string metrics;  ///< run-report JSON output path
  bool report = false;  ///< print the human-readable run report
  int metrics_port = -1;  ///< serve /metrics on 127.0.0.1:N (0=ephemeral)
  int metrics_linger_ms = 0;  ///< keep serving this long after the run
  std::string batch;    ///< JSON batch spec for `zhist query`
  std::size_t cache_budget_mb = 256;  ///< tile-cache budget for `query`
};

Args parse(int argc, char** argv) {
  Args args;
  for (int i = 2; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage();
      return argv[++i];
    };
    if (a == "-o") {
      args.out = next();
    } else if (a == "--bins") {
      args.bins = static_cast<BinIndex>(std::stoul(next()));
    } else if (a == "--tile") {
      args.tile = std::stoll(next());
    } else if (a == "--stats") {
      args.stats = true;
    } else if (a == "--refine") {
      const std::string v = next();
      if (v == "brute") {
        args.refine = RefineStrategy::kBrute;
      } else if (v == "scanline") {
        args.refine = RefineStrategy::kScanline;
      } else if (v == "auto") {
        args.refine = RefineStrategy::kAuto;
      } else {
        std::fprintf(stderr, "unknown --refine strategy: %s\n", v.c_str());
        usage();
      }
    } else if (a == "--partitions") {
      const std::string v = next();
      const auto x = v.find('x');
      if (x == std::string::npos) usage();
      args.part_rows = std::stoi(v.substr(0, x));
      args.part_cols = std::stoi(v.substr(x + 1));
    } else if (a == "--rows") {
      args.rows = std::stoll(next());
    } else if (a == "--cols") {
      args.cols = std::stoll(next());
    } else if (a == "--zones") {
      args.nzones = static_cast<std::size_t>(std::stoull(next()));
    } else if (a == "--seed") {
      args.seed = std::stoull(next());
    } else if (a == "--max-edge") {
      args.max_edge = std::stoll(next());
    } else if (a == "--eps") {
      args.eps = std::stod(next());
    } else if (a == "--eager") {
      args.eager = true;
    } else if (a == "--ranks") {
      args.ranks = static_cast<std::size_t>(std::stoull(next()));
    } else if (a == "--fault-plan") {
      args.fault_plan = next();
    } else if (a == "--checkpoint-dir") {
      args.checkpoint_dir = next();
    } else if (a == "--resume") {
      args.resume = true;
    } else if (a == "--checkpoint-interval") {
      args.checkpoint_interval =
          static_cast<std::uint32_t>(std::stoul(next()));
    } else if (a == "--trace") {
      args.trace = next();
    } else if (a == "--metrics") {
      args.metrics = next();
    } else if (a == "--report") {
      args.report = true;
    } else if (a == "--metrics-port") {
      args.metrics_port = std::stoi(next());
    } else if (a == "--metrics-linger-ms") {
      args.metrics_linger_ms = std::stoi(next());
    } else if (a == "--batch") {
      args.batch = next();
    } else if (a == "--cache-budget-mb") {
      args.cache_budget_mb = static_cast<std::size_t>(std::stoull(next()));
    } else if (!a.empty() && a[0] == '-') {
      std::fprintf(stderr, "unknown flag: %s\n", a.c_str());
      usage();
    } else {
      args.positional.push_back(a);
    }
  }
  return args;
}

bool ends_with(const std::string& s, const char* suffix) {
  const std::size_t n = std::strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

DemRaster load_raster(const std::string& path) {
  if (ends_with(path, ".asc")) return read_ascii_grid(path);
  if (ends_with(path, ".bq")) return read_bq(path).decode_all();
  return read_zgrid(path);
}

// Fail fast (one line, nonzero exit via main's catch) before the run
// spends minutes computing into an unwritable --trace/--metrics path.
// Append mode so probing never truncates an existing file.
void require_writable(const std::string& path) {
  std::ofstream probe(path, std::ios::app);
  ZH_REQUIRE_IO(probe.good(), "cannot open for write: ", path);
}

// Turn instrumentation on per the flags; returns whether any obs output
// was requested at all.
bool setup_obs(const Args& args) {
  if (!args.trace.empty()) {
    require_writable(args.trace);
    obs::set_trace_enabled(true);
  }
  if (!args.metrics.empty()) require_writable(args.metrics);
  if (!args.metrics.empty() || args.report || args.metrics_port >= 0) {
    obs::set_metrics_enabled(true);
  }
  return !args.trace.empty() || !args.metrics.empty() || args.report;
}

// Start the live /metrics endpoint when --metrics-port was given. The
// bound port is printed to stderr (port 0 asks the kernel for one), so
// scripts scrape `metrics: serving http://...` instead of guessing.
void start_metrics_server(const Args& args,
                          std::optional<obs::MetricsServer>& server) {
  if (args.metrics_port >= 0) {
    obs::MetricsServerOptions opt;
    opt.port = static_cast<std::uint16_t>(args.metrics_port);
    server.emplace(opt);
    std::fprintf(stderr, "metrics: serving http://127.0.0.1:%u/metrics\n",
                 static_cast<unsigned>(server->port()));
  }
}

// Hold the endpoint open after the run for --metrics-linger-ms, so a
// scraper racing a short batch still gets a deterministic window (the
// check.sh obs stage relies on this).
void linger_metrics(const Args& args,
                    const std::optional<obs::MetricsServer>& server) {
  if (server.has_value() && args.metrics_linger_ms > 0) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(args.metrics_linger_ms));
  }
}

// Emit the requested outputs: human report, metrics JSON, trace JSON.
void finish_obs(const Args& args, const obs::RunReport& report) {
  if (args.report) obs::print_report(stdout, report);
  if (!args.metrics.empty()) {
    obs::write_report_json(args.metrics, report);
    std::fprintf(stderr, "wrote %s\n", args.metrics.c_str());
  }
  if (!args.trace.empty()) {
    obs::write_chrome_trace(args.trace);
    std::fprintf(stderr, "wrote %s\n", args.trace.c_str());
  }
}

obs::RunReport base_report(const Args& args, const DemRaster& raster,
                           const PolygonSet& zones) {
  obs::RunReport report;
  report.tool = "zhist hist";
  report.workload = args.positional[0] + " + " + args.positional[1];
  report.config = {
      {"raster_rows", std::to_string(raster.rows())},
      {"raster_cols", std::to_string(raster.cols())},
      {"zones", std::to_string(zones.size())},
      {"bins", std::to_string(args.bins)},
      {"tile", std::to_string(args.tile)},
      {"refine", args.refine == RefineStrategy::kBrute      ? "brute"
                 : args.refine == RefineStrategy::kScanline ? "scanline"
                                                            : "auto"},
      {"partitions", std::to_string(args.part_rows) + "x" +
                         std::to_string(args.part_cols)},
      {"ranks", std::to_string(args.ranks)},
  };
  if (!args.fault_plan.empty()) {
    report.config.emplace_back("fault_plan", args.fault_plan);
  }
  return report;
}

int cmd_hist(const Args& args) {
  if (args.positional.size() != 2) usage();
  const bool with_obs = setup_obs(args);
  std::optional<obs::MetricsServer> metrics_server;
  start_metrics_server(args, metrics_server);
  const DemRaster raster = load_raster(args.positional[0]);
  const PolygonSet zones = read_polygon_tsv(args.positional[1]);
  std::fprintf(stderr, "raster %lldx%lld, %zu zones, %u bins, tile %lld\n",
               static_cast<long long>(raster.rows()),
               static_cast<long long>(raster.cols()), zones.size(),
               args.bins, static_cast<long long>(args.tile));

  if (args.ranks > 1 || !args.fault_plan.empty() ||
      !args.checkpoint_dir.empty()) {
    ClusterRunConfig cfg;
    cfg.ranks = args.ranks > 0 ? args.ranks : 1;
    cfg.zonal = {.tile_size = args.tile, .bins = args.bins,
                 .refine_strategy = args.refine};
    cfg.fault_tolerance.enabled = true;
    if (!args.fault_plan.empty()) {
      cfg.fault_tolerance.faults = FaultPlan::parse(args.fault_plan);
      if (cfg.fault_tolerance.faults.seed == 0) {
        cfg.fault_tolerance.faults.seed = args.seed;
      }
    }
    // Partition schema: honor --partitions, else one stripe per rank.
    const int pr =
        (args.part_rows == 1 && args.part_cols == 1)
            ? static_cast<int>(cfg.ranks)
            : args.part_rows;
    std::vector<DemRaster> rasters;
    rasters.push_back(raster);
    const std::vector<std::pair<int, int>> schemas{{pr, args.part_cols}};

    // Durable checkpoint/resume: journal every accepted partition into
    // <dir>/run.journal; --resume loads the journal (torn tail and all),
    // refuses a manifest mismatch, and recomputes only what is missing.
    std::optional<JournalWriter> journal;
    double resume_seconds = 0.0;
    std::uint32_t generation = 0;
    if (args.resume && args.checkpoint_dir.empty()) {
      std::fprintf(stderr, "--resume needs --checkpoint-dir\n");
      usage();
    }
    if (!args.checkpoint_dir.empty()) {
      std::filesystem::create_directories(args.checkpoint_dir);
      const std::string jpath = args.checkpoint_dir + "/run.journal";
      const RunManifest manifest =
          make_manifest(rasters, schemas, zones, cfg);
      JournalWriterOptions jopts;
      jopts.fsync_interval =
          args.checkpoint_interval > 0 ? args.checkpoint_interval : 1;
      jopts.abort = cfg.fault_tolerance.faults.abort;
      if (args.resume) {
        const JournalLoad load = load_journal(jpath);
        require_manifest_match(load.manifest, manifest, jpath);
        cfg.checkpoint.completed_partitions = load.completed;
        cfg.checkpoint.resume_bins = load.merged_bins;
        resume_seconds = load.resume_seconds;
        journal.emplace(JournalWriter::append(jpath, load, jopts));
        generation = journal->generation();
        std::fprintf(stderr,
                     "resume: %zu of %u partitions journaled "
                     "(generation %u, %llu torn bytes dropped)\n",
                     load.completed.size(), load.manifest.partition_count,
                     generation,
                     static_cast<unsigned long long>(load.torn_bytes));
      } else {
        journal.emplace(JournalWriter::create(jpath, manifest, jopts));
      }
      cfg.checkpoint.sink = &*journal;
    }

    const ClusterRunResult cres =
        run_cluster_zonal(rasters, schemas, zones, cfg);
    if (journal.has_value()) journal->flush();
    std::fprintf(stderr, "cluster: %zu ranks, %.2f s wall%s\n", cfg.ranks,
                 cres.wall_seconds,
                 cres.degraded ? " [DEGRADED: incomplete partitions]" : "");
    std::fprintf(stderr, "%-6s %-10s %10s %10s %10s\n", "rank", "state",
                 "completed", "reassigned", "heartbeats");
    for (std::size_t r = 0; r < cres.rank_outcomes.size(); ++r) {
      const RankOutcome& o = cres.rank_outcomes[r];
      const char* state = o.state == RankState::kCompleted ? "completed"
                          : o.state == RankState::kCrashed ? "crashed"
                                                           : "timed-out";
      std::fprintf(stderr, "%-6zu %-10s %10u %10u %10llu\n", r, state,
                   o.partitions_completed, o.partitions_reassigned,
                   static_cast<unsigned long long>(o.heartbeats));
    }
    if (!args.out.empty()) {
      write_histogram_csv(args.out, cres.merged);
      std::fprintf(stderr, "wrote %s\n", args.out.c_str());
    }
    if (args.stats || args.out.empty()) {
      std::printf("%-16s %12s %7s %7s %10s %10s\n", "zone", "cells", "min",
                  "max", "mean", "stddev");
      for (PolygonId z = 0; z < zones.size(); ++z) {
        const ZonalStats s = stats_from_histogram(cres.merged.of(z));
        std::printf("%-16s %12llu %7u %7u %10.2f %10.2f\n",
                    zones.name(z).c_str(),
                    static_cast<unsigned long long>(s.count), s.min, s.max,
                    s.mean, s.stddev);
      }
    }
    if (with_obs) {
      obs::RunReport report = base_report(args, raster, zones);
      // Per-step times reduce as max over ranks -- the paper's "longest
      // runtime among all the nodes" convention.
      for (const StepTimes& t : cres.per_rank) {
        report.times = report.times.max_with(t);
      }
      report.has_times = true;
      append_work_counters(report, cres.work);
      report.counters.emplace_back("comm_bytes", cres.comm_bytes);
      report.counters.emplace_back("incomplete_partitions",
                                   cres.incomplete_partitions.size());
      if (journal.has_value()) {
        report.config.emplace_back("checkpoint_dir", args.checkpoint_dir);
        report.config.emplace_back("resume", args.resume ? "1" : "0");
        report.config.emplace_back("checkpoint_interval",
                                   std::to_string(args.checkpoint_interval));
        report.config.emplace_back("journal_generation",
                                   std::to_string(generation));
        report.counters.emplace_back("journal.records_written",
                                     journal->records_written());
        report.counters.emplace_back("journal.partitions_skipped",
                                     cres.partitions_skipped);
        report.counters.emplace_back(
            "journal.resume_ms",
            static_cast<std::uint64_t>(resume_seconds * 1e3));
      }
      report.rank_columns = rank_metrics_columns();
      for (std::size_t r = 0; r < cres.rank_metrics.size(); ++r) {
        report.rank_rows.push_back(
            rank_metrics_values(cres.rank_metrics[r]));
        const RankState st = cres.rank_outcomes[r].state;
        report.rank_states.push_back(st == RankState::kCompleted ? "completed"
                                     : st == RankState::kCrashed ? "crashed"
                                                                 : "timed-out");
      }
      finish_obs(args, report);
    }
    linger_metrics(args, metrics_server);
    return cres.degraded ? 1 : 0;
  }

  Device device;
  const ZonalPipeline pipe(device,
                           {.tile_size = args.tile, .bins = args.bins,
                            .refine_strategy = args.refine});
  Timer timer;
  const ZonalResult result =
      (args.part_rows > 1 || args.part_cols > 1)
          ? pipe.run_partitioned(raster, zones, args.part_rows,
                                 args.part_cols)
          : pipe.run(raster, zones);
  std::fprintf(stderr, "pipeline: %.2f s (steps %.2f s)\n", timer.seconds(),
               result.times.step_total());

  if (!args.out.empty()) {
    write_histogram_csv(args.out, result.per_polygon);
    std::fprintf(stderr, "wrote %s\n", args.out.c_str());
  }
  if (args.stats || args.out.empty()) {
    std::printf("%-16s %12s %7s %7s %10s %10s\n", "zone", "cells", "min",
                "max", "mean", "stddev");
    for (PolygonId z = 0; z < zones.size(); ++z) {
      const ZonalStats s = stats_from_histogram(result.per_polygon.of(z));
      std::printf("%-16s %12llu %7u %7u %10.2f %10.2f\n",
                  zones.name(z).c_str(),
                  static_cast<unsigned long long>(s.count), s.min, s.max,
                  s.mean, s.stddev);
    }
  }
  if (with_obs) {
    obs::RunReport report = base_report(args, raster, zones);
    report.times = result.times;
    report.has_times = true;
    append_work_counters(report, result.work);
    finish_obs(args, report);
  }
  linger_metrics(args, metrics_server);
  return 0;
}

int cmd_encode(const Args& args) {
  if (args.positional.size() != 2) usage();
  const DemRaster raster = load_raster(args.positional[0]);
  const BqCompressedRaster compressed =
      BqCompressedRaster::encode(raster, args.tile);
  write_bq(args.positional[1], compressed);
  std::fprintf(stderr, "%s: %.1f%% of raw (%zu -> %zu bytes)\n",
               args.positional[1].c_str(),
               100.0 * compressed.compression_ratio(),
               compressed.raw_bytes(), compressed.compressed_bytes());
  return 0;
}

int cmd_decode(const Args& args) {
  if (args.positional.size() != 2) usage();
  write_zgrid(args.positional[1], read_bq(args.positional[0]).decode_all());
  return 0;
}

int cmd_render(const Args& args) {
  if (args.positional.size() != 2) usage();
  write_ppm(args.positional[1],
            render_elevation(load_raster(args.positional[0]),
                             args.max_edge));
  return 0;
}

int cmd_synth(const Args& args) {
  if (args.positional.size() != 1) usage();
  const GeoTransform t(-110.0, 45.0, 0.01, 0.01);
  write_zgrid(args.positional[0],
              generate_dem(args.rows, args.cols, t, {.seed = args.seed}));
  std::fprintf(stderr, "wrote %lldx%lld synthetic DEM to %s\n",
               static_cast<long long>(args.rows),
               static_cast<long long>(args.cols),
               args.positional[0].c_str());
  return 0;
}

int cmd_zones(const Args& args) {
  if (args.positional.size() != 1) usage();
  write_polygon_tsv(args.positional[0],
                    conus::generate_county_layer(
                        static_cast<int>(args.nzones), args.seed));
  std::fprintf(stderr, "wrote %zu synthetic zones to %s\n", args.nzones,
               args.positional[0].c_str());
  return 0;
}

int cmd_points(const Args& args) {
  if (args.positional.size() != 2) usage();
  const PointSet points = read_points_csv(args.positional[0]);
  const PolygonSet zones = read_polygon_tsv(args.positional[1]);
  const GeoBox ext = zones.extent();
  // Tile grid sized so the extent splits into ~args.tile tiles per axis.
  const std::int64_t cells = 64 * args.tile;
  const double cell =
      std::max(ext.width(), ext.height()) / static_cast<double>(cells);
  const GeoTransform t(ext.min_x, ext.max_y, cell, cell);
  const TilingScheme tiling(cells, cells, 64);

  Device device;
  PointZonalCounters counters;
  const auto rows =
      zonal_point_summation(device, points, zones, tiling, t, &counters);
  std::printf("%-16s %12s %16s\n", "zone", "count", "weight sum");
  for (PolygonId z = 0; z < zones.size(); ++z) {
    std::printf("%-16s %12llu %16.3f\n", zones.name(z).c_str(),
                static_cast<unsigned long long>(rows[z].count),
                rows[z].weight_sum);
  }
  std::fprintf(stderr,
               "%zu points; %llu bucket-aggregated, %llu PIP-tested\n",
               points.size(),
               static_cast<unsigned long long>(
                   counters.points_in_inside_tiles),
               static_cast<unsigned long long>(counters.pip_point_tests));
  return 0;
}

int cmd_simplify(const Args& args) {
  if (args.positional.size() != 2 || args.eps <= 0.0) usage();
  const PolygonSet zones = read_polygon_tsv(args.positional[0]);
  const PolygonSet simp = simplify_set(zones, args.eps);
  write_polygon_tsv(args.positional[1], simp);
  std::fprintf(stderr, "%zu -> %zu vertices (eps %.6g)\n",
               zones.vertex_count(), simp.vertex_count(), args.eps);
  return 0;
}

int cmd_validate(const Args& args) {
  if (args.positional.size() != 1) usage();
  const PolygonSet zones = read_polygon_tsv(args.positional[0]);
  int bad = 0;
  for (PolygonId z = 0; z < zones.size(); ++z) {
    const ValidationReport r = validate_polygon(zones[z]);
    if (r.ok()) continue;
    ++bad;
    std::printf("%s:", zones.name(z).c_str());
    if (r.has_duplicate_vertices) std::printf(" duplicate-vertices");
    if (r.has_self_intersection) std::printf(" self-intersection");
    if (r.has_ring_crossing) std::printf(" ring-crossing");
    if (r.has_degenerate_ring) std::printf(" degenerate-ring");
    std::printf("\n");
    for (const std::string& note : r.notes) {
      std::printf("  %s\n", note.c_str());
    }
  }
  std::fprintf(stderr, "%zu zones checked, %d with defects\n",
               zones.size(), bad);
  return bad == 0 ? 0 : 1;
}

int cmd_catalog(const Args& args) {
  if (args.positional.size() != 1) usage();
  const Catalog catalog = open_catalog(args.positional[0]);
  Device device;
  Timer timer;
  const CatalogRunResult r = run_catalog(
      device, catalog, {.tile_size = args.tile, .bins = args.bins},
      !args.eager);
  std::fprintf(stderr,
               "%zu rasters, %.1f MB read, %.2f s (%s pipeline)\n",
               r.rasters_processed,
               static_cast<double>(r.bytes_read) / 1e6, timer.seconds(),
               args.eager ? "eager" : "filter-first");
  if (!args.out.empty()) {
    write_histogram_csv(args.out, r.per_polygon);
    std::fprintf(stderr, "wrote %s\n", args.out.c_str());
  } else {
    const PolygonSet zones = read_polygon_tsv(catalog.zones_path());
    std::printf("%-16s %12s %7s %7s %10s\n", "zone", "cells", "min",
                "max", "mean");
    for (PolygonId z = 0; z < zones.size(); ++z) {
      const ZonalStats s = stats_from_histogram(r.per_polygon.of(z));
      std::printf("%-16s %12llu %7u %7u %10.2f\n",
                  zones.name(z).c_str(),
                  static_cast<unsigned long long>(s.count), s.min, s.max,
                  s.mean);
    }
  }
  return 0;
}

// Batch spec (parsed with the strict obs JSON reader):
//   {"tile": 360,                      // optional, cache-key tile size
//    "cache_budget_mb": 256,           // optional, overridden by flag
//    "queries": [{"raster": "dem.zgrid", "zones": "zones.tsv",
//                 "bins": 100, "out": "q0.csv"}, ...]}
// Rasters and zone layers are deduplicated by path, so repeated paths
// load once and queries against the same raster share cache entries.
int cmd_query(const Args& args) {
  if (args.batch.empty() || !args.positional.empty()) usage();
  const bool with_obs = setup_obs(args);
  std::optional<obs::MetricsServer> metrics_server;
  start_metrics_server(args, metrics_server);
  const obs::JsonValue spec = obs::parse_json_file(args.batch);
  ZH_REQUIRE(spec.is_object(), "batch spec must be a JSON object: ",
             args.batch);
  const obs::JsonValue* queries = spec.find("queries");
  ZH_REQUIRE(queries != nullptr && queries->is_array() &&
                 !queries->arr.empty(),
             "batch spec needs a non-empty \"queries\" array");

  QueryEngineConfig cfg;
  cfg.tile_size = args.tile;
  if (const obs::JsonValue* t = spec.find("tile");
      t != nullptr && t->is_number()) {
    cfg.tile_size = static_cast<std::int64_t>(t->number);
  }
  std::size_t budget_mb = args.cache_budget_mb;
  if (const obs::JsonValue* b = spec.find("cache_budget_mb");
      b != nullptr && b->is_number()) {
    budget_mb = static_cast<std::size_t>(b->number);
  }
  cfg.cache.budget_bytes = budget_mb << 20;

  // Load each distinct path once. Deques keep element addresses stable
  // as they grow; the engine and queries hold pointers into them.
  std::deque<DemRaster> rasters;
  std::deque<PolygonSet> zone_layers;
  std::map<std::string, RasterHandle> raster_by_path;
  std::map<std::string, const PolygonSet*> zones_by_path;

  Device device;
  QueryEngine engine(device, cfg);
  struct QuerySpec {
    ZonalQuery query;
    std::string out;
  };
  std::vector<QuerySpec> plan;
  plan.reserve(queries->arr.size());
  for (std::size_t i = 0; i < queries->arr.size(); ++i) {
    const obs::JsonValue& q = queries->arr[i];
    ZH_REQUIRE(q.is_object(), "query ", i, " must be a JSON object");
    const obs::JsonValue* raster = q.find("raster");
    const obs::JsonValue* zones = q.find("zones");
    ZH_REQUIRE(raster != nullptr && raster->is_string(), "query ", i,
               " needs a \"raster\" path");
    ZH_REQUIRE(zones != nullptr && zones->is_string(), "query ", i,
               " needs a \"zones\" path");
    QuerySpec qs;
    if (const auto it = raster_by_path.find(raster->str);
        it != raster_by_path.end()) {
      qs.query.raster = it->second;
    } else {
      rasters.push_back(load_raster(raster->str));
      qs.query.raster = engine.add_raster(rasters.back());
      raster_by_path.emplace(raster->str, qs.query.raster);
    }
    if (const auto it = zones_by_path.find(zones->str);
        it != zones_by_path.end()) {
      qs.query.zones = it->second;
    } else {
      zone_layers.push_back(read_polygon_tsv(zones->str));
      qs.query.zones = &zone_layers.back();
      zones_by_path.emplace(zones->str, qs.query.zones);
    }
    qs.query.bins = args.bins;
    if (const obs::JsonValue* bins = q.find("bins");
        bins != nullptr && bins->is_number()) {
      qs.query.bins = static_cast<BinIndex>(bins->number);
    }
    if (const obs::JsonValue* out = q.find("out");
        out != nullptr && out->is_string()) {
      qs.out = out->str;
      require_writable(qs.out);
    }
    plan.push_back(std::move(qs));
  }

  std::fprintf(stderr,
               "batch: %zu queries, %zu rasters, %zu zone layers, "
               "tile %lld, cache %zu MB\n",
               plan.size(), rasters.size(), zone_layers.size(),
               static_cast<long long>(cfg.tile_size), budget_mb);

  Timer timer;
  StepTimes total_times;
  WorkCounters total_work;
  for (std::size_t i = 0; i < plan.size(); ++i) {
    const QueryResult r = engine.run(plan[i].query);
    for (std::size_t st = 0; st < StepTimes::kSteps; ++st) {
      total_times.seconds[st] += r.times.seconds[st];
    }
    total_work += r.work;
    std::fprintf(stderr,
                 "query %zu: %zu zones, step1 %.3f s, cache %llu hit / "
                 "%llu miss\n",
                 i, r.per_polygon.groups(), r.times.seconds[1],
                 static_cast<unsigned long long>(r.cache_hits),
                 static_cast<unsigned long long>(r.cache_misses));
    if (!plan[i].out.empty()) {
      write_histogram_csv(plan[i].out, r.per_polygon);
      std::fprintf(stderr, "wrote %s\n", plan[i].out.c_str());
    }
  }
  const TileCacheStats stats = engine.cache_stats();
  std::fprintf(stderr,
               "batch done: %.2f s; cache %llu hits, %llu misses, "
               "%llu fills, %llu evictions, %.1f MB resident\n",
               timer.seconds(),
               static_cast<unsigned long long>(stats.hits),
               static_cast<unsigned long long>(stats.misses),
               static_cast<unsigned long long>(stats.fills),
               static_cast<unsigned long long>(stats.evictions),
               static_cast<double>(stats.bytes) / (1024.0 * 1024.0));

  if (with_obs) {
    obs::RunReport report;
    report.tool = "zhist query";
    report.workload = args.batch;
    report.config = {
        {"queries", std::to_string(plan.size())},
        {"rasters", std::to_string(rasters.size())},
        {"zone_layers", std::to_string(zone_layers.size())},
        {"tile", std::to_string(cfg.tile_size)},
        {"cache_budget_mb", std::to_string(budget_mb)},
    };
    report.times = total_times;
    report.has_times = true;
    append_work_counters(report, total_work);
    report.counters.emplace_back("cache.hits", stats.hits);
    report.counters.emplace_back("cache.misses", stats.misses);
    report.counters.emplace_back("cache.fills", stats.fills);
    report.counters.emplace_back("cache.evictions", stats.evictions);
    report.counters.emplace_back("cache.bytes", stats.bytes);
    finish_obs(args, report);
  }
  linger_metrics(args, metrics_server);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  const std::string cmd = argv[1];
  try {
    const Args args = parse(argc, argv);
    if (cmd == "hist") return cmd_hist(args);
    if (cmd == "encode") return cmd_encode(args);
    if (cmd == "decode") return cmd_decode(args);
    if (cmd == "render") return cmd_render(args);
    if (cmd == "synth") return cmd_synth(args);
    if (cmd == "zones") return cmd_zones(args);
    if (cmd == "points") return cmd_points(args);
    if (cmd == "simplify") return cmd_simplify(args);
    if (cmd == "validate") return cmd_validate(args);
    if (cmd == "catalog") return cmd_catalog(args);
    if (cmd == "query") return cmd_query(args);
  } catch (const zh::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    // std::stoul and friends throw std:: exceptions on malformed flag
    // values; fail with one line instead of std::terminate.
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  usage();
}
