// validate_obs: schema checker for the observability outputs.
//
//   validate_obs trace <file> [--min-coverage PCT]
//     Chrome trace_event JSON: structural check of every event ("X"
//     spans plus "s"/"f" flow-edge ends, which need a positive id),
//     then a coverage check -- the union of all other "X" spans clipped
//     to the longest span's window must cover at least PCT (default 95)
//     percent of it. Catches both malformed traces and instrumentation
//     gaps (a pipeline phase nobody wrapped in a span).
//   validate_obs metrics <file> [--require-ranks N]
//     zh-run-report-v1 JSON: schema + required keys; with
//     --require-ranks, the per-rank table must exist and have N rows.
//     Counters in validated families (journal.*, step4.*, comm.*) must
//     come from the known-key inventory -- a typo'd or renamed counter
//     fails instead of passing unvalidated. The metrics section gets
//     the same treatment for the latency.* and serve.* families, plus
//     per-kind field checks (a latency metric must carry its quantile
//     summary, a counter its value).
//   validate_obs prom <file> [--require-name NAME]...
//     Prometheus text exposition (what GET /metrics serves): runs the
//     format linter (HELP/TYPE present, legal metric names, well-formed
//     labels and values, no duplicate series) and, per --require-name,
//     asserts a sample with that exact series name (label set included
//     when given) is present.
//
// Exits 0 when valid, 1 with a one-line reason otherwise (CI asserts on
// the exit code and shows the reason in the log).
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "obs/exposition.hpp"
#include "obs/json.hpp"

namespace {

using zh::obs::JsonValue;

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  validate_obs trace <file> [--min-coverage PCT]\n"
               "  validate_obs metrics <file> [--require-ranks N]\n"
               "  validate_obs prom <file> [--require-name NAME]...\n");
  std::exit(2);
}

int fail(const std::string& why) {
  std::fprintf(stderr, "validate_obs: %s\n", why.c_str());
  return 1;
}

const JsonValue* need(const JsonValue& obj, const char* key) {
  if (!obj.is_object()) return nullptr;
  return obj.find(key);
}

bool is_finite_number(const JsonValue* v) {
  return v != nullptr && v->is_number();
}

int check_trace(const std::string& path, double min_coverage_pct) {
  const JsonValue doc = zh::obs::parse_json_file(path);
  const JsonValue* events = need(doc, "traceEvents");
  if (events == nullptr || !events->is_array()) {
    return fail("missing traceEvents array");
  }

  struct Interval {
    double begin;
    double end;
  };
  std::vector<Interval> spans;
  std::size_t complete_events = 0;
  std::size_t flow_events = 0;
  for (std::size_t i = 0; i < events->arr.size(); ++i) {
    const JsonValue& e = events->arr[i];
    const JsonValue* ph = need(e, "ph");
    const JsonValue* name = need(e, "name");
    if (ph == nullptr || !ph->is_string() || name == nullptr ||
        !name->is_string()) {
      return fail("event " + std::to_string(i) + ": missing ph/name");
    }
    if (!is_finite_number(need(e, "pid"))) {
      return fail("event " + std::to_string(i) + ": missing pid");
    }
    if (ph->str == "M") continue;  // process_name metadata (no tid)
    if (!is_finite_number(need(e, "tid"))) {
      return fail("event " + std::to_string(i) + ": missing tid");
    }
    if (ph->str == "s" || ph->str == "f") {
      // Flow-edge ends (comm send -> recv). Chrome binds them by id, so
      // a missing or zero id silently detaches the arrow -- fail loudly.
      const JsonValue* id = need(e, "id");
      const JsonValue* ts = need(e, "ts");
      if (!is_finite_number(id) || id->number <= 0) {
        return fail("event " + std::to_string(i) + ": flow \"" + ph->str +
                    "\" without positive id");
      }
      if (!is_finite_number(ts) || ts->number < 0) {
        return fail("event " + std::to_string(i) + ": flow event bad ts");
      }
      ++flow_events;
      continue;
    }
    if (ph->str != "X") {
      return fail("event " + std::to_string(i) + ": unexpected ph \"" +
                  ph->str + "\"");
    }
    const JsonValue* ts = need(e, "ts");
    const JsonValue* dur = need(e, "dur");
    if (!is_finite_number(ts) || !is_finite_number(dur) || ts->number < 0 ||
        dur->number < 0) {
      return fail("event " + std::to_string(i) + ": bad ts/dur");
    }
    ++complete_events;
    spans.push_back({ts->number, ts->number + dur->number});
  }
  if (complete_events == 0) return fail("no complete (\"X\") events");

  // Coverage: the longest span is the run's root (e.g. pipeline.run);
  // every other span, clipped to its window, must jointly cover most of
  // it -- otherwise some phase of the run is uninstrumented.
  std::size_t root = 0;
  for (std::size_t i = 1; i < spans.size(); ++i) {
    if (spans[i].end - spans[i].begin > spans[root].end - spans[root].begin) {
      root = i;
    }
  }
  const Interval window = spans[root];
  const double window_us = window.end - window.begin;
  std::vector<Interval> clipped;
  for (std::size_t i = 0; i < spans.size(); ++i) {
    if (i == root) continue;
    const double b = std::max(spans[i].begin, window.begin);
    const double e = std::min(spans[i].end, window.end);
    if (e > b) clipped.push_back({b, e});
  }
  std::sort(clipped.begin(), clipped.end(),
            [](const Interval& a, const Interval& b) {
              return a.begin < b.begin;
            });
  double covered_us = 0.0;
  double cursor = window.begin;
  for (const Interval& s : clipped) {
    const double b = std::max(s.begin, cursor);
    if (s.end > b) {
      covered_us += s.end - b;
      cursor = s.end;
    }
  }
  const double pct =
      window_us > 0.0 ? 100.0 * covered_us / window_us : 100.0;
  std::printf("validate_obs: trace ok: %zu spans, %zu flow ends, coverage "
              "%.1f%% of the %.0f us root span\n",
              complete_events, flow_events, pct, window_us);
  if (pct < min_coverage_pct) {
    return fail("span coverage " + std::to_string(pct) +
                "% below required " + std::to_string(min_coverage_pct) + "%");
  }
  return 0;
}

int check_metrics(const std::string& path, long require_ranks) {
  const JsonValue doc = zh::obs::parse_json_file(path);
  const JsonValue* schema = need(doc, "schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->str != "zh-run-report-v1") {
    return fail("schema is not zh-run-report-v1");
  }
  for (const char* key : {"tool", "git_sha"}) {
    const JsonValue* v = need(doc, key);
    if (v == nullptr || !v->is_string() || v->str.empty()) {
      return fail(std::string("missing string field \"") + key + "\"");
    }
  }
  const JsonValue* times = need(doc, "times_s");
  if (times != nullptr) {
    for (const char* key :
         {"step0", "step1", "step2", "step3", "step4", "overhead_transfer",
          "overhead_merge", "overhead_output", "step_total", "end_to_end"}) {
      if (!is_finite_number(need(*times, key))) {
        return fail(std::string("times_s missing \"") + key + "\"");
      }
    }
  }
  const JsonValue* counters = need(doc, "counters");
  if (counters != nullptr && !counters->is_object()) {
    return fail("counters is not an object");
  }
  if (counters != nullptr) {
    // Validated families: every counter the code emits under these
    // prefixes is listed here, so a typo'd or renamed counter fails
    // instead of slipping through as a new unvalidated key. Families
    // not listed (step1.*, lazy.*, ...) stay open for growth.
    static const char* const kKnownCounters[] = {
        "journal.resume_ms",       "journal.torn_bytes",
        "journal.records_written", "journal.partitions_skipped",
        "step4.edge_index_entries", "step4.pip_cell_tests",
        "step4.pip_edge_tests",    "step4.cells_counted",
        "step4.rows_scanned",      "step4.edges_in_band",
        "step4.run_cells",
        "comm.msgs_sent",          "comm.bytes_sent",
        "comm.retries",            "comm.msgs_recovered",
        "cache.hits",              "cache.misses",
        "cache.fills",             "cache.evictions",
        "cache.bytes",
    };
    static const char* const kValidatedFamilies[] = {"journal.", "step4.",
                                                     "comm.", "cache."};
    for (const auto& [name, value] : counters->obj) {
      bool in_family = false;
      for (const char* prefix : kValidatedFamilies) {
        if (name.rfind(prefix, 0) == 0) in_family = true;
      }
      if (!in_family) continue;
      bool known = false;
      for (const char* key : kKnownCounters) {
        if (name == key) known = true;
      }
      if (!known) {
        return fail("counter \"" + name +
                    "\" not in the known-key inventory for its family");
      }
      if (!value.is_number() || value.number < 0) {
        return fail("counter \"" + name + "\" is not a non-negative number");
      }
    }
  }
  const JsonValue* metrics = need(doc, "metrics");
  if (metrics != nullptr) {
    if (!metrics->is_object()) return fail("metrics is not an object");
    // Same known-key discipline as the counters section, applied to the
    // metric families the telemetry subsystem emits. latency.* names
    // must render as latency summaries (count + quantiles), serve.* as
    // scalar counters/gauges -- a metric that changed kind or name
    // fails here rather than silently vanishing from dashboards.
    static const char* const kKnownLatency[] = {
        "latency.query",     "latency.step1",
        "latency.step2",     "latency.step3",
        "latency.step4",     "latency.partition",
        "latency.journal_fsync",
    };
    static const char* const kKnownServe[] = {
        "serve.http_requests", "serve.http_errors",
        "serve.scrapes",       "serve.open_connections",
    };
    for (const auto& [name, m] : metrics->obj) {
      const JsonValue* kind = need(m, "kind");
      if (kind == nullptr || !kind->is_string()) {
        return fail("metric \"" + name + "\" has no kind");
      }
      const bool is_latency_family = name.rfind("latency.", 0) == 0;
      const bool is_serve_family = name.rfind("serve.", 0) == 0;
      if (is_latency_family) {
        bool known = false;
        for (const char* key : kKnownLatency) {
          if (name == key) known = true;
        }
        if (!known) {
          return fail("metric \"" + name +
                      "\" not in the latency.* known-key inventory");
        }
        if (kind->str != "latency") {
          return fail("metric \"" + name + "\" has kind \"" + kind->str +
                      "\", expected \"latency\"");
        }
      }
      if (is_serve_family) {
        bool known = false;
        for (const char* key : kKnownServe) {
          if (name == key) known = true;
        }
        if (!known) {
          return fail("metric \"" + name +
                      "\" not in the serve.* known-key inventory");
        }
        if (kind->str != "counter" && kind->str != "gauge_set") {
          return fail("metric \"" + name + "\" has kind \"" + kind->str +
                      "\", expected counter or gauge_set");
        }
      }
      if (kind->str == "latency") {
        for (const char* key :
             {"count", "sum", "min", "max", "p50", "p95", "p99"}) {
          if (!is_finite_number(need(m, key))) {
            return fail("latency metric \"" + name + "\" missing \"" + key +
                        "\"");
          }
        }
      } else if (kind->str == "stat") {
        for (const char* key : {"count", "sum", "min", "max"}) {
          if (!is_finite_number(need(m, key))) {
            return fail("stat metric \"" + name + "\" missing \"" + key +
                        "\"");
          }
        }
      } else {
        if (!is_finite_number(need(m, "value"))) {
          return fail("metric \"" + name + "\" missing \"value\"");
        }
      }
    }
  }
  const JsonValue* ranks = need(doc, "ranks");
  if (require_ranks >= 0) {
    if (ranks == nullptr) return fail("ranks table required but absent");
    const JsonValue* columns = need(*ranks, "columns");
    const JsonValue* rows = need(*ranks, "rows");
    if (columns == nullptr || !columns->is_array() || rows == nullptr ||
        !rows->is_array()) {
      return fail("ranks table missing columns/rows");
    }
    if (rows->arr.size() != static_cast<std::size_t>(require_ranks)) {
      return fail("ranks table has " + std::to_string(rows->arr.size()) +
                  " rows, expected " + std::to_string(require_ranks));
    }
    for (const JsonValue& row : rows->arr) {
      if (!row.is_array() || row.arr.size() != columns->arr.size()) {
        return fail("rank row width does not match columns");
      }
    }
  }
  std::printf("validate_obs: metrics ok (%s)\n", path.c_str());
  return 0;
}

int check_prom(const std::string& path,
               const std::vector<std::string>& require_names) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return fail("cannot open exposition file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();

  const std::vector<std::string> problems = zh::obs::lint_exposition(text);
  if (!problems.empty()) {
    for (const std::string& p : problems) {
      std::fprintf(stderr, "validate_obs: prom lint: %s\n", p.c_str());
    }
    return fail("exposition failed the format linter (" +
                std::to_string(problems.size()) + " problem(s))");
  }

  // --require-name NAME matches a sample line by prefix, so a bare
  // family name matches any of its series and a name with a label
  // prefix (e.g. zh_query_latency_seconds{quantile="0.99") pins the
  // exact series CI cares about.
  std::size_t samples = 0;
  for (const std::string& want : require_names) {
    bool found = false;
    std::istringstream lines(text);
    std::string line;
    while (std::getline(lines, line)) {
      if (line.empty() || line[0] == '#') continue;
      if (line.rfind(want, 0) == 0) {
        found = true;
        break;
      }
    }
    if (!found) {
      return fail("required series \"" + want + "\" absent from exposition");
    }
  }
  {
    std::istringstream lines(text);
    std::string line;
    while (std::getline(lines, line)) {
      if (!line.empty() && line[0] != '#') ++samples;
    }
  }
  std::printf("validate_obs: prom ok: %zu samples, %zu required series "
              "present (%s)\n",
              samples, require_names.size(), path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) usage();
  const std::string mode = argv[1];
  const std::string path = argv[2];
  double min_coverage = 95.0;
  long require_ranks = -1;
  std::vector<std::string> require_names;
  for (int i = 3; i < argc; ++i) {
    if (std::strcmp(argv[i], "--min-coverage") == 0 && i + 1 < argc) {
      min_coverage = std::stod(argv[++i]);
    } else if (std::strcmp(argv[i], "--require-ranks") == 0 && i + 1 < argc) {
      require_ranks = std::stol(argv[++i]);
    } else if (std::strcmp(argv[i], "--require-name") == 0 && i + 1 < argc) {
      require_names.emplace_back(argv[++i]);
    } else {
      usage();
    }
  }
  try {
    if (mode == "trace") return check_trace(path, min_coverage);
    if (mode == "metrics") return check_metrics(path, require_ranks);
    if (mode == "prom") return check_prom(path, require_names);
  } catch (const zh::Error& e) {
    return fail(e.what());
  } catch (const std::exception& e) {
    return fail(e.what());
  }
  usage();
}
