// zh-lint driver: walk the tree, lex, run rules, apply and audit
// suppressions, render the JSON report.
#include <algorithm>
#include <cstdio>
#include <map>
#include <set>
#include <sstream>
#include <tuple>

#include "lint.hpp"

namespace zh::lint {
namespace {

const char* kSuppressionRule = "suppression-audit";

struct RuleDoc {
  const char* id;
  const char* doc;
};

constexpr RuleDoc kRules[] = {
    {"layering",
     "src/ modules may include only strictly lower layers of the DAG "
     "documented in DESIGN.md §7"},
    {"include-cycle", "no file-level include cycles within src/"},
    {"discarded-status",
     "Status-returning comm calls must not be discarded (or (void)-cast)"},
    {"index-width",
     "cell/tile index products must not be computed in 32-bit arithmetic"},
    {"naked-new", "no naked new/delete in src/; ownership is RAII"},
    {"raw-mutex-lock",
     "no manual mutex .lock()/.unlock() in src/; use lock_guard/unique_lock"},
    {"stdio-in-lib",
     "no printf/cout/stderr writes in src/; tools and bench own the "
     "terminal"},
    {"switch-enum",
     "switches over project enums are exhaustive or carry a default"},
    {"pragma-once", "every src/ header carries #pragma once"},
    {"suppression-audit",
     "zh-lint-ignore comments must name a rule, give a reason, and still "
     "suppress something"},
    {"nolint-audit",
     "clang-tidy NOLINT comments must be scoped (check-id) and justified"},
};

bool skip_dir(const std::string& name) {
  return name == "lint_fixtures" || name.rfind("build", 0) == 0 ||
         (!name.empty() && name[0] == '.');
}

std::vector<SourceFile> collect(const std::filesystem::path& root) {
  namespace fs = std::filesystem;
  const fs::path src = root / "src";
  std::vector<fs::path> paths;
  if (fs::exists(src)) {
    fs::recursive_directory_iterator it(src), end;
    while (it != end) {
      if (it->is_directory() && skip_dir(it->path().filename().string())) {
        it.disable_recursion_pending();
        ++it;
        continue;
      }
      if (it->is_regular_file()) {
        const std::string ext = it->path().extension().string();
        if (ext == ".hpp" || ext == ".cpp") paths.push_back(it->path());
      }
      ++it;
    }
  }
  std::sort(paths.begin(), paths.end());
  std::vector<SourceFile> files;
  files.reserve(paths.size());
  for (const fs::path& p : paths) {
    std::string rel = fs::relative(p, root).generic_string();
    files.push_back(lex_file(p, std::move(rel)));
  }
  return files;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace

const std::vector<std::string>& rule_ids() {
  static const std::vector<std::string> ids = [] {
    std::vector<std::string> v;
    for (const RuleDoc& r : kRules) v.emplace_back(r.id);
    return v;
  }();
  return ids;
}

std::string rule_description(const std::string& id) {
  for (const RuleDoc& r : kRules) {
    if (id == r.id) return r.doc;
  }
  return "";
}

LintResult run_lint(const std::filesystem::path& root) {
  const std::vector<SourceFile> files = collect(root);

  std::vector<Finding> raw;
  detail::rule_layering(files, raw);
  detail::rule_include_cycle(files, raw);
  detail::rule_switch_enum(files, raw);
  for (const SourceFile& f : files) {
    detail::rule_discarded_status(f, raw);
    detail::rule_index_width(f, raw);
    detail::rule_naked_new(f, raw);
    detail::rule_raw_mutex_lock(f, raw);
    detail::rule_stdio_in_lib(f, raw);
    detail::rule_pragma_once(f, raw);
    detail::rule_nolint_audit(f, raw);
  }

  // Apply suppressions: `// zh-lint-ignore(rule): reason` silences that
  // rule on its own line and on the line directly below (so a
  // comment-only line annotates the statement under it). The
  // suppression-audit rule itself is not suppressible.
  LintResult result;
  result.files_scanned = files.size();
  std::map<std::string, std::vector<SuppressionNote>> notes;
  for (const SourceFile& f : files) notes[f.rel] = f.suppressions;
  for (Finding& fd : raw) {
    bool suppressed = false;
    auto it = notes.find(fd.file);
    if (it != notes.end()) {
      for (SuppressionNote& n : it->second) {
        if (n.rule == fd.rule &&
            (n.line == fd.line || n.line + 1 == fd.line)) {
          n.used = true;
          suppressed = true;
        }
      }
    }
    if (!suppressed) result.findings.push_back(std::move(fd));
  }

  // Audit the suppression set.
  const std::set<std::string> known(rule_ids().begin(), rule_ids().end());
  for (auto& [file, file_notes] : notes) {
    for (const SuppressionNote& n : file_notes) {
      if (n.rule.empty()) {
        result.findings.push_back(
            {file, n.line, kSuppressionRule,
             "zh-lint-ignore must name a rule: zh-lint-ignore(rule-id): "
             "reason"});
        continue;
      }
      if (known.count(n.rule) == 0) {
        result.findings.push_back({file, n.line, kSuppressionRule,
                                   "zh-lint-ignore names unknown rule '" +
                                       n.rule + "'"});
        continue;
      }
      if (!n.has_reason) {
        result.findings.push_back(
            {file, n.line, kSuppressionRule,
             "zh-lint-ignore(" + n.rule +
                 ") has no reason; a suppression documents *why* the site "
                 "is exempt"});
      }
      if (!n.used) {
        result.findings.push_back(
            {file, n.line, kSuppressionRule,
             "stale suppression: no '" + n.rule +
                 "' finding on this or the next line -- delete it"});
      } else {
        ++result.suppressions_used;
      }
    }
  }

  std::sort(result.findings.begin(), result.findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule, a.message) <
                     std::tie(b.file, b.line, b.rule, b.message);
            });

  std::map<std::string, std::size_t> counts;
  for (const Finding& fd : result.findings) ++counts[fd.rule];
  for (const std::string& id : rule_ids()) {
    result.per_rule.push_back({id, counts[id]});
  }
  return result;
}

std::string report_json(const LintResult& result, const std::string& root) {
  std::ostringstream out;
  out << "{\"schema\":\"zh-lint-report-v1\",\"tool\":\"zh-lint\",\"root\":\""
      << json_escape(root) << "\",\"files_scanned\":" << result.files_scanned
      << ",\"findings_total\":" << result.findings.size()
      << ",\"suppressions_used\":" << result.suppressions_used
      << ",\"rules\":[";
  for (std::size_t i = 0; i < result.per_rule.size(); ++i) {
    if (i) out << ",";
    out << "{\"id\":\"" << json_escape(result.per_rule[i].rule)
        << "\",\"findings\":" << result.per_rule[i].findings << "}";
  }
  out << "],\"findings\":[";
  for (std::size_t i = 0; i < result.findings.size(); ++i) {
    const Finding& f = result.findings[i];
    if (i) out << ",";
    out << "{\"file\":\"" << json_escape(f.file) << "\",\"line\":" << f.line
        << ",\"rule\":\"" << json_escape(f.rule) << "\",\"message\":\""
        << json_escape(f.message) << "\"}";
  }
  out << "]}\n";
  return out.str();
}

}  // namespace zh::lint
