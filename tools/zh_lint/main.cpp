// zh-lint CLI.
//
//   zh-lint <repo-root> [--json <path>] [--list-rules]
//
// Prints findings one-per-line as `file:line: rule-id: message` (the
// format .github/zh-lint-matcher.json turns into GitHub annotations) and
// exits 0 when the tree is clean, 1 when there are findings, 2 on usage
// or I/O errors.
#include <cstdio>
#include <exception>
#include <filesystem>
#include <fstream>
#include <string>

#include "lint.hpp"

namespace {

int usage(std::FILE* to) {
  std::fprintf(to,
               "usage: zh-lint <repo-root> [--json <path>] [--list-rules]\n"
               "  <repo-root>   tree containing src/ (rules are scoped to "
               "src/)\n"
               "  --json PATH   also write a zh-lint-report-v1 JSON report\n"
               "  --list-rules  print every rule id with its contract\n");
  return to == stdout ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root;
  std::string json_path;
  bool list_rules = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") return usage(stdout);
    if (arg == "--list-rules") {
      list_rules = true;
    } else if (arg == "--json") {
      if (i + 1 >= argc) return usage(stderr);
      json_path = argv[++i];
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "zh-lint: unknown option '%s'\n", arg.c_str());
      return usage(stderr);
    } else if (root.empty()) {
      root = arg;
    } else {
      return usage(stderr);
    }
  }
  if (list_rules) {
    for (const std::string& id : zh::lint::rule_ids()) {
      std::printf("%-18s %s\n", id.c_str(),
                  zh::lint::rule_description(id).c_str());
    }
    return 0;
  }
  if (root.empty()) return usage(stderr);
  // A missing root (e.g. a typo'd CI path) must fail loudly, not pass as
  // a 0-file "clean" tree.
  if (std::error_code ec;
      !std::filesystem::is_directory(std::filesystem::path(root) / "src",
                                     ec)) {
    std::fprintf(stderr, "zh-lint: '%s' has no src/ directory to scan\n",
                 root.c_str());
    return 2;
  }

  try {
    const zh::lint::LintResult result = zh::lint::run_lint(root);
    for (const zh::lint::Finding& f : result.findings) {
      std::printf("%s:%zu: %s: %s\n", f.file.c_str(), f.line, f.rule.c_str(),
                  f.message.c_str());
    }
    if (!json_path.empty()) {
      std::ofstream out(json_path, std::ios::binary);
      if (!out) {
        std::fprintf(stderr, "zh-lint: cannot write %s\n", json_path.c_str());
        return 2;
      }
      out << zh::lint::report_json(result, root);
    }
    std::fprintf(stderr,
                 "zh-lint: %zu finding%s in %zu files "
                 "(%zu suppression%s honoured)\n",
                 result.findings.size(),
                 result.findings.size() == 1 ? "" : "s", result.files_scanned,
                 result.suppressions_used,
                 result.suppressions_used == 1 ? "" : "s");
    return result.findings.empty() ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "zh-lint: %s\n", e.what());
    return 2;
  }
}
