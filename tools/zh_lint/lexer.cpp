// Lexing for zh-lint: strip comments and string/char literal bodies while
// keeping line structure, record comment text per line (suppression and
// NOLINT audits read it), extract quoted includes, and tokenize the
// stripped code. One deliberate asymmetry: preprocessor lines keep their
// string bodies (so `#include "common/types.hpp"` stays extractable) but
// are excluded from the token stream (so macro bodies never look like
// discarded statements to the statement-shaped rules).
#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "lint.hpp"

namespace zh::lint {
namespace {

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// A line belongs to the preprocessor if it starts with '#' (after
/// whitespace) or continues a previous preprocessor line via '\'.
bool starts_preprocessor(const std::string& code) {
  for (char c : code) {
    if (c == ' ' || c == '\t') continue;
    return c == '#';
  }
  return false;
}

struct Stripper {
  std::vector<std::string> code;     // per line
  std::vector<std::string> comment;  // per line

  void run(const std::string& text) {
    enum class State {
      kNormal,
      kLineComment,
      kBlockComment,
      kString,
      kChar,
      kRawString,
    };
    State state = State::kNormal;
    std::string raw_delim;  // for kRawString: the ")delim" terminator
    bool preprocessor = false;
    bool continuation = false;  // previous line ended with backslash

    std::string cur_code;
    std::string cur_comment;
    auto flush_line = [&] {
      continuation = !cur_code.empty() && cur_code.back() == '\\';
      code.push_back(std::move(cur_code));
      comment.push_back(std::move(cur_comment));
      cur_code.clear();
      cur_comment.clear();
    };

    const std::size_t n = text.size();
    for (std::size_t i = 0; i < n; ++i) {
      const char c = text[i];
      const char next = i + 1 < n ? text[i + 1] : '\0';
      if (c == '\n') {
        if (state == State::kLineComment) state = State::kNormal;
        // Unterminated string/char at end of line: reset rather than
        // poison the rest of the file (the compiler rejects it anyway).
        if (state == State::kString || state == State::kChar) {
          state = State::kNormal;
        }
        flush_line();
        preprocessor = false;
        continue;
      }
      switch (state) {
        case State::kNormal: {
          if (cur_code.empty() && !continuation) {
            preprocessor = false;  // recomputed as the line fills in
          }
          if (c == '/' && next == '/') {
            state = State::kLineComment;
            ++i;
            continue;
          }
          if (c == '/' && next == '*') {
            state = State::kBlockComment;
            ++i;
            continue;
          }
          if (c == 'R' && next == '"' &&
              (cur_code.empty() || !ident_char(cur_code.back()))) {
            // Raw string R"delim( ... )delim"
            std::size_t j = i + 2;
            std::string delim;
            while (j < n && text[j] != '(' && text[j] != '\n') {
              delim.push_back(text[j++]);
            }
            raw_delim = ")" + delim + "\"";
            cur_code += "\"\"";
            state = State::kRawString;
            i = j;  // at '(' (or newline, handled next iteration)
            continue;
          }
          if (c == '"') {
            preprocessor = starts_preprocessor(cur_code) || continuation;
            cur_code.push_back('"');
            if (preprocessor) {
              // Keep include paths readable on preprocessor lines.
              std::size_t j = i + 1;
              while (j < n && text[j] != '"' && text[j] != '\n') {
                cur_code.push_back(text[j++]);
              }
              if (j < n && text[j] == '"') {
                cur_code.push_back('"');
                i = j;
                continue;
              }
              i = j - 1;  // newline handles state
              continue;
            }
            state = State::kString;
            continue;
          }
          if (c == '\'') {
            // Digit separator (1'000) is not a char literal.
            const bool sep =
                !cur_code.empty() &&
                std::isalnum(static_cast<unsigned char>(cur_code.back())) !=
                    0 &&
                std::isalnum(static_cast<unsigned char>(next)) != 0;
            if (sep) {
              continue;  // drop the separator, keep lexing the number
            }
            cur_code.push_back('\'');
            state = State::kChar;
            continue;
          }
          cur_code.push_back(c);
          break;
        }
        case State::kLineComment:
          cur_comment.push_back(c);
          break;
        case State::kBlockComment:
          if (c == '*' && next == '/') {
            state = State::kNormal;
            ++i;
          } else {
            cur_comment.push_back(c);
          }
          break;
        case State::kString:
          if (c == '\\') {
            ++i;  // skip the escaped character
          } else if (c == '"') {
            cur_code.push_back('"');
            state = State::kNormal;
          }
          break;
        case State::kChar:
          if (c == '\\') {
            ++i;
          } else if (c == '\'') {
            cur_code.push_back('\'');
            state = State::kNormal;
          }
          break;
        case State::kRawString:
          if (c == ')' && text.compare(i, raw_delim.size(), raw_delim) == 0) {
            i += raw_delim.size() - 1;
            state = State::kNormal;
          }
          break;
      }
    }
    flush_line();  // last line (files without trailing newline)
  }
};

void tokenize(const std::vector<std::string>& code_lines,
              std::vector<Token>& out) {
  bool preprocessor = false;
  for (std::size_t li = 0; li < code_lines.size(); ++li) {
    const std::string& line = code_lines[li];
    const bool continued = preprocessor;  // previous line ended with '\'
    preprocessor =
        (starts_preprocessor(line) || continued) &&
        !line.empty() && line.back() == '\\';
    if (starts_preprocessor(line) || continued) continue;
    const std::size_t ln = li + 1;
    for (std::size_t i = 0; i < line.size();) {
      const char c = line[i];
      if (std::isspace(static_cast<unsigned char>(c)) != 0) {
        ++i;
        continue;
      }
      if (ident_char(c) && std::isdigit(static_cast<unsigned char>(c)) == 0) {
        std::size_t j = i;
        while (j < line.size() && ident_char(line[j])) ++j;
        out.push_back({TokKind::kIdent, line.substr(i, j - i), ln});
        i = j;
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
        std::size_t j = i;
        while (j < line.size() &&
               (ident_char(line[j]) || line[j] == '.')) {
          ++j;
        }
        out.push_back({TokKind::kNumber, line.substr(i, j - i), ln});
        i = j;
        continue;
      }
      // Multi-char punctuators the rules care about.
      if (c == ':' && i + 1 < line.size() && line[i + 1] == ':') {
        out.push_back({TokKind::kPunct, "::", ln});
        i += 2;
        continue;
      }
      if (c == '-' && i + 1 < line.size() && line[i + 1] == '>') {
        out.push_back({TokKind::kPunct, "->", ln});
        i += 2;
        continue;
      }
      out.push_back({TokKind::kPunct, std::string(1, c), ln});
      ++i;
    }
  }
}

void extract_includes(const std::vector<std::string>& code_lines,
                      std::vector<SourceFile::Include>& out) {
  for (std::size_t li = 0; li < code_lines.size(); ++li) {
    const std::string& line = code_lines[li];
    std::size_t p = line.find_first_not_of(" \t");
    if (p == std::string::npos || line[p] != '#') continue;
    p = line.find_first_not_of(" \t", p + 1);
    if (p == std::string::npos || line.compare(p, 7, "include") != 0) {
      continue;
    }
    const std::size_t open = line.find('"', p + 7);
    if (open == std::string::npos) continue;  // <...> system include
    const std::size_t close = line.find('"', open + 1);
    if (close == std::string::npos) continue;
    out.push_back({line.substr(open + 1, close - open - 1), li + 1});
  }
}

void extract_suppressions(const std::vector<std::string>& comment_lines,
                          std::vector<SuppressionNote>& out) {
  for (std::size_t li = 0; li < comment_lines.size(); ++li) {
    const std::string& text = comment_lines[li];
    const std::size_t at = text.find("zh-lint-ignore");
    if (at == std::string::npos) continue;
    SuppressionNote note;
    note.line = li + 1;
    std::size_t p = at + std::string("zh-lint-ignore").size();
    while (p < text.size() && text[p] == ' ') ++p;
    if (p < text.size() && text[p] == '(') {
      const std::size_t close = text.find(')', p);
      if (close != std::string::npos) {
        note.rule = text.substr(p + 1, close - p - 1);
        p = close + 1;
      }
    }
    // Reason: non-empty text after a ':' following the rule list.
    const std::size_t colon = text.find(':', p);
    if (colon != std::string::npos) {
      note.has_reason =
          text.find_first_not_of(" \t", colon + 1) != std::string::npos;
    }
    out.push_back(std::move(note));
  }
}

}  // namespace

SourceFile lex_file(const std::filesystem::path& abs, std::string rel) {
  std::ifstream in(abs, std::ios::binary);
  if (!in) {
    throw std::runtime_error("zh-lint: cannot read " + abs.string());
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();

  SourceFile f;
  f.rel = std::move(rel);
  f.is_header = f.rel.size() >= 4 &&
                f.rel.compare(f.rel.size() - 4, 4, ".hpp") == 0;
  // Module = first path component under src/ when the file sits in a
  // module directory; src/zh.hpp and files outside src/ get "".
  if (f.rel.rfind("src/", 0) == 0) {
    const std::size_t slash = f.rel.find('/', 4);
    if (slash != std::string::npos) {
      f.module_name = f.rel.substr(4, slash - 4);
    }
  }

  Stripper s;
  s.run(text);
  f.code_lines = std::move(s.code);
  f.comment_lines = std::move(s.comment);
  tokenize(f.code_lines, f.tokens);
  extract_includes(f.code_lines, f.includes);
  extract_suppressions(f.comment_lines, f.suppressions);
  return f;
}

}  // namespace zh::lint
