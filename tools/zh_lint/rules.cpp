// Rule implementations for zh-lint. Each rule appends raw findings; the
// driver (lint.cpp) applies suppressions afterwards, so rules never need
// to know about zh-lint-ignore comments.
#include <algorithm>
#include <map>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "lint.hpp"

namespace zh::lint::detail {
namespace {

// ---------------------------------------------------------------------------
// Layering. A module may include itself and strictly lower layers only.
// The ranks encode the architecture documented in DESIGN.md §7: common is
// the root; obs and device are infrastructure (everything is allowed to
// instrument); grid/primitives/geom are spatial foundations; bqtree,
// cluster and data build on them; core orchestrates; quadtree and io sit
// on top of core. tools/, bench/, tests/ and examples/ are above src/
// entirely and are not scanned.
const std::map<std::string, int>& layer_ranks() {
  static const std::map<std::string, int> ranks = {
      {"common", 0},  {"obs", 1},     {"device", 2},   {"grid", 3},
      {"primitives", 3}, {"geom", 4}, {"bqtree", 5},   {"cluster", 5},
      {"data", 5},    {"core", 6},    {"quadtree", 7}, {"io", 7},
  };
  return ranks;
}

std::string module_of_include(const std::string& path) {
  const std::size_t slash = path.find('/');
  return slash == std::string::npos ? std::string() : path.substr(0, slash);
}

bool is_index_name(const std::string& s) {
  static const std::regex re(
      "^n?_?(r|c|x|y|rows?|cols?|row0|col0|width|height|nx|ny|bins?|zones?|"
      "bands?|tiles?|cells?|stride|pitch|size|count|idx|index|offset)s?_?$");
  return std::regex_match(s, re);
}

/// Names that conventionally hold exclusive-scan results or group
/// offsets (the Fig.-4 pos_v/num_v arrays and kin). These index into
/// pair/cell arrays whose totals are size_t, so their element type must
/// be 64-bit.
bool is_scan_vector_name(const std::string& s) {
  static const std::regex re("^(num|pos|offsets?|scans?|prefix|starts?)(_v)?_?$");
  return std::regex_match(s, re);
}

bool is_narrow_type_name(const std::string& s) {
  static const std::set<std::string> narrow = {
      "int",      "unsigned", "short",    "int8_t",   "uint8_t",
      "int16_t",  "uint16_t", "int32_t",  "uint32_t",
      // Project typedefs that are deliberately 32-bit wide.
      "TileId",   "BinIndex", "BinCount", "RankId",   "PolygonId",
  };
  return narrow.count(s) != 0;
}

bool is_wide_type_name(const std::string& s) {
  static const std::set<std::string> wide = {
      "long",   "size_t",  "int64_t",  "uint64_t", "ptrdiff_t",
      "double", "float",   "BinCount64",
  };
  return wide.count(s) != 0;
}

/// Find the matching close token for tokens[open] (one of "(["{"),
/// returning the index past the whole group, or tokens.size() if
/// unbalanced.
std::size_t match_forward(const std::vector<Token>& toks, std::size_t open) {
  const std::string& o = toks[open].text;
  const std::string c = o == "(" ? ")" : o == "[" ? "]" : "}";
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    if (toks[i].text == o) ++depth;
    if (toks[i].text == c && --depth == 0) return i;
  }
  return toks.size();
}

/// Index of the matching open token for toks[close], or npos.
std::size_t match_backward(const std::vector<Token>& toks,
                           std::size_t close) {
  const std::string& c = toks[close].text;
  const std::string o = c == ")" ? "(" : c == "]" ? "[" : "{";
  int depth = 0;
  for (std::size_t i = close + 1; i-- > 0;) {
    if (toks[i].text == c) ++depth;
    if (toks[i].text == o && --depth == 0) return i;
  }
  return static_cast<std::size_t>(-1);
}

}  // namespace

// ---------------------------------------------------------------------------
void rule_layering(const std::vector<SourceFile>& files,
                   std::vector<Finding>& out) {
  const auto& ranks = layer_ranks();
  for (const SourceFile& f : files) {
    if (f.module_name.empty()) continue;  // src/zh.hpp: umbrella, top layer
    const auto self = ranks.find(f.module_name);
    if (self == ranks.end()) {
      out.push_back({f.rel, 1, "layering",
                     "module '" + f.module_name +
                         "' is not in the layer map; add it to "
                         "tools/zh_lint/rules.cpp and DESIGN.md §7"});
      continue;
    }
    for (const auto& inc : f.includes) {
      const std::string target = module_of_include(inc.path);
      if (target.empty()) {
        out.push_back({f.rel, inc.line, "layering",
                       "project include \"" + inc.path +
                           "\" must use the \"module/header.hpp\" form"});
        continue;
      }
      if (target == f.module_name) continue;  // intra-module: free
      const auto it = ranks.find(target);
      if (it == ranks.end()) {
        out.push_back({f.rel, inc.line, "layering",
                       "include \"" + inc.path + "\" targets unknown module '" +
                           target + "'"});
        continue;
      }
      if (it->second >= self->second) {
        std::ostringstream msg;
        msg << "upward include: '" << f.module_name << "' (layer "
            << self->second << ") must not include \"" << inc.path
            << "\" ('" << target << "', layer " << it->second
            << "); allowed targets are strictly lower layers";
        out.push_back({f.rel, inc.line, "layering", msg.str()});
      }
    }
  }
}

// ---------------------------------------------------------------------------
void rule_include_cycle(const std::vector<SourceFile>& files,
                        std::vector<Finding>& out) {
  // File-level include graph over src/ ("module/file.hpp" resolved
  // against src/). Layering already forbids cross-module upward edges;
  // this catches mutual inclusion inside a module, which #pragma once
  // turns into a silently half-empty header instead of a compile error.
  std::map<std::string, std::vector<std::pair<std::string, std::size_t>>> g;
  std::set<std::string> known;
  for (const SourceFile& f : files) known.insert(f.rel);
  for (const SourceFile& f : files) {
    for (const auto& inc : f.includes) {
      const std::string target = "src/" + inc.path;
      if (known.count(target) != 0) {
        g[f.rel].push_back({target, inc.line});
      }
    }
  }
  // Iterative DFS with colors; report each cycle once, at its
  // lexicographically-smallest member.
  std::map<std::string, int> color;  // 0 white, 1 grey, 2 black
  std::set<std::string> reported;
  for (const SourceFile& f : files) {
    if (color[f.rel] != 0) continue;
    std::vector<std::pair<std::string, std::size_t>> stack;  // node, edge idx
    stack.push_back({f.rel, 0});
    color[f.rel] = 1;
    while (!stack.empty()) {
      auto& [node, idx] = stack.back();
      const auto& edges = g[node];
      if (idx >= edges.size()) {
        color[node] = 2;
        stack.pop_back();
        continue;
      }
      const auto [next, line] = edges[idx++];
      if (color[next] == 1) {
        // Found a cycle: walk the stack back to `next`.
        std::vector<std::string> cycle;
        for (std::size_t i = stack.size(); i-- > 0;) {
          cycle.push_back(stack[i].first);
          if (stack[i].first == next) break;
        }
        std::reverse(cycle.begin(), cycle.end());
        const std::string smallest =
            *std::min_element(cycle.begin(), cycle.end());
        if (reported.insert(smallest).second) {
          std::ostringstream msg;
          msg << "include cycle: ";
          for (const std::string& m : cycle) msg << m << " -> ";
          msg << next;
          out.push_back({node, line, "include-cycle", msg.str()});
        }
        continue;
      }
      if (color[next] == 0) {
        color[next] = 1;
        stack.push_back({next, 0});
      }
    }
  }
}

// ---------------------------------------------------------------------------
void rule_discarded_status(const SourceFile& f, std::vector<Finding>& out) {
  // Calls whose result is a Status (or a value the protocol requires the
  // caller to consume) in the comm layer. Overload sets are resolved by
  // name: every overload of these is [[nodiscard]], so a discarded call
  // is wrong whichever overload the compiler picks. `barrier` alone is
  // special-cased: the zero-argument overload returns void.
  static const std::set<std::string> status_fns = {
      "recv_bytes", "recv_any", "recv",      "gather",
      "reduce_sum", "await",    "await_any", "barrier",
  };
  static const std::set<std::string> stmt_start = {";", "{", "}", ")", ":",
                                                   "else", "do"};
  const auto& toks = f.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent || status_fns.count(toks[i].text) == 0) {
      continue;
    }
    // Callee must be followed by an argument list, optionally via an
    // explicit template argument list: name<...>(...).
    std::size_t open = i + 1;
    if (open < toks.size() && toks[open].text == "<") {
      int depth = 0;
      while (open < toks.size()) {
        if (toks[open].text == "<") ++depth;
        if (toks[open].text == ">" && --depth == 0) {
          ++open;
          break;
        }
        ++open;
      }
    }
    if (open >= toks.size() || toks[open].text != "(") continue;
    const std::size_t close = match_forward(toks, open);
    if (close >= toks.size()) continue;
    if (toks[i].text == "barrier" && close == open + 1) {
      continue;  // barrier(): the void overload
    }
    // Result used? Anything but ';' right after the call means the value
    // flows somewhere (.throw_if_error(), assignment, return, ...).
    if (close + 1 >= toks.size() || toks[close + 1].text != ";") continue;
    // Walk back over the object chain (a.b->c::d) to the statement start.
    std::size_t j = i;
    while (j > 0) {
      const std::string& prev = toks[j - 1].text;
      if (prev == "." || prev == "->" || prev == "::") {
        if (j < 2) break;
        // Skip the chain segment before the operator: ident or a
        // balanced ()/[] group following an ident.
        std::size_t seg = j - 2;
        if (toks[seg].text == ")" || toks[seg].text == "]") {
          const std::size_t o = match_backward(toks, seg);
          if (o == static_cast<std::size_t>(-1)) break;
          seg = o == 0 ? 0 : o - 1;
        }
        j = seg;
        continue;
      }
      break;
    }
    const bool discarded =
        j == 0 || stmt_start.count(toks[j - 1].text) != 0;
    // A `(void)` cast defeats [[nodiscard]]; zh-lint still reports it --
    // dropping a comm Status silently loses timeouts and dead ranks.
    const bool void_cast =
        j >= 3 && toks[j - 1].text == ")" && toks[j - 2].text == "void" &&
        toks[j - 3].text == "(";
    if (discarded || void_cast) {
      out.push_back(
          {f.rel, toks[i].line, "discarded-status",
           "result of '" + toks[i].text +
               "' is discarded; it reports timeouts/dead ranks via Status "
               "-- handle it or call .throw_if_error()"});
    }
  }
}

// ---------------------------------------------------------------------------
void rule_index_width(const SourceFile& f, std::vector<Finding>& out) {
  // Pass 1: names declared with a narrow (<= 32-bit) integer type in this
  // file. A name also declared wide somewhere in the file is dropped
  // (scopes are beyond a lexer; suppressions handle the remainder).
  std::map<std::string, std::size_t> narrow;  // name -> decl line
  std::set<std::string> wide;
  const auto& toks = f.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent) continue;
    const bool n = is_narrow_type_name(toks[i].text);
    const bool w = is_wide_type_name(toks[i].text);
    if (!n && !w) continue;
    // `unsigned int`/`unsigned long` pairs: classify by the last keyword.
    std::size_t t = i;
    bool narrow_type = n;
    if (toks[i].text == "unsigned" && t + 1 < toks.size() &&
        (is_narrow_type_name(toks[t + 1].text) ||
         is_wide_type_name(toks[t + 1].text))) {
      ++t;
      narrow_type = is_narrow_type_name(toks[t].text);
    }
    // Declarator list: ident [= init] [, ident ...] ended by ; ) or }.
    std::size_t p = t + 1;
    bool expect_name = true;
    int depth = 0;
    while (p < toks.size()) {
      const Token& tk = toks[p];
      if (expect_name) {
        if (tk.kind != TokKind::kIdent) break;  // not a declaration
        if (narrow_type) {
          narrow.emplace(tk.text, tk.line);
        } else {
          wide.insert(tk.text);
        }
        expect_name = false;
        ++p;
        continue;
      }
      if (tk.text == "(" || tk.text == "[" || tk.text == "{") ++depth;
      if (tk.text == ")" || tk.text == "]" || tk.text == "}") {
        if (depth == 0) break;
        --depth;
      }
      if (depth == 0) {
        if (tk.text == ";") break;
        if (tk.text == ",") {
          // Only continue a comma-chain in a plain `T a, b;` shape --
          // parameter lists restate the type per parameter.
          if (p + 1 < toks.size() && toks[p + 1].kind == TokKind::kIdent &&
              !is_narrow_type_name(toks[p + 1].text) &&
              !is_wide_type_name(toks[p + 1].text) &&
              p + 2 < toks.size() &&
              (toks[p + 2].text == ";" || toks[p + 2].text == "," ||
               toks[p + 2].text == "=")) {
            expect_name = true;
            ++p;
            continue;
          }
          break;
        }
      }
      ++p;
    }
  }
  for (const std::string& w : wide) narrow.erase(w);

  // Pass 2: `a * b` (optionally through one member chain on the right)
  // where both operand names look like cell/tile dimensions and at least
  // one is narrow. The product feeds 64-bit cell indices; multiplying in
  // 32 bits overflows at ~2^31 cells -- a raster the paper's CONUS DEM
  // already exceeds.
  for (std::size_t i = 1; i + 1 < toks.size(); ++i) {
    if (toks[i].text != "*") continue;
    const Token& lhs = toks[i - 1];
    if (lhs.kind != TokKind::kIdent || !is_index_name(lhs.text)) continue;
    // Reject `T* name` pointer declarations and `a ** b`.
    if (i >= 2 && (toks[i - 2].text == "*" || toks[i + 1].text == "*")) {
      continue;
    }
    std::size_t r = i + 1;
    if (toks[r].kind != TokKind::kIdent) continue;
    std::string rhs = toks[r].text;
    while (r + 2 < toks.size() &&
           (toks[r + 1].text == "." || toks[r + 1].text == "::") &&
           toks[r + 2].kind == TokKind::kIdent) {
      r += 2;
      rhs = toks[r].text;
    }
    // `rhs(...)`: a call, not a value we can width-check.
    if (r + 1 < toks.size() && toks[r + 1].text == "(") continue;
    if (!is_index_name(rhs)) continue;
    const auto ln = narrow.find(lhs.text);
    const auto rn = narrow.find(rhs);
    if (ln == narrow.end() && rn == narrow.end()) continue;
    const auto& hit = ln != narrow.end() ? *ln : *rn;
    std::ostringstream msg;
    msg << "32-bit index arithmetic: '" << lhs.text << " * " << rhs
        << "' multiplies '" << hit.first << "' declared narrow at line "
        << hit.second
        << "; widen with static_cast<std::int64_t>/std::size_t before "
           "multiplying (cell/tile indices are 64-bit)";
    out.push_back({f.rel, toks[i].line, "index-width", msg.str()});
  }

  // Pass 3: scan/offset vectors with a narrow element type. pos_v-style
  // arrays hold exclusive-scan outputs -- offsets into pair/cell arrays
  // whose totals are size_t -- so a 32-bit element wraps silently once a
  // run crosses 2^32 pairs (the PolygonTileGroups::pos_v bug).
  for (std::size_t i = 0; i + 3 < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent || toks[i].text != "vector") continue;
    if (toks[i + 1].text != "<") continue;
    std::size_t t = i + 2;
    if (t + 1 < toks.size() && toks[t].text == "std" &&
        toks[t + 1].text == "::") {
      t += 2;
    }
    if (t >= toks.size() || toks[t].kind != TokKind::kIdent) continue;
    std::string elem = toks[t].text;
    if (elem == "unsigned" && t + 1 < toks.size() &&
        (is_narrow_type_name(toks[t + 1].text) ||
         is_wide_type_name(toks[t + 1].text))) {
      ++t;
      elem = elem + " " + toks[t].text;
      if (is_wide_type_name(toks[t].text)) continue;
    } else if (!is_narrow_type_name(elem)) {
      continue;
    }
    std::size_t p = t + 1;
    if (p >= toks.size() || toks[p].text != ">") continue;
    ++p;
    while (p < toks.size() && (toks[p].text == "&" || toks[p].text == "const")) {
      ++p;
    }
    if (p >= toks.size() || toks[p].kind != TokKind::kIdent ||
        !is_scan_vector_name(toks[p].text)) {
      continue;
    }
    std::ostringstream msg;
    msg << "32-bit scan/offset vector: 'vector<" << elem << "> "
        << toks[p].text
        << "' holds offsets into arrays sized by size_t; use "
           "std::uint64_t/std::size_t elements (an exclusive scan past "
           "2^32 wraps silently)";
    out.push_back({f.rel, toks[p].line, "index-width", msg.str()});
  }
}

// ---------------------------------------------------------------------------
void rule_naked_new(const SourceFile& f, std::vector<Finding>& out) {
  const auto& toks = f.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent) continue;
    if (toks[i].text == "new") {
      out.push_back({f.rel, toks[i].line, "naked-new",
                     "naked 'new' in library code; use std::make_unique/"
                     "std::vector or a named owner"});
    } else if (toks[i].text == "delete") {
      // `= delete`d functions are not deallocations.
      if (i > 0 && toks[i - 1].text == "=") continue;
      out.push_back({f.rel, toks[i].line, "naked-new",
                     "naked 'delete' in library code; ownership belongs in "
                     "a RAII type"});
    }
  }
}

// ---------------------------------------------------------------------------
void rule_raw_mutex_lock(const SourceFile& f, std::vector<Finding>& out) {
  const auto& toks = f.tokens;
  for (std::size_t i = 0; i + 3 < toks.size(); ++i) {
    if ((toks[i].text != "." && toks[i].text != "->")) continue;
    if (toks[i + 1].text != "lock" && toks[i + 1].text != "unlock") continue;
    if (toks[i + 2].text != "(" || toks[i + 3].text != ")") continue;
    out.push_back({f.rel, toks[i + 1].line, "raw-mutex-lock",
                   "manual ." + toks[i + 1].text +
                       "() outside RAII; use std::lock_guard/"
                       "std::unique_lock so unlock survives exceptions"});
  }
}

// ---------------------------------------------------------------------------
void rule_stdio_in_lib(const SourceFile& f, std::vector<Finding>& out) {
  static const std::set<std::string> banned = {"cout", "cerr", "printf",
                                               "puts", "putchar"};
  const auto& toks = f.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent) continue;
    const std::string& t = toks[i].text;
    if (banned.count(t) != 0) {
      // Member accesses like `obj.printf(...)` are someone else's API.
      if (i > 0 && (toks[i - 1].text == "." || toks[i - 1].text == "->")) {
        continue;
      }
      // `snprintf` etc. are distinct tokens already; `printf`/`puts`
      // must be a call or stream object use, not a declaration name.
      out.push_back({f.rel, toks[i].line, "stdio-in-lib",
                     "'" + t +
                         "' in library code; src/ must stay silent -- "
                         "report through Status/exceptions/obs (tools and "
                         "bench own the terminal)"});
      continue;
    }
    // fprintf is fine on a caller-supplied FILE*, banned on std streams.
    if (t == "fprintf" && i + 2 < toks.size() && toks[i + 1].text == "(" &&
        (toks[i + 2].text == "stdout" || toks[i + 2].text == "stderr")) {
      out.push_back({f.rel, toks[i].line, "stdio-in-lib",
                     "'fprintf(" + toks[i + 2].text +
                         ", ...)' in library code; write to a caller-"
                         "supplied FILE* or report through Status/obs"});
    }
  }
}

// ---------------------------------------------------------------------------
void rule_switch_enum(const std::vector<SourceFile>& files,
                      std::vector<Finding>& out) {
  // Pass A: every `enum [class|struct] Name ... { enumerators }` in src/.
  std::map<std::string, std::vector<std::string>> enums;
  for (const SourceFile& f : files) {
    const auto& toks = f.tokens;
    for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
      if (toks[i].text != "enum") continue;
      std::size_t p = i + 1;
      if (toks[p].text == "class" || toks[p].text == "struct") ++p;
      if (p >= toks.size() || toks[p].kind != TokKind::kIdent) continue;
      const std::string name = toks[p].text;
      ++p;
      while (p < toks.size() && toks[p].text != "{" && toks[p].text != ";") {
        ++p;  // skip `: underlying_type`
      }
      if (p >= toks.size() || toks[p].text != "{") continue;  // fwd decl
      const std::size_t close = match_forward(toks, p);
      std::vector<std::string> members;
      bool expect = true;
      for (std::size_t q = p + 1; q < close; ++q) {
        if (expect && toks[q].kind == TokKind::kIdent) {
          members.push_back(toks[q].text);
          expect = false;
        } else if (toks[q].text == ",") {
          expect = true;
        }
      }
      if (!members.empty()) enums[name] = std::move(members);
    }
  }
  // Pass B: switches whose case labels qualify a known enum.
  for (const SourceFile& f : files) {
    const auto& toks = f.tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
      if (toks[i].text != "switch") continue;
      std::size_t p = i + 1;
      if (p >= toks.size() || toks[p].text != "(") continue;
      p = match_forward(toks, p);
      if (p >= toks.size() || p + 1 >= toks.size() ||
          toks[p + 1].text != "{") {
        continue;
      }
      const std::size_t open = p + 1;
      const std::size_t close = match_forward(toks, open);
      bool has_default = false;
      std::string enum_name;
      std::set<std::string> seen;
      for (std::size_t q = open + 1; q < close; ++q) {
        if (toks[q].text == "default") has_default = true;
        if (toks[q].text == "case") {
          // Label tokens up to ':' (but not '::').
          for (std::size_t r = q + 1; r + 1 < close; ++r) {
            if (toks[r].text == ":" ) break;
            if (toks[r].text == "::" && toks[r - 1].kind == TokKind::kIdent &&
                enums.count(toks[r - 1].text) != 0 &&
                toks[r + 1].kind == TokKind::kIdent) {
              enum_name = toks[r - 1].text;
              seen.insert(toks[r + 1].text);
            }
          }
        }
      }
      if (has_default || enum_name.empty()) continue;
      std::vector<std::string> missing;
      for (const std::string& m : enums[enum_name]) {
        if (seen.count(m) == 0) missing.push_back(m);
      }
      if (missing.empty()) continue;
      std::ostringstream msg;
      msg << "switch on enum '" << enum_name
          << "' has no default and misses: ";
      for (std::size_t m = 0; m < missing.size(); ++m) {
        msg << (m ? ", " : "") << missing[m];
      }
      msg << " -- handle every enumerator or add a default";
      out.push_back({f.rel, toks[i].line, "switch-enum", msg.str()});
    }
  }
}

// ---------------------------------------------------------------------------
void rule_pragma_once(const SourceFile& f, std::vector<Finding>& out) {
  if (!f.is_header) return;
  static const std::regex re("^\\s*#\\s*pragma\\s+once\\b");
  for (const std::string& line : f.code_lines) {
    if (std::regex_search(line, re)) return;
  }
  out.push_back({f.rel, 1, "pragma-once",
                 "header lacks '#pragma once'; every zonalhist header must "
                 "be include-guarded and self-contained (see the "
                 "check_headers target)"});
}

// ---------------------------------------------------------------------------
void rule_nolint_audit(const SourceFile& f, std::vector<Finding>& out) {
  // clang-tidy escapes must be scoped and justified: NOLINT(check) with
  // trailing reason text. A bare NOLINT turns off every check forever.
  for (std::size_t li = 0; li < f.comment_lines.size(); ++li) {
    const std::string& text = f.comment_lines[li];
    std::size_t at = text.find("NOLINT");
    if (at == std::string::npos) continue;
    std::size_t p = at + 6;
    if (text.compare(p, 8, "NEXTLINE") == 0) p += 8;
    else if (text.compare(p, 5, "BEGIN") == 0) p += 5;
    else if (text.compare(p, 3, "END") == 0) p += 3;
    std::string checks;
    if (p < text.size() && text[p] == '(') {
      const std::size_t close = text.find(')', p);
      if (close != std::string::npos) {
        checks = text.substr(p + 1, close - p - 1);
        p = close + 1;
      }
    }
    if (checks.empty()) {
      out.push_back({f.rel, li + 1, "nolint-audit",
                     "bare NOLINT disables every clang-tidy check; use "
                     "NOLINT(check-id) with a reason"});
      continue;
    }
    if (text.find_first_not_of(" \t", p) == std::string::npos) {
      out.push_back({f.rel, li + 1, "nolint-audit",
                     "NOLINT(" + checks +
                         ") has no reason; append why this site is exempt"});
    }
  }
}

}  // namespace zh::lint::detail
