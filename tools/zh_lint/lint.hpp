// zh-lint: project-specific static analyzer for the zonalhist tree.
//
// Generic tooling (clang-tidy, -Wall -Werror, the sanitizer matrix) checks
// language-level properties; zh-lint checks *project* invariants that no
// compiler knows about: the module layering DAG, Status/Deadline error
// discipline in the fault-tolerant comm layer, the 64-bit cell/tile index
// convention, and a handful of hygiene rules (no naked new, no raw mutex
// lock, no stdio in library code, exhaustive switches over project enums,
// self-contained headers). It is a lightweight lexer + include-graph
// extractor -- deliberately no libclang dependency, so it builds and runs
// everywhere the project does.
//
// Findings print one-per-line as `file:line: rule-id: message` (matching
// the GitHub problem-matcher in .github/zh-lint-matcher.json) plus an
// optional JSON report in the zh-run-report style (`zh-lint-report-v1`).
//
// Any finding can be suppressed with a comment on the same line or the
// line directly above:
//
//   // zh-lint-ignore(rule-id): reason why this site is intentional
//
// Suppressions are themselves audited: a suppression without a reason, a
// suppression naming an unknown rule, and a suppression that no longer
// suppresses anything ("stale") are all findings, so the suppression set
// can only shrink alongside the violations it documents.
#pragma once

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

namespace zh::lint {

/// One diagnostic. `file` is '/'-separated and relative to the scanned
/// root (e.g. "src/common/error.hpp") so CI annotations resolve.
struct Finding {
  std::string file;
  std::size_t line = 0;  ///< 1-based
  std::string rule;
  std::string message;

  bool operator==(const Finding&) const = default;
};

/// Token of the comment/string-stripped source (see lexer.cpp).
enum class TokKind : std::uint8_t { kIdent, kNumber, kPunct };

struct Token {
  TokKind kind;
  std::string text;
  std::size_t line;  ///< 1-based
};

/// One `zh-lint-ignore(...)` comment found in a file.
struct SuppressionNote {
  std::size_t line = 0;    ///< line the comment sits on
  std::string rule;        ///< empty when the comment names no rule
  bool has_reason = false; ///< `: reason` text present after the rule
  bool used = false;       ///< set when it actually suppressed a finding
};

/// A scanned translation unit or header, lexed once and shared by every
/// rule. Preprocessor lines are kept in `code_lines` (pragma/include
/// checks) but excluded from `tokens` (statement-shaped rules).
struct SourceFile {
  std::string rel;          ///< path relative to root, '/'-separated
  std::string module_name;  ///< "common", "core", ...; "" for src/zh.hpp
  bool is_header = false;
  std::vector<std::string> code_lines;     ///< [0] is line 1; stripped
  std::vector<std::string> comment_lines;  ///< comment text per line
  std::vector<Token> tokens;               ///< stripped, non-preprocessor
  struct Include {
    std::string path;  ///< quoted include target, verbatim
    std::size_t line;
  };
  std::vector<Include> includes;  ///< project (quoted) includes only
  std::vector<SuppressionNote> suppressions;
};

struct RuleCount {
  std::string rule;
  std::size_t findings = 0;
};

struct LintResult {
  std::vector<Finding> findings;  ///< post-suppression, sorted
  std::vector<RuleCount> per_rule;
  std::size_t files_scanned = 0;
  std::size_t suppressions_used = 0;
};

/// Every rule id, in reporting order.
const std::vector<std::string>& rule_ids();

/// One-line description of a rule id (for --list-rules).
std::string rule_description(const std::string& id);

/// Lex one file into a SourceFile. `rel` must be '/'-separated relative
/// to the scanned root. Exposed for tests.
SourceFile lex_file(const std::filesystem::path& abs, std::string rel);

/// Run every rule over `root` (a repo-style tree containing `src/`).
/// Throws zh-lint's own std::runtime_error on unreadable inputs.
LintResult run_lint(const std::filesystem::path& root);

/// Machine-readable report mirroring the zh-run-report-v1 shape.
std::string report_json(const LintResult& result, const std::string& root);

namespace detail {
/// Rule implementations (rules.cpp); each appends raw findings.
void rule_layering(const std::vector<SourceFile>& files,
                   std::vector<Finding>& out);
void rule_include_cycle(const std::vector<SourceFile>& files,
                        std::vector<Finding>& out);
void rule_discarded_status(const SourceFile& f, std::vector<Finding>& out);
void rule_index_width(const SourceFile& f, std::vector<Finding>& out);
void rule_naked_new(const SourceFile& f, std::vector<Finding>& out);
void rule_raw_mutex_lock(const SourceFile& f, std::vector<Finding>& out);
void rule_stdio_in_lib(const SourceFile& f, std::vector<Finding>& out);
void rule_switch_enum(const std::vector<SourceFile>& files,
                      std::vector<Finding>& out);
void rule_pragma_once(const SourceFile& f, std::vector<Finding>& out);
void rule_nolint_audit(const SourceFile& f, std::vector<Finding>& out);
}  // namespace detail

}  // namespace zh::lint
