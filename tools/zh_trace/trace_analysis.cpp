#include "trace_analysis.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "common/error.hpp"

namespace zh::trace {

namespace {

std::int64_t as_i64(const obs::JsonValue& v) {
  return static_cast<std::int64_t>(std::llround(v.number));
}

std::uint64_t as_u64(const obs::JsonValue& v) {
  return static_cast<std::uint64_t>(std::llround(v.number));
}

/// A lane is one timeline row of the trace: a (pid, tid) pair.
using LaneKey = std::pair<int, std::uint32_t>;

struct Lane {
  std::vector<std::size_t> spans;  ///< indices into model.spans, by ts
  std::vector<std::size_t> flows;  ///< indices into model.flows, by ts
};

std::map<LaneKey, Lane> build_lanes(const TraceModel& m) {
  std::map<LaneKey, Lane> lanes;
  for (std::size_t i = 0; i < m.spans.size(); ++i) {
    lanes[{m.spans[i].pid, m.spans[i].tid}].spans.push_back(i);
  }
  for (std::size_t i = 0; i < m.flows.size(); ++i) {
    lanes[{m.flows[i].pid, m.flows[i].tid}].flows.push_back(i);
  }
  for (auto& [key, lane] : lanes) {
    std::sort(lane.spans.begin(), lane.spans.end(),
              [&m](std::size_t a, std::size_t b) {
                return m.spans[a].ts_us < m.spans[b].ts_us;
              });
    std::sort(lane.flows.begin(), lane.flows.end(),
              [&m](std::size_t a, std::size_t b) {
                return m.flows[a].ts_us < m.flows[b].ts_us;
              });
  }
  return lanes;
}

void append_kv_u64(std::string& out, const char* key, std::uint64_t v,
                   bool& first) {
  if (!first) out += ",";
  first = false;
  out += "\"";
  out += key;
  out += "\":";
  out += std::to_string(v);
}

void append_kv_i64(std::string& out, const char* key, std::int64_t v,
                   bool& first) {
  if (!first) out += ",";
  first = false;
  out += "\"";
  out += key;
  out += "\":";
  out += std::to_string(v);
}

void append_kv_double(std::string& out, const char* key, double v,
                      bool& first) {
  if (!first) out += ",";
  first = false;
  char buf[48];
  std::snprintf(buf, sizeof(buf), "\"%s\":%.6g", key, v);
  out += buf;
}

}  // namespace

TraceModel load_trace(const obs::JsonValue& doc) {
  ZH_REQUIRE_IO(doc.is_object(), "trace root is not a JSON object");
  const obs::JsonValue* events = doc.find("traceEvents");
  ZH_REQUIRE_IO(events != nullptr && events->is_array(),
                "trace has no traceEvents array");
  TraceModel m;
  bool any_span = false;
  for (const obs::JsonValue& e : events->arr) {
    ZH_REQUIRE_IO(e.is_object(), "trace event is not an object");
    const obs::JsonValue* ph = e.find("ph");
    ZH_REQUIRE_IO(ph != nullptr && ph->is_string() && ph->str.size() == 1,
                  "trace event has no single-character ph");
    const char phase = ph->str[0];
    if (phase == 'M') continue;  // metadata (process_name etc.)
    ZH_REQUIRE_IO(phase == 'X' || phase == 's' || phase == 'f',
                  "unsupported trace event phase: ", ph->str);
    const obs::JsonValue* ts = e.find("ts");
    const obs::JsonValue* pid = e.find("pid");
    const obs::JsonValue* tid = e.find("tid");
    ZH_REQUIRE_IO(ts != nullptr && ts->is_number() && pid != nullptr &&
                      pid->is_number() && tid != nullptr && tid->is_number(),
                  "trace event missing ts/pid/tid");
    ZH_REQUIRE_IO(ts->number >= 0, "trace event has negative timestamp");
    const obs::JsonValue* name = e.find("name");
    if (phase == 'X') {
      const obs::JsonValue* dur = e.find("dur");
      ZH_REQUIRE_IO(dur != nullptr && dur->is_number() && dur->number >= 0,
                    "X event missing/negative dur");
      SpanRec s;
      if (name != nullptr && name->is_string()) s.name = name->str;
      if (const obs::JsonValue* cat = e.find("cat");
          cat != nullptr && cat->is_string()) {
        s.cat = cat->str;
      }
      s.pid = static_cast<int>(as_i64(*pid));
      s.tid = static_cast<std::uint32_t>(as_u64(*tid));
      s.ts_us = as_i64(*ts);
      s.dur_us = as_i64(*dur);
      if (const obs::JsonValue* args = e.find("args");
          args != nullptr && args->is_object()) {
        if (const obs::JsonValue* id = args->find("id");
            id != nullptr && id->is_number()) {
          s.id = as_u64(*id);
        }
        if (const obs::JsonValue* parent = args->find("parent");
            parent != nullptr && parent->is_number()) {
          s.parent = as_u64(*parent);
        }
      }
      if (!any_span || s.ts_us < m.begin_us) m.begin_us = s.ts_us;
      if (!any_span || s.ts_us + s.dur_us > m.end_us) {
        m.end_us = s.ts_us + s.dur_us;
      }
      any_span = true;
      m.spans.push_back(std::move(s));
    } else {
      const obs::JsonValue* id = e.find("id");
      ZH_REQUIRE_IO(id != nullptr && id->is_number() && id->number > 0,
                    "flow event missing positive id");
      FlowEnd f;
      f.flow_id = as_u64(*id);
      f.pid = static_cast<int>(as_i64(*pid));
      f.tid = static_cast<std::uint32_t>(as_u64(*tid));
      f.ts_us = as_i64(*ts);
      f.phase = phase;
      m.flows.push_back(f);
    }
  }
  if (const obs::JsonValue* other = doc.find("otherData");
      other != nullptr && other->is_object()) {
    if (const obs::JsonValue* dropped = other->find("dropped_events");
        dropped != nullptr && dropped->is_number()) {
      m.dropped_events = as_u64(*dropped);
    }
  }
  return m;
}

TraceModel load_trace_file(const std::string& path) {
  return load_trace(obs::parse_json_file(path));
}

FlowCheck validate_flows(const TraceModel& m) {
  FlowCheck check;
  std::unordered_set<std::uint64_t> send_ids;
  for (const FlowEnd& f : m.flows) {
    if (f.phase == 's') {
      ++check.sends;
      send_ids.insert(f.flow_id);
    }
  }
  std::unordered_set<std::uint64_t> recv_ids;
  for (const FlowEnd& f : m.flows) {
    if (f.phase != 'f') continue;
    ++check.recvs;
    recv_ids.insert(f.flow_id);
    if (send_ids.count(f.flow_id) == 0) {
      ++check.dangling_recvs;
      check.errors.push_back(detail::format_parts(
          "dangling flow recv: id ", f.flow_id, " at ts ", f.ts_us, " (pid ",
          f.pid, ") has no matching send anywhere in the trace"));
    }
  }
  for (const std::uint64_t id : send_ids) {
    if (recv_ids.count(id) == 0) ++check.unmatched_sends;
  }
  return check;
}

CriticalPath critical_path(const TraceModel& m) {
  CriticalPath cp;
  if (m.spans.empty()) return cp;
  cp.wall_us = m.end_us - m.begin_us;

  const std::map<LaneKey, Lane> lanes = build_lanes(m);

  // First send per flow id (duplicate sends should not exist; duplicate
  // recvs of one send do, under dup fault plans).
  std::unordered_map<std::uint64_t, const FlowEnd*> send_by_id;
  for (const FlowEnd& f : m.flows) {
    if (f.phase == 's') send_by_id.emplace(f.flow_id, &f);
  }

  // Innermost span active at `t` on `lane`: latest-starting span with
  // ts < t <= ts + dur (strictly earlier start guarantees progress).
  const auto active_span = [&](const Lane& lane,
                               std::int64_t t) -> const SpanRec* {
    const SpanRec* best = nullptr;
    for (const std::size_t idx : lane.spans) {
      const SpanRec& s = m.spans[idx];
      if (s.ts_us >= t) break;  // sorted by ts
      if (s.ts_us + s.dur_us >= t) best = &s;
    }
    return best;
  };

  // Start at the lane owning the latest span end.
  LaneKey cur_lane{};
  {
    std::int64_t best_end = m.begin_us - 1;
    for (const auto& [key, lane] : lanes) {
      for (const std::size_t idx : lane.spans) {
        const SpanRec& s = m.spans[idx];
        if (s.ts_us + s.dur_us > best_end) {
          best_end = s.ts_us + s.dur_us;
          cur_lane = key;
        }
      }
    }
  }

  std::int64_t cursor = m.end_us;
  const std::size_t cap = (m.spans.size() + m.flows.size()) * 4 + 64;
  std::size_t steps = 0;
  const auto push = [&cp](PathSegment::Kind kind, LaneKey lane,
                          std::string name, std::int64_t start,
                          std::int64_t end) {
    if (end <= start) return;  // zero-length steps carry no time
    PathSegment seg;
    seg.kind = kind;
    seg.pid = lane.first;
    seg.tid = lane.second;
    seg.name = std::move(name);
    seg.start_us = start;
    seg.end_us = end;
    cp.segments.push_back(std::move(seg));
  };

  while (cursor > m.begin_us && steps++ < cap) {
    const Lane& lane = lanes.at(cur_lane);
    if (const SpanRec* span = active_span(lane, cursor); span != nullptr) {
      // Latest matched incoming flow inside this span and before the
      // cursor: the moment this lane's progress became dependent on a
      // message -- the path crosses to the sender there.
      const FlowEnd* recv = nullptr;
      const FlowEnd* send = nullptr;
      for (const std::size_t idx : lane.flows) {
        const FlowEnd& f = m.flows[idx];
        if (f.ts_us > cursor) break;  // sorted by ts
        if (f.phase != 'f' || f.ts_us < span->ts_us) continue;
        const auto it = send_by_id.find(f.flow_id);
        if (it == send_by_id.end()) continue;  // dangling; validator's job
        const FlowEnd* s = it->second;
        // The jump must move the walk strictly left; skew-inverted
        // edges (send stamped after recv) are skipped.
        if (s->ts_us >= cursor || s->ts_us > f.ts_us) continue;
        recv = &f;
        send = s;
      }
      if (recv != nullptr) {
        push(PathSegment::Kind::kWork, cur_lane, span->name, recv->ts_us,
             cursor);
        push(PathSegment::Kind::kTransit, cur_lane, "flow", send->ts_us,
             recv->ts_us);
        cur_lane = {send->pid, send->tid};
        cursor = send->ts_us;
      } else {
        push(PathSegment::Kind::kWork, cur_lane, span->name, span->ts_us,
             cursor);
        cursor = span->ts_us;
      }
      continue;
    }
    // Nothing active here: the lane was idle. Rewind to the best anchor
    // across all lanes -- the latest span end at/before the cursor, or
    // the cursor itself where some other lane is still active (then the
    // path hops lanes with no time charged).
    LaneKey best_lane = cur_lane;
    std::int64_t best_anchor = m.begin_us;
    bool found = false;
    for (const auto& [key, other] : lanes) {
      if (active_span(other, cursor) != nullptr) {
        best_lane = key;
        best_anchor = cursor;
        found = true;
        break;
      }
      for (const std::size_t idx : other.spans) {
        const SpanRec& s = m.spans[idx];
        const std::int64_t end = s.ts_us + s.dur_us;
        if (s.ts_us >= cursor) break;
        if (end <= cursor && (!found || end > best_anchor)) {
          best_anchor = end;
          best_lane = key;
          found = true;
        }
      }
    }
    push(PathSegment::Kind::kIdle, cur_lane, "idle", best_anchor, cursor);
    if (!found) break;  // nothing anywhere before the cursor
    if (best_anchor == cursor && best_lane == cur_lane) break;  // defensive
    cur_lane = best_lane;
    cursor = best_anchor;
  }

  std::reverse(cp.segments.begin(), cp.segments.end());
  for (const PathSegment& seg : cp.segments) {
    const std::int64_t d = seg.end_us - seg.start_us;
    switch (seg.kind) {
      case PathSegment::Kind::kWork:
        cp.work_us += d;
        break;
      case PathSegment::Kind::kTransit:
        cp.transit_us += d;
        break;
      case PathSegment::Kind::kIdle:
        cp.idle_us += d;
        break;
    }
  }
  cp.coverage = cp.wall_us <= 0
                    ? 1.0
                    : static_cast<double>(m.end_us - cursor) /
                          static_cast<double>(cp.wall_us);
  return cp;
}

std::vector<RankStats> rank_breakdown(const TraceModel& m,
                                      const CriticalPath& cp) {
  // Busy time = union of span intervals per pid (spans nest and
  // overlap across tids; double-counting would report >100%
  // utilization).
  std::map<int, std::vector<std::pair<std::int64_t, std::int64_t>>> intervals;
  std::map<int, RankStats> by_pid;
  for (const SpanRec& s : m.spans) {
    RankStats& r = by_pid[s.pid];
    r.rank = s.pid - 1;
    ++r.span_count;
    r.last_end_us = std::max(r.last_end_us, s.ts_us + s.dur_us);
    if (s.name == "comm.recv" || s.name == "comm.barrier") {
      r.comm_wait_us += s.dur_us;
    }
    intervals[s.pid].emplace_back(s.ts_us, s.ts_us + s.dur_us);
  }
  for (auto& [pid, ivs] : intervals) {
    std::sort(ivs.begin(), ivs.end());
    std::int64_t busy = 0;
    bool open = false;
    std::int64_t cur_lo = 0;
    std::int64_t cur_hi = 0;
    for (const auto& [lo, hi] : ivs) {
      if (!open || lo > cur_hi) {
        if (open) busy += cur_hi - cur_lo;
        cur_lo = lo;
        cur_hi = hi;
        open = true;
      } else {
        cur_hi = std::max(cur_hi, hi);
      }
    }
    if (open) busy += cur_hi - cur_lo;
    by_pid[pid].busy_us = busy;
  }
  for (const PathSegment& seg : cp.segments) {
    if (seg.kind == PathSegment::Kind::kWork) {
      by_pid[seg.pid].crit_work_us += seg.end_us - seg.start_us;
    }
  }
  const std::int64_t wall = m.end_us - m.begin_us;
  std::vector<RankStats> out;
  out.reserve(by_pid.size());
  for (auto& [pid, r] : by_pid) {
    r.utilization = wall > 0 ? static_cast<double>(r.busy_us) /
                                   static_cast<double>(wall)
                             : 0.0;
    out.push_back(r);
  }
  return out;
}

RetryAttribution join_retries(const TraceModel& m,
                              const obs::JsonValue* run_report) {
  RetryAttribution out;
  const FlowCheck flows = validate_flows(m);
  out.unreceived_sends = flows.unmatched_sends;
  if (run_report != nullptr && run_report->is_object()) {
    if (const obs::JsonValue* counters = run_report->find("counters");
        counters != nullptr && counters->is_object()) {
      const auto u64 = [&](const char* key) -> std::uint64_t {
        const obs::JsonValue* v = counters->find(key);
        return v != nullptr && v->is_number()
                   ? static_cast<std::uint64_t>(std::llround(v->number))
                   : 0;
      };
      out.comm_retries = u64("comm.retries");
      out.comm_msgs_sent = u64("comm.msgs_sent");
      out.comm_msgs_recovered = u64("comm.msgs_recovered");
    }
  }
  if (out.comm_msgs_sent > 0) {
    out.retry_rate = static_cast<double>(out.comm_retries) /
                     static_cast<double>(out.comm_msgs_sent);
  }
  return out;
}

std::string trace_report_json(const TraceModel& m, const FlowCheck& flows,
                              const CriticalPath& cp,
                              const std::vector<RankStats>& ranks,
                              const RetryAttribution& retries) {
  std::string out;
  out.reserve(4096);
  out += "{\"schema\":\"zh-trace-report-v1\"";
  bool first = false;
  append_kv_i64(out, "begin_us", m.begin_us, first);
  append_kv_i64(out, "end_us", m.end_us, first);
  append_kv_i64(out, "wall_us", m.end_us - m.begin_us, first);
  append_kv_u64(out, "spans", m.spans.size(), first);
  append_kv_u64(out, "dropped_events", m.dropped_events, first);

  out += ",\"flows\":{";
  first = true;
  append_kv_u64(out, "sends", flows.sends, first);
  append_kv_u64(out, "recvs", flows.recvs, first);
  append_kv_u64(out, "unmatched_sends", flows.unmatched_sends, first);
  append_kv_u64(out, "dangling_recvs", flows.dangling_recvs, first);
  out += "}";

  out += ",\"critical_path\":{";
  first = true;
  append_kv_i64(out, "total_us", cp.work_us + cp.transit_us + cp.idle_us,
                first);
  append_kv_i64(out, "work_us", cp.work_us, first);
  append_kv_i64(out, "transit_us", cp.transit_us, first);
  append_kv_i64(out, "idle_us", cp.idle_us, first);
  append_kv_double(out, "coverage", cp.coverage, first);
  out += ",\"segments\":[";
  first = true;
  for (const PathSegment& seg : cp.segments) {
    if (!first) out += ",";
    first = false;
    out += "{\"kind\":\"";
    switch (seg.kind) {
      case PathSegment::Kind::kWork:
        out += "work";
        break;
      case PathSegment::Kind::kTransit:
        out += "transit";
        break;
      case PathSegment::Kind::kIdle:
        out += "idle";
        break;
    }
    out += "\",\"pid\":";
    out += std::to_string(seg.pid);
    out += ",\"tid\":";
    out += std::to_string(seg.tid);
    out += ",\"name\":\"";
    out += obs::json_escape(seg.name);
    out += "\",\"start_us\":";
    out += std::to_string(seg.start_us);
    out += ",\"end_us\":";
    out += std::to_string(seg.end_us);
    out += "}";
  }
  out += "]}";

  out += ",\"ranks\":[";
  first = true;
  for (const RankStats& r : ranks) {
    if (!first) out += ",";
    first = false;
    out += "{";
    bool f2 = true;
    append_kv_i64(out, "rank", r.rank, f2);
    append_kv_u64(out, "spans", r.span_count, f2);
    append_kv_i64(out, "busy_us", r.busy_us, f2);
    append_kv_i64(out, "comm_wait_us", r.comm_wait_us, f2);
    append_kv_i64(out, "last_end_us", r.last_end_us, f2);
    append_kv_i64(out, "crit_work_us", r.crit_work_us, f2);
    append_kv_double(out, "utilization", r.utilization, f2);
    out += "}";
  }
  out += "]";

  // Straggler attribution: ranks ordered by critical-path work; the
  // head of the list bounds end-to-end latency.
  std::vector<const RankStats*> by_crit;
  for (const RankStats& r : ranks) by_crit.push_back(&r);
  std::sort(by_crit.begin(), by_crit.end(),
            [](const RankStats* a, const RankStats* b) {
              return a->crit_work_us > b->crit_work_us;
            });
  out += ",\"stragglers\":[";
  first = true;
  for (const RankStats* r : by_crit) {
    if (r->crit_work_us <= 0) break;
    if (!first) out += ",";
    first = false;
    out += "{";
    bool f2 = true;
    append_kv_i64(out, "rank", r->rank, f2);
    append_kv_i64(out, "crit_work_us", r->crit_work_us, f2);
    append_kv_double(out, "crit_share",
                     cp.work_us > 0 ? static_cast<double>(r->crit_work_us) /
                                          static_cast<double>(cp.work_us)
                                    : 0.0,
                     f2);
    out += "}";
  }
  out += "]";

  out += ",\"retries\":{";
  first = true;
  append_kv_u64(out, "comm_retries", retries.comm_retries, first);
  append_kv_u64(out, "comm_msgs_sent", retries.comm_msgs_sent, first);
  append_kv_u64(out, "comm_msgs_recovered", retries.comm_msgs_recovered,
                first);
  append_kv_double(out, "retry_rate", retries.retry_rate, first);
  append_kv_u64(out, "unreceived_sends", retries.unreceived_sends, first);
  out += "}}";
  return out;
}

}  // namespace zh::trace
