// zh_trace -- causal analyzer for merged cluster traces.
//
// Usage:
//   zh_trace <merged_trace.json> [options]
//     --report <out.json>      write a zh-trace-report-v1 document
//     --run-report <run.json>  join comm.* counters of a zh-run-report-v1
//                              file into the retry attribution
//     --min-coverage <frac>    fail unless the critical path tiles at
//                              least this fraction of the wall time
//     --validate-only          only check the flow graph, skip analysis
//
// Exit codes: 0 = ok; 1 = invalid flow graph (dangling recv), dropped
// events, or coverage below threshold; 2 = usage or unreadable input.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "common/error.hpp"
#include "trace_analysis.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: zh_trace <merged_trace.json> [--report out.json] "
               "[--run-report run.json] [--min-coverage frac] "
               "[--validate-only]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_path;
  std::string report_path;
  std::string run_report_path;
  double min_coverage = 0.0;
  bool validate_only = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--report" && i + 1 < argc) {
      report_path = argv[++i];
    } else if (arg == "--run-report" && i + 1 < argc) {
      run_report_path = argv[++i];
    } else if (arg == "--min-coverage" && i + 1 < argc) {
      min_coverage = std::atof(argv[++i]);
    } else if (arg == "--validate-only") {
      validate_only = true;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else if (trace_path.empty()) {
      trace_path = arg;
    } else {
      return usage();
    }
  }
  if (trace_path.empty()) return usage();

  try {
    const zh::trace::TraceModel model = zh::trace::load_trace_file(trace_path);
    const zh::trace::FlowCheck flows = zh::trace::validate_flows(model);
    std::printf("zh_trace: %s: %zu spans, %zu sends, %zu recvs\n",
                trace_path.c_str(), model.spans.size(), flows.sends,
                flows.recvs);
    for (const std::string& err : flows.errors) {
      std::fprintf(stderr, "zh_trace: ERROR: %s\n", err.c_str());
    }
    if (model.dropped_events > 0) {
      std::fprintf(stderr,
                   "zh_trace: ERROR: trace is truncated (%llu dropped "
                   "events); analysis would be misleading\n",
                   static_cast<unsigned long long>(model.dropped_events));
    }
    bool failed = !flows.ok() || model.dropped_events > 0;
    if (!validate_only) {
      const zh::trace::CriticalPath cp = zh::trace::critical_path(model);
      const std::vector<zh::trace::RankStats> ranks =
          zh::trace::rank_breakdown(model, cp);
      zh::obs::JsonValue run_report;
      const zh::obs::JsonValue* run_report_ptr = nullptr;
      if (!run_report_path.empty()) {
        run_report = zh::obs::parse_json_file(run_report_path);
        run_report_ptr = &run_report;
      }
      const zh::trace::RetryAttribution retries =
          zh::trace::join_retries(model, run_report_ptr);

      std::printf(
          "critical path: wall %lld us = work %lld + transit %lld + idle "
          "%lld (coverage %.4f)\n",
          static_cast<long long>(cp.wall_us),
          static_cast<long long>(cp.work_us),
          static_cast<long long>(cp.transit_us),
          static_cast<long long>(cp.idle_us), cp.coverage);
      for (const zh::trace::RankStats& r : ranks) {
        std::printf(
            "  rank %3d: %6zu spans, busy %lld us (%.1f%%), comm-wait %lld "
            "us, crit-work %lld us\n",
            r.rank, r.span_count, static_cast<long long>(r.busy_us),
            r.utilization * 100.0, static_cast<long long>(r.comm_wait_us),
            static_cast<long long>(r.crit_work_us));
      }
      if (retries.comm_retries > 0 || retries.unreceived_sends > 0) {
        std::printf(
            "retries: %llu of %llu msgs (rate %.3f), %llu recovered, %zu "
            "sends never received\n",
            static_cast<unsigned long long>(retries.comm_retries),
            static_cast<unsigned long long>(retries.comm_msgs_sent),
            retries.retry_rate,
            static_cast<unsigned long long>(retries.comm_msgs_recovered),
            retries.unreceived_sends);
      }
      if (!report_path.empty()) {
        const std::string json =
            zh::trace::trace_report_json(model, flows, cp, ranks, retries);
        std::ofstream out(report_path,
                          std::ios::binary | std::ios::trunc);
        if (!out.good()) {
          std::fprintf(stderr, "zh_trace: cannot write %s\n",
                       report_path.c_str());
          return 2;
        }
        out.write(json.data(), static_cast<std::streamsize>(json.size()));
        out.flush();
        std::printf("wrote %s\n", report_path.c_str());
      }
      if (cp.coverage + 1e-9 < min_coverage) {
        std::fprintf(stderr,
                     "zh_trace: ERROR: critical-path coverage %.4f below "
                     "required %.4f\n",
                     cp.coverage, min_coverage);
        failed = true;
      }
    }
    if (failed) {
      std::fprintf(stderr, "zh_trace: FAILED\n");
      return 1;
    }
    std::printf("zh_trace: OK\n");
    return 0;
  } catch (const zh::Error& e) {
    std::fprintf(stderr, "zh_trace: %s\n", e.what());
    return 2;
  }
}
