// Analysis library behind the zh_trace tool: loads a merged Chrome
// trace_event JSON file (as produced by `zhist --trace` cluster runs),
// validates its causal flow graph, computes the run's critical path,
// and summarizes per-rank utilization. Lives in a static library (like
// zh_lint_lib) so tests can drive every pass in-process; main.cpp is a
// thin CLI around it.
//
// Critical path model: starting from the latest span end, walk
// backwards through time. Inside a span, time is "work"; when a
// matched recv ("f") flow event interrupts the span, the path jumps
// through the flow edge to the sender's lane ("transit" time covers
// the send->recv interval); when a lane has no active span, the gap to
// the previous span end is "idle" (and the walk may hop to whichever
// lane was last active). The walk tiles [begin, end] with contiguous
// segments, so segment durations sum to the measured wall time by
// construction -- `coverage` reports the tiled fraction and only drops
// below 1 if the defensive iteration cap fires.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace zh::trace {

/// One completed span ("X" event) of the merged trace. pid follows the
/// exporter's convention: 0 = host process, r+1 = cluster rank r.
struct SpanRec {
  std::string name;
  std::string cat;
  int pid = 0;
  std::uint32_t tid = 0;
  std::int64_t ts_us = 0;
  std::int64_t dur_us = 0;
  std::uint64_t id = 0;      ///< span id from args (0 when absent)
  std::uint64_t parent = 0;  ///< parent span id from args
};

/// One end of a flow edge ("s" send / "f" finish).
struct FlowEnd {
  std::uint64_t flow_id = 0;
  int pid = 0;
  std::uint32_t tid = 0;
  std::int64_t ts_us = 0;
  char phase = 's';
};

/// In-memory model of one merged trace file.
struct TraceModel {
  std::vector<SpanRec> spans;
  std::vector<FlowEnd> flows;
  std::int64_t begin_us = 0;  ///< earliest span start (0 when empty)
  std::int64_t end_us = 0;    ///< latest span end
  std::uint64_t dropped_events = 0;  ///< otherData.dropped_events
};

/// Parse a Chrome trace_event document into a TraceModel. Accepts
/// phases M (skipped), X, s, and f; anything else, a negative
/// timestamp/duration, or a flow event without an id is malformed.
/// Throws IoError.
[[nodiscard]] TraceModel load_trace(const obs::JsonValue& doc);

/// Slurp + parse `path` and build the model. Throws IoError.
[[nodiscard]] TraceModel load_trace_file(const std::string& path);

/// Flow-graph validation verdict. A dangling recv -- an "f" whose flow
/// id has no matching "s" anywhere in the merged file -- means a rank's
/// flushed buffer went missing (the gather lost data); that is the
/// corruption this validator exists to catch. Unmatched sends are legal
/// (the receiver may have died before receiving, or the message was
/// dropped and never recovered).
struct FlowCheck {
  std::size_t sends = 0;
  std::size_t recvs = 0;
  std::size_t unmatched_sends = 0;   ///< "s" with no "f" (lost/unreceived)
  std::size_t dangling_recvs = 0;    ///< "f" with no "s" -- INVALID graph
  std::vector<std::string> errors;   ///< one message per dangling recv
  [[nodiscard]] bool ok() const { return dangling_recvs == 0; }
};

[[nodiscard]] FlowCheck validate_flows(const TraceModel& m);

/// One segment of the critical path, in wall-clock order after the
/// backward walk is reversed. kWork = inside a span on [pid, tid];
/// kTransit = crossing a send->recv flow edge; kIdle = no span active
/// on the lane the path was waiting on.
struct PathSegment {
  enum class Kind : std::uint8_t { kWork, kTransit, kIdle };
  Kind kind = Kind::kWork;
  int pid = 0;
  std::uint32_t tid = 0;
  std::string name;  ///< span name, "flow", or "idle"
  std::int64_t start_us = 0;
  std::int64_t end_us = 0;
};

struct CriticalPath {
  std::vector<PathSegment> segments;  ///< contiguous, earliest first
  std::int64_t wall_us = 0;     ///< end_us - begin_us of the model
  std::int64_t work_us = 0;
  std::int64_t transit_us = 0;
  std::int64_t idle_us = 0;
  double coverage = 1.0;  ///< tiled fraction of [begin, end]; 1 unless capped
};

[[nodiscard]] CriticalPath critical_path(const TraceModel& m);

/// Per-rank utilization/idle breakdown plus critical-path attribution.
struct RankStats {
  int rank = -1;  ///< -1 = host process (pid 0)
  std::size_t span_count = 0;
  std::int64_t busy_us = 0;       ///< union of span intervals on the rank
  std::int64_t comm_wait_us = 0;  ///< summed comm.recv/comm.barrier time
  std::int64_t last_end_us = 0;   ///< when the rank's last span ended
  std::int64_t crit_work_us = 0;  ///< critical-path work on this rank
  double utilization = 0.0;       ///< busy_us / wall_us
};

[[nodiscard]] std::vector<RankStats> rank_breakdown(const TraceModel& m,
                                                    const CriticalPath& cp);

/// Retry/straggler attribution joining the trace's flow edges with the
/// comm.* counters of a zh-run-report-v1 file (optional; zeros without
/// one). A high retry_rate with most critical-path work on one rank is
/// the retry-storm / straggler signature the tool exists to surface.
struct RetryAttribution {
  std::uint64_t comm_retries = 0;
  std::uint64_t comm_msgs_sent = 0;
  std::uint64_t comm_msgs_recovered = 0;
  double retry_rate = 0.0;          ///< retries / msgs_sent
  std::size_t unreceived_sends = 0; ///< flow "s" ends that never resolved
};

/// Extract comm.* counters from a parsed zh-run-report-v1 document and
/// join them with the model's flow statistics.
[[nodiscard]] RetryAttribution join_retries(const TraceModel& m,
                                            const obs::JsonValue* run_report);

/// Serialize everything as a zh-trace-report-v1 JSON document (schema
/// described in DESIGN.md section 6).
[[nodiscard]] std::string trace_report_json(const TraceModel& m,
                                            const FlowCheck& flows,
                                            const CriticalPath& cp,
                                            const std::vector<RankStats>& ranks,
                                            const RetryAttribution& retries);

}  // namespace zh::trace
