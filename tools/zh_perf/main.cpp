// zh_perf -- bench regression differ for zh-run-report-v1 files.
//
// Usage:
//   zh_perf <baseline.json> <current.json> [options]
//   zh_perf --baseline-dir <dir> --dir <dir> [options]
//     (pairs files named BENCH_*.json by basename; a current file with
//      no committed baseline is noted, not failed)
//   options:
//     --tol-pct <P>   fail when a timing grows more than P percent
//                     (default 10; env ZH_PERF_TOL_PCT overrides)
//     --min-s <S>     noise floor: keys where both sides are below S
//                     seconds never fail (default 0.05)
//
// Exit codes: 0 = no regression; 1 = at least one timing regressed;
// 2 = usage error or unreadable input.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "perf_diff.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: zh_perf <baseline.json> <current.json> |\n"
               "       zh_perf --baseline-dir <dir> --dir <dir>\n"
               "       [--tol-pct P] [--min-s S]\n");
  return 2;
}

/// Compare one baseline/current file pair; returns regression count.
std::size_t diff_pair(const std::string& base_path,
                      const std::string& cur_path,
                      const zh::perf::PerfOptions& opts) {
  const zh::obs::JsonValue base = zh::obs::parse_json_file(base_path);
  const zh::obs::JsonValue cur = zh::obs::parse_json_file(cur_path);
  const zh::perf::PerfComparison cmp =
      zh::perf::compare_reports(base, cur, opts);
  std::printf("== %s vs %s\n", base_path.c_str(), cur_path.c_str());
  for (const zh::perf::PerfEntry& e : cmp.entries) {
    const char* verdict = e.regressed        ? "REGRESSED"
                          : e.below_floor    ? "noise-floor"
                          : e.delta_pct < 0  ? "improved"
                                             : "ok";
    std::printf("  %-24s %10.4fs -> %10.4fs  %+8.2f%%  %s\n", e.key.c_str(),
                e.base_s, e.cur_s, e.delta_pct, verdict);
  }
  for (const std::string& note : cmp.notes) {
    std::printf("  note: %s\n", note.c_str());
  }
  return cmp.regressions;
}

}  // namespace

int main(int argc, char** argv) {
  zh::perf::PerfOptions opts;
  if (const char* env = std::getenv("ZH_PERF_TOL_PCT");
      env != nullptr && *env != '\0') {
    opts.tol_pct = std::atof(env);
  }
  std::string baseline_dir;
  std::string current_dir;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--tol-pct" && i + 1 < argc) {
      opts.tol_pct = std::atof(argv[++i]);
    } else if (arg == "--min-s" && i + 1 < argc) {
      opts.min_seconds = std::atof(argv[++i]);
    } else if (arg == "--baseline-dir" && i + 1 < argc) {
      baseline_dir = argv[++i];
    } else if (arg == "--dir" && i + 1 < argc) {
      current_dir = argv[++i];
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else {
      files.push_back(arg);
    }
  }

  try {
    std::size_t regressions = 0;
    if (!baseline_dir.empty() || !current_dir.empty()) {
      if (baseline_dir.empty() || current_dir.empty() || !files.empty()) {
        return usage();
      }
      namespace fs = std::filesystem;
      std::vector<std::string> names;
      for (const fs::directory_entry& entry :
           fs::directory_iterator(current_dir)) {
        const std::string name = entry.path().filename().string();
        if (name.rfind("BENCH_", 0) == 0 &&
            entry.path().extension() == ".json") {
          names.push_back(name);
        }
      }
      std::sort(names.begin(), names.end());
      if (names.empty()) {
        std::fprintf(stderr, "zh_perf: no BENCH_*.json files in %s\n",
                     current_dir.c_str());
        return 2;
      }
      for (const std::string& name : names) {
        const fs::path base_path = fs::path(baseline_dir) / name;
        if (!fs::exists(base_path)) {
          std::printf("== %s: no committed baseline, skipped\n",
                      name.c_str());
          continue;
        }
        regressions += diff_pair(base_path.string(),
                                 (fs::path(current_dir) / name).string(),
                                 opts);
      }
    } else {
      if (files.size() != 2) return usage();
      regressions = diff_pair(files[0], files[1], opts);
    }
    if (regressions > 0) {
      std::fprintf(stderr,
                   "zh_perf: FAILED: %zu timing(s) regressed beyond "
                   "%.1f%%\n",
                   regressions, opts.tol_pct);
      return 1;
    }
    std::printf("zh_perf: OK (tolerance %.1f%%, floor %.3fs)\n",
                opts.tol_pct, opts.min_seconds);
    return 0;
  } catch (const zh::Error& e) {
    std::fprintf(stderr, "zh_perf: %s\n", e.what());
    return 2;
  }
}
