// Comparison logic behind the zh_perf tool: diff two zh-run-report-v1
// documents (the BENCH_*.json files the bench harness writes) and flag
// regressions beyond a configurable threshold. Library + thin CLI
// split so tests can pin the comparison semantics in-process.
//
// Only the "times_s" block gates: wall-clock keys are what a perf
// regression means. Work counters and RSS can change legitimately with
// algorithmic PRs and are surfaced as notes, never failures. Timings
// below the noise floor (both sides under min_seconds) are reported
// but cannot regress -- micro-times on shared CI machines are jitter,
// not signal.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace zh::perf {

struct PerfOptions {
  /// A timing key regresses when current > baseline * (1 + tol_pct/100).
  double tol_pct = 10.0;
  /// Keys where both sides are below this many seconds are noise-floor:
  /// compared, printed, never failed.
  double min_seconds = 0.05;
};

/// One compared timing key.
struct PerfEntry {
  std::string key;
  double base_s = 0.0;
  double cur_s = 0.0;
  double delta_pct = 0.0;   ///< (cur - base) / base * 100; 0 when base == 0
  bool below_floor = false; ///< both sides under min_seconds
  bool regressed = false;
};

struct PerfComparison {
  std::vector<PerfEntry> entries;    ///< times_s keys present in both
  std::size_t regressions = 0;
  std::vector<std::string> notes;    ///< schema/key mismatches, counter drift
};

/// Compare two parsed zh-run-report-v1 documents. A missing or
/// non-object times_s block on either side yields an empty comparison
/// with a note (not an error: counter-only reports are legal).
[[nodiscard]] PerfComparison compare_reports(const obs::JsonValue& base,
                                             const obs::JsonValue& cur,
                                             const PerfOptions& opts);

}  // namespace zh::perf
