#include "perf_diff.hpp"

#include <cmath>

#include "common/error.hpp"

namespace zh::perf {

namespace {

const obs::JsonValue* times_block(const obs::JsonValue& report,
                                  const char* label,
                                  std::vector<std::string>& notes) {
  if (!report.is_object()) {
    notes.push_back(detail::format_parts(label, ": not a JSON object"));
    return nullptr;
  }
  if (const obs::JsonValue* schema = report.find("schema");
      schema == nullptr || !schema->is_string() ||
      schema->str != "zh-run-report-v1") {
    notes.push_back(
        detail::format_parts(label, ": schema is not zh-run-report-v1"));
  }
  const obs::JsonValue* times = report.find("times_s");
  if (times == nullptr || !times->is_object()) {
    notes.push_back(detail::format_parts(label, ": no times_s block"));
    return nullptr;
  }
  return times;
}

}  // namespace

PerfComparison compare_reports(const obs::JsonValue& base,
                               const obs::JsonValue& cur,
                               const PerfOptions& opts) {
  PerfComparison out;
  const obs::JsonValue* base_times = times_block(base, "baseline", out.notes);
  const obs::JsonValue* cur_times = times_block(cur, "current", out.notes);
  if (base_times == nullptr || cur_times == nullptr) return out;

  for (const auto& [key, base_v] : base_times->obj) {
    if (!base_v.is_number()) continue;
    const obs::JsonValue* cur_v = cur_times->find(key);
    if (cur_v == nullptr || !cur_v->is_number()) {
      out.notes.push_back(
          detail::format_parts("key '", key, "' missing from current report"));
      continue;
    }
    PerfEntry e;
    e.key = key;
    e.base_s = base_v.number;
    e.cur_s = cur_v->number;
    e.below_floor =
        e.base_s < opts.min_seconds && e.cur_s < opts.min_seconds;
    if (e.base_s > 0.0) {
      e.delta_pct = (e.cur_s - e.base_s) / e.base_s * 100.0;
    }
    e.regressed = !e.below_floor && e.base_s > 0.0 &&
                  e.cur_s > e.base_s * (1.0 + opts.tol_pct / 100.0);
    if (e.regressed) ++out.regressions;
    out.entries.push_back(std::move(e));
  }
  for (const auto& [key, cur_v] : cur_times->obj) {
    if (!cur_v.is_number()) continue;
    if (base_times->find(key) == nullptr) {
      out.notes.push_back(detail::format_parts(
          "key '", key, "' missing from baseline report"));
    }
  }

  // Counter drift is informational: algorithmic changes legitimately
  // move work counts, so it never gates, but a silent 2x in
  // pip_edge_tests is worth a line in the output.
  const obs::JsonValue* base_counters =
      base.is_object() ? base.find("counters") : nullptr;
  const obs::JsonValue* cur_counters =
      cur.is_object() ? cur.find("counters") : nullptr;
  if (base_counters != nullptr && base_counters->is_object() &&
      cur_counters != nullptr && cur_counters->is_object()) {
    for (const auto& [key, base_v] : base_counters->obj) {
      const obs::JsonValue* cur_v = cur_counters->find(key);
      if (!base_v.is_number() || cur_v == nullptr || !cur_v->is_number()) {
        continue;
      }
      if (base_v.number != cur_v->number) {
        out.notes.push_back(detail::format_parts(
            "counter '", key, "' changed: ",
            static_cast<long long>(base_v.number), " -> ",
            static_cast<long long>(cur_v->number), " (informational)"));
      }
    }
  }
  return out;
}

}  // namespace zh::perf
