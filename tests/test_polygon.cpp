#include <gtest/gtest.h>

#include "geom/polygon.hpp"
#include "geom/soa.hpp"

namespace zh {
namespace {

Ring unit_square() { return {{0, 0}, {1, 0}, {1, 1}, {0, 1}}; }

Ring square(double x0, double y0, double side) {
  return {{x0, y0}, {x0 + side, y0}, {x0 + side, y0 + side},
          {x0, y0 + side}};
}

TEST(Polygon, RingSignedAreaOrientation) {
  EXPECT_DOUBLE_EQ(ring_signed_area(unit_square()), 1.0);  // CCW positive
  Ring cw = unit_square();
  std::reverse(cw.begin(), cw.end());
  EXPECT_DOUBLE_EQ(ring_signed_area(cw), -1.0);
}

TEST(Polygon, AreaAndVertexCount) {
  const Polygon p({square(0, 0, 4), square(1, 1, 1)});
  EXPECT_EQ(p.ring_count(), 2u);
  EXPECT_EQ(p.vertex_count(), 8u);
  // Both rings CCW here, so signed areas add; with a CW hole they would
  // subtract -- callers orient holes for exact areas.
  EXPECT_DOUBLE_EQ(p.signed_area(), 17.0);
}

TEST(Polygon, MbrCoversAllRings) {
  const Polygon p({square(2, 3, 4), square(-1, 5, 1)});
  const GeoBox b = p.mbr();
  EXPECT_DOUBLE_EQ(b.min_x, -1.0);
  EXPECT_DOUBLE_EQ(b.min_y, 3.0);
  EXPECT_DOUBLE_EQ(b.max_x, 6.0);
  EXPECT_DOUBLE_EQ(b.max_y, 7.0);
}

TEST(Polygon, RejectsDegenerateRing) {
  EXPECT_THROW(Polygon({Ring{{0, 0}, {1, 1}}}), InvalidArgument);
  Polygon p;
  EXPECT_THROW(p.add_ring(Ring{{0, 0}, {1, 1}}), InvalidArgument);
}

TEST(PolygonSet, IdsNamesAndTotals) {
  PolygonSet set;
  const PolygonId a = set.add(Polygon({unit_square()}), "alpha");
  const PolygonId b = set.add(Polygon({square(5, 5, 2), square(5.5, 5.5, 1)}),
                              "beta");
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  EXPECT_EQ(set.size(), 2u);
  EXPECT_EQ(set.name(a), "alpha");
  EXPECT_EQ(set.name(b), "beta");
  EXPECT_EQ(set.vertex_count(), 12u);
  EXPECT_THROW((void)set[5], InvalidArgument);
  EXPECT_THROW((void)set.name(5), InvalidArgument);
  const GeoBox e = set.extent();
  EXPECT_DOUBLE_EQ(e.min_x, 0.0);
  EXPECT_DOUBLE_EQ(e.max_x, 7.0);
}

TEST(PolygonSoA, LayoutMatchesFig5Convention) {
  PolygonSet set;
  set.add(Polygon({{{1, 1}, {2, 1}, {2, 2}}}));            // 3 vertices
  set.add(Polygon({square(4, 4, 1), square(4.2, 4.2, 0.5)}));  // 2 rings
  const PolygonSoA soa = PolygonSoA::build(set);

  EXPECT_EQ(soa.polygon_count(), 2u);
  // Polygon 0: 3 verts + closing + sentinel = 5 entries.
  const auto [f0, t0] = soa.vertex_range(0);
  EXPECT_EQ(f0, 0u);
  EXPECT_EQ(t0, 5u);
  // Ring closed: entry 3 repeats entry 0.
  EXPECT_DOUBLE_EQ(soa.x_v()[3], 1.0);
  EXPECT_DOUBLE_EQ(soa.y_v()[3], 1.0);
  // Sentinel at the end of the ring.
  EXPECT_DOUBLE_EQ(soa.x_v()[4], 0.0);
  EXPECT_DOUBLE_EQ(soa.y_v()[4], 0.0);

  // Polygon 1: two rings of 4 verts -> 2 * (4 + 2) = 12 entries.
  const auto [f1, t1] = soa.vertex_range(1);
  EXPECT_EQ(f1, 5u);
  EXPECT_EQ(t1, 17u);
  EXPECT_EQ(soa.flattened_vertex_count(), 17u);
}

TEST(PolygonSoA, RejectsOriginVertex) {
  PolygonSet set;
  set.add(Polygon({{{0, 0}, {1, 0}, {1, 1}}}));
  EXPECT_THROW(PolygonSoA::build(set), InvalidArgument);
}

TEST(PolygonSoA, VertexRangeOutOfBoundsThrows) {
  PolygonSet set;
  set.add(Polygon({square(1, 1, 1)}));
  const PolygonSoA soa = PolygonSoA::build(set);
  EXPECT_THROW((void)soa.vertex_range(1), InvalidArgument);
}

TEST(PolygonSoA, EmptySetProducesEmptySoA) {
  const PolygonSoA soa = PolygonSoA::build(PolygonSet{});
  EXPECT_EQ(soa.polygon_count(), 0u);
  EXPECT_EQ(soa.flattened_vertex_count(), 0u);
}

}  // namespace
}  // namespace zh
