// Step-4 granularity ablation, hybrid two-device execution, and
// boundary simplification.
#include <gtest/gtest.h>

#include "core/hybrid.hpp"
#include "core/pipeline.hpp"
#include "geom/pip.hpp"
#include "geom/simplify.hpp"
#include "test_util.hpp"

namespace zh {
namespace {

TEST(RefineGranularity, PolygonTileBlocksMatchPolygonGroupBlocks) {
  Device dev;
  const DemRaster raster = test::random_raster(
      90, 110, 23, 199, GeoTransform(0.0, 9.0, 0.1, 0.1));
  const PolygonSet zones = test::random_polygon_set(
      31, GeoBox{0.5, 0.5, 10.5, 8.5}, 9, /*holes=*/true);

  const ZonalPipeline coarse(
      dev, {.tile_size = 12, .bins = 200,
            .refine_granularity = RefineGranularity::kPolygonGroup});
  const ZonalPipeline fine(
      dev, {.tile_size = 12, .bins = 200,
            .refine_granularity = RefineGranularity::kPolygonTile});
  const ZonalResult a = coarse.run(raster, zones);
  const ZonalResult b = fine.run(raster, zones);
  EXPECT_EQ(a.per_polygon, b.per_polygon);
  EXPECT_EQ(a.work.pip_cell_tests, b.work.pip_cell_tests);
  EXPECT_EQ(a.work.pip_edge_tests, b.work.pip_edge_tests);
}

class HybridSweep : public ::testing::TestWithParam<double> {};

INSTANTIATE_TEST_SUITE_P(Fractions, HybridSweep,
                         ::testing::Values(0.0, 0.25, 0.5, 0.9, 1.0,
                                           -1.0 /* auto */));

TEST_P(HybridSweep, MatchesSingleDeviceRun) {
  const double fraction = GetParam();
  Device gpu(DeviceProfile::gtx_titan());
  Device cpu(DeviceProfile::host());
  const DemRaster raster = test::random_raster(
      80, 100, 5, 99, GeoTransform(0.0, 8.0, 0.1, 0.1));
  const PolygonSet zones = test::random_polygon_set(
      41, GeoBox{0.5, 0.5, 9.5, 7.5}, 8, /*holes=*/true);

  const ZonalConfig zc{.tile_size = 10, .bins = 100};
  const HybridResult hybrid =
      run_hybrid(gpu, cpu, raster, zones, {.zonal = zc,
                                           .primary_fraction = fraction});
  const ZonalPipeline pipe(gpu, zc);
  const ZonalResult single = pipe.run(raster, zones);

  EXPECT_EQ(hybrid.per_polygon, single.per_polygon)
      << "fraction " << fraction;
  EXPECT_EQ(hybrid.work.pip_cell_tests, single.work.pip_cell_tests);
  EXPECT_GE(hybrid.primary_fraction, 0.0);
  EXPECT_LE(hybrid.primary_fraction, 1.0);
}

TEST(Hybrid, AutoFractionDerivesFromProfiles) {
  Device titan(DeviceProfile::gtx_titan());
  Device quadro(DeviceProfile::quadro6000());
  const DemRaster raster = test::random_raster(
      40, 40, 2, 49, GeoTransform(0.0, 4.0, 0.1, 0.1));
  const PolygonSet zones =
      test::random_polygon_set(3, GeoBox{0.5, 0.5, 3.5, 3.5}, 4, false);
  const HybridResult r = run_hybrid(
      titan, quadro, raster, zones,
      {.zonal = {.tile_size = 8, .bins = 50}});
  // Titan is the faster Step-4 device (2.6x): it should take the larger
  // share. 1/(1 + 1/2.6) = 0.722.
  EXPECT_NEAR(r.primary_fraction, 2.6 / 3.6, 1e-9);
}

TEST(Simplify, ToleranceZeroIsIdentity) {
  std::mt19937 rng(3);
  const Ring ring = test::random_star_ring(rng, 5, 5, 2, 4, 40);
  EXPECT_EQ(simplify_ring(ring, 0.0), ring);
}

TEST(Simplify, RemovesCollinearVertices) {
  // A square with redundant midpoints on every edge.
  const Ring redundant = {{0, 0}, {1, 0}, {2, 0}, {2, 1}, {2, 2},
                          {1, 2}, {0, 2}, {0, 1}};
  const Ring s = simplify_ring(redundant, 1e-9);
  EXPECT_EQ(s.size(), 4u);
  EXPECT_DOUBLE_EQ(ring_signed_area(s), ring_signed_area(redundant));
}

TEST(Simplify, MonotoneInTolerance) {
  std::mt19937 rng(7);
  const Ring ring = test::random_star_ring(rng, 5, 5, 2, 4, 100);
  std::size_t prev = ring.size();
  for (const double eps : {0.001, 0.01, 0.1, 0.5}) {
    const Ring s = simplify_ring(ring, eps);
    EXPECT_LE(s.size(), prev) << "eps " << eps;
    EXPECT_GE(s.size(), 3u);
    prev = s.size();
  }
}

TEST(Simplify, PreservesShapeWithinTolerance) {
  std::mt19937 rng(9);
  const Polygon poly({test::random_star_ring(rng, 5, 5, 3, 4, 120)});
  const double eps = 0.05;
  const Polygon simp = simplify_polygon(poly, eps);
  EXPECT_LT(simp.vertex_count(), poly.vertex_count());
  // Area changes by at most roughly perimeter x eps.
  EXPECT_NEAR(simp.area(), poly.area(), 0.15 * poly.area());
  // Points well inside stay inside; points well outside stay outside.
  EXPECT_TRUE(point_in_polygon(simp, {5.0, 5.0}));
  EXPECT_FALSE(point_in_polygon(simp, {11.0, 11.0}));
}

TEST(Simplify, DropsCollapsedHolesKeepsOuter) {
  Polygon p({{{0, 0}, {10, 0}, {10, 10}, {0, 10}},
             // A hole so slender it collapses under a large tolerance.
             {{4.0, 4.0}, {4.001, 4.0005}, {6.0, 4.001}}});
  const Polygon s = simplify_polygon(p, 0.5);
  EXPECT_EQ(s.ring_count(), 1u);
  // Over-aggressive tolerance must not destroy the outer ring either.
  const Polygon t = simplify_polygon(p, 100.0);
  EXPECT_GE(t.rings()[0].size(), 3u);
}

TEST(Simplify, SetPreservesNamesAndCount) {
  const PolygonSet set = test::random_polygon_set(
      11, GeoBox{0.5, 0.5, 9.5, 9.5}, 6, true);
  const PolygonSet simp = simplify_set(set, 0.05);
  ASSERT_EQ(simp.size(), set.size());
  EXPECT_LT(simp.vertex_count(), set.vertex_count());
  for (PolygonId id = 0; id < set.size(); ++id) {
    EXPECT_EQ(simp.name(id), set.name(id));
  }
}

TEST(Simplify, HistogramErrorBoundedAndWorkReduced) {
  // The ablation's core claim as a test: simplification cuts Step-4
  // edge tests while the histogram mass moves only near boundaries.
  Device dev;
  const DemRaster raster = test::random_raster(
      120, 120, 13, 99, GeoTransform(0.0, 12.0, 0.1, 0.1));
  std::mt19937 rng(5);
  PolygonSet zones;
  zones.add(Polygon({test::random_star_ring(rng, 6, 6, 3, 5, 200)}));

  const ZonalPipeline pipe(dev, {.tile_size = 12, .bins = 100});
  const ZonalResult exact = pipe.run(raster, zones);
  const PolygonSet simp = simplify_set(zones, 0.05);
  const ZonalResult approx = pipe.run(raster, simp);

  EXPECT_LT(approx.work.pip_edge_tests, exact.work.pip_edge_tests);
  const auto err = histogram_l1_distance(exact.per_polygon.of(0),
                                         approx.per_polygon.of(0));
  const auto mass = exact.per_polygon.group_total(0);
  EXPECT_LT(err, mass / 5) << "simplification moved >20% of the mass";
}

TEST(Simplify, RejectsNegativeTolerance) {
  EXPECT_THROW(simplify_ring({{0, 0}, {1, 0}, {1, 1}}, -1.0),
               InvalidArgument);
}

}  // namespace
}  // namespace zh
