// Checkpoint/resume through the fault-tolerant cluster driver
// (DESIGN.md 5d): a run interrupted after journaling any subset of its
// partitions resumes to a bit-identical result, skipping exactly the
// journaled work -- including across double interruptions with torn
// tails, the worst case the kill/resume harness produces.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <vector>

#include "core/cluster_driver.hpp"
#include "data/county_synth.hpp"
#include "data/dem_synth.hpp"
#include "io/journal.hpp"

namespace zh {
namespace {

/// Shared scenario, matching test_cluster_recovery: one 96x96 raster
/// split 2x2 (4 partitions), star-county zones across partition borders.
struct Scenario {
  std::vector<DemRaster> rasters;
  std::vector<std::pair<int, int>> schemas = {{2, 2}};
  PolygonSet zones;

  Scenario() {
    const DemParams dp{.seed = 17, .max_value = 59};
    rasters.push_back(
        generate_dem(96, 96, GeoTransform(0.0, 9.6, 0.1, 0.1), dp));
    CountyParams cp;
    cp.seed = 4;
    cp.grid_x = 4;
    cp.grid_y = 4;
    zones = generate_counties(GeoBox{-0.5, -0.5, 10.1, 10.1}, cp);
  }

  [[nodiscard]] ClusterRunConfig config(std::size_t ranks) const {
    ClusterRunConfig cfg;
    cfg.ranks = ranks;
    cfg.zonal = {.tile_size = 16, .bins = 60};
    cfg.fault_tolerance.enabled = true;
    cfg.fault_tolerance.worker_timeout_ms = 10000;
    return cfg;
  }

  [[nodiscard]] RunManifest manifest() const {
    return make_manifest(rasters, schemas, zones, config(1));
  }

  /// Fault-free single-rank run: the bit-identity reference.
  [[nodiscard]] HistogramSet reference() const {
    ClusterRunConfig cfg = config(1);
    cfg.fault_tolerance.enabled = false;
    return run_cluster_zonal(rasters, schemas, zones, cfg).merged;
  }

  [[nodiscard]] ClusterRunResult run(ClusterRunConfig cfg,
                                     CheckpointSink* sink) const {
    cfg.checkpoint.sink = sink;
    return run_cluster_zonal(rasters, schemas, zones, cfg);
  }
};

class CheckpointResume : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("zh_resume_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
    journal_ = (dir_ / "run.journal").string();
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
  std::string journal_;
};

/// Forwards the first `cap` acceptances to the journal, then drops the
/// rest on the floor -- the durable state a process killed after `cap`
/// records would have left behind.
class InterruptedSink final : public CheckpointSink {
 public:
  InterruptedSink(JournalWriter* inner, std::uint64_t cap)
      : inner_(inner), cap_(cap) {}

  void on_partition_complete(std::uint32_t part_index,
                             std::span<const BinCount> bins) override {
    if (inner_->records_written() < cap_) {
      inner_->on_partition_complete(part_index, bins);
      inner_->flush();
    }
  }

 private:
  JournalWriter* inner_;
  std::uint64_t cap_;
};

/// Half a frame of plausible bytes: what a kill mid-append leaves.
void append_torn_tail(const std::string& path) {
  std::ofstream os(path, std::ios::binary | std::ios::app);
  const char torn[] = {40, 0, 0, 0, 'd', 'e', 'a', 'd'};
  os.write(torn, sizeof(torn));
}

/// Resume configuration from whatever the journal holds.
ClusterRunConfig resume_config(const Scenario& sc, std::size_t ranks,
                               const JournalLoad& load) {
  ClusterRunConfig cfg = sc.config(ranks);
  cfg.checkpoint.completed_partitions = load.completed;
  cfg.checkpoint.resume_bins = load.merged_bins;
  return cfg;
}

TEST_F(CheckpointResume, FullRunJournalsEveryPartitionOnce) {
  const Scenario sc;
  JournalWriter w = JournalWriter::create(journal_, sc.manifest());
  const ClusterRunResult r = sc.run(sc.config(3), &w);
  w.flush();
  EXPECT_EQ(r.merged, sc.reference());
  EXPECT_EQ(r.partitions_skipped, 0u);
  EXPECT_EQ(w.records_written(), 4u);

  const JournalLoad load = load_journal(journal_);
  EXPECT_EQ(load.records.size(), 4u);
  EXPECT_EQ(load.completed.size(), 4u);
  EXPECT_EQ(load.last_generation, 0u);
  // The journal alone reconstructs the full answer.
  HistogramSet from_journal(sc.zones.size(), 60);
  auto flat = from_journal.flat();
  std::copy(load.merged_bins.begin(), load.merged_bins.end(), flat.begin());
  EXPECT_EQ(from_journal, sc.reference());
}

TEST_F(CheckpointResume, ResumeAfterPartialJournalIsBitIdentical) {
  const Scenario sc;
  const HistogramSet expect = sc.reference();

  // Interrupted run: only 2 of 4 acceptances reach the journal.
  {
    JournalWriter w = JournalWriter::create(journal_, sc.manifest());
    InterruptedSink sink(&w, 2);
    (void)sc.run(sc.config(3), &sink);
    EXPECT_EQ(w.records_written(), 2u);
  }

  const JournalLoad load = load_journal(journal_);
  ASSERT_EQ(load.completed.size(), 2u);
  require_manifest_match(load.manifest, sc.manifest(), journal_);

  JournalWriter w = JournalWriter::append(journal_, load);
  EXPECT_EQ(w.generation(), 1u);
  const ClusterRunResult r = sc.run(resume_config(sc, 3, load), &w);
  w.flush();

  EXPECT_EQ(r.merged, expect);
  EXPECT_EQ(r.partitions_skipped, 2u);
  EXPECT_EQ(w.records_written(), 2u);  // only the remainder journaled

  const JournalLoad final_load = load_journal(journal_);
  EXPECT_EQ(final_load.completed.size(), 4u);
  EXPECT_EQ(final_load.last_generation, 1u);
}

TEST_F(CheckpointResume, DoubleInterruptedResumeStaysExact) {
  // The soak harness's worst case: kill mid-journal, resume, kill the
  // resume mid-journal (torn tail both times), resume again. The final
  // answer must be bit-identical and no partition may be journaled
  // twice within any generation.
  const Scenario sc;
  const HistogramSet expect = sc.reference();

  {  // generation 0: one record durable, then killed mid-append
    JournalWriter w = JournalWriter::create(journal_, sc.manifest());
    InterruptedSink sink(&w, 1);
    (void)sc.run(sc.config(3), &sink);
  }
  append_torn_tail(journal_);

  {  // generation 1: resumes, lands one more record, killed again
    const JournalLoad load = load_journal(journal_);
    EXPECT_EQ(load.torn_bytes, 8u);
    ASSERT_EQ(load.completed.size(), 1u);
    JournalWriter w = JournalWriter::append(journal_, load);
    EXPECT_EQ(w.generation(), 1u);
    InterruptedSink sink(&w, 1);  // one record lands in this generation
    const ClusterRunResult r = sc.run(resume_config(sc, 3, load), &sink);
    EXPECT_EQ(r.partitions_skipped, 1u);
    EXPECT_EQ(r.merged, expect);  // the run itself still finishes exactly
  }
  append_torn_tail(journal_);

  // generation 2: final resume runs to completion.
  const JournalLoad load = load_journal(journal_);
  ASSERT_EQ(load.completed.size(), 2u);
  JournalWriter w = JournalWriter::append(journal_, load);
  EXPECT_EQ(w.generation(), 2u);
  const ClusterRunResult r = sc.run(resume_config(sc, 3, load), &w);
  w.flush();
  EXPECT_EQ(r.merged, expect);
  EXPECT_EQ(r.partitions_skipped, 2u);

  // Journal postmortem: generations 0/1/2, each partition at most once
  // per generation and exactly once overall (the writer's dedup guard
  // plus the driver's skip list make re-journaling impossible).
  const JournalLoad final_load = load_journal(journal_);
  EXPECT_EQ(final_load.last_generation, 2u);
  EXPECT_EQ(final_load.completed.size(), 4u);
  std::map<std::uint32_t, int> per_part;
  std::map<std::uint32_t, std::map<std::uint32_t, int>> per_gen;
  for (const JournalRecordInfo& rec : final_load.records) {
    ++per_part[rec.part_index];
    ++per_gen[rec.generation][rec.part_index];
  }
  for (const auto& [part, count] : per_part) {
    EXPECT_EQ(count, 1) << "partition " << part << " journaled twice";
  }
  for (const auto& [gen, parts] : per_gen) {
    for (const auto& [part, count] : parts) {
      EXPECT_LE(count, 1) << "partition " << part << " twice in gen " << gen;
    }
  }

  // And the journal alone reconstructs the reference.
  HistogramSet from_journal(sc.zones.size(), 60);
  auto flat = from_journal.flat();
  std::copy(final_load.merged_bins.begin(), final_load.merged_bins.end(),
            flat.begin());
  EXPECT_EQ(from_journal, expect);
}

TEST_F(CheckpointResume, AllPartitionsResumedSkipsEveryDispatch) {
  const Scenario sc;
  {
    JournalWriter w = JournalWriter::create(journal_, sc.manifest());
    (void)sc.run(sc.config(3), &w);
  }
  const JournalLoad load = load_journal(journal_);
  ASSERT_EQ(load.completed.size(), 4u);
  // Nothing left to do: the run must terminate (not hang waiting for
  // work), skip everything, and still hand back the exact answer.
  const ClusterRunResult r =
      run_cluster_zonal(sc.rasters, sc.schemas, sc.zones,
                        resume_config(sc, 3, load));
  EXPECT_EQ(r.merged, sc.reference());
  EXPECT_EQ(r.partitions_skipped, 4u);
  EXPECT_TRUE(r.incomplete_partitions.empty());
}

TEST_F(CheckpointResume, SingleRankResumeWorks) {
  const Scenario sc;
  {
    JournalWriter w = JournalWriter::create(journal_, sc.manifest());
    InterruptedSink sink(&w, 3);
    (void)sc.run(sc.config(2), &sink);
  }
  const JournalLoad load = load_journal(journal_);
  const ClusterRunResult r = run_cluster_zonal(
      sc.rasters, sc.schemas, sc.zones, resume_config(sc, 1, load));
  EXPECT_EQ(r.merged, sc.reference());
  EXPECT_EQ(r.partitions_skipped, 3u);
}

TEST_F(CheckpointResume, ResumeSurvivesMessageFaultStorm) {
  const Scenario sc;
  {
    JournalWriter w = JournalWriter::create(journal_, sc.manifest());
    InterruptedSink sink(&w, 2);
    (void)sc.run(sc.config(3), &sink);
  }
  const JournalLoad load = load_journal(journal_);
  ClusterRunConfig cfg = resume_config(sc, 4, load);
  cfg.fault_tolerance.faults.seed = 9;
  cfg.fault_tolerance.faults.drop_prob = 0.2;
  cfg.fault_tolerance.faults.duplicate_prob = 0.2;
  JournalWriter w = JournalWriter::append(journal_, load);
  const ClusterRunResult r = sc.run(cfg, &w);
  EXPECT_EQ(r.merged, sc.reference());
  EXPECT_EQ(r.partitions_skipped, 2u);
}

TEST_F(CheckpointResume, CheckpointRequiresFaultTolerantMode) {
  const Scenario sc;
  ClusterRunConfig cfg = sc.config(2);
  cfg.fault_tolerance.enabled = false;
  cfg.checkpoint.completed_partitions = {0};
  cfg.checkpoint.resume_bins.assign(sc.zones.size() * 60, 0);
  EXPECT_THROW(
      (void)run_cluster_zonal(sc.rasters, sc.schemas, sc.zones, cfg),
      InvalidArgument);
}

TEST_F(CheckpointResume, ResumeStateIsValidated) {
  const Scenario sc;
  {
    ClusterRunConfig cfg = sc.config(2);
    cfg.checkpoint.completed_partitions = {9};  // 4 partitions exist
    cfg.checkpoint.resume_bins.assign(sc.zones.size() * 60, 0);
    EXPECT_THROW(
        (void)run_cluster_zonal(sc.rasters, sc.schemas, sc.zones, cfg),
        InvalidArgument);
  }
  {
    ClusterRunConfig cfg = sc.config(2);
    cfg.checkpoint.completed_partitions = {1, 1};  // duplicate
    cfg.checkpoint.resume_bins.assign(sc.zones.size() * 60, 0);
    EXPECT_THROW(
        (void)run_cluster_zonal(sc.rasters, sc.schemas, sc.zones, cfg),
        InvalidArgument);
  }
  {
    ClusterRunConfig cfg = sc.config(2);
    cfg.checkpoint.completed_partitions = {1};
    cfg.checkpoint.resume_bins.assign(7, 0);  // wrong histogram shape
    EXPECT_THROW(
        (void)run_cluster_zonal(sc.rasters, sc.schemas, sc.zones, cfg),
        InvalidArgument);
  }
}

TEST_F(CheckpointResume, ChangedInputsRefuseToResume) {
  const Scenario sc;
  {
    JournalWriter w = JournalWriter::create(journal_, sc.manifest());
    InterruptedSink sink(&w, 1);
    (void)sc.run(sc.config(2), &sink);
  }
  const JournalLoad load = load_journal(journal_);
  // Same zones, different raster: the manifest gate must refuse.
  Scenario other;
  other.rasters[0].at(10, 10) += 1;
  EXPECT_THROW(
      require_manifest_match(load.manifest, other.manifest(), journal_),
      IoError);
  // Different bin count: also refused.
  ClusterRunConfig cfg = sc.config(1);
  cfg.zonal.bins = 61;
  EXPECT_THROW(
      require_manifest_match(
          load.manifest,
          make_manifest(sc.rasters, sc.schemas, sc.zones, cfg), journal_),
      IoError);
}

}  // namespace
}  // namespace zh
