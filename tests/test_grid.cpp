#include <gtest/gtest.h>

#include <set>

#include "grid/geotransform.hpp"
#include "grid/raster.hpp"
#include "grid/tiling.hpp"

namespace zh {
namespace {

// SRTM-like transform: 1/3600-degree cells, origin at (-125, 50).
GeoTransform srtm_like() {
  return GeoTransform(-125.0, 50.0, 1.0 / 3600.0, 1.0 / 3600.0);
}

TEST(GeoTransform, CellCenterAndCornerGeometry) {
  const GeoTransform t(10.0, 20.0, 0.5, 0.25);
  const GeoPoint corner = t.cell_corner(0, 0);
  EXPECT_DOUBLE_EQ(corner.x, 10.0);
  EXPECT_DOUBLE_EQ(corner.y, 20.0);
  const GeoPoint center = t.cell_center(0, 0);
  EXPECT_DOUBLE_EQ(center.x, 10.25);
  EXPECT_DOUBLE_EQ(center.y, 19.875);
  // Row increases southwards (north-up raster).
  EXPECT_LT(t.cell_center(1, 0).y, t.cell_center(0, 0).y);
  EXPECT_GT(t.cell_center(0, 1).x, t.cell_center(0, 0).x);
}

TEST(GeoTransform, IndexLookupInvertsCellCenter) {
  const GeoTransform t = srtm_like();
  for (std::int64_t r : {0, 1, 17, 359, 3599}) {
    for (std::int64_t c : {0, 2, 100, 3599}) {
      const GeoPoint p = t.cell_center(r, c);
      EXPECT_EQ(t.y_to_row(p.y), r);
      EXPECT_EQ(t.x_to_col(p.x), c);
    }
  }
}

TEST(GeoTransform, ExtentCoversAllCells) {
  const GeoTransform t(0.0, 10.0, 1.0, 1.0);
  const GeoBox e = t.extent(10, 20);
  EXPECT_DOUBLE_EQ(e.min_x, 0.0);
  EXPECT_DOUBLE_EQ(e.max_x, 20.0);
  EXPECT_DOUBLE_EQ(e.min_y, 0.0);
  EXPECT_DOUBLE_EQ(e.max_y, 10.0);
}

TEST(GeoTransform, ForWindowShiftsOrigin) {
  const GeoTransform t(0.0, 10.0, 0.5, 0.5);
  const GeoTransform w = t.for_window(2, 4);
  EXPECT_DOUBLE_EQ(w.origin_x(), 2.0);
  EXPECT_DOUBLE_EQ(w.origin_y(), 9.0);
  // A cell in the window maps to the same geography as in the parent.
  const GeoPoint a = t.cell_center(2 + 3, 4 + 5);
  const GeoPoint b = w.cell_center(3, 5);
  EXPECT_DOUBLE_EQ(a.x, b.x);
  EXPECT_DOUBLE_EQ(a.y, b.y);
}

TEST(GeoTransform, RejectsNonPositiveCellSize) {
  EXPECT_THROW(GeoTransform(0, 0, 0.0, 1.0), InvalidArgument);
  EXPECT_THROW(GeoTransform(0, 0, 1.0, -1.0), InvalidArgument);
}

TEST(GeoBox, ContainsAndIntersects) {
  const GeoBox a{0, 0, 10, 10};
  EXPECT_TRUE(a.contains(GeoPoint{5, 5}));
  EXPECT_TRUE(a.contains(GeoPoint{0, 0}));   // boundary inclusive
  EXPECT_FALSE(a.contains(GeoPoint{11, 5}));
  EXPECT_TRUE(a.contains(GeoBox{1, 1, 9, 9}));
  EXPECT_FALSE(a.contains(GeoBox{1, 1, 11, 9}));
  EXPECT_TRUE(a.intersects(GeoBox{9, 9, 20, 20}));
  EXPECT_TRUE(a.intersects(GeoBox{10, 10, 20, 20}));  // touching counts
  EXPECT_FALSE(a.intersects(GeoBox{10.01, 0, 20, 10}));
}

TEST(Raster, AccessAndEquality) {
  DemRaster r(3, 4, GeoTransform(), 9);
  EXPECT_EQ(r.cell_count(), 12);
  EXPECT_EQ(r.at(2, 3), 9);
  r.at(1, 2) = 42;
  EXPECT_EQ(r.at(1, 2), 42);
  EXPECT_EQ(r.row(1)[2], 42);
  DemRaster s = r;
  EXPECT_EQ(r, s);
  s.at(0, 0) = 1;
  EXPECT_NE(r, s);
}

TEST(Raster, OutOfRangeAccessThrows) {
  DemRaster r(3, 4);
  EXPECT_THROW((void)r.at(3, 0), InvalidArgument);
  EXPECT_THROW((void)r.at(0, 4), InvalidArgument);
  EXPECT_THROW((void)r.at(-1, 0), InvalidArgument);
}

TEST(Raster, CopyWindowPreservesCellsAndGeoreference) {
  DemRaster r(6, 8, GeoTransform(0.0, 6.0, 1.0, 1.0));
  for (std::int64_t i = 0; i < 6; ++i) {
    for (std::int64_t j = 0; j < 8; ++j) {
      r.at(i, j) = static_cast<CellValue>(i * 8 + j);
    }
  }
  r.set_nodata(CellValue{777});
  const DemRaster w = r.copy_window({2, 3, 3, 4});
  EXPECT_EQ(w.rows(), 3);
  EXPECT_EQ(w.cols(), 4);
  EXPECT_EQ(w.nodata(), r.nodata());
  for (std::int64_t i = 0; i < 3; ++i) {
    for (std::int64_t j = 0; j < 4; ++j) {
      EXPECT_EQ(w.at(i, j), r.at(2 + i, 3 + j));
      const GeoPoint a = w.transform().cell_center(i, j);
      const GeoPoint b = r.transform().cell_center(2 + i, 3 + j);
      EXPECT_DOUBLE_EQ(a.x, b.x);
      EXPECT_DOUBLE_EQ(a.y, b.y);
    }
  }
  EXPECT_THROW(r.copy_window({4, 0, 3, 1}), InvalidArgument);
}

TEST(Tiling, CountsAndIds) {
  const TilingScheme t(100, 250, 60);
  EXPECT_EQ(t.tiles_y(), 2);  // ceil(100/60)
  EXPECT_EQ(t.tiles_x(), 5);  // ceil(250/60)
  EXPECT_EQ(t.tile_count(), 10u);
  EXPECT_EQ(t.tile_id(1, 3), 8u);
  EXPECT_EQ(t.tile_row(8), 1);
  EXPECT_EQ(t.tile_col(8), 3);
}

TEST(Tiling, WindowsPartitionTheRaster) {
  const TilingScheme t(100, 250, 60);
  std::int64_t total = 0;
  std::set<std::pair<std::int64_t, std::int64_t>> seen;
  for (TileId id = 0; id < t.tile_count(); ++id) {
    const CellWindow w = t.tile_window(id);
    EXPECT_GT(w.rows, 0);
    EXPECT_GT(w.cols, 0);
    EXPECT_LE(w.row0 + w.rows, 100);
    EXPECT_LE(w.col0 + w.cols, 250);
    total += w.cell_count();
    for (std::int64_t r = w.row0; r < w.row0 + w.rows; ++r) {
      for (std::int64_t c = w.col0; c < w.col0 + w.cols; ++c) {
        ASSERT_TRUE(seen.emplace(r, c).second)
            << "cell covered twice: " << r << "," << c;
      }
    }
  }
  EXPECT_EQ(total, 100 * 250);
}

TEST(Tiling, EdgeTilesAreClipped) {
  const TilingScheme t(100, 250, 60);
  const CellWindow w = t.tile_window(t.tile_id(1, 4));
  EXPECT_EQ(w.rows, 40);   // 100 - 60
  EXPECT_EQ(w.cols, 10);   // 250 - 240
}

TEST(Tiling, TileBoxMatchesWindowGeometry) {
  const GeoTransform tr(0.0, 10.0, 0.1, 0.1);
  const TilingScheme t(100, 100, 10);  // 1x1-unit tiles
  const GeoBox b = t.tile_box(t.tile_id(2, 3), tr);
  EXPECT_DOUBLE_EQ(b.min_x, 3.0);
  EXPECT_DOUBLE_EQ(b.max_x, 4.0);
  EXPECT_DOUBLE_EQ(b.max_y, 8.0);
  EXPECT_DOUBLE_EQ(b.min_y, 7.0);
}

TEST(Tiling, TilesCoveringMatchesBruteForce) {
  const GeoTransform tr(0.0, 10.0, 0.1, 0.1);
  const TilingScheme t(100, 100, 10);
  const GeoBox query{2.35, 4.1, 5.99, 7.2};
  const auto got = t.tiles_covering(query, tr);
  std::set<TileId> got_set(got.begin(), got.end());
  std::set<TileId> expect;
  for (TileId id = 0; id < t.tile_count(); ++id) {
    if (t.tile_box(id, tr).intersects(query)) expect.insert(id);
  }
  EXPECT_EQ(got_set, expect);
}

TEST(Tiling, TilesCoveringOutsideRasterIsEmpty) {
  const GeoTransform tr(0.0, 10.0, 0.1, 0.1);
  const TilingScheme t(100, 100, 10);
  EXPECT_TRUE(t.tiles_covering({20.0, 20.0, 30.0, 30.0}, tr).empty());
  EXPECT_TRUE(t.tiles_covering({-5.0, -5.0, -1.0, -1.0}, tr).empty());
}

TEST(Tiling, PaperTileGeometry) {
  // Paper: 0.1-degree tiles on 1/3600-degree cells -> 360 cells/edge;
  // a 5x5-degree raster has 50x50 tiles (the 50MB footprint example).
  const TilingScheme t(5 * 3600, 5 * 3600, 360);
  EXPECT_EQ(t.tiles_x(), 50);
  EXPECT_EQ(t.tiles_y(), 50);
  EXPECT_EQ(t.tile_count(), 2500u);
}

}  // namespace
}  // namespace zh
