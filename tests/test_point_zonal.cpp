#include <gtest/gtest.h>

#include "core/point_zonal.hpp"
#include "data/points_synth.hpp"
#include "test_util.hpp"

namespace zh {
namespace {

struct Scenario {
  std::uint64_t seed;
  std::size_t count;
  int clusters;
  bool weighted;
  bool holes;
};

class PointZonalSweep : public ::testing::TestWithParam<Scenario> {};

INSTANTIATE_TEST_SUITE_P(
    Scenarios, PointZonalSweep,
    ::testing::Values(Scenario{1, 2000, 0, false, false},
                      Scenario{2, 5000, 0, true, true},
                      Scenario{3, 5000, 8, true, false},
                      Scenario{4, 3000, 3, false, true},
                      Scenario{5, 1, 0, true, false}));

TEST_P(PointZonalSweep, GridFilteredMatchesReference) {
  const Scenario sc = GetParam();
  Device dev;
  const GeoTransform t(0.0, 10.0, 0.1, 0.1);
  const TilingScheme tiling(100, 100, 10);
  const GeoBox extent = t.extent(100, 100);

  PointParams pp;
  pp.seed = sc.seed;
  pp.count = sc.count;
  pp.clusters = sc.clusters;
  pp.weighted = sc.weighted;
  const PointSet points = generate_points(extent, pp);
  const PolygonSet zones = test::random_polygon_set(
      static_cast<std::uint32_t>(sc.seed * 19), GeoBox{0.5, 0.5, 9.5, 9.5},
      8, sc.holes);

  PointZonalCounters counters;
  const auto got =
      zonal_point_summation(dev, points, zones, tiling, t, &counters);
  const auto expect = zonal_point_summation_reference(points, zones);

  ASSERT_EQ(got.size(), zones.size());
  for (PolygonId z = 0; z < zones.size(); ++z) {
    ASSERT_EQ(got[z].count, expect[z].count) << "zone " << z;
    ASSERT_NEAR(got[z].weight_sum, expect[z].weight_sum,
                1e-9 * (expect[z].weight_sum + 1.0))
        << "zone " << z;
  }
  // The grid filter must have routed some points bucket-wise (zones are
  // big relative to tiles in this setup).
  if (sc.count >= 1000) {
    EXPECT_GT(counters.points_in_inside_tiles, 0u);
    EXPECT_GT(counters.pip_point_tests, 0u);
  }
}

TEST(PointZonal, UnweightedCountEqualsWeightSumOfOnes) {
  Device dev;
  const GeoTransform t(0.0, 4.0, 0.1, 0.1);
  const TilingScheme tiling(40, 40, 8);
  PointSet points;
  points.x = {1.0, 2.0, 3.0};
  points.y = {1.0, 2.0, 3.0};
  // weight left empty: all 1.
  PolygonSet zones;
  zones.add(Polygon({{{0.5, 0.5}, {3.5, 0.5}, {3.5, 3.5}, {0.5, 3.5}}}));
  const auto rows = zonal_point_summation(dev, points, zones, tiling, t);
  EXPECT_EQ(rows[0].count, 3u);
  EXPECT_DOUBLE_EQ(rows[0].weight_sum, 3.0);
}

TEST(PointZonal, PointsOutsideTilingAreIgnored) {
  Device dev;
  const GeoTransform t(0.0, 4.0, 0.1, 0.1);
  const TilingScheme tiling(40, 40, 8);
  PointSet points;
  points.add(2.0, 2.0);
  points.add(50.0, 50.0);   // off the grid
  points.add(-1.0, 2.0);    // off the grid
  PolygonSet zones;
  zones.add(Polygon({{{0.5, 0.5}, {3.5, 0.5}, {3.5, 3.5}, {0.5, 3.5}}}));
  const auto rows = zonal_point_summation(dev, points, zones, tiling, t);
  EXPECT_EQ(rows[0].count, 1u);
}

TEST(PointZonal, OverlappingZonesCountIndependently) {
  Device dev;
  const GeoTransform t(0.0, 4.0, 0.1, 0.1);
  const TilingScheme tiling(40, 40, 8);
  PointSet points;
  points.add(2.0, 2.0, 5.0);
  PolygonSet zones;
  zones.add(Polygon({{{0.5, 0.5}, {3.5, 0.5}, {3.5, 3.5}, {0.5, 3.5}}}));
  zones.add(Polygon({{{1.5, 1.5}, {2.5, 1.5}, {2.5, 2.5}, {1.5, 2.5}}}));
  const auto rows = zonal_point_summation(dev, points, zones, tiling, t);
  EXPECT_EQ(rows[0].count, 1u);
  EXPECT_EQ(rows[1].count, 1u);
  EXPECT_DOUBLE_EQ(rows[1].weight_sum, 5.0);
}

TEST(PointZonal, EmptyInputs) {
  Device dev;
  const GeoTransform t(0.0, 4.0, 0.1, 0.1);
  const TilingScheme tiling(40, 40, 8);
  EXPECT_TRUE(
      zonal_point_summation(dev, PointSet{}, PolygonSet{}, tiling, t)
          .empty());
  PolygonSet zones;
  zones.add(Polygon({{{0.5, 0.5}, {1.5, 0.5}, {1.5, 1.5}}}));
  const auto rows =
      zonal_point_summation(dev, PointSet{}, zones, tiling, t);
  EXPECT_EQ(rows[0].count, 0u);
}

TEST(PointZonal, WeightSizeMismatchThrows) {
  Device dev;
  const GeoTransform t(0.0, 4.0, 0.1, 0.1);
  const TilingScheme tiling(40, 40, 8);
  PointSet points;
  points.x = {1.0, 2.0};
  points.y = {1.0, 2.0};
  points.weight = {1.0};
  PolygonSet zones;
  zones.add(Polygon({{{0.5, 0.5}, {1.5, 0.5}, {1.5, 1.5}}}));
  EXPECT_THROW(zonal_point_summation(dev, points, zones, tiling, t),
               InvalidArgument);
}

TEST(PointSynth, DeterministicAndInExtent) {
  const GeoBox extent{2.0, 3.0, 12.0, 9.0};
  PointParams pp;
  pp.seed = 5;
  pp.count = 1000;
  pp.clusters = 4;
  const PointSet a = generate_points(extent, pp);
  const PointSet b = generate_points(extent, pp);
  ASSERT_EQ(a.size(), 1000u);
  EXPECT_EQ(a.x, b.x);
  EXPECT_EQ(a.y, b.y);
  EXPECT_EQ(a.weight, b.weight);
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_TRUE(extent.contains(GeoPoint{a.x[i], a.y[i]}));
    ASSERT_GE(a.weight[i], 1.0);
    ASSERT_LT(a.weight[i], 100.0);
  }
}

TEST(PointSynth, ClusteredPointsAreActuallyClustered) {
  const GeoBox extent{0.0, 0.0, 10.0, 10.0};
  PointParams uniform{.seed = 6, .count = 4000, .clusters = 0};
  PointParams clustered{.seed = 6, .count = 4000, .clusters = 3,
                        .cluster_sigma = 0.02};
  const PointSet u = generate_points(extent, uniform);
  const PointSet c = generate_points(extent, clustered);

  // Occupancy of a 10x10 grid: clustered points hit far fewer boxes.
  auto occupancy = [&](const PointSet& pts) {
    std::set<int> boxes;
    for (std::size_t i = 0; i < pts.size(); ++i) {
      boxes.insert(static_cast<int>(pts.x[i]) * 100 +
                   static_cast<int>(pts.y[i]));
    }
    return boxes.size();
  };
  EXPECT_LT(occupancy(c), occupancy(u) / 2);
}

}  // namespace
}  // namespace zh
